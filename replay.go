package mtshare

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Divergence is one mismatch found by Replay between the recorded log
// and the re-executed run.
type Divergence = replay.Divergence

// ReplayReport is the outcome of replaying a recorded log against the
// current engine.
type ReplayReport struct {
	// Events is the number of recorded events re-executed.
	Events int
	// Divergences lists every recorded/replayed mismatch in event order;
	// empty means the replay was bit-identical.
	Divergences []Divergence
}

// Diverged reports whether the replay produced any mismatch.
func (r *ReplayReport) Diverged() bool { return len(r.Divergences) > 0 }

// First returns the first divergence, or nil when the replay was clean.
// The first divergence is the interesting one: later mismatches are
// usually knock-on effects of the first diverging decision.
func (r *ReplayReport) First() *Divergence {
	if len(r.Divergences) == 0 {
		return nil
	}
	return &r.Divergences[0]
}

// Replay rebuilds the world described by a recorded log's header (same
// seed, options, and fault plan), re-executes every recorded event
// against the current engine, and diffs the fresh outcomes against the
// recorded ones — assignments, detours, ETAs, ride events, and the
// end-of-run deterministic counters. The reader may be raw JSONL or
// gzip-compressed (detected by magic bytes).
//
// A clean report means the current engine reproduces the recorded run
// bit for bit. A divergence pinpoints the first event whose outcome
// changed — the place to start looking after an engine change.
func Replay(r io.Reader) (*ReplayReport, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rr)
	if err != nil {
		return nil, fmt.Errorf("mtshare: replay: read log: %w", err)
	}
	h, events, err := replay.ReadAll(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if h.Kind != replay.KindSystem {
		return nil, fmt.Errorf("mtshare: replay: log kind %q cannot drive a System replay", h.Kind)
	}

	var buf bytes.Buffer
	sys, err := New(Options{
		SyntheticCityRows:       h.Rows,
		SyntheticCityCols:       h.Cols,
		Partitions:              h.Partitions,
		SpeedKmh:                h.SpeedKmh,
		SearchRangeMeters:       h.SearchRangeMeters,
		MaxDirectionDiffDegrees: h.MaxDirectionDiffDegrees,
		Probabilistic:           h.Probabilistic,
		DisableLandmarkLB:       h.DisableLandmarkLB,
		DisableCH:               h.DisableCH,
		QueueDepth:              h.QueueDepth,
		RetryEveryTicks:         h.RetryEveryTicks,
		BatchAssign:             h.BatchAssign,
		Sharding:                ShardingOptions{Shards: h.Shards, BorderPolicy: h.BorderPolicy},
		Seed:                    h.Seed,
		Faults:                  h.Faults,
		RecordTo:                &buf,
		// Re-emit the recorded log's own header version so the fresh
		// log's header diffs byte for byte against older-version goldens.
		headerVersion: h.Version,
	})
	if err != nil {
		return nil, fmt.Errorf("mtshare: replay: rebuild world: %w", err)
	}
	defer sys.Close()
	if fp := fmt.Sprintf("%016x", sys.g.Fingerprint()); h.GraphFingerprint != "" && fp != h.GraphFingerprint {
		return nil, fmt.Errorf("mtshare: replay: log graph fingerprint %s, rebuilt world is %s — the road generator changed, the log cannot be diffed", h.GraphFingerprint, fp)
	}

	// Feed the recorded inputs back through the (recording) facade. The
	// facade ignores returned errors here on purpose: errors are outcomes
	// and land in the fresh log, where the diff below judges them.
	ctx := context.Background()
	for _, ev := range events {
		switch {
		case ev.AddTaxi != nil:
			sys.AddTaxi(Point{Lat: ev.AddTaxi.At.Lat, Lng: ev.AddTaxi.At.Lng}, ev.AddTaxi.Capacity)
		case ev.Request != nil:
			sys.SubmitRequest(ctx,
				Point{Lat: ev.Request.Pickup.Lat, Lng: ev.Request.Pickup.Lng},
				Point{Lat: ev.Request.Dropoff.Lat, Lng: ev.Request.Dropoff.Lng},
				ev.Request.Flexibility)
		case ev.Hail != nil:
			sys.ReportStreetHail(ctx, TaxiID(ev.Hail.Taxi),
				Point{Lat: ev.Hail.Pickup.Lat, Lng: ev.Hail.Pickup.Lng},
				Point{Lat: ev.Hail.Dropoff.Lat, Lng: ev.Hail.Dropoff.Lng},
				ev.Hail.Flexibility)
		case ev.Tick != nil:
			sys.Advance(time.Duration(ev.Tick.DNanos))
		case ev.Metrics != nil:
			// The closing counters snapshot; Close below records the
			// replay's own.
		}
	}
	if err := sys.Close(); err != nil {
		return nil, fmt.Errorf("mtshare: replay: seal fresh log: %w", err)
	}

	replayed := buf.Bytes()
	if sealed := len(events) > 0 && events[len(events)-1].Metrics != nil; !sealed {
		// The recorded log was never sealed (the recorder died mid-run).
		// Drop the counters line our Close just appended so the prefix
		// still diffs cleanly.
		if idx := bytes.LastIndexByte(replayed[:len(replayed)-1], '\n'); idx >= 0 {
			replayed = replayed[:idx+1]
		}
	}
	divs, err := replay.CompareLogs(bytes.NewReader(data), bytes.NewReader(replayed))
	if err != nil {
		return nil, fmt.Errorf("mtshare: replay: diff logs: %w", err)
	}
	return &ReplayReport{Events: len(events), Divergences: divs}, nil
}

// maybeGunzip sniffs r for the gzip magic and transparently decompresses.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("mtshare: replay: read log: %w", err)
	}
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("mtshare: replay: gunzip log: %w", err)
		}
		return zr, nil
	}
	return br, nil
}

// ScenarioNames lists the built-in recordable scenarios, for CLIs.
var ScenarioNames = []string{"uniform", "peakhour"}

// RecordScenario runs one of the built-in golden scenarios with
// recording enabled, writing the log to w (raw JSONL; wrap w in a gzip
// writer to compress). The scenarios are small, fully deterministic
// workloads used for the checked-in golden logs and CI replay gates:
//
//   - "uniform": a 12x12 city (seed 7), 8 taxis, six rounds of
//     uniformly random requests plus street hails with 30 s ticks.
//   - "peakhour": a 12x12 city (seed 8), 10 taxis, the 08:00-09:00
//     window of a synthetic workday trace submitted in release order,
//     with the pending queue enabled (depth 16, retry every 2nd tick) so
//     the golden log covers queued/expired outcomes and batch
//     re-dispatch.
//
// An optional fault plan is threaded into the run (and the log header),
// exercising the deterministic fault-injection layer.
func RecordScenario(name string, w io.Writer, faults *FaultPlan) error {
	switch name {
	case "uniform":
		return recordUniform(w, faults)
	case "peakhour":
		return recordPeakHour(w, faults)
	default:
		return fmt.Errorf("mtshare: unknown scenario %q (have %v)", name, ScenarioNames)
	}
}

func recordUniform(w io.Writer, faults *FaultPlan) error {
	sys, err := New(Options{
		SyntheticCityRows: 12,
		SyntheticCityCols: 12,
		Seed:              7,
		RecordTo:          w,
		Faults:            faults,
	})
	if err != nil {
		return err
	}
	min, max := sys.Bounds()
	rng := rand.New(rand.NewSource(7))
	randPt := func() Point {
		return Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
	}
	ctx := context.Background()
	const nTaxis = 8
	for i := 0; i < nTaxis; i++ {
		sys.AddTaxi(randPt(), 3)
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 6; i++ {
			sys.SubmitRequest(ctx, randPt(), randPt(), 1.3)
		}
		sys.ReportStreetHail(ctx, TaxiID(1+rng.Intn(nTaxis)), randPt(), randPt(), 1.5)
		sys.Advance(30 * time.Second)
	}
	sys.Advance(5 * time.Minute)
	return sys.Close()
}

func recordPeakHour(w io.Writer, faults *FaultPlan) error {
	sys, err := New(Options{
		SyntheticCityRows: 12,
		SyntheticCityCols: 12,
		Seed:              8,
		QueueDepth:        16,
		RetryEveryTicks:   2,
		RecordTo:          w,
		Faults:            faults,
	})
	if err != nil {
		return err
	}
	min, max := sys.Bounds()
	ds, err := trace.Generate(trace.Workday, trace.GenParams{
		Center:           geo.Midpoint(min, max),
		ExtentMeters:     geo.Equirect(Point{Lat: min.Lat, Lng: min.Lng}, Point{Lat: min.Lat, Lng: max.Lng}),
		TripsPerHourPeak: 60,
		UniformFrac:      0.25,
		Seed:             42,
	})
	if err != nil {
		return err
	}
	trips := ds.Between(8*time.Hour, 9*time.Hour)
	if len(trips) > 48 {
		trips = trips[:48]
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		at := Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
		sys.AddTaxi(at, 4)
	}
	// Submit in release order, advancing the clock to each trip's
	// offset into the hour (rounded to whole seconds so ticks are tidy).
	prev := time.Duration(0)
	for _, tr := range trips {
		rel := (tr.ReleaseAt - 8*time.Hour).Truncate(time.Second)
		if d := rel - prev; d > 0 {
			sys.Advance(d)
			prev = rel
		}
		sys.SubmitRequest(ctx, tr.Origin, tr.Dest, 1.3)
	}
	sys.Advance(10 * time.Minute)
	return sys.Close()
}
