// Package geo provides geographic primitives used throughout mT-Share:
// points in latitude/longitude, distance metrics, bearings, and the
// four-dimensional mobility vectors (Definition 9 of the paper) together
// with the cosine-similarity direction test (Eq. 1).
package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by the haversine and
// equirectangular distance approximations.
const EarthRadiusMeters = 6371000.0

// Point is a geographic location in degrees.
type Point struct {
	Lat float64
	Lng float64
}

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dln := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dla / 2)
	s2 := math.Sin(dln / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Equirect returns the equirectangular-projection distance between a and b
// in meters. It is accurate to well under 1% at city scale and roughly 5x
// cheaper than Haversine, which matters on the routing hot path.
func Equirect(a, b Point) float64 {
	mlat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	x := (b.Lng - a.Lng) * math.Pi / 180 * math.Cos(mlat)
	y := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Sqrt(x*x+y*y)
}

// Bearing returns the initial bearing from a to b in degrees in [0, 360).
func Bearing(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dln := (b.Lng - a.Lng) * math.Pi / 180
	y := math.Sin(dln) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dln)
	deg := math.Atan2(y, x) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Midpoint returns the arithmetic midpoint of a and b. At city scale the
// arithmetic mean of coordinates is indistinguishable from the geodesic
// midpoint.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lng: (a.Lng + b.Lng) / 2}
}

// Centroid returns the arithmetic centroid of pts. It returns the zero Point
// when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.Lat += p.Lat
		c.Lng += p.Lng
	}
	c.Lat /= float64(len(pts))
	c.Lng /= float64(len(pts))
	return c
}

// MobilityVector is the paper's Definition 9: a vector pointing from an
// origin to a destination, represented by the two endpoints.
type MobilityVector struct {
	OriginLat float64
	OriginLng float64
	DestLat   float64
	DestLng   float64
}

// NewMobilityVector builds a mobility vector from an origin and destination.
func NewMobilityVector(origin, dest Point) MobilityVector {
	return MobilityVector{
		OriginLat: origin.Lat,
		OriginLng: origin.Lng,
		DestLat:   dest.Lat,
		DestLng:   dest.Lng,
	}
}

// Origin returns the vector's origin endpoint.
func (v MobilityVector) Origin() Point { return Point{Lat: v.OriginLat, Lng: v.OriginLng} }

// Dest returns the vector's destination endpoint.
func (v MobilityVector) Dest() Point { return Point{Lat: v.DestLat, Lng: v.DestLng} }

// dxdy returns the displacement of v projected onto a local tangent plane,
// scaling longitude by cos(latitude) so that east-west and north-south
// displacements are commensurable.
func (v MobilityVector) dxdy() (dx, dy float64) {
	mlat := (v.OriginLat + v.DestLat) / 2 * math.Pi / 180
	dx = (v.DestLng - v.OriginLng) * math.Cos(mlat)
	dy = v.DestLat - v.OriginLat
	return dx, dy
}

// Length returns the straight-line length of the vector in meters.
func (v MobilityVector) Length() float64 {
	return Equirect(v.Origin(), v.Dest())
}

// IsZero reports whether the vector has (numerically) no displacement and
// therefore no defined travel direction.
func (v MobilityVector) IsZero() bool {
	dx, dy := v.dxdy()
	return dx*dx+dy*dy < 1e-18
}

// CosineSimilarity implements Eq. 1 of the paper: the cosine of the angle
// between the travel directions of a and b. The paper treats mobility
// vectors as directions, so we compare displacement vectors on the local
// tangent plane. A zero-displacement vector has undefined direction; the
// function returns 0 in that case (maximally dissimilar short of opposing).
func CosineSimilarity(a, b MobilityVector) float64 {
	ax, ay := a.dxdy()
	bx, by := b.dxdy()
	na := math.Sqrt(ax*ax + ay*ay)
	nb := math.Sqrt(bx*bx + by*by)
	if na < 1e-9 || nb < 1e-9 {
		return 0
	}
	return (ax*bx + ay*by) / (na * nb)
}

// DirectionDegrees returns the travel direction of v as a compass-style
// angle in degrees in [0, 360), measured from north.
func (v MobilityVector) DirectionDegrees() float64 {
	return Bearing(v.Origin(), v.Dest())
}

// CosOfDegrees converts a maximum direction-difference angle θ (degrees)
// into the λ threshold used by Eq. 1 (λ = cos θ).
func CosOfDegrees(theta float64) float64 {
	return math.Cos(theta * math.Pi / 180)
}
