package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineZero(t *testing.T) {
	p := Point{Lat: 30.66, Lng: 104.06}
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("Haversine(p,p) = %v, want 0", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// One degree of latitude is ~111.19 km on a sphere of radius 6371 km.
	a := Point{Lat: 30.0, Lng: 104.0}
	b := Point{Lat: 31.0, Lng: 104.0}
	d := Haversine(a, b)
	if !almostEqual(d, 111195, 50) {
		t.Fatalf("Haversine 1 degree lat = %v m, want ~111195 m", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	a := Point{Lat: 30.66, Lng: 104.06}
	b := Point{Lat: 30.70, Lng: 104.10}
	if d1, d2 := Haversine(a, b), Haversine(b, a); d1 != d2 {
		t.Fatalf("Haversine not symmetric: %v vs %v", d1, d2)
	}
}

func TestEquirectMatchesHaversineAtCityScale(t *testing.T) {
	// At city scale (a few km) the two metrics should agree to <1%.
	a := Point{Lat: 30.66, Lng: 104.06}
	cases := []Point{
		{Lat: 30.67, Lng: 104.06},
		{Lat: 30.66, Lng: 104.08},
		{Lat: 30.70, Lng: 104.10},
		{Lat: 30.60, Lng: 104.00},
	}
	for _, b := range cases {
		h := Haversine(a, b)
		e := Equirect(a, b)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-e) / h; rel > 0.01 {
			t.Errorf("Equirect vs Haversine rel error %v for %v", rel, b)
		}
	}
}

func TestEquirectTriangleInequality(t *testing.T) {
	f := func(la1, ln1, la2, ln2, la3, ln3 float64) bool {
		norm := func(lat, lng float64) Point {
			return Point{Lat: 30 + math.Mod(math.Abs(lat), 0.5), Lng: 104 + math.Mod(math.Abs(lng), 0.5)}
		}
		a, b, c := norm(la1, ln1), norm(la2, ln2), norm(la3, ln3)
		return Equirect(a, c) <= Equirect(a, b)+Equirect(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	origin := Point{Lat: 30.0, Lng: 104.0}
	cases := []struct {
		dest Point
		want float64
	}{
		{Point{Lat: 30.1, Lng: 104.0}, 0},   // north
		{Point{Lat: 30.0, Lng: 104.1}, 90},  // east
		{Point{Lat: 29.9, Lng: 104.0}, 180}, // south
		{Point{Lat: 30.0, Lng: 103.9}, 270}, // west
	}
	for _, c := range cases {
		got := Bearing(origin, c.dest)
		if !almostEqual(got, c.want, 0.2) {
			t.Errorf("Bearing to %v = %v, want %v", c.dest, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{Lat: 30, Lng: 104}
	b := Point{Lat: 31, Lng: 105}
	m := Midpoint(a, b)
	if m.Lat != 30.5 || m.Lng != 104.5 {
		t.Fatalf("Midpoint = %v", m)
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Fatalf("Centroid(nil) = %v, want zero", c)
	}
	pts := []Point{{Lat: 30, Lng: 104}, {Lat: 32, Lng: 106}}
	c := Centroid(pts)
	if c.Lat != 31 || c.Lng != 105 {
		t.Fatalf("Centroid = %v", c)
	}
}

func TestCosineSimilaritySameDirection(t *testing.T) {
	a := NewMobilityVector(Point{30, 104}, Point{30.1, 104.1})
	b := NewMobilityVector(Point{30.5, 104.5}, Point{30.6, 104.6})
	if s := CosineSimilarity(a, b); !almostEqual(s, 1, 1e-3) {
		t.Fatalf("parallel vectors similarity = %v, want ~1", s)
	}
}

func TestCosineSimilarityOppositeDirection(t *testing.T) {
	a := NewMobilityVector(Point{30, 104}, Point{30.1, 104})
	b := NewMobilityVector(Point{30.1, 104}, Point{30, 104})
	if s := CosineSimilarity(a, b); !almostEqual(s, -1, 1e-9) {
		t.Fatalf("opposite vectors similarity = %v, want -1", s)
	}
}

func TestCosineSimilarityOrthogonal(t *testing.T) {
	a := NewMobilityVector(Point{30, 104}, Point{30.1, 104}) // north
	b := NewMobilityVector(Point{30, 104}, Point{30, 104.1}) // east
	if s := CosineSimilarity(a, b); !almostEqual(s, 0, 1e-6) {
		t.Fatalf("orthogonal vectors similarity = %v, want 0", s)
	}
}

func TestCosineSimilarityZeroVector(t *testing.T) {
	z := NewMobilityVector(Point{30, 104}, Point{30, 104})
	a := NewMobilityVector(Point{30, 104}, Point{30.1, 104})
	if s := CosineSimilarity(z, a); s != 0 {
		t.Fatalf("zero-vector similarity = %v, want 0", s)
	}
	if !z.IsZero() {
		t.Fatal("IsZero false for zero displacement")
	}
	if a.IsZero() {
		t.Fatal("IsZero true for nonzero displacement")
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
		a := MobilityVector{30 + clamp(a1), 104 + clamp(a2), 30 + clamp(a3), 104 + clamp(a4)}
		b := MobilityVector{30 + clamp(b1), 104 + clamp(b2), 30 + clamp(b3), 104 + clamp(b4)}
		s := CosineSimilarity(a, b)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilaritySymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
		a := MobilityVector{30, 104, 30 + clamp(a1), 104 + clamp(a2)}
		b := MobilityVector{30.2, 104.2, 30 + clamp(b1), 104 + clamp(b2)}
		return CosineSimilarity(a, b) == CosineSimilarity(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMobilityVectorLength(t *testing.T) {
	v := NewMobilityVector(Point{30, 104}, Point{30.01, 104})
	want := Equirect(Point{30, 104}, Point{30.01, 104})
	if v.Length() != want {
		t.Fatalf("Length = %v, want %v", v.Length(), want)
	}
}

func TestDirectionDegrees(t *testing.T) {
	v := NewMobilityVector(Point{30, 104}, Point{30.1, 104})
	if d := v.DirectionDegrees(); !almostEqual(d, 0, 0.2) {
		t.Fatalf("northward DirectionDegrees = %v, want ~0", d)
	}
}

func TestCosOfDegrees(t *testing.T) {
	if l := CosOfDegrees(45); !almostEqual(l, math.Sqrt2/2, 1e-12) {
		t.Fatalf("CosOfDegrees(45) = %v", l)
	}
	if l := CosOfDegrees(0); !almostEqual(l, 1, 1e-12) {
		t.Fatalf("CosOfDegrees(0) = %v", l)
	}
}

func TestLambdaMonotoneInTheta(t *testing.T) {
	// Larger allowed angle must translate to a smaller lambda threshold.
	prev := math.Inf(1)
	for theta := 10.0; theta <= 90; theta += 5 {
		l := CosOfDegrees(theta)
		if l >= prev {
			t.Fatalf("lambda not strictly decreasing at theta=%v", theta)
		}
		prev = l
	}
}

func BenchmarkHaversine(b *testing.B) {
	p := Point{Lat: 30.66, Lng: 104.06}
	q := Point{Lat: 30.70, Lng: 104.10}
	for i := 0; i < b.N; i++ {
		_ = Haversine(p, q)
	}
}

func BenchmarkEquirect(b *testing.B) {
	p := Point{Lat: 30.66, Lng: 104.06}
	q := Point{Lat: 30.70, Lng: 104.10}
	for i := 0; i < b.N; i++ {
		_ = Equirect(p, q)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	u := NewMobilityVector(Point{30, 104}, Point{30.1, 104.1})
	v := NewMobilityVector(Point{30.5, 104.5}, Point{30.6, 104.7})
	for i := 0; i < b.N; i++ {
		_ = CosineSimilarity(u, v)
	}
}
