package wal

import (
	"testing"
)

// benchPayload approximates one replay event line.
var benchPayload = []byte(`{"i":123456,"tick":{"d":60000000000,"rides":[{"req":42,"taxi":7,"pickup":true,"at":1234567890}],"queue_matched":[{"req":43,"taxi":8,"wait":2500000000}]}}`)

// BenchmarkWALAppend measures append throughput across the group-commit
// spectrum: fsync every record, every 64 records, and never (buffered
// only; Close pays the single final sync).
func BenchmarkWALAppend(b *testing.B) {
	for _, se := range []struct {
		name string
		v    int
	}{{"sync=1", 1}, {"sync=64", 64}, {"sync=never", -1}} {
		b.Run(se.name, func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), SyncEvery: se.v}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(benchPayload) + frameHeaderBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(benchPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALSnapshotWrite measures the atomic snapshot write path
// (frame + fsync + rename + dir fsync) at a fleet-scale payload size.
func BenchmarkWALSnapshotWrite(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.WriteSnapshot(int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALSnapshotRestore measures locating and CRC-verifying the
// newest snapshot, the first step of recovery.
func BenchmarkWALSnapshotRestore(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := l.WriteSnapshot(1000, payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, got, ok, err := l.LatestSnapshot()
		if err != nil || !ok || ev != 1000 || len(got) != len(payload) {
			b.Fatalf("LatestSnapshot = (%d, %d bytes, %v, %v)", ev, len(got), ok, err)
		}
	}
}
