// Package wal is the durability layer of the dispatch service: an
// append-only write-ahead log of replay-v3 event lines plus point-in-time
// snapshots, from which a crashed engine recovers byte-identical state.
//
// The log is a sequence of segment files named wal-<first>.seg, where
// <first> is the zero-padded index of the segment's first record. Each
// record is framed as
//
//	[length uint32 LE][crc32c uint32 LE of payload][payload]
//
// and carries exactly one line of the replay JSONL encoding (record 0 is
// the header line, record i+1 is event i), so concatenating the payloads
// with newlines reproduces a stream the replay decoder reads directly.
// Appends are group-committed: the file is fsync'd every SyncEvery
// records, every SyncInterval of dirty time, on rotation, and on Close.
// A crash can therefore tear at most the unsynced tail of the last
// segment; Open scans every segment, verifies each record's CRC, and
// truncates the last segment at the first torn or corrupt frame. A CRC
// failure anywhere else is real corruption and fails Open loudly.
//
// Snapshots are separate single-record files snap-<events>.snap written
// atomically (temp file, fsync, rename, directory fsync) by
// WriteSnapshot; LatestSnapshot returns the newest one whose CRC checks
// out, falling back to older snapshots — or to a full genesis replay when
// none survive — so a torn snapshot can never poison recovery. Hosts
// Sync the log before writing a snapshot and recover through
// LatestSnapshotAtOrBefore, so a snapshot whose watermark is ahead of
// the durable record count (its events died with the unsynced tail) is
// never written in the first place and is skipped if one exists anyway.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for zero-valued Options fields.
const (
	DefaultSyncEvery    = 64
	DefaultSegmentBytes = 4 << 20
)

// frameHeaderBytes is the per-record framing overhead: length + CRC32C.
const frameHeaderBytes = 8

// maxRecordBytes bounds a single record. Event lines are a few hundred
// bytes and snapshots of city-scale fleets are megabytes; anything larger
// read back from disk is a corrupt length field, not data.
const maxRecordBytes = 64 << 20

// castagnoli is the CRC32C polynomial table (the iSCSI/storage standard,
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures the durability layer. The zero value (empty Dir)
// disables it entirely; hosts thread it verbatim from their own config.
type Options struct {
	// Dir is the directory holding segment and snapshot files. Empty
	// disables durability.
	Dir string

	// SyncEvery fsyncs the active segment after every N appended records
	// (group commit). 0 means DefaultSyncEvery; negative disables
	// count-based syncing (rely on SyncInterval and Close).
	SyncEvery int

	// SyncInterval, when positive, fsyncs at most this long after an
	// unsynced append, bounding data loss under low write rates.
	SyncInterval time.Duration

	// SnapshotEveryTicks makes the host write a snapshot every N
	// simulation ticks. 0 disables snapshots (recovery replays the whole
	// log from genesis).
	SnapshotEveryTicks int

	// SegmentBytes rotates to a new segment file when the active one
	// would exceed this size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
}

// Enabled reports whether durability is configured.
func (o Options) Enabled() bool { return o.Dir != "" }

func (o Options) effSyncEvery() int {
	if o.SyncEvery == 0 {
		return DefaultSyncEvery
	}
	return o.SyncEvery
}

func (o Options) effSegmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Stats is a point-in-time summary of the log, exposed by
// GET /v1/durability.
type Stats struct {
	Dir                string `json:"dir"`
	Segments           int    `json:"segments"`
	Records            int64  `json:"records"`
	AppendedBytes      int64  `json:"appended_bytes"`
	TruncatedBytes     int64  `json:"truncated_bytes"`
	Syncs              int64  `json:"syncs"`
	Rotations          int64  `json:"rotations"`
	LastSyncUnixNanos  int64  `json:"last_sync_unix_nanos"`
	Snapshots          int64  `json:"snapshots"`
	LastSnapshotEvents int64  `json:"last_snapshot_events"`
	SyncEvery          int    `json:"sync_every"`
	SnapshotEveryTicks int    `json:"snapshot_every_ticks"`
	Err                string `json:"err,omitempty"`
	SnapshotErr        string `json:"snapshot_err,omitempty"`
}

type segment struct {
	path  string
	start int64 // index of the segment's first record
}

// Log is an open write-ahead log positioned for appending. Methods are
// safe for concurrent use; I/O errors are sticky — once a write or sync
// fails, every later call returns the same error so a host cannot keep
// acknowledging work it is no longer persisting.
type Log struct {
	opts Options
	dir  string

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segments []segment
	segBytes int64 // bytes in the active segment
	records  int64 // valid records across all segments
	appended int64 // framed bytes appended (all segments)
	dirty    int   // appends since the last fsync
	syncs    int64
	rotations      int64
	truncatedBytes int64
	lastSyncNanos  int64
	closed         bool
	err            error

	stopInterval chan struct{}
	intervalDone chan struct{}

	snapMu         sync.Mutex
	snapshots      int64
	lastSnapEvents int64
	snapErr        error // latest failed snapshot attempt; nil after a success

	appendsC, bytesC, syncsC, rotationsC, truncC, snapsC, snapErrsC *obs.Counter
	segGauge, lastSyncGauge                                         *obs.Gauge
	fsyncH                                                          *obs.Histogram
}

// Open opens (creating if needed) the log in opts.Dir, scans and repairs
// the segment chain, and positions it for appending. reg, when non-nil,
// receives the mtshare_wal_* instruments.
func Open(opts Options, reg *obs.Registry) (*Log, error) {
	if !opts.Enabled() {
		return nil, fmt.Errorf("wal: no directory configured")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, dir: opts.Dir}
	if reg != nil {
		l.appendsC = reg.Counter("mtshare_wal_appends_total")
		l.bytesC = reg.Counter("mtshare_wal_appended_bytes_total")
		l.syncsC = reg.Counter("mtshare_wal_syncs_total")
		l.rotationsC = reg.Counter("mtshare_wal_rotations_total")
		l.truncC = reg.Counter("mtshare_wal_truncated_bytes_total")
		l.snapsC = reg.Counter("mtshare_wal_snapshots_total")
		l.snapErrsC = reg.Counter("mtshare_wal_snapshot_errors_total")
		l.segGauge = reg.Gauge("mtshare_wal_segments")
		l.lastSyncGauge = reg.Gauge("mtshare_wal_last_sync_unix_seconds")
		l.fsyncH = reg.Histogram("mtshare_wal_fsync_seconds")
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segments) == 0 {
		if err := l.createSegment(0); err != nil {
			return nil, err
		}
	} else {
		last := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
	}
	if l.segGauge != nil {
		l.segGauge.Set(float64(len(l.segments)))
	}
	if n, ev, err := l.scanSnapshots(); err == nil {
		l.snapshots, l.lastSnapEvents = n, ev
	}
	if opts.SyncInterval > 0 {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop(opts.SyncInterval)
	}
	return l, nil
}

// scan discovers the segment chain, verifies it, and truncates a torn
// tail on the last segment.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		start, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if perr != nil {
			return fmt.Errorf("wal: bad segment name %q", name)
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	for i, seg := range segs {
		if seg.start != l.records {
			return fmt.Errorf("wal: segment %s starts at record %d, want %d (missing or reordered segment)",
				seg.path, seg.start, l.records)
		}
		n, valid, torn, serr := scanSegment(seg.path)
		if serr != nil {
			return serr
		}
		last := i == len(segs)-1
		if torn > 0 && !last {
			return fmt.Errorf("wal: segment %s has %d corrupt bytes before the last segment", seg.path, torn)
		}
		if torn > 0 {
			if terr := truncateFile(seg.path, valid); terr != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			l.truncatedBytes += torn
			if l.truncC != nil {
				l.truncC.Add(torn)
			}
		}
		l.records += n
		l.appended += valid
		if last {
			l.segBytes = valid
		}
	}
	l.segments = segs
	return nil
}

// scanSegment walks one segment file counting whole, CRC-valid records.
// It returns the record count, the byte length of the valid prefix, and
// the number of trailing bytes that do not form a valid record.
func scanSegment(path string) (records, validBytes, tornBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	size := info.Size()
	r := bufio.NewReader(f)
	var hdr [frameHeaderBytes]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
			break // clean EOF or torn header — validBytes marks the cut
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > maxRecordBytes || validBytes+frameHeaderBytes+int64(n) > size {
			break
		}
		if int64(n) > int64(cap(buf)) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, rerr := io.ReadFull(r, buf); rerr != nil {
			break
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			break
		}
		records++
		validBytes += frameHeaderBytes + int64(n)
	}
	return records, validBytes, size - validBytes, nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// createSegment starts a fresh segment whose first record will be index
// start, and fsyncs the directory so the file survives a crash.
func (l *Log) createSegment(start int64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%020d.seg", start))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segments = append(l.segments, segment{path: path, start: start})
	l.segBytes = 0
	if l.segGauge != nil {
		l.segGauge.Set(float64(len(l.segments)))
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Append frames and writes one record (a single replay JSONL line,
// without the trailing newline). The write is buffered; it reaches disk
// at the next group commit.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	frame := int64(frameHeaderBytes + len(payload))
	if l.segBytes > 0 && l.segBytes+frame > l.opts.effSegmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [frameHeaderBytes]byte
	putFrameHeader(hdr[:], payload)
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	l.records++
	l.segBytes += frame
	l.appended += frame
	l.dirty++
	if l.appendsC != nil {
		l.appendsC.Inc()
		l.bytesC.Add(frame)
	}
	if se := l.opts.effSyncEvery(); se > 0 && l.dirty >= se {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and
// starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	if err := l.createSegment(l.records); err != nil {
		l.err = err
		return err
	}
	l.rotations++
	if l.rotationsC != nil {
		l.rotationsC.Inc()
	}
	return nil
}

// Sync forces a group commit: flush the buffer and fsync the active
// segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	if l.fsyncH != nil {
		l.fsyncH.Observe(time.Since(t0).Seconds())
	}
	l.dirty = 0
	l.syncs++
	l.lastSyncNanos = time.Now().UnixNano()
	if l.syncsC != nil {
		l.syncsC.Inc()
		l.lastSyncGauge.Set(float64(l.lastSyncNanos) / 1e9)
	}
	return nil
}

func (l *Log) intervalLoop(every time.Duration) {
	defer close(l.intervalDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stopInterval:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty > 0 {
				l.syncLocked() // sticky error is surfaced by the next Append/Sync
			}
			l.mu.Unlock()
		}
	}
}

// Records returns the number of valid records (header + events).
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close commits any buffered records and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	serr := l.err
	if serr == nil {
		serr = l.syncLocked()
	}
	if cerr := l.f.Close(); serr == nil && cerr != nil {
		serr = fmt.Errorf("wal: %w", cerr)
		l.err = serr
	}
	stop := l.stopInterval
	done := l.intervalDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return serr
}

// Stats returns a summary of the log and its snapshots.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Dir:                l.dir,
		Segments:           len(l.segments),
		Records:            l.records,
		AppendedBytes:      l.appended,
		TruncatedBytes:     l.truncatedBytes,
		Syncs:              l.syncs,
		Rotations:          l.rotations,
		LastSyncUnixNanos:  l.lastSyncNanos,
		SyncEvery:          l.opts.effSyncEvery(),
		SnapshotEveryTicks: l.opts.SnapshotEveryTicks,
	}
	if l.err != nil {
		st.Err = l.err.Error()
	}
	l.mu.Unlock()
	l.snapMu.Lock()
	st.Snapshots = l.snapshots
	st.LastSnapshotEvents = l.lastSnapEvents
	if l.snapErr != nil {
		st.SnapshotErr = l.snapErr.Error()
	}
	l.snapMu.Unlock()
	return st
}

// NewReader returns a reader over the log's record payloads joined by
// newlines — exactly the JSONL stream the replay decoder consumes. It
// reads the segment files as they were committed to the OS; call Sync
// first (or use it before appending, as recovery does) to see every
// record.
func (l *Log) NewReader() io.Reader {
	l.mu.Lock()
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()
	return &logReader{segs: segs}
}

// AppendWriter adapts the log to io.Writer for line-oriented encoders
// (replay's encoder issues exactly one Write per JSONL line): the
// trailing newline is stripped and each line becomes one appended
// record.
func (l *Log) AppendWriter() io.Writer { return appendWriter{l} }

type appendWriter struct{ l *Log }

func (a appendWriter) Write(p []byte) (int, error) {
	payload := p
	if n := len(payload); n > 0 && payload[n-1] == '\n' {
		payload = payload[:n-1]
	}
	if err := a.l.Append(payload); err != nil {
		return 0, err
	}
	return len(p), nil
}

// logReader streams payloads with '\n' separators, validating CRCs as it
// goes. A torn or corrupt frame in the final segment reads as EOF (it is
// exactly what Open would truncate); anywhere else it is an error.
type logReader struct {
	segs []segment
	cur  int
	r    *bufio.Reader
	f    *os.File
	buf  []byte // pending bytes of the current line (payload + '\n')
	err  error
}

func (lr *logReader) Read(p []byte) (int, error) {
	for {
		if lr.err != nil {
			return 0, lr.err
		}
		if len(lr.buf) > 0 {
			n := copy(p, lr.buf)
			lr.buf = lr.buf[n:]
			return n, nil
		}
		if lr.r == nil {
			if lr.cur >= len(lr.segs) {
				lr.err = io.EOF
				return 0, io.EOF
			}
			f, err := os.Open(lr.segs[lr.cur].path)
			if err != nil {
				lr.err = fmt.Errorf("wal: %w", err)
				return 0, lr.err
			}
			lr.f = f
			lr.r = bufio.NewReader(f)
		}
		payload, err := readFrame(lr.r)
		if err == io.EOF {
			lr.f.Close()
			lr.f, lr.r = nil, nil
			lr.cur++
			continue
		}
		if err != nil {
			if lr.cur == len(lr.segs)-1 {
				// Torn tail of the final segment: end of log.
				lr.f.Close()
				lr.err = io.EOF
				return 0, io.EOF
			}
			lr.f.Close()
			lr.err = err
			return 0, err
		}
		lr.buf = append(payload, '\n')
	}
}

// putFrameHeader fills an 8-byte frame header for payload.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
}

// readFrame reads one record. io.EOF means a clean segment end; any other
// error means a torn or corrupt frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: torn frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(n) > maxRecordBytes {
		return nil, fmt.Errorf("wal: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wal: torn frame payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("wal: frame CRC mismatch")
	}
	return payload, nil
}
