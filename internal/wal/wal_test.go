package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func appendLines(t *testing.T, l *Log, lines []string) {
	t.Helper()
	for _, s := range lines {
		if err := l.Append([]byte(s)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func readLines(t *testing.T, l *Log) []string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(l.NewReader()); err != nil {
		t.Fatalf("read log: %v", err)
	}
	s := strings.TrimSuffix(buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func nLines(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"i":%d,"payload":"record body %d"}`, i, i)
	}
	return out
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	lines := nLines(25)
	l, err := Open(Options{Dir: dir, SyncEvery: 4}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, lines)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Records(); got != int64(len(lines)) {
		t.Fatalf("Records = %d, want %d", got, len(lines))
	}
	got := readLines(t, l2)
	if len(got) != len(lines) {
		t.Fatalf("reader returned %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
	st := l2.Stats()
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", st.TruncatedBytes)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	lines := nLines(10)
	l, err := Open(Options{Dir: dir, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, lines)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad} // length says 255, only 0 payload bytes follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	if got := l2.Records(); got != int64(len(lines)) {
		t.Fatalf("Records after truncation = %d, want %d", got, len(lines))
	}
	st := l2.Stats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn))
	}
	// The log must accept appends after repair and read back whole.
	if err := l2.Append([]byte(`{"after":"crash"}`)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := readLines(t, l3)
	if len(got) != len(lines)+1 || got[len(got)-1] != `{"after":"crash"}` {
		t.Fatalf("post-repair log = %d lines (last %q)", len(got), got[len(got)-1])
	}
}

func TestCorruptPayloadTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, nLines(5))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last record's payload: CRC fails, record drops.
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Records(); got != 4 {
		t.Fatalf("Records = %d, want 4 (corrupt tail record dropped)", got)
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("expected truncated bytes after payload corruption")
	}
}

func TestCorruptEarlierSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: 1, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, nLines(10))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("test needs rotation, got %d segments", st.Segments)
	}
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}, nil); err == nil {
		t.Fatal("Open succeeded on corruption before the last segment")
	}
}

func TestMissingSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: 1, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, nLines(10))
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Segments < 3 {
		t.Fatalf("test needs >=3 segments, got %d", st.Segments)
	}
	// Delete a middle segment: the chain is broken and Open must refuse.
	entries, _ := os.ReadDir(dir)
	if err := os.Remove(filepath.Join(dir, entries[1].Name())); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}, nil); err == nil {
		t.Fatal("Open succeeded with a missing segment")
	}
}

func TestRotationPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	lines := nLines(40)
	l, err := Open(Options{Dir: dir, SyncEvery: -1, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, lines)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	got := readLines(t, l2)
	if len(got) != len(lines) {
		t.Fatalf("got %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestGroupCommitSyncCounts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, nLines(20))
	st := l.Stats()
	if st.Syncs != 2 { // 20 appends / SyncEvery 8 = 2 group commits so far
		t.Fatalf("Syncs = %d, want 2", st.Syncs)
	}
	if err := l.Close(); err != nil { // Close commits the dirty tail
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 3 {
		t.Fatalf("Syncs after Close = %d, want 3", st.Syncs)
	}
}

func TestSyncIntervalCommitsDirtyTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: -1, SyncInterval: 5 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Syncs > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("interval sync never fired")
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestOpenWithoutDirFails(t *testing.T) {
	if _, err := Open(Options{}, nil); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, ok, err := l.LatestSnapshot(); err != nil || ok {
		t.Fatalf("LatestSnapshot on empty dir = ok=%v err=%v", ok, err)
	}
	want := []byte(`{"state":"everything"}`)
	if err := l.WriteSnapshot(42, want); err != nil {
		t.Fatal(err)
	}
	ev, got, ok, err := l.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	if ev != 42 || !bytes.Equal(got, want) {
		t.Fatalf("snapshot = (%d, %q), want (42, %q)", ev, got, want)
	}
	st := l.Stats()
	if st.Snapshots != 1 || st.LastSnapshotEvents != 42 {
		t.Fatalf("Stats snapshots = (%d, %d), want (1, 42)", st.Snapshots, st.LastSnapshotEvents)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WriteSnapshot(10, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(20, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapshotPath(dir, 20))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snapshotPath(dir, 20), data, 0o644); err != nil {
		t.Fatal(err)
	}
	ev, got, ok, err := l.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	if ev != 10 || string(got) != "older" {
		t.Fatalf("fallback = (%d, %q), want (10, \"older\")", ev, got)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := int64(1); i <= 5; i++ {
		if err := l.WriteSnapshot(i*10, []byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	files, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != snapshotsToKeep {
		t.Fatalf("kept %d snapshots, want %d", len(files), snapshotsToKeep)
	}
	if files[len(files)-1].events != 50 {
		t.Fatalf("newest kept snapshot at %d, want 50", files[len(files)-1].events)
	}
}

func TestReopenCountsSnapshots(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(7, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Snapshots != 1 || st.LastSnapshotEvents != 7 {
		t.Fatalf("reopen snapshot stats = (%d, %d), want (1, 7)", st.Snapshots, st.LastSnapshotEvents)
	}
}

func TestReaderStopsAtTornTailWithoutRepair(t *testing.T) {
	// NewReader on a log whose file has a torn tail (reader built before
	// any reopen repaired it) must yield exactly the valid prefix.
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lines := nLines(3)
	appendLines(t, l, lines)
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	got := readLines(t, l)
	if len(got) != len(lines) {
		t.Fatalf("reader returned %d lines, want %d", len(got), len(lines))
	}
	l.Close()
}

func TestScanSegmentEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000000000000000000.seg")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	n, valid, torn, err := scanSegment(path)
	if err != nil || n != 0 || valid != 0 || torn != 0 {
		t.Fatalf("scanSegment(empty) = (%d, %d, %d, %v)", n, valid, torn, err)
	}
	l, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("Open over empty segment: %v", err)
	}
	defer l.Close()
	if l.Records() != 0 {
		t.Fatalf("Records = %d, want 0", l.Records())
	}
}

func TestInstrumentsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	l, err := Open(Options{Dir: t.TempDir(), SyncEvery: 1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	appendLines(t, l, nLines(3))
	if err := l.WriteSnapshot(3, []byte("s")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"mtshare_wal_appends_total":   3,
		"mtshare_wal_syncs_total":     4, // 3 per-append commits + Close
		"mtshare_wal_snapshots_total": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if _, ok := snap.Histograms["mtshare_wal_fsync_seconds"]; !ok {
		t.Error("fsync histogram not registered")
	}
	if g := snap.Gauges["mtshare_wal_segments"]; g != 1 {
		t.Errorf("segments gauge = %v, want 1", g)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [frameHeaderBytes]byte
	hdr[3] = 0xff // length ~4.2e9
	_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil {
		t.Fatal("readFrame accepted an oversized length")
	}
}

func TestLatestSnapshotAtOrBeforeSkipsFutureWatermark(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WriteSnapshot(10, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(20, []byte("ahead")); err != nil {
		t.Fatal(err)
	}
	// The reopened log holds only 15 events: the snapshot at 20 became
	// durable ahead of the WAL tail a crash then tore off, so recovery
	// must fall back to the snapshot at 10.
	ev, got, ok, err := l.LatestSnapshotAtOrBefore(15)
	if err != nil || !ok {
		t.Fatalf("LatestSnapshotAtOrBefore(15): ok=%v err=%v", ok, err)
	}
	if ev != 10 || string(got) != "durable" {
		t.Fatalf("bounded lookup = (%d, %q), want (10, \"durable\")", ev, got)
	}
	// No snapshot at or below the bound: genesis replay.
	if _, _, ok, err := l.LatestSnapshotAtOrBefore(5); err != nil || ok {
		t.Fatalf("LatestSnapshotAtOrBefore(5) = ok=%v err=%v, want no snapshot", ok, err)
	}
	// The unbounded lookup still sees the newest one.
	if ev, _, ok, _ := l.LatestSnapshot(); !ok || ev != 20 {
		t.Fatalf("LatestSnapshot = (%d, ok=%v), want (20, true)", ev, ok)
	}
}

func TestSnapshotWriteFailureSurfacesInStats(t *testing.T) {
	reg := obs.NewRegistry()
	l, err := Open(Options{Dir: t.TempDir()}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A channel cannot marshal: the background-goroutine failure mode.
	if err := l.WriteSnapshotJSON(5, make(chan int)); err == nil {
		t.Fatal("WriteSnapshotJSON(chan) succeeded")
	}
	st := l.Stats()
	if st.SnapshotErr == "" {
		t.Fatal("failed snapshot left Stats.SnapshotErr empty")
	}
	if got := reg.Snapshot().Counters["mtshare_wal_snapshot_errors_total"]; got != 1 {
		t.Fatalf("snapshot error counter = %d, want 1", got)
	}
	// A later successful write clears the latched error.
	if err := l.WriteSnapshotJSON(6, map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SnapshotErr != "" || st.Snapshots != 1 {
		t.Fatalf("after success: SnapshotErr=%q Snapshots=%d, want \"\" and 1", st.SnapshotErr, st.Snapshots)
	}
}
