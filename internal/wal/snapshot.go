// Snapshot files: point-in-time engine state that lets recovery skip
// replaying the log prefix. Each snapshot is one CRC-framed record in its
// own file snap-<events>.snap, where <events> is the number of WAL events
// the state reflects (its watermark); recovery restores the newest valid
// snapshot and replays only events at or past the watermark.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshotsToKeep bounds disk use: older snapshots beyond this many are
// pruned after each successful write. Keeping more than one means a
// corrupt newest snapshot still leaves a valid fallback.
const snapshotsToKeep = 2

func snapshotPath(dir string, events int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", events))
}

// WriteSnapshot atomically persists a snapshot taken after applying the
// first `events` WAL events. The payload is written CRC-framed to a temp
// file, fsync'd, renamed into place, and the directory fsync'd, so a
// crash mid-write leaves either the complete snapshot or none.
func (l *Log) WriteSnapshot(events int64, payload []byte) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	final := snapshotPath(l.dir, events)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := writeFrameTo(w, payload); err == nil {
		err = w.Flush()
	} else {
		w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snapshots++
	if events > l.lastSnapEvents {
		l.lastSnapEvents = events
	}
	if l.snapsC != nil {
		l.snapsC.Inc()
	}
	l.pruneSnapshotsLocked()
	return nil
}

func writeFrameTo(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderBytes]byte
	putFrameHeader(hdr[:], payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// LatestSnapshot returns the newest snapshot whose CRC verifies, skipping
// corrupt or torn ones. ok is false when no usable snapshot exists (the
// host then replays the log from genesis).
func (l *Log) LatestSnapshot() (events int64, payload []byte, ok bool, err error) {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		payload, rerr := readSnapshotFile(files[i].path)
		if rerr != nil {
			continue // torn or corrupt: fall back to the previous one
		}
		return files[i].events, payload, true, nil
	}
	return 0, nil, false, nil
}

type snapshotFile struct {
	path   string
	events int64
}

// listSnapshots returns the directory's snapshot files sorted ascending
// by watermark.
func listSnapshots(dir string) ([]snapshotFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []snapshotFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		ev, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, snapshotFile{path: filepath.Join(dir, name), events: ev})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].events < out[j].events })
	return out, nil
}

func readSnapshotFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	payload, err := readFrame(bufio.NewReader(f))
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// scanSnapshots counts existing snapshot files at Open time.
func (l *Log) scanSnapshots() (count, lastEvents int64, err error) {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return 0, 0, err
	}
	if len(files) > 0 {
		lastEvents = files[len(files)-1].events
	}
	return int64(len(files)), lastEvents, nil
}

// pruneSnapshotsLocked deletes all but the newest snapshotsToKeep files.
// Best-effort: a failed remove is retried implicitly on the next write.
func (l *Log) pruneSnapshotsLocked() {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return
	}
	for i := 0; i+snapshotsToKeep < len(files); i++ {
		os.Remove(files[i].path)
	}
}
