// Snapshot files: point-in-time engine state that lets recovery skip
// replaying the log prefix. Each snapshot is one CRC-framed record in its
// own file snap-<events>.snap, where <events> is the number of WAL events
// the state reflects (its watermark); recovery restores the newest valid
// snapshot and replays only events at or past the watermark.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshotsToKeep bounds disk use: older snapshots beyond this many are
// pruned after each successful write. Keeping more than one means a
// corrupt newest snapshot still leaves a valid fallback.
const snapshotsToKeep = 2

func snapshotPath(dir string, events int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", events))
}

// WriteSnapshot atomically persists a snapshot taken after applying the
// first `events` WAL events. The payload is written CRC-framed to a temp
// file, fsync'd, renamed into place, and the directory fsync'd, so a
// crash mid-write leaves either the complete snapshot or none. The
// caller must ensure those `events` records are already durable (Sync
// the log first): a snapshot whose watermark is ahead of the durable
// tail would make recovery resurrect events the log lost. Failures are
// remembered in Stats.SnapshotErr and counted, so fire-and-forget
// callers cannot fail forever unnoticed; the error clears on the next
// successful write.
func (l *Log) WriteSnapshot(events int64, payload []byte) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if err := l.writeSnapshotLocked(events, payload); err != nil {
		l.noteSnapshotErrLocked(err)
		return err
	}
	l.snapErr = nil
	l.snapshots++
	if events > l.lastSnapEvents {
		l.lastSnapEvents = events
	}
	if l.snapsC != nil {
		l.snapsC.Inc()
	}
	l.pruneSnapshotsLocked()
	return nil
}

// WriteSnapshotJSON marshals state and persists it via WriteSnapshot, so
// a marshal failure is recorded the same way as a write failure instead
// of vanishing in a background goroutine.
func (l *Log) WriteSnapshotJSON(events int64, state interface{}) error {
	payload, err := json.Marshal(state)
	if err != nil {
		err = fmt.Errorf("wal: snapshot: marshal: %w", err)
		l.snapMu.Lock()
		l.noteSnapshotErrLocked(err)
		l.snapMu.Unlock()
		return err
	}
	return l.WriteSnapshot(events, payload)
}

func (l *Log) writeSnapshotLocked(events int64, payload []byte) error {
	final := snapshotPath(l.dir, events)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := writeFrameTo(w, payload); err == nil {
		err = w.Flush()
	} else {
		w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return syncDir(l.dir)
}

// noteSnapshotErrLocked records a failed snapshot attempt: the latest
// error surfaces in Stats.SnapshotErr and every failure increments the
// mtshare_wal_snapshot_errors_total counter.
func (l *Log) noteSnapshotErrLocked(err error) {
	l.snapErr = err
	if l.snapErrsC != nil {
		l.snapErrsC.Inc()
	}
}

func writeFrameTo(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderBytes]byte
	putFrameHeader(hdr[:], payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// LatestSnapshot returns the newest snapshot whose CRC verifies, skipping
// corrupt or torn ones. ok is false when no usable snapshot exists (the
// host then replays the log from genesis).
func (l *Log) LatestSnapshot() (events int64, payload []byte, ok bool, err error) {
	return l.LatestSnapshotAtOrBefore(int64(^uint64(0) >> 1))
}

// LatestSnapshotAtOrBefore is LatestSnapshot restricted to snapshots
// whose watermark does not exceed maxEvents — the number of records the
// reopened log actually holds. A snapshot ahead of that bound reflects
// events the log lost (it became durable before the WAL tail it
// promises), so recovery must skip it and fall back to an older
// snapshot or a genesis replay rather than resurrect phantom state.
func (l *Log) LatestSnapshotAtOrBefore(maxEvents int64) (events int64, payload []byte, ok bool, err error) {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		if files[i].events > maxEvents {
			continue // durable ahead of the recovered log: unusable
		}
		payload, rerr := readSnapshotFile(files[i].path)
		if rerr != nil {
			continue // torn or corrupt: fall back to the previous one
		}
		return files[i].events, payload, true, nil
	}
	return 0, nil, false, nil
}

type snapshotFile struct {
	path   string
	events int64
}

// listSnapshots returns the directory's snapshot files sorted ascending
// by watermark.
func listSnapshots(dir string) ([]snapshotFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []snapshotFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		ev, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, snapshotFile{path: filepath.Join(dir, name), events: ev})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].events < out[j].events })
	return out, nil
}

func readSnapshotFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	payload, err := readFrame(bufio.NewReader(f))
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// scanSnapshots counts existing snapshot files at Open time.
func (l *Log) scanSnapshots() (count, lastEvents int64, err error) {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return 0, 0, err
	}
	if len(files) > 0 {
		lastEvents = files[len(files)-1].events
	}
	return int64(len(files)), lastEvents, nil
}

// pruneSnapshotsLocked deletes all but the newest snapshotsToKeep files.
// Best-effort: a failed remove is retried implicitly on the next write.
func (l *Log) pruneSnapshotsLocked() {
	files, err := listSnapshots(l.dir)
	if err != nil {
		return
	}
	for i := 0; i+snapshotsToKeep < len(files); i++ {
		os.Remove(files[i].path)
	}
}
