package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one valid record frame for seeding the fuzz corpus.
func frame(payload string) []byte {
	b := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum([]byte(payload), castagnoli))
	copy(b[frameHeaderBytes:], payload)
	return b
}

// FuzzWALReopen feeds arbitrary bytes to the segment scanner as the sole
// segment of a log and checks the repair fixpoint: opening may truncate a
// torn tail, but a second open of the repaired log must find nothing left
// to repair, report the same record count, and read back the same
// payload stream. Appending after repair must keep the log readable.
func FuzzWALReopen(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(`{"version":3,"kind":"system"}`))
	f.Add(append(frame(`{"i":0}`), frame(`{"i":1}`)...))
	f.Add(append(frame(`{"i":0}`), 0xff, 0x00, 0x00, 0x00, 0x01))
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'y', 'l', 'o', 'a', 'd', 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-00000000000000000000.seg")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, SyncEvery: 1}, nil)
		if err != nil {
			// A single segment can only fail Open on I/O errors; arbitrary
			// bytes must always be repairable by truncation.
			t.Fatalf("Open on arbitrary single-segment bytes: %v", err)
		}
		records := l.Records()
		var first bytes.Buffer
		if _, err := first.ReadFrom(l.NewReader()); err != nil {
			t.Fatalf("read after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		l2, err := Open(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if st := l2.Stats(); st.TruncatedBytes != 0 {
			t.Fatalf("repair not a fixpoint: second open truncated %d bytes", st.TruncatedBytes)
		}
		if l2.Records() != records {
			t.Fatalf("records changed across reopen: %d -> %d", records, l2.Records())
		}
		var second bytes.Buffer
		if _, err := second.ReadFrom(l2.NewReader()); err != nil {
			t.Fatalf("read on reopen: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("payload stream changed across reopen")
		}

		if err := l2.Append([]byte(`{"appended":true}`)); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("Close after append: %v", err)
		}
		l3, err := Open(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatalf("Open after append: %v", err)
		}
		if l3.Records() != records+1 {
			t.Fatalf("records after append = %d, want %d", l3.Records(), records+1)
		}
		l3.Close()
	})
}
