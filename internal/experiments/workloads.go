// Workload-shape ablations: four seeded scenarios the paper's plain
// demand profiles never exercise — a concert-exit surge, a
// partition-localized hotspot, a driver-shift changeover mid-run, and
// the meeting-points variant (riders walk ≤ r to a cheaper pickup
// vertex). Each is a deterministic A/B against the unshaped workload
// with hard invariants: a scenario that fails to move the metric it
// exists to move is reported as an error, not a row.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/sim"
	"repro/internal/trace"
)

// workloadGenParams reconstructs the GenParams the Lab's Workday trace
// was generated with, so a shaped day shares the base day's every draw
// and the (base, shaped) pair differs only where the shape injects.
func (l *Lab) workloadGenParams() trace.GenParams {
	min, max := l.World.G.Bounds()
	return trace.GenParams{
		Center:           geo.Midpoint(min, max),
		ExtentMeters:     geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng}),
		TripsPerHourPeak: l.World.Scale.PeakTripsPerHour,
		UniformFrac:      0.15,
		MinTripMeters:    l.World.Scale.BlockMeters * 2,
		Seed:             l.World.Scale.Seed + 200,
	}
}

// prepareWorkload converts shaped trips to requests with the same
// options World.Requests uses, so shaped and unshaped runs differ only
// in the trips themselves.
func (l *Lab) prepareWorkload(trips []trace.Trip, meetingRadius float64) []*fleet.Request {
	return sim.PrepareRequests(l.World.G, l.World.Spx, trips, sim.PrepareOptions{
		SpeedMps:                 15.0 * 1000 / 3600,
		Rho:                      l.World.Scale.Rho,
		Seed:                     l.World.Scale.Seed + 7,
		MeetingPointRadiusMeters: meetingRadius,
	})
}

// runWorkloadCell builds a fresh dispatcher + sim engine and runs the
// requests through the peak window. shards <= 1 keeps the single
// engine; shift enables the changeover.
func (l *Lab) runWorkloadCell(reqs []*fleet.Request, par, shards int, shift sim.ShiftChangeConfig) (*sim.Engine, *sim.Metrics, match.Dispatcher, error) {
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := match.DefaultConfig()
	cfg.SearchRangeMeters = l.World.Scale.GammaMeters
	cfg.Parallelism = par
	cfg.CH = l.World.CH(par)
	if shards > 1 {
		cfg.Sharding.Shards = shards
	}
	eng, err := match.NewDispatcher(pt, l.World.Spx, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	scheme := match.NewScheme(eng, false)
	params := sim.DefaultParams()
	params.Parallelism = par
	params.QueueDepth = 64
	params.Sharding = cfg.Sharding
	params.ShiftChange = shift
	se, err := sim.NewEngine(l.World.G, scheme, params)
	if err != nil {
		return nil, nil, nil, err
	}
	start := PeakWindow().From.Seconds()
	se.PlaceTaxis(l.World.Scale.DefaultTaxis, l.World.Scale.Capacity, l.World.Scale.Seed, start)
	m := se.Run(reqs, start)
	return se, m, eng, nil
}

// workloadSigs compresses a run into the per-request outcome signatures
// the determinism checks compare.
func workloadSigs(m *sim.Metrics) []chRecordSig {
	sigs := make([]chRecordSig, len(m.Records))
	for i, rec := range m.Records {
		sigs[i] = chRecordSig{
			ID: rec.Req.ID, Served: rec.Served, FromQueue: rec.ServedFromQueue, Exp: rec.Expired,
			Assign:  math.Float64bits(rec.AssignSeconds),
			Pickup:  math.Float64bits(rec.PickupSeconds),
			Dropoff: math.Float64bits(rec.DropoffSeconds),
		}
	}
	return sigs
}

func sameSigs(a, b []chRecordSig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AblationSurge A/B-tests the concert-exit surge: the same workday with
// a 3× demand spike injected into 8:15–8:45, every extra trip pouring
// out of one venue at the city center. Hard invariants: the surge
// window must actually carry ≥ 2× the base trips, the same fleet must
// strand strictly more requests than on the base day (a spike that
// costs nothing is dead weight), and the surge run must be
// bit-identical across fleet parallelism 1, 2 and 4.
func (l *Lab) AblationSurge() (*Result, error) {
	r := &Result{
		ID: "ablate-surge", Title: "Concert-exit surge vs base workday (peak, mT-Share)",
		Header: []string{"workload", "parallelism", "requests", "served", "served frac", "unserved"},
		Notes: []string{
			"3x demand multiplier in 8:15-8:45, origins Gaussian (sigma 300 m) around the city-center venue, destinations residential",
		},
	}
	gp := l.workloadGenParams()
	win := PeakWindow()
	surge := trace.SurgeParams{
		Venue:       gp.Center,
		SigmaMeters: 300,
		Start:       8*time.Hour + 15*time.Minute,
		End:         8*time.Hour + 45*time.Minute,
		Multiplier:  3,
		Seed:        l.World.Scale.Seed + 11,
	}
	dsSurge, err := trace.GenerateSurge(trace.Workday, gp, surge)
	if err != nil {
		return nil, err
	}
	baseWin := len(l.World.Workday.Between(surge.Start, surge.End))
	surgeWin := len(dsSurge.Between(surge.Start, surge.End))
	if surgeWin < 2*baseWin {
		return nil, fmt.Errorf("experiments: ablate-surge: window carries %d trips vs base %d — no surge materialized", surgeWin, baseWin)
	}

	baseReqs := l.prepareWorkload(l.World.Workday.Between(win.From, win.To), 0)
	surgeReqs := l.prepareWorkload(dsSurge.Between(win.From, win.To), 0)

	_, mBase, _, err := l.runWorkloadCell(baseReqs, 1, 1, sim.ShiftChangeConfig{})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, []string{"base", fi(1), fi(mBase.Requests), fi(mBase.Served),
		f3(frac(mBase.Served, mBase.Requests)), fi(mBase.Requests - mBase.Served)})

	var baseSigs []chRecordSig
	for _, par := range []int{1, 2, 4} {
		_, m, _, err := l.runWorkloadCell(surgeReqs, par, 1, sim.ShiftChangeConfig{})
		if err != nil {
			return nil, err
		}
		sigs := workloadSigs(m)
		if baseSigs == nil {
			baseSigs = sigs
			if m.Requests-m.Served <= mBase.Requests-mBase.Served {
				return nil, fmt.Errorf("experiments: ablate-surge: surge stranded %d requests vs base %d — the spike cost the fleet nothing",
					m.Requests-m.Served, mBase.Requests-mBase.Served)
			}
		} else if !sameSigs(sigs, baseSigs) {
			return nil, fmt.Errorf("experiments: ablate-surge: parallelism=%d diverged from the parallelism-1 surge run — the scenario is not deterministic", par)
		}
		r.Rows = append(r.Rows, []string{"surge", fi(par), fi(m.Requests), fi(m.Served),
			f3(frac(m.Served, m.Requests)), fi(m.Requests - m.Served)})
	}
	r.Notes = append(r.Notes, fmt.Sprintf("surge window trips %d vs base %d; surge outcomes bit-identical at parallelism 1/2/4", surgeWin, baseWin))
	return r, nil
}

// AblationHotspot A/B-tests partition-localized demand: 60%% of the
// day's origins are re-drawn inside one small disc, so with a 2-shard
// dispatcher the territory owning the disc absorbs a disproportionate
// share of the offered load. Hard invariants: the hotspot day's maximum
// per-shard request share must strictly exceed the base day's (the
// imbalance must materialize in the dispatcher, not just the trace),
// and the hotspot run must be bit-identical across parallelism.
func (l *Lab) AblationHotspot() (*Result, error) {
	r := &Result{
		ID: "ablate-hotspot", Title: "Partition-localized hotspot vs base workday (peak, 2 shards, mT-Share)",
		Header: []string{"workload", "parallelism", "requests", "served", "max shard share"},
	}
	gp := l.workloadGenParams()
	win := PeakWindow()
	hs := trace.HotspotShapeParams{
		Center:       geo.Point{Lat: gp.Center.Lat - 0.25*extentLat(l), Lng: gp.Center.Lng - 0.25*extentLng(l)},
		RadiusMeters: 0.1 * gp.ExtentMeters,
		Frac:         0.6,
		Seed:         l.World.Scale.Seed + 13,
	}
	dsHot, err := trace.GenerateHotspot(trace.Workday, gp, hs)
	if err != nil {
		return nil, err
	}
	baseReqs := l.prepareWorkload(l.World.Workday.Between(win.From, win.To), 0)
	hotReqs := l.prepareWorkload(dsHot.Between(win.From, win.To), 0)

	maxShare := func(eng match.Dispatcher) float64 {
		var total, max int64
		for _, sh := range eng.ShardStats() {
			total += sh.Requests
			if sh.Requests > max {
				max = sh.Requests
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) / float64(total)
	}

	_, mBase, engBase, err := l.runWorkloadCell(baseReqs, 2, 2, sim.ShiftChangeConfig{})
	if err != nil {
		return nil, err
	}
	baseShare := maxShare(engBase)
	r.Rows = append(r.Rows, []string{"base", fi(2), fi(mBase.Requests), fi(mBase.Served), f3(baseShare)})

	var refSigs []chRecordSig
	var hotShare float64
	for _, par := range []int{1, 2} {
		_, m, eng, err := l.runWorkloadCell(hotReqs, par, 2, sim.ShiftChangeConfig{})
		if err != nil {
			return nil, err
		}
		sigs := workloadSigs(m)
		if refSigs == nil {
			refSigs = sigs
			hotShare = maxShare(eng)
		} else if !sameSigs(sigs, refSigs) {
			return nil, fmt.Errorf("experiments: ablate-hotspot: parallelism=%d diverged — the scenario is not deterministic", par)
		}
		r.Rows = append(r.Rows, []string{"hotspot", fi(par), fi(m.Requests), fi(m.Served), f3(maxShare(eng))})
	}
	if hotShare <= baseShare {
		return nil, fmt.Errorf("experiments: ablate-hotspot: max shard share %.3f vs base %.3f — the disc never skewed the dispatcher", hotShare, baseShare)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%.0f%% of origins in a %.0f m disc; max per-shard request share %.3f vs base %.3f", hs.Frac*100, hs.RadiusMeters, hotShare, baseShare),
		"hotspot outcomes bit-identical at parallelism 1/2")
	return r, nil
}

func extentLat(l *Lab) float64 {
	min, max := l.World.G.Bounds()
	return max.Lat - min.Lat
}

func extentLng(l *Lab) float64 {
	min, max := l.World.G.Bounds()
	return max.Lng - min.Lng
}

// AblationShiftChange A/B-tests the driver-shift changeover: ten
// minutes into the peak hour a seeded quarter of the fleet stops taking
// new work and retires as soon as it stands empty; equally many
// replacements come on shift five minutes later. Hard invariants: the
// fleet ends at taxis + cohort, exactly the cohort retired, the supply
// dip must cost something relative to the undisturbed run, and the
// changeover must be bit-identical across parallelism 1, 2 and 4.
func (l *Lab) AblationShiftChange() (*Result, error) {
	r := &Result{
		ID: "ablate-shift", Title: "Driver-shift changeover mid-run vs undisturbed fleet (peak, mT-Share)",
		Header: []string{"workload", "parallelism", "served", "unserved", "fleet", "retired"},
	}
	win := PeakWindow()
	start := win.From.Seconds()
	reqs := l.World.Requests(win, l.World.Scale.Rho, 0)
	sc := sim.ShiftChangeConfig{
		AtSeconds:  start + 600,
		Fraction:   0.25,
		LagSeconds: 300,
		Seed:       l.World.Scale.Seed + 17,
	}
	cohort := int(math.Round(sc.Fraction * float64(l.World.Scale.DefaultTaxis)))

	_, mBase, _, err := l.runWorkloadCell(reqs, 1, 1, sim.ShiftChangeConfig{})
	if err != nil {
		return nil, err
	}
	baseSigs := workloadSigs(mBase)
	r.Rows = append(r.Rows, []string{"no shift", fi(1), fi(mBase.Served), fi(mBase.Requests - mBase.Served),
		fi(l.World.Scale.DefaultTaxis), fi(0)})

	var refSigs []chRecordSig
	for _, par := range []int{1, 2, 4} {
		se, m, _, err := l.runWorkloadCell(reqs, par, 1, sc)
		if err != nil {
			return nil, err
		}
		retired := 0
		for _, tx := range se.Taxis() {
			if tx.Capacity == 0 {
				retired++
				if !tx.Empty() {
					return nil, fmt.Errorf("experiments: ablate-shift: taxi %d retired while carrying passengers", tx.ID)
				}
			}
		}
		if n := len(se.Taxis()); n != l.World.Scale.DefaultTaxis+cohort {
			return nil, fmt.Errorf("experiments: ablate-shift: fleet ended at %d taxis, want %d + %d replacements",
				n, l.World.Scale.DefaultTaxis, cohort)
		}
		if retired != cohort {
			return nil, fmt.Errorf("experiments: ablate-shift: %d taxis retired, want the whole cohort of %d", retired, cohort)
		}
		sigs := workloadSigs(m)
		if refSigs == nil {
			refSigs = sigs
			if m.Served == mBase.Served && sameSigs(sigs, baseSigs) {
				return nil, fmt.Errorf("experiments: ablate-shift: changeover run is byte-identical to the undisturbed run — the scenario is dead weight")
			}
		} else if !sameSigs(sigs, refSigs) {
			return nil, fmt.Errorf("experiments: ablate-shift: parallelism=%d diverged — the changeover is not deterministic", par)
		}
		r.Rows = append(r.Rows, []string{"shift", fi(par), fi(m.Served), fi(m.Requests - m.Served),
			fi(l.World.Scale.DefaultTaxis + cohort), fi(retired)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%.0f%% of the fleet off-shift at +10 min, replacements at +15 min; outcomes bit-identical at parallelism 1/2/4", sc.Fraction*100))
	return r, nil
}

// AblationMeetingPoints sweeps the walking radius r of the
// meeting-points variant over {0, 150, 300} m: riders walk up to r to
// the pickup vertex with the cheapest direct drive, trading a delayed
// release for insertion slack. Hard invariants: per surviving request
// the direct drive never lengthens vs r=0; at r=300 some requests must
// actually move and the total direct distance must measurably shrink
// (the served-rate and detour columns are the payoff); and the r=300
// run must be bit-identical across parallelism.
func (l *Lab) AblationMeetingPoints() (*Result, error) {
	r := &Result{
		ID: "ablate-meeting-points", Title: "Meeting points: walk radius r vs door-snapped pickups (peak, mT-Share)",
		Header: []string{"radius m", "requests", "moved", "total direct km", "served", "served frac"},
		Notes: []string{
			"walk at 1.4 m/s delays the release; the deadline keeps Eq. 9's span, so a shorter drive converts into insertion slack",
		},
	}
	win := PeakWindow()
	trips := l.World.Workday.Between(win.From, win.To)

	base := l.prepareWorkload(trips, 0)
	baseByID := make(map[fleet.RequestID]*fleet.Request, len(base))
	var baseDirect float64
	for _, q := range base {
		baseByID[q.ID] = q
		baseDirect += q.DirectMeters
	}
	_, mBase, _, err := l.runWorkloadCell(base, 1, 1, sim.ShiftChangeConfig{})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, []string{fi(0), fi(mBase.Requests), fi(0),
		f1(baseDirect / 1000), fi(mBase.Served), f3(frac(mBase.Served, mBase.Requests))})

	for _, radius := range []float64{150, 300} {
		reqs := l.prepareWorkload(trips, radius)
		moved := 0
		var direct float64
		for _, q := range reqs {
			direct += q.DirectMeters
			b, ok := baseByID[q.ID]
			if !ok {
				continue
			}
			if q.DirectMeters > b.DirectMeters+1e-9 {
				return nil, fmt.Errorf("experiments: ablate-meeting-points: r=%g lengthened request %d's direct drive (%.1f -> %.1f m)",
					radius, q.ID, b.DirectMeters, q.DirectMeters)
			}
			if q.Origin != b.Origin {
				moved++
			}
		}
		_, m, _, err := l.runWorkloadCell(reqs, 1, 1, sim.ShiftChangeConfig{})
		if err != nil {
			return nil, err
		}
		if radius == 300 {
			if moved == 0 {
				return nil, fmt.Errorf("experiments: ablate-meeting-points: no request moved at r=300 — the variant is dead weight on this world")
			}
			if direct >= baseDirect {
				return nil, fmt.Errorf("experiments: ablate-meeting-points: total direct %.1f km at r=300 vs %.1f km at r=0 — no measurable detour delta",
					direct/1000, baseDirect/1000)
			}
			_, m2, _, err := l.runWorkloadCell(reqs, 2, 1, sim.ShiftChangeConfig{})
			if err != nil {
				return nil, err
			}
			if !sameSigs(workloadSigs(m), workloadSigs(m2)) {
				return nil, fmt.Errorf("experiments: ablate-meeting-points: r=300 diverged between parallelism 1 and 2")
			}
			r.Notes = append(r.Notes, fmt.Sprintf("r=300: %d/%d requests moved, total direct %.1f km vs %.1f km at r=0 (served %d vs %d)",
				moved, len(reqs), direct/1000, baseDirect/1000, m.Served, mBase.Served))
		}
		r.Rows = append(r.Rows, []string{f1(radius), fi(m.Requests), fi(moved),
			f1(direct / 1000), fi(m.Served), f3(frac(m.Served, m.Requests))})
	}
	return r, nil
}

// frac guards the served-rate division on an empty window.
func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
