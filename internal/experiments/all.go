package experiments

import "fmt"

// Experiment names one regenerable artefact.
type Experiment struct {
	ID  string
	Run func(l *Lab) (*Result, error)
}

// All lists every table and figure of §V plus the repository's extra
// ablations, in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig5", (*Lab).Fig5},
		{"fig6", (*Lab).Fig6},
		{"fig7", (*Lab).Fig7},
		{"tab3", (*Lab).Table3},
		{"fig8", (*Lab).Fig8},
		{"fig9", (*Lab).Fig9},
		{"fig10", (*Lab).Fig10},
		{"fig11", (*Lab).Fig11},
		{"fig12", (*Lab).Fig12},
		{"fig13", (*Lab).Fig13},
		{"tab4", (*Lab).Table4},
		{"fig14a", (*Lab).Fig14a},
		{"fig14b", (*Lab).Fig14b},
		{"tab5", (*Lab).Table5},
		{"fig15", (*Lab).Fig15},
		{"fig16", (*Lab).Fig16},
		{"fig17", (*Lab).Fig17},
		{"fig18", (*Lab).Fig18},
		{"fig19", (*Lab).Fig19},
		{"fig20", (*Lab).Fig20},
		{"fig21", (*Lab).Fig21},
		{"ablate-filter", (*Lab).AblationPartitionFilter},
		{"ablate-reorder", (*Lab).AblationReorder},
		{"ablate-probtradeoff", (*Lab).AblationProbTradeoff},
		{"ablate-queue", (*Lab).AblationQueue},
		{"ablate-landmark", (*Lab).AblationLandmark},
		{"ablate-ch", (*Lab).AblationCH},
		{"ablate-shard", (*Lab).AblationShard},
		{"ablate-batch-assign", (*Lab).AblationBatchAssign},
		{"ablate-surge", (*Lab).AblationSurge},
		{"ablate-hotspot", (*Lab).AblationHotspot},
		{"ablate-shift", (*Lab).AblationShiftChange},
		{"ablate-meeting-points", (*Lab).AblationMeetingPoints},
		{"verify", (*Lab).Verify},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
