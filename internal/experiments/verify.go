package experiments

import "fmt"

// Verify runs the headline-claim self-check: each row asserts one of the
// paper's qualitative results against freshly measured (memoised) runs at
// this lab's scale and reports PASS/FAIL. It is the machine-checkable
// summary of EXPERIMENTS.md.
func (l *Lab) Verify() (*Result, error) {
	r := &Result{
		ID:     "verify",
		Title:  "Headline-claim self-check",
		Header: []string{"claim", "measured", "status"},
		Notes: []string{
			"claims asserted in *shape* at this scale; see EXPERIMENTS.md for the paper-vs-measured detail",
		},
	}
	taxis := l.World.Scale.DefaultTaxis

	type check struct {
		claim    string
		measured string
		pass     bool
	}
	var checks []check
	add := func(claim, measured string, pass bool) {
		checks = append(checks, check{claim, measured, pass})
	}

	// Peak-scenario runs.
	peak := map[SchemeName]*SimMetrics{}
	for _, s := range peakSchemes {
		m, err := l.RunAvg(Scenario{Scheme: s, Window: "peak", Taxis: taxis})
		if err != nil {
			return nil, err
		}
		peak[s] = m
	}
	add("ridesharing serves more than No-Sharing (peak)",
		fmt.Sprintf("mT-Share %d vs No-Sharing %d", peak[MTShare].Served, peak[NoSharing].Served),
		peak[MTShare].Served > peak[NoSharing].Served)
	add("No-Sharing has zero detour",
		fmt.Sprintf("%.3f min", peak[NoSharing].MeanDetourMin),
		peak[NoSharing].MeanDetourMin < 0.02)
	add("mT-Share detour below pGreedyDP's (Fig. 8)",
		fmt.Sprintf("%.2f vs %.2f min", peak[MTShare].MeanDetourMin, peak[PGreedyDP].MeanDetourMin),
		peak[MTShare].MeanDetourMin < peak[PGreedyDP].MeanDetourMin)
	add("mT-Share responds in milliseconds",
		fmt.Sprintf("%.2f ms", peak[MTShare].MeanResponseMs),
		peak[MTShare].MeanResponseMs > 0 && peak[MTShare].MeanResponseMs < 1000)
	add("candidate sets: No-Sharing smallest, pGreedyDP largest (Table III)",
		fmt.Sprintf("%.1f / %.1f / %.1f / %.1f",
			peak[NoSharing].MeanCandidates, peak[MTShare].MeanCandidates,
			peak[TShare].MeanCandidates, peak[PGreedyDP].MeanCandidates),
		peak[NoSharing].MeanCandidates < peak[PGreedyDP].MeanCandidates &&
			peak[MTShare].MeanCandidates < peak[PGreedyDP].MeanCandidates)
	add("sharing raises fleet occupancy",
		fmt.Sprintf("mT-Share %.2f vs No-Sharing %.2f pax-m/taxi-m",
			peak[MTShare].MeanOccupancy, peak[NoSharing].MeanOccupancy),
		peak[MTShare].MeanOccupancy > peak[NoSharing].MeanOccupancy)

	// Non-peak with offline subset.
	plain, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "nonpeak", HasOffline: true, Taxis: taxis})
	if err != nil {
		return nil, err
	}
	pro, err := l.RunAvg(Scenario{Scheme: MTSharePro, Window: "nonpeak", HasOffline: true, Taxis: taxis})
	if err != nil {
		return nil, err
	}
	add("probabilistic routing serves more offline requests (Fig. 16)",
		fmt.Sprintf("pro %d vs plain %d offline", pro.ServedOffline, plain.ServedOffline),
		pro.ServedOffline > plain.ServedOffline)
	add("probabilistic routing costs response time (Fig. 11)",
		fmt.Sprintf("pro %.2f vs plain %.2f ms", pro.MeanResponseMs, plain.MeanResponseMs),
		pro.MeanResponseMs > plain.MeanResponseMs)

	// Payment (Fig. 19).
	add("passengers save money under the payment model",
		fmt.Sprintf("fare saving %.1f%%", peak[MTShare].FareSaving*100),
		peak[MTShare].FareSaving > 0)
	add("drivers earn more than under No-Sharing",
		fmt.Sprintf("%.0f vs %.0f income", peak[MTShare].DriverIncome, peak[NoSharing].DriverIncome),
		peak[MTShare].DriverIncome > peak[NoSharing].DriverIncome)

	// Partitioning ablation (Table V, peak side).
	grid, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Taxis: taxis, Partitioning: "grid"})
	if err != nil {
		return nil, err
	}
	add("bipartite partitioning serves at least as many as grid (Table V, peak)",
		fmt.Sprintf("%d vs %d", peak[MTShare].Served, grid.Served),
		peak[MTShare].Served >= grid.Served)

	passed := 0
	for _, c := range checks {
		status := "FAIL"
		if c.pass {
			status = "PASS"
			passed++
		}
		r.Rows = append(r.Rows, []string{c.claim, c.measured, status})
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%d/%d claims hold at this scale", passed, len(checks)))
	return r, nil
}
