package experiments

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/dispatch"
	"repro/internal/fleet"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SchemeName selects a dispatcher for a scenario.
type SchemeName string

// Scheme names.
const (
	NoSharing  SchemeName = "No-Sharing"
	TShare     SchemeName = "T-Share"
	PGreedyDP  SchemeName = "pGreedyDP"
	MTShare    SchemeName = "mT-Share"
	MTSharePro SchemeName = "mT-Share-pro"
)

// Scenario is one fully specified simulation configuration; it doubles as
// the memoisation key, so it must stay comparable.
type Scenario struct {
	Scheme SchemeName
	Window string // "peak" or "nonpeak"
	Taxis  int
	// Replica selects the taxi-placement seed; RunAvg averages over the
	// scale's replica count (the paper repeats every setting ten times).
	Replica int
	// Overridable knobs; zero means the scale default.
	Capacity     int
	Kappa        int
	Gamma        float64
	Rho          float64
	Lambda       float64
	Partitioning string // "" => bipartite
	OfflineFrac  float64
	HasOffline   bool // offline requests present in the workload
	// BaselineCruise grafts probabilistic cruising onto a baseline
	// (Fig. 16's combinatorial schemes).
	BaselineCruise bool
	// Reorder enables exhaustive schedule rearrangement for mT-Share
	// (the ablate-reorder experiment).
	Reorder bool
	// ProbInflation caps probabilistic leg detours at this multiple of
	// the shortest path (the ablate-probtradeoff experiment); 0 = off.
	ProbInflation float64
	// QueueDepth enables the pending-request queue (batched re-dispatch
	// of unserved requests) at the given capacity; 0 = immediate reject.
	// RetryEveryTicks sets the retry cadence (0 = every tick).
	QueueDepth      int
	RetryEveryTicks int
	// BatchAssign runs queue retry rounds as a global min-cost assignment
	// over the full (request, taxi) cost graph instead of greedy
	// deadline-order commits (the ablate-batch-assign experiment); see
	// match.Config.BatchAssign.
	BatchAssign bool
	// DisableLandmarkLB turns off the landmark lower-bound candidate
	// screen for mT-Share engines (the ablate-landmark experiment).
	DisableLandmarkLB bool
	// DisableCH turns off the contraction-hierarchy routing backend for
	// mT-Share engines (the ablate-ch experiment); cold routing queries
	// fall back to bidirectional Dijkstra. Exact either way.
	DisableCH bool
	// Shards splits the mT-Share dispatcher into that many independent
	// per-territory engines with deterministic cross-shard handoff (the
	// ablate-shard experiment); 0 or 1 keeps the single engine.
	// BorderPolicy selects how border candidates resolve ("" = twophase).
	// Outcome-identical to the single engine by construction.
	Shards       int
	BorderPolicy string
}

func (sc Scenario) window() Window {
	if sc.Window == "nonpeak" {
		return NonPeakWindow()
	}
	return PeakWindow()
}

// Lab runs experiments over one world with memoised scenario results.
type Lab struct {
	World *World

	// Parallelism is forwarded to the dispatch pipeline (match.Config) and
	// the per-tick movement loop (sim.Params) of every scenario. 0 uses all
	// CPUs, 1 forces sequential execution; results are identical at every
	// level, only wall time changes.
	Parallelism int

	// TraceEvery samples one in N dispatches of every mT-Share engine the
	// lab builds with a span tree delivered to TraceHandler; 0 disables
	// tracing.
	TraceEvery   int
	TraceHandler func(*obs.Span)

	mu   sync.Mutex
	runs map[Scenario]*sim.Metrics

	// Pipeline observability, accumulated across every mT-Share engine the
	// lab ran (memoised scenarios contribute once).
	pipeMu   sync.Mutex
	pipeline match.EngineStats
	router   roadnet.RouterStats
}

// NewLab builds a lab (and its world) for a scale.
func NewLab(s Scale) (*Lab, error) {
	w, err := BuildWorld(s)
	if err != nil {
		return nil, err
	}
	return &Lab{World: w, runs: make(map[Scenario]*sim.Metrics)}, nil
}

// defaults fills a scenario's zero knobs from the scale.
func (l *Lab) defaults(sc Scenario) Scenario {
	s := l.World.Scale
	if sc.Taxis == 0 {
		sc.Taxis = s.DefaultTaxis
	}
	if sc.Capacity == 0 {
		sc.Capacity = s.Capacity
	}
	if sc.Kappa == 0 {
		sc.Kappa = s.Kappa
	}
	if sc.Gamma == 0 {
		sc.Gamma = s.GammaMeters
	}
	if sc.Rho == 0 {
		sc.Rho = s.Rho
	}
	if sc.Lambda == 0 {
		sc.Lambda = 0.707
	}
	if sc.Partitioning == "" {
		sc.Partitioning = "bipartite"
	}
	if sc.HasOffline && sc.OfflineFrac == 0 {
		sc.OfflineFrac = s.OfflineFrac
	}
	if sc.Window == "" {
		sc.Window = "peak"
	}
	return sc
}

// buildScheme constructs the dispatcher for a scenario.
func (l *Lab) buildScheme(sc Scenario) (dispatch.Scheme, error) {
	switch sc.Scheme {
	case NoSharing, TShare, PGreedyDP:
		cfg := baseline.DefaultConfig()
		cfg.SearchRangeMeters = sc.Gamma
		var inner dispatch.Scheme
		switch sc.Scheme {
		case NoSharing:
			inner = baseline.NewNoSharing(l.World.G, cfg)
		case TShare:
			inner = baseline.NewTShare(l.World.G, cfg)
		default:
			inner = baseline.NewPGreedyDP(l.World.G, cfg)
		}
		if !sc.BaselineCruise {
			return inner, nil
		}
		pt, err := l.World.Partitioning(sc.Partitioning, sc.Kappa)
		if err != nil {
			return nil, err
		}
		mcfg := match.DefaultConfig()
		mcfg.SearchRangeMeters = sc.Gamma
		mcfg.Lambda = sc.Lambda
		mcfg.CH = l.World.CH(l.Parallelism)
		eng, err := match.NewEngine(pt, l.World.Spx, mcfg)
		if err != nil {
			return nil, err
		}
		return &cruisingBaseline{Scheme: inner, engine: eng}, nil
	case MTShare, MTSharePro:
		pt, err := l.World.Partitioning(sc.Partitioning, sc.Kappa)
		if err != nil {
			return nil, err
		}
		cfg := match.DefaultConfig()
		cfg.SearchRangeMeters = sc.Gamma
		cfg.Lambda = sc.Lambda
		cfg.ExhaustiveReorder = sc.Reorder
		cfg.ProbMaxLegInflation = sc.ProbInflation
		cfg.DisableLandmarkLB = sc.DisableLandmarkLB
		cfg.DisableCH = sc.DisableCH
		cfg.BatchAssign = sc.BatchAssign
		cfg.Sharding = match.ShardingConfig{Shards: sc.Shards, BorderPolicy: sc.BorderPolicy}
		if !sc.DisableCH {
			// Share the lab-wide CH: preprocessing is the expensive part
			// and the hierarchy is immutable, so scenarios reuse one copy.
			cfg.CH = l.World.CH(l.Parallelism)
		}
		cfg.Parallelism = l.Parallelism
		if l.TraceEvery > 0 {
			cfg.Tracer = obs.NewTracer(l.TraceEvery, l.TraceHandler)
		}
		eng, err := match.NewDispatcher(pt, l.World.Spx, cfg)
		if err != nil {
			return nil, err
		}
		return match.NewScheme(eng, sc.Scheme == MTSharePro), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", sc.Scheme)
	}
}

// Run executes (or recalls) a scenario and returns its metrics.
func (l *Lab) Run(sc Scenario) (*sim.Metrics, error) {
	sc = l.defaults(sc)
	l.mu.Lock()
	if m, ok := l.runs[sc]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()

	scheme, err := l.buildScheme(sc)
	if err != nil {
		return nil, err
	}
	reqs := l.World.Requests(sc.window(), sc.Rho, sc.OfflineFrac)
	params := l.simParams()
	params.QueueDepth = sc.QueueDepth
	if sc.QueueDepth > 0 {
		params.RetryEveryTicks = sc.RetryEveryTicks
	}
	params.BatchAssign = sc.BatchAssign
	params.Sharding = match.ShardingConfig{Shards: sc.Shards, BorderPolicy: sc.BorderPolicy}
	eng, err := sim.NewEngine(l.World.G, scheme, params)
	if err != nil {
		return nil, err
	}
	start := sc.window().From.Seconds()
	eng.PlaceTaxis(sc.Taxis, sc.Capacity, l.World.Scale.Seed+int64(sc.Replica)*1009, start)
	m := eng.Run(reqs, start)
	l.collectPipelineStats(scheme)

	l.mu.Lock()
	l.runs[sc] = m
	l.mu.Unlock()
	return m, nil
}

// simParams builds the simulation parameters for a lab run.
func (l *Lab) simParams() sim.Params {
	p := sim.DefaultParams()
	p.Parallelism = l.Parallelism
	return p
}

// collectPipelineStats folds a finished scheme's dispatch-pipeline and
// router-cache counters into the lab-wide accumulators.
func (l *Lab) collectPipelineStats(scheme dispatch.Scheme) {
	s, ok := scheme.(interface {
		Stats() match.EngineStats
		Router() *roadnet.Router
	})
	if !ok {
		return
	}
	rs := s.Router().Stats()
	l.pipeMu.Lock()
	l.pipeline.Add(s.Stats())
	l.router.Hits += rs.Hits
	l.router.Misses += rs.Misses
	l.router.SingleflightDeduped += rs.SingleflightDeduped
	l.router.CachedTrees += rs.CachedTrees
	l.router.MemoryBytes += rs.MemoryBytes
	l.pipeMu.Unlock()
}

// PipelineStats returns the dispatch-pipeline counters and router-cache
// totals accumulated over every mT-Share engine the lab has run. The
// router snapshot aggregates per-engine caches (CachedTrees/MemoryBytes
// sum over engines; Shards is not populated).
func (l *Lab) PipelineStats() (match.EngineStats, roadnet.RouterStats) {
	l.pipeMu.Lock()
	defer l.pipeMu.Unlock()
	return l.pipeline, l.router
}

// RunAvg runs a scenario once per replica (varying taxi placement) and
// returns the metrics averaged across replicas, mirroring the paper's
// repeat-ten-times-and-average protocol. Per-request Records are not
// merged.
func (l *Lab) RunAvg(sc Scenario) (*sim.Metrics, error) {
	n := l.World.Scale.Replicas
	if n <= 1 {
		return l.Run(sc)
	}
	// Replicas are independent simulations; run them concurrently.
	results := make([]*sim.Metrics, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			scr := sc
			scr.Replica = r
			results[r], errs[r] = l.Run(scr)
		}(r)
	}
	wg.Wait()
	var acc *sim.Metrics
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			return nil, errs[r]
		}
		m := results[r]
		if acc == nil {
			cp := *m
			cp.Records = nil
			acc = &cp
			continue
		}
		acc.Served += m.Served
		acc.ServedOnline += m.ServedOnline
		acc.ServedOffline += m.ServedOffline
		acc.Delivered += m.Delivered
		acc.Queued += m.Queued
		acc.ServedFromQueue += m.ServedFromQueue
		acc.ExpiredInQueue += m.ExpiredInQueue
		acc.MeanQueueWaitMin += m.MeanQueueWaitMin
		acc.MeanResponseMs += m.MeanResponseMs
		acc.P95ResponseMs += m.P95ResponseMs
		acc.MeanDetourMin += m.MeanDetourMin
		acc.MeanWaitingMin += m.MeanWaitingMin
		acc.MeanCandidates += m.MeanCandidates
		acc.DriverIncome += m.DriverIncome
		acc.TotalPaid += m.TotalPaid
		acc.TotalRegularFare += m.TotalRegularFare
		acc.FareSaving += m.FareSaving
		acc.IndexMemoryBytes += m.IndexMemoryBytes
		acc.ExecutionSecs += m.ExecutionSecs
	}
	f := float64(n)
	acc.Served = int(float64(acc.Served)/f + 0.5)
	acc.ServedOnline = int(float64(acc.ServedOnline)/f + 0.5)
	acc.ServedOffline = int(float64(acc.ServedOffline)/f + 0.5)
	acc.Delivered = int(float64(acc.Delivered)/f + 0.5)
	acc.Queued = int(float64(acc.Queued)/f + 0.5)
	acc.ServedFromQueue = int(float64(acc.ServedFromQueue)/f + 0.5)
	acc.ExpiredInQueue = int(float64(acc.ExpiredInQueue)/f + 0.5)
	acc.MeanQueueWaitMin /= f
	acc.MeanResponseMs /= f
	acc.P95ResponseMs /= f
	acc.MeanDetourMin /= f
	acc.MeanWaitingMin /= f
	acc.MeanCandidates /= f
	acc.DriverIncome /= f
	acc.TotalPaid /= f
	acc.TotalRegularFare /= f
	acc.FareSaving /= f
	acc.IndexMemoryBytes = int64(float64(acc.IndexMemoryBytes) / f)
	acc.ExecutionSecs /= f
	return acc, nil
}

// cruisingBaseline grafts mT-Share's probabilistic idle cruising onto a
// baseline dispatcher — the paper's Fig. 16 "probabilistic routing +
// T-Share/pGreedyDP" combinations.
type cruisingBaseline struct {
	dispatch.Scheme
	engine *match.Engine
}

// Name marks the combination.
func (c *cruisingBaseline) Name() string { return c.Scheme.Name() + "+prob" }

// PlanIdle cruises the idle taxi toward likely offline demand.
func (c *cruisingBaseline) PlanIdle(t *fleet.Taxi, nowSeconds float64) bool {
	if !t.Empty() || len(t.Route()) > 1 {
		return false
	}
	path, ok := c.engine.CruisePlan(t, 3000)
	if !ok {
		return false
	}
	if err := t.SetPlan(nil, [][]roadnet.VertexID{path}); err != nil {
		return false
	}
	c.Scheme.OnTaxiAdvanced(t, nowSeconds)
	return true
}

// dayOf maps a window name to its trace day (used by Fig. 21).
func dayOf(window string) trace.DayKind {
	if window == "nonpeak" {
		return trace.Weekend
	}
	return trace.Workday
}
