package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/sim"
)

// Fig14a reproduces the impact of the partition count κ on served
// requests (peak, mT-Share).
func (l *Lab) Fig14a() (*Result, error) {
	r := &Result{
		ID: "fig14a", Title: "Impact of partition number kappa on served requests (peak, mT-Share)",
		XLabel: "kappa", YLabel: "served requests",
		Notes: []string{"paper: served requests rise then fall; the sweet spot sits mid-sweep (kappa=150 of 50-250)"},
	}
	s := Series{Label: string(MTShare)}
	for _, k := range l.World.Scale.KappaSweep {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Kappa: k})
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, float64(m.Served))
	}
	r.Series = append(r.Series, s)
	return r, nil
}

// Fig14b reproduces the impact of taxi capacity on served requests (peak,
// mT-Share).
func (l *Lab) Fig14b() (*Result, error) {
	r := &Result{
		ID: "fig14b", Title: "Impact of taxi capacity on served requests (peak, mT-Share)",
		XLabel: "capacity (seats)", YLabel: "served requests",
		Notes: []string{"paper: capacity 6 serves ~12% more than capacity 2"},
	}
	s := Series{Label: string(MTShare)}
	for _, c := range l.World.Scale.CapSweep {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Capacity: c})
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(c))
		s.Y = append(s.Y, float64(m.Served))
	}
	r.Series = append(r.Series, s)
	return r, nil
}

// Table5 reproduces the map-partitioning ablation: bipartite versus grid
// partitioning for mT-Share in both scenarios.
func (l *Lab) Table5() (*Result, error) {
	r := &Result{
		ID: "tab5", Title: "Bipartite vs grid map partitioning (mT-Share)",
		Header: []string{"scenario", "partitioning", "served", "detour (min)"},
		Notes:  []string{"paper: bipartite partitioning serves >=6% more requests and cuts detour by 3-7% in both scenarios"},
	}
	for _, win := range []string{"peak", "nonpeak"} {
		offline := win == "nonpeak"
		scheme := MTShare
		if offline {
			scheme = MTSharePro
		}
		for _, kind := range []string{"bipartite", "grid"} {
			m, err := l.RunAvg(Scenario{Scheme: scheme, Window: win, HasOffline: offline, Partitioning: kind})
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{win, kind, fi(m.Served), f2(m.MeanDetourMin)})
		}
	}
	return r, nil
}

// Fig15 reproduces the impact of the search range γ on detour and waiting
// time (peak).
func (l *Lab) Fig15() (*Result, error) {
	r := &Result{
		ID: "fig15", Title: "Impact of search range gamma on detour and waiting time (peak)",
		XLabel: "gamma (m)", YLabel: "minutes",
		Notes: []string{"paper: both detour and waiting grow with gamma; T-Share best service quality, mT-Share better than pGreedyDP"},
	}
	for _, scheme := range peakSchemes {
		det := Series{Label: string(scheme) + " detour"}
		wai := Series{Label: string(scheme) + " waiting"}
		for _, g := range l.World.Scale.GammaSweep {
			m, err := l.RunAvg(Scenario{Scheme: scheme, Window: "peak", Gamma: g})
			if err != nil {
				return nil, err
			}
			det.X = append(det.X, g)
			det.Y = append(det.Y, m.MeanDetourMin)
			wai.X = append(wai.X, g)
			wai.Y = append(wai.Y, m.MeanWaitingMin)
		}
		r.Series = append(r.Series, det, wai)
	}
	return r, nil
}

// Fig16 reproduces the routing-mode study: online/offline served
// composition for basic versus probabilistic routing combined with
// T-Share, pGreedyDP, and mT-Share (non-peak).
func (l *Lab) Fig16() (*Result, error) {
	r := &Result{
		ID: "fig16", Title: "Basic vs probabilistic routing: served composition (non-peak)",
		Header: []string{"scheme", "routing", "online", "offline", "total"},
		Notes: []string{
			"paper: probabilistic routing brings +89%/+46%/+34% more offline requests for T-Share/pGreedyDP/mT-Share",
			"baseline 'probabilistic' = the baseline dispatcher plus probabilistic cruising of idle taxis",
		},
	}
	type combo struct {
		scheme SchemeName
		label  string
		sc     Scenario
	}
	combos := []combo{
		{TShare, "basic", Scenario{Scheme: TShare, Window: "nonpeak", HasOffline: true}},
		{TShare, "probabilistic", Scenario{Scheme: TShare, Window: "nonpeak", HasOffline: true, BaselineCruise: true}},
		{PGreedyDP, "basic", Scenario{Scheme: PGreedyDP, Window: "nonpeak", HasOffline: true}},
		{PGreedyDP, "probabilistic", Scenario{Scheme: PGreedyDP, Window: "nonpeak", HasOffline: true, BaselineCruise: true}},
		{MTShare, "basic", Scenario{Scheme: MTShare, Window: "nonpeak", HasOffline: true}},
		{MTShare, "probabilistic", Scenario{Scheme: MTSharePro, Window: "nonpeak", HasOffline: true}},
	}
	for _, c := range combos {
		m, err := l.RunAvg(c.sc)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			string(c.scheme), c.label, fi(m.ServedOnline), fi(m.ServedOffline), fi(m.Served),
		})
	}
	return r, nil
}

// Fig17 reproduces the impact of the flexible factor ρ on waiting time
// (peak, ridesharing schemes).
func (l *Lab) Fig17() (*Result, error) {
	r := &Result{
		ID: "fig17", Title: "Impact of flexible factor rho on waiting time (peak)",
		XLabel: "rho", YLabel: "mean waiting (min)",
		Notes: []string{"paper: waiting grows with rho; T-Share shortest; mT-Share within 1.2 min of pGreedyDP"},
	}
	for _, scheme := range []SchemeName{TShare, PGreedyDP, MTShare} {
		s := Series{Label: string(scheme)}
		for _, rho := range l.World.Scale.RhoSweep {
			m, err := l.RunAvg(Scenario{Scheme: scheme, Window: "peak", Rho: rho})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, rho)
			s.Y = append(s.Y, m.MeanWaitingMin)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig18 reproduces the impact of ρ on detour time and served requests
// (peak, mT-Share).
func (l *Lab) Fig18() (*Result, error) {
	r := &Result{
		ID: "fig18", Title: "Impact of rho on detour time and served requests (peak, mT-Share)",
		XLabel: "rho", YLabel: "detour (min) / served",
		Notes: []string{"paper: both grow with rho; beyond rho=1.3 serving gains flatten while detour keeps climbing (+4% served costs +48% detour at 1.4)"},
	}
	det := Series{Label: "detour (min)"}
	srv := Series{Label: "served requests"}
	for _, rho := range l.World.Scale.RhoSweep {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Rho: rho})
		if err != nil {
			return nil, err
		}
		det.X = append(det.X, rho)
		det.Y = append(det.Y, m.MeanDetourMin)
		srv.X = append(srv.X, rho)
		srv.Y = append(srv.Y, float64(m.Served))
	}
	r.Series = append(r.Series, det, srv)
	return r, nil
}

// Fig19 reproduces the payment-model study: passengers' fare reduction
// and drivers' profit increase versus ρ (peak). Profit increase compares
// mT-Share's total driver income to the regular (No-Sharing) service at
// the same ρ.
func (l *Lab) Fig19() (*Result, error) {
	r := &Result{
		ID: "fig19", Title: "Impact of rho on fare reduction and driver profit increase (peak)",
		XLabel: "rho", YLabel: "percent",
		Notes: []string{"paper: at rho=1.3 passengers save 8.6% fare and drivers earn 7.8% more; larger rho saves passengers more but erodes driver profit"},
	}
	fare := Series{Label: "passenger fare saving (%)"}
	prof := Series{Label: "driver profit increase (%)"}
	for _, rho := range l.World.Scale.RhoSweep {
		mt, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Rho: rho})
		if err != nil {
			return nil, err
		}
		no, err := l.RunAvg(Scenario{Scheme: NoSharing, Window: "peak", Rho: rho})
		if err != nil {
			return nil, err
		}
		fare.X = append(fare.X, rho)
		fare.Y = append(fare.Y, mt.FareSaving*100)
		prof.X = append(prof.X, rho)
		inc := 0.0
		if no.DriverIncome > 0 {
			inc = (mt.DriverIncome/no.DriverIncome - 1) * 100
		}
		prof.Y = append(prof.Y, inc)
	}
	r.Series = append(r.Series, fare, prof)
	return r, nil
}

// Fig20 reproduces the impact of the direction threshold θ (λ = cos θ) on
// served requests and response time (peak, mT-Share).
func (l *Lab) Fig20() (*Result, error) {
	r := &Result{
		ID: "fig20", Title: "Impact of max direction difference theta on served requests and response time (peak, mT-Share)",
		XLabel: "theta (deg)", YLabel: "served / response (ms)",
		Notes: []string{"paper: served grows slightly with theta while response time grows steeply; theta=45 balances both"},
	}
	srv := Series{Label: "served requests"}
	rsp := Series{Label: "response (ms)"}
	for _, th := range l.World.Scale.ThetaSweep {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Lambda: geo.CosOfDegrees(th)})
		if err != nil {
			return nil, err
		}
		srv.X = append(srv.X, th)
		srv.Y = append(srv.Y, float64(m.Served))
		rsp.X = append(rsp.X, th)
		rsp.Y = append(rsp.Y, m.MeanResponseMs)
	}
	r.Series = append(r.Series, srv, rsp)
	return r, nil
}

// Fig21 reproduces the scalability study: total execution time and mean
// response time as the replayed data grows from 1 hour to 13 hours
// (workday for mT-Share, weekend with offline subset for mT-Share_pro).
func (l *Lab) Fig21() (*Result, error) {
	r := &Result{
		ID: "fig21", Title: "Scalability with used data amounts (7:00 onward)",
		XLabel: "hours of data", YLabel: "execution (s) / response (ms)",
		Notes: []string{"paper: execution time grows linearly with data volume; response time stays flat (110 ms workday / 420 ms weekend)"},
	}
	hoursSweep := []int{1, 3, 5, 7}
	pipe0, rt0 := l.PipelineStats()
	type variant struct {
		scheme  SchemeName
		window  string
		offline bool
		label   string
	}
	for _, v := range []variant{
		{MTShare, "peak", false, "workday mT-Share"},
		{MTSharePro, "nonpeak", true, "weekend mT-Share-pro"},
	} {
		exec := Series{Label: v.label + " exec (s)"}
		resp := Series{Label: v.label + " resp (ms)"}
		for _, hours := range hoursSweep {
			m, err := l.runHours(v.scheme, v.window, v.offline, hours)
			if err != nil {
				return nil, err
			}
			exec.X = append(exec.X, float64(hours))
			exec.Y = append(exec.Y, m.ExecutionSecs)
			resp.X = append(resp.X, float64(hours))
			resp.Y = append(resp.Y, m.MeanResponseMs)
		}
		r.Series = append(r.Series, exec, resp)
	}
	// Where the dispatch time of this sweep went, and how the shared-tree
	// cache behaved (deltas over the sweep's own runs).
	pipe1, rt1 := l.PipelineStats()
	secs := func(ns int64) float64 { return float64(ns) / 1e9 }
	r.Notes = append(r.Notes, fmt.Sprintf(
		"dispatch stages over this sweep: candidate search %.1fs, scheduling %.1fs, leg build %.1fs (%d dispatches)",
		secs(pipe1.CandidateSearchNanos-pipe0.CandidateSearchNanos),
		secs(pipe1.SchedulingNanos-pipe0.SchedulingNanos),
		secs(pipe1.LegBuildNanos-pipe0.LegBuildNanos),
		pipe1.Dispatches-pipe0.Dispatches))
	hits, misses := rt1.Hits-rt0.Hits, rt1.Misses-rt0.Misses
	if q := hits + misses; q > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"router cache: %.1f%% hit rate (%d queries), %d SSSP computations, %d singleflight-deduped",
			100*float64(hits)/float64(q), q, misses,
			rt1.SingleflightDeduped-rt0.SingleflightDeduped))
	}
	return r, nil
}

// runHours runs a scheme over an extended data window starting at 7:00,
// outside the scenario memoisation (windows differ per call).
func (l *Lab) runHours(scheme SchemeName, window string, offline bool, hours int) (*sim.Metrics, error) {
	sc := l.defaults(Scenario{Scheme: scheme, Window: window, HasOffline: offline})
	sch, err := l.buildScheme(sc)
	if err != nil {
		return nil, err
	}
	win := Window{Day: dayOf(window), From: 7 * time.Hour, To: time.Duration(7+hours) * time.Hour}
	reqs := l.World.Requests(win, sc.Rho, sc.OfflineFrac)
	eng, err := sim.NewEngine(l.World.G, sch, l.simParams())
	if err != nil {
		return nil, err
	}
	eng.PlaceTaxis(sc.Taxis, sc.Capacity, l.World.Scale.Seed, win.From.Seconds())
	m := eng.Run(reqs, win.From.Seconds())
	l.collectPipelineStats(sch)
	return m, nil
}

// AblationReorder quantifies the scheduling choice §IV-C2 makes: how much
// the insertion-only heuristic loses against exhaustive schedule
// rearrangement (the theoretical optimum the paper rules out as
// computationally prohibitive).
func (l *Lab) AblationReorder() (*Result, error) {
	r := &Result{
		ID: "ablate-reorder", Title: "Insertion-only scheduling vs exhaustive rearrangement (peak, mT-Share)",
		Header: []string{"scheduler", "served", "detour (min)", "response (ms)"},
		Notes: []string{
			"the paper adopts insertion-only scheduling; rearrangement is the theoretical upper bound at factorial cost",
		},
	}
	for _, row := range []struct {
		label   string
		reorder bool
	}{
		{"insertion-only", false},
		{"exhaustive-reorder", true},
	} {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Reorder: row.reorder})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{row.label, fi(m.Served), f2(m.MeanDetourMin), f2(m.MeanResponseMs)})
	}
	return r, nil
}

// AblationProbTradeoff explores the probability-versus-detour trade-off
// the paper defers to future work: bounding each probabilistic leg's
// detour at a multiple of its shortest path trades offline encounters for
// detour time.
func (l *Lab) AblationProbTradeoff() (*Result, error) {
	r := &Result{
		ID: "ablate-probtradeoff", Title: "Probabilistic-leg detour cap vs offline serving (non-peak, mT-Share-pro)",
		Header: []string{"max leg inflation", "served total", "served offline", "detour (min)"},
		Notes: []string{
			"paper §IV-C2: 'how to balance the trade-off between this probability and the total detour costs will be explored in our future work'",
		},
	}
	for _, inflation := range []float64{1.05, 1.2, 1.5, 2.0, 0} {
		m, err := l.RunAvg(Scenario{Scheme: MTSharePro, Window: "nonpeak", HasOffline: true, ProbInflation: inflation})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.2fx", inflation)
		if inflation == 0 {
			label = "unbounded"
		}
		r.Rows = append(r.Rows, []string{label, fi(m.Served), fi(m.ServedOffline), f2(m.MeanDetourMin)})
	}
	return r, nil
}

// AblationQueue measures the pending-request queue (batched re-dispatch
// of unserved requests until their pickup deadline) against immediate
// rejection, at peak load on a deliberately constrained fleet so
// dispatch failures are common enough for retries to matter.
func (l *Lab) AblationQueue() (*Result, error) {
	taxis := l.World.Scale.DefaultTaxis / 2
	r := &Result{
		ID: "ablate-queue", Title: fmt.Sprintf("Pending-queue re-dispatch vs immediate reject (peak, mT-Share, %d taxis)", taxis),
		Header: []string{"queue depth", "served", "served rate", "from queue", "expired in queue", "mean queue wait (min)"},
		Notes: []string{
			"depth 0 is the paper's immediate-reject behaviour; parked requests retry every tick until served or their pickup deadline passes",
		},
	}
	for _, depth := range []int{0, 8, 16, 32, 64} {
		m, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Taxis: taxis, QueueDepth: depth})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			fi(depth), fi(m.Served), f3(m.ServedRate()),
			fi(m.ServedFromQueue), fi(m.ExpiredInQueue), f2(m.MeanQueueWaitMin),
		})
	}
	return r, nil
}

// AblationPartitionFilter compares basic-routing legs (cached shortest
// paths, the paper's evaluation setup) against the partition-filtered
// Dijkstra production path: routing cost inflation and query counts. It
// is the DESIGN.md ablation for the Alg. 2/3 design choice.
func (l *Lab) AblationPartitionFilter() (*Result, error) {
	r := &Result{
		ID: "ablate-filter", Title: "Partition-filtered routing vs cached shortest paths",
		Header: []string{"pairs", "mean inflation", "max inflation", "filtered kept (mean partitions)"},
		Notes: []string{
			"the filter prunes the search space at a bounded route-quality cost; the paper's evaluation bypasses it via the all-pairs cache",
		},
	}
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, err
	}
	cfg := match.DefaultConfig()
	cfg.SearchRangeMeters = l.World.Scale.GammaMeters
	cfg.CH = l.World.CH(0)
	eng, err := match.NewEngine(pt, l.World.Spx, cfg)
	if err != nil {
		return nil, err
	}
	reqs := l.World.Requests(PeakWindow(), l.World.Scale.Rho, 0)
	var (
		n        int
		sumInfl  float64
		maxInfl  float64
		sumParts int
	)
	for i, req := range reqs {
		if i >= 200 {
			break
		}
		fc, ok := eng.FilteredLegCost(req.Origin, req.Dest)
		if !ok {
			continue
		}
		bc, ok := eng.BasicLegCost(req.Origin, req.Dest)
		if !ok || bc <= 0 {
			continue
		}
		infl := fc / bc
		sumInfl += infl
		if infl > maxInfl {
			maxInfl = infl
		}
		sumParts += len(eng.PartitionFilter(req.Origin, req.Dest))
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: no routable pairs for ablation")
	}
	r.Rows = append(r.Rows, []string{
		fi(n), f2(sumInfl / float64(n)), f2(maxInfl), f1(float64(sumParts) / float64(n)),
	})
	return r, nil
}

// AblationLandmark A/B-tests the landmark lower-bound candidate screen:
// the oracle must prune work (lb pruned > 0) without changing a single
// outcome — identical served and rejected counts with the oracle on and
// off, at every dispatch parallelism level. The experiment *enforces* that
// parity and errors on any mismatch, so a regression in the oracle's
// admissibility cannot hide in a table.
//
// It drives sim engines directly rather than going through Lab.Run:
// Lab.Parallelism is not part of the scenario memo key, and the sweep
// needs one fresh engine per (parallelism, oracle) cell anyway.
func (l *Lab) AblationLandmark() (*Result, error) {
	r := &Result{
		ID: "ablate-landmark", Title: "Landmark lower-bound candidate screen vs exact-only evaluation (peak, mT-Share)",
		Header: []string{"parallelism", "oracle", "served", "rejected", "lb evaluated", "lb pruned", "prune ratio"},
		Notes: []string{
			"the oracle screens candidates with an admissible lower bound before exact schedule evaluation; pruning is lossless, so every row of one parallelism level must agree on served/rejected",
		},
	}
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, err
	}
	win := PeakWindow()
	start := win.From.Seconds()
	type cell struct {
		served, rejected int
	}
	var baseline *cell
	prunedTotal := int64(0)
	for _, par := range []int{1, 2, 4} {
		for _, disable := range []bool{false, true} {
			cfg := match.DefaultConfig()
			cfg.SearchRangeMeters = l.World.Scale.GammaMeters
			cfg.Parallelism = par
			cfg.DisableLandmarkLB = disable
			cfg.CH = l.World.CH(par)
			eng, err := match.NewEngine(pt, l.World.Spx, cfg)
			if err != nil {
				return nil, err
			}
			scheme := match.NewScheme(eng, false)
			params := sim.DefaultParams()
			params.Parallelism = par
			se, err := sim.NewEngine(l.World.G, scheme, params)
			if err != nil {
				return nil, err
			}
			se.PlaceTaxis(l.World.Scale.DefaultTaxis, l.World.Scale.Capacity, l.World.Scale.Seed, start)
			reqs := l.World.Requests(win, l.World.Scale.Rho, 0)
			m := se.Run(reqs, start)
			st := eng.Stats()
			c := cell{served: m.Served, rejected: m.Requests - m.Served}
			if baseline == nil {
				baseline = &c
			} else if c != *baseline {
				return nil, fmt.Errorf("experiments: ablate-landmark parity broken: parallelism=%d oracle=%v served/rejected %d/%d, expected %d/%d — the lower bound pruned a feasible candidate",
					par, !disable, c.served, c.rejected, baseline.served, baseline.rejected)
			}
			label := "on"
			ratio := 0.0
			if disable {
				label = "off"
			} else {
				prunedTotal += st.LBPruned
				if st.LBEvaluated > 0 {
					ratio = float64(st.LBPruned) / float64(st.LBEvaluated)
				}
			}
			r.Rows = append(r.Rows, []string{
				fi(par), label, fi(c.served), fi(c.rejected),
				fi(int(st.LBEvaluated)), fi(int(st.LBPruned)), f3(ratio),
			})
		}
	}
	if prunedTotal == 0 {
		return nil, fmt.Errorf("experiments: ablate-landmark pruned nothing — the screen is dead weight on this workload")
	}
	r.Notes = append(r.Notes, fmt.Sprintf("parity held: every cell served %d and rejected %d", baseline.served, baseline.rejected))
	return r, nil
}

// chRecordSig is the per-request outcome signature AblationCH compares
// across cells: who was served, from where, and the bit patterns of the
// decision times. ResponseNanos is deliberately absent — it is wall
// clock, not simulation outcome.
type chRecordSig struct {
	ID                      fleet.RequestID
	Served, FromQueue, Exp  bool
	Assign, Pickup, Dropoff uint64
}

// AblationCH A/B-tests the contraction-hierarchy routing backend: the
// hierarchy answers cold routing queries exactly (bit-identical costs to
// Dijkstra), so toggling it must not change a single outcome. The
// experiment *enforces* that at parallelism 1, 2 and 4 — served and
// rejected counts must match across every cell, and every per-request
// record (served/queued/expired flags plus the Float64bits of the
// assign/pickup/dropoff times) must be identical between the CH-on and
// CH-off runs. Any mismatch is a hard error: an inexact shortcut cannot
// hide in a table. A vacuousness guard additionally requires the CH-on
// cells to have actually routed through the hierarchy.
//
// Like AblationLandmark, it drives sim engines directly: the sweep needs
// one fresh engine per (parallelism, backend) cell.
func (l *Lab) AblationCH() (*Result, error) {
	r := &Result{
		ID: "ablate-ch", Title: "Contraction-hierarchy routing backend vs bidirectional Dijkstra (peak, mT-Share)",
		Header: []string{"parallelism", "ch", "served", "rejected", "ch queries", "bidir queries"},
		Notes: []string{
			"the CH serves exact shortest-path costs, so every cell must agree on served/rejected counts and on every per-request outcome record, bit for bit",
		},
	}
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, err
	}
	win := PeakWindow()
	start := win.From.Seconds()
	var (
		baseSigs            []chRecordSig
		baseServed, baseRej int
		haveBase            bool
		chQueriesTotal      int64
	)
	for _, par := range []int{1, 2, 4} {
		for _, disable := range []bool{false, true} {
			cfg := match.DefaultConfig()
			cfg.SearchRangeMeters = l.World.Scale.GammaMeters
			cfg.Parallelism = par
			cfg.DisableCH = disable
			if !disable {
				cfg.CH = l.World.CH(par)
			}
			eng, err := match.NewEngine(pt, l.World.Spx, cfg)
			if err != nil {
				return nil, err
			}
			scheme := match.NewScheme(eng, false)
			params := sim.DefaultParams()
			params.Parallelism = par
			se, err := sim.NewEngine(l.World.G, scheme, params)
			if err != nil {
				return nil, err
			}
			se.PlaceTaxis(l.World.Scale.DefaultTaxis, l.World.Scale.Capacity, l.World.Scale.Seed, start)
			reqs := l.World.Requests(win, l.World.Scale.Rho, 0)
			m := se.Run(reqs, start)
			sigs := make([]chRecordSig, len(m.Records))
			for i, rec := range m.Records {
				sigs[i] = chRecordSig{
					ID: rec.Req.ID, Served: rec.Served, FromQueue: rec.ServedFromQueue, Exp: rec.Expired,
					Assign:  math.Float64bits(rec.AssignSeconds),
					Pickup:  math.Float64bits(rec.PickupSeconds),
					Dropoff: math.Float64bits(rec.DropoffSeconds),
				}
			}
			served, rejected := m.Served, m.Requests-m.Served
			if !haveBase {
				baseSigs, baseServed, baseRej, haveBase = sigs, served, rejected, true
			} else {
				if served != baseServed || rejected != baseRej {
					return nil, fmt.Errorf("experiments: ablate-ch parity broken: parallelism=%d ch=%v served/rejected %d/%d, expected %d/%d — the hierarchy changed a dispatch outcome",
						par, !disable, served, rejected, baseServed, baseRej)
				}
				if len(sigs) != len(baseSigs) {
					return nil, fmt.Errorf("experiments: ablate-ch parity broken: parallelism=%d ch=%v produced %d records, expected %d",
						par, !disable, len(sigs), len(baseSigs))
				}
				for i := range sigs {
					if sigs[i] != baseSigs[i] {
						return nil, fmt.Errorf("experiments: ablate-ch schedule divergence: parallelism=%d ch=%v record %d (request %d) differs from baseline — the hierarchy returned an inexact cost",
							par, !disable, i, sigs[i].ID)
					}
				}
			}
			rs := eng.Router().Stats()
			label := "on"
			if disable {
				label = "off"
				if rs.CHQueries != 0 {
					return nil, fmt.Errorf("experiments: ablate-ch: CH disabled yet %d queries hit the hierarchy", rs.CHQueries)
				}
			} else {
				chQueriesTotal += rs.CHQueries
			}
			r.Rows = append(r.Rows, []string{
				fi(par), label, fi(served), fi(rejected),
				fi(int(rs.CHQueries)), fi(int(rs.BidirQueries)),
			})
		}
	}
	if chQueriesTotal == 0 {
		return nil, fmt.Errorf("experiments: ablate-ch never routed through the hierarchy — the backend is dead weight on this workload")
	}
	r.Notes = append(r.Notes, fmt.Sprintf("parity held: every cell served %d and rejected %d with byte-identical schedules", baseServed, baseRej))
	return r, nil
}

// AblationShard A/B-tests the sharded dispatcher: splitting the map
// across N independent per-territory engines with deterministic
// two-phase border resolution must not change a single outcome relative
// to the single-engine build. The experiment *enforces* that across
// shards 1, 2 and 4 at parallelism 1, 2 and 4 — served and rejected
// counts must match in every cell, and every per-request record
// (served/queued/expired flags plus the Float64bits of the
// assign/pickup/dropoff times) must be bit-identical to the shards=1
// baseline. Any divergence is a hard error: a border race or an
// order-dependent reduction cannot hide in a table. The pending queue is
// enabled so the sharded per-shard queue group is gated too, and a
// vacuousness guard requires the sharded cells to have actually
// evaluated cross-shard border candidates.
func (l *Lab) AblationShard() (*Result, error) {
	r := &Result{
		ID: "ablate-shard", Title: "Sharded dispatcher vs single engine (peak, mT-Share)",
		Header: []string{"shards", "parallelism", "served", "rejected", "x-candidates", "x-assignments", "border conflicts", "handoffs"},
		Notes: []string{
			"sharding is outcome-neutral by construction: every cell must agree on served/rejected counts and on every per-request outcome record, bit for bit",
		},
	}
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, err
	}
	win := PeakWindow()
	start := win.From.Seconds()
	var (
		baseSigs            []chRecordSig
		baseServed, baseRej int
		haveBase            bool
		crossTotal          int64
	)
	for _, shards := range []int{1, 2, 4} {
		for _, par := range []int{1, 2, 4} {
			cfg := match.DefaultConfig()
			cfg.SearchRangeMeters = l.World.Scale.GammaMeters
			cfg.Parallelism = par
			cfg.Sharding = match.ShardingConfig{Shards: shards}
			cfg.CH = l.World.CH(par)
			eng, err := match.NewDispatcher(pt, l.World.Spx, cfg)
			if err != nil {
				return nil, err
			}
			scheme := match.NewScheme(eng, false)
			params := sim.DefaultParams()
			params.Parallelism = par
			params.QueueDepth = 64
			params.Sharding = cfg.Sharding
			se, err := sim.NewEngine(l.World.G, scheme, params)
			if err != nil {
				return nil, err
			}
			se.PlaceTaxis(l.World.Scale.DefaultTaxis, l.World.Scale.Capacity, l.World.Scale.Seed, start)
			reqs := l.World.Requests(win, l.World.Scale.Rho, 0)
			m := se.Run(reqs, start)
			sigs := make([]chRecordSig, len(m.Records))
			for i, rec := range m.Records {
				sigs[i] = chRecordSig{
					ID: rec.Req.ID, Served: rec.Served, FromQueue: rec.ServedFromQueue, Exp: rec.Expired,
					Assign:  math.Float64bits(rec.AssignSeconds),
					Pickup:  math.Float64bits(rec.PickupSeconds),
					Dropoff: math.Float64bits(rec.DropoffSeconds),
				}
			}
			served, rejected := m.Served, m.Requests-m.Served
			if !haveBase {
				baseSigs, baseServed, baseRej, haveBase = sigs, served, rejected, true
			} else {
				if served != baseServed || rejected != baseRej {
					return nil, fmt.Errorf("experiments: ablate-shard parity broken: shards=%d parallelism=%d served/rejected %d/%d, expected %d/%d — sharding changed a dispatch outcome",
						shards, par, served, rejected, baseServed, baseRej)
				}
				if len(sigs) != len(baseSigs) {
					return nil, fmt.Errorf("experiments: ablate-shard parity broken: shards=%d parallelism=%d produced %d records, expected %d",
						shards, par, len(sigs), len(baseSigs))
				}
				for i := range sigs {
					if sigs[i] != baseSigs[i] {
						return nil, fmt.Errorf("experiments: ablate-shard schedule divergence: shards=%d parallelism=%d record %d (request %d) differs from the single-engine baseline — the border protocol altered an outcome",
							shards, par, i, sigs[i].ID)
					}
				}
			}
			var xc, xa, bc, ho int64
			for _, sh := range eng.ShardStats() {
				xc += sh.CrossShardCandidates
				xa += sh.CrossShardAssignments
				bc += sh.BorderConflicts
				ho += sh.Handoffs
			}
			if shards == 1 && xc+xa+bc+ho != 0 {
				return nil, fmt.Errorf("experiments: ablate-shard: single engine reported cross-shard traffic (%d/%d/%d/%d)", xc, xa, bc, ho)
			}
			if shards > 1 {
				crossTotal += xc
			}
			r.Rows = append(r.Rows, []string{
				fi(shards), fi(par), fi(served), fi(rejected),
				fi(int(xc)), fi(int(xa)), fi(int(bc)), fi(int(ho)),
			})
		}
	}
	if crossTotal == 0 {
		return nil, fmt.Errorf("experiments: ablate-shard never evaluated a cross-shard candidate — the border protocol is untested on this workload")
	}
	r.Notes = append(r.Notes, fmt.Sprintf("parity held: every cell served %d and rejected %d with byte-identical schedules", baseServed, baseRej))
	return r, nil
}

// AblationBatchAssign A/B-tests the global min-cost batch assignment
// against the greedy (deadline, ID) re-dispatch order on the pending
// queue's retry rounds — the paper's peak-hour saturation setting, where
// greedy's early-deadline requests can take the taxi a later request
// needs and leave it to expire. The fleet is halved (the ablate-queue
// setting) and flexibility is raised to rho=1.8 so a parked request's
// pickup window spans several retry rounds — the regime where retry
// batches overlap on freed taxis and the assignment has something to
// decide. The retry cadence is the swept knob: coarser rounds
// accumulate bigger, more contested batches.
//
// The experiment *enforces* the tentpole claims rather than tabling
// them: the global solver must never serve fewer requests than greedy
// on the same stream (hard error in every cell), must serve strictly
// more at the most contested cadence, and its outcomes must be
// bit-identical (per-request records, Float64bits of
// assign/pickup/dropoff) across shards 1/2/4 × parallelism 1/2/4.
// Vacuousness guards require the solver to have actually run contested
// (non-fallback) assignment rounds and the greedy cells to report zero
// solver activity.
func (l *Lab) AblationBatchAssign() (*Result, error) {
	taxis := l.World.Scale.DefaultTaxis / 2
	const rho = 1.8
	r := &Result{
		ID: "ablate-batch-assign", Title: fmt.Sprintf("Global min-cost batch assignment vs greedy re-dispatch order (peak, mT-Share, %d taxis, rho %.1f)", taxis, rho),
		Header: []string{"retry ticks", "scheme", "shards", "parallelism", "served", "from queue", "expired in queue", "mean detour (min)", "assign rounds", "contested", "remainder"},
		Notes: []string{
			"greedy retries the pending queue in (deadline, ID) order; global solves each retry round as one min-cost request-taxi assignment with deterministic (cost, request, taxi) tie-breaks",
			"rho 1.8 widens the pickup window past the retry cadence so parked requests survive into contested rounds — the saturation regime the solver exists for",
		},
	}
	pt, err := l.World.Partitioning("bipartite", l.World.Scale.Kappa)
	if err != nil {
		return nil, err
	}
	win := PeakWindow()
	start := win.From.Seconds()
	run := func(global bool, retry, shards, par int) (*sim.Metrics, match.EngineStats, error) {
		cfg := match.DefaultConfig()
		cfg.SearchRangeMeters = l.World.Scale.GammaMeters
		cfg.Parallelism = par
		cfg.BatchAssign = global
		cfg.Sharding = match.ShardingConfig{Shards: shards}
		cfg.CH = l.World.CH(par)
		eng, err := match.NewDispatcher(pt, l.World.Spx, cfg)
		if err != nil {
			return nil, match.EngineStats{}, err
		}
		scheme := match.NewScheme(eng, false)
		params := sim.DefaultParams()
		params.Parallelism = par
		params.QueueDepth = 64
		params.RetryEveryTicks = retry
		params.BatchAssign = global
		params.Sharding = cfg.Sharding
		se, err := sim.NewEngine(l.World.G, scheme, params)
		if err != nil {
			return nil, match.EngineStats{}, err
		}
		se.PlaceTaxis(taxis, l.World.Scale.Capacity, l.World.Scale.Seed, start)
		m := se.Run(l.World.Requests(win, rho, 0), start)
		var agg match.EngineStats
		for _, sh := range eng.ShardStats() {
			agg.Add(sh.Engine)
		}
		return m, agg, nil
	}
	row := func(retry int, scheme string, shards, par int, m *sim.Metrics, st match.EngineStats) {
		r.Rows = append(r.Rows, []string{
			fi(retry), scheme, fi(shards), fi(par),
			fi(m.Served), fi(m.ServedFromQueue), fi(m.ExpiredInQueue), f2(m.MeanDetourMin),
			fi(int(st.BatchAssignRounds)), fi(int(st.BatchAssignRounds - st.BatchAssignFallbacks)), fi(int(st.BatchAssignRemainder)),
		})
	}
	var solvedRounds int64
	for _, cell := range []struct {
		retry  int
		strict bool // require global strictly ahead of greedy
		sweep  bool // gate bit-identity across shard x parallelism cells
	}{
		{retry: 2},
		{retry: 4, strict: true, sweep: true},
		{retry: 8},
	} {
		gm, gs, err := run(false, cell.retry, 1, 1)
		if err != nil {
			return nil, err
		}
		if gs.BatchAssignRounds != 0 || gs.BatchAssignOptions != 0 {
			return nil, fmt.Errorf("experiments: ablate-batch-assign: greedy cell ran %d solver rounds — the BatchAssign knob leaks", gs.BatchAssignRounds)
		}
		row(cell.retry, "greedy", 1, 1, gm, gs)

		shardCells, parCells := []int{1}, []int{1}
		if cell.sweep {
			shardCells, parCells = []int{1, 2, 4}, []int{1, 2, 4}
		}
		var (
			baseSigs   []chRecordSig
			baseM      *sim.Metrics
			baseStats  match.EngineStats
			haveGlobal bool
		)
		for _, shards := range shardCells {
			for _, par := range parCells {
				m, st, err := run(true, cell.retry, shards, par)
				if err != nil {
					return nil, err
				}
				sigs := make([]chRecordSig, len(m.Records))
				for i, rec := range m.Records {
					sigs[i] = chRecordSig{
						ID: rec.Req.ID, Served: rec.Served, FromQueue: rec.ServedFromQueue, Exp: rec.Expired,
						Assign:  math.Float64bits(rec.AssignSeconds),
						Pickup:  math.Float64bits(rec.PickupSeconds),
						Dropoff: math.Float64bits(rec.DropoffSeconds),
					}
				}
				if !haveGlobal {
					baseSigs, baseM, baseStats, haveGlobal = sigs, m, st, true
				} else {
					if len(sigs) != len(baseSigs) {
						return nil, fmt.Errorf("experiments: ablate-batch-assign parity broken: retry=%d shards=%d parallelism=%d produced %d records, expected %d",
							cell.retry, shards, par, len(sigs), len(baseSigs))
					}
					for i := range sigs {
						if sigs[i] != baseSigs[i] {
							return nil, fmt.Errorf("experiments: ablate-batch-assign divergence: retry=%d shards=%d parallelism=%d record %d (request %d) differs — the solver is not deterministic across topologies",
								cell.retry, shards, par, i, sigs[i].ID)
						}
					}
					if st.BatchAssignRounds != baseStats.BatchAssignRounds || st.BatchAssignFallbacks != baseStats.BatchAssignFallbacks {
						return nil, fmt.Errorf("experiments: ablate-batch-assign divergence: retry=%d shards=%d parallelism=%d ran %d rounds (%d fallbacks), expected %d (%d)",
							cell.retry, shards, par, st.BatchAssignRounds, st.BatchAssignFallbacks, baseStats.BatchAssignRounds, baseStats.BatchAssignFallbacks)
					}
				}
				row(cell.retry, "global", shards, par, m, st)
			}
		}
		if baseStats.BatchAssignRounds == 0 {
			return nil, fmt.Errorf("experiments: ablate-batch-assign: retry=%d never ran an assignment round — the queue never batched", cell.retry)
		}
		solvedRounds += baseStats.BatchAssignRounds - baseStats.BatchAssignFallbacks
		if baseM.Served < gm.Served {
			return nil, fmt.Errorf("experiments: ablate-batch-assign: retry=%d: global served %d < greedy %d — the assignment lost requests greedy keeps",
				cell.retry, baseM.Served, gm.Served)
		}
		if cell.strict && baseM.Served <= gm.Served {
			return nil, fmt.Errorf("experiments: ablate-batch-assign: retry=%d: global served %d, greedy %d — the solver must win strictly on the saturated cadence",
				cell.retry, baseM.Served, gm.Served)
		}
		r.Notes = append(r.Notes, fmt.Sprintf("retry every %d ticks: global served %d vs greedy %d (%+d), mean detour %.2f vs %.2f min",
			cell.retry, baseM.Served, gm.Served, baseM.Served-gm.Served, baseM.MeanDetourMin, gm.MeanDetourMin))
	}
	if solvedRounds == 0 {
		return nil, fmt.Errorf("experiments: ablate-batch-assign: every assignment round fell back to greedy — the solver never saw a contested graph")
	}
	return r, nil
}
