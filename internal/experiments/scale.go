// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic substrate: it builds the standard
// experiment world (city, historical trace, partitionings), runs the
// dispatch schemes through the simulator with memoised results, and
// renders the same rows and series the paper reports.
//
// Absolute numbers differ from the paper — the substrate is a synthetic
// city at reduced scale, not Chengdu with 7M Didi trips on the authors'
// server — but each experiment's *shape* (who wins, roughly by how much,
// where the knees fall) is the reproduction target; EXPERIMENTS.md records
// paper-versus-measured for every artefact.
package experiments

import "fmt"

// Scale sizes the experiment world. The quick preset keeps the full suite
// within minutes for `go test -bench=.`; the full preset approaches the
// paper's relative densities and is meant for the cmd/mtshare-bench CLI.
type Scale struct {
	Name string

	// City geometry.
	CityRows, CityCols int
	BlockMeters        float64

	// Partitioning.
	Kappa  int
	KTrans int

	// Demand: trips in the busiest hour (the paper's peak hour has
	// 29,534); the weekday/weekend profiles derive the rest.
	PeakTripsPerHour int

	// Fleet sweep (the paper uses 500–3000 step 500) and default size.
	TaxiSweep    []int
	DefaultTaxis int
	Capacity     int

	// Matching parameters (paper Table II defaults, distance values
	// scaled to the city size).
	GammaMeters float64
	GammaSweep  []float64
	Rho         float64
	RhoSweep    []float64
	ThetaSweep  []float64 // degrees, for the λ study
	KappaSweep  []int
	CapSweep    []int

	// Non-peak offline fraction (the paper hides 5000 of 15,480 ≈ 0.32).
	OfflineFrac float64

	// Replicas is how many taxi-placement seeds each scenario is averaged
	// over (the paper repeats each setting ten times).
	Replicas int

	Seed int64
}

// QuickScale is the CI/bench preset: a ~4 km synthetic city with hundreds
// of requests per hour.
func QuickScale() Scale {
	return Scale{
		Name:             "quick",
		CityRows:         28,
		CityCols:         28,
		BlockMeters:      150,
		Kappa:            30,
		KTrans:           8,
		PeakTripsPerHour: 900,
		TaxiSweep:        []int{20, 40, 60, 80, 100, 120},
		DefaultTaxis:     40,
		Capacity:         3,
		GammaMeters:      1200,
		GammaSweep:       []float64{800, 1000, 1200, 1400, 1600, 1800},
		Rho:              1.3,
		RhoSweep:         []float64{1.1, 1.2, 1.3, 1.4, 1.5},
		ThetaSweep:       []float64{30, 45, 60, 75},
		KappaSweep:       []int{10, 20, 30, 45, 60},
		CapSweep:         []int{2, 3, 4, 5, 6},
		OfflineFrac:      0.32,
		Replicas:         3,
		Seed:             1,
	}
}

// FullScale approaches the paper's relative densities: a ~7 km city, a
// few thousand requests in the peak hour, fleets into the hundreds.
func FullScale() Scale {
	return Scale{
		Name:             "full",
		CityRows:         48,
		CityCols:         48,
		BlockMeters:      150,
		Kappa:            60,
		KTrans:           15,
		PeakTripsPerHour: 2400,
		TaxiSweep:        []int{50, 100, 150, 200, 250, 300},
		DefaultTaxis:     100,
		Capacity:         3,
		GammaMeters:      2000,
		GammaSweep:       []float64{1200, 1600, 2000, 2400, 2800, 3200},
		Rho:              1.3,
		RhoSweep:         []float64{1.1, 1.2, 1.3, 1.4, 1.5},
		ThetaSweep:       []float64{30, 45, 60, 75},
		KappaSweep:       []int{20, 40, 60, 90, 120},
		CapSweep:         []int{2, 3, 4, 5, 6},
		OfflineFrac:      0.32,
		Replicas:         3,
		Seed:             1,
	}
}

// Validate reports whether the scale is usable.
func (s Scale) Validate() error {
	switch {
	case s.CityRows < 4 || s.CityCols < 4:
		return fmt.Errorf("experiments: city %dx%d too small", s.CityRows, s.CityCols)
	case s.Kappa < 2 || s.KTrans < 1 || s.KTrans >= s.Kappa:
		return fmt.Errorf("experiments: bad partitioning scale kappa=%d kt=%d", s.Kappa, s.KTrans)
	case s.PeakTripsPerHour < 1:
		return fmt.Errorf("experiments: PeakTripsPerHour %d", s.PeakTripsPerHour)
	case len(s.TaxiSweep) == 0 || s.DefaultTaxis < 1:
		return fmt.Errorf("experiments: empty taxi sweep")
	case s.GammaMeters <= 0 || s.Rho <= 1:
		return fmt.Errorf("experiments: gamma %v rho %v", s.GammaMeters, s.Rho)
	case s.OfflineFrac < 0 || s.OfflineFrac > 1:
		return fmt.Errorf("experiments: OfflineFrac %v", s.OfflineFrac)
	}
	return nil
}
