package experiments

import (
	"strings"
	"sync"
	"testing"
)

// tinyScale keeps unit tests fast; experiment shapes are asserted at
// QuickScale only in the benchmark harness.
func tinyScale() Scale {
	s := QuickScale()
	s.Name = "tiny"
	s.CityRows, s.CityCols = 16, 16
	s.Kappa, s.KTrans = 12, 4
	s.PeakTripsPerHour = 150
	s.TaxiSweep = []int{15, 30}
	s.DefaultTaxis = 20
	s.GammaMeters = 900
	s.GammaSweep = []float64{700, 1100}
	s.RhoSweep = []float64{1.2, 1.4}
	s.ThetaSweep = []float64{30, 60}
	s.KappaSweep = []int{8, 16}
	s.CapSweep = []int{2, 4}
	return s
}

var (
	labOnce sync.Once
	labInst *Lab
	labErr  error
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		labInst, labErr = NewLab(tinyScale())
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return labInst
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{QuickScale(), FullScale(), tinyScale()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	bad := QuickScale()
	bad.Kappa = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestWorldBuild(t *testing.T) {
	l := testLab(t)
	w := l.World
	if w.G.NumVertices() < 100 {
		t.Fatalf("city too small: %d vertices", w.G.NumVertices())
	}
	if len(w.History.Trips) == 0 || len(w.Workday.Trips) == 0 || len(w.Weekend.Trips) == 0 {
		t.Fatal("traces missing")
	}
	pt, err := w.Partitioning("bipartite", 12)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := w.Partitioning("bipartite", 12)
	if err != nil {
		t.Fatal(err)
	}
	if pt != pt2 {
		t.Fatal("partitioning not cached")
	}
	if _, err := w.Partitioning("grid", 12); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Partitioning("voronoi", 12); err == nil {
		t.Fatal("unknown partitioning accepted")
	}
}

func TestRunMemoised(t *testing.T) {
	l := testLab(t)
	sc := Scenario{Scheme: NoSharing, Window: "peak", Taxis: 15}
	a, err := l.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("scenario not memoised")
	}
	if a.Requests == 0 {
		t.Fatal("no requests in scenario")
	}
}

func TestAllSchemesRunnable(t *testing.T) {
	l := testLab(t)
	for _, s := range []SchemeName{NoSharing, TShare, PGreedyDP, MTShare, MTSharePro} {
		offline := s == MTSharePro
		m, err := l.Run(Scenario{Scheme: s, Window: "nonpeak", HasOffline: offline, Taxis: 15})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if m.Requests == 0 {
			t.Fatalf("%s: empty run", s)
		}
	}
	if _, err := l.Run(Scenario{Scheme: "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestBaselineCruiseCombination(t *testing.T) {
	l := testLab(t)
	m, err := l.Run(Scenario{Scheme: TShare, Window: "nonpeak", HasOffline: true, BaselineCruise: true, Taxis: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.SchemeName, "+prob") {
		t.Fatalf("combined scheme name %q", m.SchemeName)
	}
}

func TestFig5Shapes(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 || len(r.Series[0].Y) != 24 {
		t.Fatalf("fig5 series malformed")
	}
	// Workday morning peak must beat 3am.
	wd := r.Series[0]
	if wd.Y[8] <= wd.Y[3] {
		t.Fatal("workday utilisation shape wrong")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig6SeriesComplete(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("fig6 series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Y) != len(l.World.Scale.TaxiSweep) {
			t.Fatalf("%s has %d points", s.Label, len(s.Y))
		}
		// Served requests must not decrease with fleet size... allow small
		// non-monotonicity from stochastic placement.
		if s.Y[len(s.Y)-1] < s.Y[0]*0.8 {
			t.Fatalf("%s: served drops with more taxis: %v", s.Label, s.Y)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "mT-Share") {
		t.Fatal("render missing scheme")
	}
}

func TestTablesRender(t *testing.T) {
	l := testLab(t)
	for _, fn := range []func() (*Result, error){l.Table3, l.Table4, l.Table5, l.Fig16} {
		r, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", r.ID)
		}
		if len(r.Header) == 0 {
			t.Fatalf("%s: no header", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Fatalf("%s: ragged row %v", r.ID, row)
			}
		}
		if !strings.Contains(r.Render(), r.ID) {
			t.Fatalf("%s: render missing id", r.ID)
		}
	}
}

func TestParameterSweepsRun(t *testing.T) {
	l := testLab(t)
	for _, fn := range []func() (*Result, error){l.Fig14a, l.Fig14b, l.Fig17, l.Fig18, l.Fig19, l.Fig20} {
		r, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Series) == 0 {
			t.Fatalf("%s: no series", r.ID)
		}
		for _, s := range r.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Fatalf("%s/%s: malformed series", r.ID, s.Label)
			}
		}
	}
}

func TestAblationPartitionFilter(t *testing.T) {
	l := testLab(t)
	r, err := l.AblationPartitionFilter()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatal("ablation rows")
	}
}

// TestAblationQueue pins the tentpole claim: at peak load on a
// constrained fleet, the pending queue's batched re-dispatch strictly
// improves the served count over immediate rejection, and every retry
// outcome is accounted for (served from queue or expired in queue).
func TestAblationQueue(t *testing.T) {
	l := testLab(t)
	r, err := l.AblationQueue()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	taxis := l.World.Scale.DefaultTaxis / 2
	base, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Taxis: taxis})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := l.RunAvg(Scenario{Scheme: MTShare, Window: "peak", Taxis: taxis, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if base.Queued != 0 || base.ServedFromQueue != 0 {
		t.Fatalf("queue-less run reports queue activity: %+v", base)
	}
	if queued.Served <= base.Served {
		t.Fatalf("queue did not improve served count: %d (depth 32) vs %d (reject)", queued.Served, base.Served)
	}
	if queued.ServedFromQueue == 0 {
		t.Fatal("no requests served from the queue")
	}
}

func TestAllRegistryResolves(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"fig5", "fig6", "fig7", "tab3", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "tab4", "fig14a", "fig14b", "tab5",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21"}
	for _, id := range want {
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestRenderFigure(t *testing.T) {
	r := &Result{
		ID: "x", Title: "t", XLabel: "x",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3.5, 4}}},
		Notes:  []string{"n"},
	}
	out := r.Render()
	for _, want := range []string{"=== x: t ===", "3.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment surface is slow")
	}
	l := testLab(t)
	for _, e := range All() {
		r, err := e.Run(l)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(r.Series) == 0 && len(r.Rows) == 0 {
			t.Fatalf("%s produced no data", e.ID)
		}
		if r.Render() == "" {
			t.Fatalf("%s rendered empty", e.ID)
		}
	}
}

func TestRunAvgAveragesAcrossReplicas(t *testing.T) {
	s := tinyScale()
	s.Replicas = 2
	l, err := NewLab(s)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Scheme: NoSharing, Window: "peak", Taxis: 15}
	avg, err := l.RunAvg(sc)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := l.Run(Scenario{Scheme: NoSharing, Window: "peak", Taxis: 15, Replica: 0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := l.Run(Scenario{Scheme: NoSharing, Window: "peak", Taxis: 15, Replica: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(r0.Served+r1.Served)/2 + 0.5)
	if avg.Served != want {
		t.Fatalf("avg served %d, want %d", avg.Served, want)
	}
	if avg.Records != nil {
		t.Fatal("averaged metrics should not carry per-request records")
	}
}

func TestVerifyRendersAllClaims(t *testing.T) {
	l := testLab(t)
	r, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 {
		t.Fatalf("verify rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] != "PASS" && row[2] != "FAIL" {
			t.Fatalf("bad status %q", row[2])
		}
	}
}

// TestAblationLandmark pins the oracle's acceptance claim: the experiment
// itself errors unless served/rejected counts are identical with the
// screen on and off at every parallelism level, so a passing run IS the
// parity proof; here we additionally require that the enabled rows pruned
// work and that both arms of the knob are present.
func TestAblationLandmark(t *testing.T) {
	l := testLab(t)
	r, err := l.AblationLandmark()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 parallelism levels x oracle on/off)", len(r.Rows))
	}
	on, off := 0, 0
	for _, row := range r.Rows {
		switch row[1] {
		case "on":
			on++
			if row[4] == "0" {
				t.Fatalf("oracle-on row evaluated nothing: %v", row)
			}
		case "off":
			off++
			if row[4] != "0" || row[5] != "0" {
				t.Fatalf("oracle-off row screened: %v", row)
			}
		}
	}
	if on != 3 || off != 3 {
		t.Fatalf("rows split %d on / %d off, want 3/3", on, off)
	}
}

// TestAblationCH pins the hierarchy's acceptance claim the same way: the
// experiment hard-errors unless served/rejected counts AND every
// per-request outcome record are bit-identical with the CH on and off at
// parallelism 1, 2 and 4, so a passing run IS the parity proof. Here we
// additionally require both arms of the knob to be present and the
// enabled rows to have actually routed through the hierarchy.
func TestAblationCH(t *testing.T) {
	l := testLab(t)
	r, err := l.AblationCH()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 parallelism levels x ch on/off)", len(r.Rows))
	}
	on, off := 0, 0
	for _, row := range r.Rows {
		switch row[1] {
		case "on":
			on++
			if row[4] == "0" {
				t.Fatalf("ch-on row never queried the hierarchy: %v", row)
			}
		case "off":
			off++
			if row[4] != "0" {
				t.Fatalf("ch-off row queried the hierarchy: %v", row)
			}
			if row[5] == "0" {
				t.Fatalf("ch-off row never fell back to bidirectional Dijkstra: %v", row)
			}
		}
	}
	if on != 3 || off != 3 {
		t.Fatalf("rows split %d on / %d off, want 3/3", on, off)
	}
}

// TestAblationBatchAssign pins the tentpole claim the same way: the
// experiment hard-errors unless the global solver serves at least as
// many requests as greedy on both fleets (strictly more on the saturated
// one) with bit-identical records across every shards x parallelism
// cell, so a passing run IS the claim. Here we additionally require both
// schemes present, solver activity confined to the global rows, and at
// least one contested (non-fallback) round.
func TestAblationBatchAssign(t *testing.T) {
	l := testLab(t)
	r, err := l.AblationBatchAssign()
	if err != nil {
		t.Fatal(err)
	}
	// 3 greedy rows + (1 + 9 + 1) global cells across the cadence sweep.
	if len(r.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(r.Rows))
	}
	greedy, global := 0, 0
	for _, row := range r.Rows {
		switch row[1] {
		case "greedy":
			greedy++
			if row[8] != "0" {
				t.Fatalf("greedy row ran solver rounds: %v", row)
			}
		case "global":
			global++
			if row[8] == "0" {
				t.Fatalf("global row never ran a solver round: %v", row)
			}
		default:
			t.Fatalf("unknown scheme %q in row %v", row[1], row)
		}
	}
	if greedy != 3 || global != 11 {
		t.Fatalf("rows split %d greedy / %d global, want 3/11", greedy, global)
	}
}
