package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// World is the shared experiment substrate: the synthetic city, the
// historical trace (for partitioning) and the evaluation traces, plus
// cached partitionings. It is built once per Lab and reused by every
// experiment.
type World struct {
	Scale Scale

	G   *roadnet.Graph
	Spx *roadnet.SpatialIndex

	// History is a full synthetic workday used only for mining transition
	// patterns; Workday and Weekend are the evaluation traces.
	History *trace.Dataset
	Workday *trace.Dataset
	Weekend *trace.Dataset

	snapped []partition.OD

	mu    sync.Mutex
	parts map[string]*partition.Partitioning

	chOnce sync.Once
	ch     *roadnet.CH
}

// BuildWorld constructs the experiment substrate for a scale.
func BuildWorld(s Scale) (*World, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cp := roadnet.DefaultCityParams(s.CityRows, s.CityCols)
	cp.BlockMeters = s.BlockMeters
	cp.Seed = s.Seed
	g, err := roadnet.GenerateCity(cp)
	if err != nil {
		return nil, err
	}
	spx := roadnet.NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	gp := trace.GenParams{
		Center:           geo.Midpoint(min, max),
		ExtentMeters:     geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng}),
		TripsPerHourPeak: s.PeakTripsPerHour,
		UniformFrac:      0.15,
		MinTripMeters:    s.BlockMeters * 2,
	}
	gen := func(day trace.DayKind, seed int64) (*trace.Dataset, error) {
		p := gp
		p.Seed = seed
		return trace.Generate(day, p)
	}
	history, err := gen(trace.Workday, s.Seed+100)
	if err != nil {
		return nil, err
	}
	workday, err := gen(trace.Workday, s.Seed+200)
	if err != nil {
		return nil, err
	}
	weekend, err := gen(trace.Weekend, s.Seed+300)
	if err != nil {
		return nil, err
	}
	w := &World{
		Scale:   s,
		G:       g,
		Spx:     spx,
		History: history,
		Workday: workday,
		Weekend: weekend,
		parts:   make(map[string]*partition.Partitioning),
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(history.Trips))
	for i, tr := range history.Trips {
		pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
	}
	w.snapped = partition.SnapTrips(spx, pairs)
	return w, nil
}

// Partitioning returns (building and caching on first use) a partitioning
// of the given kind ("bipartite" or "grid") with the given κ.
func (w *World) Partitioning(kind string, kappa int) (*partition.Partitioning, error) {
	key := fmt.Sprintf("%s/%d", kind, kappa)
	w.mu.Lock()
	defer w.mu.Unlock()
	if pt, ok := w.parts[key]; ok {
		return pt, nil
	}
	var (
		pt  *partition.Partitioning
		err error
	)
	switch kind {
	case "bipartite":
		p := partition.DefaultParams(kappa)
		p.KTrans = w.Scale.KTrans
		if p.KTrans >= kappa {
			p.KTrans = kappa / 2
			if p.KTrans < 1 {
				p.KTrans = 1
			}
		}
		p.Seed = w.Scale.Seed
		pt, err = partition.BuildBipartite(w.G, w.snapped, p)
	case "grid":
		pt, err = partition.BuildGrid(w.G, w.snapped, kappa)
	default:
		return nil, fmt.Errorf("experiments: unknown partitioning kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	w.parts[key] = pt
	return pt, nil
}

// CH returns (building on first use) the world's contraction hierarchy.
// Preprocessing is the expensive part of the CH backend, and the result
// is a pure function of the graph — bit-identical at every parallelism
// level — so every scenario of a lab shares one instance. parallelism
// only affects the wall time of the first call.
func (w *World) CH(parallelism int) *roadnet.CH {
	w.chOnce.Do(func() {
		w.ch = roadnet.BuildCH(w.G, parallelism)
	})
	return w.ch
}

// Window identifies an evaluation slice of a trace.
type Window struct {
	Day  trace.DayKind
	From time.Duration
	To   time.Duration
}

// PeakWindow is the paper's peak scenario: workday 8:00–9:00.
func PeakWindow() Window {
	return Window{Day: trace.Workday, From: 8 * time.Hour, To: 9 * time.Hour}
}

// NonPeakWindow is the paper's non-peak scenario: weekend 10:00–11:00.
func NonPeakWindow() Window {
	return Window{Day: trace.Weekend, From: 10 * time.Hour, To: 11 * time.Hour}
}

// Requests prepares the requests of a trace window.
func (w *World) Requests(win Window, rho, offlineFrac float64) []*fleet.Request {
	ds := w.Workday
	if win.Day == trace.Weekend {
		ds = w.Weekend
	}
	trips := ds.Between(win.From, win.To)
	return sim.PrepareRequests(w.G, w.Spx, trips, sim.PrepareOptions{
		SpeedMps:    15.0 * 1000 / 3600,
		Rho:         rho,
		OfflineFrac: offlineFrac,
		Seed:        w.Scale.Seed + 7,
	})
}
