package experiments

import (
	"fmt"
	"strings"
)

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Series holds figure data; Header/Rows hold tabular data. An
	// experiment may fill either or both.
	Series []Series
	Header []string
	Rows   [][]string
	// Notes records the paper's claim for the artefact and any
	// scale-related caveats.
	Notes []string
}

// Render formats the result as an ASCII report.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		// Figure: one column per X, one row per series.
		fmt.Fprintf(&b, "%-22s", r.XLabel)
		for _, x := range r.Series[0].X {
			fmt.Fprintf(&b, "%12s", trimFloat(x))
		}
		b.WriteByte('\n')
		for _, s := range r.Series {
			fmt.Fprintf(&b, "%-22s", s.Label)
			for _, y := range s.Y {
				fmt.Fprintf(&b, "%12s", trimFloat(y))
			}
			b.WriteByte('\n')
		}
		if r.YLabel != "" {
			fmt.Fprintf(&b, "(y: %s)\n", r.YLabel)
		}
	}
	if len(r.Rows) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
			b.WriteByte('\n')
		}
		writeRow(r.Header)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func fi(x int) string     { return fmt.Sprintf("%d", x) }
