package experiments

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// SimMetrics aliases the simulator metrics for the extractor callbacks.
type SimMetrics = sim.Metrics

// compareSchemes are the peak-scenario comparison schemes (Figs. 6–9,
// Table III).
var peakSchemes = []SchemeName{NoSharing, TShare, PGreedyDP, MTShare}

// nonpeakSchemes adds mT-Share_pro (Figs. 10–13).
var nonpeakSchemes = []SchemeName{NoSharing, TShare, PGreedyDP, MTShare, MTSharePro}

// sweep runs a scheme across the taxi sweep for a window and extracts a
// metric.
func (l *Lab) sweep(scheme SchemeName, window string, offline bool, metric func(m *SimMetrics) float64) (Series, error) {
	s := Series{Label: string(scheme)}
	for _, n := range l.World.Scale.TaxiSweep {
		sc := Scenario{Scheme: scheme, Window: window, Taxis: n, HasOffline: offline}
		m, err := l.RunAvg(sc)
		if err != nil {
			return s, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, metric(m))
	}
	return s, nil
}

// Fig5 reproduces the dataset statistics: hourly taxi utilisation for
// workday and weekend (Fig. 5a) and the travel-time distribution
// percentiles (Fig. 5b).
func (l *Lab) Fig5() (*Result, error) {
	r := &Result{
		ID:     "fig5",
		Title:  "Dataset statistics: taxi utilisation by hour and trip travel-time distribution",
		XLabel: "hour of day",
		YLabel: "fleet utilisation (fraction)",
	}
	cost := trace.StraightLineCost(1.3, 15)
	fleetSize := l.World.Scale.DefaultTaxis * 4 // day-wide fleet
	for _, ds := range []*trace.Dataset{l.World.Workday, l.World.Weekend} {
		util := ds.UtilizationByHour(fleetSize, cost, 2*time.Minute)
		s := Series{Label: ds.Day.String()}
		for h := 0; h < 24; h++ {
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, util[h])
		}
		r.Series = append(r.Series, s)
	}
	times := l.World.Workday.TravelTimeDistribution(cost)
	p50 := trace.Percentile(times, 50)
	p90 := trace.Percentile(times, 90)
	r.Notes = append(r.Notes,
		fmt.Sprintf("travel time p50=%.1f min p90=%.1f min (paper: 15 / 30 min)",
			p50.Minutes(), p90.Minutes()),
		"paper: workday 8-9h utilisation 56%, weekend 10-11h utilisation 41%",
	)
	return r, nil
}

// Fig6 reproduces served requests versus fleet size in the peak scenario.
func (l *Lab) Fig6() (*Result, error) {
	r := &Result{
		ID: "fig6", Title: "Served requests vs number of taxis (peak)",
		XLabel: "taxis", YLabel: "served requests",
		Notes: []string{"paper: mT-Share serves the most; +42% vs T-Share, +36% vs pGreedyDP at the largest fleet"},
	}
	for _, s := range peakSchemes {
		series, err := l.sweep(s, "peak", false, func(m *SimMetrics) float64 { return float64(m.Served) })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig7 reproduces response time versus fleet size in the peak scenario.
func (l *Lab) Fig7() (*Result, error) {
	r := &Result{
		ID: "fig7", Title: "Response time vs number of taxis (peak)",
		XLabel: "taxis", YLabel: "mean response time (ms)",
		Notes: []string{"paper: No-Sharing <1ms; mT-Share within 35-140ms, 4-10x faster than pGreedyDP, a bit above T-Share"},
	}
	for _, s := range peakSchemes {
		series, err := l.sweep(s, "peak", false, func(m *SimMetrics) float64 { return m.MeanResponseMs })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Table3 reproduces the average candidate-set sizes in the peak scenario.
func (l *Lab) Table3() (*Result, error) {
	r := &Result{
		ID: "tab3", Title: "Average number of candidate taxis (peak)",
		Header: []string{"taxis"},
		Notes:  []string{"paper ordering: No-Sharing < T-Share < mT-Share < pGreedyDP"},
	}
	for _, s := range peakSchemes {
		r.Header = append(r.Header, string(s))
	}
	for _, n := range l.World.Scale.TaxiSweep {
		row := []string{fi(n)}
		for _, s := range peakSchemes {
			m, err := l.RunAvg(Scenario{Scheme: s, Window: "peak", Taxis: n})
			if err != nil {
				return nil, err
			}
			row = append(row, f1(m.MeanCandidates))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Fig8 reproduces detour time versus fleet size in the peak scenario.
func (l *Lab) Fig8() (*Result, error) {
	r := &Result{
		ID: "fig8", Title: "Detour time vs number of taxis (peak)",
		XLabel: "taxis", YLabel: "mean detour (min)",
		Notes: []string{"paper: No-Sharing 0; T-Share lowest among sharing; mT-Share close second; pGreedyDP ~2x T-Share"},
	}
	for _, s := range peakSchemes {
		series, err := l.sweep(s, "peak", false, func(m *SimMetrics) float64 { return m.MeanDetourMin })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig9 reproduces waiting time versus fleet size in the peak scenario.
func (l *Lab) Fig9() (*Result, error) {
	r := &Result{
		ID: "fig9", Title: "Waiting time vs number of taxis (peak)",
		XLabel: "taxis", YLabel: "mean waiting (min)",
		Notes: []string{"paper: T-Share smallest; mT-Share slightly above pGreedyDP (<0.5 min gap); decreases with fleet size"},
	}
	for _, s := range peakSchemes {
		series, err := l.sweep(s, "peak", false, func(m *SimMetrics) float64 { return m.MeanWaitingMin })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig10 reproduces served requests versus fleet size in the non-peak
// scenario (offline requests hidden, mT-Share_pro included).
func (l *Lab) Fig10() (*Result, error) {
	r := &Result{
		ID: "fig10", Title: "Served requests vs number of taxis (non-peak, offline subset hidden)",
		XLabel: "taxis", YLabel: "served requests",
		Notes: []string{"paper: mT-Share_pro serves the most (+13-24% over mT-Share; +62%/+58% vs T-Share/pGreedyDP)"},
	}
	for _, s := range nonpeakSchemes {
		series, err := l.sweep(s, "nonpeak", true, func(m *SimMetrics) float64 { return float64(m.Served) })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig11 reproduces response time versus fleet size in the non-peak
// scenario.
func (l *Lab) Fig11() (*Result, error) {
	r := &Result{
		ID: "fig11", Title: "Response time vs number of taxis (non-peak)",
		XLabel: "taxis", YLabel: "mean response time (ms)",
		Notes: []string{"paper: mT-Share_pro 2.5-4.5x slower than mT-Share but still faster than pGreedyDP"},
	}
	for _, s := range nonpeakSchemes {
		series, err := l.sweep(s, "nonpeak", true, func(m *SimMetrics) float64 { return m.MeanResponseMs })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig12 reproduces detour time versus fleet size in the non-peak scenario.
func (l *Lab) Fig12() (*Result, error) {
	r := &Result{
		ID: "fig12", Title: "Detour time vs number of taxis (non-peak)",
		XLabel: "taxis", YLabel: "mean detour (min)",
		Notes: []string{"paper: mT-Share_pro the largest detour, but within ~0.5 min of pGreedyDP"},
	}
	for _, s := range nonpeakSchemes {
		series, err := l.sweep(s, "nonpeak", true, func(m *SimMetrics) float64 { return m.MeanDetourMin })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Fig13 reproduces waiting time versus fleet size in the non-peak
// scenario.
func (l *Lab) Fig13() (*Result, error) {
	r := &Result{
		ID: "fig13", Title: "Waiting time vs number of taxis (non-peak)",
		XLabel: "taxis", YLabel: "mean waiting (min)",
		Notes: []string{"paper: larger than peak overall; mT-Share_pro the largest (~2 min above pGreedyDP)"},
	}
	for _, s := range nonpeakSchemes {
		series, err := l.sweep(s, "nonpeak", true, func(m *SimMetrics) float64 { return m.MeanWaitingMin })
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, series)
	}
	return r, nil
}

// Table4 reproduces the index memory-overhead comparison at the largest
// fleet in the peak scenario.
func (l *Lab) Table4() (*Result, error) {
	r := &Result{
		ID: "tab4", Title: "Index memory overhead at the largest fleet (peak)",
		Header: []string{"scheme", "index bytes"},
		Notes: []string{
			"paper: mT-Share's indexes ~39% larger than the grid baselines'; total memory +16%/+41% vs T-Share/pGreedyDP",
			"mT-Share and mT-Share_pro share the same index structures",
		},
	}
	taxis := l.World.Scale.TaxiSweep[len(l.World.Scale.TaxiSweep)-1]
	for _, s := range peakSchemes {
		m, err := l.RunAvg(Scenario{Scheme: s, Window: "peak", Taxis: taxis})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{string(s), fmt.Sprintf("%d", m.IndexMemoryBytes)})
	}
	return r, nil
}
