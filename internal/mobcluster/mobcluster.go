// Package mobcluster implements mT-Share's mobility clustering (§IV-B2 of
// the paper): ride requests and shared taxis are grouped by the travel
// direction of their mobility vectors under a cosine-similarity threshold
// λ (Eq. 1). Clusters are built incrementally — the first request forms the
// initial cluster, later requests join the most similar cluster or open a
// new one — and each cluster maintains a general mobility vector averaged
// over its request members plus the taxi list Ca.Lt used by candidate
// search (§IV-B3).
package mobcluster

import (
	"fmt"
	"sync"

	"repro/internal/geo"
)

// ClusterID identifies a mobility cluster. IDs are never reused within one
// Clusters instance.
type ClusterID int64

// NoCluster is returned when no cluster matches.
const NoCluster ClusterID = -1

// cluster is one mobility cluster's internal state.
type cluster struct {
	id ClusterID

	// Request members and the running endpoint sums from which the
	// general mobility vector is derived.
	requests map[int64]geo.MobilityVector
	sumOLat  float64
	sumOLng  float64
	sumDLat  float64
	sumDLng  float64

	// Taxis currently travelling in this cluster's direction, with the
	// vectors they were registered under.
	taxis map[int64]geo.MobilityVector
}

// general returns the cluster's general mobility vector: endpoint averages
// over request members; when the cluster holds only taxis, over taxis.
func (c *cluster) general() geo.MobilityVector {
	if n := float64(len(c.requests)); n > 0 {
		return geo.MobilityVector{
			OriginLat: c.sumOLat / n,
			OriginLng: c.sumOLng / n,
			DestLat:   c.sumDLat / n,
			DestLng:   c.sumDLng / n,
		}
	}
	var v geo.MobilityVector
	n := float64(len(c.taxis))
	if n == 0 {
		return v
	}
	for _, tv := range c.taxis {
		v.OriginLat += tv.OriginLat
		v.OriginLng += tv.OriginLng
		v.DestLat += tv.DestLat
		v.DestLng += tv.DestLng
	}
	v.OriginLat /= n
	v.OriginLng /= n
	v.DestLat /= n
	v.DestLng /= n
	return v
}

func (c *cluster) empty() bool { return len(c.requests) == 0 && len(c.taxis) == 0 }

// Clusters manages the full set of mobility clusters. It is safe for
// concurrent use.
type Clusters struct {
	mu      sync.RWMutex
	lambda  float64
	nextID  ClusterID
	byID    map[ClusterID]*cluster
	request map[int64]ClusterID
	taxi    map[int64]ClusterID
}

// New creates an empty cluster set with similarity threshold lambda
// (λ = cos θ; the paper's default is cos 45° ≈ 0.707). It panics if lambda
// is outside [-1, 1].
func New(lambda float64) *Clusters {
	if lambda < -1 || lambda > 1 {
		panic(fmt.Sprintf("mobcluster: lambda %v outside [-1,1]", lambda))
	}
	return &Clusters{
		lambda:  lambda,
		byID:    make(map[ClusterID]*cluster),
		request: make(map[int64]ClusterID),
		taxi:    make(map[int64]ClusterID),
	}
}

// Lambda returns the similarity threshold.
func (cs *Clusters) Lambda() float64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.lambda
}

// NumClusters returns the number of live clusters.
func (cs *Clusters) NumClusters() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.byID)
}

// bestLocked returns the cluster with the highest similarity to v that
// clears lambda — inclusively: similarity exactly at λ qualifies, matching
// CompatibleTaxis and the paper's cos ≥ λ convention (Eq. 1). Ties break
// toward the oldest cluster for determinism. A zero-magnitude vector
// (origin == destination, direction undefined) matches nothing.
// Callers hold at least the read lock.
func (cs *Clusters) bestLocked(v geo.MobilityVector) *cluster {
	if v.IsZero() {
		return nil
	}
	var best *cluster
	bestSim := 0.0
	for _, c := range cs.byID {
		sim := geo.CosineSimilarity(v, c.general())
		if sim < cs.lambda {
			continue
		}
		if best == nil || sim > bestSim || (sim == bestSim && c.id < best.id) {
			best, bestSim = c, sim
		}
	}
	return best
}

// Best returns the live cluster most similar to v, provided the similarity
// clears λ. Candidate search uses it to locate the cluster Ca of Eq. 3.
func (cs *Clusters) Best(v geo.MobilityVector) (ClusterID, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if c := cs.bestLocked(v); c != nil {
		return c.id, true
	}
	return NoCluster, false
}

// CompatibleTaxis returns the union of the taxi lists of every cluster
// whose general vector is direction-compatible with v (cos ≥ λ).
// Incremental clustering fragments one travel direction across several
// clusters as the request mix shifts, so restricting Eq. 3's intersection
// to the single most similar cluster would drop compatible taxis that
// happen to sit in a sibling cluster; the union keeps the index's intent —
// discard taxis travelling a dissimilar direction — without the
// fragmentation artefact.
func (cs *Clusters) CompatibleTaxis(v geo.MobilityVector) []int64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	// A degenerate vector has no direction to be compatible with; without
	// this guard, CosineSimilarity's 0-for-zero-norm convention would make
	// it "compatible" with every cluster whenever λ ≤ 0.
	if v.IsZero() {
		return nil
	}
	var out []int64
	for _, c := range cs.byID {
		if len(c.taxis) == 0 {
			continue
		}
		if geo.CosineSimilarity(v, c.general()) < cs.lambda {
			continue
		}
		for id := range c.taxis {
			out = append(out, id)
		}
	}
	return out
}

// AddRequest inserts a ride request's mobility vector, joining the most
// similar cluster or forming a new one, and returns the cluster joined.
// A zero-magnitude vector always forms its own singleton cluster — its
// direction is undefined, so it neither joins nor attracts anything.
// Re-adding an existing ID first removes the old membership.
func (cs *Clusters) AddRequest(id int64, v geo.MobilityVector) ClusterID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if old, ok := cs.request[id]; ok {
		cs.removeRequestLocked(id, old)
	}
	c := cs.bestLocked(v)
	if c == nil {
		c = cs.newClusterLocked()
	}
	c.requests[id] = v
	c.sumOLat += v.OriginLat
	c.sumOLng += v.OriginLng
	c.sumDLat += v.DestLat
	c.sumDLng += v.DestLng
	cs.request[id] = c.id
	return c.id
}

// RemoveRequest drops a request (e.g. on completion). Unknown IDs are a
// no-op, which lets callers remove unconditionally.
func (cs *Clusters) RemoveRequest(id int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cid, ok := cs.request[id]; ok {
		cs.removeRequestLocked(id, cid)
	}
}

func (cs *Clusters) removeRequestLocked(id int64, cid ClusterID) {
	c := cs.byID[cid]
	v := c.requests[id]
	delete(c.requests, id)
	c.sumOLat -= v.OriginLat
	c.sumOLng -= v.OriginLng
	c.sumDLat -= v.DestLat
	c.sumDLng -= v.DestLng
	delete(cs.request, id)
	if c.empty() {
		delete(cs.byID, cid)
	}
}

// UpdateTaxi registers or re-registers a shared taxi's mobility vector
// (current location → centre of its passengers' destinations) and moves it
// to the most similar cluster, creating one when nothing matches. It
// returns the cluster the taxi now belongs to.
func (cs *Clusters) UpdateTaxi(id int64, v geo.MobilityVector) ClusterID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if old, ok := cs.taxi[id]; ok {
		cs.removeTaxiLocked(id, old)
	}
	c := cs.bestLocked(v)
	if c == nil {
		c = cs.newClusterLocked()
	}
	c.taxis[id] = v
	cs.taxi[id] = c.id
	return c.id
}

// RemoveTaxi drops a taxi from its cluster (e.g. when it becomes empty and
// has no fixed travel destination, per the paper empty taxis are not
// mobility-clustered). Unknown IDs are a no-op.
func (cs *Clusters) RemoveTaxi(id int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cid, ok := cs.taxi[id]; ok {
		cs.removeTaxiLocked(id, cid)
	}
}

func (cs *Clusters) removeTaxiLocked(id int64, cid ClusterID) {
	c := cs.byID[cid]
	delete(c.taxis, id)
	delete(cs.taxi, id)
	if c.empty() {
		delete(cs.byID, cid)
	}
}

func (cs *Clusters) newClusterLocked() *cluster {
	c := &cluster{
		id:       cs.nextID,
		requests: make(map[int64]geo.MobilityVector),
		taxis:    make(map[int64]geo.MobilityVector),
	}
	cs.nextID++
	cs.byID[c.id] = c
	return c
}

// Taxis returns the taxi list Ca.Lt of the given cluster in unspecified
// order; nil for a dead cluster.
func (cs *Clusters) Taxis(cid ClusterID) []int64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	c, ok := cs.byID[cid]
	if !ok {
		return nil
	}
	out := make([]int64, 0, len(c.taxis))
	for id := range c.taxis {
		out = append(out, id)
	}
	return out
}

// TaxiCluster returns the cluster a taxi currently belongs to.
func (cs *Clusters) TaxiCluster(id int64) (ClusterID, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	cid, ok := cs.taxi[id]
	return cid, ok
}

// RequestCluster returns the cluster a request currently belongs to.
func (cs *Clusters) RequestCluster(id int64) (ClusterID, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	cid, ok := cs.request[id]
	return cid, ok
}

// General returns the general mobility vector of a cluster.
func (cs *Clusters) General(cid ClusterID) (geo.MobilityVector, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	c, ok := cs.byID[cid]
	if !ok {
		return geo.MobilityVector{}, false
	}
	return c.general(), true
}

// Stats summarises the cluster set for diagnostics and the Table IV
// memory-overhead accounting.
type Stats struct {
	Clusters    int
	Requests    int
	Taxis       int
	MemoryBytes int64
}

// Stats returns a snapshot of aggregate state.
func (cs *Clusters) Stats() Stats {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	s := Stats{Clusters: len(cs.byID)}
	for _, c := range cs.byID {
		s.Requests += len(c.requests)
		s.Taxis += len(c.taxis)
	}
	// Rough per-entry costs: map overhead + vector payload.
	s.MemoryBytes = int64(len(cs.byID))*160 +
		int64(s.Requests)*56 + int64(s.Taxis)*56 +
		int64(len(cs.request))*24 + int64(len(cs.taxi))*24
	return s
}
