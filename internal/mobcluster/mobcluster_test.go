package mobcluster

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
)

// vec builds a mobility vector from a compact origin and delta.
func vec(olat, olng, dlat, dlng float64) geo.MobilityVector {
	return geo.MobilityVector{OriginLat: olat, OriginLng: olng, DestLat: olat + dlat, DestLng: olng + dlng}
}

var (
	north = vec(30.60, 104.00, 0.05, 0)
	south = vec(30.70, 104.00, -0.05, 0)
	east  = vec(30.60, 104.00, 0, 0.05)
)

func TestFirstRequestFormsCluster(t *testing.T) {
	cs := New(0.707)
	cid := cs.AddRequest(1, north)
	if cs.NumClusters() != 1 {
		t.Fatalf("clusters = %d, want 1", cs.NumClusters())
	}
	got, ok := cs.RequestCluster(1)
	if !ok || got != cid {
		t.Fatalf("RequestCluster = %v, %v", got, ok)
	}
}

func TestSimilarRequestsShareCluster(t *testing.T) {
	cs := New(0.707)
	c1 := cs.AddRequest(1, north)
	c2 := cs.AddRequest(2, vec(30.61, 104.01, 0.05, 0.004)) // nearly north
	if c1 != c2 {
		t.Fatalf("similar requests split: %d vs %d", c1, c2)
	}
}

func TestDissimilarRequestsSplit(t *testing.T) {
	cs := New(0.707)
	c1 := cs.AddRequest(1, north)
	c2 := cs.AddRequest(2, south)
	c3 := cs.AddRequest(3, east)
	if c1 == c2 || c1 == c3 || c2 == c3 {
		t.Fatalf("orthogonal/opposite directions merged: %d %d %d", c1, c2, c3)
	}
	if cs.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", cs.NumClusters())
	}
}

func TestLambdaControlsMerging(t *testing.T) {
	// 60-degree separation: merges under lambda=cos(75°), splits under
	// cos(45°).
	a := vec(30.6, 104.0, 0.05, 0)
	b := vec(30.6, 104.0, 0.025, 0.0433) // ~60° east of north
	loose := New(geo.CosOfDegrees(75))
	if c1, c2 := loose.AddRequest(1, a), loose.AddRequest(2, b); c1 != c2 {
		t.Fatal("60° apart should merge under θmax=75°")
	}
	strict := New(geo.CosOfDegrees(45))
	if c1, c2 := strict.AddRequest(1, a), strict.AddRequest(2, b); c1 == c2 {
		t.Fatal("60° apart should split under θmax=45°")
	}
}

func TestGeneralVectorIsMemberAverage(t *testing.T) {
	cs := New(0.5)
	c1 := cs.AddRequest(1, vec(30.60, 104.00, 0.05, 0))
	cs.AddRequest(2, vec(30.62, 104.02, 0.05, 0))
	g, ok := cs.General(c1)
	if !ok {
		t.Fatal("cluster vanished")
	}
	if math.Abs(g.OriginLat-30.61) > 1e-9 || math.Abs(g.OriginLng-104.01) > 1e-9 {
		t.Fatalf("general origin = %v,%v", g.OriginLat, g.OriginLng)
	}
	if math.Abs(g.DestLat-30.66) > 1e-9 {
		t.Fatalf("general dest lat = %v", g.DestLat)
	}
}

func TestRemoveRequestUpdatesGeneralAndDeletesEmpty(t *testing.T) {
	cs := New(0.5)
	c := cs.AddRequest(1, north)
	cs.AddRequest(2, vec(30.61, 104.00, 0.05, 0))
	cs.RemoveRequest(1)
	g, ok := cs.General(c)
	if !ok {
		t.Fatal("cluster deleted while member remains")
	}
	if g.OriginLat != 30.61 {
		t.Fatalf("general not updated after removal: %v", g.OriginLat)
	}
	cs.RemoveRequest(2)
	if cs.NumClusters() != 0 {
		t.Fatalf("empty cluster survived: %d", cs.NumClusters())
	}
	if _, ok := cs.General(c); ok {
		t.Fatal("General returned dead cluster")
	}
	cs.RemoveRequest(99) // unknown: no-op
}

func TestReAddRequestMoves(t *testing.T) {
	cs := New(0.707)
	c1 := cs.AddRequest(1, north)
	c2 := cs.AddRequest(1, south) // same ID, new direction
	if c1 == c2 {
		t.Fatal("re-added request kept old cluster")
	}
	if cs.NumClusters() != 1 {
		t.Fatalf("old cluster not cleaned: %d clusters", cs.NumClusters())
	}
	if got, _ := cs.RequestCluster(1); got != c2 {
		t.Fatalf("RequestCluster = %d, want %d", got, c2)
	}
}

func TestTaxiJoinsMatchingCluster(t *testing.T) {
	cs := New(0.707)
	c := cs.AddRequest(1, north)
	tc := cs.UpdateTaxi(7, vec(30.58, 104.00, 0.06, 0.002))
	if tc != c {
		t.Fatalf("taxi joined %d, want request cluster %d", tc, c)
	}
	taxis := cs.Taxis(c)
	if len(taxis) != 1 || taxis[0] != 7 {
		t.Fatalf("Taxis = %v", taxis)
	}
}

func TestTaxiFormsOwnClusterWhenNothingMatches(t *testing.T) {
	cs := New(0.707)
	cs.AddRequest(1, north)
	tc := cs.UpdateTaxi(7, east)
	if got, _ := cs.RequestCluster(1); got == tc {
		t.Fatal("eastbound taxi joined northbound cluster")
	}
	if cs.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", cs.NumClusters())
	}
}

func TestUpdateTaxiMovesBetweenClusters(t *testing.T) {
	cs := New(0.707)
	cn := cs.AddRequest(1, north)
	ce := cs.AddRequest(2, east)
	cs.UpdateTaxi(7, vec(30.58, 104.0, 0.05, 0))
	if got, _ := cs.TaxiCluster(7); got != cn {
		t.Fatalf("taxi in %d, want north %d", got, cn)
	}
	cs.UpdateTaxi(7, vec(30.58, 104.0, 0, 0.05))
	if got, _ := cs.TaxiCluster(7); got != ce {
		t.Fatalf("after turn taxi in %d, want east %d", got, ce)
	}
	if ts := cs.Taxis(cn); len(ts) != 0 {
		t.Fatalf("north cluster still lists taxi: %v", ts)
	}
}

func TestRemoveTaxi(t *testing.T) {
	cs := New(0.707)
	cs.UpdateTaxi(7, north)
	if cs.NumClusters() != 1 {
		t.Fatal("taxi-only cluster missing")
	}
	cs.RemoveTaxi(7)
	if cs.NumClusters() != 0 {
		t.Fatal("taxi-only cluster survived removal")
	}
	cs.RemoveTaxi(7) // idempotent
	if _, ok := cs.TaxiCluster(7); ok {
		t.Fatal("TaxiCluster returned removed taxi")
	}
}

func TestBest(t *testing.T) {
	cs := New(0.707)
	cn := cs.AddRequest(1, north)
	cs.AddRequest(2, east)
	got, ok := cs.Best(vec(30.55, 104.0, 0.08, 0.001))
	if !ok || got != cn {
		t.Fatalf("Best = %v, %v; want %d", got, ok, cn)
	}
	if _, ok := cs.Best(vec(30.55, 104.0, -0.08, -0.06)); ok {
		t.Fatal("Best matched an incompatible direction")
	}
	empty := New(0.707)
	if _, ok := empty.Best(north); ok {
		t.Fatal("Best on empty set returned a cluster")
	}
}

func TestClusterSurvivesOnTaxisAfterRequestsLeave(t *testing.T) {
	cs := New(0.707)
	c := cs.AddRequest(1, north)
	cs.UpdateTaxi(7, vec(30.5, 104.0, 0.05, 0))
	cs.RemoveRequest(1)
	if cs.NumClusters() != 1 {
		t.Fatal("cluster with taxi was deleted")
	}
	g, ok := cs.General(c)
	if !ok {
		t.Fatal("General failed for taxi-only cluster")
	}
	// General must now come from the taxi member.
	if g.OriginLat != 30.5 {
		t.Fatalf("taxi-only general origin lat = %v", g.OriginLat)
	}
}

func TestStats(t *testing.T) {
	cs := New(0.707)
	cs.AddRequest(1, north)
	cs.AddRequest(2, east)
	cs.UpdateTaxi(7, south)
	s := cs.Stats()
	if s.Clusters != 3 || s.Requests != 2 || s.Taxis != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MemoryBytes <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestNewPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1.5)
}

func TestConcurrentOperations(t *testing.T) {
	cs := New(0.707)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := int64(seed*1000) + int64(i%50)
				v := vec(30.6, 104.0, rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05)
				switch i % 4 {
				case 0:
					cs.AddRequest(id, v)
				case 1:
					cs.RemoveRequest(id)
				case 2:
					cs.UpdateTaxi(id, v)
				case 3:
					cs.RemoveTaxi(id)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Invariant: every live membership points at a live cluster.
	s := cs.Stats()
	if s.Requests < 0 || s.Taxis < 0 {
		t.Fatal("negative counts")
	}
}

func TestManyRequestsClusterCountBounded(t *testing.T) {
	// Requests in 8 distinct compass directions under θmax=45° should
	// produce a bounded number of clusters, far fewer than requests.
	cs := New(geo.CosOfDegrees(45))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		dir := float64(i%8) * 45 * math.Pi / 180
		jitter := (rng.Float64() - 0.5) * 0.1
		dlat := 0.05 * (1 + jitter) * math.Cos(dir)
		dlng := 0.05 * (1 + jitter) * math.Sin(dir)
		cs.AddRequest(int64(i), vec(30.6+rng.Float64()*0.05, 104.0+rng.Float64()*0.05, dlat, dlng))
	}
	if n := cs.NumClusters(); n > 30 {
		t.Fatalf("clusters = %d, expected bounded growth", n)
	}
}

func BenchmarkAddRequest(b *testing.B) {
	cs := New(0.707)
	rng := rand.New(rand.NewSource(1))
	vs := make([]geo.MobilityVector, 4096)
	for i := range vs {
		vs[i] = vec(30.6+rng.Float64()*0.1, 104.0+rng.Float64()*0.1,
			rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.AddRequest(int64(i%2048), vs[i%len(vs)])
	}
}

func BenchmarkBest(b *testing.B) {
	cs := New(0.707)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		cs.AddRequest(int64(i), vec(30.6+rng.Float64()*0.1, 104.0+rng.Float64()*0.1,
			rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Best(north)
	}
}

func TestCompatibleTaxisUnionAcrossClusters(t *testing.T) {
	cs := New(geo.CosOfDegrees(45))
	// Two near-north clusters that fragmented, one east cluster.
	cs.AddRequest(1, vec(30.60, 104.00, 0.05, 0.00))
	cs.AddRequest(2, vec(30.60, 104.20, 0.035, 0.030)) // ~40 degrees east of north: own cluster
	cs.AddRequest(3, east)
	cs.UpdateTaxi(10, vec(30.55, 104.00, 0.06, 0.001)) // north
	cs.UpdateTaxi(11, vec(30.55, 104.20, 0.04, 0.032)) // NE
	cs.UpdateTaxi(12, vec(30.55, 104.40, 0.00, 0.06))  // east
	// A north-ish probe must see both the north and NE taxis but not the
	// east one.
	got := cs.CompatibleTaxis(vec(30.50, 104.10, 0.06, 0.012))
	has := map[int64]bool{}
	for _, id := range got {
		has[id] = true
	}
	if !has[10] || !has[11] {
		t.Fatalf("fragmented compatible taxis missing: %v", got)
	}
	if has[12] {
		t.Fatalf("orthogonal taxi included: %v", got)
	}
	if out := cs.CompatibleTaxis(vec(30, 104, 0, 0)); out != nil {
		t.Fatalf("zero vector matched: %v", out)
	}
}

// exactNorth builds a vector whose tangent-plane displacement is exactly
// (dx=0, dy=0.25): 30.0 and 0.25 are exact binary floats, so the dy
// subtraction, the squared norm (0.0625) and its square root (0.25) are
// all exact — cosine similarity against an identical vector is exactly
// 1.0, and against an exact-east vector exactly 0.0. That lets the
// threshold tests probe λ equality without tolerance fudge.
func exactNorth(olng float64) geo.MobilityVector {
	return geo.MobilityVector{OriginLat: 30.0, OriginLng: olng, DestLat: 30.25, DestLng: olng}
}

func exactEast(olng float64) geo.MobilityVector {
	return geo.MobilityVector{OriginLat: 30.0, OriginLng: olng, DestLat: 30.0, DestLng: olng + 0.25}
}

// TestExactThresholdLambdaOne: with λ = 1.0, a request whose similarity to
// an existing cluster is exactly 1.0 must join it (inclusive threshold,
// Eq. 1 cos ≥ λ), while any strictly smaller similarity must split. This
// is the regression test for bestLocked's old strict-inequality bug: a
// first candidate at exactly λ was never selected.
func TestExactThresholdLambdaOne(t *testing.T) {
	// Sanity: the constructed similarities are exactly 1 and exactly 0.
	if s := geo.CosineSimilarity(exactNorth(104.0), exactNorth(104.1)); s != 1.0 {
		t.Fatalf("constructed same-direction similarity = %v, want exactly 1.0", s)
	}
	if s := geo.CosineSimilarity(exactNorth(104.0), exactEast(104.0)); s != 0.0 {
		t.Fatalf("constructed orthogonal similarity = %v, want exactly 0.0", s)
	}

	cs := New(1.0)
	c1 := cs.AddRequest(1, exactNorth(104.0))
	if c2 := cs.AddRequest(2, exactNorth(104.1)); c2 != c1 {
		t.Fatalf("similarity exactly at lambda=1 split: cluster %d vs %d", c2, c1)
	}
	// The other side of the threshold: a slightly rotated vector has
	// similarity < 1 and must form its own cluster.
	tilted := geo.MobilityVector{OriginLat: 30.0, OriginLng: 104.2, DestLat: 30.25, DestLng: 104.2001}
	if c3 := cs.AddRequest(3, tilted); c3 == c1 {
		t.Fatal("similarity below lambda=1 joined the cluster")
	}
}

// TestExactThresholdLambdaZero probes λ = 0 with an exactly-orthogonal
// pair (similarity exactly 0.0): at the threshold it must match; with λ
// nudged above zero it must not.
func TestExactThresholdLambdaZero(t *testing.T) {
	cs := New(0.0)
	c1 := cs.AddRequest(1, exactEast(104.0))
	if cid, ok := cs.Best(exactNorth(104.0)); !ok || cid != c1 {
		t.Fatalf("similarity exactly at lambda=0 rejected: ok=%v cid=%d", ok, cid)
	}
	if c2 := cs.AddRequest(2, exactNorth(104.0)); c2 != c1 {
		t.Fatalf("orthogonal request with lambda=0 split: cluster %d vs %d", c2, c1)
	}

	above := New(1e-9)
	a1 := above.AddRequest(1, exactEast(104.0))
	if _, ok := above.Best(exactNorth(104.0)); ok {
		t.Fatal("similarity 0 cleared lambda=1e-9")
	}
	if a2 := above.AddRequest(2, exactNorth(104.0)); a2 == a1 {
		t.Fatal("orthogonal request joined despite lambda above 0")
	}
}

// TestZeroVectorNeverClusters pins the degenerate-request convention: a
// zero-magnitude mobility vector (origin == destination) has no direction,
// so it forms a singleton cluster, Best reports no match, and
// CompatibleTaxis returns nothing — even when λ ≤ 0 would otherwise let
// CosineSimilarity's 0-for-zero-norm convention match everything.
func TestZeroVectorNeverClusters(t *testing.T) {
	zero := geo.MobilityVector{OriginLat: 30.0, OriginLng: 104.0, DestLat: 30.0, DestLng: 104.0}
	if s := geo.CosineSimilarity(zero, north); s != 0 {
		t.Fatalf("zero-vector similarity = %v, want 0 (defined, not NaN)", s)
	}
	for _, lambda := range []float64{-1, 0, 0.707} {
		cs := New(lambda)
		cs.AddRequest(1, north)
		cs.UpdateTaxi(10, north)
		if _, ok := cs.Best(zero); ok {
			t.Fatalf("lambda=%v: Best matched a zero vector", lambda)
		}
		if out := cs.CompatibleTaxis(zero); out != nil {
			t.Fatalf("lambda=%v: CompatibleTaxis matched a zero vector: %v", lambda, out)
		}
		c1, _ := cs.RequestCluster(1)
		if cz := cs.AddRequest(2, zero); cz == c1 {
			t.Fatalf("lambda=%v: zero vector joined a real cluster", lambda)
		}
		// A second zero vector forms yet another singleton rather than
		// pairing with the first one.
		cz1, _ := cs.RequestCluster(2)
		if cz2 := cs.AddRequest(3, zero); cz2 == cz1 {
			t.Fatalf("lambda=%v: two zero vectors clustered together", lambda)
		}
	}
}
