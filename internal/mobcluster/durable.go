package mobcluster

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// MemberState is one cluster member (request or taxi) with the mobility
// vector it was registered under.
type MemberState struct {
	ID  int64              `json:"id"`
	Vec geo.MobilityVector `json:"vec"`
}

// ClusterState serializes one cluster. The endpoint sums are carried
// verbatim rather than recomputed from the members: they accumulate in
// arrival order, so re-summing in any other order can differ in the last
// ULP and change a later similarity comparison.
type ClusterState struct {
	ID       int64         `json:"id"`
	SumOLat  float64       `json:"so_lat"`
	SumOLng  float64       `json:"so_lng"`
	SumDLat  float64       `json:"sd_lat"`
	SumDLng  float64       `json:"sd_lng"`
	Requests []MemberState `json:"requests,omitempty"`
	Taxis    []MemberState `json:"taxis,omitempty"`
}

// State serializes the whole cluster set.
type State struct {
	NextID   int64          `json:"next_id"`
	Clusters []ClusterState `json:"clusters,omitempty"`
}

func sortedMembers(m map[int64]geo.MobilityVector) []MemberState {
	if len(m) == 0 {
		return nil
	}
	out := make([]MemberState, 0, len(m))
	for id, v := range m {
		out = append(out, MemberState{ID: id, Vec: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CaptureState snapshots the cluster set deterministically (clusters and
// members sorted by ID).
func (cs *Clusters) CaptureState() State {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	st := State{NextID: int64(cs.nextID)}
	ids := make([]ClusterID, 0, len(cs.byID))
	for id := range cs.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := cs.byID[id]
		st.Clusters = append(st.Clusters, ClusterState{
			ID:       int64(c.id),
			SumOLat:  c.sumOLat,
			SumOLng:  c.sumOLng,
			SumDLat:  c.sumDLat,
			SumDLng:  c.sumDLng,
			Requests: sortedMembers(c.requests),
			Taxis:    sortedMembers(c.taxis),
		})
	}
	return st
}

// RestoreState replaces the cluster set with the captured one. λ is part
// of the engine configuration, not the state, and is left untouched.
func (cs *Clusters) RestoreState(st State) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	byID := make(map[ClusterID]*cluster, len(st.Clusters))
	request := make(map[int64]ClusterID)
	taxi := make(map[int64]ClusterID)
	for _, c := range st.Clusters {
		id := ClusterID(c.ID)
		if id >= ClusterID(st.NextID) {
			return fmt.Errorf("mobcluster: cluster %d at or past next_id %d", c.ID, st.NextID)
		}
		if _, dup := byID[id]; dup {
			return fmt.Errorf("mobcluster: duplicate cluster %d", c.ID)
		}
		cl := &cluster{
			id:       id,
			sumOLat:  c.SumOLat,
			sumOLng:  c.SumOLng,
			sumDLat:  c.SumDLat,
			sumDLng:  c.SumDLng,
			requests: make(map[int64]geo.MobilityVector, len(c.Requests)),
			taxis:    make(map[int64]geo.MobilityVector, len(c.Taxis)),
		}
		for _, m := range c.Requests {
			if _, dup := request[m.ID]; dup {
				return fmt.Errorf("mobcluster: request %d in two clusters", m.ID)
			}
			cl.requests[m.ID] = m.Vec
			request[m.ID] = id
		}
		for _, m := range c.Taxis {
			if _, dup := taxi[m.ID]; dup {
				return fmt.Errorf("mobcluster: taxi %d in two clusters", m.ID)
			}
			cl.taxis[m.ID] = m.Vec
			taxi[m.ID] = id
		}
		if cl.empty() {
			return fmt.Errorf("mobcluster: cluster %d has no members", c.ID)
		}
		byID[id] = cl
	}
	cs.nextID = ClusterID(st.NextID)
	cs.byID = byID
	cs.request = request
	cs.taxi = taxi
	return nil
}
