package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around k well-separated centers in dim
// dimensions.
func blobs(n, k, dim int, seed int64) (points [][]float64, trueLabel []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = float64(c*100) + rng.Float64()
		}
	}
	points = make([][]float64, n)
	trueLabel = make([]int, n)
	for i := range points {
		c := rng.Intn(k)
		trueLabel[i] = c
		points[i] = make([]float64, dim)
		for d := range points[i] {
			points[i][d] = centers[c][d] + rng.NormFloat64()
		}
	}
	return points, trueLabel
}

func TestClusterSeparatedBlobs(t *testing.T) {
	points, truth := blobs(300, 3, 2, 1)
	res, err := Cluster(points, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on trivially separable data")
	}
	// Clusters must be pure: every pair in the same true blob must share a
	// k-means cluster. Check via a mapping blob -> cluster.
	blobToCluster := map[int]int{}
	for i := range points {
		b := truth[i]
		c := res.Assign[i]
		if prev, ok := blobToCluster[b]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", b, prev, c)
		}
		blobToCluster[b] = c
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("mapped %d blobs", len(blobToCluster))
	}
}

func TestClusterDeterministic(t *testing.T) {
	points, _ := blobs(200, 4, 3, 2)
	r1, err := Cluster(points, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(points, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatalf("nondeterministic assignment at %d", i)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 3, Options{}); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Cluster([][]float64{{1, 2}}, 0, Options{}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Cluster([][]float64{{1, 2}, {1}}, 1, Options{}); err == nil {
		t.Fatal("expected error for ragged input")
	}
}

func TestClusterKLargerThanN(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	res, err := Cluster(points, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want clamped to 3", res.K())
	}
	// With k == n every point should sit on its own centroid.
	if in := Inertia(points, res); in > 1e-12 {
		t.Fatalf("inertia = %v, want 0", in)
	}
}

func TestClusterSingleCluster(t *testing.T) {
	points, _ := blobs(50, 2, 2, 3)
	res, err := Cluster(points, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 produced assignment != 0")
		}
	}
	// Centroid must equal the global mean.
	var mean [2]float64
	for _, p := range points {
		mean[0] += p[0]
		mean[1] += p[1]
	}
	mean[0] /= float64(len(points))
	mean[1] /= float64(len(points))
	if math.Abs(res.Centroids[0][0]-mean[0]) > 1e-9 || math.Abs(res.Centroids[0][1]-mean[1]) > 1e-9 {
		t.Fatalf("centroid %v != mean %v", res.Centroids[0], mean)
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	points := make([][]float64, 20)
	for i := range points {
		points[i] = []float64{3, 4}
	}
	res, err := Cluster(points, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if in := Inertia(points, res); in != 0 {
		t.Fatalf("identical points inertia = %v", in)
	}
}

func TestClusterAllPointsAssigned(t *testing.T) {
	f := func(seed int64) bool {
		points, _ := blobs(100, 3, 2, seed)
		res, err := Cluster(points, 5, Options{Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Assign) != len(points) {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= res.K() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSizesSumToN(t *testing.T) {
	points, _ := blobs(137, 4, 3, 5)
	res, err := Cluster(points, 6, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes() {
		total += s
	}
	if total != 137 {
		t.Fatalf("sizes sum = %d, want 137", total)
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	points, _ := blobs(400, 5, 2, 8)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 5, 10} {
		res, err := Cluster(points, k, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		in := Inertia(points, res)
		if in > prev*1.05 { // allow slight non-monotonicity from local optima
			t.Fatalf("inertia increased substantially at k=%d: %v -> %v", k, prev, in)
		}
		prev = in
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	points, _ := blobs(500, 8, 4, 4)
	res, err := Cluster(points, 8, Options{Seed: 1, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1", res.Iterations)
	}
}

func BenchmarkClusterSpatial(b *testing.B) {
	points, _ := blobs(2000, 20, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(points, 20, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterTransitionVectors(b *testing.B) {
	// Transition clustering operates on high-dimensional probability
	// vectors (dim = kappa = 150 in the paper's default).
	points, _ := blobs(2000, 20, 150, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(points, 20, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
