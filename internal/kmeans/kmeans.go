// Package kmeans implements the k-means clustering used by mT-Share's
// bipartite map partitioning (§IV-B1 of the paper): spatial clustering of
// road-graph vertices by coordinates and transition clustering of vertices
// by their transition-probability vectors.
//
// The implementation is deterministic given a seed (k-means++ seeding with
// a caller-supplied PRNG source) and operates on generic float64 feature
// vectors.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
)

// Result holds the outcome of a k-means run.
type Result struct {
	// Assign maps each input point index to its cluster in [0, K).
	Assign []int
	// Centroids holds the final cluster centroids.
	Centroids [][]float64
	// Iterations is how many Lloyd iterations ran before convergence or
	// the iteration cap.
	Iterations int
	// Converged reports whether assignments stabilised before the cap.
	Converged bool
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	s := make([]int, len(r.Centroids))
	for _, c := range r.Assign {
		s[c]++
	}
	return s
}

// Options configures a k-means run.
type Options struct {
	// MaxIterations caps Lloyd iterations. Zero means the default (50).
	MaxIterations int
	// Seed drives k-means++ seeding and empty-cluster repair.
	Seed int64
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 50
	}
	return o.MaxIterations
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cluster partitions points into k clusters with Lloyd's algorithm and
// k-means++ seeding. Every point is a feature vector; all points must have
// the same dimensionality. If k >= len(points), each point gets its own
// cluster (and extra clusters collapse onto duplicates of the last point,
// mirroring the paper's behaviour of tiny partitions in sparse areas).
func Cluster(points [][]float64, k int, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k must be positive, got %d", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign, Centroids: centroids}
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for iter := 0; iter < opts.maxIter(); iter++ {
		res.Iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			res.Converged = true
			break
		}
		// Recompute centroids.
		for c := range counts {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed on the point farthest from its
				// centroid, the standard repair that keeps k clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, each next with probability proportional to squared
// distance from the nearest already-chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	c0 := make([]float64, dim)
	copy(c0, points[first])
	centroids = append(centroids, c0)
	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, c0)
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points coincide with a centroid
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copy(c, points[pick])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// Inertia returns the total within-cluster sum of squared distances, the
// quantity Lloyd's algorithm monotonically decreases; tests use it to
// verify convergence quality.
func Inertia(points [][]float64, res *Result) float64 {
	var s float64
	for i, p := range points {
		s += sqDist(p, res.Centroids[res.Assign[i]])
	}
	return s
}
