// Package index provides the taxi index structures of §IV-B3: the
// map-partition index, which records for each partition the taxis that are
// in it or will arrive within a time horizon T_mp sorted by arrival time,
// and a plain location grid over taxi positions, which is the indexing
// used by the T-Share and pGreedyDP baselines.
package index

import (
	"math"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// Entry is one taxi's presence in a partition list: the taxi and its
// arrival time at that partition (the current time for taxis already
// inside).
type Entry struct {
	TaxiID         int64
	ArrivalSeconds float64
}

// PartitionIndex maintains, per partition, the taxis now in or arriving
// within the horizon, with arrival times derived from each taxi's planned
// route. It is safe for concurrent use.
type PartitionIndex struct {
	pt      *partition.Partitioning
	horizon float64 // seconds

	mu      sync.RWMutex
	byPart  []map[int64]float64 // partition -> taxi -> arrival seconds
	byTaxi  map[int64][]partition.ID
	entries int

	// Optional registry instruments (see InstrumentWith).
	updates      *obs.Counter
	entriesGauge *obs.Gauge
	taxisGauge   *obs.Gauge
}

// InstrumentWith registers the index's instruments in reg
// (mtshare_index_updates_total, mtshare_index_partition_entries,
// mtshare_index_indexed_taxis) and returns the index. Call it once,
// before concurrent use.
func (ix *PartitionIndex) InstrumentWith(reg *obs.Registry) *PartitionIndex {
	if reg == nil {
		return ix
	}
	ix.updates = reg.Counter("mtshare_index_updates_total")
	ix.entriesGauge = reg.Gauge("mtshare_index_partition_entries")
	ix.taxisGauge = reg.Gauge("mtshare_index_indexed_taxis")
	return ix
}

// NewPartitionIndex creates an index over the given partitioning with the
// horizon T_mp (the paper uses 1 h).
func NewPartitionIndex(pt *partition.Partitioning, horizonSeconds float64) *PartitionIndex {
	byPart := make([]map[int64]float64, pt.NumPartitions())
	for i := range byPart {
		byPart[i] = make(map[int64]float64)
	}
	return &PartitionIndex{
		pt:      pt,
		horizon: horizonSeconds,
		byPart:  byPart,
		byTaxi:  make(map[int64][]partition.ID),
	}
}

// Horizon returns the index horizon in seconds.
func (ix *PartitionIndex) Horizon() float64 { return ix.horizon }

// Update re-indexes one taxi from its remaining planned route. route is
// the polyline starting at the taxi's current position (may be nil for an
// idle taxi, which is indexed in its current partition only); nowSeconds
// is the current time and speedMps converts route meters to arrival times.
// Arrivals beyond the horizon are not indexed.
func (ix *PartitionIndex) Update(taxiID int64, at roadnet.VertexID, route []roadnet.VertexID, nowSeconds, speedMps float64) {
	arrivals := map[partition.ID]float64{ix.pt.PartitionOf(at): nowSeconds}
	if speedMps > 0 {
		g := ix.pt.Graph()
		meters := 0.0
		for i := 0; i+1 < len(route); i++ {
			c, ok := g.EdgeCost(route[i], route[i+1])
			if !ok {
				break
			}
			meters += c
			t := nowSeconds + meters/speedMps
			if t > nowSeconds+ix.horizon {
				break
			}
			p := ix.pt.PartitionOf(route[i+1])
			if _, seen := arrivals[p]; !seen {
				arrivals[p] = t
			}
		}
	}
	ix.mu.Lock()
	ix.removeLocked(taxiID)
	parts := make([]partition.ID, 0, len(arrivals))
	for p, t := range arrivals {
		ix.byPart[p][taxiID] = t
		parts = append(parts, p)
	}
	ix.byTaxi[taxiID] = parts
	ix.entries += len(parts)
	entries, taxis := ix.entries, len(ix.byTaxi)
	ix.mu.Unlock()
	if ix.updates != nil {
		ix.updates.Inc()
		ix.entriesGauge.Set(float64(entries))
		ix.taxisGauge.Set(float64(taxis))
	}
}

// Remove drops a taxi from all partition lists.
func (ix *PartitionIndex) Remove(taxiID int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(taxiID)
}

func (ix *PartitionIndex) removeLocked(taxiID int64) {
	parts, ok := ix.byTaxi[taxiID]
	if !ok {
		return
	}
	for _, p := range parts {
		delete(ix.byPart[p], taxiID)
	}
	delete(ix.byTaxi, taxiID)
	ix.entries -= len(parts)
}

// Taxis returns the partition's list P_z.L_t sorted ascending by arrival
// time (the paper's ordering), breaking ties by taxi ID for determinism.
func (ix *PartitionIndex) Taxis(p partition.ID) []Entry {
	ix.mu.RLock()
	m := ix.byPart[p]
	out := make([]Entry, 0, len(m))
	for id, t := range m {
		out = append(out, Entry{TaxiID: id, ArrivalSeconds: t})
	}
	ix.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ArrivalSeconds != out[j].ArrivalSeconds {
			return out[i].ArrivalSeconds < out[j].ArrivalSeconds
		}
		return out[i].TaxiID < out[j].TaxiID
	})
	return out
}

// ArrivalAt returns the indexed arrival time of a taxi at a partition; ok
// is false when the taxi is not expected there within the horizon. The
// candidate-search refinement uses it to discard taxis that cannot reach
// the request's partition before the pickup deadline.
func (ix *PartitionIndex) ArrivalAt(taxiID int64, p partition.ID) (float64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	t, ok := ix.byPart[p][taxiID]
	return t, ok
}

// Stats summarises index size for the Table IV memory comparison.
type Stats struct {
	Taxis       int
	Entries     int
	MemoryBytes int64
}

// Stats returns a snapshot of index size.
func (ix *PartitionIndex) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{
		Taxis:   len(ix.byTaxi),
		Entries: ix.entries,
		// Map entry ≈ key+value+bucket overhead; byTaxi slices add 8/entry.
		MemoryBytes: int64(ix.entries)*48 + int64(len(ix.byTaxi))*40 + int64(len(ix.byPart))*48,
	}
}

// LocationGrid is a uniform geographic grid over taxi positions — the
// index structure of the grid-based baselines. It is safe for concurrent
// use.
type LocationGrid struct {
	minLat, minLng   float64
	cellLat, cellLng float64
	rows, cols       int

	mu     sync.RWMutex
	cells  []map[int64]geo.Point
	byTaxi map[int64]int // taxi -> cell
}

// NewLocationGrid builds a grid over the given bounds with roughly
// cellMeters cells.
func NewLocationGrid(min, max geo.Point, cellMeters float64) *LocationGrid {
	midLat := (min.Lat + max.Lat) / 2
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(midLat*math.Pi/180)
	lg := &LocationGrid{
		minLat:  min.Lat,
		minLng:  min.Lng,
		cellLat: cellMeters / mLat,
		cellLng: cellMeters / mLng,
		byTaxi:  make(map[int64]int),
	}
	lg.rows = int((max.Lat-min.Lat)/lg.cellLat) + 1
	lg.cols = int((max.Lng-min.Lng)/lg.cellLng) + 1
	if lg.rows < 1 {
		lg.rows = 1
	}
	if lg.cols < 1 {
		lg.cols = 1
	}
	lg.cells = make([]map[int64]geo.Point, lg.rows*lg.cols)
	return lg
}

func (lg *LocationGrid) cellOf(p geo.Point) int {
	r := int((p.Lat - lg.minLat) / lg.cellLat)
	c := int((p.Lng - lg.minLng) / lg.cellLng)
	if r < 0 {
		r = 0
	}
	if r >= lg.rows {
		r = lg.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= lg.cols {
		c = lg.cols - 1
	}
	return r*lg.cols + c
}

// Update sets a taxi's position.
func (lg *LocationGrid) Update(taxiID int64, p geo.Point) {
	cell := lg.cellOf(p)
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if old, ok := lg.byTaxi[taxiID]; ok && old != cell {
		delete(lg.cells[old], taxiID)
	}
	if lg.cells[cell] == nil {
		lg.cells[cell] = make(map[int64]geo.Point)
	}
	lg.cells[cell][taxiID] = p
	lg.byTaxi[taxiID] = cell
}

// Remove drops a taxi.
func (lg *LocationGrid) Remove(taxiID int64) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if cell, ok := lg.byTaxi[taxiID]; ok {
		delete(lg.cells[cell], taxiID)
		delete(lg.byTaxi, taxiID)
	}
}

// Near returns the taxis within radiusMeters of p, sorted ascending by
// distance.
func (lg *LocationGrid) Near(p geo.Point, radiusMeters float64) []int64 {
	if radiusMeters <= 0 {
		return nil
	}
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	dr := int(radiusMeters/(lg.cellLat*mLat)) + 1
	mLng := mLat * math.Cos(p.Lat*math.Pi/180)
	dc := int(radiusMeters/(lg.cellLng*mLng)) + 1
	// Floor, not truncate: int() rounds toward zero, which would map a
	// query just below the grid's min corner onto row/column 0 and shift
	// the scanned window by one cell for out-of-bounds points.
	pr := int(math.Floor((p.Lat - lg.minLat) / lg.cellLat))
	pc := int(math.Floor((p.Lng - lg.minLng) / lg.cellLng))
	type cand struct {
		id int64
		d  float64
	}
	var found []cand
	lg.mu.RLock()
	for r := pr - dr; r <= pr+dr; r++ {
		if r < 0 || r >= lg.rows {
			continue
		}
		for c := pc - dc; c <= pc+dc; c++ {
			if c < 0 || c >= lg.cols {
				continue
			}
			for id, pos := range lg.cells[r*lg.cols+c] {
				if d := geo.Equirect(p, pos); d <= radiusMeters {
					found = append(found, cand{id, d})
				}
			}
		}
	}
	lg.mu.RUnlock()
	sort.Slice(found, func(i, j int) bool {
		if found[i].d != found[j].d {
			return found[i].d < found[j].d
		}
		return found[i].id < found[j].id
	})
	out := make([]int64, len(found))
	for i, f := range found {
		out[i] = f.id
	}
	return out
}

// Size returns the number of indexed taxis.
func (lg *LocationGrid) Size() int {
	lg.mu.RLock()
	defer lg.mu.RUnlock()
	return len(lg.byTaxi)
}

// MemoryBytes estimates the grid's heap footprint for Table IV.
func (lg *LocationGrid) MemoryBytes() int64 {
	lg.mu.RLock()
	defer lg.mu.RUnlock()
	return int64(len(lg.byTaxi))*64 + int64(len(lg.cells))*8
}
