package index

import (
	"sort"

	"repro/internal/partition"
)

// Row is one serialized partition-index entry for a taxi: the partition
// and the exact arrival time recorded there. ArrivalSeconds is carried
// verbatim (not recomputed) because it was derived from the route at
// update time and is compared with ULP sensitivity by candidate search.
type Row struct {
	Partition      partition.ID `json:"p"`
	ArrivalSeconds float64      `json:"t"`
}

// RowsOf returns the taxi's index rows sorted by partition, for snapshot
// capture. The result is empty for an unindexed taxi.
func (ix *PartitionIndex) RowsOf(taxiID int64) []Row {
	ix.mu.RLock()
	parts := ix.byTaxi[taxiID]
	rows := make([]Row, 0, len(parts))
	for _, p := range parts {
		rows = append(rows, Row{Partition: p, ArrivalSeconds: ix.byPart[p][taxiID]})
	}
	ix.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Partition < rows[j].Partition })
	return rows
}

// RestoreRows reinstalls a taxi's rows verbatim from a snapshot. Unlike
// Update it does not touch the updates counter — the counter's value is
// restored separately with the rest of the deterministic counter set —
// but it does refresh the size gauges.
func (ix *PartitionIndex) RestoreRows(taxiID int64, rows []Row) {
	ix.mu.Lock()
	ix.removeLocked(taxiID)
	parts := make([]partition.ID, 0, len(rows))
	for _, r := range rows {
		ix.byPart[r.Partition][taxiID] = r.ArrivalSeconds
		parts = append(parts, r.Partition)
	}
	ix.byTaxi[taxiID] = parts
	ix.entries += len(parts)
	entries, taxis := ix.entries, len(ix.byTaxi)
	ix.mu.Unlock()
	if ix.entriesGauge != nil {
		ix.entriesGauge.Set(float64(entries))
		ix.taxisGauge.Set(float64(taxis))
	}
}
