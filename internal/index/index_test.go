package index

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

func testPartitioning(t testing.TB) (*roadnet.Graph, *Partitioned) {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.BuildGrid(g, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g, &Partitioned{pt: pt}
}

// Partitioned bundles the partitioning for test readability.
type Partitioned struct{ pt *partition.Partitioning }

func TestPartitionIndexIdleTaxi(t *testing.T) {
	_, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	at := w.pt.Vertices(0)[0]
	ix.Update(7, at, nil, 100, 4.17)
	entries := ix.Taxis(w.pt.PartitionOf(at))
	if len(entries) != 1 || entries[0].TaxiID != 7 || entries[0].ArrivalSeconds != 100 {
		t.Fatalf("entries = %v", entries)
	}
	if arr, ok := ix.ArrivalAt(7, w.pt.PartitionOf(at)); !ok || arr != 100 {
		t.Fatalf("ArrivalAt = %v, %v", arr, ok)
	}
}

func TestPartitionIndexRouteArrivals(t *testing.T) {
	g, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	// Route across the city: the taxi must appear in every partition the
	// route crosses, with non-decreasing arrival times.
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(g.NumVertices() - 1)
	_, path, ok := g.ShortestPath(src, dst)
	if !ok {
		t.Fatal("no cross-city path")
	}
	ix.Update(1, src, path, 0, 4.17)
	crossed := map[partition.ID]bool{}
	for _, v := range path {
		crossed[w.pt.PartitionOf(v)] = true
	}
	found := 0
	var prev float64 = -1
	for p := range crossed {
		entries := ix.Taxis(p)
		if len(entries) == 1 && entries[0].TaxiID == 1 {
			found++
			if entries[0].ArrivalSeconds < 0 {
				t.Fatal("negative arrival")
			}
			_ = prev
		}
	}
	if found != len(crossed) {
		t.Fatalf("taxi indexed in %d of %d crossed partitions", found, len(crossed))
	}
	// Arrival at origin partition is now (0); at destination partition it
	// must be positive.
	if arr, ok := ix.ArrivalAt(1, w.pt.PartitionOf(dst)); !ok || arr <= 0 {
		t.Fatalf("dest arrival = %v, %v", arr, ok)
	}
}

func TestPartitionIndexHorizonCutsOff(t *testing.T) {
	g, w := testPartitioning(t)
	// Tiny horizon: only the current partition (and near neighbours)
	// should be indexed.
	ix := NewPartitionIndex(w.pt, 1)
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(g.NumVertices() - 1)
	_, path, _ := g.ShortestPath(src, dst)
	ix.Update(1, src, path, 0, 4.17)
	st := ix.Stats()
	if st.Entries > 3 {
		t.Fatalf("horizon ignored: %d entries", st.Entries)
	}
	if _, ok := ix.ArrivalAt(1, w.pt.PartitionOf(dst)); ok && w.pt.PartitionOf(dst) != w.pt.PartitionOf(src) {
		t.Fatal("distant partition indexed despite horizon")
	}
}

func TestPartitionIndexUpdateReplaces(t *testing.T) {
	g, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(g.NumVertices() - 1)
	_, path, _ := g.ShortestPath(src, dst)
	ix.Update(1, src, path, 0, 4.17)
	before := ix.Stats().Entries
	if before < 2 {
		t.Fatalf("expected multi-partition route, got %d entries", before)
	}
	// Re-index as idle at destination: old entries must vanish.
	ix.Update(1, dst, nil, 500, 4.17)
	after := ix.Stats()
	if after.Entries != 1 {
		t.Fatalf("stale entries remain: %d", after.Entries)
	}
	if _, ok := ix.ArrivalAt(1, w.pt.PartitionOf(src)); ok && w.pt.PartitionOf(src) != w.pt.PartitionOf(dst) {
		t.Fatal("old partition entry not removed")
	}
}

func TestPartitionIndexRemove(t *testing.T) {
	_, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	at := w.pt.Vertices(0)[0]
	ix.Update(1, at, nil, 0, 4.17)
	ix.Remove(1)
	if st := ix.Stats(); st.Entries != 0 || st.Taxis != 0 {
		t.Fatalf("after remove: %+v", st)
	}
	ix.Remove(1) // idempotent
}

func TestPartitionIndexSortedByArrival(t *testing.T) {
	_, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	p := partition.ID(0)
	at := w.pt.Vertices(p)[0]
	ix.Update(3, at, nil, 300, 4.17)
	ix.Update(1, at, nil, 100, 4.17)
	ix.Update(2, at, nil, 200, 4.17)
	entries := ix.Taxis(p)
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].ArrivalSeconds < entries[i-1].ArrivalSeconds {
			t.Fatal("not sorted by arrival")
		}
	}
	if entries[0].TaxiID != 1 || entries[2].TaxiID != 3 {
		t.Fatalf("order = %v", entries)
	}
}

func TestPartitionIndexZeroSpeed(t *testing.T) {
	g, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	_, path, _ := g.ShortestPath(0, roadnet.VertexID(g.NumVertices()-1))
	ix.Update(1, 0, path, 0, 0) // zero speed: only current partition
	if st := ix.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

func TestPartitionIndexConcurrent(t *testing.T) {
	g, w := testPartitioning(t)
	ix := NewPartitionIndex(w.pt, 3600)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id))
			for j := 0; j < 100; j++ {
				v := roadnet.VertexID(rng.Intn(g.NumVertices()))
				ix.Update(id, v, nil, float64(j), 4.17)
				ix.Taxis(w.pt.PartitionOf(v))
			}
		}(int64(i))
	}
	wg.Wait()
	if st := ix.Stats(); st.Taxis != 8 {
		t.Fatalf("taxis = %d", st.Taxis)
	}
}

func TestLocationGridBasic(t *testing.T) {
	min := geo.Point{Lat: 30.6, Lng: 104.0}
	max := geo.Point{Lat: 30.7, Lng: 104.1}
	lg := NewLocationGrid(min, max, 300)
	a := geo.Point{Lat: 30.65, Lng: 104.05}
	b := geo.Point{Lat: 30.651, Lng: 104.051} // ~150 m away
	far := geo.Point{Lat: 30.69, Lng: 104.09}
	lg.Update(1, a)
	lg.Update(2, b)
	lg.Update(3, far)
	got := lg.Near(a, 500)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Near = %v", got)
	}
	if lg.Size() != 3 {
		t.Fatalf("Size = %d", lg.Size())
	}
}

func TestLocationGridMoveAndRemove(t *testing.T) {
	min := geo.Point{Lat: 30.6, Lng: 104.0}
	max := geo.Point{Lat: 30.7, Lng: 104.1}
	lg := NewLocationGrid(min, max, 300)
	a := geo.Point{Lat: 30.61, Lng: 104.01}
	b := geo.Point{Lat: 30.69, Lng: 104.09}
	lg.Update(1, a)
	lg.Update(1, b) // move
	if got := lg.Near(a, 500); len(got) != 0 {
		t.Fatalf("stale position: %v", got)
	}
	if got := lg.Near(b, 500); len(got) != 1 {
		t.Fatalf("moved taxi missing: %v", got)
	}
	lg.Remove(1)
	if lg.Size() != 0 || len(lg.Near(b, 500)) != 0 {
		t.Fatal("remove failed")
	}
	lg.Remove(1) // idempotent
}

func TestLocationGridRadiusZero(t *testing.T) {
	lg := NewLocationGrid(geo.Point{Lat: 30, Lng: 104}, geo.Point{Lat: 31, Lng: 105}, 300)
	lg.Update(1, geo.Point{Lat: 30.5, Lng: 104.5})
	if got := lg.Near(geo.Point{Lat: 30.5, Lng: 104.5}, 0); got != nil {
		t.Fatalf("zero radius returned %v", got)
	}
}

func TestLocationGridSortedByDistance(t *testing.T) {
	lg := NewLocationGrid(geo.Point{Lat: 30, Lng: 104}, geo.Point{Lat: 31, Lng: 105}, 300)
	center := geo.Point{Lat: 30.5, Lng: 104.5}
	rng := rand.New(rand.NewSource(1))
	pos := make(map[int64]geo.Point)
	for i := int64(0); i < 50; i++ {
		p := geo.Point{
			Lat: 30.5 + (rng.Float64()-0.5)*0.02,
			Lng: 104.5 + (rng.Float64()-0.5)*0.02,
		}
		pos[i] = p
		lg.Update(i, p)
	}
	got := lg.Near(center, 3000)
	if len(got) == 0 {
		t.Fatal("nothing found")
	}
	prev := -1.0
	for _, id := range got {
		d := geo.Equirect(center, pos[id])
		if d < prev {
			t.Fatal("Near results not sorted by distance")
		}
		prev = d
	}
	if lg.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestLocationGridNearOutsideBounds(t *testing.T) {
	min := geo.Point{Lat: 30.6, Lng: 104.0}
	max := geo.Point{Lat: 30.7, Lng: 104.1}
	lg := NewLocationGrid(min, max, 300)
	// Taxis in the extreme corner cells of the grid.
	atMin := geo.Point{Lat: 30.6001, Lng: 104.0001}
	atMax := geo.Point{Lat: 30.6999, Lng: 104.0999}
	lg.Update(1, atMin)
	lg.Update(2, atMax)

	// Query below/left of the min corner: the fractional cell offset is
	// negative, where truncation (instead of floor) used to shift the
	// scanned window. The corner taxi is ~150 m away and must be found.
	below := geo.Point{Lat: 30.599, Lng: 103.999}
	if got := lg.Near(below, 500); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Near below min corner = %v, want [1]", got)
	}
	// Query above/right of the max corner.
	above := geo.Point{Lat: 30.701, Lng: 104.101}
	if got := lg.Near(above, 500); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Near above max corner = %v, want [2]", got)
	}
	// Far outside: nothing within radius.
	if got := lg.Near(geo.Point{Lat: 30.5, Lng: 103.9}, 500); len(got) != 0 {
		t.Fatalf("Near far outside = %v, want none", got)
	}
}

func TestLocationGridNearOnCellEdge(t *testing.T) {
	min := geo.Point{Lat: 30.6, Lng: 104.0}
	max := geo.Point{Lat: 30.7, Lng: 104.1}
	lg := NewLocationGrid(min, max, 300)
	// A query point exactly on a cell-boundary lat/lng (and on the grid's
	// min corner itself) must behave like any interior point: taxis just
	// either side of the edge are both within radius and both returned.
	edge := geo.Point{Lat: min.Lat + 2*lg.cellLat, Lng: min.Lng + 2*lg.cellLng}
	lg.Update(1, geo.Point{Lat: edge.Lat + lg.cellLat/4, Lng: edge.Lng})
	lg.Update(2, geo.Point{Lat: edge.Lat - lg.cellLat/4, Lng: edge.Lng})
	if got := lg.Near(edge, 500); len(got) != 2 {
		t.Fatalf("Near on cell edge = %v, want both neighbours", got)
	}
	corner := geo.Point{Lat: min.Lat, Lng: min.Lng}
	lg.Update(3, geo.Point{Lat: min.Lat + lg.cellLat/4, Lng: min.Lng})
	if got := lg.Near(corner, 500); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Near on min corner = %v, want [3]", got)
	}
}

func TestLocationGridConcurrent(t *testing.T) {
	lg := NewLocationGrid(geo.Point{Lat: 30, Lng: 104}, geo.Point{Lat: 31, Lng: 105}, 300)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id))
			for j := 0; j < 200; j++ {
				p := geo.Point{Lat: 30 + rng.Float64(), Lng: 104 + rng.Float64()}
				lg.Update(id, p)
				lg.Near(p, 1000)
			}
		}(int64(i))
	}
	wg.Wait()
	if lg.Size() != 8 {
		t.Fatalf("Size = %d", lg.Size())
	}
}

func BenchmarkPartitionIndexUpdate(b *testing.B) {
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(20, 20))
	if err != nil {
		b.Fatal(err)
	}
	pt, err := partition.BuildGrid(g, nil, 20)
	if err != nil {
		b.Fatal(err)
	}
	ix := NewPartitionIndex(pt, 3600)
	_, path, _ := g.ShortestPath(0, roadnet.VertexID(g.NumVertices()-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Update(int64(i%500), 0, path, float64(i), 4.17)
	}
}

func BenchmarkLocationGridNear(b *testing.B) {
	lg := NewLocationGrid(geo.Point{Lat: 30.6, Lng: 104.0}, geo.Point{Lat: 30.7, Lng: 104.1}, 300)
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < 3000; i++ {
		lg.Update(i, geo.Point{Lat: 30.6 + rng.Float64()*0.1, Lng: 104.0 + rng.Float64()*0.1})
	}
	center := geo.Point{Lat: 30.65, Lng: 104.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lg.Near(center, 2500)
	}
}
