// Package baseline implements the comparison schemes of the paper's
// evaluation (§V-A2):
//
//   - NoSharing — the regular taxi service: each request goes to the
//     geographically nearest vacant taxi within the search range, one
//     request per taxi at a time.
//   - TShare — Ma et al.'s T-Share: a grid index over taxi locations, a
//     dual-side candidate search around the request's origin and
//     destination, and the *first* valid insertion rather than the best.
//   - PGreedyDP — Tong et al.'s pGreedyDP: a grid index, origin-side
//     candidate search, and the minimum-detour insertion per candidate.
//
// All three share the simulation-facing surface of the mT-Share engine so
// the harness can swap schemes freely. Offline requests are served
// opportunistically per the paper's adjusted setting: when a taxi with
// spare seats encounters one and a valid insertion exists, it serves it.
package baseline

import (
	"sync"

	"repro/internal/fleet"
	"repro/internal/index"
	"repro/internal/roadnet"
)

// Config holds the parameters shared by all baseline schemes.
type Config struct {
	// SpeedMps is the constant taxi speed.
	SpeedMps float64
	// SearchRangeMeters is the candidate search radius γ.
	SearchRangeMeters float64
	// GridCellMeters sizes the location-grid index cells.
	GridCellMeters float64
	// RouterCacheTrees bounds the shortest-path cache.
	RouterCacheTrees int
}

// DefaultConfig mirrors the paper's defaults (15 km/h, γ = 2.5 km).
func DefaultConfig() Config {
	return Config{
		SpeedMps:          15.0 * 1000 / 3600,
		SearchRangeMeters: 2500,
		GridCellMeters:    500,
		RouterCacheTrees:  512,
	}
}

// base carries the state common to every baseline dispatcher.
type base struct {
	cfg    Config
	g      *roadnet.Graph
	router *roadnet.Router
	grid   *index.LocationGrid

	mu    sync.RWMutex
	taxis map[int64]*fleet.Taxi
}

func newBase(g *roadnet.Graph, cfg Config) *base {
	min, max := g.Bounds()
	return &base{
		cfg:    cfg,
		g:      g,
		router: roadnet.NewRouter(g, cfg.RouterCacheTrees),
		grid:   index.NewLocationGrid(min, max, cfg.GridCellMeters),
		taxis:  make(map[int64]*fleet.Taxi),
	}
}

// AddTaxi registers a taxi with the scheme.
func (b *base) AddTaxi(t *fleet.Taxi, nowSeconds float64) {
	b.mu.Lock()
	b.taxis[t.ID] = t
	b.mu.Unlock()
	b.grid.Update(t.ID, t.Point())
}

// OnTaxiAdvanced refreshes the location index after a movement tick.
func (b *base) OnTaxiAdvanced(t *fleet.Taxi, nowSeconds float64) {
	b.grid.Update(t.ID, t.Point())
}

// OnRequestCompleted is a no-op for the grid-indexed baselines.
func (b *base) OnRequestCompleted(req *fleet.Request, nowSeconds float64) {}

// PlanIdle is a no-op: baselines do not cruise for offline passengers.
func (b *base) PlanIdle(t *fleet.Taxi, nowSeconds float64) bool { return false }

// SupportsOfflineDispatch is false for the adjusted baselines: they serve
// offline requests only when a passing taxi can insert them directly.
func (b *base) SupportsOfflineDispatch() bool { return false }

// IndexMemoryBytes reports the scheme's index footprint (Table IV).
func (b *base) IndexMemoryBytes() int64 { return b.grid.MemoryBytes() }

// legCost is the plain shortest-path leg coster every baseline routes
// with.
func (b *base) legCost(u, v roadnet.VertexID) (float64, bool) {
	c := b.router.Cost(u, v)
	return c, !isInf(c)
}

func isInf(f float64) bool { return f > 1e17 }

// buildLegs materialises shortest-path legs from start through vertices.
func (b *base) buildLegs(start roadnet.VertexID, vertices []roadnet.VertexID) ([][]roadnet.VertexID, bool) {
	legs := make([][]roadnet.VertexID, len(vertices))
	at := start
	for i, v := range vertices {
		p := b.router.Path(at, v)
		if p == nil {
			return nil, false
		}
		legs[i] = p
		at = v
	}
	return legs, true
}

// commit installs events onto a taxi and refreshes its index entry.
func (b *base) commit(t *fleet.Taxi, events []fleet.Event, nowSeconds float64) bool {
	vertices := make([]roadnet.VertexID, len(events))
	for i, ev := range events {
		vertices[i] = ev.Vertex()
	}
	legs, ok := b.buildLegs(t.NextVertex(), vertices)
	if !ok {
		return false
	}
	if err := t.SetPlan(events, legs); err != nil {
		return false
	}
	b.grid.Update(t.ID, t.Point())
	return true
}

// taxiByID looks a taxi up under the read lock.
func (b *base) taxiByID(id int64) (*fleet.Taxi, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.taxis[id]
	return t, ok
}

// insertable reports whether req can be feasibly inserted into t's
// schedule, returning the chosen schedule. firstValid selects T-Share's
// first-found behaviour over minimum-detour.
func (b *base) insertable(t *fleet.Taxi, req *fleet.Request, nowSeconds float64, firstValid bool) ([]fleet.Event, fleet.EvalResult, bool) {
	if t.IdleSeats() < req.Passengers {
		return nil, fleet.EvalResult{}, false
	}
	params := t.EvalParamsAt(nowSeconds, b.cfg.SpeedMps)
	return fleet.BestInsertion(t.Schedule(), req, b.legCost, params, firstValid)
}

// TryServeOffline implements the adjusted baseline behaviour for offline
// encounters: insert when valid, first-fit.
func (b *base) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	events, _, ok := b.insertable(t, req, nowSeconds, true)
	if !ok {
		return false
	}
	return b.commit(t, events, nowSeconds)
}
