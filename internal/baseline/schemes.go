package baseline

import (
	"repro/internal/dispatch"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Result is the dispatch outcome type shared with the simulation.
type Result = dispatch.Outcome

// NoSharing is the regular taxi service: the nearest vacant taxi within γ
// serves the whole request exclusively.
type NoSharing struct{ *base }

// NewNoSharing creates the no-ridesharing scheme.
func NewNoSharing(g *roadnet.Graph, cfg Config) *NoSharing {
	return &NoSharing{base: newBase(g, cfg)}
}

// Name identifies the scheme in reports.
func (s *NoSharing) Name() string { return "No-Sharing" }

// OnRequest assigns the nearest vacant feasible taxi.
func (s *NoSharing) OnRequest(req *fleet.Request, nowSeconds float64) Result {
	near := s.grid.Near(req.OriginPt, s.cfg.SearchRangeMeters)
	res := Result{}
	for _, id := range near {
		t, ok := s.taxiByID(id)
		if !ok || !t.Empty() {
			continue
		}
		res.Candidates++
		events, _, ok := s.insertable(t, req, nowSeconds, true)
		if !ok {
			continue
		}
		if s.commit(t, events, nowSeconds) {
			res.TaxiID = id
			res.Served = true
			return res
		}
	}
	return res
}

// TryServeOffline never shares under NoSharing: an occupied taxi passes
// by, a vacant one behaves as for an online request.
func (s *NoSharing) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	if !t.Empty() {
		return false
	}
	events, _, ok := s.insertable(t, req, nowSeconds, true)
	if !ok {
		return false
	}
	return s.commit(t, events, nowSeconds)
}

// TShare approximates Ma et al.'s T-Share as the evaluation exercises it
// (§V-A2): a grid index over taxi locations, a dual-side candidate check
// (near the origin now, and — for occupied taxis — heading toward the
// destination), and the *first* valid insertion rather than the best one.
// TShareTemporal (tshare.go) is the structurally closer variant with
// arrival-time cell lists; this lighter one reproduces the paper's
// measured behaviour (smallest response time, small candidate sets) and
// is the default in the experiment harness. See DESIGN.md.
type TShare struct{ *base }

// NewTShare creates the T-Share baseline.
func NewTShare(g *roadnet.Graph, cfg Config) *TShare {
	return &TShare{base: newBase(g, cfg)}
}

// Name identifies the scheme in reports.
func (s *TShare) Name() string { return "T-Share" }

// OnRequest performs the dual-side search and takes the first feasible
// insertion.
func (s *TShare) OnRequest(req *fleet.Request, nowSeconds float64) Result {
	origSide := s.grid.Near(req.OriginPt, s.cfg.SearchRangeMeters)
	res := Result{}
	for _, id := range origSide {
		t, ok := s.taxiByID(id)
		if !ok {
			continue
		}
		// Dual-side rule: vacant taxis qualify from the origin side alone;
		// occupied taxis must be heading the destination's way.
		if !t.Empty() && !headsTowards(t, req.DestPt) {
			continue
		}
		if t.IdleSeats() < req.Passengers {
			continue
		}
		res.Candidates++
		events, _, ok := s.insertable(t, req, nowSeconds, true)
		if !ok {
			continue
		}
		if s.commit(t, events, nowSeconds) {
			res.TaxiID = id
			res.Served = true
			return res
		}
	}
	return res
}

// headsTowards reports whether the taxi's final route vertex is closer to
// the target than the taxi is now — the temporal half of T-Share's
// dual-side search, approximated from the planned route.
func headsTowards(t *fleet.Taxi, target geo.Point) bool {
	route := t.Route()
	if len(route) == 0 {
		return false
	}
	last := t.Graph().Point(route[len(route)-1])
	return geo.Equirect(last, target) < geo.Equirect(t.Point(), target)
}

// PGreedyDP approximates Tong et al.'s pGreedyDP per the paper's
// description: grid indexing, origin-side candidate search (no direction
// filtering, hence the largest candidate sets of Table III), and the
// minimum-detour insertion found by dynamic programming — functionally the
// exhaustive minimum our shared insertion machinery computes.
type PGreedyDP struct{ *base }

// NewPGreedyDP creates the pGreedyDP baseline.
func NewPGreedyDP(g *roadnet.Graph, cfg Config) *PGreedyDP {
	return &PGreedyDP{base: newBase(g, cfg)}
}

// Name identifies the scheme in reports.
func (s *PGreedyDP) Name() string { return "pGreedyDP" }

// OnRequest searches all taxis around the origin and picks the
// minimum-detour feasible insertion across all of them.
func (s *PGreedyDP) OnRequest(req *fleet.Request, nowSeconds float64) Result {
	near := s.grid.Near(req.OriginPt, s.cfg.SearchRangeMeters)
	res := Result{}
	var (
		bestTaxi   *fleet.Taxi
		bestEvents []fleet.Event
		bestDetour float64
		found      bool
	)
	for _, id := range near {
		t, ok := s.taxiByID(id)
		if !ok {
			continue
		}
		if t.IdleSeats() < req.Passengers {
			continue
		}
		res.Candidates++
		events, eval, ok := s.insertable(t, req, nowSeconds, false)
		if !ok {
			continue
		}
		detour := eval.TotalMeters - t.RemainingMeters()
		if !found || detour < bestDetour {
			bestTaxi, bestEvents, bestDetour, found = t, events, detour, true
		}
	}
	if !found {
		return res
	}
	if s.commit(bestTaxi, bestEvents, nowSeconds) {
		res.TaxiID = bestTaxi.ID
		res.Served = true
	}
	return res
}
