package baseline

import (
	"math"
	"sort"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// TShareTemporal is the structurally faithful variant of Ma et al.'s
// T-Share: a *spatio-temporal* grid index — for each grid cell, the list
// of taxis currently in it or arriving within the horizon, sorted by
// arrival time — and a dual-side search that intersects the origin-side
// candidates (taxis that can reach the origin cell before the pickup
// deadline) with the destination-side candidates (taxis expected near the
// destination before the delivery deadline). The first candidate with a
// valid schedule insertion is selected, not the best one.
type TShareTemporal struct {
	*base
	grid   *partition.Partitioning
	tindex *index.PartitionIndex

	lastPart map[int64]partition.ID
	spx      *roadnet.SpatialIndex
}

// NewTShare creates the T-Share baseline. The temporal grid uses cells of
// roughly cfg.GridCellMeters; its horizon covers the pickup windows that
// matter (entries beyond a requester's pickup deadline are filtered at
// query time, so a longer horizon only lengthens the lists).
func NewTShareTemporal(g *roadnet.Graph, cfg Config) *TShareTemporal {
	min, max := g.Bounds()
	// Cell count from the bounding box area and the configured cell size.
	widthM := distMeters(g, min.Lat, min.Lng, min.Lat, max.Lng)
	heightM := distMeters(g, min.Lat, min.Lng, max.Lat, min.Lng)
	cells := int(widthM*heightM/(cfg.GridCellMeters*cfg.GridCellMeters)) + 1
	if cells < 4 {
		cells = 4
	}
	grid, err := partition.BuildGrid(g, nil, cells)
	if err != nil {
		// BuildGrid only fails on empty graphs, which NewTShare's callers
		// never pass; keep the constructor signature simple.
		panic(err)
	}
	return &TShareTemporal{
		base:     newBase(g, cfg),
		grid:     grid,
		tindex:   index.NewPartitionIndex(grid, 900),
		lastPart: make(map[int64]partition.ID),
		spx:      roadnet.NewSpatialIndex(g, cfg.GridCellMeters),
	}
}

func distMeters(g *roadnet.Graph, lat1, lng1, lat2, lng2 float64) float64 {
	const mLat = 111195.0
	dLat := (lat2 - lat1) * mLat
	dLng := (lng2 - lng1) * mLat * math.Cos(lat1*math.Pi/180)
	return math.Sqrt(dLat*dLat + dLng*dLng)
}

// Name identifies the scheme in reports.
func (s *TShareTemporal) Name() string { return "T-Share-temporal" }

// AddTaxi registers a taxi in the location grid and the temporal index.
func (s *TShareTemporal) AddTaxi(t *fleet.Taxi, nowSeconds float64) {
	s.base.AddTaxi(t, nowSeconds)
	s.reindex(t, nowSeconds)
}

func (s *TShareTemporal) reindex(t *fleet.Taxi, nowSeconds float64) {
	s.tindex.Update(t.ID, t.At(), t.Route(), nowSeconds, s.cfg.SpeedMps)
	s.lastPart[t.ID] = s.grid.PartitionOf(t.At())
}

// OnTaxiAdvanced refreshes the indexes when the taxi crossed a cell border
// (entries computed at plan time stay valid while the plan is followed).
func (s *TShareTemporal) OnTaxiAdvanced(t *fleet.Taxi, nowSeconds float64) {
	s.base.OnTaxiAdvanced(t, nowSeconds)
	if s.lastPart[t.ID] != s.grid.PartitionOf(t.At()) {
		s.reindex(t, nowSeconds)
	}
}

// OnRequest performs the dual-side spatio-temporal search and takes the
// first feasible insertion.
func (s *TShareTemporal) OnRequest(req *fleet.Request, nowSeconds float64) Result {
	res := Result{}
	pickupDL := req.PickupDeadline(s.cfg.SpeedMps).Seconds()
	deliveryDL := req.Deadline.Seconds()
	if pickupDL <= nowSeconds {
		return res
	}
	// Destination side: taxis expected near the destination before the
	// delivery deadline. Built lazily — vacant taxis qualify from the
	// origin side alone, so many requests never need it. The origin side
	// is searched cell by cell, expanding outward, and stops at the first
	// valid candidate — the lazy expansion that makes T-Share's search
	// cheap and its candidate sets small (Table III).
	var destSet map[int64]bool
	destSide := func() map[int64]bool {
		if destSet != nil {
			return destSet
		}
		destSet = make(map[int64]bool)
		for _, cell := range s.grid.PartitionsNear(s.spx, req.DestPt, s.cfg.SearchRangeMeters) {
			for _, e := range s.tindex.Taxis(cell) {
				if e.ArrivalSeconds <= deliveryDL {
					destSet[e.TaxiID] = true
				}
			}
		}
		return destSet
	}
	cells := s.grid.PartitionsNear(s.spx, req.OriginPt, s.cfg.SearchRangeMeters)
	sort.Slice(cells, func(i, j int) bool {
		return geo.Equirect(s.grid.Center(cells[i]), req.OriginPt) <
			geo.Equirect(s.grid.Center(cells[j]), req.OriginPt)
	})
	seen := make(map[int64]bool)
	for _, cell := range cells {
		for _, entry := range s.tindex.Taxis(cell) {
			if entry.ArrivalSeconds > pickupDL || seen[entry.TaxiID] {
				continue
			}
			seen[entry.TaxiID] = true
			t, ok := s.taxiByID(entry.TaxiID)
			if !ok {
				continue
			}
			// Dual-side rule: vacant taxis qualify from the origin side
			// alone; occupied taxis must also appear on the destination
			// side.
			if !t.Empty() && !destSide()[t.ID] {
				continue
			}
			if t.IdleSeats() < req.Passengers {
				continue
			}
			res.Candidates++
			events, _, ok := s.insertable(t, req, nowSeconds, true)
			if !ok {
				continue
			}
			if s.commit(t, events, nowSeconds) {
				s.reindex(t, nowSeconds)
				res.TaxiID = t.ID
				res.Served = true
				return res
			}
		}
	}
	return res
}

// TryServeOffline inserts on encounter (first valid), keeping the
// temporal index fresh.
func (s *TShareTemporal) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	if !s.base.TryServeOffline(t, req, nowSeconds) {
		return false
	}
	s.reindex(t, nowSeconds)
	return true
}

// IndexMemoryBytes includes the temporal index (Table IV).
func (s *TShareTemporal) IndexMemoryBytes() int64 {
	return s.base.IndexMemoryBytes() + s.tindex.Stats().MemoryBytes + s.grid.MemoryBytes()
}
