package baseline

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

type benv struct {
	g   *roadnet.Graph
	spx *roadnet.SpatialIndex
}

func newBenv(t testing.TB) *benv {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(14, 14))
	if err != nil {
		t.Fatal(err)
	}
	return &benv{g: g, spx: roadnet.NewSpatialIndex(g, 250)}
}

func (env *benv) vertexNear(t testing.TB, fLat, fLng float64) roadnet.VertexID {
	t.Helper()
	min, max := env.g.Bounds()
	v, ok := env.spx.NearestVertex(geo.Point{
		Lat: min.Lat + fLat*(max.Lat-min.Lat),
		Lng: min.Lng + fLng*(max.Lng-min.Lng),
	})
	if !ok {
		t.Fatal("no vertex")
	}
	return v
}

func (env *benv) request(t testing.TB, id int64, o, d roadnet.VertexID, releaseSeconds, rho, speed float64) *fleet.Request {
	t.Helper()
	direct, _, ok := env.g.ShortestPath(o, d)
	if !ok {
		t.Fatal("unroutable request")
	}
	directSec := direct / speed
	return &fleet.Request{
		ID:           fleet.RequestID(id),
		ReleaseAt:    time.Duration(releaseSeconds * float64(time.Second)),
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration((releaseSeconds + directSec*rho) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		OriginPt:     env.g.Point(o),
		DestPt:       env.g.Point(d),
	}
}

func TestNoSharingServesNearestVacant(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	s := NewNoSharing(env.g, cfg)
	near := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.52, 0.52))
	far := fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.62, 0.62))
	s.AddTaxi(near, 0)
	s.AddTaxi(far, 0)
	req := env.request(t, 1, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.8, 0.8), 0, 1.5, cfg.SpeedMps)
	res := s.OnRequest(req, 0)
	if !res.Served || res.TaxiID != 1 {
		t.Fatalf("result = %+v", res)
	}
	if near.Empty() {
		t.Fatal("plan not installed")
	}
	// Occupied taxi must not be reused while serving.
	req2 := env.request(t, 2, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.8, 0.8), 1, 1.5, cfg.SpeedMps)
	res2 := s.OnRequest(req2, 1)
	if !res2.Served || res2.TaxiID != 2 {
		t.Fatalf("second result = %+v", res2)
	}
}

func TestNoSharingNoVacantTaxi(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	s := NewNoSharing(env.g, cfg)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	s.AddTaxi(taxi, 0)
	req := env.request(t, 1, env.vertexNear(t, 0.5, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.5, cfg.SpeedMps)
	if res := s.OnRequest(req, 0); !res.Served {
		t.Fatal("setup dispatch failed")
	}
	req2 := env.request(t, 2, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.8, 0.8), 1, 1.5, cfg.SpeedMps)
	if res := s.OnRequest(req2, 1); res.Served {
		t.Fatal("occupied taxi served under NoSharing")
	}
}

func TestNoSharingOutOfRange(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 50
	s := NewNoSharing(env.g, cfg)
	s.AddTaxi(fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.05, 0.05)), 0)
	req := env.request(t, 1, env.vertexNear(t, 0.9, 0.9), env.vertexNear(t, 0.5, 0.5), 0, 1.5, cfg.SpeedMps)
	if res := s.OnRequest(req, 0); res.Served {
		t.Fatal("taxi outside gamma served request")
	}
}

func TestTShareSharesARide(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	s := NewTShare(env.g, cfg)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.2, 0.2))
	s.AddTaxi(taxi, 0)
	r1 := env.request(t, 1, env.vertexNear(t, 0.2, 0.2), env.vertexNear(t, 0.8, 0.8), 0, 1.6, cfg.SpeedMps)
	if res := s.OnRequest(r1, 0); !res.Served {
		t.Fatal("first request unserved")
	}
	r2 := env.request(t, 2, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.7), 5, 1.8, cfg.SpeedMps)
	res := s.OnRequest(r2, 5)
	if !res.Served || res.TaxiID != 1 {
		t.Fatalf("sharing failed: %+v", res)
	}
	if len(taxi.Schedule()) != 4 {
		t.Fatalf("schedule = %d events", len(taxi.Schedule()))
	}
	if !fleet.ValidSequence(taxi.Schedule()) {
		t.Fatal("invalid schedule")
	}
}

func TestTShareDualSideFiltersOppositeTaxis(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 600
	s := NewTShare(env.g, cfg)
	// Occupied taxi heading away from the request's destination.
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	s.AddTaxi(taxi, 0)
	away := env.request(t, 10, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.5, 0.05), 0, 1.6, cfg.SpeedMps)
	if res := s.OnRequest(away, 0); !res.Served {
		t.Fatal("setup failed")
	}
	// Request going the other way: the taxi is near the origin but heads
	// away from the destination, so the dual-side search rejects it.
	req := env.request(t, 1, env.vertexNear(t, 0.5, 0.55), env.vertexNear(t, 0.5, 0.95), 1, 1.5, cfg.SpeedMps)
	res := s.OnRequest(req, 1)
	if res.Served {
		t.Fatalf("opposite-direction taxi accepted: %+v", res)
	}
	if res.Candidates != 0 {
		t.Fatalf("opposite taxi still counted as candidate: %+v", res)
	}
}

func TestPGreedyDPPicksMinimumDetour(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	s := NewPGreedyDP(env.g, cfg)
	// Taxi A sits at the origin; taxi B is farther away.
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.8, 0.8)
	tA := fleet.NewTaxi(env.g, 1, 3, o)
	tB := fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.3, 0.3))
	s.AddTaxi(tA, 0)
	s.AddTaxi(tB, 0)
	req := env.request(t, 1, o, d, 0, 1.5, cfg.SpeedMps)
	res := s.OnRequest(req, 0)
	if !res.Served || res.TaxiID != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Candidates < 2 {
		t.Fatalf("candidates = %d, want both taxis", res.Candidates)
	}
}

func TestPGreedyDPHasMoreCandidatesThanTShare(t *testing.T) {
	// Table III's ordering: pGreedyDP examines more candidates because it
	// never direction-filters.
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	sp := NewPGreedyDP(env.g, cfg)
	st := NewTShare(env.g, cfg)
	// A mix of occupied taxis in both directions.
	for i := int64(0); i < 6; i++ {
		f := 0.3 + 0.05*float64(i)
		tp := fleet.NewTaxi(env.g, i, 3, env.vertexNear(t, f, f))
		tt := fleet.NewTaxi(env.g, i, 3, env.vertexNear(t, f, f))
		sp.AddTaxi(tp, 0)
		st.AddTaxi(tt, 0)
		var r *fleet.Request
		if i%2 == 0 {
			r = env.request(t, 100+i, env.vertexNear(t, f, f), env.vertexNear(t, 0.9, 0.9), 0, 1.8, cfg.SpeedMps)
		} else {
			r = env.request(t, 100+i, env.vertexNear(t, f, f), env.vertexNear(t, 0.05, 0.05), 0, 1.8, cfg.SpeedMps)
		}
		sp.OnRequest(r, 0)
		rCopy := *r
		st.OnRequest(&rCopy, 0)
	}
	req := env.request(t, 1, env.vertexNear(t, 0.45, 0.45), env.vertexNear(t, 0.9, 0.9), 10, 1.5, cfg.SpeedMps)
	rp := sp.OnRequest(req, 10)
	reqCopy := *req
	reqCopy.ID = 2
	rt := st.OnRequest(&reqCopy, 10)
	if rp.Candidates < rt.Candidates {
		t.Fatalf("pGreedyDP candidates %d < T-Share %d", rp.Candidates, rt.Candidates)
	}
}

func TestBaselineTryServeOffline(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	s := NewTShare(env.g, cfg)
	o := env.vertexNear(t, 0.3, 0.3)
	taxi := fleet.NewTaxi(env.g, 1, 3, o)
	s.AddTaxi(taxi, 0)
	r1 := env.request(t, 1, o, env.vertexNear(t, 0.8, 0.8), 0, 1.8, cfg.SpeedMps)
	if res := s.OnRequest(r1, 0); !res.Served {
		t.Fatal("setup failed")
	}
	off := env.request(t, 2, env.vertexNear(t, 0.4, 0.4), env.vertexNear(t, 0.7, 0.7), 0, 1.8, cfg.SpeedMps)
	off.Offline = true
	if !s.TryServeOffline(taxi, off, 0) {
		t.Fatal("compatible offline request rejected")
	}
	// NoSharing: occupied taxi never takes an offline request.
	ns := NewNoSharing(env.g, cfg)
	taxi2 := fleet.NewTaxi(env.g, 5, 3, o)
	ns.AddTaxi(taxi2, 0)
	r3 := env.request(t, 3, o, env.vertexNear(t, 0.8, 0.8), 0, 1.8, cfg.SpeedMps)
	if res := ns.OnRequest(r3, 0); !res.Served {
		t.Fatal("setup failed")
	}
	off2 := env.request(t, 4, env.vertexNear(t, 0.4, 0.4), env.vertexNear(t, 0.7, 0.7), 0, 1.8, cfg.SpeedMps)
	off2.Offline = true
	if ns.TryServeOffline(taxi2, off2, 0) {
		t.Fatal("NoSharing shared a ride")
	}
}

func TestOnTaxiAdvancedUpdatesGrid(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 600
	s := NewNoSharing(env.g, cfg)
	start := env.vertexNear(t, 0.1, 0.1)
	taxi := fleet.NewTaxi(env.g, 1, 3, start)
	s.AddTaxi(taxi, 0)
	// Move the taxi across the city without telling the grid: a request
	// at the new position must miss, then hit after OnTaxiAdvanced.
	dest := env.vertexNear(t, 0.9, 0.9)
	if err := taxi.SetPlan(nil, [][]roadnet.VertexID{mustPath(t, env.g, start, dest)}); err != nil {
		t.Fatal(err)
	}
	for len(taxi.Route()) > 1 {
		taxi.Advance(1e6)
	}
	req := env.request(t, 1, dest, env.vertexNear(t, 0.5, 0.5), 0, 1.5, cfg.SpeedMps)
	if res := s.OnRequest(req, 0); res.Served {
		t.Fatal("stale grid served request")
	}
	s.OnTaxiAdvanced(taxi, 0)
	req2 := env.request(t, 2, dest, env.vertexNear(t, 0.5, 0.5), 0, 1.5, cfg.SpeedMps)
	if res := s.OnRequest(req2, 0); !res.Served {
		t.Fatal("fresh grid failed to serve")
	}
}

func mustPath(t testing.TB, g *roadnet.Graph, u, v roadnet.VertexID) []roadnet.VertexID {
	t.Helper()
	_, p, ok := g.ShortestPath(u, v)
	if !ok {
		t.Fatal("no path")
	}
	return p
}

func TestPlanIdleAndMemory(t *testing.T) {
	env := newBenv(t)
	s := NewTShare(env.g, DefaultConfig())
	taxi := fleet.NewTaxi(env.g, 1, 3, 0)
	s.AddTaxi(taxi, 0)
	if s.PlanIdle(taxi, 0) {
		t.Fatal("baseline cruised")
	}
	if s.IndexMemoryBytes() <= 0 {
		t.Fatal("memory not reported")
	}
	if s.Name() != "T-Share" {
		t.Fatal("name wrong")
	}
	s.OnRequestCompleted(nil, 0) // no-op must not panic
}

func BenchmarkTShareOnRequest(b *testing.B) {
	env := newBenv(b)
	cfg := DefaultConfig()
	s := NewTShare(env.g, cfg)
	for i := int64(0); i < 50; i++ {
		f := 0.1 + 0.8*float64(i)/50
		s.AddTaxi(fleet.NewTaxi(env.g, i, 3, env.vertexNear(b, f, 1-f)), 0)
	}
	req := env.request(b, 1, env.vertexNear(b, 0.5, 0.5), env.vertexNear(b, 0.9, 0.9), 0, 1.5, cfg.SpeedMps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := *req
		r.ID = fleet.RequestID(i + 10)
		s.OnRequest(&r, 0)
	}
}

func BenchmarkPGreedyDPOnRequest(b *testing.B) {
	env := newBenv(b)
	cfg := DefaultConfig()
	s := NewPGreedyDP(env.g, cfg)
	for i := int64(0); i < 50; i++ {
		f := 0.1 + 0.8*float64(i)/50
		s.AddTaxi(fleet.NewTaxi(env.g, i, 3, env.vertexNear(b, f, 1-f)), 0)
	}
	req := env.request(b, 1, env.vertexNear(b, 0.5, 0.5), env.vertexNear(b, 0.9, 0.9), 0, 1.5, cfg.SpeedMps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := *req
		r.ID = fleet.RequestID(i + 10)
		s.OnRequest(&r, 0)
	}
}

func TestTShareTemporalVariant(t *testing.T) {
	env := newBenv(t)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 2500
	s := NewTShareTemporal(env.g, cfg)
	if s.Name() != "T-Share-temporal" {
		t.Fatalf("name %q", s.Name())
	}
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.2, 0.2))
	s.AddTaxi(taxi, 0)
	r1 := env.request(t, 1, env.vertexNear(t, 0.2, 0.2), env.vertexNear(t, 0.8, 0.8), 0, 1.6, cfg.SpeedMps)
	res := s.OnRequest(r1, 0)
	if !res.Served {
		t.Fatal("temporal T-Share served nothing")
	}
	// Dual-side via arrival lists: a second request along the corridor
	// shares; one in the opposite direction does not use this taxi.
	r2 := env.request(t, 2, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.7), 5, 1.8, cfg.SpeedMps)
	if res := s.OnRequest(r2, 5); !res.Served || res.TaxiID != 1 {
		t.Fatalf("corridor request not shared: %+v", res)
	}
	if s.IndexMemoryBytes() <= 0 {
		t.Fatal("temporal index memory not reported")
	}
	// Offline encounter keeps the temporal index fresh.
	off := env.request(t, 3, env.vertexNear(t, 0.4, 0.4), env.vertexNear(t, 0.6, 0.6), 5, 1.9, cfg.SpeedMps)
	off.Offline = true
	_ = s.TryServeOffline(taxi, off, 5)
	// Movement across cells triggers reindexing without panics.
	for i := 0; i < 50; i++ {
		taxi.Advance(100)
		s.OnTaxiAdvanced(taxi, float64(i))
	}
}
