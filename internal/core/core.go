// Package core names the paper's primary contribution — the mT-Share
// matching engine — at the canonical location of the repository layout.
// The implementation lives in the sibling packages it composes:
//
//   - repro/internal/match      candidate search, taxi scheduling (Alg. 1),
//     partition filtering (Alg. 2), basic routing (Alg. 3), probabilistic
//     routing and cruising (Alg. 4)
//   - repro/internal/partition  bipartite map partitioning (§IV-B1)
//   - repro/internal/mobcluster mobility clustering (§IV-B2)
//   - repro/internal/index      taxi indexes (§IV-B3)
//   - repro/internal/payment    the payment model (§IV-D)
//
// This package re-exports the engine's entry points so code organised
// around "the core" needs only one import.
package core

import (
	"repro/internal/match"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// Engine is mT-Share's matching engine (see repro/internal/match.Engine).
type Engine = match.Engine

// Config is the engine configuration with the paper's Table II defaults.
type Config = match.Config

// Scheme adapts the engine to the simulation's dispatcher contract;
// its Probabilistic flag selects the mT-Share_pro variant.
type Scheme = match.Scheme

// Assignment is a matching outcome (taxi, schedule, route, detour).
type Assignment = match.Assignment

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config { return match.DefaultConfig() }

// NewEngine builds an engine over a prepared partitioning and spatial
// index.
func NewEngine(pt *partition.Partitioning, spx *roadnet.SpatialIndex, cfg Config) (*Engine, error) {
	return match.NewEngine(pt, spx, cfg)
}

// NewScheme wraps an engine as a simulation dispatcher.
func NewScheme(e *Engine, probabilistic bool) *Scheme { return match.NewScheme(e, probabilistic) }
