package core

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/roadnet"
)

func TestCoreAliasesConstructUsableEngine(t *testing.T) {
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	spx := roadnet.NewSpatialIndex(g, 250)
	pt, err := partition.BuildGrid(g, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(pt, spx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheme(e, false)
	if s.Name() != "mT-Share" {
		t.Fatalf("scheme name %q", s.Name())
	}
	if e.NumTaxis() != 0 {
		t.Fatal("fresh engine has taxis")
	}
}
