package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
)

// ODMatrix aggregates trips into an origin-destination matrix over a
// uniform grid — the aggregate view of travel demand that motivates the
// paper's transition-pattern mining, and a convenient smoke test for
// generated datasets.
type ODMatrix struct {
	Rows, Cols int
	minLat     float64
	minLng     float64
	cellLat    float64
	cellLng    float64
	// Counts[o][d] is the number of trips from origin cell o to
	// destination cell d; cells are row-major indices.
	Counts [][]int
	Total  int
}

// NewODMatrix builds an OD matrix over the dataset with the given grid
// resolution. It returns an error for empty datasets or degenerate grids.
func NewODMatrix(d *Dataset, rows, cols int) (*ODMatrix, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("trace: OD grid %dx%d invalid", rows, cols)
	}
	if len(d.Trips) == 0 {
		return nil, fmt.Errorf("trace: empty dataset")
	}
	minLat, minLng := math.Inf(1), math.Inf(1)
	maxLat, maxLng := math.Inf(-1), math.Inf(-1)
	for _, t := range d.Trips {
		for _, p := range []geo.Point{t.Origin, t.Dest} {
			minLat = math.Min(minLat, p.Lat)
			minLng = math.Min(minLng, p.Lng)
			maxLat = math.Max(maxLat, p.Lat)
			maxLng = math.Max(maxLng, p.Lng)
		}
	}
	m := &ODMatrix{
		Rows:    rows,
		Cols:    cols,
		minLat:  minLat,
		minLng:  minLng,
		cellLat: (maxLat - minLat) / float64(rows),
		cellLng: (maxLng - minLng) / float64(cols),
	}
	if m.cellLat <= 0 {
		m.cellLat = 1e-9
	}
	if m.cellLng <= 0 {
		m.cellLng = 1e-9
	}
	n := rows * cols
	m.Counts = make([][]int, n)
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	for _, t := range d.Trips {
		m.Counts[m.CellOf(t.Origin)][m.CellOf(t.Dest)]++
		m.Total++
	}
	return m, nil
}

// CellOf maps a point to its grid cell index.
func (m *ODMatrix) CellOf(p geo.Point) int {
	r := int((p.Lat - m.minLat) / m.cellLat)
	c := int((p.Lng - m.minLng) / m.cellLng)
	if r >= m.Rows {
		r = m.Rows - 1
	}
	if r < 0 {
		r = 0
	}
	if c >= m.Cols {
		c = m.Cols - 1
	}
	if c < 0 {
		c = 0
	}
	return r*m.Cols + c
}

// OriginCounts returns per-cell origin totals.
func (m *ODMatrix) OriginCounts() []int {
	out := make([]int, len(m.Counts))
	for o, row := range m.Counts {
		for _, c := range row {
			out[o] += c
		}
	}
	return out
}

// DestCounts returns per-cell destination totals.
func (m *ODMatrix) DestCounts() []int {
	out := make([]int, len(m.Counts))
	for _, row := range m.Counts {
		for d, c := range row {
			out[d] += c
		}
	}
	return out
}

// Gini returns the Gini coefficient of per-cell origin demand — a scalar
// measure of hotspot concentration (0 = uniform, →1 = all demand in one
// cell). The synthetic generator should produce clearly non-uniform
// demand, like the real trace.
func (m *ODMatrix) Gini() float64 {
	counts := m.OriginCounts()
	n := len(counts)
	if n == 0 || m.Total == 0 {
		return 0
	}
	// Sort ascending (insertion sort: cell counts are small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && counts[j] < counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	var cum, lorenz float64
	for _, c := range counts {
		cum += float64(c)
		lorenz += cum
	}
	// Gini = 1 - 2 * (area under Lorenz curve).
	return 1 - 2*lorenz/(float64(n)*float64(m.Total)) + 1/float64(n)
}

// SplitByTime partitions the dataset into two at the given time: trips
// released before go into the first dataset. The common train/evaluate
// split for transition mining.
func (d *Dataset) SplitByTime(at time.Duration) (before, after *Dataset) {
	before = &Dataset{Day: d.Day}
	after = &Dataset{Day: d.Day}
	for _, t := range d.Trips {
		if t.ReleaseAt < at {
			before.Trips = append(before.Trips, t)
		} else {
			after.Trips = append(after.Trips, t)
		}
	}
	return before, after
}

// Merge concatenates datasets of the same day kind, re-sorting by release
// time and renumbering IDs.
func Merge(day DayKind, parts ...*Dataset) *Dataset {
	out := &Dataset{Day: day}
	for _, p := range parts {
		out.Trips = append(out.Trips, p.Trips...)
	}
	sort.SliceStable(out.Trips, func(i, j int) bool {
		return out.Trips[i].ReleaseAt < out.Trips[j].ReleaseAt
	})
	for i := range out.Trips {
		out.Trips[i].ID = int64(i)
	}
	return out
}

// Sample returns every k-th trip (k >= 1), preserving order — a quick way
// to thin a dataset for scale studies.
func (d *Dataset) Sample(k int) *Dataset {
	if k < 1 {
		k = 1
	}
	out := &Dataset{Day: d.Day}
	for i := 0; i < len(d.Trips); i += k {
		out.Trips = append(out.Trips, d.Trips[i])
	}
	return out
}
