// Workload shapes the paper never tested: deterministic overlays on the
// synthetic trace generator that stress dispatch in ways a plain
// demand-profile day cannot — a concert-exit surge (a venue dumps a
// crowd into a half-hour window) and a partition-localized hotspot (a
// large share of all origins lands inside one small disc, so one
// territory's engine absorbs most of the offered load).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
)

// SurgeParams overlays a concert-exit demand spike on a generated day:
// inside [Start, End) extra trips are injected so the window's trip
// count is at least Multiplier times the base day's count there, every
// extra trip originating within a Gaussian scatter around Venue (the
// crowd leaving one gate) and heading for residential demand centers.
type SurgeParams struct {
	// Venue is where the crowd pours out.
	Venue geo.Point
	// SigmaMeters scatters surge origins around the venue (default:
	// 300 m).
	SigmaMeters float64
	// Start and End bound the surge window within the day.
	Start, End time.Duration
	// Multiplier is the demanded ratio of surge-window trips to the base
	// day's trips in the same window; must be > 1.
	Multiplier float64
	// Seed makes the overlay deterministic, independently of the base
	// day's seed.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p SurgeParams) Validate() error {
	switch {
	case p.End <= p.Start || p.Start < 0 || p.End > 24*time.Hour:
		return fmt.Errorf("trace: surge window [%v, %v) is not a sub-interval of the day", p.Start, p.End)
	case p.Multiplier <= 1:
		return fmt.Errorf("trace: surge Multiplier must exceed 1, got %v", p.Multiplier)
	}
	return nil
}

// GenerateSurge produces a full-day dataset equal to Generate(day, base)
// plus the surge overlay. The base day is untouched outside the window,
// so a (base, surge) pair differs only where the spike is — exactly the
// A/B shape the surge ablation compares. Trips are re-IDed in release
// order like Generate's.
func GenerateSurge(day DayKind, base GenParams, surge SurgeParams) (*Dataset, error) {
	if err := surge.Validate(); err != nil {
		return nil, err
	}
	ds, err := Generate(day, base)
	if err != nil {
		return nil, err
	}
	if base.Hotspots == nil {
		base.Hotspots = DefaultHotspots(base.Center, base.ExtentMeters, base.Seed)
	}
	sigma := surge.SigmaMeters
	if sigma <= 0 {
		sigma = 300
	}
	baseInWin := len(ds.Between(surge.Start, surge.End))
	extra := int(math.Ceil((surge.Multiplier - 1) * float64(baseInWin)))
	if extra == 0 {
		extra = 1 // an empty base window still gets a spike
	}
	rng := rand.New(rand.NewSource(surge.Seed))
	g := &generator{params: base, rng: rng, minTrip: math.Max(base.MinTripMeters, 1)}
	g.indexHotspots()
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(surge.Venue.Lat*math.Pi/180)
	span := surge.End - surge.Start
	for i := 0; i < extra; i++ {
		o := g.clamp(geo.Point{
			Lat: surge.Venue.Lat + rng.NormFloat64()*sigma/mLat,
			Lng: surge.Venue.Lng + rng.NormFloat64()*sigma/mLng,
		})
		// The crowd disperses home: destinations follow the residential
		// hotspot field.
		d := g.samplePoint(Residential)
		ds.Trips = append(ds.Trips, Trip{
			ReleaseAt: surge.Start + time.Duration(rng.Float64()*float64(span)),
			Origin:    o,
			Dest:      d,
		})
	}
	sort.SliceStable(ds.Trips, func(i, j int) bool { return ds.Trips[i].ReleaseAt < ds.Trips[j].ReleaseAt })
	for i := range ds.Trips {
		ds.Trips[i].ID = int64(i)
	}
	return ds, nil
}

// HotspotShapeParams concentrates demand in one small disc: a seeded
// fraction of the day's trips have their origin re-drawn uniformly
// inside the disc while destinations stay city-wide, so taxis drain out
// of the hotspot and the territory owning it absorbs a disproportionate
// share of the offered load.
type HotspotShapeParams struct {
	Center       geo.Point
	RadiusMeters float64
	// Frac of all trips get their origin moved into the disc; [0, 1].
	Frac float64
	// Seed picks which trips move and where they land.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p HotspotShapeParams) Validate() error {
	switch {
	case p.RadiusMeters <= 0:
		return fmt.Errorf("trace: hotspot RadiusMeters must be positive, got %v", p.RadiusMeters)
	case p.Frac < 0 || p.Frac > 1:
		return fmt.Errorf("trace: hotspot Frac must be in [0,1], got %v", p.Frac)
	}
	return nil
}

// GenerateHotspot produces Generate(day, base) with the hotspot overlay
// applied: exactly round(Frac·N) trips — chosen by a seeded permutation
// — originate inside the disc (uniform by area; points are not clamped,
// so the in-disc invariant is exact by construction). Release times,
// destinations, and the other trips are untouched.
func GenerateHotspot(day DayKind, base GenParams, h HotspotShapeParams) (*Dataset, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	ds, err := Generate(day, base)
	if err != nil {
		return nil, err
	}
	n := len(ds.Trips)
	k := int(math.Round(h.Frac * float64(n)))
	rng := rand.New(rand.NewSource(h.Seed))
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(h.Center.Lat*math.Pi/180)
	for _, i := range rng.Perm(n)[:k] {
		// Uniform by area: radius ∝ sqrt(U).
		r := h.RadiusMeters * math.Sqrt(rng.Float64())
		ang := rng.Float64() * 2 * math.Pi
		ds.Trips[i].Origin = geo.Point{
			Lat: h.Center.Lat + r*math.Sin(ang)/mLat,
			Lng: h.Center.Lng + r*math.Cos(ang)/mLng,
		}
	}
	return ds, nil
}
