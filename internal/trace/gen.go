package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
)

// HotspotKind labels the functional role of a demand hotspot; the OD mix
// between kinds shifts with time of day, which is what gives the synthetic
// trace the transition patterns the bipartite map partitioning mines.
type HotspotKind int

// Hotspot kinds.
const (
	Residential HotspotKind = iota
	Business
	Leisure
	Transport
	numKinds
)

// String implements fmt.Stringer.
func (k HotspotKind) String() string {
	switch k {
	case Residential:
		return "residential"
	case Business:
		return "business"
	case Leisure:
		return "leisure"
	case Transport:
		return "transport"
	default:
		return fmt.Sprintf("HotspotKind(%d)", int(k))
	}
}

// Hotspot is a Gaussian demand center.
type Hotspot struct {
	Center geo.Point
	// SigmaMeters is the standard deviation of trip endpoints around the
	// center.
	SigmaMeters float64
	Kind        HotspotKind
	// Weight is the relative popularity among hotspots of the same kind.
	Weight float64
}

// GenParams configures the synthetic trace generator.
type GenParams struct {
	// Center and ExtentMeters define the square city area trips fall in;
	// endpoints are clamped to it. These should match the road network the
	// trace will be replayed on.
	Center       geo.Point
	ExtentMeters float64
	// Hotspots to scatter demand around. If nil, DefaultHotspots is used.
	Hotspots []Hotspot
	// TripsPerHourPeak scales the demand curve: it is the trip count of
	// the busiest hour (8:00 on a workday). The paper's busiest hour has
	// 29,534 trips; the harness defaults to a reduced scale.
	TripsPerHourPeak int
	// UniformFrac is the fraction of trips with endpoints sampled
	// uniformly over the area instead of around hotspots (background
	// noise present in any real trace). Range [0,1].
	UniformFrac float64
	// MinTripMeters rejects degenerate trips shorter than this straight-
	// line distance. Defaults to 500 m when zero.
	MinTripMeters float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p GenParams) Validate() error {
	switch {
	case p.ExtentMeters <= 0:
		return fmt.Errorf("trace: ExtentMeters must be positive, got %v", p.ExtentMeters)
	case p.TripsPerHourPeak <= 0:
		return fmt.Errorf("trace: TripsPerHourPeak must be positive, got %d", p.TripsPerHourPeak)
	case p.UniformFrac < 0 || p.UniformFrac > 1:
		return fmt.Errorf("trace: UniformFrac must be in [0,1], got %v", p.UniformFrac)
	}
	return nil
}

// DefaultHotspots scatters hotspots of each kind deterministically inside
// the given area. The layout loosely mimics a monocentric city: business
// hotspots central, residential peripheral, leisure and transport mixed.
func DefaultHotspots(center geo.Point, extentMeters float64, seed int64) []Hotspot {
	rng := rand.New(rand.NewSource(seed))
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(center.Lat*math.Pi/180)
	place := func(radiusFrac float64) geo.Point {
		ang := rng.Float64() * 2 * math.Pi
		r := radiusFrac * extentMeters / 2 * (0.4 + 0.6*rng.Float64())
		return geo.Point{
			Lat: center.Lat + r*math.Sin(ang)/mLat,
			Lng: center.Lng + r*math.Cos(ang)/mLng,
		}
	}
	var hs []Hotspot
	add := func(kind HotspotKind, n int, radiusFrac, sigma float64) {
		for i := 0; i < n; i++ {
			hs = append(hs, Hotspot{
				Center:      place(radiusFrac),
				SigmaMeters: sigma * (0.7 + 0.6*rng.Float64()),
				Kind:        kind,
				Weight:      0.5 + rng.Float64(),
			})
		}
	}
	add(Business, 4, 0.35, extentMeters/18)
	add(Residential, 8, 0.95, extentMeters/14)
	add(Leisure, 4, 0.7, extentMeters/16)
	add(Transport, 2, 0.8, extentMeters/25)
	return hs
}

// workdayProfile and weekendProfile are hour-of-day demand multipliers
// relative to the busiest hour, shaped after the utilisation curves of
// Fig. 5(a): workdays peak at 8:00 and 17:00–19:00, weekends have a flatter
// curve peaking late morning.
var workdayProfile = [24]float64{
	0.10, 0.06, 0.04, 0.03, 0.04, 0.10, 0.35, 0.75,
	1.00, 0.85, 0.70, 0.72, 0.75, 0.70, 0.68, 0.72,
	0.80, 0.95, 0.98, 0.85, 0.65, 0.50, 0.35, 0.20,
}

var weekendProfile = [24]float64{
	0.15, 0.10, 0.06, 0.04, 0.04, 0.06, 0.15, 0.30,
	0.45, 0.55, 0.62, 0.65, 0.66, 0.64, 0.62, 0.63,
	0.66, 0.70, 0.72, 0.68, 0.60, 0.50, 0.40, 0.25,
}

// Profile returns the demand multiplier for the given day kind and hour.
func Profile(day DayKind, hour int) float64 {
	if hour < 0 || hour > 23 {
		return 0
	}
	if day == Weekend {
		return weekendProfile[hour]
	}
	return workdayProfile[hour]
}

// odMix returns the origin-kind distribution and, per origin kind, the
// destination-kind distribution for the given day kind and hour. The mixes
// encode commute structure: workday mornings flow residential→business,
// evenings business→residential, weekends favour leisure.
func odMix(day DayKind, hour int) (originW [numKinds]float64, destW [numKinds][numKinds]float64) {
	// Baseline: mild preference to leave from residential areas, arrive
	// anywhere.
	for o := HotspotKind(0); o < numKinds; o++ {
		originW[o] = 1
		for d := HotspotKind(0); d < numKinds; d++ {
			destW[o][d] = 1
		}
	}
	switch {
	case day == Workday && hour >= 6 && hour <= 10: // morning commute
		originW[Residential] = 5
		for o := HotspotKind(0); o < numKinds; o++ {
			destW[o][Business] = 6
			destW[o][Transport] = 2
		}
	case day == Workday && hour >= 16 && hour <= 20: // evening commute
		originW[Business] = 5
		for o := HotspotKind(0); o < numKinds; o++ {
			destW[o][Residential] = 6
			destW[o][Leisure] = 2
		}
	case day == Weekend && hour >= 9 && hour <= 21: // weekend outings
		originW[Residential] = 3
		for o := HotspotKind(0); o < numKinds; o++ {
			destW[o][Leisure] = 4
		}
	case hour >= 22 || hour <= 4: // night: leisure back home
		originW[Leisure] = 3
		for o := HotspotKind(0); o < numKinds; o++ {
			destW[o][Residential] = 4
		}
	}
	return originW, destW
}

// Generate produces a full-day synthetic dataset for the given day kind.
func Generate(day DayKind, params GenParams) (*Dataset, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Hotspots == nil {
		params.Hotspots = DefaultHotspots(params.Center, params.ExtentMeters, params.Seed)
	}
	minTrip := params.MinTripMeters
	if minTrip <= 0 {
		minTrip = 500
	}
	rng := rand.New(rand.NewSource(params.Seed))
	g := &generator{params: params, rng: rng, minTrip: minTrip}
	g.indexHotspots()

	ds := &Dataset{Day: day}
	var id int64
	for hour := 0; hour < 24; hour++ {
		n := int(math.Round(float64(params.TripsPerHourPeak) * Profile(day, hour)))
		origW, destW := odMix(day, hour)
		for i := 0; i < n; i++ {
			o, d := g.sampleOD(origW, destW)
			ds.Trips = append(ds.Trips, Trip{
				ID:        id,
				ReleaseAt: time.Duration(hour)*time.Hour + time.Duration(rng.Float64()*float64(time.Hour)),
				Origin:    o,
				Dest:      d,
			})
			id++
		}
	}
	sort.Slice(ds.Trips, func(i, j int) bool { return ds.Trips[i].ReleaseAt < ds.Trips[j].ReleaseAt })
	for i := range ds.Trips {
		ds.Trips[i].ID = int64(i) // re-ID in time order for readability
	}
	return ds, nil
}

// generator carries sampling state.
type generator struct {
	params  GenParams
	rng     *rand.Rand
	minTrip float64
	byKind  [numKinds][]Hotspot
	kindW   [numKinds]float64
}

func (g *generator) indexHotspots() {
	for _, h := range g.params.Hotspots {
		g.byKind[h.Kind] = append(g.byKind[h.Kind], h)
		g.kindW[h.Kind] += h.Weight
	}
}

// samplePoint draws a point near a hotspot of the given kind, falling back
// to uniform sampling when no hotspot of that kind exists.
func (g *generator) samplePoint(kind HotspotKind) geo.Point {
	hs := g.byKind[kind]
	if len(hs) == 0 || g.rng.Float64() < g.params.UniformFrac {
		return g.uniformPoint()
	}
	r := g.rng.Float64() * g.kindW[kind]
	var h Hotspot
	for _, cand := range hs {
		r -= cand.Weight
		h = cand
		if r <= 0 {
			break
		}
	}
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(h.Center.Lat*math.Pi/180)
	p := geo.Point{
		Lat: h.Center.Lat + g.rng.NormFloat64()*h.SigmaMeters/mLat,
		Lng: h.Center.Lng + g.rng.NormFloat64()*h.SigmaMeters/mLng,
	}
	return g.clamp(p)
}

func (g *generator) uniformPoint() geo.Point {
	c := g.params.Center
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(c.Lat*math.Pi/180)
	half := g.params.ExtentMeters / 2
	return geo.Point{
		Lat: c.Lat + (g.rng.Float64()*2-1)*half/mLat,
		Lng: c.Lng + (g.rng.Float64()*2-1)*half/mLng,
	}
}

func (g *generator) clamp(p geo.Point) geo.Point {
	c := g.params.Center
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(c.Lat*math.Pi/180)
	half := g.params.ExtentMeters / 2
	p.Lat = math.Max(c.Lat-half/mLat, math.Min(c.Lat+half/mLat, p.Lat))
	p.Lng = math.Max(c.Lng-half/mLng, math.Min(c.Lng+half/mLng, p.Lng))
	return p
}

func pickKind(w [numKinds]float64, rng *rand.Rand) HotspotKind {
	var total float64
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for k := HotspotKind(0); k < numKinds; k++ {
		r -= w[k]
		if r <= 0 {
			return k
		}
	}
	return numKinds - 1
}

// sampleOD draws an origin-destination pair respecting the hour's OD mix
// and the minimum trip length.
func (g *generator) sampleOD(origW [numKinds]float64, destW [numKinds][numKinds]float64) (o, d geo.Point) {
	for attempt := 0; ; attempt++ {
		ok := pickKind(origW, g.rng)
		dk := pickKind(destW[ok], g.rng)
		o = g.samplePoint(ok)
		d = g.samplePoint(dk)
		if geo.Equirect(o, d) >= g.minTrip || attempt >= 20 {
			return o, d
		}
	}
}
