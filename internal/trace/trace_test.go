package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

var testCenter = geo.Point{Lat: 30.6587, Lng: 104.0648}

func testParams(seed int64) GenParams {
	return GenParams{
		Center:           testCenter,
		ExtentMeters:     8000,
		TripsPerHourPeak: 300,
		UniformFrac:      0.1,
		Seed:             seed,
	}
}

func TestGenerateBasic(t *testing.T) {
	ds, err := Generate(Workday, testParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Trips) == 0 {
		t.Fatal("no trips generated")
	}
	if ds.Day != Workday {
		t.Fatalf("Day = %v", ds.Day)
	}
	// Sorted by release time, IDs sequential.
	for i := 1; i < len(ds.Trips); i++ {
		if ds.Trips[i].ReleaseAt < ds.Trips[i-1].ReleaseAt {
			t.Fatal("trips not sorted by release time")
		}
	}
	for i, tr := range ds.Trips {
		if tr.ID != int64(i) {
			t.Fatalf("trip %d has ID %d", i, tr.ID)
		}
		if tr.ReleaseAt < 0 || tr.ReleaseAt >= 24*time.Hour {
			t.Fatalf("trip release %v out of day", tr.ReleaseAt)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Workday, testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Workday, testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trips) != len(b.Trips) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Trips), len(b.Trips))
	}
	for i := range a.Trips {
		if a.Trips[i] != b.Trips[i] {
			t.Fatalf("trip %d differs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	a, _ := Generate(Workday, testParams(1))
	b, _ := Generate(Workday, testParams(2))
	same := 0
	n := len(a.Trips)
	if len(b.Trips) < n {
		n = len(b.Trips)
	}
	for i := 0; i < n; i++ {
		if a.Trips[i].Origin == b.Trips[i].Origin {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical origins")
	}
}

func TestGenerateDemandShape(t *testing.T) {
	ds, err := Generate(Workday, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.HourlyCounts()
	// Workday peak at 8:00 must dominate the small hours.
	if counts[8] <= counts[3]*3 {
		t.Fatalf("morning peak %d not >> 3am %d", counts[8], counts[3])
	}
	// Peak hour should be within rounding of TripsPerHourPeak.
	if counts[8] < 290 || counts[8] > 310 {
		t.Fatalf("peak hour count = %d, want ~300", counts[8])
	}
	we, err := Generate(Weekend, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	wc := we.HourlyCounts()
	// Weekend 10:00 demand sits below the workday 8:00 peak (the paper's
	// non-peak scenario has roughly half the requests of the peak one).
	if float64(wc[10]) > 0.8*float64(counts[8]) {
		t.Fatalf("weekend 10:00 = %d too close to workday peak %d", wc[10], counts[8])
	}
}

func TestGenerateTripsInsideArea(t *testing.T) {
	p := testParams(4)
	ds, err := Generate(Weekend, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trips {
		for _, pt := range []geo.Point{tr.Origin, tr.Dest} {
			if d := geo.Equirect(testCenter, pt); d > p.ExtentMeters*0.75 {
				// half-diagonal = extent/2 * sqrt(2) ≈ 0.71 * extent
				t.Fatalf("endpoint %v is %v m from center (extent %v)", pt, d, p.ExtentMeters)
			}
		}
	}
}

func TestGenerateMinTripLength(t *testing.T) {
	ds, err := Generate(Workday, testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for _, tr := range ds.Trips {
		if geo.Equirect(tr.Origin, tr.Dest) < 500 {
			short++
		}
	}
	// The generator rejects short trips with bounded retries, so a tiny
	// residue is acceptable but the bulk must respect the minimum.
	if frac := float64(short) / float64(len(ds.Trips)); frac > 0.02 {
		t.Fatalf("%.1f%% of trips under the minimum length", frac*100)
	}
}

func TestGenerateCommuteDirectionality(t *testing.T) {
	// Morning workday trips should, in aggregate, flow toward the city
	// center (business hotspots are central, residential peripheral).
	ds, err := Generate(Workday, testParams(6))
	if err != nil {
		t.Fatal(err)
	}
	var towardCenter, awayFromCenter int
	for _, tr := range ds.Between(7*time.Hour, 10*time.Hour) {
		od := geo.Equirect(tr.Origin, testCenter)
		dd := geo.Equirect(tr.Dest, testCenter)
		if dd < od {
			towardCenter++
		} else {
			awayFromCenter++
		}
	}
	if towardCenter <= awayFromCenter {
		t.Fatalf("morning commute not centripetal: %d toward vs %d away", towardCenter, awayFromCenter)
	}
}

func TestGenerateInvalidParams(t *testing.T) {
	bad := []GenParams{
		{Center: testCenter, ExtentMeters: 0, TripsPerHourPeak: 10},
		{Center: testCenter, ExtentMeters: 5000, TripsPerHourPeak: 0},
		{Center: testCenter, ExtentMeters: 5000, TripsPerHourPeak: 10, UniformFrac: 2},
	}
	for i, p := range bad {
		if _, err := Generate(Workday, p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBetween(t *testing.T) {
	ds, err := Generate(Workday, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	slice := ds.Between(8*time.Hour, 9*time.Hour)
	if len(slice) == 0 {
		t.Fatal("empty peak-hour slice")
	}
	for _, tr := range slice {
		if tr.ReleaseAt < 8*time.Hour || tr.ReleaseAt >= 9*time.Hour {
			t.Fatalf("trip at %v outside window", tr.ReleaseAt)
		}
	}
	if len(slice) != ds.HourlyCounts()[8] {
		t.Fatalf("Between count %d != hourly count %d", len(slice), ds.HourlyCounts()[8])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Generate(Weekend, GenParams{
		Center: testCenter, ExtentMeters: 5000, TripsPerHourPeak: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, Weekend)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trips) != len(ds.Trips) {
		t.Fatalf("round trip %d -> %d trips", len(ds.Trips), len(back.Trips))
	}
	for i := range ds.Trips {
		a, b := ds.Trips[i], back.Trips[i]
		if a.ID != b.ID {
			t.Fatalf("trip %d ID %d != %d", i, a.ID, b.ID)
		}
		if math.Abs(a.ReleaseAt.Seconds()-b.ReleaseAt.Seconds()) > 0.11 {
			t.Fatalf("trip %d release %v != %v", i, a.ReleaseAt, b.ReleaseAt)
		}
		if math.Abs(a.Origin.Lat-b.Origin.Lat) > 1e-5 || math.Abs(a.Dest.Lng-b.Dest.Lng) > 1e-5 {
			t.Fatalf("trip %d endpoints drifted", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":   "a,b,c,d,e,f\n",
		"bad id":       "trip_id,release_seconds,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\nx,1,2,3,4,5\n",
		"bad float":    "trip_id,release_seconds,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,abc,2,3,4,5\n",
		"negative rel": "trip_id,release_seconds,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,-5,2,3,4,5\n",
		"short row":    "trip_id,release_seconds,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,1,2\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), Workday); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUtilizationByHourShape(t *testing.T) {
	ds, err := Generate(Workday, testParams(10))
	if err != nil {
		t.Fatal(err)
	}
	cost := StraightLineCost(1.3, 15)
	util := ds.UtilizationByHour(100, cost, 2*time.Minute)
	for h, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("hour %d utilisation %v out of [0,1]", h, u)
		}
	}
	if util[8] <= util[3] {
		t.Fatalf("peak utilisation %v not above 3am %v", util[8], util[3])
	}
	if z := (&Dataset{}).UtilizationByHour(0, cost, 0); z[0] != 0 {
		t.Fatal("zero fleet should yield zero utilisation")
	}
}

func TestTravelTimeDistributionAndPercentiles(t *testing.T) {
	ds, err := Generate(Workday, testParams(11))
	if err != nil {
		t.Fatal(err)
	}
	times := ds.TravelTimeDistribution(StraightLineCost(1.3, 15))
	if len(times) != len(ds.Trips) {
		t.Fatalf("distribution size %d != trips %d", len(times), len(ds.Trips))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("distribution not sorted")
		}
	}
	p50 := Percentile(times, 50)
	p90 := Percentile(times, 90)
	if p90 < p50 {
		t.Fatalf("p90 %v < p50 %v", p90, p50)
	}
	if p0, first := Percentile(times, 0), times[0]; p0 != first {
		t.Fatalf("p0 = %v, want %v", p0, first)
	}
	if p100, last := Percentile(times, 100), times[len(times)-1]; p100 != last {
		t.Fatalf("p100 = %v, want %v", p100, last)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMeanTripMeters(t *testing.T) {
	if (&Dataset{}).MeanTripMeters() != 0 {
		t.Fatal("empty dataset mean != 0")
	}
	ds, err := Generate(Workday, testParams(12))
	if err != nil {
		t.Fatal(err)
	}
	m := ds.MeanTripMeters()
	if m < 500 || m > 8000 {
		t.Fatalf("mean trip length %v m implausible", m)
	}
}

func TestProfileBounds(t *testing.T) {
	for h := -2; h < 26; h++ {
		for _, day := range []DayKind{Workday, Weekend} {
			p := Profile(day, h)
			if h < 0 || h > 23 {
				if p != 0 {
					t.Fatalf("Profile(%v, %d) = %v, want 0", day, h, p)
				}
				continue
			}
			if p <= 0 || p > 1 {
				t.Fatalf("Profile(%v, %d) = %v out of (0,1]", day, h, p)
			}
		}
	}
}

func TestDayKindString(t *testing.T) {
	if Workday.String() != "workday" || Weekend.String() != "weekend" {
		t.Fatal("DayKind strings wrong")
	}
	if !strings.Contains(DayKind(9).String(), "9") {
		t.Fatal("unknown DayKind string")
	}
}

func TestHotspotKindString(t *testing.T) {
	for k, want := range map[HotspotKind]string{
		Residential: "residential", Business: "business",
		Leisure: "leisure", Transport: "transport",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func BenchmarkGenerateDay(b *testing.B) {
	p := testParams(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := Generate(Workday, p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestODMatrixBasics(t *testing.T) {
	ds, err := Generate(Workday, testParams(20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewODMatrix(ds, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != len(ds.Trips) {
		t.Fatalf("total = %d, want %d", m.Total, len(ds.Trips))
	}
	var o, d int
	for _, c := range m.OriginCounts() {
		o += c
	}
	for _, c := range m.DestCounts() {
		d += c
	}
	if o != m.Total || d != m.Total {
		t.Fatalf("marginals o=%d d=%d total=%d", o, d, m.Total)
	}
	// Hotspot demand must be clearly non-uniform.
	g := m.Gini()
	if g < 0.2 || g > 1 {
		t.Fatalf("Gini = %v, expected concentrated demand", g)
	}
}

func TestODMatrixErrors(t *testing.T) {
	if _, err := NewODMatrix(&Dataset{}, 4, 4); err == nil {
		t.Fatal("empty dataset accepted")
	}
	ds, _ := Generate(Workday, testParams(21))
	if _, err := NewODMatrix(ds, 0, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestSplitByTimeAndMerge(t *testing.T) {
	ds, err := Generate(Workday, testParams(22))
	if err != nil {
		t.Fatal(err)
	}
	before, after := ds.SplitByTime(12 * time.Hour)
	if len(before.Trips)+len(after.Trips) != len(ds.Trips) {
		t.Fatal("split lost trips")
	}
	for _, tr := range before.Trips {
		if tr.ReleaseAt >= 12*time.Hour {
			t.Fatal("late trip in before")
		}
	}
	for _, tr := range after.Trips {
		if tr.ReleaseAt < 12*time.Hour {
			t.Fatal("early trip in after")
		}
	}
	merged := Merge(Workday, before, after)
	if len(merged.Trips) != len(ds.Trips) {
		t.Fatal("merge lost trips")
	}
	for i := 1; i < len(merged.Trips); i++ {
		if merged.Trips[i].ReleaseAt < merged.Trips[i-1].ReleaseAt {
			t.Fatal("merge not sorted")
		}
		if merged.Trips[i].ID != int64(i) {
			t.Fatal("merge did not renumber")
		}
	}
}

func TestSample(t *testing.T) {
	ds, err := Generate(Workday, testParams(23))
	if err != nil {
		t.Fatal(err)
	}
	s3 := ds.Sample(3)
	want := (len(ds.Trips) + 2) / 3
	if len(s3.Trips) != want {
		t.Fatalf("sample size %d, want %d", len(s3.Trips), want)
	}
	if s0 := ds.Sample(0); len(s0.Trips) != len(ds.Trips) {
		t.Fatal("k<1 should keep everything")
	}
}
