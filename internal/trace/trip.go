// Package trace provides the taxi-trip dataset substrate standing in for
// the Didi GAIA Chengdu trace used by the paper (§V-A1): trip records, CSV
// serialisation, a deterministic hotspot-based synthetic generator with
// time-of-day demand curves, and the dataset statistics reported in Fig. 5.
//
// The paper's algorithms consume only (release time, origin, destination)
// tuples and aggregate origin→region transition statistics, so a
// hotspot-structured synthetic stream exercises the identical code paths.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// DayKind distinguishes the two scenario calendars of the evaluation.
type DayKind int

// Day kinds.
const (
	Workday DayKind = iota
	Weekend
)

// String implements fmt.Stringer.
func (d DayKind) String() string {
	switch d {
	case Workday:
		return "workday"
	case Weekend:
		return "weekend"
	default:
		return fmt.Sprintf("DayKind(%d)", int(d))
	}
}

// Trip is one historical taxi transaction: a ride request released at
// ReleaseAt (offset from the day's midnight) from Origin to Dest.
type Trip struct {
	ID        int64
	ReleaseAt time.Duration
	Origin    geo.Point
	Dest      geo.Point
}

// Hour returns the hour-of-day bucket of the trip's release time.
func (t Trip) Hour() int { return int(t.ReleaseAt / time.Hour) }

// Dataset is an ordered collection of trips for one day kind. Trips are
// sorted by release time by the generator and the reader preserves file
// order.
type Dataset struct {
	Day   DayKind
	Trips []Trip
}

// Between returns the trips released in [from, to).
func (d *Dataset) Between(from, to time.Duration) []Trip {
	var out []Trip
	for _, t := range d.Trips {
		if t.ReleaseAt >= from && t.ReleaseAt < to {
			out = append(out, t)
		}
	}
	return out
}

// HourlyCounts returns the number of trips released in each hour of day.
func (d *Dataset) HourlyCounts() [24]int {
	var counts [24]int
	for _, t := range d.Trips {
		if h := t.Hour(); h >= 0 && h < 24 {
			counts[h]++
		}
	}
	return counts
}

// csvHeader is the column layout used by WriteCSV/ReadCSV, mirroring the
// schema of the GAIA transactions (transaction id, release time, pick-up
// lat/lng, drop-off lat/lng).
var csvHeader = []string{"trip_id", "release_seconds", "pickup_lat", "pickup_lng", "dropoff_lat", "dropoff_lng"}

// WriteCSV serialises the dataset's trips to w with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, t := range d.Trips {
		rec := []string{
			strconv.FormatInt(t.ID, 10),
			strconv.FormatFloat(t.ReleaseAt.Seconds(), 'f', 1, 64),
			strconv.FormatFloat(t.Origin.Lat, 'f', 6, 64),
			strconv.FormatFloat(t.Origin.Lng, 'f', 6, 64),
			strconv.FormatFloat(t.Dest.Lat, 'f', 6, 64),
			strconv.FormatFloat(t.Dest.Lng, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader, day DayKind) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	ds := &Dataset{Day: day}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		trip, err := parseTrip(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ds.Trips = append(ds.Trips, trip)
	}
	return ds, nil
}

func parseTrip(rec []string) (Trip, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return Trip{}, fmt.Errorf("trip_id: %w", err)
	}
	fields := make([]float64, 5)
	for i := 0; i < 5; i++ {
		f, err := strconv.ParseFloat(rec[i+1], 64)
		if err != nil {
			return Trip{}, fmt.Errorf("column %s: %w", csvHeader[i+1], err)
		}
		fields[i] = f
	}
	if fields[0] < 0 {
		return Trip{}, fmt.Errorf("negative release time %v", fields[0])
	}
	return Trip{
		ID:        id,
		ReleaseAt: time.Duration(fields[0] * float64(time.Second)),
		Origin:    geo.Point{Lat: fields[1], Lng: fields[2]},
		Dest:      geo.Point{Lat: fields[3], Lng: fields[4]},
	}, nil
}
