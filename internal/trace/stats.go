package trace

import (
	"math"
	"sort"
	"time"

	"repro/internal/geo"
)

// CostFunc estimates the travel time of a trip. The harness plugs in a
// road-network router; the default straight-line estimator multiplies the
// crow-flies distance by a detour factor and divides by the fleet speed.
type CostFunc func(origin, dest geo.Point) time.Duration

// StraightLineCost returns a CostFunc that scales the straight-line
// distance by detourFactor (road networks are typically 1.2-1.4x longer
// than the crow flies) at the given speed in km/h.
func StraightLineCost(detourFactor, speedKmh float64) CostFunc {
	mps := speedKmh * 1000 / 3600
	return func(o, d geo.Point) time.Duration {
		meters := geo.Equirect(o, d) * detourFactor
		return time.Duration(meters / mps * float64(time.Second))
	}
}

// UtilizationByHour reproduces Fig. 5(a): the fraction of fleet capacity
// busy serving trips in each hour, assuming fleetSize taxis each available
// the full hour. Busy time per trip is its estimated travel time plus a
// fixed pickup overhead.
func (d *Dataset) UtilizationByHour(fleetSize int, cost CostFunc, pickupOverhead time.Duration) [24]float64 {
	var busy [24]time.Duration
	for _, t := range d.Trips {
		h := t.Hour()
		if h < 0 || h > 23 {
			continue
		}
		busy[h] += cost(t.Origin, t.Dest) + pickupOverhead
	}
	var util [24]float64
	capacity := time.Duration(fleetSize) * time.Hour
	if capacity <= 0 {
		return util
	}
	for h := range util {
		util[h] = math.Min(1, float64(busy[h])/float64(capacity))
	}
	return util
}

// TravelTimeDistribution reproduces Fig. 5(b): it returns the sorted trip
// travel times, from which Percentile can answer e.g. the paper's reported
// 50th (15 min) and 90th (30 min) percentiles.
func (d *Dataset) TravelTimeDistribution(cost CostFunc) []time.Duration {
	times := make([]time.Duration, 0, len(d.Trips))
	for _, t := range d.Trips {
		times = append(times, cost(t.Origin, t.Dest))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// Percentile returns the p-th percentile (0-100) of sorted durations using
// nearest-rank. It returns 0 for an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// MeanTripMeters returns the average straight-line trip length, a quick
// sanity statistic for generated datasets.
func (d *Dataset) MeanTripMeters() float64 {
	if len(d.Trips) == 0 {
		return 0
	}
	var sum float64
	for _, t := range d.Trips {
		sum += geo.Equirect(t.Origin, t.Dest)
	}
	return sum / float64(len(d.Trips))
}
