package trace

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
)

func shapeBaseParams() GenParams {
	return GenParams{
		Center:           geo.Point{Lat: 30.6, Lng: 104.0},
		ExtentMeters:     5000,
		TripsPerHourPeak: 200,
		UniformFrac:      0.15,
		MinTripMeters:    250,
		Seed:             11,
	}
}

// The surge's defining invariant: the window's trip rate is at least
// Multiplier times the base day's rate there, and the day outside the
// window is byte-identical to the un-surged base.
func TestGenerateSurgeInvariants(t *testing.T) {
	base := shapeBaseParams()
	sp := SurgeParams{
		Venue:       base.Center,
		SigmaMeters: 250,
		Start:       8*time.Hour + 15*time.Minute,
		End:         8*time.Hour + 45*time.Minute,
		Multiplier:  3,
		Seed:        42,
	}
	plain, err := Generate(Workday, base)
	if err != nil {
		t.Fatal(err)
	}
	surged, err := GenerateSurge(Workday, base, sp)
	if err != nil {
		t.Fatal(err)
	}
	baseWin := len(plain.Between(sp.Start, sp.End))
	surgeWin := len(surged.Between(sp.Start, sp.End))
	if float64(surgeWin) < sp.Multiplier*float64(baseWin) {
		t.Fatalf("surge window has %d trips, want >= %v x base %d", surgeWin, sp.Multiplier, baseWin)
	}
	if got, want := len(surged.Trips)-len(plain.Trips), surgeWin-baseWin; got != want {
		t.Fatalf("surge injected %d trips overall but %d in the window — it leaked outside [Start, End)", got, want)
	}
	// Every injected trip's origin should hug the venue: with sigma 250 m
	// a 4-sigma box holds essentially all of them.
	near := 0
	for _, tr := range surged.Between(sp.Start, sp.End) {
		if geo.Equirect(tr.Origin, sp.Venue) <= 4*sp.SigmaMeters {
			near++
		}
	}
	if injected := surgeWin - baseWin; near < injected {
		t.Fatalf("only %d surge-window origins within 4 sigma of the venue, want >= %d injected", near, injected)
	}
}

// The hotspot's defining invariant: at least round(Frac x N) origins lie
// inside the disc, destinations untouched.
func TestGenerateHotspotInvariants(t *testing.T) {
	base := shapeBaseParams()
	hp := HotspotShapeParams{Center: base.Center, RadiusMeters: 400, Frac: 0.6, Seed: 43}
	plain, err := Generate(Workday, base)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := GenerateHotspot(Workday, base, hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.Trips) != len(plain.Trips) {
		t.Fatalf("hotspot changed the trip count: %d vs %d", len(hot.Trips), len(plain.Trips))
	}
	in := 0
	for i, tr := range hot.Trips {
		if geo.Equirect(tr.Origin, hp.Center) <= hp.RadiusMeters {
			in++
		}
		if tr.Dest != plain.Trips[i].Dest || tr.ReleaseAt != plain.Trips[i].ReleaseAt {
			t.Fatalf("trip %d: hotspot overlay touched dest or release time", i)
		}
	}
	want := int(hp.Frac * float64(len(hot.Trips)))
	if in < want {
		t.Fatalf("%d origins inside the disc, want >= %d (Frac=%v of %d)", in, want, hp.Frac, len(hot.Trips))
	}
}

// Same seed, same bytes: both shape generators must be deterministic
// functions of their parameters.
func TestShapesDeterministic(t *testing.T) {
	base := shapeBaseParams()
	sp := SurgeParams{Venue: base.Center, Start: 8 * time.Hour, End: 9 * time.Hour, Multiplier: 2, Seed: 5}
	hp := HotspotShapeParams{Center: base.Center, RadiusMeters: 500, Frac: 0.4, Seed: 6}
	s1, err := GenerateSurge(Workday, base, sp)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateSurge(Workday, base, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("GenerateSurge is not deterministic for a fixed seed")
	}
	h1, err := GenerateHotspot(Workday, base, hp)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := GenerateHotspot(Workday, base, hp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("GenerateHotspot is not deterministic for a fixed seed")
	}
}

func TestShapeParamValidation(t *testing.T) {
	base := shapeBaseParams()
	if _, err := GenerateSurge(Workday, base, SurgeParams{Start: time.Hour, End: time.Hour, Multiplier: 2}); err == nil {
		t.Fatal("empty surge window accepted")
	}
	if _, err := GenerateSurge(Workday, base, SurgeParams{Start: 0, End: time.Hour, Multiplier: 1}); err == nil {
		t.Fatal("multiplier 1 accepted")
	}
	if _, err := GenerateHotspot(Workday, base, HotspotShapeParams{RadiusMeters: 0, Frac: 0.5}); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := GenerateHotspot(Workday, base, HotspotShapeParams{RadiusMeters: 100, Frac: 1.5}); err == nil {
		t.Fatal("frac > 1 accepted")
	}
}
