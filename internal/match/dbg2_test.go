package match

import (
	"fmt"
	"testing"

	"repro/internal/fleet"
)

// DebugCandidateStages exposes stage counts for diagnosis.
func (e *Engine) DebugCandidateStages(req *fleet.Request, now float64) (inDisc, cluster, empty, final int) {
	radius := e.searchRadius(req, now)
	parts := e.pt.PartitionsNear(e.spx, req.OriginPt, radius)
	seen := map[int64]bool{}
	for _, p := range parts {
		for _, entry := range e.pindex.Taxis(p) {
			seen[entry.TaxiID] = true
		}
	}
	inDisc = len(seen)
	if cid, ok := e.clusters.Best(req.MobilityVector()); ok {
		cluster = len(e.clusters.Taxis(cid))
	}
	e.mu.RLock()
	for id := range seen {
		if t, ok := e.taxis[id]; ok && t.Empty() {
			empty++
		}
	}
	e.mu.RUnlock()
	final = len(e.CandidateTaxis(req, now))
	return
}

func TestDebugStages(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	// 25 taxis spread around
	for i := int64(1); i <= 25; i++ {
		f := 0.1 + 0.8*float64(i%5)/5
		g := 0.1 + 0.8*float64(i/5)/5
		env.e.AddTaxi(fleet.NewTaxi(env.g, i, 3, env.vertexNear(t, f, g)), now)
	}
	req := env.request(1, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.9, 0.9), now, 1.3)
	a, b, c, d := env.e.DebugCandidateStages(req, now)
	fmt.Println("inDisc:", a, "cluster:", b, "empty:", c, "final:", d)
}
