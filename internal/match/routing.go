package match

import (
	"math"

	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// pairKey packs two int32-sized IDs into one cache key.
func pairKey(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// PartitionFilter implements Alg. 2: given two consecutive event vertices,
// retain the partitions that satisfy both the travel-direction rule
// (cos θ ≥ λ between the landmark vector ℓ_z→ℓ_i and ℓ_z→ℓ_{z+1}) and the
// travel-cost rule (cost(ℓ_z,ℓ_i)+cost(ℓ_i,ℓ_{z+1}) ≤ (1+ε)·cost(ℓ_z,ℓ_{z+1})).
// The endpoints' own partitions are always retained. Results are memoised
// per partition pair.
func (e *Engine) PartitionFilter(sz, sz1 roadnet.VertexID) []partition.ID {
	pa := e.pt.PartitionOf(sz)
	pb := e.pt.PartitionOf(sz1)
	key := pairKey(int32(pa), int32(pb))
	e.filterMu.RLock()
	if cached, ok := e.filterCache[key]; ok {
		e.filterMu.RUnlock()
		return cached
	}
	e.filterMu.RUnlock()

	direct := e.pt.LandmarkCost(pa, pb)
	vz := e.pt.LandmarkVector(pa, pb)
	budget := (1 + e.cfg.Epsilon) * direct
	out := []partition.ID{pa}
	if pb != pa {
		out = append(out, pb)
	}
	for p := 0; p < e.pt.NumPartitions(); p++ {
		pi := partition.ID(p)
		if pi == pa || pi == pb {
			continue
		}
		// Travel-cost rule first: it prunes most partitions and the cost
		// table lookup is cheaper than the vector math.
		through := e.pt.LandmarkCost(pa, pi) + e.pt.LandmarkCost(pi, pb)
		if math.IsInf(through, 1) || through > budget {
			continue
		}
		// Travel-direction rule. Degenerate same-partition pairs
		// (direct == 0) have no defined direction; the cost rule alone
		// governs them.
		if direct > 0 {
			vi := e.pt.LandmarkVector(pa, pi)
			if geo.CosineSimilarity(vi, vz) < e.cfg.Lambda {
				continue
			}
		}
		out = append(out, pi)
	}
	e.filterMu.Lock()
	if len(e.filterCache) > 1<<16 {
		e.filterCache = make(map[uint64][]partition.ID)
	}
	e.filterCache[key] = out
	e.filterMu.Unlock()
	return out
}

// allowedSet builds a vertex predicate for the given partitions.
func (e *Engine) allowedSet(parts []partition.ID) map[partition.ID]bool {
	m := make(map[partition.ID]bool, len(parts))
	for _, p := range parts {
		m[p] = true
	}
	return m
}

// BasicLegCost returns the travel cost of a basic-routing leg (Alg. 3).
// The paper's evaluation assumes O(1) shortest-path queries backed by a
// precomputed cache (§V-A4), which makes basic-routing legs exactly the
// cached shortest paths; the partition-filtered Dijkstra (the production
// fast path the paper describes, FilteredLegCost below) exists for the
// routing-speed ablation, because at the harness's coarse partition
// granularity its detours would otherwise leak into matching quality in a
// way the paper's cached evaluation never exhibits.
func (e *Engine) BasicLegCost(u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	c := e.router.Cost(u, v)
	return c, !math.IsInf(c, 1)
}

// BasicLegPath materialises the basic-routing leg path between u and v.
func (e *Engine) BasicLegPath(u, v roadnet.VertexID) ([]roadnet.VertexID, float64, bool) {
	if u == v {
		return []roadnet.VertexID{u}, 0, true
	}
	p := e.router.Path(u, v)
	if p == nil {
		return nil, 0, false
	}
	return p, e.router.Cost(u, v), true
}

// FilteredLegCost returns the travel cost of the partition-filtered leg:
// a shortest path restricted to the Alg. 2 subgraph, falling back to the
// unrestricted shortest path when the filtered subgraph disconnects the
// pair (possible with one-way streets). Costs are memoised: on a static
// graph they are a pure function of the endpoints.
func (e *Engine) FilteredLegCost(u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	key := pairKey(int32(u), int32(v))
	e.legMu.RLock()
	if c, ok := e.legCache[key]; ok {
		e.legMu.RUnlock()
		return c, !math.IsInf(c, 1)
	}
	e.legMu.RUnlock()
	cost, _, ok := e.filteredLeg(u, v)
	if !ok {
		cost = math.Inf(1)
	}
	e.legMu.Lock()
	if len(e.legCache) > 1<<20 {
		e.legCache = make(map[uint64]float64)
	}
	e.legCache[key] = cost
	e.legMu.Unlock()
	return cost, ok
}

// FilteredLegPath materialises the partition-filtered leg path.
func (e *Engine) FilteredLegPath(u, v roadnet.VertexID) ([]roadnet.VertexID, float64, bool) {
	cost, path, ok := e.filteredLeg(u, v)
	return path, cost, ok
}

func (e *Engine) filteredLeg(u, v roadnet.VertexID) (float64, []roadnet.VertexID, bool) {
	if u == v {
		return 0, []roadnet.VertexID{u}, true
	}
	allowed := e.allowedSet(e.PartitionFilter(u, v))
	cost, path, ok := e.g.RestrictedShortestPath(u, v, func(x roadnet.VertexID) bool {
		return allowed[e.pt.PartitionOf(x)]
	})
	if ok {
		return cost, path, true
	}
	// The filtered subgraph can disconnect u from v on one-way grids; the
	// paper would discard the instance, we fall back to the full graph so
	// a feasible match is not lost to an indexing artefact.
	path = e.router.Path(u, v)
	if path == nil {
		return 0, nil, false
	}
	return e.router.Cost(u, v), path, true
}

// BuildBasicLegs materialises the leg paths for a whole schedule starting
// at start; legs[i] ends at events[i].Vertex(). It returns ok=false when
// any leg is unroutable.
func (e *Engine) BuildBasicLegs(start roadnet.VertexID, vertices []roadnet.VertexID) ([][]roadnet.VertexID, bool) {
	legs := make([][]roadnet.VertexID, len(vertices))
	at := start
	for i, v := range vertices {
		path, _, ok := e.BasicLegPath(at, v)
		if !ok {
			return nil, false
		}
		legs[i] = path
		at = v
	}
	return legs, true
}
