package match

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// lbWorkload is seededWorkload with a flexibility mix skewed tight
// (rho 1.05–1.6): tight requests put candidate taxis past the slack
// budget, which is what the landmark screen exists to detect early.
func lbWorkload(env *testEnv, n int, seed int64) []*fleet.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]*fleet.Request, 0, n)
	nv := env.g.NumVertices()
	for len(reqs) < n {
		o := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		rho := 1.05 + rng.Float64()*0.55
		if o == d || math.IsInf(env.e.Router().Cost(o, d), 1) {
			continue
		}
		release := float64(len(reqs)) * 4
		reqs = append(reqs, env.request(int64(len(reqs)+1), o, d, release, rho))
	}
	return reqs
}

// runLBWorkload dispatches and commits lbWorkload on a fresh engine with
// the oracle on or off, returning the outcome trace plus engine stats.
func runLBWorkload(t *testing.T, disable bool, parallelism int) ([]dispatchTrace, EngineStats) {
	t.Helper()
	env := newTestEnv(t, func(c *Config) {
		c.DisableLandmarkLB = disable
		c.Parallelism = parallelism
	})
	placeFleet(env, 10, 42)
	reqs := lbWorkload(env, 80, 11)
	out := make([]dispatchTrace, len(reqs))
	for i, r := range reqs {
		now := r.ReleaseAt.Seconds()
		a, ok := env.e.Dispatch(r, now, false)
		out[i] = dispatchTrace{served: ok}
		if !ok {
			continue
		}
		out[i].taxiID = a.Taxi.ID
		out[i].detour = math.Float64bits(a.DetourMeters)
		out[i].events = a.Events
		if err := env.e.Commit(a, now); err != nil {
			t.Fatalf("request %d: commit: %v", r.ID, err)
		}
	}
	return out, env.e.Stats()
}

// TestDispatchLandmarkLBLossless is the headline guarantee of the oracle:
// dispatch with the screen enabled is bit-identical to exact-only
// evaluation — same served set, same winning taxis, same detours — at
// every parallelism level, while actually pruning work.
func TestDispatchLandmarkLBLossless(t *testing.T) {
	base, baseStats := runLBWorkload(t, true, 1)
	if baseStats.LBEvaluated != 0 || baseStats.LBPruned != 0 {
		t.Fatalf("disabled oracle still screened: %+v", baseStats)
	}
	for _, par := range []int{1, 4} {
		got, st := runLBWorkload(t, false, par)
		if st.LBEvaluated == 0 {
			t.Fatalf("par=%d: oracle enabled but screened nothing", par)
		}
		if st.LBPruned == 0 {
			t.Fatalf("par=%d: screen pruned nothing on a tight workload; test is vacuous", par)
		}
		served := 0
		for i := range base {
			if base[i].served != got[i].served {
				t.Fatalf("par=%d req %d: served %v with oracle, %v without", par, i, got[i].served, base[i].served)
			}
			if !base[i].served {
				continue
			}
			served++
			if base[i].taxiID != got[i].taxiID || base[i].detour != got[i].detour {
				t.Fatalf("par=%d req %d: assignment differs (taxi %d/%d, detour bits %x/%x)",
					par, i, got[i].taxiID, base[i].taxiID, got[i].detour, base[i].detour)
			}
			if len(base[i].events) != len(got[i].events) {
				t.Fatalf("par=%d req %d: schedule shape differs", par, i)
			}
		}
		if served == 0 {
			t.Fatal("workload served nothing; test is vacuous")
		}
	}
}

// TestLBScreenNeverPrunesFeasible checks the screen's contract directly on
// random (taxi, request) pairs: whenever screenCandidateLB prunes, exact
// insertion enumeration must also find no feasible schedule. The reverse
// direction (screen passes, exact infeasible) is allowed — the screen is a
// lower bound, not an oracle of feasibility.
func TestLBScreenNeverPrunesFeasible(t *testing.T) {
	env := newTestEnv(t, nil)
	if env.e.LandmarkOracle() == nil {
		t.Fatal("oracle not built by default")
	}
	rng := rand.New(rand.NewSource(9))
	nv := env.g.NumVertices()
	speed := env.e.Config().SpeedMps
	pruned, checked := 0, 0
	for i := 0; i < 400; i++ {
		o := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		if o == d || math.IsInf(env.e.Router().Cost(o, d), 1) {
			continue
		}
		rho := 1.02 + rng.Float64()*0.4
		req := env.request(int64(i+1), o, d, 0, rho)
		tx := fleet.NewTaxi(env.g, int64(i+1), 3, roadnet.VertexID(rng.Intn(nv)))
		params := tx.EvalParamsAt(0, speed)
		checked++
		if !env.e.screenCandidateLB(req, params) {
			continue
		}
		pruned++
		if _, _, ok := fleet.BestInsertion(tx.Schedule(), req, env.e.BasicLegCost, params, false); ok {
			t.Fatalf("screen pruned a feasible pair: req %d (o=%d d=%d rho=%.3f) taxi at %d",
				req.ID, o, d, rho, tx.At())
		}
	}
	if checked == 0 || pruned == 0 {
		t.Fatalf("vacuous run: checked %d pairs, pruned %d", checked, pruned)
	}
}

// TestLBInstruments asserts the oracle's observability surface: the
// evaluated/pruned counters, the prune-ratio gauge, and the estimate
// latency histogram all move on a registry-instrumented engine.
func TestLBInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestEnv(t, func(c *Config) { c.Metrics = reg })
	placeFleet(env, 10, 42)
	for _, r := range lbWorkload(env, 80, 11) {
		now := r.ReleaseAt.Seconds()
		if a, ok := env.e.Dispatch(r, now, false); ok {
			if err := env.e.Commit(a, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := reg.Snapshot()
	ev := snap.Counters["mtshare_match_lb_evaluated_total"]
	pr := snap.Counters["mtshare_match_lb_pruned_total"]
	if ev <= 0 {
		t.Fatalf("lb_evaluated_total = %d, want > 0", ev)
	}
	if pr <= 0 {
		t.Fatalf("lb_pruned_total = %d, want > 0", pr)
	}
	if pr > ev {
		t.Fatalf("pruned %d exceeds evaluated %d", pr, ev)
	}
	ratio, ok := snap.Gauges["mtshare_match_lb_prune_ratio"]
	if !ok {
		t.Fatal("prune-ratio gauge not registered")
	}
	if want := float64(pr) / float64(ev); ratio != want {
		t.Fatalf("prune ratio gauge = %v, want %v", ratio, want)
	}
	h, ok := snap.Histograms["mtshare_match_lb_estimate_seconds"]
	if !ok {
		t.Fatal("estimate histogram not registered")
	}
	if h.Count != ev {
		t.Fatalf("estimate histogram count %d != evaluated %d", h.Count, ev)
	}
	st := env.e.Stats()
	if st.LBEvaluated != ev || st.LBPruned != pr {
		t.Fatalf("EngineStats (%d, %d) disagrees with registry (%d, %d)",
			st.LBEvaluated, st.LBPruned, ev, pr)
	}
}

// TestDisableLandmarkLBKnob pins the config knob: disabling skips oracle
// construction entirely and every dispatch path still works.
func TestDisableLandmarkLBKnob(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.DisableLandmarkLB = true })
	if env.e.LandmarkOracle() != nil {
		t.Fatal("oracle built despite DisableLandmarkLB")
	}
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	a, ok := env.e.Dispatch(req, 0, false)
	if !ok {
		t.Fatal("dispatch failed with oracle disabled")
	}
	if err := env.e.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDispatchLandmarkLB measures one Dispatch call on the saturated
// 10k-vertex city with the landmark screen on and off. The screened
// variant evaluates the same candidate set but short-circuits hopeless
// ones before insertion enumeration; the oracle=off rows are the exact
// baseline the gain is measured against.
func BenchmarkDispatchLandmarkLB(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"oracle=on", false}, {"oracle=off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			g, spx, pt := bigWorld(b)
			cfg := DefaultConfig()
			cfg.SearchRangeMeters = 6000
			cfg.RouterCacheTrees = 4096
			cfg.CH = bigWorldCH(b)
			cfg.DisableLandmarkLB = tc.disable
			e, err := NewEngine(pt, spx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			env := &testEnv{g: g, spx: spx, pt: pt, e: e}
			placeFleet(env, 400, 42)
			preload := seededWorkload(env, 400, 7)
			var now float64
			for _, r := range preload {
				now = r.ReleaseAt.Seconds()
				if a, ok := e.Dispatch(r, now, false); ok {
					if err := e.Commit(a, now); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Tight probes (rho 1.15): the regime where screening pays.
			probeRNG := rand.New(rand.NewSource(99))
			nv := g.NumVertices()
			probes := make([]*fleet.Request, 0, 128)
			for len(probes) < cap(probes) {
				o := roadnet.VertexID(probeRNG.Intn(nv))
				d := roadnet.VertexID(probeRNG.Intn(nv))
				if o == d || math.IsInf(e.Router().Cost(o, d), 1) {
					continue
				}
				probes = append(probes, env.request(int64(10000+len(probes)), o, d, now, 1.15))
			}
			s0 := e.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Dispatch(probes[i%len(probes)], now, false)
			}
			b.StopTimer()
			s1 := e.Stats()
			n := float64(b.N)
			b.ReportMetric((float64(s1.SchedulingNanos-s0.SchedulingNanos))/n, "sched-ns/op")
			if ev := s1.LBEvaluated - s0.LBEvaluated; ev > 0 {
				b.ReportMetric(float64(s1.LBPruned-s0.LBPruned)/float64(ev), "prune-ratio")
			}
		})
	}
}
