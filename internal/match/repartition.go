package match

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/partition"
)

// Repartition swaps the engine onto a new map partitioning — the paper's
// periodic re-execution of bipartite map partitioning when enough new
// trip data has accumulated (§IV-B1: "the bipartite map partitioning
// could be periodically executed with a relatively long interval...
// once the map partitions are changed, the corresponding landmarks and
// the landmark graph should also be accordingly updated").
//
// The partition taxi index is rebuilt from every registered taxi's
// current plan, the routing caches tied to the old partition geometry are
// dropped, and the mobility clusters (which are partition-independent)
// are kept. The new partitioning must cover the same road graph.
func (e *Engine) Repartition(pt *partition.Partitioning, nowSeconds float64) error {
	if pt.Graph() != e.g {
		return fmt.Errorf("match: new partitioning covers a different graph")
	}
	e.mu.Lock()
	taxis := make([]int64, 0, len(e.taxis))
	for id := range e.taxis {
		taxis = append(taxis, id)
	}
	e.mu.Unlock()

	// Swap geometry-dependent state under the cache locks.
	e.filterMu.Lock()
	e.pt = pt
	e.filterCache = make(map[uint64][]partition.ID)
	e.filterMu.Unlock()
	e.legMu.Lock()
	e.legCache = make(map[uint64]float64)
	e.legMu.Unlock()

	e.pindex = index.NewPartitionIndex(pt, e.cfg.HorizonSeconds)
	e.rawRouter.Warm(pt.Landmarks())

	// Reindex the fleet onto the new partitions.
	for _, id := range taxis {
		if t, ok := e.Taxi(id); ok {
			e.ReindexTaxi(t, nowSeconds)
		}
	}
	return nil
}
