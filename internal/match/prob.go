package match

import (
	"math"
	"sort"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// psiFloor keeps vertex weights finite where the transition mass toward
// the destination set is zero (the paper requires ψ_c > 0).
const psiFloor = 0.05

// destinationSet returns P_d for Alg. 4 step 1: the partitions whose
// direction from the given source partition's landmark is similar to the
// taxi's travel direction (cos θ ≥ λ).
func (e *Engine) destinationSet(from partition.ID, taxiVec geo.MobilityVector) []partition.ID {
	var out []partition.ID
	for p := 0; p < e.pt.NumPartitions(); p++ {
		pa := partition.ID(p)
		if pa == from {
			continue
		}
		if geo.CosineSimilarity(e.pt.LandmarkVector(from, pa), taxiVec) >= e.cfg.Lambda {
			out = append(out, pa)
		}
	}
	return out
}

// suitableProb returns π_i: the expected mass of suitable offline requests
// inside partition pi, i.e. the summed transition probability of pi's
// vertices toward the destination set. Using the partition-mean transition
// vector times the member count equals the paper's per-vertex sum.
func (e *Engine) suitableProb(pi partition.ID, dest []partition.ID) float64 {
	tv := e.pt.PartitionTransitionVector(pi)
	var mass float64
	for _, pd := range dest {
		mass += float64(tv[pd])
	}
	return mass * float64(len(e.pt.Vertices(pi)))
}

// psi returns ψ_c for a vertex: its transition mass toward the destination
// set of its own partition (Alg. 4 step 3).
func (e *Engine) psi(v roadnet.VertexID, destByPart map[partition.ID][]partition.ID) float64 {
	p := e.pt.PartitionOf(v)
	tv := e.pt.TransitionVector(v)
	var mass float64
	for _, pd := range destByPart[p] {
		mass += float64(tv[pd])
	}
	return mass
}

// partitionPaths enumerates simple paths from pa to pb over the landmark
// graph restricted to the filtered partition set, scored by accumulated
// π weight, and returns the best few (Alg. 4 step 2's "enumerate all
// possible paths" with a bounded search for large filtered sets).
func (e *Engine) partitionPaths(pa, pb partition.ID, filtered []partition.ID, pi map[partition.ID]float64, limit int) [][]partition.ID {
	inSet := make(map[partition.ID]bool, len(filtered))
	for _, p := range filtered {
		inSet[p] = true
	}
	type scored struct {
		path   []partition.ID
		weight float64
	}
	var found []scored
	const maxFound = 64
	const maxExpansions = 4096
	expansions := 0

	var cur []partition.ID
	onPath := make(map[partition.ID]bool)
	var dfs func(p partition.ID, w float64)
	dfs = func(p partition.ID, w float64) {
		if expansions >= maxExpansions || len(found) >= maxFound {
			return
		}
		expansions++
		cur = append(cur, p)
		onPath[p] = true
		if p == pb {
			path := make([]partition.ID, len(cur))
			copy(path, cur)
			found = append(found, scored{path: path, weight: w})
		} else {
			for _, q := range e.pt.Adjacent(p) {
				if inSet[q] && !onPath[q] {
					dfs(q, w+pi[q])
				}
			}
		}
		delete(onPath, p)
		cur = cur[:len(cur)-1]
	}
	dfs(pa, pi[pa])
	sort.SliceStable(found, func(i, j int) bool { return found[i].weight > found[j].weight })
	if len(found) > limit {
		found = found[:limit]
	}
	out := make([][]partition.ID, len(found))
	for i, f := range found {
		out[i] = f.path
	}
	return out
}

// ProbabilisticLeg computes one route leg under probabilistic routing
// (Alg. 4): among the best-scoring partition paths, the first whose
// fine-grained route (vertex-weighted shortest path favouring high-ψ
// vertices) keeps the travel cost within maxMeters. It falls back to the
// basic-routing leg when no candidate qualifies and the basic leg does.
// ok is false when the leg cannot be routed within maxMeters at all.
func (e *Engine) ProbabilisticLeg(u, v roadnet.VertexID, taxiVec geo.MobilityVector, maxMeters float64) ([]roadnet.VertexID, float64, bool) {
	if u == v {
		return []roadnet.VertexID{u}, 0, true
	}
	filtered := e.PartitionFilter(u, v)
	// Step 1: per-partition probability of meeting suitable requests.
	destByPart := make(map[partition.ID][]partition.ID, len(filtered))
	pi := make(map[partition.ID]float64, len(filtered))
	for _, p := range filtered {
		destByPart[p] = e.destinationSet(p, taxiVec)
		pi[p] = e.suitableProb(p, destByPart[p])
	}
	pa := e.pt.PartitionOf(u)
	pb := e.pt.PartitionOf(v)
	// Step 2: candidate partition paths by accumulated probability.
	cands := e.partitionPaths(pa, pb, filtered, pi, e.cfg.MaxProbAttempts)
	meanEdge := e.meanEdgeCost()
	for _, hp := range cands {
		allowed := e.allowedSet(hp)
		weight := func(x roadnet.VertexID) float64 {
			return 0.5 * meanEdge / (e.psi(x, destByPart) + psiFloor)
		}
		_, path, ok := e.g.WeightedShortestPath(u, v, func(x roadnet.VertexID) bool {
			return allowed[e.pt.PartitionOf(x)]
		}, weight)
		if !ok {
			continue
		}
		cost, err := e.g.PathCost(path)
		if err != nil {
			continue
		}
		// Step 3 validity: the detoured leg must not blow the caller's
		// deadline-derived budget.
		if cost <= maxMeters {
			return path, cost, true
		}
	}
	// All attempts failed: try the plain basic leg before giving up, so a
	// schedule instance is only discarded when genuinely infeasible.
	path, cost, ok := e.BasicLegPath(u, v)
	if ok && cost <= maxMeters {
		return path, cost, true
	}
	return nil, 0, false
}

// meanEdgeCost lazily computes the graph's mean edge cost, the scale for
// probabilistic vertex weights.
func (e *Engine) meanEdgeCost() float64 {
	e.legMu.RLock()
	m := e.meanEdge
	e.legMu.RUnlock()
	if m > 0 {
		return m
	}
	var total float64
	for v := 0; v < e.g.NumVertices(); v++ {
		for _, a := range e.g.Out(roadnet.VertexID(v)) {
			total += a.Cost
		}
	}
	m = total / math.Max(1, float64(e.g.NumEdges()))
	e.legMu.Lock()
	e.meanEdge = m
	e.legMu.Unlock()
	return m
}

// ProbabilisticPlan routes a full candidate schedule with probabilistic
// legs (Alg. 1 with flag = true). Each leg's budget is derived from the
// tightest applicable deadline of its terminating event; the completed
// plan is re-validated with EvaluateScheduleWithCosts. ok=false discards
// the schedule instance.
func (e *Engine) ProbabilisticPlan(events []fleet.Event, t *fleet.Taxi, nowSeconds float64) ([][]roadnet.VertexID, fleet.EvalResult, bool) {
	e.ins.probabilisticPlans.Inc()
	vec, hasVec := t.MobilityVector()
	params := t.EvalParamsAt(nowSeconds, e.cfg.SpeedMps)
	legs := make([][]roadnet.VertexID, len(events))
	costs := make([]float64, len(events))

	// Deadline of each event in meters-from-now, and the minimal (basic)
	// chain cost between consecutive event vertices; a leg's detour budget
	// must leave every downstream event reachable by its deadline, or a
	// greedy early detour would eat slack that later dropoffs need.
	deadlineMeters := make([]float64, len(events))
	minLeg := make([]float64, len(events))
	prev := params.Start
	for i, ev := range events {
		dl := ev.Req.Deadline.Seconds()
		if ev.Kind == fleet.Pickup {
			dl = ev.Req.PickupDeadline(e.cfg.SpeedMps).Seconds()
		}
		deadlineMeters[i] = (dl - params.NowSeconds) * e.cfg.SpeedMps
		c, ok := e.BasicLegCost(prev, ev.Vertex())
		if !ok {
			return nil, fleet.EvalResult{}, false
		}
		minLeg[i] = c
		prev = ev.Vertex()
	}

	at := params.Start
	elapsed := params.LeadMeters
	for i, ev := range events {
		// Budget: reaching this event must not pass its deadline, and
		// every later event must stay reachable by its own deadline via
		// at least the minimal chain.
		budget := deadlineMeters[i] - elapsed
		chain := 0.0
		for j := i + 1; j < len(events); j++ {
			chain += minLeg[j]
			if b := deadlineMeters[j] - elapsed - chain; b < budget {
				budget = b
			}
		}
		// Optional probability-versus-detour trade-off: cap the leg's
		// detour at a multiple of its shortest-path cost.
		if f := e.cfg.ProbMaxLegInflation; f > 0 {
			if b := f * minLeg[i]; b < budget {
				budget = b
			}
		}
		if budget < 0 {
			e.ins.probabilisticFailures.Inc()
			return nil, fleet.EvalResult{}, false
		}
		legVec := vec
		if !hasVec {
			// An empty taxi inherits the direction of the leg itself.
			legVec = geo.NewMobilityVector(e.g.Point(at), e.g.Point(ev.Vertex()))
		}
		path, cost, ok := e.ProbabilisticLeg(at, ev.Vertex(), legVec, budget)
		if !ok {
			e.ins.probabilisticFailures.Inc()
			return nil, fleet.EvalResult{}, false
		}
		legs[i] = path
		costs[i] = cost
		elapsed += cost
		at = ev.Vertex()
	}
	eval := fleet.EvaluateScheduleWithCosts(events, costs, params)
	if !eval.Feasible {
		e.ins.probabilisticFailures.Inc()
		return nil, eval, false
	}
	return legs, eval, true
}

// CruisePlan plans an eventless probabilistic cruise for an idle taxi with
// spare seats (mT-Share_pro between assignments): it heads toward a nearby
// partition sampled in proportion to its historical origin demand (damped
// by travel distance), routed through high-ψ vertices. Sampling rather
// than picking the argmax spreads the idle fleet over the demand
// distribution — an all-taxis-to-the-hottest-spot policy would empty the
// rest of the city. ok is false when no target qualifies.
func (e *Engine) CruisePlan(t *fleet.Taxi, maxMeters float64) ([]roadnet.VertexID, bool) {
	cur := t.At()
	curPart := e.pt.PartitionOf(cur)
	type target struct {
		p     partition.ID
		score float64
	}
	var (
		targets []target
		total   float64
	)
	for p := 0; p < e.pt.NumPartitions(); p++ {
		pa := partition.ID(p)
		if pa == curPart {
			continue
		}
		d := e.pt.LandmarkCost(curPart, pa)
		if math.IsInf(d, 1) || d > maxMeters {
			continue
		}
		score := e.pt.OriginWeight(pa) / (1 + d/1000)
		if score <= 0 {
			continue
		}
		targets = append(targets, target{p: pa, score: score})
		total += score
	}
	if len(targets) == 0 || total <= 0 {
		return nil, false
	}
	r := e.cruise.next() * total
	pick := targets[len(targets)-1].p
	for _, tg := range targets {
		r -= tg.score
		if r <= 0 {
			pick = tg.p
			break
		}
	}
	dest := e.pt.Landmark(pick)
	if dest == cur {
		return nil, false
	}
	vec := geo.NewMobilityVector(e.g.Point(cur), e.g.Point(dest))
	path, _, ok := e.ProbabilisticLeg(cur, dest, vec, maxMeters)
	if !ok || len(path) < 2 {
		return nil, false
	}
	return path, true
}

// ProbEnabled reports whether probabilistic routing applies to the taxi:
// it must have at least the configured fraction of seats idle.
func (e *Engine) ProbEnabled(t *fleet.Taxi) bool {
	return float64(t.IdleSeats()) >= e.cfg.ProbSeatThreshold*float64(t.Capacity)
}
