// Package match implements mT-Share's passenger–taxi matching (§IV-C of
// the paper): candidate taxi searching over the partition and mobility-
// cluster indexes (Eq. 2–3 plus the three refinement rules), taxi
// scheduling by exhaustive insertion (Alg. 1), partition filtering
// (Alg. 2), partition-restricted basic routing (Alg. 3), and probabilistic
// routing toward likely offline requests (Alg. 4).
package match

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/mobcluster"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// Config carries the tunable parameters of the matching engine, with the
// paper's Table II defaults.
type Config struct {
	// SpeedMps is the constant taxi speed (paper: 15 km/h ≈ 4.17 m/s).
	SpeedMps float64
	// SearchRangeMeters caps the candidate search radius γ (paper default
	// 2.5 km ≈ 10 min of driving); the effective radius is
	// min(speed·slack, SearchRangeMeters) per Eq. 2.
	SearchRangeMeters float64
	// Lambda is the direction-similarity threshold λ (cos θ); paper
	// default cos 45° ≈ 0.707.
	Lambda float64
	// Epsilon is the travel-cost detour tolerance ε of the partition
	// filter; paper default 1.0.
	Epsilon float64
	// HorizonSeconds is the partition-index horizon T_mp (paper: 1 h).
	HorizonSeconds float64
	// MaxProbAttempts bounds the probabilistic-routing retry loop
	// (paper: 5).
	MaxProbAttempts int
	// ProbSeatThreshold enables probabilistic routing for a taxi when its
	// idle seats are at least this fraction of capacity (the evaluation
	// uses 1/2).
	ProbSeatThreshold float64
	// RouterCacheTrees bounds the shortest-path cache (trees kept).
	RouterCacheTrees int

	// Parallelism bounds the worker pool that fans the per-candidate
	// scheduling work of Dispatch. 0 uses runtime.GOMAXPROCS(0); 1 is
	// strictly sequential. The reduction is deterministic: every
	// parallelism level returns bit-identical assignments.
	Parallelism int

	// ExhaustiveReorder enables full schedule rearrangement instead of
	// insertion-only scheduling — the theoretically better variant §IV-C2
	// rules out as prohibitive; exposed for the ablation that quantifies
	// the gap. ReorderBudget caps the orderings enumerated per candidate
	// (0 means 720).
	ExhaustiveReorder bool
	ReorderBudget     int

	// DisableLandmarkLB turns off the landmark distance oracle: no offset
	// precompute at engine construction and no lower-bound screening of
	// candidates before exact schedule evaluation. The zero value keeps
	// the oracle on. Screening is lossless (the bound is admissible, so a
	// pruned candidate could never have produced a feasible schedule);
	// the knob exists for baselines and the ablate-landmark A/B run.
	DisableLandmarkLB bool

	// DisableCH turns off the contraction-hierarchy routing backend: no
	// hierarchy is built at engine construction and the router's cold
	// queries fall back to bidirectional Dijkstra. The zero value keeps
	// the CH on. Both backends return bit-identical costs (the CH unpacks
	// paths and re-folds original edge costs), so the knob changes
	// latency, never dispatch outcomes; it exists for baselines and the
	// ablate-ch A/B run.
	DisableCH bool

	// CH, when set (and DisableCH is not), attaches a prebuilt hierarchy
	// over the partitioning's graph instead of contracting it again —
	// shared-world experiments and benchmarks build one CH per graph.
	// NewEngine stores the hierarchy it attached back into this field,
	// so Engine.Config() round-trips reuse it instead of rebuilding.
	CH *roadnet.CH

	// ProbMaxLegInflation additionally bounds each probabilistic leg to
	// this factor of its shortest-path cost — the probability-versus-
	// detour trade-off the paper defers to future work. 0 disables the
	// bound (legs are limited only by deadlines).
	ProbMaxLegInflation float64

	// BatchAssign switches DispatchBatch's retry rounds from greedy
	// deadline-order commits to a global min-cost assignment over the full
	// (request, taxi) cost graph: every feasible pairing is enumerated
	// through the ordinary pipeline (landmark screening included), a
	// deterministic Hungarian solve picks the maximum-cardinality minimum-
	// detour matching with (cost, request, taxi) tie-breaks, and a
	// remainder pass re-dispatches the leftovers greedily so ridesharing
	// absorption is never lost to the one-to-one matching. Degenerate
	// graphs (singleton batch, no contested taxi, no feasible pair) fall
	// back to the greedy order. The zero value keeps greedy rounds; see
	// the ablate-batch-assign experiment for the trade-off.
	BatchAssign bool

	// Sharding splits the dispatcher into independent per-territory
	// engines (see ShardedEngine). It is consumed by NewDispatcher; the
	// zero value (and Shards <= 1) selects the classic single Engine.
	// NewEngine itself ignores it — an Engine is always one shard.
	Sharding ShardingConfig

	// Oracle, when set (and DisableLandmarkLB is not), reuses a prebuilt
	// landmark distance oracle over the partitioning instead of running
	// the offset precompute again — the sharded dispatcher builds one
	// oracle and hands it to every shard. NewEngine stores the oracle it
	// attached back into this field (mirroring CH), so Config()
	// round-trips reuse it.
	Oracle *partition.Oracle

	// Metrics is the registry the engine (and its router and partition
	// index) register their instruments in, under mtshare_match_*,
	// mtshare_roadnet_*, and mtshare_index_*. nil gives the engine a
	// private registry, so independent engines never share counters;
	// pass a shared registry to aggregate (e.g. the server's).
	Metrics *obs.Registry

	// Tracer samples dispatch span trees. nil disables tracing; a tracer
	// carried by the DispatchContext context takes precedence.
	Tracer *obs.Tracer

	// RouterWrap, when set, interposes on the engine's shortest-path
	// router: every leg-cost and path query of the dispatch pipeline
	// goes through the returned PathRouter. The replay harness injects
	// deterministic router faults through it. Engine.Router still
	// returns the raw cache (stats, warming, request preparation).
	RouterWrap func(roadnet.PathRouter) roadnet.PathRouter
}

// parallelism returns the effective dispatch worker count.
func (c Config) parallelism() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

func (c Config) reorderBudget() int {
	if c.ReorderBudget <= 0 {
		return 720
	}
	return c.ReorderBudget
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		SpeedMps:          15.0 * 1000 / 3600,
		SearchRangeMeters: 2500,
		Lambda:            0.707,
		Epsilon:           1.0,
		HorizonSeconds:    3600,
		MaxProbAttempts:   5,
		ProbSeatThreshold: 0.5,
		RouterCacheTrees:  512,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.SpeedMps <= 0:
		return fmt.Errorf("match: SpeedMps must be positive, got %v", c.SpeedMps)
	case c.SearchRangeMeters <= 0:
		return fmt.Errorf("match: SearchRangeMeters must be positive, got %v", c.SearchRangeMeters)
	case c.Lambda < -1 || c.Lambda > 1:
		return fmt.Errorf("match: Lambda %v outside [-1,1]", c.Lambda)
	case c.Epsilon < 0:
		return fmt.Errorf("match: Epsilon %v negative", c.Epsilon)
	case c.HorizonSeconds <= 0:
		return fmt.Errorf("match: HorizonSeconds must be positive, got %v", c.HorizonSeconds)
	case c.MaxProbAttempts < 1:
		return fmt.Errorf("match: MaxProbAttempts must be >= 1, got %d", c.MaxProbAttempts)
	case c.ProbSeatThreshold < 0 || c.ProbSeatThreshold > 1:
		return fmt.Errorf("match: ProbSeatThreshold %v outside [0,1]", c.ProbSeatThreshold)
	case c.ReorderBudget < 0:
		return fmt.Errorf("match: ReorderBudget %d negative", c.ReorderBudget)
	case c.ProbMaxLegInflation != 0 && c.ProbMaxLegInflation < 1:
		return fmt.Errorf("match: ProbMaxLegInflation %v below 1", c.ProbMaxLegInflation)
	case c.Parallelism < 0:
		return fmt.Errorf("match: Parallelism %d negative", c.Parallelism)
	}
	return c.Sharding.Validate()
}

// Engine is mT-Share's dispatcher: it owns the index structures and
// answers Dispatch calls for incoming requests. The simulation engine
// feeds it taxi movement via ReindexTaxi and request lifecycle via
// OnRequestDone.
type Engine struct {
	cfg Config
	g   *roadnet.Graph
	pt  *partition.Partitioning
	spx *roadnet.SpatialIndex
	// rawRouter is the shortest-path cache; router is the query surface
	// the dispatch pipeline uses — the raw cache, or Config.RouterWrap's
	// interposition around it (fault injection under replay).
	rawRouter *roadnet.Router
	router    roadnet.PathRouter

	clusters *mobcluster.Clusters
	pindex   *index.PartitionIndex

	// oracle is the landmark lower-bound distance estimator screening
	// candidates before exact schedule evaluation; nil when
	// Config.DisableLandmarkLB is set.
	oracle *partition.Oracle

	// mu guards the taxi registry and serialises fleet-state access:
	// Dispatch evaluates candidates under the read lock while Commit
	// installs plans under the write lock, so concurrent dispatching,
	// committing, and reindexing never observe a half-written schedule.
	// closed (set by Drain, read under the same lock) bars any further
	// plan installation once shutdown has begun.
	mu     sync.RWMutex
	taxis  map[int64]*fleet.Taxi
	closed bool

	// legCache memoises partition-filtered leg costs; they are a pure
	// function of the endpoint pair on a static graph. meanEdge is the
	// lazily computed mean edge cost used to scale probabilistic vertex
	// weights.
	legMu    sync.RWMutex
	legCache map[uint64]float64
	meanEdge float64

	// filterCache memoises the partition filter per (source partition,
	// target partition) pair — Alg. 2 depends only on the two landmarks.
	filterMu    sync.RWMutex
	filterCache map[uint64][]partition.ID

	// cruise drives demand-proportional cruise-target sampling. The
	// sampler is a pointer so a sharded dispatcher can hand every shard
	// the same stream: idle-cruise planning walks taxis in ID order in
	// every driver, so sharing the sampler reproduces the single-engine
	// draw sequence exactly.
	cruise *cruiseSampler

	reg    *obs.Registry
	tracer *obs.Tracer
	ins    instruments
}

// NewEngine builds an engine over a prepared partitioning and spatial
// index. The spatial index must cover the same graph as the partitioning.
func NewEngine(pt *partition.Partitioning, spx *roadnet.SpatialIndex, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := pt.Graph()
	raw := roadnet.NewRouter(g, cfg.RouterCacheTrees)
	if !cfg.DisableCH {
		if cfg.CH == nil {
			cfg.CH = roadnet.BuildCH(g, cfg.parallelism())
		}
		raw.AttachCH(cfg.CH)
	}
	raw.InstrumentWith(reg)
	var router roadnet.PathRouter = raw
	if cfg.RouterWrap != nil {
		router = cfg.RouterWrap(raw)
	}
	if cfg.DisableLandmarkLB {
		cfg.Oracle = nil
	} else if cfg.Oracle == nil {
		cfg.Oracle = partition.NewOracle(pt, cfg.parallelism())
	}
	e := &Engine{
		cfg:         cfg,
		g:           g,
		pt:          pt,
		spx:         spx,
		rawRouter:   raw,
		router:      router,
		clusters:    mobcluster.New(cfg.Lambda),
		pindex:      index.NewPartitionIndex(pt, cfg.HorizonSeconds).InstrumentWith(reg),
		taxis:       make(map[int64]*fleet.Taxi),
		legCache:    make(map[uint64]float64),
		filterCache: make(map[uint64][]partition.ID),
		cruise:      newCruiseSampler(1),
		reg:         reg,
		tracer:      cfg.Tracer,
		ins:         newInstruments(reg),
	}
	e.oracle = cfg.Oracle
	e.rawRouter.Warm(pt.Landmarks())
	return e, nil
}

// ErrDispatcherClosed is returned by Commit and installPlan after Drain:
// a drained dispatcher refuses every further plan installation, so no
// assignment can land once shutdown's critical section has passed.
var ErrDispatcherClosed = errors.New("match: dispatcher closed")

// Drain closes the engine for plan installation. Taking the fleet write
// lock waits out every in-flight dispatch evaluation and commit, so when
// Drain returns nothing is mid-commit and nothing can commit later —
// System.Close and server.Stop rely on this barrier.
func (e *Engine) Drain() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

// LandmarkOracle returns the engine's landmark lower-bound estimator, or
// nil when Config.DisableLandmarkLB turned it off.
func (e *Engine) LandmarkOracle() *partition.Oracle { return e.oracle }

// Metrics returns the registry holding the engine's instruments (and
// those of its router and partition index). Serve it via
// obs.Registry.WritePrometheus or read it via Snapshot.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Partitioning returns the map partitioning the engine routes over.
func (e *Engine) Partitioning() *partition.Partitioning { return e.pt }

// Router exposes the shared shortest-path cache (used by the simulation
// for request preparation). It is the raw cache even when RouterWrap
// interposes a fault layer on the dispatch pipeline, so request
// preparation and cache statistics see the true network.
func (e *Engine) Router() *roadnet.Router { return e.rawRouter }

// AddTaxi registers a taxi and indexes it at its current position.
func (e *Engine) AddTaxi(t *fleet.Taxi, nowSeconds float64) {
	e.mu.Lock()
	e.taxis[t.ID] = t
	e.mu.Unlock()
	e.ReindexTaxi(t, nowSeconds)
}

// Taxi returns a registered taxi.
func (e *Engine) Taxi(id int64) (*fleet.Taxi, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.taxis[id]
	return t, ok
}

// NumTaxis returns the number of registered taxis.
func (e *Engine) NumTaxis() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.taxis)
}

// ReindexTaxi refreshes the partition index and mobility cluster of a taxi
// after its plan or position changed (the paper updates indexes when
// requests are received or finished). The taxi is read under the fleet
// read lock so reindexing is safe against concurrent Commit calls.
func (e *Engine) ReindexTaxi(t *fleet.Taxi, nowSeconds float64) {
	e.mu.RLock()
	at := t.At()
	route := t.Route()
	v, hasVec := t.MobilityVector()
	e.pindex.Update(t.ID, at, route, nowSeconds, e.cfg.SpeedMps)
	e.mu.RUnlock()
	if hasVec {
		e.clusters.UpdateTaxi(t.ID, v)
	} else {
		e.clusters.RemoveTaxi(t.ID)
	}
}

// installPlan installs a plan on a taxi under the fleet write lock; the
// scheme uses it for idle cruises so plan mutation stays serialised
// against concurrent dispatch evaluation.
func (e *Engine) installPlan(t *fleet.Taxi, events []fleet.Event, legs [][]roadnet.VertexID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrDispatcherClosed
	}
	return t.SetPlan(events, legs)
}

// noteCruisePlanned counts a committed idle-cruise plan for the taxi.
func (e *Engine) noteCruisePlanned(t *fleet.Taxi) { e.ins.cruisePlans.Inc() }

// removeTaxi drops a taxi from the registry and the partition index; the
// sharded dispatcher uses it to hand a taxi from one shard's territory to
// another. Mobility clusters are untouched — they are shared across
// shards and the receiving shard's ReindexTaxi refreshes them.
func (e *Engine) removeTaxi(id int64) {
	e.mu.Lock()
	delete(e.taxis, id)
	e.mu.Unlock()
	e.pindex.Remove(id)
}

// OnRequestAssigned records a request's cluster membership.
func (e *Engine) OnRequestAssigned(req *fleet.Request) {
	e.clusters.AddRequest(int64(req.ID), req.MobilityVector())
}

// OnRequestDone removes a completed (or expired) request from the
// mobility clusters.
func (e *Engine) OnRequestDone(req *fleet.Request) {
	e.clusters.RemoveRequest(int64(req.ID))
}

// searchRadius returns the candidate search radius γ. Eq. 2 derives γ as
// speed × waiting-time slack; the evaluation (§V-A4) fixes γ = 2.5 km
// (≈ 10 min of driving) and sweeps it in Fig. 15, so the configured range
// governs, and a request whose slack has already run out searches nothing.
// Occupied candidate taxis need not be inside the disc *now* to make the
// pickup — the schedule feasibility check re-validates timing — so
// shrinking the disc below the configured γ only loses candidates.
//
// Deadline-boundary convention (shared with fleet.EvaluateSchedule): a
// deadline is the last *feasible* instant — arrival exactly at the
// deadline serves the request; only a strictly past deadline expires it.
// A taxi already at the origin can thus still pick up at
// pickupDeadline == now, so the comparison here is strict.
func (e *Engine) searchRadius(req *fleet.Request, nowSeconds float64) float64 {
	if req.PickupDeadline(e.cfg.SpeedMps).Seconds() < nowSeconds {
		return 0
	}
	return e.cfg.SearchRangeMeters
}

// CandidateTaxis implements candidate taxi searching (§IV-C1): the union
// of the partition taxi lists intersecting the search disc, intersected
// with the best-matching mobility cluster's taxi list, extended with empty
// taxis in the disc's partitions, minus taxis without spare seats and
// taxis that cannot reach the request's partition by the pickup deadline.
func (e *Engine) CandidateTaxis(req *fleet.Request, nowSeconds float64) []*fleet.Taxi {
	radius := e.searchRadius(req, nowSeconds)
	if radius <= 0 {
		return nil
	}
	parts := e.pt.PartitionsNear(e.spx, req.OriginPt, radius)
	inDisc := make(map[int64]float64) // taxi -> arrival at own partition
	for _, p := range parts {
		for _, entry := range e.pindex.Taxis(p) {
			if _, ok := inDisc[entry.TaxiID]; !ok {
				inDisc[entry.TaxiID] = entry.ArrivalSeconds
			}
		}
	}
	// Mobility-cluster intersection for occupied taxis: the union of all
	// direction-compatible clusters' taxi lists.
	clusterTaxis := make(map[int64]bool)
	for _, id := range e.clusters.CompatibleTaxis(req.MobilityVector()) {
		clusterTaxis[id] = true
	}
	reqPart := e.pt.PartitionOf(req.Origin)
	pickupDeadline := req.PickupDeadline(e.cfg.SpeedMps).Seconds()

	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*fleet.Taxi
	for id := range inDisc {
		t, ok := e.taxis[id]
		if !ok {
			continue
		}
		// Rule 1: empty taxis in the disc partitions are always included.
		// Occupied taxis must share the request's travel direction.
		if !t.Empty() && !clusterTaxis[id] {
			e.ins.prunedByDirection.Inc()
			continue
		}
		// Rule 2: spare seats.
		if t.IdleSeats() < req.Passengers {
			e.ins.prunedByCapacity.Inc()
			continue
		}
		// Rule 3: reachability of the request's partition by the pickup
		// deadline. A taxi whose recorded (planned-route) arrival makes
		// the deadline certainly qualifies; one whose planned arrival is
		// late may still divert, so it is kept unless even the
		// straight-line lower bound rules it out.
		if arr, ok := e.pindex.ArrivalAt(id, reqPart); !ok || arr > pickupDeadline {
			lb := nowSeconds + geo.Equirect(t.Point(), req.OriginPt)/e.cfg.SpeedMps
			if lb > pickupDeadline {
				e.ins.prunedByReachability.Inc()
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// IndexMemoryBytes reports the memory footprint of the engine's index
// structures (Table IV).
func (e *Engine) IndexMemoryBytes() int64 {
	return e.pindex.Stats().MemoryBytes + e.clusters.Stats().MemoryBytes + e.pt.MemoryBytes()
}

// ClusterStats exposes mobility-clustering statistics.
func (e *Engine) ClusterStats() mobcluster.Stats { return e.clusters.Stats() }
