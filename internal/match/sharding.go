package match

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/mobcluster"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// Border policies of a sharded dispatcher. BorderTwoPhase (the default)
// resolves candidates near shard borders through the deterministic
// two-phase reserve/commit protocol: the reserve phase freezes every
// shard's fleet state and evaluates the cross-shard candidate union, the
// commit phase routes the winner to its owning shard, where SetPlan
// re-validation rejects stale reservations. Runs are bit-identical to the
// single-engine build. BorderLocal restricts each request to its home
// shard's own taxis — no cross-shard traffic, but border candidates are
// lost, so outcomes may differ from the single engine; it exists as the
// cheap policy the two-phase protocol is measured against.
const (
	BorderTwoPhase = "twophase"
	BorderLocal    = "local"
)

// ShardingConfig selects the dispatcher topology. The zero value — and
// any Shards <= 1 — is the classic single engine.
type ShardingConfig struct {
	// Shards is the number of independent match engines. Each owns a
	// contiguous range of map partitions (balanced by vertex count) with
	// its own fleet registry, partition index, and router cache.
	Shards int
	// BorderPolicy is BorderTwoPhase or BorderLocal; empty means
	// BorderTwoPhase.
	BorderPolicy string
}

// Enabled reports whether the configuration asks for a sharded dispatcher.
func (c ShardingConfig) Enabled() bool { return c.Shards > 1 }

// Policy returns the effective border policy.
func (c ShardingConfig) Policy() string {
	if c.BorderPolicy == "" {
		return BorderTwoPhase
	}
	return c.BorderPolicy
}

// Validate reports whether the configuration is usable.
func (c ShardingConfig) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("match: Sharding.Shards %d negative", c.Shards)
	}
	switch c.BorderPolicy {
	case "", BorderTwoPhase, BorderLocal:
		return nil
	default:
		return fmt.Errorf("match: Sharding.BorderPolicy %q (want %q or %q)", c.BorderPolicy, BorderTwoPhase, BorderLocal)
	}
}

// cruiseSampler is the dispatch pipeline's only source of randomness: the
// demand-proportional cruise-target draw of CruisePlan. It is a pointer
// shared by every shard of a sharded dispatcher — idle-cruise planning
// walks taxis in ID order in every driver, so one shared stream
// reproduces the single-engine draw sequence exactly regardless of which
// shard plans each cruise.
type cruiseSampler struct {
	mu    sync.Mutex
	rng   *rand.Rand
	draws int64 // total values drawn, for snapshot fast-forward
}

func newCruiseSampler(seed int64) *cruiseSampler {
	return &cruiseSampler{rng: rand.New(rand.NewSource(seed))}
}

func (c *cruiseSampler) next() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draws++
	return c.rng.Float64()
}

func (c *cruiseSampler) drawCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draws
}

// fastForward discards draws until the stream has produced n values,
// restoring the sampler to a snapshot's position. math/rand's generator
// has no O(1) seek, but cruise draws are rare (one per idle-cruise plan),
// so replaying them is cheap. It fails if the sampler is already past n.
func (c *cruiseSampler) fastForward(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draws > n {
		return fmt.Errorf("match: cruise sampler at draw %d, cannot rewind to %d", c.draws, n)
	}
	for c.draws < n {
		c.rng.Float64()
		c.draws++
	}
	return nil
}

// Dispatcher is the matching-engine surface the facade, simulator, server,
// and experiment harness program against: everything an Engine does, plus
// the shard-introspection calls a ShardedEngine adds. The two unexported
// methods keep implementations inside this package — plan installation
// must go through the owning engine's fleet lock.
type Dispatcher interface {
	AddTaxi(t *fleet.Taxi, nowSeconds float64)
	Taxi(id int64) (*fleet.Taxi, bool)
	NumTaxis() int
	ReindexTaxi(t *fleet.Taxi, nowSeconds float64)
	Dispatch(req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool)
	DispatchContext(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool)
	DispatchBatch(ctx context.Context, reqs []*fleet.Request, nowSeconds float64, probabilistic bool) []BatchOutcome
	Commit(a Assignment, nowSeconds float64) error
	TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool
	OnRequestAssigned(req *fleet.Request)
	OnRequestDone(req *fleet.Request)
	CruisePlan(t *fleet.Taxi, maxMeters float64) ([]roadnet.VertexID, bool)
	Partitioning() *partition.Partitioning
	Router() *roadnet.Router
	Config() Config
	Metrics() *obs.Registry
	IndexMemoryBytes() int64
	ClusterStats() mobcluster.Stats
	Stats() EngineStats
	ShardStats() []ShardStats
	ShardCount() int
	LandmarkOracle() *partition.Oracle
	NewPendingPool(capacity int) Pool
	CaptureDurable() *DurableState
	RestoreDurable(st *DurableState, resolve RequestResolver) ([]*fleet.Taxi, error)
	Drain()

	installPlan(t *fleet.Taxi, events []fleet.Event, legs [][]roadnet.VertexID) error
	noteCruisePlanned(t *fleet.Taxi)
}

// ShardCount returns 1: an Engine is always a single shard.
func (e *Engine) ShardCount() int { return 1 }

// NewDispatcher builds the dispatcher cfg.Sharding selects: the classic
// single Engine for Shards <= 1, a ShardedEngine otherwise.
func NewDispatcher(pt *partition.Partitioning, spx *roadnet.SpatialIndex, cfg Config) (Dispatcher, error) {
	if cfg.Sharding.Enabled() {
		return NewShardedEngine(pt, spx, cfg)
	}
	return NewEngine(pt, spx, cfg)
}

// shardInstruments are the sharding-layer counters of one shard,
// registered per shard under the shard="i" label.
type shardInstruments struct {
	// requests counts dispatches routed to the shard as home shard.
	requests *obs.Counter
	// crossCandidates counts evaluated candidates owned by another shard,
	// crossAssignments commits whose winning taxi another shard owned, and
	// borderConflicts batch conflicts whose contested taxi was cross-shard.
	crossCandidates  *obs.Counter
	crossAssignments *obs.Counter
	borderConflicts  *obs.Counter
	// handoffs counts taxis migrated into the shard's territory.
	handoffs *obs.Counter
	taxis    *obs.Gauge
}

func newShardInstruments(reg *obs.Registry) shardInstruments {
	return shardInstruments{
		requests:         reg.Counter("mtshare_shard_requests_total"),
		crossCandidates:  reg.Counter("mtshare_shard_cross_candidates_total"),
		crossAssignments: reg.Counter("mtshare_shard_cross_assignments_total"),
		borderConflicts:  reg.Counter("mtshare_shard_border_conflicts_total"),
		handoffs:         reg.Counter("mtshare_shard_handoffs_total"),
		taxis:            reg.Gauge("mtshare_shard_taxis"),
	}
}

// ShardedEngine partitions the dispatcher into N independent match
// engines, each owning a contiguous range of map partitions (a ShardMap
// territory) with its own fleet registry, partition index, and router
// cache. Requests route to the shard owning their pickup partition (the
// home shard); border candidates resolve through the two-phase
// reserve/commit protocol (see BorderTwoPhase), whose deterministic
// (detour, taxiID) winner order makes a sharded run bit-identical to the
// single-engine build at every shard count and parallelism level — the
// ablate-shard experiment gates on exactly that.
//
// Mutable structures that are history-dependent stay shared across
// shards: the mobility clusters (centroids depend on the full
// request/taxi arrival history) and the cruise sampler (one rng stream).
// Immutable expensive structures — the contraction hierarchy and the
// landmark oracle — are built once and handed to every shard.
type ShardedEngine struct {
	cfg  Config
	pt   *partition.Partitioning
	spx  *roadnet.SpatialIndex
	smap *partition.ShardMap

	shards []*Engine
	ins    []shardInstruments
	reg    *obs.Registry

	// mu guards owner: taxi ID -> shard currently holding the taxi's
	// registry entry and partition-index row (the shard owning the taxi's
	// position). Lock order: shard fleet locks first, then mu — never
	// acquire a shard lock while holding mu.
	mu    sync.RWMutex
	owner map[int64]int
}

// NewShardedEngine builds a sharded dispatcher over a prepared
// partitioning and spatial index. cfg.Sharding.Shards engines are built;
// the CH and landmark oracle are constructed once (unless prebuilt ones
// are supplied) and shared. Per-shard instruments land in cfg.Metrics
// (or a fresh registry) under shard="i" labels.
func NewShardedEngine(pt *partition.Partitioning, spx *roadnet.SpatialIndex, cfg Config) (*ShardedEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sharding.Shards
	if n < 1 {
		n = 1
	}
	smap, err := partition.NewShardMap(pt, n)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Metrics = reg
	// Shared structures, built once.
	if !cfg.DisableCH && cfg.CH == nil {
		cfg.CH = roadnet.BuildCH(pt.Graph(), cfg.parallelism())
	}
	if cfg.DisableLandmarkLB {
		cfg.Oracle = nil
	} else if cfg.Oracle == nil {
		cfg.Oracle = partition.NewOracle(pt, cfg.parallelism())
	}
	clusters := mobcluster.New(cfg.Lambda)
	cruise := newCruiseSampler(1)

	se := &ShardedEngine{
		cfg:    cfg,
		pt:     pt,
		spx:    spx,
		smap:   smap,
		shards: make([]*Engine, n),
		ins:    make([]shardInstruments, n),
		reg:    reg,
		owner:  make(map[int64]int),
	}
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Sharding = ShardingConfig{} // each shard is a plain engine
		scfg.Metrics = reg.Labeled("shard=" + strconv.Quote(strconv.Itoa(i)))
		sh, err := NewEngine(pt, spx, scfg)
		if err != nil {
			return nil, err
		}
		sh.clusters = clusters
		sh.cruise = cruise
		se.shards[i] = sh
		se.ins[i] = newShardInstruments(scfg.Metrics)
	}
	return se, nil
}

// ShardCount returns the number of shards.
func (se *ShardedEngine) ShardCount() int { return len(se.shards) }

// ShardMap exposes the partition-to-shard ownership map.
func (se *ShardedEngine) ShardMap() *partition.ShardMap { return se.smap }

// HomeShard returns the shard owning the request's pickup partition — a
// total, deterministic function of the pickup location, independent of
// any fleet or queue state.
func (se *ShardedEngine) HomeShard(req *fleet.Request) int {
	return se.smap.ShardOf(se.pt.PartitionOf(req.Origin))
}

// Partitioning returns the shared map partitioning.
func (se *ShardedEngine) Partitioning() *partition.Partitioning { return se.pt }

// Config returns the dispatcher configuration (with the shared CH and
// oracle stored back, mirroring Engine.Config).
func (se *ShardedEngine) Config() Config { return se.cfg }

// Metrics returns the parent registry aggregating every shard's labelled
// instruments.
func (se *ShardedEngine) Metrics() *obs.Registry { return se.reg }

// Router exposes shard 0's raw shortest-path cache. All shards route the
// same graph through the same hierarchy, so any shard's router answers
// preparation queries identically.
func (se *ShardedEngine) Router() *roadnet.Router { return se.shards[0].Router() }

// LandmarkOracle returns the shared landmark lower-bound estimator.
func (se *ShardedEngine) LandmarkOracle() *partition.Oracle { return se.shards[0].LandmarkOracle() }

// ClusterStats exposes the shared mobility clusters' statistics.
func (se *ShardedEngine) ClusterStats() mobcluster.Stats { return se.shards[0].ClusterStats() }

// IndexMemoryBytes reports the footprint of the dispatcher's index
// structures: every shard's partition index, plus the shared clusters and
// partitioning once.
func (se *ShardedEngine) IndexMemoryBytes() int64 {
	total := se.pt.MemoryBytes() + se.shards[0].clusters.Stats().MemoryBytes
	for _, sh := range se.shards {
		total += sh.pindex.Stats().MemoryBytes
	}
	return total
}

// Stats aggregates every shard's pipeline counters.
func (se *ShardedEngine) Stats() EngineStats {
	var s EngineStats
	for _, sh := range se.shards {
		s.Add(sh.Stats())
	}
	return s
}

// ShardStats returns the per-shard breakdown.
func (se *ShardedEngine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(se.shards))
	for i, sh := range se.shards {
		lo, hi := se.smap.Range(i)
		out[i] = ShardStats{
			Shard:                 i,
			FirstPartition:        lo,
			LastPartition:         hi,
			Taxis:                 sh.NumTaxis(),
			Requests:              se.ins[i].requests.Value(),
			CrossShardCandidates:  se.ins[i].crossCandidates.Value(),
			CrossShardAssignments: se.ins[i].crossAssignments.Value(),
			BorderConflicts:       se.ins[i].borderConflicts.Value(),
			Handoffs:              se.ins[i].handoffs.Value(),
			Engine:                sh.Stats(),
		}
	}
	return out
}

// Drain closes every shard for plan installation. When Drain returns, no
// shard is mid-commit and none can commit later.
func (se *ShardedEngine) Drain() {
	for _, sh := range se.shards {
		sh.Drain()
	}
}

// shardAt returns the territorial shard of a map position.
func (se *ShardedEngine) shardAt(v roadnet.VertexID) int {
	return se.smap.ShardOf(se.pt.PartitionOf(v))
}

// ownerIdx returns the shard holding the taxi's registry entry, falling
// back to the taxi's territorial shard when it was never registered.
func (se *ShardedEngine) ownerIdx(t *fleet.Taxi) int {
	se.mu.RLock()
	s, ok := se.owner[t.ID]
	se.mu.RUnlock()
	if ok {
		return s
	}
	return se.shardAt(t.At())
}

// AddTaxi registers a taxi with the shard owning its current position.
func (se *ShardedEngine) AddTaxi(t *fleet.Taxi, nowSeconds float64) {
	s := se.shardAt(t.At())
	se.mu.Lock()
	se.owner[t.ID] = s
	se.mu.Unlock()
	se.shards[s].AddTaxi(t, nowSeconds)
	se.ins[s].taxis.Set(float64(se.shards[s].NumTaxis()))
}

// Taxi returns a registered taxi from its owning shard.
func (se *ShardedEngine) Taxi(id int64) (*fleet.Taxi, bool) {
	se.mu.RLock()
	s, ok := se.owner[id]
	se.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return se.shards[s].Taxi(id)
}

// NumTaxis returns the fleet size across all shards.
func (se *ShardedEngine) NumTaxis() int {
	total := 0
	for _, sh := range se.shards {
		total += sh.NumTaxis()
	}
	return total
}

// ReindexTaxi refreshes a taxi's indexes, handing the taxi to a new
// owner shard when its position crossed a shard border. The handoff is
// deterministic — ownership is a pure function of position, and every
// driver (simulation, facade, server) serialises movement per taxi — so
// the same movement history always yields the same ownership history.
func (se *ShardedEngine) ReindexTaxi(t *fleet.Taxi, nowSeconds float64) {
	newS := se.shardAt(t.At())
	se.mu.RLock()
	old, registered := se.owner[t.ID]
	se.mu.RUnlock()
	if registered && old != newS {
		se.shards[old].removeTaxi(t.ID)
		nsh := se.shards[newS]
		nsh.mu.Lock()
		nsh.taxis[t.ID] = t
		nsh.mu.Unlock()
		se.mu.Lock()
		se.owner[t.ID] = newS
		se.mu.Unlock()
		se.ins[newS].handoffs.Inc()
		se.ins[old].taxis.Set(float64(se.shards[old].NumTaxis()))
		se.ins[newS].taxis.Set(float64(se.shards[newS].NumTaxis()))
	}
	se.shards[newS].ReindexTaxi(t, nowSeconds)
}

// OnRequestAssigned records cluster membership (shared across shards).
func (se *ShardedEngine) OnRequestAssigned(req *fleet.Request) {
	se.shards[0].OnRequestAssigned(req)
}

// OnRequestDone removes a finished request from the shared clusters.
func (se *ShardedEngine) OnRequestDone(req *fleet.Request) {
	se.shards[0].OnRequestDone(req)
}

// CruisePlan plans an idle cruise through the taxi's owner shard (the
// plan is a pure function of position and the shared rng stream, so the
// choice of shard only affects cache locality).
func (se *ShardedEngine) CruisePlan(t *fleet.Taxi, maxMeters float64) ([]roadnet.VertexID, bool) {
	return se.shards[se.ownerIdx(t)].CruisePlan(t, maxMeters)
}

func (se *ShardedEngine) installPlan(t *fleet.Taxi, events []fleet.Event, legs [][]roadnet.VertexID) error {
	return se.shards[se.ownerIdx(t)].installPlan(t, events, legs)
}

func (se *ShardedEngine) noteCruisePlanned(t *fleet.Taxi) {
	se.shards[se.ownerIdx(t)].noteCruisePlanned(t)
}

// rlockAll acquires every shard's fleet read lock in ascending shard
// order — the reserve phase of the two-phase border protocol. Ascending
// acquisition plus the writers' single-lock discipline rules out
// deadlock.
func (se *ShardedEngine) rlockAll() {
	for _, sh := range se.shards {
		sh.mu.RLock()
	}
}

func (se *ShardedEngine) runlockAll() {
	for i := len(se.shards) - 1; i >= 0; i-- {
		se.shards[i].mu.RUnlock()
	}
}

// candidateTaxis is the sharded candidate taxi search: the union of every
// shard's partition-index rows over the search disc (deduplicated by taxi
// ID — dedupe is exact because rule 3 reads the owner shard's recorded
// arrival, never the per-row discovery value), refined by the same three
// rules as Engine.CandidateTaxis against the shared clusters. Under
// BorderLocal only the home shard's rows and taxis are considered. The
// caller holds every shard's fleet read lock.
func (se *ShardedEngine) candidateTaxis(home int, req *fleet.Request, nowSeconds float64) []*fleet.Taxi {
	h := se.shards[home]
	radius := h.searchRadius(req, nowSeconds)
	if radius <= 0 {
		return nil
	}
	localOnly := se.cfg.Sharding.Policy() == BorderLocal
	parts := se.pt.PartitionsNear(se.spx, req.OriginPt, radius)
	inDisc := make(map[int64]bool)
	for _, p := range parts {
		for s, sh := range se.shards {
			if localOnly && s != home {
				continue
			}
			for _, entry := range sh.pindex.Taxis(p) {
				inDisc[entry.TaxiID] = true
			}
		}
	}
	clusterTaxis := make(map[int64]bool)
	for _, id := range h.clusters.CompatibleTaxis(req.MobilityVector()) {
		clusterTaxis[id] = true
	}
	reqPart := se.pt.PartitionOf(req.Origin)
	pickupDeadline := req.PickupDeadline(se.cfg.SpeedMps).Seconds()

	se.mu.RLock()
	defer se.mu.RUnlock()
	var out []*fleet.Taxi
	var cross int64
	for id := range inDisc {
		s, ok := se.owner[id]
		if !ok || (localOnly && s != home) {
			continue
		}
		sh := se.shards[s]
		t, ok := sh.taxis[id]
		if !ok {
			continue
		}
		// Rules 1-3, identical to Engine.CandidateTaxis; pruning counters
		// land on the home shard so the aggregate equals the single engine.
		if !t.Empty() && !clusterTaxis[id] {
			h.ins.prunedByDirection.Inc()
			continue
		}
		if t.IdleSeats() < req.Passengers {
			h.ins.prunedByCapacity.Inc()
			continue
		}
		if arr, ok := sh.pindex.ArrivalAt(id, reqPart); !ok || arr > pickupDeadline {
			lb := nowSeconds + geo.Equirect(t.Point(), req.OriginPt)/se.cfg.SpeedMps
			if lb > pickupDeadline {
				h.ins.prunedByReachability.Inc()
				continue
			}
		}
		if s != home {
			cross++
		}
		out = append(out, t)
	}
	if cross > 0 {
		se.ins[home].crossCandidates.Add(cross)
	}
	return out
}

// Dispatch routes the request to its home shard and runs Alg. 1 over the
// cross-shard candidate union. See DispatchContext.
func (se *ShardedEngine) Dispatch(req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool) {
	return se.DispatchContext(context.Background(), req, nowSeconds, probabilistic)
}

// DispatchContext is the sharded dispatch: the request's home shard (the
// owner of its pickup partition) drives the evaluation; the reserve phase
// freezes every shard's fleet state under read locks in ascending order,
// evaluates the deduplicated cross-shard candidate set through the home
// shard's pipeline, and picks the winner in (detour, taxiID) order —
// exactly the single engine's reduction, which is what makes the sharded
// run bit-identical. The commit phase is Commit, routed to the winner's
// owner shard.
func (se *ShardedEngine) DispatchContext(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool) {
	home := se.HomeShard(req)
	h := se.shards[home]
	se.ins[home].requests.Inc()
	if h.tracer != nil && obs.TracerFrom(ctx) == nil {
		ctx = obs.WithTracer(ctx, h.tracer)
	}
	ctx, sp := obs.StartSpan(ctx, "dispatch")
	defer sp.End()
	tDispatch := time.Now()
	defer h.ins.dispatchSeconds.ObserveSince(tDispatch)

	// Reserve phase: all shards frozen from candidate search through the
	// winner's leg materialisation, so no commit (on any shard) can
	// invalidate a border candidate mid-evaluation.
	se.rlockAll()
	defer se.runlockAll()

	_, spc := obs.StartSpan(ctx, "dispatch.candidates")
	t0 := time.Now()
	cands := se.candidateTaxis(home, req, nowSeconds)
	h.ins.candidateSearchSeconds.ObserveSince(t0)
	spc.End()
	h.ins.dispatches.Inc()
	h.ins.candidatesExamined.Add(int64(len(cands)))
	best := Assignment{Req: req, Candidates: len(cands)}
	if len(cands) == 0 || ctx.Err() != nil {
		return best, false
	}
	return best, h.dispatchLocked(ctx, req, nowSeconds, probabilistic, cands, &best)
}

// Commit applies an assignment on the winning taxi's owner shard — the
// commit phase of the border protocol. The owner shard's write lock
// excludes every reserve phase (a reader of all shards), and SetPlan
// re-validates the schedule, so a reservation gone stale fails cleanly.
func (se *ShardedEngine) Commit(a Assignment, nowSeconds float64) error {
	if a.Taxi == nil {
		return fmt.Errorf("match: committing empty assignment")
	}
	owner := se.ownerIdx(a.Taxi)
	if err := se.shards[owner].Commit(a, nowSeconds); err != nil {
		return err
	}
	if a.Req != nil {
		if home := se.HomeShard(a.Req); home != owner {
			se.ins[home].crossAssignments.Inc()
		}
	}
	return nil
}

// TryServeOffline delegates a roadside encounter to the taxi's owner
// shard (the insertion only touches that taxi's schedule).
func (se *ShardedEngine) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	return se.shards[se.ownerIdx(t)].TryServeOffline(t, req, nowSeconds)
}

// DispatchBatch runs the deterministic batch protocol over the sharded
// dispatcher: phase 1 evaluates every request (each through its home
// shard) against the frozen fleet state, phase 2 commits in (pickup
// deadline, request ID) order with conflict re-dispatch. A conflict whose
// contested taxi lives on a different shard than the request's home is a
// border conflict — two shards reserved the same taxi in one round.
func (se *ShardedEngine) DispatchBatch(ctx context.Context, reqs []*fleet.Request, nowSeconds float64, probabilistic bool) []BatchOutcome {
	h := batchHooks{
		evaluated: func(r *fleet.Request) {
			se.shards[se.HomeShard(r)].ins.batchRequests.Inc()
		},
		conflict: func(o *BatchOutcome) {
			home := se.HomeShard(o.Req)
			se.shards[home].ins.batchConflicts.Inc()
			if se.ownerIdx(o.Assignment.Taxi) != home {
				se.ins[home].borderConflicts.Inc()
			}
		},
		// Round-level accounting has no per-request home; it lands on
		// shard 0 so the cross-shard aggregate equals the single engine's.
		assignRound: func(options int, fallback bool) {
			ins := &se.shards[0].ins
			ins.batchAssignRounds.Inc()
			ins.batchAssignOptions.Add(int64(options))
			if fallback {
				ins.batchAssignFallbacks.Inc()
			}
		},
		assignRemainderServed: func() { se.shards[0].ins.batchAssignRemainder.Inc() },
	}
	if se.cfg.BatchAssign {
		return runBatchAssign(ctx, se, reqs, nowSeconds, probabilistic, h)
	}
	return runBatch(ctx, se, reqs, nowSeconds, probabilistic, h)
}

// NewPendingPool builds the sharded pending-request pool: one queue per
// shard routed by home shard, bounded globally to capacity so
// backpressure matches the single-queue build exactly.
func (se *ShardedEngine) NewPendingPool(capacity int) Pool {
	g := &QueueGroup{
		se:       se,
		capacity: capacity,
		queues:   make([]*PendingQueue, len(se.shards)),
	}
	for i, sh := range se.shards {
		g.queues[i] = NewPendingQueue(capacity, se.cfg.SpeedMps).InstrumentWith(sh.reg)
	}
	return g
}
