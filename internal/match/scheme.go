package match

import (
	"context"
	"sync"

	"repro/internal/dispatch"
	"repro/internal/fleet"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// Scheme adapts a dispatcher — a single Engine or a ShardedEngine — to
// the simulation's dispatcher contract. Probabilistic selects the
// mT-Share_pro variant: probabilistic routing in Alg. 1 for eligible
// taxis plus probabilistic cruising of idle taxis toward likely offline
// demand.
type Scheme struct {
	Dispatcher
	// Probabilistic enables probabilistic routing and cruising
	// (mT-Share_pro).
	Probabilistic bool
	// CruiseMeters bounds the length of an idle cruise (default 3 km).
	CruiseMeters float64

	mu          sync.Mutex
	lastIndexed map[int64]partition.ID
}

// NewScheme wraps a dispatcher as a simulation dispatcher.
func NewScheme(d Dispatcher, probabilistic bool) *Scheme {
	return &Scheme{
		Dispatcher:    d,
		Probabilistic: probabilistic,
		CruiseMeters:  3000,
		lastIndexed:   make(map[int64]partition.ID),
	}
}

// Name identifies the scheme in reports.
func (s *Scheme) Name() string {
	if s.Probabilistic {
		return "mT-Share-pro"
	}
	return "mT-Share"
}

// AddTaxi registers a taxi with the dispatcher.
func (s *Scheme) AddTaxi(t *fleet.Taxi, nowSeconds float64) {
	s.Dispatcher.AddTaxi(t, nowSeconds)
	s.noteIndexed(t)
}

func (s *Scheme) noteIndexed(t *fleet.Taxi) {
	s.mu.Lock()
	s.lastIndexed[t.ID] = s.Partitioning().PartitionOf(t.At())
	s.mu.Unlock()
}

// OnRequest runs Alg. 1 and commits the winning assignment.
func (s *Scheme) OnRequest(req *fleet.Request, nowSeconds float64) dispatch.Outcome {
	a, ok := s.Dispatch(req, nowSeconds, s.Probabilistic)
	out := dispatch.Outcome{Candidates: a.Candidates}
	if !ok {
		return out
	}
	if err := s.Commit(a, nowSeconds); err != nil {
		return out
	}
	s.noteIndexed(a.Taxi)
	out.Served = true
	out.TaxiID = a.Taxi.ID
	return out
}

// OnBatch implements dispatch.BatchDispatcher: the pending queue's
// batch re-dispatch, evaluated through the engine's parallel candidate
// pipeline and committed in deterministic (pickup deadline, request ID)
// order with conflict resolution.
func (s *Scheme) OnBatch(reqs []*fleet.Request, nowSeconds float64) []dispatch.BatchResult {
	outs := s.DispatchBatch(context.Background(), reqs, nowSeconds, s.Probabilistic)
	res := make([]dispatch.BatchResult, len(outs))
	for i, o := range outs {
		r := dispatch.BatchResult{Req: o.Req, Conflict: o.Conflict}
		r.Out.Candidates = o.Assignment.Candidates
		if o.Served {
			r.Out.Served = true
			r.Out.TaxiID = o.Assignment.Taxi.ID
			s.noteIndexed(o.Assignment.Taxi)
		}
		res[i] = r
	}
	return res
}

// OnTaxiAdvanced refreshes a taxi's indexes when it crossed a partition
// border. Entries computed at plan time stay valid while the taxi follows
// the plan (constant speed, fixed route), so a full reindex per tick is
// unnecessary; only border crossings leave stale rows behind.
func (s *Scheme) OnTaxiAdvanced(t *fleet.Taxi, nowSeconds float64) {
	cur := s.Partitioning().PartitionOf(t.At())
	s.mu.Lock()
	last, ok := s.lastIndexed[t.ID]
	if ok && last == cur {
		s.mu.Unlock()
		return
	}
	s.lastIndexed[t.ID] = cur
	s.mu.Unlock()
	s.ReindexTaxi(t, nowSeconds)
}

// OnRequestCompleted removes the request from the mobility clusters.
func (s *Scheme) OnRequestCompleted(req *fleet.Request, nowSeconds float64) {
	s.OnRequestDone(req)
}

// TryServeOffline delegates to the dispatcher's insertion check.
func (s *Scheme) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	ok := s.Dispatcher.TryServeOffline(t, req, nowSeconds)
	if ok {
		s.noteIndexed(t)
	}
	return ok
}

// PlanIdle plans a probabilistic cruise for an idle, parked taxi when the
// probabilistic variant is active.
func (s *Scheme) PlanIdle(t *fleet.Taxi, nowSeconds float64) bool {
	if !s.Probabilistic || !t.Empty() || len(t.Route()) > 1 {
		return false
	}
	path, ok := s.CruisePlan(t, s.CruiseMeters)
	if !ok {
		return false
	}
	if err := s.installPlan(t, nil, [][]roadnet.VertexID{path}); err != nil {
		return false
	}
	s.noteCruisePlanned(t)
	s.ReindexTaxi(t, nowSeconds)
	s.noteIndexed(t)
	return true
}

// SupportsOfflineDispatch is true: mT-Share's server dispatches another
// taxi when a roadside insertion fails (§IV-C2).
func (s *Scheme) SupportsOfflineDispatch() bool { return true }
