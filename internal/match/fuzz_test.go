package match

import (
	"sort"
	"testing"
	"time"

	"repro/internal/fleet"
)

// modelItem mirrors one parked request in the naive reference model.
type modelItem struct {
	id      fleet.RequestID
	pd      float64
	retries int
}

// modelQueue is the trivially-correct reference implementation the fuzzer
// diffs PendingQueue against: a plain slice re-sorted on demand, with the
// same lifecycle counters.
type modelQueue struct {
	capacity int
	items    []modelItem
	stats    QueueStats
}

func (m *modelQueue) find(id fleet.RequestID) int {
	for i := range m.items {
		if m.items[i].id == id {
			return i
		}
	}
	return -1
}

func (m *modelQueue) sorted() []modelItem {
	out := append([]modelItem(nil), m.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].pd != out[j].pd {
			return out[i].pd < out[j].pd
		}
		return out[i].id < out[j].id
	})
	return out
}

func (m *modelQueue) push(id fleet.RequestID, pd, now float64) PushResult {
	if m.find(id) >= 0 {
		return PushAccepted
	}
	if pd < now {
		m.stats.Rejected++
		return PushRejectedExpired
	}
	if len(m.items) >= m.capacity {
		m.stats.Rejected++
		return PushRejectedFull
	}
	m.items = append(m.items, modelItem{id: id, pd: pd})
	m.stats.Enqueued++
	return PushAccepted
}

func (m *modelQueue) expireBefore(now float64) []modelItem {
	var out, keep []modelItem
	for _, it := range m.sorted() {
		if it.pd < now {
			out = append(out, it)
		}
	}
	for _, it := range m.items {
		if it.pd >= now {
			keep = append(keep, it)
		}
	}
	m.items = keep
	m.stats.Expired += int64(len(out))
	return out
}

func (m *modelQueue) nextBatch() []modelItem {
	out := m.sorted()
	for i := range m.items {
		m.items[i].retries++
	}
	for i := range out {
		out[i].retries++
	}
	m.stats.Retries += int64(len(out))
	return out
}

func (m *modelQueue) markServed(id fleet.RequestID) bool {
	i := m.find(id)
	if i < 0 {
		return false
	}
	m.items = append(m.items[:i], m.items[i+1:]...)
	m.stats.Served++
	return true
}

// fuzzReq builds a request whose pickup deadline is exactly pd seconds:
// DirectMeters is zero, so PickupDeadline == Deadline. Integral pd values
// survive the Duration round-trip exactly.
func fuzzReq(id fleet.RequestID, pd float64) *fleet.Request {
	return &fleet.Request{
		ID:         id,
		Origin:     0,
		Dest:       1,
		Deadline:   time.Duration(pd * float64(time.Second)),
		Passengers: 1,
	}
}

// FuzzPendingQueue drives PendingQueue through a byte-decoded op sequence
// (push / advance-clock / expire / batch / serve) and diffs every return
// value, the (deadline, ID) snapshot order, and the lifecycle counters
// against the naive model, including the conservation law
// Enqueued == Depth + Served + Expired.
func FuzzPendingQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{0x10, 0x00, 0x05, 0x06, 0x0c, 0x01, 0x21, 0x02, 0x03, 0x04, 0x18})
	// Same-deadline pushes, then expiry sweeping half of them.
	f.Add([]byte{0x03, 0x00, 0x08, 0x06, 0x08, 0x0c, 0x08, 0x01, 0x3f, 0x02, 0x03})
	// Duplicate IDs and serve-misses.
	f.Add([]byte{0x02, 0x00, 0x04, 0x00, 0x04, 0x04, 0x09, 0x04, 0x05, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		capacity := 1 + int(data[0]%8)
		q := NewPendingQueue(capacity, 10)
		m := &modelQueue{capacity: capacity}
		now := 0.0
		next := func(i *int) (byte, bool) {
			if *i >= len(data) {
				return 0, false
			}
			b := data[*i]
			*i++
			return b, true
		}
		for i := 1; i < len(data); {
			op, _ := next(&i)
			switch op % 5 {
			case 0: // push
				idb, ok := next(&i)
				if !ok {
					return
				}
				pdb, _ := next(&i)
				id := fleet.RequestID(idb % 16)
				pd := now + float64(pdb%8) - 2 // sometimes already expired
				got := q.Push(fuzzReq(id, pd), now)
				want := m.push(id, pd, now)
				if got != want {
					t.Fatalf("Push(id=%d pd=%g now=%g) = %v, model %v", id, pd, now, got, want)
				}
			case 1: // advance the clock (monotonically)
				d, _ := next(&i)
				now += float64(d % 16)
			case 2: // expire
				got := q.ExpireBefore(now)
				want := m.expireBefore(now)
				if len(got) != len(want) {
					t.Fatalf("ExpireBefore(%g) returned %d items, model %d", now, len(got), len(want))
				}
				for j := range got {
					if got[j].Req.ID != want[j].id {
						t.Fatalf("ExpireBefore order at %d: got id %d, model %d", j, got[j].Req.ID, want[j].id)
					}
				}
			case 3: // batch
				got := q.NextBatch()
				want := m.nextBatch()
				if len(got) != len(want) {
					t.Fatalf("NextBatch returned %d items, model %d", len(got), len(want))
				}
				for j := range got {
					if got[j].Req.ID != want[j].id || got[j].Retries != want[j].retries {
						t.Fatalf("NextBatch at %d: got (id=%d retries=%d), model (id=%d retries=%d)",
							j, got[j].Req.ID, got[j].Retries, want[j].id, want[j].retries)
					}
				}
			case 4: // serve
				idb, ok := next(&i)
				if !ok {
					return
				}
				id := fleet.RequestID(idb % 16)
				got := q.MarkServed(id, now)
				want := m.markServed(id)
				if got != want {
					t.Fatalf("MarkServed(%d) = %v, model %v", id, got, want)
				}
			}
			// Invariants after every op.
			if q.Len() != len(m.items) {
				t.Fatalf("Len = %d, model %d", q.Len(), len(m.items))
			}
			snap := q.Snapshot()
			want := m.sorted()
			for j := range snap {
				if snap[j].Req.ID != want[j].id {
					t.Fatalf("Snapshot order at %d: got id %d, model id %d", j, snap[j].Req.ID, want[j].id)
				}
				if j > 0 {
					prev, cur := snap[j-1], snap[j]
					if prev.pickupDeadline > cur.pickupDeadline ||
						(prev.pickupDeadline == cur.pickupDeadline && prev.Req.ID >= cur.Req.ID) {
						t.Fatalf("Snapshot not in (deadline, ID) order at %d", j)
					}
				}
			}
			st := q.Stats()
			ms := m.stats
			ms.Depth = len(m.items)
			ms.Capacity = capacity
			if st != ms {
				t.Fatalf("Stats = %+v, model %+v", st, ms)
			}
			if st.Enqueued != int64(st.Depth)+st.Served+st.Expired {
				t.Fatalf("conservation broken: enqueued %d != depth %d + served %d + expired %d",
					st.Enqueued, st.Depth, st.Served, st.Expired)
			}
		}
	})
}
