// Durable state for the dispatch layer: deterministic capture and
// restore of everything a Dispatcher owns that cannot be recomputed from
// the replay header — the fleet (positions, schedules, seat accounting),
// the partition-index rows (arrival times are ULP-sensitive and carried
// verbatim), the shared mobility clusters (endpoint sums are
// accumulation-order-dependent and carried verbatim), the cruise
// sampler's stream position, and the pending queue(s). Derived state
// (route caches, leg costs, shard ownership, Scheme's last-indexed
// partitions) is rebuilt: each is a pure function of the restored fields
// at an event boundary.
//
// Restore always targets a freshly constructed, empty dispatcher — the
// WAL records every state-changing event, so recovery builds a virgin
// world from the header and lays the snapshot on top. Deterministic
// counters are not part of DurableState; the host restores them into the
// registry from the snapshot's counter table.
package match

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/index"
	"repro/internal/mobcluster"
)

// RequestResolver maps request IDs to the host's restored Request
// instances, so every schedule, queue, and membership reference aliases
// the same object.
type RequestResolver func(fleet.RequestID) (*fleet.Request, bool)

// TaxiIndexRows is one taxi's partition-index rows (in its owner shard's
// index, for a sharded dispatcher).
type TaxiIndexRows struct {
	Taxi int64       `json:"taxi"`
	Rows []index.Row `json:"rows,omitempty"`
}

// DurableState is a dispatcher snapshot: taxis sorted by ID, their index
// rows, the cluster set, and the cruise sampler position.
type DurableState struct {
	Taxis       []fleet.TaxiState `json:"taxis,omitempty"`
	Index       []TaxiIndexRows   `json:"index,omitempty"`
	Clusters    mobcluster.State  `json:"clusters"`
	CruiseDraws int64             `json:"cruise_draws,omitempty"`
}

// QueueItemState is one parked request. The heap key (pickup deadline)
// is recomputed from the request at restore time, exactly as Push
// computed it.
type QueueItemState struct {
	Req        int64   `json:"req"`
	EnqueuedAt float64 `json:"enqueued_at"`
	Retries    int     `json:"retries,omitempty"`
}

// PoolState is a pending-pool snapshot: the parked items and one
// QueueStats per underlying queue (a single entry for a PendingQueue,
// one per shard for a QueueGroup).
type PoolState struct {
	Items []QueueItemState `json:"items,omitempty"`
	Stats []QueueStats     `json:"stats"`
}

// CaptureDurable snapshots the engine's durable state. The caller must
// hold the event boundary: no concurrent dispatch, commit, or advance.
func (e *Engine) CaptureDurable() *DurableState {
	st := &DurableState{
		Clusters:    e.clusters.CaptureState(),
		CruiseDraws: e.cruise.drawCount(),
	}
	e.mu.RLock()
	taxis := make([]*fleet.Taxi, 0, len(e.taxis))
	for _, t := range e.taxis {
		taxis = append(taxis, t)
	}
	e.mu.RUnlock()
	sort.Slice(taxis, func(i, j int) bool { return taxis[i].ID < taxis[j].ID })
	for _, t := range taxis {
		st.Taxis = append(st.Taxis, t.DurableState())
		st.Index = append(st.Index, TaxiIndexRows{Taxi: t.ID, Rows: e.pindex.RowsOf(t.ID)})
	}
	return st
}

// RestoreDurable loads a snapshot into a freshly constructed engine and
// returns the restored taxis sorted by ID. It must not be used on an
// engine that has already registered taxis: restore does not clear, it
// lays state onto zero state.
func (e *Engine) RestoreDurable(st *DurableState, resolve RequestResolver) ([]*fleet.Taxi, error) {
	if st == nil {
		return nil, nil
	}
	if e.NumTaxis() != 0 {
		return nil, fmt.Errorf("match: RestoreDurable on a non-empty dispatcher")
	}
	rows := indexRowsByTaxi(st.Index)
	out := make([]*fleet.Taxi, 0, len(st.Taxis))
	for _, ts := range st.Taxis {
		t, err := fleet.RestoreTaxi(e.g, ts, resolve)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.taxis[t.ID] = t
		e.mu.Unlock()
		e.pindex.RestoreRows(t.ID, rows[t.ID])
		out = append(out, t)
	}
	if err := e.clusters.RestoreState(st.Clusters); err != nil {
		return nil, err
	}
	if err := e.cruise.fastForward(st.CruiseDraws); err != nil {
		return nil, err
	}
	return out, nil
}

// CaptureDurable snapshots the sharded dispatcher. Clusters and the
// cruise sampler are shared across shards and captured once; each taxi's
// index rows come from its owner shard's index.
func (se *ShardedEngine) CaptureDurable() *DurableState {
	st := &DurableState{
		Clusters:    se.shards[0].clusters.CaptureState(),
		CruiseDraws: se.shards[0].cruise.drawCount(),
	}
	type rec struct {
		t  *fleet.Taxi
		sh *Engine
	}
	var all []rec
	for _, sh := range se.shards {
		sh.mu.RLock()
		for _, t := range sh.taxis {
			all = append(all, rec{t, sh})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t.ID < all[j].t.ID })
	for _, r := range all {
		st.Taxis = append(st.Taxis, r.t.DurableState())
		st.Index = append(st.Index, TaxiIndexRows{Taxi: r.t.ID, Rows: r.sh.pindex.RowsOf(r.t.ID)})
	}
	return st
}

// RestoreDurable loads a snapshot into a freshly constructed sharded
// dispatcher. Shard ownership is not serialized: at every event boundary
// a taxi's owner is the territorial shard of its position (ReindexTaxi
// migrates on the border crossing itself), so ownership is recomputed
// from the restored positions.
func (se *ShardedEngine) RestoreDurable(st *DurableState, resolve RequestResolver) ([]*fleet.Taxi, error) {
	if st == nil {
		return nil, nil
	}
	if se.NumTaxis() != 0 {
		return nil, fmt.Errorf("match: RestoreDurable on a non-empty dispatcher")
	}
	rows := indexRowsByTaxi(st.Index)
	out := make([]*fleet.Taxi, 0, len(st.Taxis))
	for _, ts := range st.Taxis {
		t, err := fleet.RestoreTaxi(se.pt.Graph(), ts, resolve)
		if err != nil {
			return nil, err
		}
		s := se.shardAt(t.At())
		sh := se.shards[s]
		sh.mu.Lock()
		sh.taxis[t.ID] = t
		sh.mu.Unlock()
		sh.pindex.RestoreRows(t.ID, rows[t.ID])
		se.mu.Lock()
		se.owner[t.ID] = s
		se.mu.Unlock()
		out = append(out, t)
	}
	for i := range se.shards {
		se.ins[i].taxis.Set(float64(se.shards[i].NumTaxis()))
	}
	if err := se.shards[0].clusters.RestoreState(st.Clusters); err != nil {
		return nil, err
	}
	if err := se.shards[0].cruise.fastForward(st.CruiseDraws); err != nil {
		return nil, err
	}
	return out, nil
}

func indexRowsByTaxi(idx []TaxiIndexRows) map[int64][]index.Row {
	m := make(map[int64][]index.Row, len(idx))
	for _, r := range idx {
		m[r.Taxi] = r.Rows
	}
	return m
}

// RestoreIndexed re-seeds the scheme's last-indexed-partition map after
// a restore. At every event boundary the map holds each taxi's current
// partition (AddTaxi, commits, and border crossings all refresh it), so
// it is recomputed rather than serialized.
func (s *Scheme) RestoreIndexed(taxis []*fleet.Taxi) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range taxis {
		s.lastIndexed[t.ID] = s.Partitioning().PartitionOf(t.At())
	}
}

// CaptureDurable snapshots the queue: items in (pickup deadline, request
// ID) order plus the lifecycle counters verbatim.
func (q *PendingQueue) CaptureDurable() PoolState {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := PoolState{Stats: []QueueStats{q.stats}}
	for _, it := range q.sortedLocked() {
		st.Items = append(st.Items, QueueItemState{
			Req:        int64(it.Req.ID),
			EnqueuedAt: it.EnqueuedAt,
			Retries:    it.Retries,
		})
	}
	return st
}

// RestoreDurable loads a snapshot into a freshly constructed queue. The
// mtshare_match_queue_* counters are deterministic series restored by
// the host through the registry; only the depth gauge is refreshed here.
func (q *PendingQueue) RestoreDurable(st PoolState, resolve RequestResolver) error {
	if len(st.Stats) != 1 {
		return fmt.Errorf("match: queue snapshot has %d stats entries, want 1", len(st.Stats))
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.items.Len() > 0 || q.stats.Enqueued > 0 {
		return fmt.Errorf("match: RestoreDurable on a non-empty queue")
	}
	if st.Stats[0].Capacity != q.capacity {
		return fmt.Errorf("match: queue snapshot capacity %d, configured %d", st.Stats[0].Capacity, q.capacity)
	}
	for _, is := range st.Items {
		req, ok := resolve(fleet.RequestID(is.Req))
		if !ok {
			return fmt.Errorf("match: queued request %d unknown", is.Req)
		}
		it := &PendingItem{
			Req:            req,
			EnqueuedAt:     is.EnqueuedAt,
			Retries:        is.Retries,
			pickupDeadline: req.PickupDeadline(q.speedMps).Seconds(),
		}
		heap.Push(&q.items, it)
		q.byID[req.ID] = it
	}
	stats := st.Stats[0]
	stats.Depth = 0 // Stats() derives depth live
	q.stats = stats
	q.setDepthLocked()
	return nil
}

// CaptureDurable snapshots the sharded pool: each shard queue's items
// (already deterministically ordered) concatenated in shard order, with
// one stats entry per shard.
func (g *QueueGroup) CaptureDurable() PoolState {
	g.mu.Lock()
	defer g.mu.Unlock()
	var st PoolState
	for _, q := range g.queues {
		qs := q.CaptureDurable()
		st.Items = append(st.Items, qs.Items...)
		st.Stats = append(st.Stats, qs.Stats[0])
	}
	return st
}

// RestoreDurable loads a snapshot, routing each item back to its home
// shard's queue (a pure function of the request's pickup location, so
// the layout is reproduced exactly).
func (g *QueueGroup) RestoreDurable(st PoolState, resolve RequestResolver) error {
	if len(st.Stats) != len(g.queues) {
		return fmt.Errorf("match: queue snapshot has %d stats entries, want %d shards", len(st.Stats), len(g.queues))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	per := make([][]QueueItemState, len(g.queues))
	for _, is := range st.Items {
		req, ok := resolve(fleet.RequestID(is.Req))
		if !ok {
			return fmt.Errorf("match: queued request %d unknown", is.Req)
		}
		s := g.se.HomeShard(req)
		per[s] = append(per[s], is)
	}
	for i, q := range g.queues {
		if err := q.RestoreDurable(PoolState{Items: per[i], Stats: st.Stats[i : i+1]}, resolve); err != nil {
			return err
		}
	}
	return nil
}
