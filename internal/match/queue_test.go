package match

import (
	"context"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// queueRequest builds a request whose pickup deadline is exactly pd
// seconds (delivery deadline = pd + direct travel time).
func queueRequest(id int64, pd, speed float64) *fleet.Request {
	direct := 1000.0
	return &fleet.Request{
		ID:           fleet.RequestID(id),
		Origin:       0,
		Dest:         1,
		Deadline:     time.Duration((pd + direct/speed) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
	}
}

func TestPendingQueueOrderAndBackpressure(t *testing.T) {
	const speed = 10.0
	q := NewPendingQueue(3, speed).InstrumentWith(obs.NewRegistry())
	// Push out of deadline order; batches must come back sorted by
	// (pickup deadline, request ID).
	if !q.Push(queueRequest(3, 300, speed), 0).Accepted() ||
		!q.Push(queueRequest(1, 100, speed), 0).Accepted() ||
		!q.Push(queueRequest(2, 100, speed), 0).Accepted() {
		t.Fatal("push rejected below capacity")
	}
	// Full: explicit backpressure, named as such.
	if got := q.Push(queueRequest(4, 50, speed), 0); got != PushRejectedFull {
		t.Fatalf("push past capacity = %v, want PushRejectedFull", got)
	}
	// Double-push of a parked request is a no-op, not a reject.
	if !q.Push(queueRequest(1, 100, speed), 0).Accepted() {
		t.Fatal("re-push of parked request rejected")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	batch := q.NextBatch()
	ids := make([]int64, len(batch))
	for i, it := range batch {
		ids[i] = int64(it.Req.ID)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("batch order = %v, want [1 2 3]", ids)
	}
	if batch[0].Retries != 1 {
		t.Fatalf("Retries = %d after one batch", batch[0].Retries)
	}
	st := q.Stats()
	if st.Enqueued != 3 || st.Rejected != 1 || st.Retries != 3 || st.Depth != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPendingQueueExpiryIsStrict(t *testing.T) {
	const speed = 10.0
	q := NewPendingQueue(8, speed)
	q.Push(queueRequest(1, 100, speed), 0)
	q.Push(queueRequest(2, 200, speed), 0)
	// Exactly at request 1's pickup deadline nothing expires — the
	// deadline instant is still dispatchable.
	if exp := q.ExpireBefore(100); len(exp) != 0 {
		t.Fatalf("expired %d at the exact deadline", len(exp))
	}
	// Strictly past it, request 1 (and only it) is evicted.
	exp := q.ExpireBefore(100.5)
	if len(exp) != 1 || exp[0].Req.ID != 1 {
		t.Fatalf("expired = %v", exp)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after expiry", q.Len())
	}
	// A push whose pickup deadline already passed is refused outright,
	// reporting expiry — not backpressure.
	if got := q.Push(queueRequest(3, 50, speed), 100.5); got != PushRejectedExpired {
		t.Fatalf("already-expired push = %v, want PushRejectedExpired", got)
	}
	if st := q.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d", st.Expired)
	}
}

func TestPendingQueueMarkServed(t *testing.T) {
	const speed = 10.0
	reg := obs.NewRegistry()
	q := NewPendingQueue(8, speed).InstrumentWith(reg)
	q.Push(queueRequest(1, 500, speed), 10)
	if !q.MarkServed(1, 40) {
		t.Fatal("MarkServed missed a parked request")
	}
	if q.MarkServed(1, 40) {
		t.Fatal("MarkServed on an absent request reported true")
	}
	st := q.Stats()
	if st.Served != 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The wait histogram saw the 30 s queued-to-matched delay.
	h := reg.Histogram("mtshare_match_queue_wait_seconds").Snapshot()
	if h.Count != 1 || h.Sum != 30 {
		t.Fatalf("wait histogram = %+v", h)
	}
	if g := reg.Gauge("mtshare_match_queue_depth").Value(); g != 0 {
		t.Fatalf("depth gauge = %v", g)
	}
}

func TestDispatchBatchServesAndResolvesConflicts(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	// One taxi on the corridor both requests travel; the batch's first
	// commit takes it, the second conflicts and re-dispatches — sharing
	// the same taxi with a revised schedule.
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.2, 0.2))
	env.e.AddTaxi(taxi, now)
	r1 := env.request(1, env.vertexNear(t, 0.2, 0.2), env.vertexNear(t, 0.8, 0.8), now, 1.5)
	r2 := env.request(2, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.7), now, 3.0)

	out := env.e.DispatchBatch(context.Background(), []*fleet.Request{r2, r1}, now, false)
	if len(out) != 2 {
		t.Fatalf("outcomes = %d", len(out))
	}
	// Commit order is (pickup deadline, ID): r1 has the tighter slack.
	if out[0].Req.ID != 1 || out[1].Req.ID != 2 {
		t.Fatalf("commit order = [%d %d]", out[0].Req.ID, out[1].Req.ID)
	}
	if !out[0].Served || out[0].Conflict {
		t.Fatalf("first outcome = %+v", out[0])
	}
	if !out[1].Served || !out[1].Conflict {
		t.Fatalf("second outcome: served=%v conflict=%v, want a resolved conflict", out[1].Served, out[1].Conflict)
	}
	if len(taxi.Schedule()) != 4 {
		t.Fatalf("schedule events = %d, want both requests aboard", len(taxi.Schedule()))
	}
	st := env.e.Stats()
	if st.BatchRequests != 2 || st.BatchConflicts != 1 {
		t.Fatalf("batch stats = %d requests, %d conflicts", st.BatchRequests, st.BatchConflicts)
	}
}

// scriptedBatchDispatcher drives runBatch with a scripted evaluation
// sequence: each DispatchContext call for a request pops its next taxi
// choice, and every commit succeeds. It pins the phase-2 protocol itself
// — conflict detection, re-dispatch, and conflict accounting — without
// the geometry of a real engine in the way.
type scriptedBatchDispatcher struct {
	choices map[fleet.RequestID][]*fleet.Taxi
	commits []Assignment
}

func (d *scriptedBatchDispatcher) DispatchContext(_ context.Context, req *fleet.Request, _ float64, _ bool) (Assignment, bool) {
	next := d.choices[req.ID]
	if len(next) == 0 {
		return Assignment{Req: req}, false
	}
	taxi := next[0]
	d.choices[req.ID] = next[1:]
	return Assignment{Req: req, Taxi: taxi}, true
}

func (d *scriptedBatchDispatcher) Commit(a Assignment, _ float64) error {
	d.commits = append(d.commits, a)
	return nil
}

func (d *scriptedBatchDispatcher) Config() Config { return DefaultConfig() }

// TestDispatchBatchChainedConflictAccounting pins phase 2's semantics for
// a chained conflict — three requests, two taxis: A commits taxi 1, B
// conflicts on taxi 1 and re-dispatches to taxi 2, then C conflicts on
// taxi 2 and its re-dispatch lands on the already-taken taxi 1. The
// chained landing still commits (the re-evaluation saw taxi 1's live
// post-commit schedule, so the insertion shares the ride — no reservation
// is lost), and it counts as a second conflict event for C: three events
// total, not the two that per-outcome counting would report.
func TestDispatchBatchChainedConflictAccounting(t *testing.T) {
	t1 := &fleet.Taxi{ID: 1, Capacity: 3}
	t2 := &fleet.Taxi{ID: 2, Capacity: 3}
	mkReq := func(id int64, pd float64) *fleet.Request {
		// DirectMeters is zero, so the pickup deadline equals Deadline.
		return &fleet.Request{ID: fleet.RequestID(id), Deadline: time.Duration(pd * float64(time.Second)), Passengers: 1}
	}
	rA, rB, rC := mkReq(1, 100), mkReq(2, 200), mkReq(3, 300)
	d := &scriptedBatchDispatcher{choices: map[fleet.RequestID][]*fleet.Taxi{
		rA.ID: {t1},
		rB.ID: {t1, t2}, // conflicts on taxi 1, re-dispatches to taxi 2
		rC.ID: {t2, t1}, // conflicts on taxi 2, chains onto taken taxi 1
	}}
	conflicts := 0
	out := runBatch(context.Background(), d, []*fleet.Request{rC, rA, rB}, 0, false, batchHooks{
		evaluated: func(*fleet.Request) {},
		conflict:  func(*BatchOutcome) { conflicts++ },
	})
	if len(out) != 3 || out[0].Req.ID != 1 || out[1].Req.ID != 2 || out[2].Req.ID != 3 {
		t.Fatalf("commit order = %v", out)
	}
	for i, o := range out {
		if !o.Served {
			t.Fatalf("outcome %d unserved: %+v", i, o)
		}
	}
	if out[0].Conflict || !out[1].Conflict || !out[2].Conflict {
		t.Fatalf("conflict flags = [%v %v %v], want [false true true]",
			out[0].Conflict, out[1].Conflict, out[2].Conflict)
	}
	if got := []int64{out[0].Assignment.Taxi.ID, out[1].Assignment.Taxi.ID, out[2].Assignment.Taxi.ID}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("winning taxis = %v, want [1 2 1]", got)
	}
	if len(d.commits) != 3 {
		t.Fatalf("commits = %d, want 3 (the chained landing must still commit)", len(d.commits))
	}
	if conflicts != 3 {
		t.Fatalf("conflict events = %d, want 3 (B's conflict + C's conflict + C's chained landing)", conflicts)
	}
}

func TestDispatchBatchDeterministicAcrossParallelism(t *testing.T) {
	type result struct {
		id     fleet.RequestID
		taxi   int64
		served bool
		detour float64
	}
	run := func(par int) []result {
		env := newTestEnv(t, func(c *Config) { c.Parallelism = par })
		now := 0.0
		for i := int64(1); i <= 6; i++ {
			f := 0.2 + 0.1*float64(i)
			env.e.AddTaxi(fleet.NewTaxi(env.g, i, 3, env.vertexNear(t, f, f)), now)
		}
		var reqs []*fleet.Request
		for i := int64(1); i <= 8; i++ {
			f := 0.15 + 0.08*float64(i)
			reqs = append(reqs, env.request(i, env.vertexNear(t, f, 0.5), env.vertexNear(t, 0.9, 0.5), now, 1.4+0.05*float64(i)))
		}
		out := env.e.DispatchBatch(context.Background(), reqs, now, false)
		res := make([]result, len(out))
		for i, o := range out {
			res[i] = result{id: o.Req.ID, served: o.Served}
			if o.Served {
				res[i].taxi = o.Assignment.Taxi.ID
				res[i].detour = o.Assignment.DetourMeters
			}
		}
		return res
	}
	seq := run(1)
	for _, par := range []int{2, 4, 8} {
		if got := run(par); len(got) != len(seq) || !equalResults(got, seq) {
			t.Fatalf("parallelism %d diverged:\n got %+v\nwant %+v", par, got, seq)
		}
	}
}

func equalResults[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
