package match

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/roadnet"
)

// runCHWorkload dispatches and commits lbWorkload on a fresh engine with
// the contraction-hierarchy backend on or off, returning the outcome
// trace plus the router's backend counters.
func runCHWorkload(t *testing.T, disable bool, parallelism int) ([]dispatchTrace, roadnet.RouterStats) {
	t.Helper()
	env := newTestEnv(t, func(c *Config) {
		c.DisableCH = disable
		c.Parallelism = parallelism
	})
	placeFleet(env, 10, 42)
	reqs := lbWorkload(env, 80, 11)
	out := make([]dispatchTrace, len(reqs))
	for i, r := range reqs {
		now := r.ReleaseAt.Seconds()
		a, ok := env.e.Dispatch(r, now, false)
		out[i] = dispatchTrace{served: ok}
		if !ok {
			continue
		}
		out[i].taxiID = a.Taxi.ID
		out[i].detour = math.Float64bits(a.DetourMeters)
		out[i].events = a.Events
		if err := env.e.Commit(a, now); err != nil {
			t.Fatalf("request %d: commit: %v", r.ID, err)
		}
	}
	return out, env.e.Router().Stats()
}

// TestDispatchCHLossless is the headline guarantee of the hierarchy:
// dispatch with the CH backend is bit-identical to bidirectional-Dijkstra
// evaluation — same served set, same winning taxis, same detours — at
// every parallelism level, while actually routing through the hierarchy.
func TestDispatchCHLossless(t *testing.T) {
	base, baseStats := runCHWorkload(t, true, 1)
	if baseStats.CHQueries != 0 {
		t.Fatalf("disabled CH still answered %d queries", baseStats.CHQueries)
	}
	if baseStats.BidirQueries == 0 {
		t.Fatal("CH-off run never used the bidirectional fallback; test is vacuous")
	}
	for _, par := range []int{1, 4} {
		got, st := runCHWorkload(t, false, par)
		if st.CHQueries == 0 {
			t.Fatalf("par=%d: CH enabled but never queried; test is vacuous", par)
		}
		if st.BidirQueries != 0 {
			t.Fatalf("par=%d: CH enabled yet %d queries fell back to bidirectional Dijkstra", par, st.BidirQueries)
		}
		served := 0
		for i := range base {
			if base[i].served != got[i].served {
				t.Fatalf("par=%d req %d: served %v with CH, %v without", par, i, got[i].served, base[i].served)
			}
			if !base[i].served {
				continue
			}
			served++
			if base[i].taxiID != got[i].taxiID || base[i].detour != got[i].detour {
				t.Fatalf("par=%d req %d: assignment differs (taxi %d/%d, detour bits %x/%x)",
					par, i, got[i].taxiID, base[i].taxiID, got[i].detour, base[i].detour)
			}
			if len(base[i].events) != len(got[i].events) {
				t.Fatalf("par=%d req %d: schedule shape differs", par, i)
			}
		}
		if served == 0 {
			t.Fatal("workload served nothing; test is vacuous")
		}
	}
}

// TestDisableCHKnob pins the config knob: disabling skips hierarchy
// construction entirely and every dispatch path still works off the
// bidirectional fallback.
func TestDisableCHKnob(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.DisableCH = true })
	if env.e.Router().CH() != nil {
		t.Fatal("hierarchy built despite DisableCH")
	}
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	a, ok := env.e.Dispatch(req, 0, false)
	if !ok {
		t.Fatal("dispatch failed with CH disabled")
	}
	if err := env.e.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPreBuiltCHIsUsed pins Config.CH: an engine handed a pre-built
// hierarchy must attach that instance instead of building its own.
func TestPreBuiltCHIsUsed(t *testing.T) {
	var shared *roadnet.CH
	env := newTestEnv(t, nil)
	shared = roadnet.BuildCH(env.g, 1)
	cfg := env.e.Config()
	cfg.CH = shared
	e2, err := NewEngine(env.pt, env.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Router().CH() != shared {
		t.Fatal("engine built a fresh hierarchy instead of attaching Config.CH")
	}
}

// benchCH is the shared contraction hierarchy over bigWorld's graph; the
// build is deterministic and immutable, so every benchmark reuses it.
var benchCH struct {
	once sync.Once
	ch   *roadnet.CH
}

func bigWorldCH(b *testing.B) *roadnet.CH {
	b.Helper()
	g, _, _ := bigWorld(b)
	benchCH.once.Do(func() { benchCH.ch = roadnet.BuildCH(g, 0) })
	return benchCH.ch
}

// BenchmarkDispatchCH measures one Dispatch call on the saturated
// 10k-vertex city with the contraction-hierarchy backend on and off. Both
// variants serve identical outcomes (the CH is exact); the ch=off rows
// are the bidirectional-Dijkstra baseline the speedup is measured
// against. The cold-path router queries dominate when the taxi fleet
// keeps moving, which is what the probe workload recreates.
func BenchmarkDispatchCH(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"ch=on", false}, {"ch=off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			g, spx, pt := bigWorld(b)
			cfg := DefaultConfig()
			cfg.SearchRangeMeters = 6000
			cfg.RouterCacheTrees = 4096
			cfg.DisableCH = tc.disable
			if !tc.disable {
				cfg.CH = bigWorldCH(b)
			}
			e, err := NewEngine(pt, spx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			env := &testEnv{g: g, spx: spx, pt: pt, e: e}
			placeFleet(env, 400, 42)
			preload := seededWorkload(env, 400, 7)
			var now float64
			for _, r := range preload {
				now = r.ReleaseAt.Seconds()
				if a, ok := e.Dispatch(r, now, false); ok {
					if err := e.Commit(a, now); err != nil {
						b.Fatal(err)
					}
				}
			}
			probeRNG := rand.New(rand.NewSource(99))
			nv := g.NumVertices()
			probes := make([]*fleet.Request, 0, 128)
			for len(probes) < cap(probes) {
				o := roadnet.VertexID(probeRNG.Intn(nv))
				d := roadnet.VertexID(probeRNG.Intn(nv))
				if o == d || math.IsInf(e.Router().Cost(o, d), 1) {
					continue
				}
				probes = append(probes, env.request(int64(10000+len(probes)), o, d, now, 1.15))
			}
			s0 := e.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Dispatch(probes[i%len(probes)], now, false)
			}
			b.StopTimer()
			s1 := e.Stats()
			b.ReportMetric((float64(s1.SchedulingNanos-s0.SchedulingNanos))/float64(b.N), "sched-ns/op")
			rs := e.Router().Stats()
			if tc.disable && rs.CHQueries != 0 {
				b.Fatalf("ch=off run answered %d CH queries", rs.CHQueries)
			}
			if !tc.disable && rs.CHQueries == 0 {
				b.Fatal("ch=on run never queried the hierarchy; benchmark is vacuous")
			}
		})
	}
}
