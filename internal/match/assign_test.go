package match

import (
	"context"
	"math"
	"testing"

	"repro/internal/fleet"
)

func TestSolveMinCostAssignment(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		cost [][]float64
		want []int
	}{
		{
			name: "identity",
			cost: [][]float64{{1, 5}, {5, 1}},
			want: []int{0, 1},
		},
		{
			name: "crossed is cheaper",
			cost: [][]float64{{10, 1}, {1, 10}},
			want: []int{1, 0},
		},
		{
			// Greedy would give row 0 its best column 0 (cost 1) and leave
			// row 1 unmatched; max cardinality forces the swap.
			name: "cardinality beats cost",
			cost: [][]float64{{1, 3}, {2, inf}},
			want: []int{1, 0},
		},
		{
			name: "infeasible row stays unmatched",
			cost: [][]float64{{1, inf}, {inf, inf}},
			want: []int{0, -1},
		},
		{
			// Both assignments cost 4; ties resolve to the lowest column
			// for the earliest row.
			name: "tie breaks to lowest column first",
			cost: [][]float64{{2, 2}, {2, 2}},
			want: []int{0, 1},
		},
		{
			name: "more columns than rows",
			cost: [][]float64{{7, 3, 9}},
			want: []int{1},
		},
		{
			name: "more rows than columns",
			cost: [][]float64{{4}, {2}, {3}},
			want: []int{-1, 0, -1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := solveMinCostAssignment(tc.cost)
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("assignment = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// assignWorld builds the contention scenario the global round exists for:
// two taxis, two requests, where greedy starves one request. Request 1
// (earlier pickup deadline, so it commits first) can be served by either
// taxi but prefers the nearer taxi 1; request 2's tight geometry makes
// taxi 1 its only option, and its travel direction opposes request 1's so
// no shared schedule is feasible. Greedy hands taxi 1 to request 1 and
// strands request 2; the global solve routes request 1 to taxi 2.
func assignWorld(t *testing.T, env *testEnv, e *Engine) (reqs []*fleet.Request) {
	t.Helper()
	e.AddTaxi(fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.32, 0.32)), 0)
	e.AddTaxi(fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.46, 0.46)), 0)
	r1 := env.request(1, env.vertexNear(t, 0.30, 0.30), env.vertexNear(t, 0.75, 0.75), 0, 1.5)
	r2 := env.request(2, env.vertexNear(t, 0.15, 0.15), env.vertexNear(t, 0.0, 0.0), 0, 2.8)
	return []*fleet.Request{r1, r2}
}

func TestDispatchBatchAssignBeatsGreedyUnderContention(t *testing.T) {
	env := newTestEnv(t, nil)
	greedy := env.e
	cfg := greedy.Config()
	cfg.BatchAssign = true
	global, err := NewEngine(env.pt, env.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	servedCount := func(out []BatchOutcome) int {
		n := 0
		for _, o := range out {
			if o.Served {
				n++
			}
		}
		return n
	}
	outG := greedy.DispatchBatch(ctx, assignWorld(t, env, greedy), 0, false)
	outA := global.DispatchBatch(ctx, assignWorld(t, env, global), 0, false)

	// The scenario must actually exercise the starvation: greedy serves
	// request 1 on taxi 1 and strands request 2.
	if servedCount(outG) != 1 || !outG[0].Served || outG[0].Req.ID != 1 || outG[0].Assignment.Taxi.ID != 1 {
		t.Fatalf("greedy round = %+v, want only request 1 served on taxi 1", outG)
	}
	if servedCount(outA) != 2 {
		t.Fatalf("global round served %d of 2: %+v", servedCount(outA), outA)
	}
	byID := map[fleet.RequestID]int64{}
	for _, o := range outA {
		byID[o.Req.ID] = o.Assignment.Taxi.ID
	}
	if byID[1] != 2 || byID[2] != 1 {
		t.Fatalf("global pairing = %v, want request 1 on taxi 2, request 2 on taxi 1", byID)
	}
	st := global.Stats()
	if st.BatchAssignRounds != 1 || st.BatchAssignFallbacks != 0 || st.BatchAssignOptions < 3 {
		t.Fatalf("assign stats = %+v", st)
	}
}

// TestDispatchBatchAssignFallbackMatchesGreedy pins the degenerate-graph
// fallback: with no contested taxi the global round must commit exactly
// what the greedy round would, and count itself as a fallback.
func TestDispatchBatchAssignFallbackMatchesGreedy(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.SearchRangeMeters = 1200 })
	greedy := env.e
	cfg := greedy.Config()
	cfg.BatchAssign = true
	global, err := NewEngine(env.pt, env.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Opposite corners, search range too small for any taxi to appear in
	// both requests' candidate discs.
	world := func(e *Engine) []*fleet.Request {
		e.AddTaxi(fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.2, 0.2)), 0)
		e.AddTaxi(fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.8, 0.8)), 0)
		return []*fleet.Request{
			env.request(1, env.vertexNear(t, 0.22, 0.22), env.vertexNear(t, 0.4, 0.4), 0, 1.6),
			env.request(2, env.vertexNear(t, 0.78, 0.78), env.vertexNear(t, 0.6, 0.6), 0, 1.6),
		}
	}
	ctx := context.Background()
	outG := greedy.DispatchBatch(ctx, world(greedy), 0, false)
	outA := global.DispatchBatch(ctx, world(global), 0, false)
	if len(outG) != len(outA) {
		t.Fatalf("outcome counts diverge: %d vs %d", len(outG), len(outA))
	}
	anyServed := false
	for i := range outG {
		g, a := outG[i], outA[i]
		if g.Req.ID != a.Req.ID || g.Served != a.Served || g.Conflict != a.Conflict {
			t.Fatalf("pos %d: greedy %+v vs global %+v", i, g, a)
		}
		if g.Served {
			anyServed = true
			if g.Assignment.Taxi.ID != a.Assignment.Taxi.ID ||
				math.Float64bits(g.Assignment.DetourMeters) != math.Float64bits(a.Assignment.DetourMeters) {
				t.Fatalf("pos %d winners diverge: taxi %d/%v vs %d/%v", i,
					g.Assignment.Taxi.ID, g.Assignment.DetourMeters,
					a.Assignment.Taxi.ID, a.Assignment.DetourMeters)
			}
		}
	}
	if !anyServed {
		t.Fatal("fallback differential is vacuous: nothing served")
	}
	st := global.Stats()
	if st.BatchAssignRounds != 1 || st.BatchAssignFallbacks != 1 {
		t.Fatalf("assign stats = %+v, want one round counted as fallback", st)
	}
}

// TestDispatchBatchAssignDeterministic runs the identical saturated batch
// through the global round at parallelism 1/2/4 on the single engine and
// on 2- and 3-shard dispatchers: every configuration must produce the
// bit-identical outcome sequence, and the sealed batch-assign counters
// must agree across topologies.
func TestDispatchBatchAssignDeterministic(t *testing.T) {
	env := newTestEnv(t, nil)
	type sig struct {
		id       fleet.RequestID
		served   bool
		conflict bool
		taxi     int64
		detour   uint64
	}
	run := func(par, shards int) ([]sig, EngineStats) {
		cfg := DefaultConfig()
		cfg.SearchRangeMeters = 3000
		cfg.BatchAssign = true
		cfg.Parallelism = par
		var d Dispatcher
		if shards > 1 {
			cfg.Sharding = ShardingConfig{Shards: shards}
			se, err := NewShardedEngine(env.pt, env.spx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			d = se
		} else {
			e, err := NewEngine(env.pt, env.spx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			d = e
		}
		placeFleetOn(d, env, 8, 21)
		reqs := seededWorkload(env, 20, 13)
		now := reqs[len(reqs)-1].ReleaseAt.Seconds()
		out := d.DispatchBatch(context.Background(), reqs, now, false)
		sigs := make([]sig, len(out))
		for i, o := range out {
			sigs[i] = sig{id: o.Req.ID, served: o.Served, conflict: o.Conflict}
			if o.Served {
				sigs[i].taxi = o.Assignment.Taxi.ID
				sigs[i].detour = math.Float64bits(o.Assignment.DetourMeters)
			}
		}
		var agg EngineStats
		for _, sh := range d.ShardStats() {
			agg.Add(sh.Engine)
		}
		return sigs, agg
	}
	want, wantStats := run(1, 1)
	if wantStats.BatchAssignRounds != 1 || wantStats.BatchAssignFallbacks != 0 {
		t.Fatalf("reference round degenerate (stats %+v) — the differential would be vacuous", wantStats)
	}
	served := 0
	for _, s := range want {
		if s.served {
			served++
		}
	}
	if served == 0 {
		t.Fatal("reference round served nothing — the differential would be vacuous")
	}
	for _, c := range []struct{ par, shards int }{{2, 1}, {4, 1}, {1, 2}, {4, 2}, {1, 3}, {4, 3}} {
		got, gotStats := run(c.par, c.shards)
		if len(got) != len(want) {
			t.Fatalf("par %d shards %d: %d outcomes, want %d", c.par, c.shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("par %d shards %d diverged at pos %d:\n got %+v\nwant %+v",
					c.par, c.shards, i, got[i], want[i])
			}
		}
		if gotStats.BatchAssignRounds != wantStats.BatchAssignRounds ||
			gotStats.BatchAssignOptions != wantStats.BatchAssignOptions ||
			gotStats.BatchAssignFallbacks != wantStats.BatchAssignFallbacks ||
			gotStats.BatchAssignRemainder != wantStats.BatchAssignRemainder {
			t.Fatalf("par %d shards %d: assign counters diverged: %+v vs %+v",
				c.par, c.shards, gotStats, wantStats)
		}
	}
}

// BenchmarkDispatchBatchAssign measures one global-assignment retry round
// over the same saturated queue BenchmarkDispatchQueueBatch uses for the
// greedy protocol, so the two baselines are directly comparable.
func BenchmarkDispatchBatchAssign(b *testing.B) {
	env := newTestEnv(b, func(c *Config) { c.BatchAssign = true })
	reqs := seededWorkload(env, 24, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(env.pt, env.spx, env.e.Config())
		if err != nil {
			b.Fatal(err)
		}
		fresh := &testEnv{g: env.g, spx: env.spx, pt: env.pt, e: e}
		placeFleet(fresh, 12, 42)
		q := NewPendingQueue(len(reqs), e.Config().SpeedMps)
		for _, r := range reqs {
			if !q.Push(r, 0).Accepted() {
				b.Fatalf("request %d rejected at push", r.ID)
			}
		}
		b.StartTimer()
		batch := q.NextBatch()
		rs := make([]*fleet.Request, len(batch))
		for j, it := range batch {
			rs[j] = it.Req
		}
		for _, o := range e.DispatchBatch(context.Background(), rs, 0, false) {
			if o.Served {
				q.MarkServed(o.Req.ID, 0)
			}
		}
	}
}
