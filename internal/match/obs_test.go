package match

import (
	"context"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// TestDispatchIncrementsInstruments asserts that one dispatch+commit
// cycle drives every stage instrument on the registry: the dispatch
// counter, a candidate count, and one observation in each stage
// histogram.
func TestDispatchIncrementsInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestEnv(t, func(c *Config) { c.Metrics = reg })
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)

	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	a, ok := env.e.Dispatch(req, 0, false)
	if !ok {
		t.Fatal("dispatch failed")
	}
	if err := env.e.Commit(a, 0); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"mtshare_match_dispatches_total":  1,
		"mtshare_match_assignments_total": 1,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counters["mtshare_match_candidates_examined_total"]; got < 1 {
		t.Errorf("candidates examined = %d, want >= 1", got)
	}
	wantHistograms := []string{
		"mtshare_match_dispatch_seconds",
		"mtshare_match_candidate_search_seconds",
		"mtshare_match_scheduling_seconds",
		"mtshare_match_leg_build_seconds",
		"mtshare_match_commit_seconds",
	}
	for _, name := range wantHistograms {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
	}

	// An unserved dispatch observes the stages but not the commit.
	empty := newTestEnv(t, nil)
	a2, ok := empty.e.Dispatch(empty.request(2, empty.vertexNear(t, 0.4, 0.4), empty.vertexNear(t, 0.8, 0.8), 0, 1.3), 0, false)
	if ok {
		t.Fatal("dispatch served with no fleet")
	}
	_ = a2
	snap2 := empty.e.Metrics().Snapshot()
	if got := snap2.Counters["mtshare_match_dispatches_total"]; got != 1 {
		t.Errorf("dispatches = %d, want 1", got)
	}
	if got := snap2.Counters["mtshare_match_assignments_total"]; got != 0 {
		t.Errorf("assignments = %d, want 0", got)
	}
	if h := snap2.Histograms["mtshare_match_dispatch_seconds"]; h.Count != 1 {
		t.Errorf("dispatch histogram count = %d, want 1", h.Count)
	}
}

// TestEngineStatsMatchesRegistry asserts the legacy EngineStats view is
// derived from the same registry instruments.
func TestEngineStatsMatchesRegistry(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	if _, ok := env.e.Dispatch(req, 0, false); !ok {
		t.Fatal("dispatch failed")
	}
	st := env.e.Stats()
	snap := env.e.Metrics().Snapshot()
	if st.Dispatches != snap.Counters["mtshare_match_dispatches_total"] {
		t.Errorf("Dispatches %d != counter %d", st.Dispatches, snap.Counters["mtshare_match_dispatches_total"])
	}
	if st.CandidatesExamined != snap.Counters["mtshare_match_candidates_examined_total"] {
		t.Errorf("CandidatesExamined %d != counter %d", st.CandidatesExamined, snap.Counters["mtshare_match_candidates_examined_total"])
	}
	if st.CandidateSearchNanos <= 0 || st.SchedulingNanos <= 0 {
		t.Errorf("stage nanos not derived from histograms: %+v", st)
	}
}

// TestDispatchContextTracing asserts a context-carried tracer samples a
// span tree whose children are the dispatch stages.
func TestDispatchContextTracing(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)

	var roots []*obs.Span
	tr := obs.NewTracer(1, func(sp *obs.Span) { roots = append(roots, sp) })
	ctx := obs.WithTracer(context.Background(), tr)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	if _, ok := env.e.DispatchContext(ctx, req, 0, false); !ok {
		t.Fatal("dispatch failed")
	}
	if len(roots) != 1 {
		t.Fatalf("sampled %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "dispatch" || root.Duration <= 0 {
		t.Fatalf("root = %+v", root)
	}
	stages := map[string]bool{}
	for _, c := range root.Children() {
		stages[c.Name] = true
	}
	for _, want := range []string{"dispatch.candidates", "dispatch.scheduling", "dispatch.legbuild"} {
		if !stages[want] {
			t.Errorf("span tree missing stage %s (got %v)", want, stages)
		}
	}
}

// TestDispatchContextCancellation asserts a cancelled context aborts
// dispatch between stages.
func TestDispatchContextCancellation(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.6)
	if _, ok := env.e.DispatchContext(ctx, req, 0, false); ok {
		t.Fatal("cancelled dispatch reported success")
	}
}
