package match

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// testEnv bundles everything a matching test needs.
type testEnv struct {
	g   *roadnet.Graph
	spx *roadnet.SpatialIndex
	pt  *partition.Partitioning
	e   *Engine
}

func newTestEnv(t testing.TB, cfgMut func(*Config)) *testEnv {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(14, 14))
	if err != nil {
		t.Fatal(err)
	}
	spx := roadnet.NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	center := geo.Midpoint(min, max)
	extent := geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng})
	ds, err := trace.Generate(trace.Workday, trace.GenParams{
		Center: center, ExtentMeters: extent, TripsPerHourPeak: 120,
		UniformFrac: 0.15, MinTripMeters: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(ds.Trips))
	for i, tr := range ds.Trips {
		pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
	}
	params := partition.DefaultParams(12)
	params.KTrans = 5
	pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	e, err := NewEngine(pt, spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{g: g, spx: spx, pt: pt, e: e}
}

// request builds a valid request between two vertices with slack factor
// rho relative to the direct cost.
func (env *testEnv) request(id int64, o, d roadnet.VertexID, releaseSeconds, rho float64) *fleet.Request {
	direct := env.e.Router().Cost(o, d)
	speed := env.e.Config().SpeedMps
	directSec := direct / speed
	return &fleet.Request{
		ID:           fleet.RequestID(id),
		ReleaseAt:    time.Duration(releaseSeconds * float64(time.Second)),
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration((releaseSeconds + directSec*rho) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		OriginPt:     env.g.Point(o),
		DestPt:       env.g.Point(d),
	}
}

// vertexNear returns a vertex near the given fractional position of the
// city bounding box.
func (env *testEnv) vertexNear(t testing.TB, fLat, fLng float64) roadnet.VertexID {
	t.Helper()
	min, max := env.g.Bounds()
	p := geo.Point{
		Lat: min.Lat + fLat*(max.Lat-min.Lat),
		Lng: min.Lng + fLng*(max.Lng-min.Lng),
	}
	v, ok := env.spx.NearestVertex(p)
	if !ok {
		t.Fatal("no vertex")
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.SpeedMps = 0 },
		func(c *Config) { c.SearchRangeMeters = 0 },
		func(c *Config) { c.Lambda = 2 },
		func(c *Config) { c.Epsilon = -1 },
		func(c *Config) { c.HorizonSeconds = 0 },
		func(c *Config) { c.MaxProbAttempts = 0 },
		func(c *Config) { c.ProbSeatThreshold = 1.5 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPartitionFilterKeepsEndpointsAndPrunes(t *testing.T) {
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.1, 0.1)
	v := env.vertexNear(t, 0.9, 0.9)
	kept := env.e.PartitionFilter(u, v)
	if len(kept) == 0 {
		t.Fatal("filter kept nothing")
	}
	has := map[partition.ID]bool{}
	for _, p := range kept {
		has[p] = true
	}
	if !has[env.pt.PartitionOf(u)] || !has[env.pt.PartitionOf(v)] {
		t.Fatal("endpoint partitions dropped")
	}
	if len(kept) >= env.pt.NumPartitions() {
		t.Skipf("filter kept all %d partitions on this layout", len(kept))
	}
}

func TestPartitionFilterRespectsCostRule(t *testing.T) {
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.1, 0.5)
	v := env.vertexNear(t, 0.9, 0.5)
	pa := env.pt.PartitionOf(u)
	pb := env.pt.PartitionOf(v)
	direct := env.pt.LandmarkCost(pa, pb)
	budget := (1 + env.e.Config().Epsilon) * direct
	for _, p := range env.e.PartitionFilter(u, v) {
		if p == pa || p == pb {
			continue
		}
		through := env.pt.LandmarkCost(pa, p) + env.pt.LandmarkCost(p, pb)
		if through > budget+1e-6 {
			t.Fatalf("partition %d violates cost rule: %v > %v", p, through, budget)
		}
	}
}

func TestPartitionFilterCached(t *testing.T) {
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.2, 0.2)
	v := env.vertexNear(t, 0.8, 0.8)
	a := env.e.PartitionFilter(u, v)
	b := env.e.PartitionFilter(u, v)
	if len(a) != len(b) {
		t.Fatal("cache inconsistency")
	}
}

func TestBasicLegIsOptimal(t *testing.T) {
	// Basic legs match the paper's cached-shortest-path evaluation setup.
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.3, 0.3)
	v := env.vertexNear(t, 0.7, 0.6)
	cost, ok := env.e.BasicLegCost(u, v)
	if !ok {
		t.Fatal("no basic leg")
	}
	if best := env.e.Router().Cost(u, v); math.Abs(cost-best) > 1e-9 {
		t.Fatalf("basic leg %v != shortest path %v", cost, best)
	}
	path, pcost, ok := env.e.BasicLegPath(u, v)
	if !ok || math.Abs(pcost-cost) > 1e-9 {
		t.Fatalf("path cost %v vs %v", pcost, cost)
	}
	if actual, err := env.g.PathCost(path); err != nil || math.Abs(actual-cost) > 1e-9 {
		t.Fatalf("path inconsistent: %v, %v", actual, err)
	}
	if c, ok := env.e.BasicLegCost(u, u); !ok || c != 0 {
		t.Fatalf("self leg = %v, %v", c, ok)
	}
}

func TestFilteredLegConsistent(t *testing.T) {
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.3, 0.3)
	v := env.vertexNear(t, 0.7, 0.6)
	cost, ok := env.e.FilteredLegCost(u, v)
	if !ok {
		t.Fatal("no filtered leg")
	}
	path, pcost, ok := env.e.FilteredLegPath(u, v)
	if !ok {
		t.Fatal("no filtered leg path")
	}
	if math.Abs(cost-pcost) > 1e-9 {
		t.Fatalf("cached cost %v != path cost %v", cost, pcost)
	}
	actual, err := env.g.PathCost(path)
	if err != nil || math.Abs(actual-cost) > 1e-9 {
		t.Fatalf("path inconsistent: %v, %v", actual, err)
	}
	// The filtered route can't beat the true shortest path.
	if best := env.e.Router().Cost(u, v); cost < best-1e-6 {
		t.Fatalf("filtered cost %v below optimal %v", cost, best)
	}
	// Self-leg.
	if c, ok := env.e.FilteredLegCost(u, u); !ok || c != 0 {
		t.Fatalf("self leg = %v, %v", c, ok)
	}
}

func TestFilteredLegNearOptimal(t *testing.T) {
	// With epsilon = 1.0 the filtered subgraph should rarely cost much
	// more than the true shortest path.
	env := newTestEnv(t, nil)
	worst, sum, n := 1.0, 0.0, 0
	for i := 0; i < 20; i++ {
		u := env.vertexNear(t, 0.1+0.04*float64(i), 0.2)
		v := env.vertexNear(t, 0.9-0.04*float64(i), 0.8)
		if u == v {
			continue
		}
		cost, ok := env.e.FilteredLegCost(u, v)
		if !ok {
			continue
		}
		best := env.e.Router().Cost(u, v)
		if best <= 0 {
			continue
		}
		ratio := cost / best
		sum += ratio
		n++
		if ratio > worst {
			worst = ratio
		}
	}
	// With only ~12 coarse partitions the direction rule occasionally
	// prunes a partition the optimal path clips; the paper's 150-partition
	// setup is finer. Worst case stays bounded, the mean near-optimal.
	if worst > 1.5 {
		t.Fatalf("filtered routing %vx worse than optimal", worst)
	}
	if n > 0 && sum/float64(n) > 1.15 {
		t.Fatalf("mean filtered-routing overhead %vx", sum/float64(n))
	}
}

func TestCandidateTaxisRules(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.5, 0.9) // eastbound request
	req := env.request(1, o, d, now, 1.5)

	// Empty taxi near the origin: must be a candidate.
	nearIdle := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.52, 0.52))
	env.e.AddTaxi(nearIdle, now)
	// Empty taxi far away: outside the disc.
	farIdle := fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.02, 0.02))
	env.e.AddTaxi(farIdle, now)

	cands := env.e.CandidateTaxis(req, now)
	ids := map[int64]bool{}
	for _, c := range cands {
		ids[c.ID] = true
	}
	if !ids[1] {
		t.Fatal("nearby idle taxi not a candidate")
	}
	if ids[2] {
		t.Fatal("distant idle taxi offered as candidate")
	}
}

func TestCandidateTaxisDirectionFilter(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.5, 0.4)
	d := env.vertexNear(t, 0.5, 0.95) // eastbound
	req := env.request(1, o, d, now, 1.5)

	// Occupied taxi going the same way (east): candidate.
	tEast := fleet.NewTaxi(env.g, 10, 3, env.vertexNear(t, 0.5, 0.45))
	rEast := env.request(100, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.5, 0.9), now, 1.6)
	assignRequest(t, env, tEast, rEast, now)

	// Occupied taxi going the opposite way (west): must be filtered out.
	tWest := fleet.NewTaxi(env.g, 11, 3, env.vertexNear(t, 0.5, 0.5))
	rWest := env.request(101, env.vertexNear(t, 0.5, 0.45), env.vertexNear(t, 0.5, 0.05), now, 1.6)
	assignRequest(t, env, tWest, rWest, now)

	cands := env.e.CandidateTaxis(req, now)
	ids := map[int64]bool{}
	for _, c := range cands {
		ids[c.ID] = true
	}
	if !ids[10] {
		t.Fatal("same-direction taxi filtered out")
	}
	if ids[11] {
		t.Fatal("opposite-direction taxi survived the mobility-cluster filter")
	}
}

// assignRequest dispatches req and commits it onto taxi tx (registering
// the taxi first if needed), failing the test when the dispatcher picks a
// different taxi.
func assignRequest(t testing.TB, env *testEnv, tx *fleet.Taxi, req *fleet.Request, now float64) {
	t.Helper()
	if _, ok := env.e.Taxi(tx.ID); !ok {
		env.e.AddTaxi(tx, now)
	}
	params := tx.EvalParamsAt(now, env.e.Config().SpeedMps)
	sched, _, ok := fleet.BestInsertion(tx.Schedule(), req, env.e.BasicLegCost, params, false)
	if !ok {
		t.Fatalf("cannot assign request %d to taxi %d", req.ID, tx.ID)
	}
	vertices := make([]roadnet.VertexID, len(sched))
	for i, ev := range sched {
		vertices[i] = ev.Vertex()
	}
	legs, ok := env.e.BuildBasicLegs(tx.NextVertex(), vertices)
	if !ok {
		t.Fatal("legs unroutable")
	}
	if err := env.e.Commit(Assignment{Taxi: tx, Req: req, Events: sched, Legs: legs}, now); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateTaxisCapacityFilter(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.5, 0.9)

	full := fleet.NewTaxi(env.g, 20, 1, env.vertexNear(t, 0.5, 0.52))
	rFull := env.request(200, env.vertexNear(t, 0.5, 0.55), env.vertexNear(t, 0.5, 0.85), now, 1.6)
	assignRequest(t, env, full, rFull, now)
	// Seat the passenger so IdleSeats is 0.
	for !full.Empty() && full.OccupiedSeats() == 0 {
		full.Advance(100)
	}
	if full.OccupiedSeats() != 1 {
		t.Fatal("setup: passenger not aboard")
	}

	req := env.request(1, o, d, now+10, 1.5)
	for _, c := range env.e.CandidateTaxis(req, now+10) {
		if c.ID == 20 {
			t.Fatal("full taxi offered as candidate")
		}
	}
}

func TestDispatchServesSimpleRequest(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, now)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), now, 1.5)
	a, ok := env.e.Dispatch(req, now, false)
	if !ok {
		t.Fatal("dispatch failed")
	}
	if a.Taxi.ID != 1 {
		t.Fatalf("dispatched taxi %d", a.Taxi.ID)
	}
	if len(a.Events) != 2 || a.Events[0].Kind != fleet.Pickup {
		t.Fatalf("events = %v", a.Events)
	}
	if a.DetourMeters <= 0 {
		t.Fatalf("detour = %v for an idle taxi", a.DetourMeters)
	}
	if a.Candidates < 1 {
		t.Fatal("candidate count not recorded")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	if taxi.Empty() {
		t.Fatal("commit did not install plan")
	}
	// Route legs must connect and end at the dropoff.
	route := taxi.Route()
	if route[len(route)-1] != req.Dest {
		t.Fatalf("route ends at %d, want %d", route[len(route)-1], req.Dest)
	}
}

func TestDispatchPrefersLowerDetour(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	// Taxi A idles right at the request origin, taxi B much farther but
	// still in range: A must win on detour.
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.8, 0.8)
	tA := fleet.NewTaxi(env.g, 1, 3, o)
	tB := fleet.NewTaxi(env.g, 2, 3, env.vertexNear(t, 0.35, 0.35))
	env.e.AddTaxi(tA, now)
	env.e.AddTaxi(tB, now)
	req := env.request(1, o, d, now, 1.5)
	a, ok := env.e.Dispatch(req, now, false)
	if !ok {
		t.Fatal("dispatch failed")
	}
	if a.Taxi.ID != 1 {
		t.Fatalf("picked taxi %d, want the zero-pickup-distance one", a.Taxi.ID)
	}
}

func TestDispatchRideSharing(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o1 := env.vertexNear(t, 0.2, 0.2)
	d1 := env.vertexNear(t, 0.8, 0.8)
	taxi := fleet.NewTaxi(env.g, 1, 3, o1)
	env.e.AddTaxi(taxi, now)
	r1 := env.request(1, o1, d1, now, 1.5)
	a1, ok := env.e.Dispatch(r1, now, false)
	if !ok {
		t.Fatal("first dispatch failed")
	}
	if err := env.e.Commit(a1, now); err != nil {
		t.Fatal(err)
	}
	// Second request along the same corridor must share the same taxi.
	r2 := env.request(2, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.7), now+5, 1.8)
	a2, ok := env.e.Dispatch(r2, now+5, false)
	if !ok {
		t.Fatal("second dispatch found no taxi")
	}
	if a2.Taxi.ID != 1 {
		t.Fatalf("sharing taxi = %d", a2.Taxi.ID)
	}
	if err := env.e.Commit(a2, now+5); err != nil {
		t.Fatal(err)
	}
	if len(taxi.Schedule()) != 4 {
		t.Fatalf("schedule has %d events, want 4", len(taxi.Schedule()))
	}
	if !fleet.ValidSequence(taxi.Schedule()) {
		t.Fatal("invalid shared schedule")
	}
}

func TestDispatchNoTaxiAvailable(t *testing.T) {
	env := newTestEnv(t, nil)
	req := env.request(1, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.8, 0.8), 0, 1.5)
	if _, ok := env.e.Dispatch(req, 0, false); ok {
		t.Fatal("dispatch succeeded with no taxis")
	}
}

func TestDispatchExpiredRequest(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, 0)
	req := env.request(1, env.vertexNear(t, 0.5, 0.52), env.vertexNear(t, 0.8, 0.8), 0, 1.2)
	// Ask long after the pickup deadline passed.
	late := req.Deadline.Seconds() + 100
	if _, ok := env.e.Dispatch(req, late, false); ok {
		t.Fatal("expired request dispatched")
	}
}

func TestDispatchExactlyAtPickupDeadline(t *testing.T) {
	env := newTestEnv(t, nil)
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.7, 0.7)
	direct, ok := env.e.BasicLegCost(o, d)
	if !ok {
		t.Fatal("unroutable o->d")
	}
	speed := env.e.Config().SpeedMps
	// Inflate DirectMeters slightly so the delivery deadline keeps slack
	// when dispatching at the last pickup instant; the boundary under test
	// is the pickup deadline.
	req := &fleet.Request{
		ID:           1,
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration(2.4 * direct / speed * float64(time.Second)),
		DirectMeters: 1.2 * direct,
		Passengers:   1,
		OriginPt:     env.g.Point(o),
		DestPt:       env.g.Point(d),
	}
	now := req.PickupDeadline(speed).Seconds()
	taxi := fleet.NewTaxi(env.g, 1, 3, o)
	env.e.AddTaxi(taxi, now)

	// The deadline convention is inclusive: at pickupDeadline == now the
	// search radius stays open and a taxi already at the origin serves the
	// request with pickup arrival exactly at the deadline.
	if r := env.e.searchRadius(req, now); r != env.e.Config().SearchRangeMeters {
		t.Fatalf("searchRadius at exact pickup deadline = %v, want %v", r, env.e.Config().SearchRangeMeters)
	}
	a, ok := env.e.Dispatch(req, now, false)
	if !ok {
		t.Fatal("dispatch at exactly the pickup deadline failed")
	}
	if a.Taxi.ID != 1 {
		t.Fatalf("dispatched taxi %d", a.Taxi.ID)
	}
	// Strictly past the deadline the request is expired: radius collapses
	// and dispatch fails.
	if r := env.e.searchRadius(req, now+1); r != 0 {
		t.Fatalf("searchRadius past pickup deadline = %v, want 0", r)
	}
	if _, ok := env.e.Dispatch(req, now+1, false); ok {
		t.Fatal("dispatch succeeded past the pickup deadline")
	}
}

// pruneDeltas runs fn and returns how much each CandidateTaxis pruning
// counter advanced during it.
func pruneDeltas(env *testEnv, fn func()) (dir, capacity, reach int64) {
	before := env.e.Stats()
	fn()
	after := env.e.Stats()
	return after.PrunedByDirection - before.PrunedByDirection,
		after.PrunedByCapacity - before.PrunedByCapacity,
		after.PrunedByReachability - before.PrunedByReachability
}

func TestPruneCounterDirection(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	req := env.request(1, env.vertexNear(t, 0.5, 0.4), env.vertexNear(t, 0.5, 0.95), now, 1.5)

	// One occupied taxi heading the same way, one heading the opposite way:
	// exactly the opposite-direction taxi trips rule 1.
	tEast := fleet.NewTaxi(env.g, 10, 3, env.vertexNear(t, 0.5, 0.45))
	assignRequest(t, env, tEast, env.request(100, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.5, 0.9), now, 1.6), now)
	tWest := fleet.NewTaxi(env.g, 11, 3, env.vertexNear(t, 0.5, 0.5))
	assignRequest(t, env, tWest, env.request(101, env.vertexNear(t, 0.5, 0.45), env.vertexNear(t, 0.5, 0.05), now, 1.6), now)

	dir, capacity, reach := pruneDeltas(env, func() {
		if cands := env.e.CandidateTaxis(req, now); len(cands) != 1 || cands[0].ID != 10 {
			t.Fatalf("candidates = %v, want just taxi 10", cands)
		}
	})
	if dir != 1 || capacity != 0 || reach != 0 {
		t.Fatalf("prune deltas (direction, capacity, reachability) = (%d, %d, %d), want (1, 0, 0)", dir, capacity, reach)
	}
}

func TestPruneCounterCapacity(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	// A capacity-1 taxi with its passenger aboard, moving the same
	// direction as the probe request so rule 1 passes and rule 2 fires.
	full := fleet.NewTaxi(env.g, 20, 1, env.vertexNear(t, 0.5, 0.52))
	assignRequest(t, env, full, env.request(200, env.vertexNear(t, 0.5, 0.55), env.vertexNear(t, 0.5, 0.85), now, 1.6), now)
	for !full.Empty() && full.OccupiedSeats() == 0 {
		full.Advance(100)
	}
	if full.OccupiedSeats() != 1 {
		t.Fatal("setup: passenger not aboard")
	}

	req := env.request(1, env.vertexNear(t, 0.5, 0.5), env.vertexNear(t, 0.5, 0.9), now+10, 1.5)
	dir, capacity, reach := pruneDeltas(env, func() {
		if cands := env.e.CandidateTaxis(req, now+10); len(cands) != 0 {
			t.Fatalf("candidates = %v, want none", cands)
		}
	})
	if dir != 0 || capacity != 1 || reach != 0 {
		t.Fatalf("prune deltas (direction, capacity, reachability) = (%d, %d, %d), want (0, 1, 0)", dir, capacity, reach)
	}
}

func TestPruneCounterReachability(t *testing.T) {
	env := newTestEnv(t, nil)
	o := env.vertexNear(t, 0.5, 0.5)
	d := env.vertexNear(t, 0.9, 0.9)
	// The taxi must sit in a different partition than the origin so the
	// partition index reports no arrival there and rule 3 falls through to
	// the straight-line lower bound.
	tv := o
	for _, f := range []struct{ lat, lng float64 }{{0.5, 0.7}, {0.5, 0.8}, {0.7, 0.5}, {0.8, 0.5}, {0.2, 0.5}} {
		v := env.vertexNear(t, f.lat, f.lng)
		if env.pt.PartitionOf(v) != env.pt.PartitionOf(o) {
			tv = v
			break
		}
	}
	if tv == o {
		t.Fatal("setup: no probe vertex outside the origin partition")
	}
	speed := env.e.Config().SpeedMps
	dist := geo.Equirect(env.g.Point(o), env.g.Point(tv))
	direct := env.e.Router().Cost(o, d)
	// Pickup deadline at half the taxi's straight-line travel time to the
	// origin: inside the search disc, empty (rules 1-2 pass), but even the
	// distance lower bound says it cannot make the pickup.
	pd := 0.5 * dist / speed
	req := &fleet.Request{
		ID:           1,
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration((pd + direct/speed) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		OriginPt:     env.g.Point(o),
		DestPt:       env.g.Point(d),
	}
	taxi := fleet.NewTaxi(env.g, 30, 3, tv)
	env.e.AddTaxi(taxi, 0)

	dir, capacity, reach := pruneDeltas(env, func() {
		if cands := env.e.CandidateTaxis(req, 0); len(cands) != 0 {
			t.Fatalf("candidates = %v, want none", cands)
		}
	})
	if dir != 0 || capacity != 0 || reach != 1 {
		t.Fatalf("prune deltas (direction, capacity, reachability) = (%d, %d, %d), want (0, 0, 1)", dir, capacity, reach)
	}
}

func TestTryServeOffline(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.3, 0.3)
	d := env.vertexNear(t, 0.8, 0.8)
	taxi := fleet.NewTaxi(env.g, 1, 3, o)
	env.e.AddTaxi(taxi, now)
	r1 := env.request(1, o, d, now, 1.6)
	a, ok := env.e.Dispatch(r1, now, false)
	if !ok {
		t.Fatal("setup dispatch failed")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	// Offline request on the way.
	off := env.request(2, env.vertexNear(t, 0.4, 0.4), env.vertexNear(t, 0.7, 0.7), now, 1.6)
	off.Offline = true
	if !env.e.TryServeOffline(taxi, off, now) {
		t.Fatal("compatible offline request rejected")
	}
	if len(taxi.Schedule()) != 4 {
		t.Fatalf("schedule events = %d", len(taxi.Schedule()))
	}
	// A full taxi rejects.
	small := fleet.NewTaxi(env.g, 2, 1, o)
	env.e.AddTaxi(small, now)
	r3 := env.request(3, o, d, now, 1.6)
	assignRequest(t, env, small, r3, now)
	for small.OccupiedSeats() == 0 {
		small.Advance(100)
	}
	off2 := env.request(4, env.vertexNear(t, 0.4, 0.4), env.vertexNear(t, 0.7, 0.7), now, 1.6)
	off2.Offline = true
	if env.e.TryServeOffline(small, off2, now) {
		t.Fatal("full taxi accepted offline request")
	}
}

func TestProbEnabled(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 4, env.vertexNear(t, 0.5, 0.5))
	if !env.e.ProbEnabled(taxi) {
		t.Fatal("empty taxi not prob-enabled")
	}
}

func TestProbabilisticLegValidAndBounded(t *testing.T) {
	env := newTestEnv(t, nil)
	u := env.vertexNear(t, 0.2, 0.2)
	v := env.vertexNear(t, 0.8, 0.8)
	vec := geo.NewMobilityVector(env.g.Point(u), env.g.Point(v))
	direct := env.e.Router().Cost(u, v)
	path, cost, ok := env.e.ProbabilisticLeg(u, v, vec, direct*2)
	if !ok {
		t.Fatal("probabilistic leg failed")
	}
	if path[0] != u || path[len(path)-1] != v {
		t.Fatal("leg endpoints wrong")
	}
	if cost > direct*2 {
		t.Fatalf("leg cost %v exceeds budget %v", cost, direct*2)
	}
	actual, err := env.g.PathCost(path)
	if err != nil || math.Abs(actual-cost) > 1e-9 {
		t.Fatalf("leg path inconsistent: %v %v", actual, err)
	}
	// An impossible budget must fail.
	if _, _, ok := env.e.ProbabilisticLeg(u, v, vec, direct*0.5); ok {
		t.Fatal("leg beat the shortest path")
	}
	// Self leg.
	if p, c, ok := env.e.ProbabilisticLeg(u, u, vec, 100); !ok || c != 0 || len(p) != 1 {
		t.Fatal("self probabilistic leg wrong")
	}
}

func TestProbabilisticPlanFeasible(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.3, 0.3)
	d := env.vertexNear(t, 0.8, 0.8)
	taxi := fleet.NewTaxi(env.g, 1, 4, o)
	env.e.AddTaxi(taxi, now)
	req := env.request(1, o, d, now, 1.8)
	events := []fleet.Event{{Req: req, Kind: fleet.Pickup}, {Req: req, Kind: fleet.Dropoff}}
	legs, eval, ok := env.e.ProbabilisticPlan(events, taxi, now)
	if !ok {
		t.Fatal("probabilistic plan failed")
	}
	if !eval.Feasible {
		t.Fatal("plan marked infeasible")
	}
	if len(legs) != 2 {
		t.Fatalf("legs = %d", len(legs))
	}
	// The probabilistic route may detour but stays within the deadline.
	if eval.ArrivalSeconds[1] > req.Deadline.Seconds() {
		t.Fatal("delivery past deadline")
	}
	if err := taxi.SetPlan(events, legs); err != nil {
		t.Fatalf("plan not installable: %v", err)
	}
}

func TestDispatchProbabilisticMode(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	o := env.vertexNear(t, 0.3, 0.3)
	taxi := fleet.NewTaxi(env.g, 1, 4, o)
	env.e.AddTaxi(taxi, now)
	req := env.request(1, env.vertexNear(t, 0.35, 0.35), env.vertexNear(t, 0.75, 0.75), now, 1.8)
	a, ok := env.e.Dispatch(req, now, true)
	if !ok {
		t.Fatal("probabilistic dispatch failed")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	// Probabilistic route must still respect deadline feasibility.
	if !a.Eval.Feasible {
		t.Fatal("infeasible probabilistic assignment")
	}
}

func TestCruisePlan(t *testing.T) {
	env := newTestEnv(t, nil)
	taxi := fleet.NewTaxi(env.g, 1, 4, env.vertexNear(t, 0.1, 0.1))
	path, ok := env.e.CruisePlan(taxi, 5000)
	if !ok {
		t.Skip("no cruise target on this layout")
	}
	if path[0] != taxi.At() {
		t.Fatal("cruise must start at taxi position")
	}
	if err := taxi.SetPlan(nil, [][]roadnet.VertexID{path}); err != nil {
		t.Fatalf("cruise not installable: %v", err)
	}
	cost, err := env.g.PathCost(path)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 5000*2.1 {
		t.Fatalf("cruise wildly over budget: %v m", cost)
	}
}

func TestReindexTaxiLifecycle(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, now)
	if env.e.NumTaxis() != 1 {
		t.Fatal("taxi not registered")
	}
	if _, ok := env.e.Taxi(1); !ok {
		t.Fatal("Taxi lookup failed")
	}
	// Empty taxi must not sit in any mobility cluster.
	if st := env.e.ClusterStats(); st.Taxis != 0 {
		t.Fatalf("idle taxi in %d clusters", st.Taxis)
	}
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), now, 1.5)
	a, ok := env.e.Dispatch(req, now, false)
	if !ok {
		t.Fatal("dispatch failed")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	if st := env.e.ClusterStats(); st.Taxis != 1 || st.Requests != 1 {
		t.Fatalf("cluster stats after commit: %+v", st)
	}
	// Finish the ride: reindex drops the taxi from clusters.
	for !taxi.Empty() {
		taxi.Advance(500)
	}
	env.e.ReindexTaxi(taxi, 1000)
	env.e.OnRequestDone(req)
	if st := env.e.ClusterStats(); st.Taxis != 0 || st.Requests != 0 {
		t.Fatalf("cluster stats after completion: %+v", st)
	}
}

func TestIndexMemoryBytes(t *testing.T) {
	env := newTestEnv(t, nil)
	if m := env.e.IndexMemoryBytes(); m <= 0 {
		t.Fatalf("IndexMemoryBytes = %d", m)
	}
}

func BenchmarkDispatchBasic(b *testing.B) {
	env := newTestEnv(b, nil)
	now := 0.0
	for i := int64(0); i < 30; i++ {
		f := 0.1 + 0.8*float64(i)/30
		taxi := fleet.NewTaxi(env.g, i, 3, env.vertexNear(b, f, 1-f))
		env.e.AddTaxi(taxi, now)
	}
	req := env.request(1, env.vertexNear(b, 0.4, 0.4), env.vertexNear(b, 0.8, 0.8), now, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = env.e.Dispatch(req, now, false)
	}
}

func BenchmarkDispatchProbabilistic(b *testing.B) {
	env := newTestEnv(b, nil)
	now := 0.0
	for i := int64(0); i < 10; i++ {
		f := 0.1 + 0.8*float64(i)/10
		taxi := fleet.NewTaxi(env.g, i, 4, env.vertexNear(b, f, f))
		env.e.AddTaxi(taxi, now)
	}
	req := env.request(1, env.vertexNear(b, 0.4, 0.4), env.vertexNear(b, 0.8, 0.8), now, 1.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = env.e.Dispatch(req, now, true)
	}
}

// BenchmarkDispatchQueueBatch measures one pending-queue retry round —
// NextBatch, DispatchBatch, MarkServed — over a saturated queue. The
// engine and fleet are rebuilt outside the timer each iteration so
// committed schedules never accumulate across rounds and every
// iteration dispatches the identical batch.
func BenchmarkDispatchQueueBatch(b *testing.B) {
	env := newTestEnv(b, nil)
	reqs := seededWorkload(env, 24, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(env.pt, env.spx, env.e.Config())
		if err != nil {
			b.Fatal(err)
		}
		fresh := &testEnv{g: env.g, spx: env.spx, pt: env.pt, e: e}
		placeFleet(fresh, 12, 42)
		q := NewPendingQueue(len(reqs), e.Config().SpeedMps)
		for _, r := range reqs {
			if !q.Push(r, 0).Accepted() {
				b.Fatalf("request %d rejected at push", r.ID)
			}
		}
		b.StartTimer()
		batch := q.NextBatch()
		rs := make([]*fleet.Request, len(batch))
		for j, it := range batch {
			rs[j] = it.Req
		}
		for _, o := range e.DispatchBatch(context.Background(), rs, 0, false) {
			if o.Served {
				q.MarkServed(o.Req.ID, 0)
			}
		}
	}
}

func BenchmarkCandidateSearch(b *testing.B) {
	env := newTestEnv(b, nil)
	now := 0.0
	for i := int64(0); i < 100; i++ {
		f := float64(i%10)/10 + 0.05
		g := float64(i/10)/10 + 0.05
		taxi := fleet.NewTaxi(env.g, i, 3, env.vertexNear(b, f, g))
		env.e.AddTaxi(taxi, now)
	}
	req := env.request(1, env.vertexNear(b, 0.5, 0.5), env.vertexNear(b, 0.9, 0.9), now, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.e.CandidateTaxis(req, now)
	}
}

func TestEngineStatsCounters(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, now)
	req := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), now, 1.5)
	a, ok := env.e.Dispatch(req, now, false)
	if !ok {
		t.Fatal("dispatch failed")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	st := env.e.Stats()
	if st.Dispatches != 1 || st.Assignments != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CandidatesExamined < 1 {
		t.Fatal("candidates not counted")
	}
	// Probabilistic plan counter.
	req2 := env.request(2, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.7), now, 1.8)
	_, _ = env.e.Dispatch(req2, now, true)
	if st := env.e.Stats(); st.ProbabilisticPlans == 0 {
		t.Fatal("probabilistic plans not counted")
	}
}

func TestExhaustiveReorderDispatch(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.ExhaustiveReorder = true; c.ReorderBudget = 500 })
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 4, env.vertexNear(t, 0.2, 0.2))
	env.e.AddTaxi(taxi, now)
	for i := int64(1); i <= 3; i++ {
		f := 0.2 + 0.1*float64(i)
		req := env.request(i, env.vertexNear(t, f, f), env.vertexNear(t, 0.9, 0.9), now, 2.5)
		a, ok := env.e.Dispatch(req, now, false)
		if !ok {
			t.Fatalf("reorder dispatch %d failed", i)
		}
		if !fleet.ValidSequence(a.Events) {
			t.Fatal("reorder produced invalid sequence")
		}
		if err := env.e.Commit(a, now); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProbMaxLegInflationBoundsDetours(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.ProbMaxLegInflation = 1.1 })
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 4, env.vertexNear(t, 0.3, 0.3))
	env.e.AddTaxi(taxi, now)
	req := env.request(1, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.8, 0.8), now, 2.0)
	events := []fleet.Event{{Req: req, Kind: fleet.Pickup}, {Req: req, Kind: fleet.Dropoff}}
	legs, _, ok := env.e.ProbabilisticPlan(events, taxi, now)
	if !ok {
		t.Fatal("plan failed")
	}
	// Each leg must cost at most 1.1x its shortest path.
	at := taxi.NextVertex()
	for i, leg := range legs {
		cost, err := env.g.PathCost(leg)
		if err != nil {
			t.Fatal(err)
		}
		best := env.e.Router().Cost(at, events[i].Vertex())
		if cost > best*1.1+1e-6 {
			t.Fatalf("leg %d cost %v exceeds 1.1x best %v", i, cost, best)
		}
		at = events[i].Vertex()
	}
}

func TestRepartitionHotSwap(t *testing.T) {
	env := newTestEnv(t, nil)
	now := 0.0
	taxi := fleet.NewTaxi(env.g, 1, 3, env.vertexNear(t, 0.5, 0.5))
	env.e.AddTaxi(taxi, now)
	// Serve one request under the old partitioning.
	r1 := env.request(1, env.vertexNear(t, 0.52, 0.52), env.vertexNear(t, 0.8, 0.8), now, 1.5)
	a, ok := env.e.Dispatch(r1, now, false)
	if !ok {
		t.Fatal("pre-swap dispatch failed")
	}
	if err := env.e.Commit(a, now); err != nil {
		t.Fatal(err)
	}
	// Build a replacement partitioning (grid, different kappa) and swap.
	newPt, err := partition.BuildGrid(env.g, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.e.Repartition(newPt, now); err != nil {
		t.Fatal(err)
	}
	if env.e.Partitioning() != newPt {
		t.Fatal("partitioning not swapped")
	}
	// Dispatch keeps working with the occupied taxi still indexed; the
	// second pickup lies on the taxi's remaining corridor.
	r2 := env.request(2, env.vertexNear(t, 0.6, 0.6), env.vertexNear(t, 0.78, 0.78), now+5, 2.2)
	a2, ok := env.e.Dispatch(r2, now+5, false)
	if !ok {
		t.Fatal("post-swap dispatch failed")
	}
	if err := env.e.Commit(a2, now+5); err != nil {
		t.Fatal(err)
	}
	// A partitioning over a different graph must be rejected.
	other, err := roadnet.GenerateCity(roadnet.DefaultCityParams(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	otherPt, err := partition.BuildGrid(other, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.e.Repartition(otherPt, now); err == nil {
		t.Fatal("foreign-graph partitioning accepted")
	}
}
