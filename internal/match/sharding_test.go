package match

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/roadnet"
)

// shardedOver builds a ShardedEngine over the same world as env, so
// single-engine and sharded runs can be compared request for request.
func shardedOver(t testing.TB, env *testEnv, shards int, cfgMut func(*Config)) *ShardedEngine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	cfg.Sharding = ShardingConfig{Shards: shards}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	se, err := NewShardedEngine(env.pt, env.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

// placeFleetOn registers the same deterministic fleet placeFleet uses,
// but on an arbitrary dispatcher with its own taxi objects — schedules
// are per-dispatcher state, so differential runs must not share them.
func placeFleetOn(d Dispatcher, env *testEnv, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		at := roadnet.VertexID(rng.Intn(env.g.NumVertices()))
		d.AddTaxi(fleet.NewTaxi(env.g, int64(i+1), 3, at), 0)
	}
}

func TestShardingConfigValidate(t *testing.T) {
	valid := []ShardingConfig{
		{},
		{Shards: 1},
		{Shards: 4},
		{Shards: 2, BorderPolicy: BorderTwoPhase},
		{Shards: 3, BorderPolicy: BorderLocal},
	}
	for i, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("valid case %d: %v", i, err)
		}
	}
	invalid := []ShardingConfig{
		{Shards: -1},
		{Shards: 2, BorderPolicy: "frobnicate"},
	}
	for i, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid case %d: expected error", i)
		}
	}
	if (ShardingConfig{}).Enabled() || (ShardingConfig{Shards: 1}).Enabled() {
		t.Error("zero value and Shards=1 must mean single engine")
	}
	if !(ShardingConfig{Shards: 2}).Enabled() {
		t.Error("Shards=2 must enable sharding")
	}
	if got := (ShardingConfig{Shards: 2}).Policy(); got != BorderTwoPhase {
		t.Errorf("default policy = %q, want %q", got, BorderTwoPhase)
	}
}

// TestShardRoutingTotalDeterministic is the routing property test: the
// home shard is a total, deterministic function of the pickup partition
// alone. Every vertex routes, always to the same shard, regardless of
// destination, deadline, or request identity.
func TestShardRoutingTotalDeterministic(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, nil)
	smap := se.ShardMap()
	n := smap.NumShards()
	rng := rand.New(rand.NewSource(5))
	nv := env.g.NumVertices()
	for v := 0; v < nv; v++ {
		o := roadnet.VertexID(v)
		want := smap.ShardOf(env.pt.PartitionOf(o))
		if want < 0 || want >= n {
			t.Fatalf("vertex %d: shard %d out of range [0,%d)", v, want, n)
		}
		ra := &fleet.Request{
			ID: 1, Origin: o, Dest: roadnet.VertexID(rng.Intn(nv)),
			Deadline: time.Duration(1+rng.Intn(1000)) * time.Second, Passengers: 1,
		}
		rb := &fleet.Request{
			ID: fleet.RequestID(v + 2), Origin: o, Dest: roadnet.VertexID(rng.Intn(nv)),
			ReleaseAt: time.Duration(rng.Intn(500)) * time.Second,
			Deadline:  time.Duration(2000+rng.Intn(1000)) * time.Second, Passengers: 2,
		}
		if ha, hb := se.HomeShard(ra), se.HomeShard(rb); ha != want || hb != want {
			t.Fatalf("vertex %d: homes %d/%d, want %d — routing depends on more than the pickup partition", v, ha, hb, want)
		}
		if again := se.HomeShard(ra); again != want {
			t.Fatalf("vertex %d: home changed %d -> %d across calls", v, want, again)
		}
	}
}

// traceWorkload dispatches and commits reqs serially on d, recording the
// per-request outcome.
func traceWorkload(t *testing.T, d Dispatcher, reqs []*fleet.Request) []dispatchTrace {
	t.Helper()
	out := make([]dispatchTrace, len(reqs))
	for i, r := range reqs {
		now := r.ReleaseAt.Seconds()
		a, ok := d.Dispatch(r, now, false)
		out[i] = dispatchTrace{served: ok}
		if !ok {
			continue
		}
		out[i].taxiID = a.Taxi.ID
		out[i].detour = math.Float64bits(a.DetourMeters)
		for _, leg := range a.Legs {
			out[i].legLen += len(leg)
		}
		if err := d.Commit(a, now); err != nil {
			t.Fatalf("request %d: commit: %v", r.ID, err)
		}
	}
	return out
}

// TestShardedDispatchMatchesSingle is the differential test: the sharded
// dispatcher must produce bit-identical outcomes to the single engine on
// the same seeded stream, at several shard counts.
func TestShardedDispatchMatchesSingle(t *testing.T) {
	for _, tc := range []struct {
		name        string
		shards, par int
	}{
		{"shards=2", 2, 0},
		{"shards=3", 3, 0},
		{"shards=2/parallel=4", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := newTestEnv(t, nil)
			se := shardedOver(t, env, tc.shards, func(c *Config) {
				if tc.par > 0 {
					c.Parallelism = tc.par
				}
			})
			placeFleetOn(env.e, env, 12, 42)
			placeFleetOn(se, env, 12, 42)
			want := traceWorkload(t, env.e, seededWorkload(env, 80, 7))
			got := traceWorkload(t, se, seededWorkload(env, 80, 7))
			served := 0
			for i := range want {
				if want[i].served != got[i].served || want[i].taxiID != got[i].taxiID ||
					want[i].detour != got[i].detour || want[i].legLen != got[i].legLen {
					t.Fatalf("request %d: single %+v, sharded %+v", i+1, want[i], got[i])
				}
				if want[i].served {
					served++
				}
			}
			if served == 0 {
				t.Fatal("differential is vacuous: nothing served")
			}
			var cross int64
			for _, sh := range se.ShardStats() {
				cross += sh.CrossShardCandidates
			}
			if cross == 0 {
				t.Fatal("differential is vacuous: no candidate ever crossed a shard border")
			}
		})
	}
}

// TestShardedBatchMatchesSingle runs the same stream through
// DispatchBatch rounds on both dispatchers: outcome order, served flags,
// winners, detours, and conflict flags must all agree.
func TestShardedBatchMatchesSingle(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, nil)
	placeFleetOn(env.e, env, 10, 21)
	placeFleetOn(se, env, 10, 21)
	ra := seededWorkload(env, 48, 13)
	rb := seededWorkload(env, 48, 13)
	ctx := context.Background()
	for i := 0; i < len(ra); i += 8 {
		end := i + 8
		now := ra[end-1].ReleaseAt.Seconds()
		oa := env.e.DispatchBatch(ctx, ra[i:end], now, false)
		ob := se.DispatchBatch(ctx, rb[i:end], now, false)
		if len(oa) != len(ob) {
			t.Fatalf("round %d: %d vs %d outcomes", i/8, len(oa), len(ob))
		}
		for j := range oa {
			a, b := oa[j], ob[j]
			if a.Req.ID != b.Req.ID || a.Served != b.Served || a.Conflict != b.Conflict {
				t.Fatalf("round %d pos %d: single {req %d served %v conflict %v}, sharded {req %d served %v conflict %v}",
					i/8, j, a.Req.ID, a.Served, a.Conflict, b.Req.ID, b.Served, b.Conflict)
			}
			if a.Served {
				if a.Assignment.Taxi.ID != b.Assignment.Taxi.ID ||
					math.Float64bits(a.Assignment.DetourMeters) != math.Float64bits(b.Assignment.DetourMeters) {
					t.Fatalf("round %d req %d: taxi/detour diverge: %d/%v vs %d/%v",
						i/8, a.Req.ID, a.Assignment.Taxi.ID, a.Assignment.DetourMeters,
						b.Assignment.Taxi.ID, b.Assignment.DetourMeters)
				}
			}
		}
	}
}

// borderConflictWorld places one taxi in shard 0's territory and two
// batch requests homed on different shards that both want it. The
// cross-shard loser's conflict must be counted as a border conflict.
func borderConflictRound(t *testing.T) (se *ShardedEngine, outs []BatchOutcome) {
	t.Helper()
	env := newTestEnv(t, nil)
	se = shardedOver(t, env, 2, func(c *Config) { c.SearchRangeMeters = 100000 })
	smap := se.ShardMap()
	homeOf := func(v roadnet.VertexID) int { return smap.ShardOf(env.pt.PartitionOf(v)) }
	// v0 in shard 0, v1 in shard 1, finite cost both ways.
	var v0, v1 roadnet.VertexID = -1, -1
	for v := 0; v < env.g.NumVertices() && v0 < 0; v++ {
		if homeOf(roadnet.VertexID(v)) == 0 {
			v0 = roadnet.VertexID(v)
		}
	}
	for v := 0; v < env.g.NumVertices() && v1 < 0; v++ {
		u := roadnet.VertexID(v)
		if homeOf(u) == 1 &&
			!math.IsInf(env.e.Router().Cost(v0, u), 1) &&
			!math.IsInf(env.e.Router().Cost(u, v0), 1) {
			v1 = u
		}
	}
	if v0 < 0 || v1 < 0 {
		t.Skip("no reachable cross-shard vertex pair on this layout")
	}
	se.AddTaxi(fleet.NewTaxi(env.g, 1, 3, v0), 0)
	// r1 is homed with the taxi and has the tighter pickup deadline, so
	// it commits first; r2 comes from the other shard with generous
	// slack, picks the same (only) taxi in phase 1, and loses it.
	r1 := env.request(1, v0, v1, 0, 1.2)
	r2 := env.request(2, v1, v0, 0, 3.0)
	outs = se.DispatchBatch(context.Background(), []*fleet.Request{r1, r2}, 0, false)
	return se, outs
}

func TestShardedBorderConflict(t *testing.T) {
	se, outs := borderConflictRound(t)
	var first, second *BatchOutcome
	for i := range outs {
		switch outs[i].Req.ID {
		case 1:
			first = &outs[i]
		case 2:
			second = &outs[i]
		}
	}
	if first == nil || second == nil {
		t.Fatalf("missing outcomes: %+v", outs)
	}
	if !first.Served || first.Assignment.Taxi.ID != 1 {
		t.Fatalf("home request should win the taxi: %+v", first)
	}
	if !second.Conflict {
		t.Fatalf("cross-shard request should have conflicted: %+v", second)
	}
	var border int64
	for _, sh := range se.ShardStats() {
		border += sh.BorderConflicts
	}
	if border == 0 {
		t.Fatal("conflict over a foreign-owned taxi was not counted as a border conflict")
	}
	// Deterministic resolution: the identical round resolves identically.
	_, again := borderConflictRound(t)
	if len(again) != len(outs) {
		t.Fatalf("outcome count changed: %d vs %d", len(again), len(outs))
	}
	for i := range outs {
		if outs[i].Req.ID != again[i].Req.ID || outs[i].Served != again[i].Served || outs[i].Conflict != again[i].Conflict {
			t.Fatalf("resolution not deterministic at pos %d: %+v vs %+v", i, outs[i], again[i])
		}
	}
}

// TestShardedBorderLocalStaysHome checks the restrictive policy: with
// BorderLocal no candidate ever crosses a shard border.
func TestShardedBorderLocalStaysHome(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, func(c *Config) {
		c.Sharding.BorderPolicy = BorderLocal
	})
	placeFleetOn(se, env, 12, 42)
	traceWorkload(t, se, seededWorkload(env, 40, 7))
	for _, sh := range se.ShardStats() {
		if sh.CrossShardCandidates != 0 || sh.CrossShardAssignments != 0 {
			t.Fatalf("shard %d: BorderLocal leaked across the border: %+v", sh.Shard, sh)
		}
	}
}

// TestDrainRefusesCommit locks in the shutdown bugfix: after Drain no
// in-flight assignment may commit, on the single engine and on every
// shard of a sharded dispatcher.
func TestDrainRefusesCommit(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single", 1}, {"sharded", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			env := newTestEnv(t, nil)
			var d Dispatcher = env.e
			if tc.shards > 1 {
				d = shardedOver(t, env, tc.shards, nil)
			}
			placeFleetOn(d, env, 8, 42)
			var (
				a   Assignment
				ok  bool
				now float64
			)
			for _, r := range seededWorkload(env, 10, 7) {
				now = r.ReleaseAt.Seconds()
				if a, ok = d.Dispatch(r, now, false); ok {
					break
				}
			}
			if !ok {
				t.Fatal("no dispatchable request in the seeded stream")
			}
			d.Drain()
			if err := d.Commit(a, now); !errors.Is(err, ErrDispatcherClosed) {
				t.Fatalf("Commit after Drain = %v, want ErrDispatcherClosed", err)
			}
		})
	}
}

// TestQueueGroupMatchesPendingQueue checks the sharded pending pool is
// observationally identical to the single queue: same accept/reject
// pattern under the one global capacity bound, same merged batch order,
// same expiry set.
func TestQueueGroupMatchesPendingQueue(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, nil)
	const capacity = 6
	single := env.e.NewPendingPool(capacity)
	group := se.NewPendingPool(capacity)
	if single.Capacity() != capacity || group.Capacity() != capacity {
		t.Fatalf("capacities %d/%d, want %d", single.Capacity(), group.Capacity(), capacity)
	}
	reqs := seededWorkload(env, 10, 31)
	for i, r := range reqs {
		ga, gb := single.Push(r, 0), group.Push(r, 0)
		if ga != gb {
			t.Fatalf("req %d: single accepts %v, group accepts %v", i, ga, gb)
		}
	}
	if single.Len() != group.Len() {
		t.Fatalf("Len: %d vs %d", single.Len(), group.Len())
	}
	if ga, gb := single.Push(reqs[0], 0), group.Push(reqs[0], 0); ga != gb {
		t.Fatalf("duplicate push: %v vs %v", ga, gb)
	}
	if sd, ok := group.(interface{ ShardDepths() []int }); ok {
		sum := 0
		for _, d := range sd.ShardDepths() {
			sum += d
		}
		if sum != group.Len() {
			t.Fatalf("ShardDepths sum %d != Len %d", sum, group.Len())
		}
	} else {
		t.Fatal("sharded pool does not expose per-shard depths")
	}
	sa, sb := single.Snapshot(), group.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("Snapshot: %d vs %d items", len(sa), len(sb))
	}
	qa, qb := single.Stats(), group.Stats()
	if qa.Depth != qb.Depth || qa.Capacity != qb.Capacity {
		t.Fatalf("Stats: %+v vs %+v", qa, qb)
	}
	ba, bb := single.NextBatch(), group.NextBatch()
	if len(ba) != len(bb) {
		t.Fatalf("NextBatch: %d vs %d items", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i].Req.ID != bb[i].Req.ID {
			t.Fatalf("NextBatch pos %d: req %d vs %d — merged order broke the global (deadline, id) key",
				i, ba[i].Req.ID, bb[i].Req.ID)
		}
	}
	if len(ba) > 0 {
		id := ba[0].Req.ID
		if ga, gb := single.MarkServed(id, 0), group.MarkServed(id, 0); ga != gb || single.Len() != group.Len() {
			t.Fatalf("MarkServed(%d): %v/%v, depths %d/%d", id, ga, gb, single.Len(), group.Len())
		}
	}
	ea, eb := single.ExpireBefore(1e12), group.ExpireBefore(1e12)
	ids := func(items []*PendingItem) []int64 {
		out := make([]int64, len(items))
		for i, it := range items {
			out[i] = int64(it.Req.ID)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ia, ib := ids(ea), ids(eb)
	if len(ia) != len(ib) {
		t.Fatalf("ExpireBefore: %d vs %d items", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("ExpireBefore sets differ at %d: %d vs %d", i, ia[i], ib[i])
		}
	}
	if single.Len() != 0 || group.Len() != 0 {
		t.Fatalf("queues not empty after full expiry: %d / %d", single.Len(), group.Len())
	}
}

// TestSchemeShardedLifecycle drives the full simulation-facing contract
// (Scheme) over a sharded dispatcher built through the NewDispatcher
// factory: online dispatch, taxi advancement with border-crossing
// reindexing (shard handoffs), batch re-dispatch, street hails, request
// completion, and probabilistic idle cruising.
func TestSchemeShardedLifecycle(t *testing.T) {
	env := newTestEnv(t, nil)
	cfg := DefaultConfig()
	cfg.SearchRangeMeters = 3000
	cfg.Sharding = ShardingConfig{Shards: 2}
	d, err := NewDispatcher(env.pt, env.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", d.ShardCount())
	}
	// Delegated surfaces must be wired, not nil.
	if d.Partitioning() != env.pt {
		t.Fatal("Partitioning not the build input")
	}
	if d.Router() == nil || d.LandmarkOracle() == nil || d.Metrics() == nil {
		t.Fatal("delegated surface is nil")
	}
	_ = d.ClusterStats()
	if d.IndexMemoryBytes() <= 0 {
		t.Fatal("IndexMemoryBytes not positive")
	}

	s := NewScheme(d, true)
	if s.Name() != "mT-Share-pro" {
		t.Fatalf("Name = %q", s.Name())
	}
	if !s.SupportsOfflineDispatch() {
		t.Fatal("offline dispatch must be supported")
	}

	rng := rand.New(rand.NewSource(4))
	taxis := make([]*fleet.Taxi, 10)
	for i := range taxis {
		taxis[i] = fleet.NewTaxi(env.g, int64(i+1), 3, roadnet.VertexID(rng.Intn(env.g.NumVertices())))
		s.AddTaxi(taxis[i], 0)
	}
	if d.NumTaxis() != len(taxis) {
		t.Fatalf("NumTaxis = %d, want %d", d.NumTaxis(), len(taxis))
	}
	if tx, ok := d.Taxi(3); !ok || tx.ID != 3 {
		t.Fatalf("Taxi(3) = %v, %v", tx, ok)
	}
	if _, ok := d.Taxi(999); ok {
		t.Fatal("Taxi(999) exists")
	}

	served := 0
	var servedReqs []*fleet.Request
	var now float64
	for _, r := range seededWorkload(env, 60, 9) {
		now = r.ReleaseAt.Seconds()
		if out := s.OnRequest(r, now); out.Served {
			served++
			servedReqs = append(servedReqs, r)
		}
		// Advance every taxi along its plan and reindex on border
		// crossings — the path that hands taxis between shards.
		for _, tx := range taxis {
			tx.Advance(120)
			s.OnTaxiAdvanced(tx, now)
		}
	}
	if served == 0 {
		t.Fatal("nothing served through the scheme")
	}
	var handoffs int64
	for _, sh := range d.ShardStats() {
		handoffs += sh.Handoffs
	}
	if handoffs == 0 {
		t.Fatal("taxis crossed the city but never changed shard ownership")
	}

	// Batch re-dispatch through the scheme surface.
	batch := seededWorkload(env, 8, 23)
	res := s.OnBatch(batch, now)
	if len(res) != len(batch) {
		t.Fatalf("OnBatch returned %d results for %d requests", len(res), len(batch))
	}

	// Street hail: an insertion into a specific taxi's schedule.
	hailed := false
	for i, tx := range taxis {
		o := tx.At()
		dst := env.vertexNear(t, 0.9, 0.1)
		if o == dst || math.IsInf(d.Router().Cost(o, dst), 1) {
			continue
		}
		hail := env.request(int64(5000+i), o, dst, now, 2.5)
		if s.TryServeOffline(tx, hail, now) {
			hailed = true
			break
		}
	}
	if !hailed {
		t.Fatal("no taxi accepted a roadside hail at its own position")
	}

	// Completion unwinds the mobility-cluster bookkeeping.
	for _, r := range servedReqs {
		s.OnRequestCompleted(r, now)
	}

	// Probabilistic idle cruising on a fresh, empty taxi: CruisePlan and
	// the installPlan/noteCruisePlanned hooks run through the shard that
	// owns the taxi.
	idle := fleet.NewTaxi(env.g, 99, 3, env.vertexNear(t, 0.5, 0.5))
	s.AddTaxi(idle, now)
	if s.PlanIdle(idle, now) {
		if len(idle.Route()) <= 1 {
			t.Fatal("cruise planned but no route installed")
		}
	}
}

// TestSchemeSingleCruisePlan covers the single-engine cruise path: after
// observing demand, PlanIdle installs a cruise route on an idle taxi.
func TestSchemeSingleCruisePlan(t *testing.T) {
	env := newTestEnv(t, nil)
	s := NewScheme(env.e, true)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		s.AddTaxi(fleet.NewTaxi(env.g, int64(i+1), 3, roadnet.VertexID(rng.Intn(env.g.NumVertices()))), 0)
	}
	var now float64
	for _, r := range seededWorkload(env, 40, 9) {
		now = r.ReleaseAt.Seconds()
		s.OnRequest(r, now)
	}
	planned := false
	for i := 0; i < 4 && !planned; i++ {
		idle := fleet.NewTaxi(env.g, int64(200+i), 3, env.vertexNear(t, 0.2+0.2*float64(i), 0.5))
		s.AddTaxi(idle, now)
		if s.PlanIdle(idle, now) {
			planned = len(idle.Route()) > 1
		}
	}
	if !planned {
		t.Fatal("no idle taxi ever received a cruise plan")
	}
}

// TestQueueGroupGlobalBoundRejection fills the sharded pool to its
// global bound with requests spread over several shard queues — each
// individually far below its own capacity — and checks the next push is
// refused through the noteRejected path: reported as PushRejectedFull,
// with rejection accounting identical to a single PendingQueue of the
// same capacity fed the same stream.
func TestQueueGroupGlobalBoundRejection(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, nil)
	const capacity = 6
	single := env.e.NewPendingPool(capacity)
	group := se.NewPendingPool(capacity)
	reqs := seededWorkload(env, capacity+4, 17)
	for i, r := range reqs {
		ga, gb := single.Push(r, 0), group.Push(r, 0)
		if ga != gb {
			t.Fatalf("req %d: single %v, group %v", i, ga, gb)
		}
		if i < capacity && ga != PushAccepted {
			t.Fatalf("req %d refused below the bound: %v", i, ga)
		}
		if i >= capacity && ga != PushRejectedFull {
			t.Fatalf("req %d past the bound = %v, want PushRejectedFull", i, ga)
		}
	}
	// The bound must have tripped while every shard queue had room of its
	// own (per-shard capacity equals the group bound), and the workload
	// must genuinely span shards — otherwise this test shows nothing.
	depths := group.(*QueueGroup).ShardDepths()
	nonEmpty := 0
	for sh, d := range depths {
		if d >= capacity {
			t.Fatalf("shard %d queue full (%d/%d): the global bound was not the binding constraint", sh, d, capacity)
		}
		if d > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("workload landed on %d shard queues, need >= 2 for the global bound to differ from a shard bound", nonEmpty)
	}
	gs, ss := group.Stats(), single.Stats()
	if gs.Rejected != ss.Rejected || gs.Rejected != 4 {
		t.Fatalf("Rejected: group %d, single %d, want 4", gs.Rejected, ss.Rejected)
	}
	if gs.Enqueued != ss.Enqueued || gs.Depth != ss.Depth {
		t.Fatalf("accounting diverged: group %+v, single %+v", gs, ss)
	}
}

// TestQueueGroupStatsConservation drives the sharded pool through a
// mixed push/serve/expire sequence and checks the lifecycle conservation
// law Enqueued == Depth + Served + Expired — every accepted push is
// still parked, was served, or expired; refused pushes touch only
// Rejected.
func TestQueueGroupStatsConservation(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 3, nil)
	group := se.NewPendingPool(16)
	check := func(when string) {
		st := group.Stats()
		if st.Enqueued != int64(st.Depth)+st.Served+st.Expired {
			t.Fatalf("%s: Enqueued %d != Depth %d + Served %d + Expired %d (stats %+v)",
				when, st.Enqueued, st.Depth, st.Served, st.Expired, st)
		}
	}
	reqs := seededWorkload(env, 10, 23)
	for i, r := range reqs {
		if !group.Push(r, 0).Accepted() {
			t.Fatalf("push %d refused below capacity", i)
		}
		check("push")
	}
	// Serve three of them.
	for _, r := range reqs[:3] {
		if !group.MarkServed(r.ID, 1) {
			t.Fatalf("MarkServed(%d) missed a parked request", r.ID)
		}
		check("serve")
	}
	// Expire a strict prefix of the remainder: sweep past the median
	// parked pickup deadline.
	snap := group.Snapshot()
	cut := snap[len(snap)/2].Req.PickupDeadline(env.e.Config().SpeedMps).Seconds()
	expired := group.ExpireBefore(cut + 0.001)
	if len(expired) == 0 || len(expired) == len(snap) {
		t.Fatalf("expiry swept %d of %d parked requests; need a strict subset", len(expired), len(snap))
	}
	check("expire")
	// An already-expired push is refused and must not disturb the law.
	if got := group.Push(expired[0].Req, cut+0.001); got != PushRejectedExpired {
		t.Fatalf("re-push of expired request = %v, want PushRejectedExpired", got)
	}
	check("expired re-push")
	st := group.Stats()
	if st.Served != 3 || st.Expired != int64(len(expired)) || st.Enqueued != int64(len(reqs)) {
		t.Fatalf("final stats %+v, want Enqueued=%d Served=3 Expired=%d", st, len(reqs), len(expired))
	}
}
