package match

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/roadnet"
)

// seededWorkload builds a deterministic request stream over the test city.
func seededWorkload(env *testEnv, n int, seed int64) []*fleet.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]*fleet.Request, 0, n)
	nv := env.g.NumVertices()
	for len(reqs) < n {
		o := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		if o == d || math.IsInf(env.e.Router().Cost(o, d), 1) {
			continue
		}
		release := float64(len(reqs)) * 5
		reqs = append(reqs, env.request(int64(len(reqs)+1), o, d, release, 1.4))
	}
	return reqs
}

// placeFleet registers a deterministic fleet.
func placeFleet(env *testEnv, n int, seed int64) []*fleet.Taxi {
	rng := rand.New(rand.NewSource(seed))
	taxis := make([]*fleet.Taxi, n)
	for i := range taxis {
		at := roadnet.VertexID(rng.Intn(env.g.NumVertices()))
		taxis[i] = fleet.NewTaxi(env.g, int64(i+1), 3, at)
		env.e.AddTaxi(taxis[i], 0)
	}
	return taxis
}

// dispatchTrace is the observable outcome of one dispatched request.
type dispatchTrace struct {
	served bool
	taxiID int64
	detour uint64 // float bits: equality must be exact, not approximate
	events []fleet.Event
	legLen int
}

// runWorkload dispatches and commits the workload on a fresh engine with
// the given parallelism, returning the per-request outcome trace.
func runWorkload(t *testing.T, parallelism int, probabilistic bool) []dispatchTrace {
	t.Helper()
	env := newTestEnv(t, func(c *Config) { c.Parallelism = parallelism })
	placeFleet(env, 12, 42)
	reqs := seededWorkload(env, 80, 7)
	out := make([]dispatchTrace, len(reqs))
	for i, r := range reqs {
		now := r.ReleaseAt.Seconds()
		a, ok := env.e.Dispatch(r, now, probabilistic)
		out[i] = dispatchTrace{served: ok}
		if !ok {
			continue
		}
		out[i].taxiID = a.Taxi.ID
		out[i].detour = math.Float64bits(a.DetourMeters)
		out[i].events = a.Events
		for _, leg := range a.Legs {
			out[i].legLen += len(leg)
		}
		if err := env.e.Commit(a, now); err != nil {
			t.Fatalf("request %d: commit: %v", r.ID, err)
		}
	}
	return out
}

// TestDispatchParallelMatchesSequential asserts the headline determinism
// guarantee: sequential dispatch (Parallelism=1) and parallel dispatch
// produce bit-identical assignments on a seeded workload, including under
// probabilistic routing.
func TestDispatchParallelMatchesSequential(t *testing.T) {
	for _, prob := range []bool{false, true} {
		seq := runWorkload(t, 1, prob)
		for _, par := range []int{2, 8} {
			got := runWorkload(t, par, prob)
			served := 0
			for i := range seq {
				if seq[i].served != got[i].served {
					t.Fatalf("prob=%v par=%d req %d: served %v vs %v", prob, par, i, seq[i].served, got[i].served)
				}
				if !seq[i].served {
					continue
				}
				served++
				if seq[i].taxiID != got[i].taxiID {
					t.Fatalf("prob=%v par=%d req %d: taxi %d vs %d", prob, par, i, seq[i].taxiID, got[i].taxiID)
				}
				if seq[i].detour != got[i].detour {
					t.Fatalf("prob=%v par=%d req %d: detour bits %x vs %x", prob, par, i, seq[i].detour, got[i].detour)
				}
				if len(seq[i].events) != len(got[i].events) || seq[i].legLen != got[i].legLen {
					t.Fatalf("prob=%v par=%d req %d: schedule shape differs", prob, par, i)
				}
				for j := range seq[i].events {
					if seq[i].events[j].Kind != got[i].events[j].Kind ||
						seq[i].events[j].Req.ID != got[i].events[j].Req.ID {
						t.Fatalf("prob=%v par=%d req %d: event %d differs", prob, par, i, j)
					}
				}
			}
			if served == 0 {
				t.Fatalf("prob=%v: workload served nothing; test is vacuous", prob)
			}
		}
	}
}

// TestDispatchTieBreaksByTaxiID pins the deterministic tie-break: two
// identical empty taxis at the same vertex yield equal detours, and the
// lower taxi ID must win at every parallelism level (before the fix the
// winner depended on candidate-map iteration order).
func TestDispatchTieBreaksByTaxiID(t *testing.T) {
	for _, par := range []int{1, 4} {
		env := newTestEnv(t, func(c *Config) { c.Parallelism = par })
		at := env.vertexNear(t, 0.5, 0.5)
		// Higher ID registered first so insertion order cannot mask a
		// broken tie-break.
		for _, id := range []int64{9, 4, 7} {
			env.e.AddTaxi(fleet.NewTaxi(env.g, id, 3, at), 0)
		}
		dest := env.vertexNear(t, 0.8, 0.8)
		req := env.request(1, at, dest, 0, 1.5)
		a, ok := env.e.Dispatch(req, 0, false)
		if !ok {
			t.Fatal("no assignment for a trivially servable request")
		}
		if a.Taxi.ID != 4 {
			t.Fatalf("parallelism %d: tie resolved to taxi %d, want lowest ID 4", par, a.Taxi.ID)
		}
	}
}

// TestEngineConcurrentDispatchCommitReindex hammers one engine from 8
// goroutines mixing Dispatch, Commit, and ReindexTaxi. It exists to fail
// under the race detector if any fleet or index state is touched without
// synchronisation; logical assertions are minimal by design.
func TestEngineConcurrentDispatchCommitReindex(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.Parallelism = 4 })
	taxis := placeFleet(env, 16, 11)
	reqs := seededWorkload(env, 96, 23)

	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for k := 0; k < 24; k++ {
				r := reqs[(w*24+k)%len(reqs)]
				now := r.ReleaseAt.Seconds()
				switch k % 3 {
				case 0:
					env.e.Dispatch(r, now, false)
				case 1:
					if a, ok := env.e.Dispatch(r, now, true); ok {
						// Concurrent commits may conflict on a taxi; the
						// plan validation rejects stale ones, which is the
						// behaviour under test.
						_ = env.e.Commit(a, now)
					}
				default:
					env.e.ReindexTaxi(taxis[rng.Intn(len(taxis))], now)
				}
			}
		}(w)
	}
	wg.Wait()
	st := env.e.Stats()
	if st.Dispatches == 0 {
		t.Fatal("no dispatches ran")
	}
}
