package match

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/roadnet"
)

// This file implements the global batch-assignment round (ROADMAP item 4):
// instead of committing each pending request's individually-best taxi in
// deadline order — greedy, order-sensitive under contention — the round
// builds the full bipartite cost graph of feasible (request, taxi) options
// and solves a min-cost maximum-cardinality assignment over it, so a
// request can yield its first-choice taxi to a tighter competitor and take
// its second choice instead of falling back to the queue. Enumeration goes
// through the ordinary dispatch pipeline (candidate rules 1-3, landmark
// lower-bound screening, insertion scheduling), the solve is pure
// arithmetic with (cost, request, taxi) tie-breaks, and the commits reuse
// the two-phase batch protocol — the whole round stays bit-identical at
// every Config.Parallelism level and shard count.

// batchAssignMinSize is the smallest batch worth a global solve: a
// singleton batch has nothing to contend with, so the greedy order is
// already globally optimal.
const batchAssignMinSize = 2

// unmatchedCost prices a request's virtual "goes unserved" column in the
// assignment matrix. It dominates any achievable sum of real detours
// (meters over a metropolitan graph, batches bounded by queue capacity),
// so minimising total cost maximises cardinality first and only then
// minimises detour among the maximum matchings.
const unmatchedCost = 1e12

// assignOption is one feasible (request, taxi) pairing of the batch cost
// graph: the taxi's best schedule instance for the request, carried from
// enumeration to commit. Legs may be nil — they are materialised only for
// winners (finishAssignment), never for the whole graph.
type assignOption struct {
	taxi   *fleet.Taxi
	events []fleet.Event
	legs   [][]roadnet.VertexID
	eval   fleet.EvalResult
	detour float64
}

// fill copies the option into an assignment being committed.
func (o *assignOption) fill(a *Assignment) {
	a.Taxi, a.Events, a.Legs, a.Eval, a.DetourMeters = o.taxi, o.events, o.legs, o.eval, o.detour
}

// feasibleOptions keeps the feasible candidate results in ascending
// taxi-ID order — the canonical column order of the cost graph. The sort
// is what makes the option list independent of candidate-set iteration
// order (a map walk) and of worker completion order.
func feasibleOptions(results []candResult) []assignOption {
	opts := make([]assignOption, 0, len(results))
	for i := range results {
		r := &results[i]
		if !r.ok {
			continue
		}
		opts = append(opts, assignOption{taxi: r.taxi, events: r.events, legs: r.legs, eval: r.eval, detour: r.detour})
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].taxi.ID < opts[j].taxi.ID })
	return opts
}

// bestAssignOption reproduces the greedy winner over an option list:
// minimum detour, ties to the lowest taxi ID (the list is ID-sorted, so
// strict less keeps the first). nil when the list is empty.
func bestAssignOption(opts []assignOption) *assignOption {
	var best *assignOption
	for i := range opts {
		if best == nil || opts[i].detour < best.detour {
			best = &opts[i]
		}
	}
	return best
}

// batchAssigner extends the batch protocol surface with full-graph option
// enumeration and deferred leg materialisation; Engine and ShardedEngine
// both qualify.
type batchAssigner interface {
	batchDispatcher
	dispatchOptions(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) ([]assignOption, int)
	finishAssignment(a *Assignment) bool
}

// dispatchOptions enumerates every feasible (request, taxi) option through
// the ordinary pipeline — candidate search, landmark screening, insertion
// scheduling across the worker pool — and returns them in taxi-ID order,
// plus the candidate-set size examined. Unlike DispatchContext it keeps
// every feasible candidate instead of reducing to the single winner.
func (e *Engine) dispatchOptions(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) ([]assignOption, int) {
	t0 := time.Now()
	cands := e.CandidateTaxis(req, nowSeconds)
	e.ins.candidateSearchSeconds.ObserveSince(t0)
	e.ins.dispatches.Inc()
	e.ins.candidatesExamined.Add(int64(len(cands)))
	if len(cands) == 0 || ctx.Err() != nil {
		return nil, len(cands)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	t1 := time.Now()
	results := e.evalCandidates(cands, req, nowSeconds, probabilistic)
	e.ins.schedulingSeconds.ObserveSince(t1)
	return feasibleOptions(results), len(cands)
}

// finishAssignment materialises a winning option's route legs (nil for
// non-probabilistic schedules, which defer leg building to the winner).
func (e *Engine) finishAssignment(a *Assignment) bool {
	if a.Legs != nil {
		return true
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.materializeLegsLocked(a)
}

// dispatchOptions is the sharded enumeration: the home shard drives the
// pipeline over the frozen cross-shard candidate union, exactly as
// DispatchContext does, keeping every feasible option.
func (se *ShardedEngine) dispatchOptions(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) ([]assignOption, int) {
	home := se.HomeShard(req)
	h := se.shards[home]
	se.ins[home].requests.Inc()
	se.rlockAll()
	defer se.runlockAll()
	t0 := time.Now()
	cands := se.candidateTaxis(home, req, nowSeconds)
	h.ins.candidateSearchSeconds.ObserveSince(t0)
	h.ins.dispatches.Inc()
	h.ins.candidatesExamined.Add(int64(len(cands)))
	if len(cands) == 0 || ctx.Err() != nil {
		return nil, len(cands)
	}
	t1 := time.Now()
	results := h.evalCandidates(cands, req, nowSeconds, probabilistic)
	h.ins.schedulingSeconds.ObserveSince(t1)
	return feasibleOptions(results), len(cands)
}

// finishAssignment builds the winner's legs through its home shard under
// the group read locks (the taxi may live on another shard).
func (se *ShardedEngine) finishAssignment(a *Assignment) bool {
	if a.Legs != nil {
		return true
	}
	home := se.HomeShard(a.Req)
	se.rlockAll()
	defer se.runlockAll()
	return se.shards[home].materializeLegsLocked(a)
}

// runBatchAssign is the global-assignment batch round. Phase 1 enumerates
// the full option graph against the frozen fleet state; the solve picks
// the min-cost maximum-cardinality matching; winners commit through the
// shared protocol in (pickup deadline, request ID) order; then a remainder
// pass re-dispatches every still-unserved request against live state — a
// taxi can absorb several requests through ridesharing insertions, which a
// one-to-one matching cannot express, and the remainder pass is what keeps
// the global round's served count from ever trailing greedy's. Degenerate
// graphs (tiny batch, no feasible pair, no contested taxi) fall back to
// the greedy commit order, which is globally optimal for them anyway.
func runBatchAssign(ctx context.Context, d batchAssigner, reqs []*fleet.Request, nowSeconds float64, probabilistic bool, h batchHooks) []BatchOutcome {
	if len(reqs) < batchAssignMinSize {
		return runBatch(ctx, d, reqs, nowSeconds, probabilistic, h)
	}
	order := batchOrder(d, reqs)
	// Phase 1: enumerate every feasible (request, taxi) option against the
	// same fleet state (no commits interleave).
	options := make([][]assignOption, len(order))
	candCounts := make([]int, len(order))
	total := 0
	for i, r := range order {
		options[i], candCounts[i] = d.dispatchOptions(ctx, r, nowSeconds, probabilistic)
		total += len(options[i])
		h.evaluated(r)
	}
	// The solve only pays off when at least two requests contest a taxi;
	// with disjoint option sets the per-request costs are independent, so
	// the greedy per-request minima already form the min-cost matching.
	contested := false
	firstSeen := make(map[int64]int)
	for i := range options {
		for k := range options[i] {
			id := options[i][k].taxi.ID
			if j, ok := firstSeen[id]; ok {
				if j != i {
					contested = true
				}
			} else {
				firstSeen[id] = i
			}
		}
	}
	out := make([]BatchOutcome, len(order))
	for i, r := range order {
		out[i] = BatchOutcome{Req: r, Assignment: Assignment{Req: r, Candidates: candCounts[i]}}
	}
	if !contested || total == 0 {
		if h.assignRound != nil {
			h.assignRound(total, true)
		}
		for i := range out {
			if best := bestAssignOption(options[i]); best != nil {
				best.fill(&out[i].Assignment)
				out[i].Served = true
			}
		}
		commitBatch(ctx, d, out, nowSeconds, probabilistic, h, d.finishAssignment)
		return out
	}
	if h.assignRound != nil {
		h.assignRound(total, false)
	}
	// Cost matrix: rows are requests in batch order, columns distinct
	// candidate taxis in ascending ID order, +Inf where no feasible
	// insertion exists. Both orders are canonical, so the solve — itself
	// deterministic — sees the identical matrix at every parallelism level
	// and shard count.
	colIDs := make([]int64, 0, len(firstSeen))
	for id := range firstSeen {
		colIDs = append(colIDs, id)
	}
	sort.Slice(colIDs, func(i, j int) bool { return colIDs[i] < colIDs[j] })
	colOf := make(map[int64]int, len(colIDs))
	for j, id := range colIDs {
		colOf[id] = j
	}
	cost := make([][]float64, len(order))
	optAt := make([][]*assignOption, len(order))
	for i := range order {
		cost[i] = make([]float64, len(colIDs))
		optAt[i] = make([]*assignOption, len(colIDs))
		for j := range cost[i] {
			cost[i][j] = math.Inf(1)
		}
		for k := range options[i] {
			o := &options[i][k]
			j := colOf[o.taxi.ID]
			cost[i][j] = o.detour
			optAt[i][j] = o
		}
	}
	match := solveMinCostAssignment(cost)
	// Commit winners through the shared protocol. The matching gives each
	// taxi at most one winner, so winner commits cannot conflict with each
	// other; commitBatch still covers the stale-commit case (a concurrent
	// commit outside the batch).
	for i := range out {
		if j := match[i]; j >= 0 {
			optAt[i][j].fill(&out[i].Assignment)
			out[i].Served = true
		}
	}
	commitBatch(ctx, d, out, nowSeconds, probabilistic, h, d.finishAssignment)
	// Remainder pass: requests the matching left out (or whose commit went
	// stale) get a greedy re-dispatch against the post-commit fleet state,
	// in the same deterministic order.
	for i := range out {
		o := &out[i]
		if o.Served {
			continue
		}
		a, ok := d.DispatchContext(ctx, o.Req, nowSeconds, probabilistic)
		if !ok || d.Commit(a, nowSeconds) != nil {
			continue
		}
		o.Assignment, o.Served = a, true
		if h.assignRemainderServed != nil {
			h.assignRemainderServed()
		}
	}
	return out
}

// solveMinCostAssignment solves the min-cost maximum-cardinality
// assignment over a dense cost matrix (rows: requests, columns: taxis,
// +Inf: infeasible pair), returning each row's matched column or -1. Every
// row gets a private virtual column priced at unmatchedCost, which makes
// the matrix square-solvable while penalising non-assignment above any
// achievable detour sum — cardinality first, cost second.
//
// The algorithm is the Hungarian method in its shortest-augmenting-path
// form with dual potentials, O(rows² · cols). Determinism: the inner
// minimum scans columns in ascending index order with strict comparisons,
// so cost ties resolve to the lowest column index — with rows iterated in
// (pickup deadline, request ID) order and columns in taxi-ID order, the
// tie-break is exactly (cost, request, taxi).
func solveMinCostAssignment(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	nReal := len(cost[0])
	m := nReal + n
	at := func(i, j int) float64 {
		switch {
		case j < nReal:
			return cost[i][j]
		case j == nReal+i:
			return unmatchedCost
		default:
			return math.Inf(1)
		}
	}
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row matched to column j (1-based, 0 = free)
	way := make([]int, m+1) // alternating-tree back-pointers
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0, j1 := p[j0], 0
			delta := math.Inf(1)
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				if cur := at(i0-1, j-1) - u[i0] - v[j]; cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= nReal; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
