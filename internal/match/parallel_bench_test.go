package match

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// benchWorld is the shared large city for the parallel-dispatch benchmark:
// a 100x100 grid (~10k vertices), an order of magnitude above the unit-test
// world, so per-candidate scheduling work dominates dispatch.
var benchWorld struct {
	once sync.Once
	g    *roadnet.Graph
	spx  *roadnet.SpatialIndex
	pt   *partition.Partitioning
	err  error
}

func bigWorld(b *testing.B) (*roadnet.Graph, *roadnet.SpatialIndex, *partition.Partitioning) {
	b.Helper()
	benchWorld.once.Do(func() {
		g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(100, 100))
		if err != nil {
			benchWorld.err = err
			return
		}
		spx := roadnet.NewSpatialIndex(g, 250)
		min, max := g.Bounds()
		center := geo.Midpoint(min, max)
		extent := geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng})
		ds, err := trace.Generate(trace.Workday, trace.GenParams{
			Center: center, ExtentMeters: extent, TripsPerHourPeak: 600,
			UniformFrac: 0.15, MinTripMeters: 500, Seed: 2,
		})
		if err != nil {
			benchWorld.err = err
			return
		}
		pairs := make([]struct{ Origin, Dest geo.Point }, len(ds.Trips))
		for i, tr := range ds.Trips {
			pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
		}
		params := partition.DefaultParams(40)
		pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), params)
		if err != nil {
			benchWorld.err = err
			return
		}
		benchWorld.g, benchWorld.spx, benchWorld.pt = g, spx, pt
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.g, benchWorld.spx, benchWorld.pt
}

// BenchmarkDispatchParallel measures one Dispatch call on a saturated
// 10k-vertex city at increasing worker parallelism. The workload is
// identical across sub-benchmarks (parallel dispatch is bit-identical to
// sequential), so ns/op ratios are direct speedups.
func BenchmarkDispatchParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			g, spx, pt := bigWorld(b)
			cfg := DefaultConfig()
			cfg.SearchRangeMeters = 6000
			cfg.Parallelism = par
			// Large enough that steady-state scheduling is not dominated
			// by LRU thrash recomputing evicted trees.
			cfg.RouterCacheTrees = 4096
			cfg.CH = bigWorldCH(b)
			e, err := NewEngine(pt, spx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			env := &testEnv{g: g, spx: spx, pt: pt, e: e}
			placeFleet(env, 400, 42)
			// Preload: commit a request stream so taxis carry non-trivial
			// schedules; dispatch then enumerates real insertions.
			preload := seededWorkload(env, 400, 7)
			var now float64
			for _, r := range preload {
				now = r.ReleaseAt.Seconds()
				if a, ok := e.Dispatch(r, now, false); ok {
					if err := e.Commit(a, now); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Probes release at the post-preload clock so candidate search
			// sees the saturated fleet with live schedules.
			probeRNG := rand.New(rand.NewSource(99))
			nv := g.NumVertices()
			probes := make([]*fleet.Request, 0, 128)
			for len(probes) < cap(probes) {
				o := roadnet.VertexID(probeRNG.Intn(nv))
				d := roadnet.VertexID(probeRNG.Intn(nv))
				if o == d || math.IsInf(e.Router().Cost(o, d), 1) {
					continue
				}
				probes = append(probes, env.request(int64(10000+len(probes)), o, d, now, 1.5))
			}
			s0 := e.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Dispatch(probes[i%len(probes)], now, false)
			}
			b.StopTimer()
			s1 := e.Stats()
			n := float64(b.N)
			b.ReportMetric((float64(s1.CandidateSearchNanos-s0.CandidateSearchNanos))/n, "candsearch-ns/op")
			b.ReportMetric((float64(s1.SchedulingNanos-s0.SchedulingNanos))/n, "sched-ns/op")
			b.ReportMetric(float64(s1.CandidatesExamined-s0.CandidatesExamined)/n, "cands/op")
		})
	}
}

// BenchmarkDispatchSharded measures one Dispatch call on the same
// saturated city as BenchmarkDispatchParallel, but with the dispatcher
// split into territory shards. The workload is identical across
// sub-benchmarks (sharded dispatch is bit-identical to single-engine),
// so ns/op ratios isolate the cost of the cross-shard candidate union
// and the two-phase border protocol.
func BenchmarkDispatchSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g, spx, pt := bigWorld(b)
			cfg := DefaultConfig()
			cfg.SearchRangeMeters = 6000
			cfg.Parallelism = 4
			cfg.RouterCacheTrees = 4096
			cfg.CH = bigWorldCH(b)
			cfg.Sharding = ShardingConfig{Shards: shards}
			d, err := NewDispatcher(pt, spx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			fleetRNG := rand.New(rand.NewSource(42))
			for i := 0; i < 400; i++ {
				at := roadnet.VertexID(fleetRNG.Intn(g.NumVertices()))
				d.AddTaxi(fleet.NewTaxi(g, int64(i+1), 3, at), 0)
			}
			speed := d.Config().SpeedMps
			mkReq := func(id int64, o, dv roadnet.VertexID, release, rho float64) *fleet.Request {
				direct := d.Router().Cost(o, dv)
				directSec := direct / speed
				return &fleet.Request{
					ID:           fleet.RequestID(id),
					ReleaseAt:    time.Duration(release * float64(time.Second)),
					Origin:       o,
					Dest:         dv,
					Deadline:     time.Duration((release + directSec*rho) * float64(time.Second)),
					DirectMeters: direct,
					Passengers:   1,
					OriginPt:     g.Point(o),
					DestPt:       g.Point(dv),
				}
			}
			draw := func(rng *rand.Rand, n int, baseID int64, rho float64, releaseOf func(i int) float64) []*fleet.Request {
				nv := g.NumVertices()
				reqs := make([]*fleet.Request, 0, n)
				for len(reqs) < n {
					o := roadnet.VertexID(rng.Intn(nv))
					dv := roadnet.VertexID(rng.Intn(nv))
					if o == dv || math.IsInf(d.Router().Cost(o, dv), 1) {
						continue
					}
					reqs = append(reqs, mkReq(baseID+int64(len(reqs)), o, dv, releaseOf(len(reqs)), rho))
				}
				return reqs
			}
			// Preload matches the parallel benchmark: commit a stream so
			// taxis carry live schedules before probing.
			var now float64
			for _, r := range draw(rand.New(rand.NewSource(7)), 400, 1, 1.4, func(i int) float64 { return float64(i) * 5 }) {
				now = r.ReleaseAt.Seconds()
				if a, ok := d.Dispatch(r, now, false); ok {
					if err := d.Commit(a, now); err != nil {
						b.Fatal(err)
					}
				}
			}
			rel := now
			probes := draw(rand.New(rand.NewSource(99)), 128, 10000, 1.5, func(int) float64 { return rel })
			s0 := d.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Dispatch(probes[i%len(probes)], now, false)
			}
			b.StopTimer()
			s1 := d.Stats()
			n := float64(b.N)
			b.ReportMetric((float64(s1.CandidateSearchNanos-s0.CandidateSearchNanos))/n, "candsearch-ns/op")
			b.ReportMetric((float64(s1.SchedulingNanos-s0.SchedulingNanos))/n, "sched-ns/op")
			b.ReportMetric(float64(s1.CandidatesExamined-s0.CandidatesExamined)/n, "cands/op")
			var cross int64
			for _, sh := range d.ShardStats() {
				cross += sh.CrossShardCandidates
			}
			b.ReportMetric(float64(cross)/n, "x-cands/op")
		})
	}
}
