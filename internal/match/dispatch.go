package match

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// Assignment is the outcome of matching one request: the chosen taxi, its
// updated schedule with materialised route legs, the schedule evaluation,
// and the detour cost of Eq. 4.
type Assignment struct {
	Taxi   *fleet.Taxi
	Req    *fleet.Request
	Events []fleet.Event
	Legs   [][]roadnet.VertexID
	Eval   fleet.EvalResult
	// DetourMeters is cost(R'_tj) − cost(R_tj): the increase of the
	// taxi's remaining travel distance caused by serving the request.
	DetourMeters float64
	// Candidates is the size of the candidate taxi set examined
	// (Table III).
	Candidates int
}

// candResult is one candidate taxi's best schedule instance, computed
// independently of every other candidate so the per-candidate work can fan
// out across workers.
type candResult struct {
	taxi   *fleet.Taxi
	events []fleet.Event
	legs   [][]roadnet.VertexID // probabilistic plans materialise eagerly
	eval   fleet.EvalResult
	detour float64
	ok     bool
}

// better orders candidate results deterministically: by detour cost, then
// by taxi ID. The taxi-ID tie-break makes the winner independent of both
// candidate-list iteration order (a map walk) and goroutine completion
// order, so sequential and parallel dispatch provably agree.
func (a *candResult) better(b *candResult) bool {
	if !a.ok || !b.ok {
		return a.ok
	}
	if a.detour != b.detour {
		return a.detour < b.detour
	}
	return a.taxi.ID < b.taxi.ID
}

// lbDeadlineEpsilon pads the lower-bound deadline comparisons against
// floating-point rounding: the oracle's bound is mathematically <= the
// exact leg costs, but is computed through a different float expression,
// so a borderline candidate gets the benefit of the doubt rather than an
// unsound prune. One microsecond of simulated time is far below any
// schedule-relevant scale.
const lbDeadlineEpsilon = 1e-6

// screenCandidateLB applies the landmark lower-bound screen (the oracle's
// reason to exist): using only precomputed offsets, it proves — when it
// returns true — that no insertion of req into t's schedule can meet the
// request's deadlines, so exact schedule evaluation (and every router
// query it would issue) is skipped.
//
// The proof obligation is losslessness. Every insertion candidate routes
// t from params.Start through zero or more events to req.Origin and later
// to req.Dest, over legs costed by exact (or partition-filtered, hence >=
// exact) shortest paths, so by the triangle inequality:
//
//	arrival(pickup)  >= now + (lead + d(start, origin)) / speed
//	arrival(dropoff) >= now + (lead + d(start, origin) + d(origin, dest)) / speed
//
// EstimateLB underestimates d(start, origin), and DirectMeters is exactly
// d(origin, dest) (falling back to the oracle when unset). EvaluateSchedule
// rejects any schedule whose pickup or dropoff arrival strictly exceeds
// its deadline, so a candidate whose lower-bounded arrival already does is
// infeasible in every insertion — pruning it cannot change the winner.
func (e *Engine) screenCandidateLB(req *fleet.Request, params fleet.EvalParams) bool {
	t0 := time.Now()
	defer e.ins.lbEstimateSeconds.ObserveSince(t0)
	e.ins.lbEvaluated.Inc()
	lbPickup := e.oracle.EstimateLB(params.Start, req.Origin)
	minPickup := params.NowSeconds + (params.LeadMeters+lbPickup)/params.SpeedMps
	if minPickup > req.PickupDeadline(params.SpeedMps).Seconds()+lbDeadlineEpsilon {
		e.ins.lbPruned.Inc()
		return true
	}
	direct := req.DirectMeters
	if direct <= 0 {
		direct = e.oracle.EstimateLB(req.Origin, req.Dest)
	}
	if minPickup+direct/params.SpeedMps > req.Deadline.Seconds()+lbDeadlineEpsilon {
		e.ins.lbPruned.Inc()
		return true
	}
	return false
}

// evalCandidate runs the per-candidate half of Alg. 1 for one taxi: it
// enumerates schedule instances (insertion-only, exhaustive reorder, or
// probabilistic) and keeps the feasible one with the minimum travel cost.
// Ties between instances of the same taxi resolve by enumeration order,
// which is deterministic. It only reads engine and taxi state; the caller
// holds the fleet read lock.
func (e *Engine) evalCandidate(t *fleet.Taxi, req *fleet.Request, nowSeconds float64, probabilistic bool) candResult {
	res := candResult{taxi: t}
	params := t.EvalParamsAt(nowSeconds, e.cfg.SpeedMps)
	if e.oracle != nil && e.screenCandidateLB(req, params) {
		return res
	}
	if probabilistic && e.ProbEnabled(t) {
		for _, cand := range fleet.InsertionCandidates(t.Schedule(), req) {
			legs, eval, ok := e.ProbabilisticPlan(cand, t, nowSeconds)
			if !ok {
				continue
			}
			detour := eval.TotalMeters - t.RemainingMeters()
			if !res.ok || detour < res.detour {
				res.events, res.legs, res.eval, res.detour = cand, legs, eval, detour
				res.ok = true
			}
		}
		return res
	}
	var (
		sched []fleet.Event
		eval  fleet.EvalResult
		ok    bool
	)
	if e.cfg.ExhaustiveReorder {
		sched, eval, ok = fleet.BestReorder(t.Schedule(), req, e.BasicLegCost, params, e.cfg.reorderBudget())
	} else {
		sched, eval, ok = fleet.BestInsertion(t.Schedule(), req, e.BasicLegCost, params, false)
	}
	if !ok {
		return res
	}
	res.events, res.eval, res.detour, res.ok = sched, eval, eval.TotalMeters-t.RemainingMeters(), true
	return res
}

// evalCandidates computes every candidate's best schedule instance,
// fanning the work across min(Parallelism, len(cands)) workers. Results
// land in candidate-list order regardless of completion order; the
// deterministic reduction happens in Dispatch.
func (e *Engine) evalCandidates(cands []*fleet.Taxi, req *fleet.Request, nowSeconds float64, probabilistic bool) []candResult {
	results := make([]candResult, len(cands))
	workers := e.cfg.parallelism()
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, t := range cands {
			results[i] = e.evalCandidate(t, req, nowSeconds, probabilistic)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				results[i] = e.evalCandidate(cands[i], req, nowSeconds, probabilistic)
			}
		}()
	}
	wg.Wait()
	return results
}

// Dispatch implements Alg. 1: search candidate taxis for the request,
// enumerate every schedule insertion per candidate, route each instance
// (basic routing, or probabilistic routing for eligible taxis when
// probabilistic is set), and return the assignment with the minimum
// detour cost, tie-broken by taxi ID. The per-candidate work runs on a
// bounded worker pool (Config.Parallelism); the reduction is a total
// order, so parallel and sequential dispatch return bit-identical
// assignments. ok is false when no taxi can feasibly serve the request.
//
// Dispatch does not mutate any fleet state; apply the returned assignment
// with Commit.
func (e *Engine) Dispatch(req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool) {
	return e.DispatchContext(context.Background(), req, nowSeconds, probabilistic)
}

// DispatchContext is Dispatch with a caller context: cancellation is
// honoured between stages, and a tracer carried by the context (or the
// engine's configured tracer) samples a span tree over the dispatch
// stages — dispatch.candidates, dispatch.scheduling, dispatch.legbuild.
// Every stage also lands in the mtshare_match_*_seconds histograms.
func (e *Engine) DispatchContext(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool) {
	if e.tracer != nil && obs.TracerFrom(ctx) == nil {
		ctx = obs.WithTracer(ctx, e.tracer)
	}
	ctx, sp := obs.StartSpan(ctx, "dispatch")
	defer sp.End()
	tDispatch := time.Now()
	defer e.ins.dispatchSeconds.ObserveSince(tDispatch)

	_, spc := obs.StartSpan(ctx, "dispatch.candidates")
	t0 := time.Now()
	cands := e.CandidateTaxis(req, nowSeconds)
	e.ins.candidateSearchSeconds.ObserveSince(t0)
	spc.End()
	e.ins.dispatches.Inc()
	e.ins.candidatesExamined.Add(int64(len(cands)))
	best := Assignment{Req: req, Candidates: len(cands)}
	if len(cands) == 0 || ctx.Err() != nil {
		return best, false
	}

	// The evaluation only reads taxi state, but a concurrent Commit (or
	// ReindexTaxi) may not mutate it mid-evaluation; hold the fleet read
	// lock across the fan-out and the winner's leg materialisation.
	e.mu.RLock()
	defer e.mu.RUnlock()
	return best, e.dispatchLocked(ctx, req, nowSeconds, probabilistic, cands, &best)
}

// dispatchLocked runs the scheduling and leg-materialisation stages of
// Alg. 1 over a prepared candidate set, filling best in place. The caller
// holds the fleet read lock(s) covering every candidate — e.mu for a
// single engine, every shard's registry lock for a sharded dispatch (the
// reserve phase) — so candidate state cannot mutate mid-evaluation.
func (e *Engine) dispatchLocked(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool, cands []*fleet.Taxi, best *Assignment) bool {
	_, sps := obs.StartSpan(ctx, "dispatch.scheduling")
	t1 := time.Now()
	results := e.evalCandidates(cands, req, nowSeconds, probabilistic)
	win := -1
	for i := range results {
		if !results[i].ok {
			continue
		}
		if win < 0 || results[i].better(&results[win]) {
			win = i
		}
	}
	e.ins.schedulingSeconds.ObserveSince(t1)
	sps.End()
	if e.oracle != nil {
		if ev := e.ins.lbEvaluated.Value(); ev > 0 {
			e.ins.lbPruneRatio.Set(float64(e.ins.lbPruned.Value()) / float64(ev))
		}
	}
	if win < 0 {
		return false
	}
	w := &results[win]
	best.Taxi, best.Events, best.Legs, best.Eval, best.DetourMeters = w.taxi, w.events, w.legs, w.eval, w.detour

	if best.Legs == nil {
		_, spl := obs.StartSpan(ctx, "dispatch.legbuild")
		ok := e.materializeLegsLocked(best)
		spl.End()
		if !ok {
			return false
		}
	}
	return true
}

// materializeLegsLocked fills a winning assignment's basic route legs from
// its schedule events. The caller holds a fleet read lock covering the
// taxi, so NextVertex cannot shift mid-build.
func (e *Engine) materializeLegsLocked(a *Assignment) bool {
	t0 := time.Now()
	defer e.ins.legBuildSeconds.ObserveSince(t0)
	vertices := make([]roadnet.VertexID, len(a.Events))
	for i, ev := range a.Events {
		vertices[i] = ev.Vertex()
	}
	legs, ok := e.BuildBasicLegs(a.Taxi.NextVertex(), vertices)
	if !ok {
		return false
	}
	a.Legs = legs
	return true
}

// Commit applies an assignment: installs the plan on the taxi, refreshes
// its indexes, and registers the request in the mobility clusters. The
// plan installation takes the fleet write lock, so committing while other
// goroutines dispatch is safe; SetPlan re-validates the schedule against
// the taxi's current passengers, so a stale assignment fails cleanly.
func (e *Engine) Commit(a Assignment, nowSeconds float64) error {
	if a.Taxi == nil {
		return fmt.Errorf("match: committing empty assignment")
	}
	t0 := time.Now()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrDispatcherClosed
	}
	err := a.Taxi.SetPlan(a.Events, a.Legs)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	e.ins.assignments.Inc()
	e.ReindexTaxi(a.Taxi, nowSeconds)
	e.OnRequestAssigned(a.Req)
	e.ins.commitSeconds.ObserveSince(t0)
	return nil
}

// TryServeOffline handles a roadside encounter (§IV-C2 end): taxi t has
// met offline request req; the server checks whether req can be validly
// inserted into t's schedule and commits the insertion when possible.
func (e *Engine) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	e.mu.RLock()
	if t.IdleSeats() < req.Passengers {
		e.mu.RUnlock()
		return false
	}
	params := t.EvalParamsAt(nowSeconds, e.cfg.SpeedMps)
	sched, eval, ok := fleet.BestInsertion(t.Schedule(), req, e.BasicLegCost, params, false)
	if !ok {
		e.mu.RUnlock()
		return false
	}
	vertices := make([]roadnet.VertexID, len(sched))
	for i, ev := range sched {
		vertices[i] = ev.Vertex()
	}
	legs, ok := e.BuildBasicLegs(t.NextVertex(), vertices)
	e.mu.RUnlock()
	if !ok {
		return false
	}
	a := Assignment{Taxi: t, Req: req, Events: sched, Legs: legs, Eval: eval}
	if e.Commit(a, nowSeconds) != nil {
		return false
	}
	e.ins.offlineInsertions.Inc()
	return true
}
