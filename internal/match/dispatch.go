package match

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/roadnet"
)

// Assignment is the outcome of matching one request: the chosen taxi, its
// updated schedule with materialised route legs, the schedule evaluation,
// and the detour cost of Eq. 4.
type Assignment struct {
	Taxi   *fleet.Taxi
	Req    *fleet.Request
	Events []fleet.Event
	Legs   [][]roadnet.VertexID
	Eval   fleet.EvalResult
	// DetourMeters is cost(R'_tj) − cost(R_tj): the increase of the
	// taxi's remaining travel distance caused by serving the request.
	DetourMeters float64
	// Candidates is the size of the candidate taxi set examined
	// (Table III).
	Candidates int
}

// Dispatch implements Alg. 1: search candidate taxis for the request,
// enumerate every schedule insertion per candidate, route each instance
// (basic routing, or probabilistic routing for eligible taxis when
// probabilistic is set), and return the assignment with the minimum
// detour cost. ok is false when no taxi can feasibly serve the request.
//
// Dispatch does not mutate any state; apply the returned assignment with
// Commit.
func (e *Engine) Dispatch(req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool) {
	cands := e.CandidateTaxis(req, nowSeconds)
	e.counters.dispatches.Add(1)
	e.counters.candidatesExamined.Add(int64(len(cands)))
	best := Assignment{Req: req, Candidates: len(cands)}
	found := false
	for _, t := range cands {
		params := t.EvalParamsAt(nowSeconds, e.cfg.SpeedMps)
		if probabilistic && e.ProbEnabled(t) {
			for _, cand := range fleet.InsertionCandidates(t.Schedule(), req) {
				legs, eval, ok := e.ProbabilisticPlan(cand, t, nowSeconds)
				if !ok {
					continue
				}
				detour := eval.TotalMeters - t.RemainingMeters()
				if !found || detour < best.DetourMeters {
					best.Taxi, best.Events, best.Legs, best.Eval, best.DetourMeters = t, cand, legs, eval, detour
					found = true
				}
			}
			continue
		}
		var (
			sched []fleet.Event
			eval  fleet.EvalResult
			ok    bool
		)
		if e.cfg.ExhaustiveReorder {
			sched, eval, ok = fleet.BestReorder(t.Schedule(), req, e.BasicLegCost, params, e.cfg.reorderBudget())
		} else {
			sched, eval, ok = fleet.BestInsertion(t.Schedule(), req, e.BasicLegCost, params, false)
		}
		if !ok {
			continue
		}
		detour := eval.TotalMeters - t.RemainingMeters()
		if !found || detour < best.DetourMeters {
			best.Taxi, best.Events, best.Eval, best.DetourMeters = t, sched, eval, detour
			best.Legs = nil // materialised below
			found = true
		}
	}
	if !found {
		return best, false
	}
	if best.Legs == nil {
		vertices := make([]roadnet.VertexID, len(best.Events))
		for i, ev := range best.Events {
			vertices[i] = ev.Vertex()
		}
		legs, ok := e.BuildBasicLegs(best.Taxi.NextVertex(), vertices)
		if !ok {
			return best, false
		}
		best.Legs = legs
	}
	return best, true
}

// Commit applies an assignment: installs the plan on the taxi, refreshes
// its indexes, and registers the request in the mobility clusters.
func (e *Engine) Commit(a Assignment, nowSeconds float64) error {
	if a.Taxi == nil {
		return fmt.Errorf("match: committing empty assignment")
	}
	if err := a.Taxi.SetPlan(a.Events, a.Legs); err != nil {
		return err
	}
	e.counters.assignments.Add(1)
	e.ReindexTaxi(a.Taxi, nowSeconds)
	e.OnRequestAssigned(a.Req)
	return nil
}

// TryServeOffline handles a roadside encounter (§IV-C2 end): taxi t has
// met offline request req; the server checks whether req can be validly
// inserted into t's schedule and commits the insertion when possible.
func (e *Engine) TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool {
	if t.IdleSeats() < req.Passengers {
		return false
	}
	params := t.EvalParamsAt(nowSeconds, e.cfg.SpeedMps)
	sched, eval, ok := fleet.BestInsertion(t.Schedule(), req, e.BasicLegCost, params, false)
	if !ok {
		return false
	}
	vertices := make([]roadnet.VertexID, len(sched))
	for i, ev := range sched {
		vertices[i] = ev.Vertex()
	}
	legs, ok := e.BuildBasicLegs(t.NextVertex(), vertices)
	if !ok {
		return false
	}
	a := Assignment{Taxi: t, Req: req, Events: sched, Legs: legs, Eval: eval}
	if e.Commit(a, nowSeconds) != nil {
		return false
	}
	e.counters.offlineInsertions.Add(1)
	return true
}
