package match

import "sync/atomic"

// EngineStats counts what the matching pipeline did — how many dispatches
// ran, how the candidate-search refinement rules pruned, and how routing
// modes were exercised. The counters are cumulative and safe to read
// concurrently.
type EngineStats struct {
	// Dispatches is the number of Dispatch calls.
	Dispatches int64
	// Assignments is the number of successful Commit calls.
	Assignments int64
	// CandidatesExamined sums candidate-set sizes across dispatches.
	CandidatesExamined int64
	// PrunedByDirection counts occupied taxis dropped by the mobility-
	// cluster intersection.
	PrunedByDirection int64
	// PrunedByCapacity counts taxis dropped for lacking spare seats.
	PrunedByCapacity int64
	// PrunedByReachability counts taxis dropped by rule 3 (cannot reach
	// the pickup partition in time).
	PrunedByReachability int64
	// ProbabilisticPlans counts probabilistic route plans attempted, and
	// ProbabilisticFailures those discarded.
	ProbabilisticPlans    int64
	ProbabilisticFailures int64
	// OfflineInsertions counts successful roadside-encounter insertions.
	OfflineInsertions int64
	// CruisePlans counts installed idle cruises.
	CruisePlans int64
}

// engineCounters is the atomic backing store inside the Engine.
type engineCounters struct {
	dispatches            atomic.Int64
	assignments           atomic.Int64
	candidatesExamined    atomic.Int64
	prunedByDirection     atomic.Int64
	prunedByCapacity      atomic.Int64
	prunedByReachability  atomic.Int64
	probabilisticPlans    atomic.Int64
	probabilisticFailures atomic.Int64
	offlineInsertions     atomic.Int64
	cruisePlans           atomic.Int64
}

// Stats returns a snapshot of the engine's pipeline counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Dispatches:            e.counters.dispatches.Load(),
		Assignments:           e.counters.assignments.Load(),
		CandidatesExamined:    e.counters.candidatesExamined.Load(),
		PrunedByDirection:     e.counters.prunedByDirection.Load(),
		PrunedByCapacity:      e.counters.prunedByCapacity.Load(),
		PrunedByReachability:  e.counters.prunedByReachability.Load(),
		ProbabilisticPlans:    e.counters.probabilisticPlans.Load(),
		ProbabilisticFailures: e.counters.probabilisticFailures.Load(),
		OfflineInsertions:     e.counters.offlineInsertions.Load(),
		CruisePlans:           e.counters.cruisePlans.Load(),
	}
}
