package match

import "sync/atomic"

// EngineStats counts what the matching pipeline did — how many dispatches
// ran, how the candidate-search refinement rules pruned, and how routing
// modes were exercised. The counters are cumulative and safe to read
// concurrently.
type EngineStats struct {
	// Dispatches is the number of Dispatch calls.
	Dispatches int64
	// Assignments is the number of successful Commit calls.
	Assignments int64
	// CandidatesExamined sums candidate-set sizes across dispatches.
	CandidatesExamined int64
	// PrunedByDirection counts occupied taxis dropped by the mobility-
	// cluster intersection.
	PrunedByDirection int64
	// PrunedByCapacity counts taxis dropped for lacking spare seats.
	PrunedByCapacity int64
	// PrunedByReachability counts taxis dropped by rule 3 (cannot reach
	// the pickup partition in time).
	PrunedByReachability int64
	// ProbabilisticPlans counts probabilistic route plans attempted, and
	// ProbabilisticFailures those discarded.
	ProbabilisticPlans    int64
	ProbabilisticFailures int64
	// OfflineInsertions counts successful roadside-encounter insertions.
	OfflineInsertions int64
	// CruisePlans counts installed idle cruises.
	CruisePlans int64
	// Per-stage cumulative wall time of Dispatch: candidate search,
	// schedule enumeration + routing (the parallel fan-out), and the
	// winner's leg materialisation.
	CandidateSearchNanos int64
	SchedulingNanos      int64
	LegBuildNanos        int64
}

// Add accumulates another snapshot into s (used when aggregating stats
// across engines, e.g. over an experiment suite).
func (s *EngineStats) Add(o EngineStats) {
	s.Dispatches += o.Dispatches
	s.Assignments += o.Assignments
	s.CandidatesExamined += o.CandidatesExamined
	s.PrunedByDirection += o.PrunedByDirection
	s.PrunedByCapacity += o.PrunedByCapacity
	s.PrunedByReachability += o.PrunedByReachability
	s.ProbabilisticPlans += o.ProbabilisticPlans
	s.ProbabilisticFailures += o.ProbabilisticFailures
	s.OfflineInsertions += o.OfflineInsertions
	s.CruisePlans += o.CruisePlans
	s.CandidateSearchNanos += o.CandidateSearchNanos
	s.SchedulingNanos += o.SchedulingNanos
	s.LegBuildNanos += o.LegBuildNanos
}

// engineCounters is the atomic backing store inside the Engine.
type engineCounters struct {
	dispatches            atomic.Int64
	assignments           atomic.Int64
	candidatesExamined    atomic.Int64
	prunedByDirection     atomic.Int64
	prunedByCapacity      atomic.Int64
	prunedByReachability  atomic.Int64
	probabilisticPlans    atomic.Int64
	probabilisticFailures atomic.Int64
	offlineInsertions     atomic.Int64
	cruisePlans           atomic.Int64
	candidateSearchNanos  atomic.Int64
	schedulingNanos       atomic.Int64
	legBuildNanos         atomic.Int64
}

// Stats returns a snapshot of the engine's pipeline counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Dispatches:            e.counters.dispatches.Load(),
		Assignments:           e.counters.assignments.Load(),
		CandidatesExamined:    e.counters.candidatesExamined.Load(),
		PrunedByDirection:     e.counters.prunedByDirection.Load(),
		PrunedByCapacity:      e.counters.prunedByCapacity.Load(),
		PrunedByReachability:  e.counters.prunedByReachability.Load(),
		ProbabilisticPlans:    e.counters.probabilisticPlans.Load(),
		ProbabilisticFailures: e.counters.probabilisticFailures.Load(),
		OfflineInsertions:     e.counters.offlineInsertions.Load(),
		CruisePlans:           e.counters.cruisePlans.Load(),
		CandidateSearchNanos:  e.counters.candidateSearchNanos.Load(),
		SchedulingNanos:       e.counters.schedulingNanos.Load(),
		LegBuildNanos:         e.counters.legBuildNanos.Load(),
	}
}
