package match

import (
	"repro/internal/obs"
	"repro/internal/partition"
)

// EngineStats is a point-in-time summary of what the matching pipeline
// did — how many dispatches ran, how the candidate-search refinement
// rules pruned, how routing modes were exercised, and the cumulative
// per-stage wall time. It is a convenience view over the engine's
// registry-backed instruments (see Engine.Metrics for the full surface,
// including latency histograms).
type EngineStats struct {
	// Dispatches is the number of Dispatch calls.
	Dispatches int64
	// Assignments is the number of successful Commit calls.
	Assignments int64
	// CandidatesExamined sums candidate-set sizes across dispatches.
	CandidatesExamined int64
	// PrunedByDirection counts occupied taxis dropped by the mobility-
	// cluster intersection.
	PrunedByDirection int64
	// PrunedByCapacity counts taxis dropped for lacking spare seats.
	PrunedByCapacity int64
	// PrunedByReachability counts taxis dropped by rule 3 (cannot reach
	// the pickup partition in time).
	PrunedByReachability int64
	// ProbabilisticPlans counts probabilistic route plans attempted, and
	// ProbabilisticFailures those discarded.
	ProbabilisticPlans    int64
	ProbabilisticFailures int64
	// OfflineInsertions counts successful roadside-encounter insertions.
	OfflineInsertions int64
	// CruisePlans counts installed idle cruises.
	CruisePlans int64
	// BatchRequests counts requests evaluated through DispatchBatch, and
	// BatchConflicts those whose winning taxi was taken by an earlier
	// commit of the same batch (forcing a re-dispatch).
	BatchRequests  int64
	BatchConflicts int64
	// BatchAssignRounds counts global-assignment batch rounds past the
	// size threshold (Config.BatchAssign); BatchAssignOptions sums the
	// feasible (request, taxi) options their cost graphs held;
	// BatchAssignFallbacks the rounds whose degenerate graph (no contested
	// taxi, or no feasible pair) fell back to the greedy commit order; and
	// BatchAssignRemainder the requests the post-solve remainder pass
	// served against live fleet state. All stay 0 without BatchAssign.
	BatchAssignRounds    int64
	BatchAssignOptions   int64
	BatchAssignFallbacks int64
	BatchAssignRemainder int64
	// LBEvaluated counts candidates screened by the landmark lower-bound
	// oracle, and LBPruned those it proved infeasible (skipping exact
	// schedule evaluation). Both stay 0 with Config.DisableLandmarkLB.
	LBEvaluated int64
	LBPruned    int64
	// Per-stage cumulative wall time of Dispatch: candidate search,
	// schedule enumeration + routing (the parallel fan-out), and the
	// winner's leg materialisation. Derived from the stage histograms'
	// sums.
	CandidateSearchNanos int64
	SchedulingNanos      int64
	LegBuildNanos        int64
}

// Add accumulates another snapshot into s (used when aggregating stats
// across engines, e.g. over an experiment suite).
func (s *EngineStats) Add(o EngineStats) {
	s.Dispatches += o.Dispatches
	s.Assignments += o.Assignments
	s.CandidatesExamined += o.CandidatesExamined
	s.PrunedByDirection += o.PrunedByDirection
	s.PrunedByCapacity += o.PrunedByCapacity
	s.PrunedByReachability += o.PrunedByReachability
	s.ProbabilisticPlans += o.ProbabilisticPlans
	s.ProbabilisticFailures += o.ProbabilisticFailures
	s.OfflineInsertions += o.OfflineInsertions
	s.CruisePlans += o.CruisePlans
	s.BatchRequests += o.BatchRequests
	s.BatchConflicts += o.BatchConflicts
	s.BatchAssignRounds += o.BatchAssignRounds
	s.BatchAssignOptions += o.BatchAssignOptions
	s.BatchAssignFallbacks += o.BatchAssignFallbacks
	s.BatchAssignRemainder += o.BatchAssignRemainder
	s.LBEvaluated += o.LBEvaluated
	s.LBPruned += o.LBPruned
	s.CandidateSearchNanos += o.CandidateSearchNanos
	s.SchedulingNanos += o.SchedulingNanos
	s.LegBuildNanos += o.LegBuildNanos
}

// ShardStats describes one shard of a dispatcher: its partition
// territory, current fleet slice, the sharding-layer traffic counters,
// and the shard's own engine pipeline counters. A single Engine reports
// itself as shard 0 owning every partition with zero cross-shard traffic,
// so callers (the stats API, the experiment harness) handle both
// topologies uniformly.
type ShardStats struct {
	// Shard is the shard index; FirstPartition..LastPartition is its
	// contiguous owned partition-ID range.
	Shard          int
	FirstPartition partition.ID
	LastPartition  partition.ID
	// Taxis is the number of taxis currently registered to the shard.
	Taxis int
	// Requests counts dispatches routed to the shard as home shard.
	Requests int64
	// CrossShardCandidates counts evaluated candidate taxis owned by a
	// different shard than the request's home (border candidates);
	// CrossShardAssignments the commits whose winning taxi another shard
	// owned; BorderConflicts the batch conflicts whose contested taxi was
	// cross-shard (two shards reserved the same taxi in one round).
	CrossShardCandidates  int64
	CrossShardAssignments int64
	BorderConflicts       int64
	// Handoffs counts taxis migrated into the shard's territory.
	Handoffs int64
	// Engine is the shard's own pipeline counters; summing them across
	// shards reproduces the aggregate Stats.
	Engine EngineStats
}

// ShardStats reports the single engine as one shard owning the whole map.
func (e *Engine) ShardStats() []ShardStats {
	return []ShardStats{{
		Shard:          0,
		FirstPartition: 0,
		LastPartition:  partition.ID(e.pt.NumPartitions() - 1),
		Taxis:          e.NumTaxis(),
		Engine:         e.Stats(),
	}}
}

// instruments are the engine's registry-backed instruments under the
// mtshare_match_* namespace, resolved once at construction so the hot
// path never touches the registry's name map.
type instruments struct {
	dispatches            *obs.Counter
	assignments           *obs.Counter
	candidatesExamined    *obs.Counter
	prunedByDirection     *obs.Counter
	prunedByCapacity      *obs.Counter
	prunedByReachability  *obs.Counter
	probabilisticPlans    *obs.Counter
	probabilisticFailures *obs.Counter
	offlineInsertions     *obs.Counter
	cruisePlans           *obs.Counter
	batchRequests         *obs.Counter
	batchConflicts        *obs.Counter
	batchAssignRounds     *obs.Counter
	batchAssignOptions    *obs.Counter
	batchAssignFallbacks  *obs.Counter
	batchAssignRemainder  *obs.Counter
	lbEvaluated           *obs.Counter
	lbPruned              *obs.Counter

	lbPruneRatio *obs.Gauge

	dispatchSeconds        *obs.Histogram
	candidateSearchSeconds *obs.Histogram
	schedulingSeconds      *obs.Histogram
	legBuildSeconds        *obs.Histogram
	commitSeconds          *obs.Histogram
	lbEstimateSeconds      *obs.Histogram
}

func newInstruments(reg *obs.Registry) instruments {
	return instruments{
		dispatches:            reg.Counter("mtshare_match_dispatches_total"),
		assignments:           reg.Counter("mtshare_match_assignments_total"),
		candidatesExamined:    reg.Counter("mtshare_match_candidates_examined_total"),
		prunedByDirection:     reg.Counter("mtshare_match_pruned_direction_total"),
		prunedByCapacity:      reg.Counter("mtshare_match_pruned_capacity_total"),
		prunedByReachability:  reg.Counter("mtshare_match_pruned_reachability_total"),
		probabilisticPlans:    reg.Counter("mtshare_match_probabilistic_plans_total"),
		probabilisticFailures: reg.Counter("mtshare_match_probabilistic_failures_total"),
		offlineInsertions:     reg.Counter("mtshare_match_offline_insertions_total"),
		cruisePlans:           reg.Counter("mtshare_match_cruise_plans_total"),
		batchRequests:         reg.Counter("mtshare_match_batch_requests_total"),
		batchConflicts:        reg.Counter("mtshare_match_batch_conflicts_total"),
		batchAssignRounds:     reg.Counter("mtshare_match_batch_assign_rounds_total"),
		batchAssignOptions:    reg.Counter("mtshare_match_batch_assign_options_total"),
		batchAssignFallbacks:  reg.Counter("mtshare_match_batch_assign_fallbacks_total"),
		batchAssignRemainder:  reg.Counter("mtshare_match_batch_assign_remainder_total"),
		lbEvaluated:           reg.Counter("mtshare_match_lb_evaluated_total"),
		lbPruned:              reg.Counter("mtshare_match_lb_pruned_total"),

		lbPruneRatio: reg.Gauge("mtshare_match_lb_prune_ratio"),

		dispatchSeconds:        reg.Histogram("mtshare_match_dispatch_seconds"),
		candidateSearchSeconds: reg.Histogram("mtshare_match_candidate_search_seconds"),
		schedulingSeconds:      reg.Histogram("mtshare_match_scheduling_seconds"),
		legBuildSeconds:        reg.Histogram("mtshare_match_leg_build_seconds"),
		commitSeconds:          reg.Histogram("mtshare_match_commit_seconds"),
		lbEstimateSeconds:      reg.Histogram("mtshare_match_lb_estimate_seconds"),
	}
}

// Stats returns a snapshot of the engine's pipeline counters. Stage nanos
// are derived from the corresponding latency histograms' sums.
func (e *Engine) Stats() EngineStats {
	toNanos := func(h *obs.Histogram) int64 { return int64(h.Snapshot().Sum * 1e9) }
	return EngineStats{
		Dispatches:            e.ins.dispatches.Value(),
		Assignments:           e.ins.assignments.Value(),
		CandidatesExamined:    e.ins.candidatesExamined.Value(),
		PrunedByDirection:     e.ins.prunedByDirection.Value(),
		PrunedByCapacity:      e.ins.prunedByCapacity.Value(),
		PrunedByReachability:  e.ins.prunedByReachability.Value(),
		ProbabilisticPlans:    e.ins.probabilisticPlans.Value(),
		ProbabilisticFailures: e.ins.probabilisticFailures.Value(),
		OfflineInsertions:     e.ins.offlineInsertions.Value(),
		CruisePlans:           e.ins.cruisePlans.Value(),
		BatchRequests:         e.ins.batchRequests.Value(),
		BatchConflicts:        e.ins.batchConflicts.Value(),
		BatchAssignRounds:     e.ins.batchAssignRounds.Value(),
		BatchAssignOptions:    e.ins.batchAssignOptions.Value(),
		BatchAssignFallbacks:  e.ins.batchAssignFallbacks.Value(),
		BatchAssignRemainder:  e.ins.batchAssignRemainder.Value(),
		LBEvaluated:           e.ins.lbEvaluated.Value(),
		LBPruned:              e.ins.lbPruned.Value(),
		CandidateSearchNanos:  toNanos(e.ins.candidateSearchSeconds),
		SchedulingNanos:       toNanos(e.ins.schedulingSeconds),
		LegBuildNanos:         toNanos(e.ins.legBuildSeconds),
	}
}
