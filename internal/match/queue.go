package match

import (
	"container/heap"
	"context"
	"sort"
	"sync"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// PushResult is the outcome of Pool.Push: accepted, or refused with the
// reason — a full pool (backpressure the caller can surface as a retryable
// reject) versus a pickup deadline that had already passed at push time (a
// terminal miss no amount of queueing can save).
type PushResult int

const (
	// PushAccepted reports the request is parked (including the no-op
	// re-push of an already-parked request).
	PushAccepted PushResult = iota
	// PushRejectedFull reports the pool was at capacity — backpressure.
	PushRejectedFull
	// PushRejectedExpired reports the request's pickup deadline had
	// already strictly passed, so parking it would only ever expire it.
	PushRejectedExpired
)

// Accepted reports whether the push parked the request.
func (r PushResult) Accepted() bool { return r == PushAccepted }

// String names the result for logs and tests.
func (r PushResult) String() string {
	switch r {
	case PushAccepted:
		return "accepted"
	case PushRejectedFull:
		return "rejected_full"
	case PushRejectedExpired:
		return "rejected_expired"
	default:
		return "unknown"
	}
}

// Pool is the pending-request pool surface the facade, simulator, and
// server program against: a single PendingQueue, or a sharded QueueGroup
// routing each request to its home shard's queue. Obtain one matched to a
// dispatcher via Dispatcher.NewPendingPool.
type Pool interface {
	Capacity() int
	Len() int
	Push(req *fleet.Request, nowSeconds float64) PushResult
	ExpireBefore(nowSeconds float64) []*PendingItem
	NextBatch() []*PendingItem
	Snapshot() []*PendingItem
	MarkServed(id fleet.RequestID, nowSeconds float64) bool
	Stats() QueueStats
	CaptureDurable() PoolState
	RestoreDurable(st PoolState, resolve RequestResolver) error
}

// PendingItem is one parked request in a PendingQueue: a request that got
// no feasible taxi at submission and is waiting for fleet state to change.
type PendingItem struct {
	Req *fleet.Request
	// EnqueuedAt is the simulation time (seconds) the request was parked.
	EnqueuedAt float64
	// Retries counts the batch re-dispatch rounds this request has been
	// through so far.
	Retries int

	// pickupDeadline (absolute seconds) orders the heap and drives expiry;
	// it is fixed at push time from the engine's speed.
	pickupDeadline float64
	index          int
}

// QueueStats is a point-in-time summary of a PendingQueue's lifecycle
// counters (see DESIGN.md, "Pending-request queue").
type QueueStats struct {
	// Depth is the number of requests currently parked; Capacity the bound.
	Depth    int
	Capacity int
	// Enqueued counts accepted pushes; Rejected pushes refused — whether
	// because the queue was full (backpressure) or because the request's
	// pickup deadline had already passed (Pool.Push's PushResult carries
	// the distinction; the aggregate keeps sharded and single-queue
	// accounting identical).
	Enqueued int64
	Rejected int64
	// Retries counts request re-dispatch attempts across batch rounds.
	Retries int64
	// Served counts queued requests that a retry round matched; Expired
	// those evicted because their pickup deadline passed while queued.
	Served  int64
	Expired int64
}

// PendingQueue is the deadline-aware pending-request pool of the batched
// re-dispatch subsystem: a capacity-bounded min-heap ordered by (pickup
// deadline, request ID). Requests stay in the pool across retry rounds
// until they are served (MarkServed) or their pickup deadline passes
// strictly (ExpireBefore — the deadline itself is still dispatchable,
// matching the engine's inclusive-deadline convention). It is safe for
// concurrent use.
type PendingQueue struct {
	speedMps float64
	capacity int

	mu    sync.Mutex
	items pendingHeap
	byID  map[fleet.RequestID]*PendingItem
	stats QueueStats

	// Optional registry instruments (see InstrumentWith).
	depthGauge *obs.Gauge
	enqueued   *obs.Counter
	rejected   *obs.Counter
	retries    *obs.Counter
	served     *obs.Counter
	expired    *obs.Counter
	waitSecs   *obs.Histogram
}

// NewPendingQueue creates a queue bounded to capacity requests. speedMps
// converts delivery deadlines to pickup deadlines (it must match the
// dispatching engine's speed so queue expiry agrees with dispatch expiry).
func NewPendingQueue(capacity int, speedMps float64) *PendingQueue {
	return &PendingQueue{
		speedMps: speedMps,
		capacity: capacity,
		byID:     make(map[fleet.RequestID]*PendingItem),
		stats:    QueueStats{Capacity: capacity},
	}
}

// InstrumentWith registers the queue's instruments in reg under
// mtshare_match_queue_* (depth gauge, enqueued/rejected/retries/served/
// expired counters, and the queued-to-matched wait histogram in simulation
// seconds) and returns the queue. Call it once, before concurrent use.
func (q *PendingQueue) InstrumentWith(reg *obs.Registry) *PendingQueue {
	if reg == nil {
		return q
	}
	q.depthGauge = reg.Gauge("mtshare_match_queue_depth")
	q.enqueued = reg.Counter("mtshare_match_queue_enqueued_total")
	q.rejected = reg.Counter("mtshare_match_queue_rejected_total")
	q.retries = reg.Counter("mtshare_match_queue_retries_total")
	q.served = reg.Counter("mtshare_match_queue_served_total")
	q.expired = reg.Counter("mtshare_match_queue_expired_total")
	q.waitSecs = reg.Histogram("mtshare_match_queue_wait_seconds")
	return q
}

// NewPendingPool builds the pending-request pool matching a single
// engine: one deadline-ordered queue at the engine's speed, instrumented
// in the engine's registry.
func (e *Engine) NewPendingPool(capacity int) Pool {
	return NewPendingQueue(capacity, e.cfg.SpeedMps).InstrumentWith(e.reg)
}

// Capacity returns the queue bound.
func (q *PendingQueue) Capacity() int { return q.capacity }

// contains reports whether the request is currently parked.
func (q *PendingQueue) contains(id fleet.RequestID) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.byID[id]
	return ok
}

// noteRejected counts a backpressure rejection decided outside the queue
// (the QueueGroup's global bound), keeping aggregate stats equal to a
// single queue's.
func (q *PendingQueue) noteRejected() {
	q.mu.Lock()
	q.stats.Rejected++
	if q.rejected != nil {
		q.rejected.Inc()
	}
	q.mu.Unlock()
}

// Len returns the number of parked requests.
func (q *PendingQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Push parks a request. A refused push — the caller surfaces it as a
// terminal reject — reports why: PushRejectedExpired when the request's
// pickup deadline has already strictly passed, PushRejectedFull when the
// queue is at capacity (expiry wins when both hold — a doomed request is
// not backpressure). Pushing a request that is already parked is a no-op
// reporting PushAccepted.
func (q *PendingQueue) Push(req *fleet.Request, nowSeconds float64) PushResult {
	pd := req.PickupDeadline(q.speedMps).Seconds()
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byID[req.ID]; ok {
		return PushAccepted
	}
	if pd < nowSeconds || q.items.Len() >= q.capacity {
		q.stats.Rejected++
		if q.rejected != nil {
			q.rejected.Inc()
		}
		if pd < nowSeconds {
			return PushRejectedExpired
		}
		return PushRejectedFull
	}
	it := &PendingItem{Req: req, EnqueuedAt: nowSeconds, pickupDeadline: pd}
	heap.Push(&q.items, it)
	q.byID[req.ID] = it
	q.stats.Enqueued++
	if q.enqueued != nil {
		q.enqueued.Inc()
	}
	q.setDepthLocked()
	return PushAccepted
}

// ExpireBefore evicts and returns every parked request whose pickup
// deadline is strictly before nowSeconds, in (pickup deadline, request ID)
// order. A request exactly at its deadline stays queued — it is still
// dispatchable this instant.
func (q *PendingQueue) ExpireBefore(nowSeconds float64) []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*PendingItem
	for q.items.Len() > 0 && q.items[0].pickupDeadline < nowSeconds {
		it := heap.Pop(&q.items).(*PendingItem)
		delete(q.byID, it.Req.ID)
		out = append(out, it)
	}
	if len(out) > 0 {
		q.stats.Expired += int64(len(out))
		if q.expired != nil {
			q.expired.Add(int64(len(out)))
		}
		q.setDepthLocked()
	}
	return out
}

// NextBatch returns the parked requests in (pickup deadline, request ID)
// order — the deterministic evaluation and commit order of DispatchBatch —
// and counts one retry against each. Items remain parked; the caller
// reports matches back via MarkServed.
func (q *PendingQueue) NextBatch() []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.sortedLocked()
	for _, it := range out {
		it.Retries++
	}
	q.stats.Retries += int64(len(out))
	if q.retries != nil && len(out) > 0 {
		q.retries.Add(int64(len(out)))
	}
	return out
}

// Snapshot returns the parked requests in (pickup deadline, request ID)
// order without mutating any lifecycle state (for stats endpoints).
func (q *PendingQueue) Snapshot() []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sortedLocked()
}

func (q *PendingQueue) sortedLocked() []*PendingItem {
	out := make([]*PendingItem, len(q.items))
	copy(out, q.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].pickupDeadline != out[j].pickupDeadline {
			return out[i].pickupDeadline < out[j].pickupDeadline
		}
		return out[i].Req.ID < out[j].Req.ID
	})
	return out
}

// MarkServed removes a matched request from the pool, recording its
// queued-to-matched wait. It reports false when the request is not parked.
func (q *PendingQueue) MarkServed(id fleet.RequestID, nowSeconds float64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.byID[id]
	if !ok {
		return false
	}
	heap.Remove(&q.items, it.index)
	delete(q.byID, id)
	q.stats.Served++
	if q.served != nil {
		q.served.Inc()
	}
	if q.waitSecs != nil {
		q.waitSecs.Observe(nowSeconds - it.EnqueuedAt)
	}
	q.setDepthLocked()
	return true
}

// Stats returns a snapshot of the queue's lifecycle counters.
func (q *PendingQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = q.items.Len()
	return s
}

func (q *PendingQueue) setDepthLocked() {
	if q.depthGauge != nil {
		q.depthGauge.Set(float64(q.items.Len()))
	}
}

// pendingHeap is a min-heap over (pickup deadline, request ID).
type pendingHeap []*PendingItem

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].pickupDeadline != h[j].pickupDeadline {
		return h[i].pickupDeadline < h[j].pickupDeadline
	}
	return h[i].Req.ID < h[j].Req.ID
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *pendingHeap) Push(x any) {
	it := x.(*PendingItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// BatchOutcome is one request's result from DispatchBatch.
type BatchOutcome struct {
	Req        *fleet.Request
	Assignment Assignment
	// Served reports whether the request was matched and committed.
	Served bool
	// Conflict reports that the request's first evaluation picked a taxi
	// an earlier commit of the same batch had already taken, forcing a
	// re-dispatch against the updated fleet state.
	Conflict bool
}

// DispatchBatch re-dispatches a set of pending requests as one round. The
// requests are evaluated through the ordinary (internally parallel)
// dispatch pipeline against the batch-start fleet state, then committed in
// (pickup deadline, request ID) order. When two requests' evaluations pick
// the same taxi, the later one re-dispatches against the updated fleet
// state — the taxi may still win with a revised schedule, or a different
// taxi takes over. The sequential evaluate-then-commit structure makes the
// whole round deterministic at every Config.Parallelism level.
//
// With Config.BatchAssign the round instead builds the full (request,
// taxi) cost graph and solves a global min-cost assignment before
// committing (see runBatchAssign); greedy remains the default and the
// fallback for degenerate graphs.
//
// Outcomes are returned in commit order. Requests that still found no taxi
// are simply not served this round; eviction of expired requests is the
// queue's job (ExpireBefore), not DispatchBatch's.
func (e *Engine) DispatchBatch(ctx context.Context, reqs []*fleet.Request, nowSeconds float64, probabilistic bool) []BatchOutcome {
	h := batchHooks{
		evaluated: func(*fleet.Request) { e.ins.batchRequests.Inc() },
		conflict:  func(*BatchOutcome) { e.ins.batchConflicts.Inc() },
		assignRound: func(options int, fallback bool) {
			e.ins.batchAssignRounds.Inc()
			e.ins.batchAssignOptions.Add(int64(options))
			if fallback {
				e.ins.batchAssignFallbacks.Inc()
			}
		},
		assignRemainderServed: func() { e.ins.batchAssignRemainder.Inc() },
	}
	if e.cfg.BatchAssign {
		return runBatchAssign(ctx, e, reqs, nowSeconds, probabilistic, h)
	}
	return runBatch(ctx, e, reqs, nowSeconds, probabilistic, h)
}

// batchDispatcher is what runBatch needs from a dispatcher; Engine and
// ShardedEngine both qualify.
type batchDispatcher interface {
	DispatchContext(ctx context.Context, req *fleet.Request, nowSeconds float64, probabilistic bool) (Assignment, bool)
	Commit(a Assignment, nowSeconds float64) error
	Config() Config
}

// batchHooks attribute batch accounting to the right instruments —
// engine-wide counters for a single engine, per-home-shard counters for a
// sharded dispatcher. The assign hooks are optional (nil-safe); only the
// global-assignment rounds of runBatchAssign fire them.
type batchHooks struct {
	evaluated func(r *fleet.Request)
	conflict  func(o *BatchOutcome)
	// assignRound reports a global-assignment round past the batch-size
	// threshold: the number of feasible (request, taxi) options its cost
	// graph held, and whether the round degenerated to the greedy commit
	// order (no contested taxi, or no feasible pair at all).
	assignRound func(options int, fallback bool)
	// assignRemainderServed reports a request the post-solve remainder
	// pass served against live fleet state.
	assignRemainderServed func()
}

// runBatch is the two-phase batch protocol shared by Engine and
// ShardedEngine: phase 1 evaluates every request against the same fleet
// state, phase 2 reserves taxis in (pickup deadline, request ID) order —
// the `taken` set — and commits, re-dispatching the later request of any
// conflict. Both phases are deterministic at every parallelism level and
// shard count.
func runBatch(ctx context.Context, d batchDispatcher, reqs []*fleet.Request, nowSeconds float64, probabilistic bool, h batchHooks) []BatchOutcome {
	order := batchOrder(d, reqs)
	out := make([]BatchOutcome, len(order))
	// Phase 1: evaluate everything against the same fleet state (no
	// commits interleave), each evaluation fanning across the worker pool.
	for i, r := range order {
		a, ok := d.DispatchContext(ctx, r, nowSeconds, probabilistic)
		out[i] = BatchOutcome{Req: r, Assignment: a, Served: ok}
		h.evaluated(r)
	}
	commitBatch(ctx, d, out, nowSeconds, probabilistic, h, nil)
	return out
}

// batchOrder sorts a batch into its deterministic (pickup deadline,
// request ID) evaluation-and-commit order.
func batchOrder(d batchDispatcher, reqs []*fleet.Request) []*fleet.Request {
	order := make([]*fleet.Request, len(reqs))
	copy(order, reqs)
	speed := d.Config().SpeedMps
	sort.Slice(order, func(i, j int) bool {
		di, dj := order[i].PickupDeadline(speed), order[j].PickupDeadline(speed)
		if di != dj {
			return di < dj
		}
		return order[i].ID < order[j].ID
	})
	return order
}

// commitBatch is phase 2 of the batch protocol: commit served outcomes in
// order, re-dispatching on conflicts. finish, when non-nil, materialises
// an assignment's route legs right before its commit (the global-
// assignment round defers leg building to winners); runBatch passes nil
// because DispatchContext already returns materialised winners.
func commitBatch(ctx context.Context, d batchDispatcher, out []BatchOutcome, nowSeconds float64, probabilistic bool, h batchHooks, finish func(*Assignment) bool) {
	taken := make(map[int64]bool)
	for i := range out {
		o := &out[i]
		if !o.Served {
			continue
		}
		if taken[o.Assignment.Taxi.ID] {
			o.Conflict = true
			h.conflict(o)
			contested := o.Assignment.Taxi.ID
			if !redispatch(ctx, d, o, nowSeconds, probabilistic) {
				continue
			}
			// Re-winning the contested taxi with a revised shared schedule
			// is this conflict's designed resolution, not a new one. But
			// the re-dispatch may instead land on a *different* taxi an
			// earlier commit took — a chained conflict, and one more
			// contention event to count. Either way the commit below is
			// sound: the re-evaluation saw the taxi's live post-commit
			// schedule, so the winning insertion shares the ride on it;
			// re-dispatching yet again would loop without progress, since
			// nothing has changed since the evaluation that picked it.
			if o.Assignment.Taxi.ID != contested && taken[o.Assignment.Taxi.ID] {
				h.conflict(o)
			}
		}
		if finish != nil && o.Assignment.Legs == nil && !finish(&o.Assignment) {
			o.Served = false
			continue
		}
		if d.Commit(o.Assignment, nowSeconds) != nil {
			// The evaluation went stale under a concurrent commit outside
			// the batch; one re-dispatch against live state settles it.
			if !redispatch(ctx, d, o, nowSeconds, probabilistic) ||
				d.Commit(o.Assignment, nowSeconds) != nil {
				o.Served = false
				continue
			}
		}
		taken[o.Assignment.Taxi.ID] = true
	}
}

// redispatch re-evaluates a batch outcome's request against the current
// fleet state, replacing its assignment.
func redispatch(ctx context.Context, d batchDispatcher, o *BatchOutcome, nowSeconds float64, probabilistic bool) bool {
	a, ok := d.DispatchContext(ctx, o.Req, nowSeconds, probabilistic)
	o.Assignment, o.Served = a, ok
	return ok
}

// QueueGroup is the sharded pending-request pool: one PendingQueue per
// shard, each request parked on its home shard's queue, with a global
// capacity bound across the group so backpressure behaves exactly like a
// single queue of the same capacity. Batch and expiry traversals merge
// the per-shard queues back into one (pickup deadline, request ID) order,
// so DispatchBatch sees the same deterministic sequence either way.
type QueueGroup struct {
	se       *ShardedEngine
	capacity int

	// mu serialises group operations so the global bound is exact; the
	// per-queue locks below it only order group-vs-direct-queue access.
	mu     sync.Mutex
	queues []*PendingQueue
}

// Capacity returns the group-wide bound.
func (g *QueueGroup) Capacity() int { return g.capacity }

// Len returns the number of parked requests across all shards.
func (g *QueueGroup) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.depthLocked()
}

func (g *QueueGroup) depthLocked() int {
	total := 0
	for _, q := range g.queues {
		total += q.Len()
	}
	return total
}

// Push parks a request on its home shard's queue, subject to the global
// bound. Re-pushing a parked request is a no-op reporting PushAccepted;
// the rejection bookkeeping matches a single queue's exactly (one
// Rejected count whether the refusal came from the bound or a passed
// deadline), and so does the refusal reason — an already-expired request
// reports PushRejectedExpired even when the group is simultaneously at
// its bound, exactly as a single queue of the same capacity would.
func (g *QueueGroup) Push(req *fleet.Request, nowSeconds float64) PushResult {
	q := g.queues[g.se.HomeShard(req)]
	g.mu.Lock()
	defer g.mu.Unlock()
	if q.contains(req.ID) {
		return PushAccepted
	}
	if req.PickupDeadline(q.speedMps).Seconds() < nowSeconds {
		// Delegate so the shard queue does the expiry rejection and its
		// bookkeeping itself.
		return q.Push(req, nowSeconds)
	}
	if g.depthLocked() >= g.capacity {
		q.noteRejected()
		return PushRejectedFull
	}
	return q.Push(req, nowSeconds)
}

// ExpireBefore evicts strictly-late requests from every shard queue and
// returns them merged in (pickup deadline, request ID) order.
func (g *QueueGroup) ExpireBefore(nowSeconds float64) []*PendingItem {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*PendingItem
	for _, q := range g.queues {
		out = append(out, q.ExpireBefore(nowSeconds)...)
	}
	sortPendingItems(out)
	return out
}

// NextBatch returns every parked request merged in (pickup deadline,
// request ID) order — identical to a single queue's batch order — and
// counts one retry against each.
func (g *QueueGroup) NextBatch() []*PendingItem {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*PendingItem
	for _, q := range g.queues {
		out = append(out, q.NextBatch()...)
	}
	sortPendingItems(out)
	return out
}

// Snapshot returns the parked requests in (pickup deadline, request ID)
// order without mutating lifecycle state.
func (g *QueueGroup) Snapshot() []*PendingItem {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*PendingItem
	for _, q := range g.queues {
		out = append(out, q.Snapshot()...)
	}
	sortPendingItems(out)
	return out
}

// MarkServed removes a matched request from whichever shard queue holds
// it.
func (g *QueueGroup) MarkServed(id fleet.RequestID, nowSeconds float64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, q := range g.queues {
		if q.MarkServed(id, nowSeconds) {
			return true
		}
	}
	return false
}

// ShardDepths returns each shard queue's current depth, indexed by
// shard (the stats API's per-shard queue view).
func (g *QueueGroup) ShardDepths() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, len(g.queues))
	for i, q := range g.queues {
		out[i] = q.Len()
	}
	return out
}

// Stats sums the shard queues' lifecycle counters under the group's
// capacity.
func (g *QueueGroup) Stats() QueueStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := QueueStats{Capacity: g.capacity}
	for _, q := range g.queues {
		qs := q.Stats()
		s.Depth += qs.Depth
		s.Enqueued += qs.Enqueued
		s.Rejected += qs.Rejected
		s.Retries += qs.Retries
		s.Served += qs.Served
		s.Expired += qs.Expired
	}
	return s
}

func sortPendingItems(items []*PendingItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].pickupDeadline != items[j].pickupDeadline {
			return items[i].pickupDeadline < items[j].pickupDeadline
		}
		return items[i].Req.ID < items[j].Req.ID
	})
}
