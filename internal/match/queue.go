package match

import (
	"container/heap"
	"context"
	"sort"
	"sync"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// PendingItem is one parked request in a PendingQueue: a request that got
// no feasible taxi at submission and is waiting for fleet state to change.
type PendingItem struct {
	Req *fleet.Request
	// EnqueuedAt is the simulation time (seconds) the request was parked.
	EnqueuedAt float64
	// Retries counts the batch re-dispatch rounds this request has been
	// through so far.
	Retries int

	// pickupDeadline (absolute seconds) orders the heap and drives expiry;
	// it is fixed at push time from the engine's speed.
	pickupDeadline float64
	index          int
}

// QueueStats is a point-in-time summary of a PendingQueue's lifecycle
// counters (see DESIGN.md, "Pending-request queue").
type QueueStats struct {
	// Depth is the number of requests currently parked; Capacity the bound.
	Depth    int
	Capacity int
	// Enqueued counts accepted pushes; Rejected pushes refused because the
	// queue was full (backpressure).
	Enqueued int64
	Rejected int64
	// Retries counts request re-dispatch attempts across batch rounds.
	Retries int64
	// Served counts queued requests that a retry round matched; Expired
	// those evicted because their pickup deadline passed while queued.
	Served  int64
	Expired int64
}

// PendingQueue is the deadline-aware pending-request pool of the batched
// re-dispatch subsystem: a capacity-bounded min-heap ordered by (pickup
// deadline, request ID). Requests stay in the pool across retry rounds
// until they are served (MarkServed) or their pickup deadline passes
// strictly (ExpireBefore — the deadline itself is still dispatchable,
// matching the engine's inclusive-deadline convention). It is safe for
// concurrent use.
type PendingQueue struct {
	speedMps float64
	capacity int

	mu    sync.Mutex
	items pendingHeap
	byID  map[fleet.RequestID]*PendingItem
	stats QueueStats

	// Optional registry instruments (see InstrumentWith).
	depthGauge *obs.Gauge
	enqueued   *obs.Counter
	rejected   *obs.Counter
	retries    *obs.Counter
	served     *obs.Counter
	expired    *obs.Counter
	waitSecs   *obs.Histogram
}

// NewPendingQueue creates a queue bounded to capacity requests. speedMps
// converts delivery deadlines to pickup deadlines (it must match the
// dispatching engine's speed so queue expiry agrees with dispatch expiry).
func NewPendingQueue(capacity int, speedMps float64) *PendingQueue {
	return &PendingQueue{
		speedMps: speedMps,
		capacity: capacity,
		byID:     make(map[fleet.RequestID]*PendingItem),
		stats:    QueueStats{Capacity: capacity},
	}
}

// InstrumentWith registers the queue's instruments in reg under
// mtshare_match_queue_* (depth gauge, enqueued/rejected/retries/served/
// expired counters, and the queued-to-matched wait histogram in simulation
// seconds) and returns the queue. Call it once, before concurrent use.
func (q *PendingQueue) InstrumentWith(reg *obs.Registry) *PendingQueue {
	if reg == nil {
		return q
	}
	q.depthGauge = reg.Gauge("mtshare_match_queue_depth")
	q.enqueued = reg.Counter("mtshare_match_queue_enqueued_total")
	q.rejected = reg.Counter("mtshare_match_queue_rejected_total")
	q.retries = reg.Counter("mtshare_match_queue_retries_total")
	q.served = reg.Counter("mtshare_match_queue_served_total")
	q.expired = reg.Counter("mtshare_match_queue_expired_total")
	q.waitSecs = reg.Histogram("mtshare_match_queue_wait_seconds")
	return q
}

// Capacity returns the queue bound.
func (q *PendingQueue) Capacity() int { return q.capacity }

// Len returns the number of parked requests.
func (q *PendingQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Push parks a request. It returns false — explicit backpressure, the
// caller surfaces it as a terminal reject — when the queue is full or the
// request's pickup deadline has already strictly passed; pushing a request
// that is already parked is a no-op reporting true.
func (q *PendingQueue) Push(req *fleet.Request, nowSeconds float64) bool {
	pd := req.PickupDeadline(q.speedMps).Seconds()
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byID[req.ID]; ok {
		return true
	}
	if pd < nowSeconds || q.items.Len() >= q.capacity {
		q.stats.Rejected++
		if q.rejected != nil {
			q.rejected.Inc()
		}
		return false
	}
	it := &PendingItem{Req: req, EnqueuedAt: nowSeconds, pickupDeadline: pd}
	heap.Push(&q.items, it)
	q.byID[req.ID] = it
	q.stats.Enqueued++
	if q.enqueued != nil {
		q.enqueued.Inc()
	}
	q.setDepthLocked()
	return true
}

// ExpireBefore evicts and returns every parked request whose pickup
// deadline is strictly before nowSeconds, in (pickup deadline, request ID)
// order. A request exactly at its deadline stays queued — it is still
// dispatchable this instant.
func (q *PendingQueue) ExpireBefore(nowSeconds float64) []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*PendingItem
	for q.items.Len() > 0 && q.items[0].pickupDeadline < nowSeconds {
		it := heap.Pop(&q.items).(*PendingItem)
		delete(q.byID, it.Req.ID)
		out = append(out, it)
	}
	if len(out) > 0 {
		q.stats.Expired += int64(len(out))
		if q.expired != nil {
			q.expired.Add(int64(len(out)))
		}
		q.setDepthLocked()
	}
	return out
}

// NextBatch returns the parked requests in (pickup deadline, request ID)
// order — the deterministic evaluation and commit order of DispatchBatch —
// and counts one retry against each. Items remain parked; the caller
// reports matches back via MarkServed.
func (q *PendingQueue) NextBatch() []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.sortedLocked()
	for _, it := range out {
		it.Retries++
	}
	q.stats.Retries += int64(len(out))
	if q.retries != nil && len(out) > 0 {
		q.retries.Add(int64(len(out)))
	}
	return out
}

// Snapshot returns the parked requests in (pickup deadline, request ID)
// order without mutating any lifecycle state (for stats endpoints).
func (q *PendingQueue) Snapshot() []*PendingItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sortedLocked()
}

func (q *PendingQueue) sortedLocked() []*PendingItem {
	out := make([]*PendingItem, len(q.items))
	copy(out, q.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].pickupDeadline != out[j].pickupDeadline {
			return out[i].pickupDeadline < out[j].pickupDeadline
		}
		return out[i].Req.ID < out[j].Req.ID
	})
	return out
}

// MarkServed removes a matched request from the pool, recording its
// queued-to-matched wait. It reports false when the request is not parked.
func (q *PendingQueue) MarkServed(id fleet.RequestID, nowSeconds float64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.byID[id]
	if !ok {
		return false
	}
	heap.Remove(&q.items, it.index)
	delete(q.byID, id)
	q.stats.Served++
	if q.served != nil {
		q.served.Inc()
	}
	if q.waitSecs != nil {
		q.waitSecs.Observe(nowSeconds - it.EnqueuedAt)
	}
	q.setDepthLocked()
	return true
}

// Stats returns a snapshot of the queue's lifecycle counters.
func (q *PendingQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = q.items.Len()
	return s
}

func (q *PendingQueue) setDepthLocked() {
	if q.depthGauge != nil {
		q.depthGauge.Set(float64(q.items.Len()))
	}
}

// pendingHeap is a min-heap over (pickup deadline, request ID).
type pendingHeap []*PendingItem

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].pickupDeadline != h[j].pickupDeadline {
		return h[i].pickupDeadline < h[j].pickupDeadline
	}
	return h[i].Req.ID < h[j].Req.ID
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *pendingHeap) Push(x any) {
	it := x.(*PendingItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// BatchOutcome is one request's result from DispatchBatch.
type BatchOutcome struct {
	Req        *fleet.Request
	Assignment Assignment
	// Served reports whether the request was matched and committed.
	Served bool
	// Conflict reports that the request's first evaluation picked a taxi
	// an earlier commit of the same batch had already taken, forcing a
	// re-dispatch against the updated fleet state.
	Conflict bool
}

// DispatchBatch re-dispatches a set of pending requests as one round. The
// requests are evaluated through the ordinary (internally parallel)
// dispatch pipeline against the batch-start fleet state, then committed in
// (pickup deadline, request ID) order. When two requests' evaluations pick
// the same taxi, the later one re-dispatches against the updated fleet
// state — the taxi may still win with a revised schedule, or a different
// taxi takes over. The sequential evaluate-then-commit structure makes the
// whole round deterministic at every Config.Parallelism level.
//
// Outcomes are returned in commit order. Requests that still found no taxi
// are simply not served this round; eviction of expired requests is the
// queue's job (ExpireBefore), not DispatchBatch's.
func (e *Engine) DispatchBatch(ctx context.Context, reqs []*fleet.Request, nowSeconds float64, probabilistic bool) []BatchOutcome {
	order := make([]*fleet.Request, len(reqs))
	copy(order, reqs)
	speed := e.cfg.SpeedMps
	sort.Slice(order, func(i, j int) bool {
		di, dj := order[i].PickupDeadline(speed), order[j].PickupDeadline(speed)
		if di != dj {
			return di < dj
		}
		return order[i].ID < order[j].ID
	})
	out := make([]BatchOutcome, len(order))
	// Phase 1: evaluate everything against the same fleet state (no
	// commits interleave), each evaluation fanning across the worker pool.
	for i, r := range order {
		a, ok := e.DispatchContext(ctx, r, nowSeconds, probabilistic)
		out[i] = BatchOutcome{Req: r, Assignment: a, Served: ok}
	}
	e.ins.batchRequests.Add(int64(len(order)))
	// Phase 2: commit in order, re-dispatching on conflicts.
	taken := make(map[int64]bool)
	for i := range out {
		o := &out[i]
		if !o.Served {
			continue
		}
		if taken[o.Assignment.Taxi.ID] {
			o.Conflict = true
			e.ins.batchConflicts.Inc()
			if !e.redispatch(ctx, o, nowSeconds, probabilistic) {
				continue
			}
		}
		if e.Commit(o.Assignment, nowSeconds) != nil {
			// The evaluation went stale under a concurrent commit outside
			// the batch; one re-dispatch against live state settles it.
			if !e.redispatch(ctx, o, nowSeconds, probabilistic) ||
				e.Commit(o.Assignment, nowSeconds) != nil {
				o.Served = false
				continue
			}
		}
		taken[o.Assignment.Taxi.ID] = true
	}
	return out
}

// redispatch re-evaluates a batch outcome's request against the current
// fleet state, replacing its assignment.
func (e *Engine) redispatch(ctx context.Context, o *BatchOutcome, nowSeconds float64, probabilistic bool) bool {
	a, ok := e.DispatchContext(ctx, o.Req, nowSeconds, probabilistic)
	o.Assignment, o.Served = a, ok
	return ok
}
