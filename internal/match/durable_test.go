package match

import (
	"encoding/json"
	"testing"

	"repro/internal/fleet"
)

// driveDurableWorld puts a dispatcher through a representative slice of
// its lifecycle — taxis added, requests committed, motion advanced past
// pickups, a cruise plan drawn — and returns the committed requests so
// the test can build a resolver.
func driveDurableWorld(t *testing.T, env *testEnv, d Dispatcher) map[fleet.RequestID]*fleet.Request {
	t.Helper()
	placeFleetOn(d, env, 12, 7)
	reqs := make(map[fleet.RequestID]*fleet.Request)
	committed := 0
	for i := int64(1); i <= 24 && committed < 6; i++ {
		o := env.vertexNear(t, 0.1+0.03*float64(i%8), 0.1+0.05*float64(i%5))
		dst := env.vertexNear(t, 0.9-0.04*float64(i%6), 0.85-0.03*float64(i%7))
		req := env.request(i, o, dst, 0, 2.5)
		a, ok := d.Dispatch(req, 0, false)
		if !ok {
			continue
		}
		if err := d.Commit(a, 0); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		reqs[req.ID] = req
		committed++
	}
	if committed == 0 {
		t.Fatal("no request committed; world too small")
	}
	// Advance part of the fleet so some schedules have fired pickups and
	// plans are mid-edge, then reindex as the sim loop would.
	for id := int64(1); id <= 12; id++ {
		taxi, ok := d.Taxi(id)
		if !ok {
			t.Fatalf("taxi %d missing", id)
		}
		taxi.Advance(150 * float64(id%4))
		d.ReindexTaxi(taxi, 10)
	}
	// Draw a cruise plan so the sampler position is non-zero.
	for id := int64(1); id <= 12; id++ {
		taxi, _ := d.Taxi(id)
		if taxi.Empty() && len(taxi.Route()) <= 1 {
			d.CruisePlan(taxi, 1500)
			break
		}
	}
	return reqs
}

func resolverFor(reqs map[fleet.RequestID]*fleet.Request) RequestResolver {
	return func(id fleet.RequestID) (*fleet.Request, bool) {
		r, ok := reqs[id]
		return r, ok
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// roundTrip captures src, restores into dst, and asserts dst's own
// capture is byte-identical.
func roundTrip(t *testing.T, src, dst Dispatcher, reqs map[fleet.RequestID]*fleet.Request) {
	t.Helper()
	st := src.CaptureDurable()
	restored, err := dst.RestoreDurable(st, resolverFor(reqs))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(restored) != len(st.Taxis) {
		t.Fatalf("restored %d taxis, captured %d", len(restored), len(st.Taxis))
	}
	for i := 1; i < len(restored); i++ {
		if restored[i-1].ID >= restored[i].ID {
			t.Fatal("restored taxis not sorted by ID")
		}
	}
	got, want := mustJSON(t, dst.CaptureDurable()), mustJSON(t, st)
	if got != want {
		t.Fatalf("re-capture differs from snapshot:\n got %s\nwant %s", got, want)
	}
	if dst.NumTaxis() != src.NumTaxis() {
		t.Fatalf("NumTaxis = %d, want %d", dst.NumTaxis(), src.NumTaxis())
	}
	if got, want := dst.IndexMemoryBytes(), src.IndexMemoryBytes(); got != want {
		t.Fatalf("IndexMemoryBytes = %d, want %d", got, want)
	}
	if got, want := mustJSON(t, dst.ClusterStats()), mustJSON(t, src.ClusterStats()); got != want {
		t.Fatalf("ClusterStats = %s, want %s", got, want)
	}
}

func TestEngineDurableRoundTrip(t *testing.T) {
	env := newTestEnv(t, nil)
	reqs := driveDurableWorld(t, env, env.e)

	fresh, err := NewEngine(env.pt, env.spx, env.e.Config())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, env.e, fresh, reqs)

	// A restored dispatcher must keep working: the next dispatch decision
	// must match the original engine's.
	next := env.request(1000, env.vertexNear(t, 0.3, 0.3), env.vertexNear(t, 0.7, 0.6), 20, 2.5)
	nextCopy := *next
	a1, ok1 := env.e.Dispatch(next, 20, false)
	a2, ok2 := fresh.Dispatch(&nextCopy, 20, false)
	if ok1 != ok2 {
		t.Fatalf("post-restore dispatch diverged: ok %v vs %v", ok1, ok2)
	}
	if ok1 && a1.Taxi.ID != a2.Taxi.ID {
		t.Fatalf("post-restore dispatch picked taxi %d, original %d", a2.Taxi.ID, a1.Taxi.ID)
	}
}

func TestShardedEngineDurableRoundTrip(t *testing.T) {
	for _, shards := range []int{2, 3} {
		env := newTestEnv(t, nil)
		se := shardedOver(t, env, shards, nil)
		reqs := driveDurableWorld(t, env, se)

		fresh := shardedOver(t, env, shards, nil)
		roundTrip(t, se, fresh, reqs)

		// Ownership must be recomputed to the territorial shard.
		for id := int64(1); id <= 12; id++ {
			taxi, ok := fresh.Taxi(id)
			if !ok {
				t.Fatalf("shards=%d: taxi %d missing after restore", shards, id)
			}
			if got, want := fresh.ownerIdx(taxi), fresh.shardAt(taxi.At()); got != want {
				t.Fatalf("shards=%d: taxi %d owned by shard %d, territory %d", shards, id, got, want)
			}
		}
	}
}

func TestRestoreDurableRejectsNonEmpty(t *testing.T) {
	env := newTestEnv(t, nil)
	reqs := driveDurableWorld(t, env, env.e)
	st := env.e.CaptureDurable()
	if _, err := env.e.RestoreDurable(st, resolverFor(reqs)); err == nil {
		t.Fatal("restore into a populated engine must fail")
	}
	se := shardedOver(t, env, 2, nil)
	placeFleetOn(se, env, 2, 3)
	if _, err := se.RestoreDurable(st, resolverFor(reqs)); err == nil {
		t.Fatal("restore into a populated sharded engine must fail")
	}
}

func TestRestoreDurableUnknownRequest(t *testing.T) {
	env := newTestEnv(t, nil)
	_ = driveDurableWorld(t, env, env.e)
	st := env.e.CaptureDurable()
	fresh, err := NewEngine(env.pt, env.spx, env.e.Config())
	if err != nil {
		t.Fatal(err)
	}
	empty := func(fleet.RequestID) (*fleet.Request, bool) { return nil, false }
	if _, err := fresh.RestoreDurable(st, empty); err == nil {
		t.Fatal("restore with unresolvable requests must fail")
	}
}

func TestQueueDurableRoundTrip(t *testing.T) {
	env := newTestEnv(t, nil)
	q := env.e.NewPendingPool(8)
	reqs := make(map[fleet.RequestID]*fleet.Request)
	for i := int64(1); i <= 5; i++ {
		req := env.request(i, env.vertexNear(t, 0.2, 0.2), env.vertexNear(t, 0.8, 0.8), 0, 3+float64(i))
		if !q.Push(req, 0).Accepted() {
			t.Fatalf("push %d rejected", i)
		}
		reqs[req.ID] = req
	}
	q.NextBatch() // bump retries
	if !q.MarkServed(reqs[3].ID, 5) {
		t.Fatal("MarkServed failed")
	}
	delete(reqs, 3)

	st := q.CaptureDurable()
	fresh := env.e.NewPendingPool(8)
	if err := fresh.RestoreDurable(st, resolverFor(reqs)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := mustJSON(t, fresh.CaptureDurable()), mustJSON(t, st); got != want {
		t.Fatalf("queue re-capture differs:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, fresh.Stats()), mustJSON(t, q.Stats()); got != want {
		t.Fatalf("queue stats differ: got %s want %s", got, want)
	}
	// Restored heap must drain in the same deterministic order.
	b1, b2 := q.NextBatch(), fresh.NextBatch()
	if len(b1) != len(b2) {
		t.Fatalf("batch lengths differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i].Req.ID != b2[i].Req.ID || b1[i].Retries != b2[i].Retries {
			t.Fatalf("batch item %d differs: (%d,%d) vs (%d,%d)",
				i, b1[i].Req.ID, b1[i].Retries, b2[i].Req.ID, b2[i].Retries)
		}
	}
}

func TestQueueGroupDurableRoundTrip(t *testing.T) {
	env := newTestEnv(t, nil)
	se := shardedOver(t, env, 2, nil)
	q := se.NewPendingPool(16)
	reqs := make(map[fleet.RequestID]*fleet.Request)
	for i := int64(1); i <= 8; i++ {
		o := env.vertexNear(t, 0.05+0.1*float64(i%9), 0.1+0.1*float64(i%8))
		req := env.request(i, o, env.vertexNear(t, 0.5, 0.5), 0, 4)
		if !q.Push(req, 0).Accepted() {
			t.Fatalf("push %d rejected", i)
		}
		reqs[req.ID] = req
	}
	st := q.CaptureDurable()
	if len(st.Stats) != 2 {
		t.Fatalf("group capture has %d stats entries, want 2", len(st.Stats))
	}
	fresh := se.NewPendingPool(16)
	if err := fresh.RestoreDurable(st, resolverFor(reqs)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := mustJSON(t, fresh.CaptureDurable()), mustJSON(t, st); got != want {
		t.Fatalf("group re-capture differs:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, fresh.(*QueueGroup).ShardDepths()), mustJSON(t, q.(*QueueGroup).ShardDepths()); got != want {
		t.Fatalf("shard depths differ: got %s want %s", got, want)
	}
}

func TestQueueRestoreValidation(t *testing.T) {
	env := newTestEnv(t, nil)
	req := env.request(1, env.vertexNear(t, 0.2, 0.2), env.vertexNear(t, 0.8, 0.8), 0, 4)
	reqs := map[fleet.RequestID]*fleet.Request{req.ID: req}

	q := env.e.NewPendingPool(8)
	q.Push(req, 0)
	st := q.CaptureDurable()

	// Non-empty target.
	busy := env.e.NewPendingPool(8)
	busy.Push(req, 0)
	if err := busy.RestoreDurable(st, resolverFor(reqs)); err == nil {
		t.Fatal("restore into non-empty queue must fail")
	}
	// Capacity mismatch.
	if err := env.e.NewPendingPool(4).RestoreDurable(st, resolverFor(reqs)); err == nil {
		t.Fatal("capacity mismatch must fail")
	}
	// Stats arity.
	bad := st
	bad.Stats = append(bad.Stats, bad.Stats[0])
	if err := env.e.NewPendingPool(8).RestoreDurable(bad, resolverFor(reqs)); err == nil {
		t.Fatal("wrong stats arity must fail")
	}
	// Unknown request.
	empty := func(fleet.RequestID) (*fleet.Request, bool) { return nil, false }
	if err := env.e.NewPendingPool(8).RestoreDurable(st, empty); err == nil {
		t.Fatal("unknown queued request must fail")
	}
	// Group arity: 2-shard group refuses a 1-queue snapshot.
	se := shardedOver(t, env, 2, nil)
	if err := se.NewPendingPool(8).RestoreDurable(st, resolverFor(reqs)); err == nil {
		t.Fatal("group restore with 1 stats entry must fail")
	}
}

func TestSchemeRestoreIndexed(t *testing.T) {
	env := newTestEnv(t, nil)
	s := NewScheme(env.e, false)
	reqs := driveDurableWorld(t, env, env.e)
	st := env.e.CaptureDurable()

	fresh, err := NewEngine(env.pt, env.spx, env.e.Config())
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewScheme(fresh, false)
	restored, err := fresh.RestoreDurable(st, resolverFor(reqs))
	if err != nil {
		t.Fatal(err)
	}
	s2.RestoreIndexed(restored)
	s2.mu.Lock()
	defer s2.mu.Unlock()
	for _, taxi := range restored {
		want := fresh.Partitioning().PartitionOf(taxi.At())
		if got, ok := s2.lastIndexed[taxi.ID]; !ok || got != want {
			t.Fatalf("taxi %d lastIndexed = %v (ok=%v), want %v", taxi.ID, got, ok, want)
		}
	}
	_ = s
}

func TestCruiseSamplerFastForward(t *testing.T) {
	env := newTestEnv(t, nil)
	a := env.e.cruise
	for i := 0; i < 5; i++ {
		a.next()
	}
	fresh, err := NewEngine(env.pt, env.spx, env.e.Config())
	if err != nil {
		t.Fatal(err)
	}
	b := fresh.cruise
	if err := b.fastForward(a.drawCount()); err != nil {
		t.Fatal(err)
	}
	if a.drawCount() != b.drawCount() {
		t.Fatalf("draw counts differ: %d vs %d", a.drawCount(), b.drawCount())
	}
	for i := 0; i < 3; i++ {
		if x, y := a.next(), b.next(); x != y {
			t.Fatalf("draw %d differs: %v vs %v", i, x, y)
		}
	}
	if err := b.fastForward(0); err == nil {
		t.Fatal("fast-forward backwards must fail")
	}
}
