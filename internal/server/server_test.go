package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/match"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 10, Capacity: 3, Speedup: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func do(t *testing.T, h http.Handler, method, path string, body interface{}) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]json.RawMessage{}
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

func cityPoint(s *Server, fLat, fLng float64) map[string]float64 {
	min, max := s.g.Bounds()
	return map[string]float64{
		"lat": min.Lat + fLat*(max.Lat-min.Lat),
		"lng": min.Lng + fLng*(max.Lng-min.Lng),
	}
}

func TestServerLifecycle(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Fleet listing.
	rec, _ := do(t, h, http.MethodGet, "/api/taxis", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/taxis = %d", rec.Code)
	}
	var taxis []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &taxis); err != nil {
		t.Fatal(err)
	}
	if len(taxis) != 10 {
		t.Fatalf("fleet = %d", len(taxis))
	}

	// Register a taxi.
	rec, out := do(t, h, http.MethodPost, "/api/taxis", map[string]interface{}{
		"lat": cityPoint(s, 0.5, 0.5)["lat"], "lng": cityPoint(s, 0.5, 0.5)["lng"], "capacity": 4,
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /api/taxis = %d: %s", rec.Code, rec.Body)
	}
	if string(out["id"]) == "" {
		t.Fatal("no taxi id returned")
	}

	// Submit a request.
	rec, out = do(t, h, http.MethodPost, "/api/requests", map[string]interface{}{
		"pickup":  cityPoint(s, 0.45, 0.45),
		"dropoff": cityPoint(s, 0.9, 0.9),
		"rho":     1.5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/requests = %d: %s", rec.Code, rec.Body)
	}
	var served bool
	if err := json.Unmarshal(out["served"], &served); err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Fatalf("request not served: %s", rec.Body)
	}
	var id int64
	if err := json.Unmarshal(out["id"], &id); err != nil {
		t.Fatal(err)
	}
	var eta float64
	if err := json.Unmarshal(out["dropoff_eta_seconds"], &eta); err != nil || eta <= 0 {
		t.Fatalf("dropoff eta = %v, %v", eta, err)
	}

	// Poll status.
	rec, out = do(t, h, http.MethodGet, fmt.Sprintf("/api/requests?id=%d", id), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/requests = %d", rec.Code)
	}
	if err := json.Unmarshal(out["served"], &served); err != nil || !served {
		t.Fatal("status lost the assignment")
	}

	// Stats.
	rec, out = do(t, h, http.MethodGet, "/api/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/stats = %d", rec.Code)
	}
	var nTaxis int
	if err := json.Unmarshal(out["taxis"], &nTaxis); err != nil || nTaxis != 11 {
		t.Fatalf("stats taxis = %d", nTaxis)
	}
}

func TestServerDeliversOverSimulatedTime(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	rec, out := do(t, h, http.MethodPost, "/api/requests", map[string]interface{}{
		"pickup":  cityPoint(s, 0.4, 0.4),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.6,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST = %d", rec.Code)
	}
	var served bool
	_ = json.Unmarshal(out["served"], &served)
	if !served {
		t.Skip("no feasible taxi for this placement")
	}
	var id int64
	_ = json.Unmarshal(out["id"], &id)
	// Drive the world forward directly (no background loop in tests).
	for i := 0; i < 2000; i++ {
		s.advance(5)
		_, out = do(t, h, http.MethodGet, fmt.Sprintf("/api/requests?id=%d", id), nil)
		var delivered bool
		_ = json.Unmarshal(out["delivered"], &delivered)
		if delivered {
			var fare float64
			_ = json.Unmarshal(out["fare_estimate"], &fare)
			if fare <= 0 {
				t.Fatal("delivered with no fare")
			}
			return
		}
	}
	t.Fatal("request never delivered")
}

func TestServerBadInputs(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	rec, _ := do(t, h, http.MethodGet, "/api/requests?id=abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id = %d", rec.Code)
	}
	rec, _ = do(t, h, http.MethodGet, "/api/requests?id=999", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", rec.Code)
	}
	rec, _ = do(t, h, http.MethodDelete, "/api/taxis", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d", rec.Code)
	}
	// Same pickup and dropoff.
	p := cityPoint(s, 0.5, 0.5)
	rec, _ = do(t, h, http.MethodPost, "/api/requests", map[string]interface{}{
		"pickup": p, "dropoff": p,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("degenerate request = %d", rec.Code)
	}
}

func TestServerStartStop(t *testing.T) {
	s := newTestServer(t)
	s.Start()
	s.Stop()
	if s.String() == "" {
		t.Fatal("empty description")
	}
	_ = s.Now()
}

func TestServerStreetHail(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 8, Capacity: 3, Probabilistic: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	// Find a taxi to hail.
	rec, _ := do(t, h, http.MethodGet, "/api/taxis", nil)
	var taxis []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &taxis); err != nil {
		t.Fatal(err)
	}
	id := int64(taxis[0]["id"].(float64))
	pos := taxis[0]["position"].(map[string]interface{})
	pickup := map[string]float64{"lat": pos["lat"].(float64), "lng": pos["lng"].(float64)}
	rec, out := do(t, h, http.MethodPost, "/api/hails", map[string]interface{}{
		"taxi_id": id,
		"pickup":  pickup,
		"dropoff": cityPoint(s, 0.85, 0.85),
		"rho":     1.6,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/hails = %d: %s", rec.Code, rec.Body)
	}
	var served bool
	if err := json.Unmarshal(out["served"], &served); err != nil || !served {
		t.Fatalf("hail unserved: %s", rec.Body)
	}
	// Unknown taxi.
	rec, _ = do(t, h, http.MethodPost, "/api/hails", map[string]interface{}{
		"taxi_id": 999, "pickup": pickup, "dropoff": cityPoint(s, 0.8, 0.8),
	})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown taxi hail = %d", rec.Code)
	}
	// Stats expose engine counters.
	rec, out = do(t, h, http.MethodGet, "/api/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if _, ok := out["offline_insertions"]; !ok {
		t.Fatal("engine counters missing from stats")
	}
}

func TestServerVersionedRoutesAndAliases(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// The /v1/ routes are the primary surface.
	rec, _ := do(t, h, http.MethodGet, "/v1/taxis", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/taxis = %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "" {
		t.Fatal("/v1 route marked deprecated")
	}

	// The unversioned aliases still work but announce their successor.
	rec, _ = do(t, h, http.MethodGet, "/api/taxis", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/taxis = %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Fatal("alias missing Deprecation header")
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/v1/taxis") {
		t.Fatalf("alias Link header = %q", link)
	}
}

func TestServerErrorEnvelope(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	assertEnvelope := func(rec *httptest.ResponseRecorder, status int, code string) {
		t.Helper()
		if rec.Code != status {
			t.Fatalf("status = %d, want %d: %s", rec.Code, status, rec.Body)
		}
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("not an envelope: %s", rec.Body)
		}
		if env.Code != code || env.Error == "" {
			t.Fatalf("envelope = %+v, want code %q", env, code)
		}
	}

	rec, _ := do(t, h, http.MethodGet, "/v1/requests?id=abc", nil)
	assertEnvelope(rec, http.StatusBadRequest, "invalid_request")

	rec, _ = do(t, h, http.MethodGet, "/v1/requests?id=999", nil)
	assertEnvelope(rec, http.StatusNotFound, "not_found")

	rec, _ = do(t, h, http.MethodDelete, "/v1/taxis", nil)
	assertEnvelope(rec, http.StatusMethodNotAllowed, "method_not_allowed")
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("Allow header = %q", allow)
	}

	// Explicit sub-minimum rho is rejected rather than silently patched.
	rec, _ = do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
		"pickup": cityPoint(s, 0.4, 0.4), "dropoff": cityPoint(s, 0.8, 0.8), "rho": 0.5,
	})
	assertEnvelope(rec, http.StatusBadRequest, "invalid_request")

	// Shutdown turns mutating routes into 503 envelopes.
	s.Stop()
	rec, _ = do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
		"pickup": cityPoint(s, 0.4, 0.4), "dropoff": cityPoint(s, 0.8, 0.8),
	})
	assertEnvelope(rec, http.StatusServiceUnavailable, "shutdown")
	rec, _ = do(t, h, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read-only route after Stop = %d", rec.Code)
	}
}

func TestServerMetricsScrape(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Serve one request so the dispatch pipeline has observations.
	rec, out := do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
		"pickup":  cityPoint(s, 0.45, 0.45),
		"dropoff": cityPoint(s, 0.9, 0.9),
		"rho":     1.5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/requests = %d: %s", rec.Code, rec.Body)
	}
	var served bool
	if err := json.Unmarshal(out["served"], &served); err != nil || !served {
		t.Fatalf("request not served: %s", rec.Body)
	}

	rec, _ = do(t, h, http.MethodGet, "/v1/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE mtshare_match_dispatch_seconds histogram",
		"mtshare_match_dispatch_seconds_bucket{le=\"+Inf\"} 1",
		"mtshare_match_dispatches_total 1",
		"mtshare_match_candidate_search_seconds_bucket",
		"mtshare_match_scheduling_seconds_bucket",
		"mtshare_roadnet_cache_hits_total",
		"mtshare_roadnet_cache_misses_total",
		"mtshare_index_updates_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}

	rec, _ = do(t, h, http.MethodPost, "/v1/metrics", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/metrics = %d", rec.Code)
	}
}

// TestServerConcurrentTraffic hammers the API from many goroutines while
// the simulation clock advances, so the race detector can see handler,
// dispatch, and metrics paths interleave.
func TestServerConcurrentTraffic(t *testing.T) {
	s, err := New(Config{CityRows: 12, CityCols: 12, InitialTaxis: 12, Capacity: 3, Speedup: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Background: drive the simulated clock like the Start loop would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.advance(2)
			}
		}
	}()

	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f := 0.2 + 0.05*float64((w+i)%10)
				var buf bytes.Buffer
				_ = json.NewEncoder(&buf).Encode(map[string]interface{}{
					"pickup":  cityPoint(s, f, f),
					"dropoff": cityPoint(s, 1-f, 1-f),
					"rho":     1.6,
				})
				req := httptest.NewRequest(http.MethodPost, "/v1/requests", &buf)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
					errc <- fmt.Errorf("POST /v1/requests = %d: %s", rec.Code, rec.Body)
					return
				}
				for _, path := range []string{"/v1/stats", "/v1/metrics", "/v1/taxis"} {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
					if rec.Code != http.StatusOK {
						errc <- fmt.Errorf("GET %s = %d", path, rec.Code)
						return
					}
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestServerStopMidFlight hammers mutating endpoints while Stop fires
// from another goroutine. In-flight requests must either complete
// normally or be refused with the 503 shutdown envelope — never panic
// or mutate the engine after Stop returned — and every mutating request
// issued after Stop must see the 503.
// TestServerShardsEndpoint checks the /v1/shards surface on a sharded
// server: shard count, contiguous territory ranges, fleet slices that
// sum to the whole fleet, and the uniform error envelope on bad methods.
func TestServerShardsEndpoint(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 9, Capacity: 3, Speedup: 50, Seed: 2,
		QueueDepth: 8, Sharding: match.ShardingConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec, out := do(t, h, http.MethodGet, "/v1/shards", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/shards = %d: %s", rec.Code, rec.Body)
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil || count != 3 {
		t.Fatalf("count = %s, want 3", out["count"])
	}
	var shards []struct {
		Shard          int `json:"shard"`
		FirstPartition int `json:"first_partition"`
		LastPartition  int `json:"last_partition"`
		Taxis          int `json:"taxis"`
		QueueDepth     int `json:"queue_depth"`
	}
	if err := json.Unmarshal(out["shards"], &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("shards = %d entries", len(shards))
	}
	next, taxis := 0, 0
	for i, sh := range shards {
		if sh.Shard != i {
			t.Fatalf("entry %d has shard id %d", i, sh.Shard)
		}
		if sh.FirstPartition != next || sh.LastPartition < sh.FirstPartition {
			t.Fatalf("shard %d territory [%d,%d] not contiguous after %d",
				i, sh.FirstPartition, sh.LastPartition, next)
		}
		next = sh.LastPartition + 1
		taxis += sh.Taxis
		if sh.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d on an idle server", i, sh.QueueDepth)
		}
	}
	if taxis != 9 {
		t.Fatalf("shard fleets sum to %d taxis, want 9", taxis)
	}

	// The deprecated alias answers too.
	if rec, _ := do(t, h, http.MethodGet, "/api/shards", nil); rec.Code != http.StatusOK {
		t.Fatalf("GET /api/shards = %d", rec.Code)
	}
	// /v1/stats reports the shard count for unsharded-client visibility.
	if _, sout := do(t, h, http.MethodGet, "/v1/stats", nil); string(sout["shards"]) != "3" {
		t.Fatalf("/v1/stats shards = %s, want 3", sout["shards"])
	}
	// Bad method gets the uniform {"error","code"} envelope.
	rec, out = do(t, h, http.MethodPost, "/v1/shards", map[string]int{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/shards = %d", rec.Code)
	}
	if string(out["code"]) != `"method_not_allowed"` || len(out["error"]) == 0 {
		t.Fatalf("POST /v1/shards envelope: %s", rec.Body)
	}
	s.Stop()
	// Read-only: still answers after Stop.
	if rec, _ := do(t, h, http.MethodGet, "/v1/shards", nil); rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/shards after Stop = %d", rec.Code)
	}
}

func TestServerStopMidFlight(t *testing.T) {
	s, err := New(Config{CityRows: 12, CityCols: 12, InitialTaxis: 10, Capacity: 3, Speedup: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stopMidFlightHammer(t, s)
}

// TestServerStopMidFlightSharded runs the same shutdown hammer against a
// sharded dispatcher: Stop must drain every shard inside its critical
// section, so no request commits on any shard after Stop returns.
func TestServerStopMidFlightSharded(t *testing.T) {
	s, err := New(Config{CityRows: 12, CityCols: 12, InitialTaxis: 10, Capacity: 3, Speedup: 50, Seed: 5,
		QueueDepth: 8, Sharding: match.ShardingConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	stopMidFlightHammer(t, s)
}

func stopMidFlightHammer(t *testing.T, s *Server) {
	t.Helper()
	h := s.Handler()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	started := make(chan struct{})
	var startOnce sync.Once

	post := func(path string, body interface{}) (*httptest.ResponseRecorder, error) {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, &buf))
		return rec, nil
	}
	checkShutdownEnvelope := func(rec *httptest.ResponseRecorder, path string) error {
		var env struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			return fmt.Errorf("POST %s 503 body not JSON: %s", path, rec.Body)
		}
		if env.Code != "shutdown" {
			return fmt.Errorf("POST %s 503 code %q, want shutdown", path, env.Code)
		}
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				startOnce.Do(func() { close(started) })
				f := 0.15 + 0.05*float64((w+i)%12)
				var path string
				var body interface{}
				switch i % 3 {
				case 0:
					path = "/v1/requests"
					body = map[string]interface{}{
						"pickup": cityPoint(s, f, f), "dropoff": cityPoint(s, 1-f, 1-f), "rho": 1.6,
					}
				case 1:
					path = "/v1/taxis"
					body = map[string]interface{}{"at": cityPoint(s, f, 1-f), "capacity": 3}
				default:
					path = "/v1/hails"
					body = map[string]interface{}{
						"taxi_id": int64(1 + (w+i)%10),
						"pickup":  cityPoint(s, 1-f, f), "dropoff": cityPoint(s, f, 1-f), "rho": 1.5,
					}
				}
				rec, err := post(path, body)
				if err != nil {
					errc <- err
					return
				}
				switch rec.Code {
				case http.StatusOK, http.StatusCreated, http.StatusBadRequest, http.StatusNotFound,
					http.StatusTooManyRequests:
					// Normal outcomes while the server is live (429 is
					// queue-full backpressure on /v1/requests).
				case http.StatusServiceUnavailable:
					if err := checkShutdownEnvelope(rec, path); err != nil {
						errc <- err
						return
					}
				default:
					errc <- fmt.Errorf("POST %s = %d: %s", path, rec.Code, rec.Body)
					return
				}
			}
			errc <- nil
		}(w)
	}

	// Stop midway through the barrage, concurrently with the workers.
	stopDone := make(chan struct{})
	go func() {
		<-started
		s.Stop()
		close(stopDone)
	}()

	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	<-stopDone

	// After Stop has returned, every mutating endpoint must refuse.
	after := []struct {
		path string
		body interface{}
	}{
		{"/v1/requests", map[string]interface{}{
			"pickup": cityPoint(s, 0.2, 0.2), "dropoff": cityPoint(s, 0.8, 0.8), "rho": 1.6}},
		{"/v1/taxis", map[string]interface{}{"at": cityPoint(s, 0.5, 0.5), "capacity": 3}},
		{"/v1/hails", map[string]interface{}{
			"taxi_id": int64(1), "pickup": cityPoint(s, 0.3, 0.3), "dropoff": cityPoint(s, 0.7, 0.7), "rho": 1.5}},
	}
	for _, tc := range after {
		rec, err := post(tc.path, tc.body)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s after Stop = %d: %s", tc.path, rec.Code, rec.Body)
		}
		if err := checkShutdownEnvelope(rec, tc.path); err != nil {
			t.Fatal(err)
		}
	}
	// Read-only endpoints stay available after shutdown.
	for _, path := range []string{"/v1/stats", "/v1/metrics", "/v1/taxis", "/v1/shards"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s after Stop = %d", path, rec.Code)
		}
	}
	// Stop is idempotent.
	s.Stop()
}

// TestServerQueueLifecycle drives a request through the HTTP pending
// queue: parked with "queued": true when no taxi can serve it, visible
// in /v1/queue and the metrics gauges, then served by a movement tick's
// batch re-dispatch after a taxi registers.
func TestServerQueueLifecycle(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 0, Capacity: 3,
		Speedup: 50, Seed: 1, QueueDepth: 4, RetryEveryTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// With the queue disabled, /v1/queue must still answer.
	plain := newTestServer(t)
	rec, out := do(t, plain.Handler(), http.MethodGet, "/v1/queue", nil)
	if rec.Code != http.StatusOK || string(out["enabled"]) != "false" {
		t.Fatalf("queue-less server: %d %s", rec.Code, rec.Body)
	}

	// No fleet: the request parks.
	rec, out = do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.8,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/requests = %d: %s", rec.Code, rec.Body)
	}
	if string(out["served"]) != "false" || string(out["queued"]) != "true" {
		t.Fatalf("unserved request not queued: %s", rec.Body)
	}
	var reqID int64
	if err := json.Unmarshal(out["id"], &reqID); err != nil {
		t.Fatal(err)
	}

	rec, out = do(t, h, http.MethodGet, "/v1/queue", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/queue = %d", rec.Code)
	}
	if string(out["enabled"]) != "true" || string(out["depth"]) != "1" ||
		string(out["capacity"]) != "4" || string(out["enqueued"]) != "1" {
		t.Fatalf("queue state: %s", rec.Body)
	}

	// GET of the parked request reports queued, and the depth gauge is
	// on the metrics surface.
	rec, out = do(t, h, http.MethodGet, fmt.Sprintf("/v1/requests?id=%d", reqID), nil)
	if rec.Code != http.StatusOK || string(out["queued"]) != "true" {
		t.Fatalf("GET parked request: %d %s", rec.Code, rec.Body)
	}
	rec, _ = do(t, h, http.MethodGet, "/v1/metrics", nil)
	for _, want := range []string{"mtshare_match_queue_depth 1", "mtshare_match_queue_enqueued_total 1"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, rec.Body)
		}
	}

	// A taxi registers at the pickup; the next movement tick's batch
	// re-dispatch serves the parked request.
	rec, _ = do(t, h, http.MethodPost, "/v1/taxis", cityPoint(s, 0.3, 0.3))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /v1/taxis = %d", rec.Code)
	}
	s.advance(0.1)
	rec, out = do(t, h, http.MethodGet, fmt.Sprintf("/v1/requests?id=%d", reqID), nil)
	if rec.Code != http.StatusOK || string(out["served"]) != "true" || string(out["queued"]) == "true" {
		t.Fatalf("request after retry: %d %s", rec.Code, rec.Body)
	}
	rec, out = do(t, h, http.MethodGet, "/v1/queue", nil)
	if string(out["depth"]) != "0" || string(out["served"]) != "1" {
		t.Fatalf("queue after retry: %s", rec.Body)
	}
}

// TestServerQueueBackpressure pins the 429 path: once the pending queue
// is full, a further POST /v1/requests is true backpressure and answers
// 429 with the uniform error envelope (code queue_full) and a
// Retry-After hint derived from the retry cadence; the request that
// filled the queue keeps its 200 "queued" response.
func TestServerQueueBackpressure(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 0, Capacity: 3,
		Speedup: 50, Seed: 1, QueueDepth: 1, RetryEveryTicks: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.8,
	}

	// No fleet: the first request parks and fills the depth-1 queue.
	rec, out := do(t, h, http.MethodPost, "/v1/requests", body)
	if rec.Code != http.StatusOK || string(out["queued"]) != "true" {
		t.Fatalf("first request: %d %s", rec.Code, rec.Body)
	}

	// The second is refused for room, not deadline: 429 + envelope.
	rec, out = do(t, h, http.MethodPost, "/v1/requests", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("POST with full queue = %d, want 429: %s", rec.Code, rec.Body)
	}
	if string(out["code"]) != `"queue_full"` || len(out["error"]) == 0 {
		t.Fatalf("backpressure envelope: %s", rec.Body)
	}
	// 10 retry ticks x 200ms movement period, rounded up to whole seconds.
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}

	// The refusal is accounted as a rejection, not an expiry.
	rec, out = do(t, h, http.MethodGet, "/v1/queue", nil)
	if rec.Code != http.StatusOK || string(out["rejected"]) != "1" ||
		string(out["expired"]) != "0" || string(out["depth"]) != "1" {
		t.Fatalf("queue stats after backpressure: %s", rec.Body)
	}
}

// TestServerQueueExpiry pins the other refusal surface: a parked request
// whose pickup deadline passes while queued is evicted as expired —
// visible on its status and in the queue counters — and never counted
// as backpressure.
func TestServerQueueExpiry(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 0, Capacity: 3,
		Speedup: 50, Seed: 1, QueueDepth: 4, RetryEveryTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec, out := do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.1,
	})
	if rec.Code != http.StatusOK || string(out["queued"]) != "true" {
		t.Fatalf("request not parked: %d %s", rec.Code, rec.Body)
	}
	var reqID int64
	if err := json.Unmarshal(out["id"], &reqID); err != nil {
		t.Fatal(err)
	}

	// One movement tick far past the pickup deadline evicts it.
	s.advance(3600)
	rec, out = do(t, h, http.MethodGet, fmt.Sprintf("/v1/requests?id=%d", reqID), nil)
	if rec.Code != http.StatusOK || string(out["expired"]) != "true" ||
		string(out["served"]) == "true" || string(out["queued"]) == "true" {
		t.Fatalf("expired request status: %d %s", rec.Code, rec.Body)
	}
	rec, out = do(t, h, http.MethodGet, "/v1/queue", nil)
	if rec.Code != http.StatusOK || string(out["expired"]) != "1" ||
		string(out["rejected"]) != "0" || string(out["depth"]) != "0" {
		t.Fatalf("queue stats after expiry: %s", rec.Body)
	}
}

// TestServerBatchAssignDispatch smoke-tests the -batch-assign knob over
// HTTP: the global solver serves the queue's retry rounds and the
// mtshare_match_batch_assign_* instruments land on the metrics surface.
func TestServerBatchAssignDispatch(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 0, Capacity: 3,
		Speedup: 50, Seed: 1, QueueDepth: 8, RetryEveryTicks: 1, BatchAssign: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Two requests park (no fleet yet), forming a real retry batch.
	ids := make([]int64, 0, 2)
	for _, f := range []float64{0.30, 0.34} {
		rec, out := do(t, h, http.MethodPost, "/v1/requests", map[string]interface{}{
			"pickup":  cityPoint(s, f, f),
			"dropoff": cityPoint(s, 0.7, 0.7),
			"rho":     1.8,
		})
		if rec.Code != http.StatusOK || string(out["queued"]) != "true" {
			t.Fatalf("request not parked: %d %s", rec.Code, rec.Body)
		}
		var id int64
		if err := json.Unmarshal(out["id"], &id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, f := range []float64{0.30, 0.34} {
		if rec, _ := do(t, h, http.MethodPost, "/v1/taxis", cityPoint(s, f, f)); rec.Code != http.StatusCreated {
			t.Fatalf("POST /v1/taxis = %d", rec.Code)
		}
	}
	s.advance(0.1)
	for _, id := range ids {
		rec, out := do(t, h, http.MethodGet, fmt.Sprintf("/v1/requests?id=%d", id), nil)
		if rec.Code != http.StatusOK || string(out["served"]) != "true" {
			t.Fatalf("request %d after batch-assign retry: %d %s", id, rec.Code, rec.Body)
		}
	}
	rec, _ := do(t, h, http.MethodGet, "/v1/metrics", nil)
	if !strings.Contains(rec.Body.String(), "mtshare_match_batch_assign_rounds_total 1") {
		t.Fatalf("metrics exposition missing batch-assign round:\n%s", rec.Body)
	}
}
