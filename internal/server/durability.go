// Durable server state: WAL recording, snapshots, and crash recovery
// for the HTTP dispatch service.
//
// With Config.Durability enabled every state-changing API event is
// appended to the crash-safe WAL in the replay-v3 encoding (record 0 is
// the header, record i+1 is event i), a full state snapshot is written
// in the background every SnapshotEveryTicks movement ticks, and New
// over a non-empty WAL directory rebuilds the previous process's exact
// state: the header must match byte for byte, the latest valid snapshot
// is restored, and the tail is re-executed through the same locked core
// functions that produced it, with every re-executed outcome diffed
// against the recorded one. The engine is deterministic, so recovery is
// byte-identical to the state the crashed process had committed.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/replay"
	"repro/internal/wal"
)

// serverReqState is one request's full API-visible lifecycle in a
// snapshot.
type serverReqState struct {
	Req       fleet.RequestState `json:"req"`
	TaxiID    int64              `json:"taxi_id,omitempty"`
	Served    bool               `json:"served,omitempty"`
	Queued    bool               `json:"queued,omitempty"`
	Expired   bool               `json:"expired,omitempty"`
	PickedUp  bool               `json:"picked_up,omitempty"`
	Delivered bool               `json:"delivered,omitempty"`
	Fare      float64            `json:"fare,omitempty"`
}

// serverSnapshot is the serialized form of the whole service at an
// event boundary. Header fingerprints the world (config + graph) the
// snapshot was taken in; Events is the WAL watermark the snapshot file
// is named after.
type serverSnapshot struct {
	Header   json.RawMessage     `json:"header"`
	Events   int64               `json:"events"`
	Now      float64             `json:"now"`
	Ticks    int64               `json:"ticks"`
	NextTaxi int64               `json:"next_taxi"`
	NextReq  int64               `json:"next_req"`
	Requests []serverReqState    `json:"requests,omitempty"`
	Engine   *match.DurableState `json:"engine"`
	Queue    *match.PoolState    `json:"queue,omitempty"`
	Counters map[string]int64    `json:"counters,omitempty"`
}

// buildWALHeader pins the WAL to the world it records: reopening with a
// different configuration (or a different road graph) must be refused,
// not silently replayed into a diverging state.
func (s *Server) buildWALHeader() replay.Header {
	return replay.Header{
		Version:           replay.Version,
		Kind:              replay.KindSystem,
		Seed:              s.cfg.Seed,
		Rows:              s.cfg.CityRows,
		Cols:              s.cfg.CityCols,
		Partitions:        s.kappa,
		SpeedKmh:          s.engine.Config().SpeedMps * 3.6,
		Probabilistic:     s.cfg.Probabilistic,
		DisableLandmarkLB: s.cfg.DisableLandmarkLB,
		DisableCH:         s.cfg.DisableCH,
		QueueDepth:        s.cfg.QueueDepth,
		RetryEveryTicks:   s.cfg.RetryEveryTicks,
		Shards:            s.cfg.Sharding.Shards,
		BorderPolicy:      s.cfg.Sharding.BorderPolicy,
		GraphFingerprint:  fmt.Sprintf("%016x", s.g.Fingerprint()),
	}
}

// openDurability attaches the WAL to the freshly built (still virgin)
// server: a fresh directory starts a new log with the header as record
// 0; a non-empty one triggers recovery, after which New's seeding loop
// only tops up whatever AddTaxi events the log already replayed.
func (s *Server) openDurability() error {
	hdr := s.buildWALHeader()
	hdrLine, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("server: durability: marshal header: %w", err)
	}
	wlog, err := wal.Open(s.cfg.Durability, s.reg)
	if err != nil {
		return err
	}
	if wlog.Records() == 0 {
		enc, err := replay.NewEncoder(wlog.AppendWriter(), hdr)
		if err != nil {
			wlog.Close()
			return err
		}
		s.walEnc = enc
	} else {
		if err := s.recoverFromWAL(wlog, hdrLine); err != nil {
			wlog.Close()
			return fmt.Errorf("server: durability: recover: %w", err)
		}
		s.walEnc = replay.ResumeEncoder(wlog.AppendWriter())
	}
	s.wlog = wlog
	s.walHeader = hdrLine
	s.snapEvery = s.cfg.Durability.SnapshotEveryTicks
	return nil
}

// recordingLocked reports whether events should be assembled at all —
// either for the WAL or for the recovery verifier.
func (s *Server) recordingLocked() bool {
	return s.walEnc != nil || s.onEvent != nil
}

// recordLocked stamps ev with the next event index and appends it to
// the WAL — or hands it to the recovery verifier, which never
// re-appends. A sticky append or fsync error stops the whole service:
// the server must not keep acknowledging work it is no longer
// persisting, so the error is latched in walErr (handlers fail the
// triggering request with it) and stopped rejects everything after.
// When the configured crash point is reached the record is fsynced and
// the process SIGKILLs itself: the harness's deterministic stand-in for
// a power cut.
func (s *Server) recordLocked(ev replay.Event) {
	ev.I = s.eventIdx
	s.eventIdx++
	if s.onEvent != nil {
		s.onEvent(ev)
		return
	}
	if s.walEnc == nil {
		return
	}
	s.walEnc.Encode(ev)
	if s.walErr == nil {
		err := s.walEnc.Err()
		if err == nil {
			err = s.wlog.Err() // interval-loop fsync failures surface here first
		}
		if err != nil {
			s.walErr = err
			s.stopped = true
		}
	}
	if s.cfg.CrashAtEvent > 0 && ev.I == s.cfg.CrashAtEvent {
		s.wlog.Sync()
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
}

// eventCtx picks the dispatch context: with durability on, a recorded
// outcome must not depend on the client hanging up mid-dispatch, so the
// request context is dropped.
func (s *Server) eventCtx(r *http.Request) context.Context {
	if s.wlog != nil || s.onEvent != nil {
		return context.Background()
	}
	return r.Context()
}

// sealWALLocked closes a live WAL: the deterministic counters are
// appended as the closing Metrics record (recovery verifies them), in-
// flight snapshot writes are drained, and the log is fsynced shut.
func (s *Server) sealWALLocked() {
	if s.walEnc == nil {
		return
	}
	s.recordLocked(replay.Event{Metrics: &replay.MetricsRecord{
		Counters: s.deterministicCountersLocked(),
	}})
	s.walEnc = nil
	s.snapWG.Wait()
	s.wlog.Close()
}

func (s *Server) deterministicCountersLocked() map[string]int64 {
	return replay.DeterministicCounters(s.reg.Snapshot().Counters)
}

// recoverFromWAL rebuilds the server from the log: header check,
// snapshot restore, verified tail re-execution.
func (s *Server) recoverFromWAL(wlog *wal.Log, hdrLine []byte) error {
	first, err := bufio.NewReader(wlog.NewReader()).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return err
	}
	if got := bytes.TrimSuffix(first, []byte("\n")); !bytes.Equal(got, hdrLine) {
		return fmt.Errorf("header mismatch: log recorded under %s, config builds %s", got, hdrLine)
	}
	_, events, err := replay.ReadAll(wlog.NewReader())
	if err != nil {
		return err
	}
	var watermark int64
	if w, payload, ok, err := wlog.LatestSnapshotAtOrBefore(int64(len(events))); err != nil {
		return err
	} else if ok {
		var snap serverSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("decode snapshot at %d: %w", w, err)
		}
		if !bytes.Equal(snap.Header, hdrLine) {
			return fmt.Errorf("snapshot at %d fingerprints a different header", w)
		}
		if snap.Events != w {
			return fmt.Errorf("snapshot file at %d claims watermark %d", w, snap.Events)
		}
		if err := s.restoreSnapshot(&snap); err != nil {
			return fmt.Errorf("restore snapshot at %d: %w", w, err)
		}
		watermark = w
	}
	s.eventIdx = watermark
	return s.reexecuteTail(events, watermark)
}

// restoreSnapshot lays a snapshot onto the virgin server.
func (s *Server) restoreSnapshot(snap *serverSnapshot) error {
	s.nowSeconds = snap.Now
	s.tickCount = snap.Ticks
	s.nextTaxi = snap.NextTaxi
	s.nextReq = snap.NextReq
	for _, rs := range snap.Requests {
		req := fleet.RestoreRequest(rs.Req)
		s.requests[req.ID] = &reqStatus{
			Req: req, TaxiID: rs.TaxiID, Served: rs.Served, Queued: rs.Queued,
			Expired: rs.Expired, PickedUp: rs.PickedUp, Delivered: rs.Delivered, Fare: rs.Fare,
		}
	}
	resolve := func(id fleet.RequestID) (*fleet.Request, bool) {
		st, ok := s.requests[id]
		if !ok {
			return nil, false
		}
		return st.Req, true
	}
	restored, err := s.engine.RestoreDurable(snap.Engine, resolve)
	if err != nil {
		return err
	}
	s.scheme.RestoreIndexed(restored)
	for _, t := range restored {
		s.taxis[t.ID] = t
	}
	switch {
	case snap.Queue != nil && s.queue == nil:
		return fmt.Errorf("snapshot carries a queue but QueueDepth is 0")
	case snap.Queue == nil && s.queue != nil:
		return fmt.Errorf("snapshot has no queue but QueueDepth is set")
	case snap.Queue != nil:
		if err := s.queue.RestoreDurable(*snap.Queue, resolve); err != nil {
			return err
		}
	}
	s.reg.RestoreCounters(snap.Counters)
	return nil
}

// reexecuteTail drives the WAL events past the snapshot watermark back
// through the locked core functions. onEvent intercepts each freshly
// assembled event — nothing is re-appended — and it is diffed against
// the recorded one; a divergence means the log and the engine disagree,
// and recovery fails rather than resurrect a subtly different world.
func (s *Server) reexecuteTail(events []replay.Event, watermark int64) error {
	var actual *replay.Event
	s.onEvent = func(ev replay.Event) { actual = &ev }
	defer func() { s.onEvent = nil }()

	ctx := context.Background()
	for k := range events {
		rec := &events[k]
		if rec.I < watermark {
			continue
		}
		if rec.Metrics != nil {
			// A clean-shutdown counters seal mid-log: verify it and keep
			// going — the recovered server resumes the log.
			if divs := replay.DiffCounters(rec.I, rec.Metrics.Counters, s.deterministicCountersLocked()); len(divs) > 0 {
				return fmt.Errorf("recovered counters diverge from the log: %s", divs[0].String())
			}
			continue
		}
		actual = nil
		switch {
		case rec.AddTaxi != nil:
			s.addTaxiLocked(geo.Point{Lat: rec.AddTaxi.At.Lat, Lng: rec.AddTaxi.At.Lng}, rec.AddTaxi.Capacity)
		case rec.Request != nil:
			s.dispatchLocked(ctx,
				pointJSON{Lat: rec.Request.Pickup.Lat, Lng: rec.Request.Pickup.Lng},
				pointJSON{Lat: rec.Request.Dropoff.Lat, Lng: rec.Request.Dropoff.Lng},
				rec.Request.Flexibility)
		case rec.Hail != nil:
			s.hailLocked(ctx, rec.Hail.Taxi,
				pointJSON{Lat: rec.Hail.Pickup.Lat, Lng: rec.Hail.Pickup.Lng},
				pointJSON{Lat: rec.Hail.Dropoff.Lat, Lng: rec.Hail.Dropoff.Lng},
				rec.Hail.Flexibility)
		case rec.Tick != nil:
			s.advanceTickLocked(rec.Tick.DNanos)
		default:
			return fmt.Errorf("event %d has unknown kind", rec.I)
		}
		if actual == nil {
			return fmt.Errorf("event %d produced no outcome during re-execution", rec.I)
		}
		if divs := replay.DiffEvents(rec, actual); len(divs) > 0 {
			return fmt.Errorf("recovered state diverges from the log: %s", divs[0].String())
		}
	}
	return nil
}

// maybeSnapshotLocked writes a background snapshot when the movement-
// tick cadence is due. Capture is synchronous (the state must be this
// event boundary's); the marshal and fsync run off the hot path, and
// sealWALLocked drains them.
func (s *Server) maybeSnapshotLocked() {
	if s.wlog == nil || s.snapEvery <= 0 || s.onEvent != nil || s.walEnc == nil {
		return
	}
	if s.tickCount%int64(s.snapEvery) != 0 {
		return
	}
	snap := s.captureSnapshotLocked()
	wlog := s.wlog
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		// The watermark promises every event below it is in the log, so
		// the group-committed tail must be fsynced before the snapshot
		// can become durable — otherwise a crash in between recovers a
		// snapshot carrying events the log lost. A dead WAL skips the
		// snapshot; recovery would reject it anyway.
		if wlog.Sync() != nil {
			return
		}
		// Failures (marshal included) land in Stats.SnapshotErr and the
		// mtshare_wal_snapshot_errors_total counter.
		wlog.WriteSnapshotJSON(snap.Events, snap)
	}()
}

// captureSnapshotLocked serializes the server at the current event
// boundary. Everything captured is a deep copy, so the live server may
// keep mutating while the snapshot marshals in the background.
func (s *Server) captureSnapshotLocked() *serverSnapshot {
	snap := &serverSnapshot{
		Header:   s.walHeader,
		Events:   s.eventIdx,
		Now:      s.nowSeconds,
		Ticks:    s.tickCount,
		NextTaxi: s.nextTaxi,
		NextReq:  s.nextReq,
		Engine:   s.engine.CaptureDurable(),
		Counters: s.deterministicCountersLocked(),
	}
	ids := make([]fleet.RequestID, 0, len(s.requests))
	for id := range s.requests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.requests[id]
		snap.Requests = append(snap.Requests, serverReqState{
			Req: fleet.CaptureRequest(st.Req), TaxiID: st.TaxiID, Served: st.Served,
			Queued: st.Queued, Expired: st.Expired, PickedUp: st.PickedUp,
			Delivered: st.Delivered, Fare: st.Fare,
		})
	}
	if s.queue != nil {
		ps := s.queue.CaptureDurable()
		snap.Queue = &ps
	}
	return snap
}

// handleDurability reports the WAL's live statistics; with ?state=1 it
// additionally serializes the full engine snapshot — the byte-
// comparable state surface the crash-recovery harness diffs across a
// kill -9. Without durability it answers {"enabled": false}.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.mu.Lock()
	if s.wlog == nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]interface{}{"enabled": false})
		return
	}
	st := s.wlog.Stats()
	out := map[string]interface{}{
		"enabled":              true,
		"events":               s.eventIdx,
		"snapshot_every_ticks": s.snapEvery,
		"wal":                  st,
	}
	if r.URL.Query().Get("state") != "" {
		out["state"] = s.captureSnapshotLocked()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleAdvance drives the simulated clock under ManualClock: POST
// {"d_seconds": 4.0} runs exactly one movement tick. With the wall-
// clock ticker active the route refuses — two clocks would race.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, r, http.MethodPost)
		return
	}
	if !s.cfg.ManualClock {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "manual clock disabled")
		return
	}
	var body struct {
		DSeconds float64 `json:"d_seconds"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	if body.DSeconds <= 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "d_seconds must be positive")
		return
	}
	s.mu.Lock()
	if s.rejectIfStoppedLocked(w) {
		s.mu.Unlock()
		return
	}
	s.advanceTickLocked(int64(time.Duration(body.DSeconds * float64(time.Second))))
	now, n, walErr := s.nowSeconds, s.eventIdx, s.walErr
	s.mu.Unlock()
	if walErr != nil {
		writeWALFailed(w, walErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"sim_seconds": now, "events": n})
}
