package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/wal"
)

// durableTestConfig is the world every server crash test runs in.
func durableTestConfig(dir string, shards, parallelism int) Config {
	cfg := Config{
		CityRows: 10, CityCols: 10,
		InitialTaxis: 6, Capacity: 3,
		Speedup: 20, Seed: 4,
		QueueDepth: 8, RetryEveryTicks: 1,
		Parallelism: parallelism,
		ManualClock: true,
		Durability:  wal.Options{Dir: dir, SyncEvery: 1, SnapshotEveryTicks: 3},
	}
	if shards > 1 {
		cfg.Sharding.Shards = shards
	}
	return cfg
}

// crashOp returns the HTTP method, path, and body of deterministic
// operation k — a pure function of k, so any two servers driven over
// the same index range receive identical input streams.
func crashOp(k int) (string, string, interface{}) {
	frac := func(salt int) float64 {
		h := uint64(k*1000003+salt*7919) * 0x9E3779B97F4A7C15
		return float64(h>>11) / float64(1<<53)
	}
	pt := func(salt int) map[string]float64 {
		// Offsets within the 10x10 synthetic city's bounding box (centred
		// on Chengdu, ~1.1 km across); the server snaps them to road
		// vertices.
		return map[string]float64{
			"lat": 30.6540 + 0.0094*frac(salt),
			"lng": 104.0600 + 0.0096*frac(salt+1),
		}
	}
	switch {
	case k%4 == 3:
		return http.MethodPost, "/v1/advance", map[string]float64{"d_seconds": 4}
	case k%11 == 6:
		return http.MethodPost, "/v1/hails", map[string]interface{}{
			"taxi_id": 1 + k%6, "pickup": pt(1), "dropoff": pt(3), "rho": 1.5,
		}
	case k%9 == 0:
		return http.MethodPost, "/v1/taxis", map[string]interface{}{
			"lat": pt(5)["lat"], "lng": pt(5)["lng"], "capacity": 3,
		}
	default:
		return http.MethodPost, "/v1/requests", map[string]interface{}{
			"pickup": pt(1), "dropoff": pt(3), "rho": 1.3,
		}
	}
}

// TestServerDurableRecoveryInProcess drives the handler through a
// deterministic op schedule, abandons the server without Stop (the
// in-process crash: SyncEvery=1 means everything reached the OS), and
// requires a New over the same directory to rebuild byte-identical
// state — then both the recovered server and a never-crashed control
// must answer an identical op suffix identically.
func TestServerDurableRecoveryInProcess(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			crashed, err := New(durableTestConfig(dir, shards, 1))
			if err != nil {
				t.Fatal(err)
			}
			h := crashed.Handler()

			ctl, err := New(durableTestConfig(t.TempDir(), shards, 1))
			if err != nil {
				t.Fatal(err)
			}
			hCtl := ctl.Handler()

			const prefix, total = 17, 25
			for k := 0; k < prefix; k++ {
				method, path, body := crashOp(k)
				rec, _ := do(t, h, method, path, body)
				recCtl, _ := do(t, hCtl, method, path, body)
				if rec.Body.String() != recCtl.Body.String() {
					t.Fatalf("op %d diverged between live and control before any crash:\n%s\n%s",
						k, rec.Body.String(), recCtl.Body.String())
				}
			}
			crashed.mu.Lock()
			crashed.snapWG.Wait()
			want, err := json.Marshal(crashed.captureSnapshotLocked())
			crashed.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}

			recovered, err := New(durableTestConfig(dir, shards, 1))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			recovered.mu.Lock()
			got, err := json.Marshal(recovered.captureSnapshotLocked())
			recovered.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered state differs from crashed state:\n got %s\nwant %s", got, want)
			}

			hRec := recovered.Handler()
			for k := prefix; k < total; k++ {
				method, path, body := crashOp(k)
				rec, _ := do(t, hRec, method, path, body)
				recCtl, _ := do(t, hCtl, method, path, body)
				if rec.Body.String() != recCtl.Body.String() {
					t.Fatalf("post-recovery op %d diverged:\n%s\n%s", k, rec.Body.String(), recCtl.Body.String())
				}
			}
			recovered.Stop()
			ctl.Stop()
		})
	}
}

// TestServerDurableCleanRestart proves the clean-shutdown path: Stop
// seals the WAL with the counters record, and a restart verifies the
// seal and resumes the log.
func TestServerDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableTestConfig(dir, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for k := 0; k < 9; k++ {
		method, path, body := crashOp(k)
		do(t, h, method, path, body)
	}
	s.Stop()

	restarted, err := New(durableTestConfig(dir, 1, 1))
	if err != nil {
		t.Fatalf("restart after clean Stop: %v", err)
	}
	if restarted.eventIdx != 6+9 {
		t.Fatalf("restarted at event %d, want %d", restarted.eventIdx, 6+9)
	}
	restarted.Stop()
}

// ---- kill -9 harness -------------------------------------------------

// buildServerBinary compiles cmd/mtshare-server once for the harness.
func buildServerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mtshare-server")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/mtshare-server")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type childServer struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
}

// startChild launches the server binary over walDir and waits for the
// API to come up (recovery happens before listening). crashAt > 0 arms
// the self-SIGKILL crash point.
func startChild(t *testing.T, bin, walDir string, shards, parallelism int, crashAt int64) *childServer {
	t.Helper()
	addr := freeAddr(t)
	args := []string{
		"-addr", addr, "-rows", "10", "-cols", "10", "-taxis", "6", "-seed", "4",
		"-queue", "8", "-queue-retry", "1", "-manual-clock",
		"-wal-dir", walDir, "-wal-sync-every", "1", "-snapshot-every", "3",
		"-parallelism", fmt.Sprint(parallelism),
	}
	if shards > 1 {
		args = append(args, "-shards", fmt.Sprint(shards))
	}
	cmd := exec.Command(bin, args...)
	logs := &bytes.Buffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if crashAt > 0 {
		cmd.Env = append(os.Environ(), fmt.Sprintf("MTSHARE_CRASH_AT_EVENT=%d", crashAt))
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &childServer{cmd: cmd, base: "http://" + addr, logs: logs}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return c
			}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("server did not come up; logs:\n%s", logs.String())
	return nil
}

func (c *childServer) stop() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
		c.cmd.Wait()
	}
}

// post sends op k; ok=false means the server died mid-request (the
// armed crash point fired).
func (c *childServer) post(k int) (string, bool) {
	method, path, body := crashOp(k)
	b, _ := json.Marshal(body)
	req, _ := http.NewRequest(method, c.base+path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(out)), true
}

// state fetches the byte-comparable durability state surface.
func (c *childServer) state(t *testing.T) (events json.RawMessage, state json.RawMessage) {
	t.Helper()
	resp, err := http.Get(c.base + "/v1/durability?state=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["events"], out["state"]
}

func (c *childServer) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(b))
}

// copyWALSegments clones a WAL directory's segment files — but not its
// snapshots — so a reference server recovers the same history from
// genesis, cross-checking the snapshot-restore path against pure
// replay.
func copyWALSegments(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestServerCrashRecoveryKill9 is the acceptance harness: a real
// mtshare-server process is SIGKILLed at seeded WAL event indices, and
// a restart over the surviving directory must serve byte-identical
// state — proven against a reference server that replays the same WAL
// from genesis (no snapshots) — and then answer an identical op suffix
// identically. Runs the full shards × parallelism matrix.
func TestServerCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	bin := buildServerBinary(t)
	const maxOps = 40
	for _, shards := range []int{1, 2} {
		for _, parallelism := range []int{1, 2} {
			// Events 0..5 are the seeded fleet; crash strictly inside the
			// driven op range.
			crashPoints := replay.CrashPoints(int64(100*shards+parallelism), 3, 6+maxOps-8)
			for _, cp := range crashPoints {
				if cp < 7 {
					cp += 6
				}
				t.Run(fmt.Sprintf("shards=%d/par=%d/crash=%d", shards, parallelism, cp), func(t *testing.T) {
					walDir := t.TempDir()
					victim := startChild(t, bin, walDir, shards, parallelism, cp)
					defer victim.stop()
					crashed := false
					for k := 0; k < maxOps; k++ {
						if _, ok := victim.post(k); !ok {
							crashed = true
							break
						}
					}
					if !crashed {
						t.Fatalf("server survived %d ops, crash point %d never fired; logs:\n%s",
							maxOps, cp, victim.logs.String())
					}
					if err := victim.cmd.Wait(); err == nil {
						t.Fatal("crashed server exited cleanly")
					}
					ws, ok := victim.cmd.ProcessState.Sys().(syscall.WaitStatus)
					if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
						t.Fatalf("server did not die by SIGKILL: %v", victim.cmd.ProcessState)
					}

					refDir := copyWALSegments(t, walDir)
					recovered := startChild(t, bin, walDir, shards, parallelism, 0)
					defer recovered.stop()
					reference := startChild(t, bin, refDir, shards, parallelism, 0)
					defer reference.stop()

					recEvents, recState := recovered.state(t)
					refEvents, refState := reference.state(t)
					if !bytes.Equal(recEvents, refEvents) {
						t.Fatalf("recovered %s events, reference replayed %s", recEvents, refEvents)
					}
					if !bytes.Equal(recState, refState) {
						t.Fatalf("recovered state differs from genesis replay:\n got %s\nwant %s", recState, refState)
					}
					for _, path := range []string{"/v1/taxis", "/v1/queue", "/v1/shards"} {
						if got, want := recovered.get(t, path), reference.get(t, path); got != want {
							t.Fatalf("GET %s differs after recovery:\n got %s\nwant %s", path, got, want)
						}
					}

					// Identical suffixes must produce identical responses and
					// identical final states.
					for k := maxOps; k < maxOps+8; k++ {
						got, ok1 := recovered.post(k)
						want, ok2 := reference.post(k)
						if !ok1 || !ok2 {
							t.Fatalf("suffix op %d failed (recovered ok=%v, reference ok=%v)", k, ok1, ok2)
						}
						if got != want {
							t.Fatalf("suffix op %d diverged:\n got %s\nwant %s", k, got, want)
						}
					}
					_, recFinal := recovered.state(t)
					_, refFinal := reference.state(t)
					if !bytes.Equal(recFinal, refFinal) {
						t.Fatalf("final state diverged after suffix:\n got %s\nwant %s", recFinal, refFinal)
					}
				})
			}
		}
	}
}

// TestServerWALFailureFailsRequests proves a dead WAL stops the serve
// path: the request whose append hit the sticky error is answered with
// the wal_failed envelope instead of an ack, and every later mutation
// is rejected — the server must not keep acknowledging work it is no
// longer persisting.
func TestServerWALFailureFailsRequests(t *testing.T) {
	s, err := New(durableTestConfig(t.TempDir(), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	h := s.Handler()

	method, path, body := crashOp(1) // a plain dispatch op
	if rec, _ := do(t, h, method, path, body); rec.Code != http.StatusOK {
		t.Fatalf("healthy dispatch = %d, want 200", rec.Code)
	}

	// Kill the log out from under the server: the next append fails and
	// the error sticks in the encoder.
	s.mu.Lock()
	s.wlog.Close()
	s.mu.Unlock()

	rec, out := do(t, h, method, path, body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dispatch with dead WAL = %d, want 503", rec.Code)
	}
	if string(out["code"]) != `"wal_failed"` {
		t.Fatalf("error code = %s, want \"wal_failed\"", out["code"])
	}

	// Everything after is rejected up front, still naming the WAL.
	rec, out = do(t, h, method, path, body)
	if rec.Code != http.StatusServiceUnavailable || string(out["code"]) != `"wal_failed"` {
		t.Fatalf("follow-up = (%d, %s), want (503, \"wal_failed\")", rec.Code, out["code"])
	}
}

// TestServerRecoveryTopsUpSeeding proves a recovery that replays fewer
// seeded taxis than the configured fleet (the WAL lost the tail of the
// seeding burst) tops the fleet back up instead of silently running
// undersized forever.
func TestServerRecoveryTopsUpSeeding(t *testing.T) {
	dir := t.TempDir()
	small := durableTestConfig(dir, 1, 1)
	small.InitialTaxis = 3
	s, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()

	full := durableTestConfig(dir, 1, 1) // InitialTaxis = 6
	r, err := New(full)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(r.taxis) != 6 {
		t.Fatalf("recovered fleet has %d taxis, want topped up to 6", len(r.taxis))
	}
	r.Stop()

	// The top-up landed in the WAL as ordinary AddTaxi events: the next
	// restart replays the full fleet.
	again, err := New(full)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if len(again.taxis) != 6 {
		t.Fatalf("re-recovered fleet has %d taxis, want 6", len(again.taxis))
	}
	again.Stop()
}

// TestServerRecoveryIgnoresSnapshotAheadOfWAL plants a CRC-valid
// snapshot whose watermark exceeds the log's record count — the state a
// crashed process snapshotted after events its unsynced WAL tail lost —
// and requires recovery to skip it and genesis-replay instead of
// resurrecting phantom state (or failing on its payload).
func TestServerRecoveryIgnoresSnapshotAheadOfWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableTestConfig(dir, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for k := 0; k < 9; k++ {
		method, path, body := crashOp(k)
		do(t, h, method, path, body)
	}
	s.Stop()

	l, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(1000, []byte("phantom state")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	r, err := New(durableTestConfig(dir, 1, 1))
	if err != nil {
		t.Fatalf("recovery must skip the snapshot ahead of the WAL: %v", err)
	}
	if r.eventIdx != 6+9 {
		t.Fatalf("recovered at event %d, want %d", r.eventIdx, 6+9)
	}
	r.Stop()
}
