// Package server exposes the mT-Share matching engine as a real-time
// HTTP dispatch service: taxis register and move along planned routes on
// an accelerated clock, ride requests are matched on arrival, and the
// payment model settles fares on delivery. It is the "mobile-cloud"
// deployment shape the paper's Fig. 2 sketches, on the synthetic city.
//
// The API is versioned under /v1/ (the unversioned /api/ routes remain
// as deprecated aliases). Errors are a uniform JSON envelope
// {"error": "...", "code": "..."}; /v1/metrics serves the engine's
// instrument registry in Prometheus text format.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/payment"
	"repro/internal/replay"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config sizes the service's synthetic world.
type Config struct {
	CityRows, CityCols int
	InitialTaxis       int
	Capacity           int
	// Speedup is how much faster than wall clock the simulated taxis
	// drive. 0 defaults to 20x.
	Speedup float64
	// Kappa is the partition count; 0 derives it from the city size.
	Kappa int
	// Probabilistic enables mT-Share_pro behaviour: probabilistic routing
	// for taxis with spare seats and demand-seeking cruising when idle.
	Probabilistic bool
	// DisableLandmarkLB turns off the landmark lower-bound candidate
	// screen (lossless; see match.Config.DisableLandmarkLB). The
	// mtshare_match_lb_* instruments on /v1/metrics stay at zero.
	DisableLandmarkLB bool
	// DisableCH turns off the contraction-hierarchy routing backend
	// (exact, so outcomes are unchanged; see match.Config.DisableCH).
	// The mtshare_roadnet_ch_* instruments on /v1/metrics stay at zero
	// and cold routing queries fall back to bidirectional Dijkstra.
	DisableCH bool
	Seed      int64

	// QueueDepth bounds the pending-request queue. When positive, a ride
	// request that finds no feasible taxi parks for batched re-dispatch
	// on later movement ticks (the response reports "queued": true)
	// instead of failing terminally; a full queue rejects. Zero disables
	// queueing. /v1/queue reports the queue's live state.
	QueueDepth int
	// RetryEveryTicks runs the batch re-dispatch every Nth movement tick
	// (default 1). Expired requests are evicted on every tick regardless.
	RetryEveryTicks int
	// MaxInFlight bounds how many mutating requests (taxi registration,
	// ride requests, street hails) may be executing concurrently; up to
	// AdmissionQueue more may wait for a slot, and beyond that the server
	// sheds with 429 + Retry-After (code "overloaded") before the request
	// touches the engine. This is admission control — distinct from the
	// pending-queue's "queue_full" 429, which is a dispatch outcome.
	// Zero disables the gate. Read-only routes are never gated.
	MaxInFlight int
	// AdmissionQueue bounds the accept queue in front of MaxInFlight;
	// 0 defaults to MaxInFlight.
	AdmissionQueue int

	// BatchAssign runs the retry rounds as a global min-cost assignment
	// over the full (request, taxi) cost graph instead of greedy deadline-
	// order commits (see match.Config.BatchAssign). The
	// mtshare_match_batch_assign_* instruments on /v1/metrics report the
	// rounds, option counts, and fallbacks.
	BatchAssign bool

	// Sharding splits the dispatcher into independent per-territory match
	// engines with deterministic cross-shard handoff (outcome-identical
	// to the single engine; see match.ShardingConfig). /v1/shards reports
	// the per-shard breakdown. The zero value keeps the single engine.
	Sharding match.ShardingConfig

	// Metrics receives the engine's instruments; nil allocates a private
	// registry served at /v1/metrics either way.
	Metrics *obs.Registry
	// TraceSampleEvery samples one in N dispatches with a span tree
	// delivered to TraceHandler; 0 disables tracing.
	TraceSampleEvery int
	TraceHandler     func(*obs.Span)

	// Parallelism bounds the dispatcher's intra-dispatch worker count
	// (see match.Config.Parallelism). 0 uses the dispatcher default.
	Parallelism int

	// Durability, when enabled, makes the server crash-safe: every
	// state-changing API event (taxi registration, dispatch, street hail,
	// movement tick) is appended to a fsynced WAL in wal.Options.Dir, a
	// full state snapshot is written every SnapshotEveryTicks movement
	// ticks, and New over a non-empty directory recovers the previous
	// process's exact state — latest snapshot plus verified tail
	// re-execution. GET /v1/durability reports the log's statistics.
	// Dispatches run under context.Background() when durability is on:
	// a recorded outcome must not depend on a client disconnect.
	Durability wal.Options

	// ManualClock disables the wall-clock movement ticker; simulated time
	// only advances via POST /v1/advance. The crash-recovery harness uses
	// it to drive two servers through identical tick sequences.
	ManualClock bool

	// CrashAtEvent, when positive, fsyncs the WAL and SIGKILLs the
	// process immediately after appending the event with that index — a
	// deterministic crash point for recovery tests. Ignored without
	// Durability.
	CrashAtEvent int64
}

// tickInterval is the movement loop's wall-clock period; each tick
// advances simulated time by tickInterval × Config.Speedup. Retry-After
// hints on backpressured requests derive from it.
const tickInterval = 200 * time.Millisecond

// Server is the dispatch service.
type Server struct {
	cfg    Config
	g      *roadnet.Graph
	spx    *roadnet.SpatialIndex
	engine match.Dispatcher
	scheme *match.Scheme
	pay    payment.Model
	reg    *obs.Registry
	rng    *rand.Rand // guarded by mu; seeded from Config.Seed
	kappa  int        // effective partition count (derived when Config.Kappa is 0)

	// adm is the admission gate (nil when Config.MaxInFlight is 0);
	// httpHists holds the per-route latency histograms, populated once in
	// Handler and read lock-free by handleSLO.
	adm       *admission
	httpHists map[string]*obs.Histogram

	mu         sync.Mutex
	nowSeconds float64
	taxis      map[int64]*fleet.Taxi
	nextTaxi   int64
	nextReq    int64
	requests   map[fleet.RequestID]*reqStatus
	// Pending-request queue (nil when Config.QueueDepth is 0), serviced
	// at the top of every movement tick; tickCount counts those ticks.
	// The dispatcher supplies the pool: a single bounded queue, or a
	// per-shard queue group under one global bound when sharded.
	queue      match.Pool
	retryEvery int
	tickCount  int64
	// stopped is guarded by mu. Handlers decide the 503 and run their
	// engine mutation inside one mu critical section, so once Stop (which
	// sets stopped under mu) returns, no new mutation can start — an
	// atomic flag checked outside the lock would leave a window where a
	// handler passes the check and mutates the engine after shutdown.
	stopped bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Durability state, all guarded by mu (the WAL itself is internally
	// synchronized; the encoder and event counter are not). onEvent, when
	// set, intercepts assembled events instead of appending them —
	// recovery re-execution verifies outcomes without re-recording.
	wlog      *wal.Log
	walEnc    *replay.Encoder
	walHeader []byte
	eventIdx  int64
	snapEvery int
	snapWG    sync.WaitGroup
	onEvent   func(replay.Event)
	// walErr latches the WAL's sticky append/fsync error the moment
	// recordLocked observes it (setting stopped alongside): the request
	// whose record failed is answered with it instead of an ack, and
	// every later mutation is rejected — a server that cannot persist
	// must not keep acknowledging work.
	walErr error
}

type reqStatus struct {
	Req       *fleet.Request
	TaxiID    int64
	Served    bool
	Queued    bool
	Expired   bool
	PickedUp  bool
	Delivered bool
	Fare      float64
}

// New builds the world and engine.
func New(cfg Config) (*Server, error) {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 20
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 3
	}
	cp := roadnet.DefaultCityParams(cfg.CityRows, cfg.CityCols)
	cp.Seed = cfg.Seed
	g, err := roadnet.GenerateCity(cp)
	if err != nil {
		return nil, err
	}
	spx := roadnet.NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	hist, err := trace.Generate(trace.Workday, trace.GenParams{
		Center:           geo.Midpoint(min, max),
		ExtentMeters:     geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng}),
		TripsPerHourPeak: 400,
		UniformFrac:      0.15,
		Seed:             cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(hist.Trips))
	for i, tr := range hist.Trips {
		pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
	}
	kappa := cfg.Kappa
	if kappa == 0 {
		kappa = g.NumVertices() / 25
		if kappa < 8 {
			kappa = 8
		}
	}
	pp := partition.DefaultParams(kappa)
	if pp.KTrans >= kappa {
		pp.KTrans = kappa / 2
	}
	pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), pp)
	if err != nil {
		return nil, err
	}
	mcfg := match.DefaultConfig()
	mcfg.DisableLandmarkLB = cfg.DisableLandmarkLB
	mcfg.DisableCH = cfg.DisableCH
	mcfg.BatchAssign = cfg.BatchAssign
	mcfg.Metrics = cfg.Metrics
	mcfg.Sharding = cfg.Sharding
	mcfg.Parallelism = cfg.Parallelism
	if cfg.TraceSampleEvery > 0 {
		mcfg.Tracer = obs.NewTracer(cfg.TraceSampleEvery, cfg.TraceHandler)
	}
	eng, err := match.NewDispatcher(pt, spx, mcfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		g:        g,
		spx:      spx,
		engine:   eng,
		scheme:   match.NewScheme(eng, cfg.Probabilistic),
		pay:      payment.DefaultModel(),
		reg:      eng.Metrics(),
		rng:      rand.New(rand.NewSource(cfg.Seed + 2)),
		kappa:    kappa,
		taxis:    make(map[int64]*fleet.Taxi),
		requests: make(map[fleet.RequestID]*reqStatus),
		stop:     make(chan struct{}),
	}
	s.httpHists = make(map[string]*obs.Histogram)
	if cfg.MaxInFlight > 0 {
		maxWait := cfg.AdmissionQueue
		if maxWait <= 0 {
			maxWait = cfg.MaxInFlight
		}
		s.adm = newAdmission(s.reg, cfg.MaxInFlight, maxWait)
	}
	if cfg.QueueDepth > 0 {
		// The dispatcher-built pool surfaces the queue's depth gauge and
		// lifecycle counters (mtshare_match_queue_*) on the /v1/metrics
		// registry — per shard when sharded.
		s.queue = eng.NewPendingPool(cfg.QueueDepth)
		s.retryEvery = cfg.RetryEveryTicks
		if s.retryEvery <= 0 {
			s.retryEvery = 1
		}
	}
	if cfg.Durability.Enabled() {
		if err := s.openDurability(); err != nil {
			return nil, err
		}
	}
	// Initial placement uses the seeded rng, and — with durability on —
	// lands in the WAL as ordinary AddTaxi events; a recovering process
	// replays those instead of re-seeding. Recovery can restore fewer
	// than InitialTaxis when the crash tore the tail of the seeding
	// burst itself, so the fleet is topped up (appending fresh AddTaxi
	// events) rather than silently running undersized forever.
	for len(s.taxis) < cfg.InitialTaxis {
		s.addTaxiLocked(g.Point(roadnet.VertexID(s.rng.Intn(g.NumVertices()))), cfg.Capacity)
	}
	if s.walErr != nil {
		return nil, fmt.Errorf("server: durability: seeding: %w", s.walErr)
	}
	return s, nil
}

// Start launches the movement loop. With ManualClock set there is no
// loop: time advances only via POST /v1/advance.
func (s *Server) Start() {
	if s.cfg.ManualClock {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(tickInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.advance(tickInterval.Seconds() * s.cfg.Speedup)
			}
		}
	}()
}

// Stop terminates the movement loop and marks the service shut down:
// subsequent mutating requests fail with a 503 "shutdown" envelope.
// The flag is set under mu, so any handler already inside its critical
// section finishes first and every later handler observes the shutdown
// before touching the engine. Draining the dispatcher inside the same
// critical section closes every shard's commit path, so no dispatch —
// on any shard — can install a plan after Stop returns. Stop is
// idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.engine.Drain()
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	s.sealWALLocked()
	s.mu.Unlock()
}

// advance moves the world forward by dt simulated seconds. A stopped
// server (Stop, or a WAL failure latched by recordLocked) no longer
// moves: ticking on would keep mutating state that can never be
// persisted or recovered.
func (s *Server) advance(dt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	// dt round-trips through nanoseconds so the live tick and its WAL
	// replay advance by bit-identical durations.
	s.advanceTickLocked(int64(time.Duration(dt * float64(time.Second))))
}

// advanceTickLocked is one movement tick: queue maintenance, then every
// taxi drives in ID order (the ride-event sequence must be a pure
// function of the call history for the WAL to replay it). The tick is
// recorded as a replay TickEvent carrying the rides it fired and the
// queue outcomes, and triggers a background snapshot when the cadence
// is due.
func (s *Server) advanceTickLocked(dNanos int64) {
	dt := time.Duration(dNanos).Seconds()
	startNow := s.nowSeconds
	s.nowSeconds += dt
	s.tickCount++
	var tick *replay.TickEvent
	if s.recordingLocked() {
		tick = &replay.TickEvent{DNanos: dNanos}
	}
	s.serviceQueueLocked(tick)
	speed := s.engine.Config().SpeedMps
	ids := make([]int64, 0, len(s.taxis))
	for id := range s.taxis {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		t := s.taxis[id]
		visits := t.Advance(speed * dt)
		for _, v := range visits {
			if tick != nil {
				tick.Rides = append(tick.Rides, replay.Ride{
					Request: int64(v.Event.Req.ID),
					Taxi:    id,
					Pickup:  v.Event.Kind == fleet.Pickup,
					AtNanos: int64(time.Duration((startNow + v.MetersIntoTick/speed) * float64(time.Second))),
				})
			}
			st := s.requests[v.Event.Req.ID]
			if st == nil {
				continue
			}
			switch v.Event.Kind {
			case fleet.Pickup:
				st.PickedUp = true
			case fleet.Dropoff:
				st.Delivered = true
				st.Fare = s.pay.Tariff.Fare(v.Event.Req.DirectMeters)
				s.engine.OnRequestDone(v.Event.Req)
			}
		}
		s.scheme.OnTaxiAdvanced(t, s.nowSeconds)
		if s.cfg.Probabilistic {
			s.scheme.PlanIdle(t, s.nowSeconds)
		}
	}
	if tick != nil {
		s.recordLocked(replay.Event{Tick: tick})
	}
	s.maybeSnapshotLocked()
}

// serviceQueueLocked runs one movement tick of pending-queue
// maintenance under mu: evict requests whose pickup deadline strictly
// passed, then — when the retry interval is due — re-dispatch the
// parked batch in deterministic (pickup deadline, request ID) order.
// Outcomes are appended to tick when the tick is being recorded.
func (s *Server) serviceQueueLocked(tick *replay.TickEvent) {
	if s.queue == nil {
		return
	}
	for _, it := range s.queue.ExpireBefore(s.nowSeconds) {
		if st := s.requests[it.Req.ID]; st != nil {
			st.Expired = true
		}
		s.engine.OnRequestDone(it.Req)
		if tick != nil {
			tick.QueueExpired = append(tick.QueueExpired, int64(it.Req.ID))
		}
	}
	if s.tickCount%int64(s.retryEvery) != 0 {
		return
	}
	batch := s.queue.NextBatch()
	if len(batch) == 0 {
		return
	}
	reqs := make([]*fleet.Request, len(batch))
	enqueuedAt := make(map[fleet.RequestID]float64, len(batch))
	for i, it := range batch {
		reqs[i] = it.Req
		enqueuedAt[it.Req.ID] = it.EnqueuedAt
	}
	for _, o := range s.engine.DispatchBatch(context.Background(), reqs, s.nowSeconds, s.cfg.Probabilistic) {
		if !o.Served || !s.queue.MarkServed(o.Req.ID, s.nowSeconds) {
			continue
		}
		if st := s.requests[o.Req.ID]; st != nil {
			st.Served = true
			st.TaxiID = o.Assignment.Taxi.ID
		}
		if tick != nil {
			tick.QueueMatched = append(tick.QueueMatched, replay.QueueMatch{
				Request:   int64(o.Req.ID),
				Taxi:      o.Assignment.Taxi.ID,
				WaitNanos: int64(time.Duration((s.nowSeconds - enqueuedAt[o.Req.ID]) * float64(time.Second))),
				Conflict:  o.Conflict,
			})
		}
	}
}

func (s *Server) addTaxiLocked(p geo.Point, capacity int) int64 {
	s.nextTaxi++
	v, _ := s.spx.NearestVertex(p)
	t := fleet.NewTaxi(s.g, s.nextTaxi, capacity, v)
	s.taxis[t.ID] = t
	s.engine.AddTaxi(t, s.nowSeconds)
	if s.recordingLocked() {
		s.recordLocked(replay.Event{AddTaxi: &replay.AddTaxiEvent{
			At:       replay.Point{Lat: p.Lat, Lng: p.Lng},
			Capacity: capacity,
			Taxi:     t.ID,
		}})
	}
	return t.ID
}

// Handler returns the HTTP API. Routes live under /v1/; the original
// unversioned /api/ paths are served as deprecated aliases announcing
// their replacement via Deprecation and Link headers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Admission-gated routes are the ones whose POST bodies reach the
	// dispatch engine; everything else stays observable under overload.
	routes := map[string]http.HandlerFunc{
		"/taxis":      s.admit(s.handleTaxis),
		"/requests":   s.admit(s.handleRequests),
		"/hails":      s.admit(s.handleHails),
		"/stats":      s.handleStats,
		"/shards":     s.handleShards,
		"/queue":      s.handleQueue,
		"/metrics":    s.handleMetrics,
		"/durability": s.handleDurability,
		"/advance":    s.handleAdvance,
		"/slo":        s.handleSLO,
	}
	for path, h := range routes {
		h = s.instrument(strings.TrimPrefix(path, "/"), h)
		mux.HandleFunc("/v1"+path, h)
		mux.HandleFunc("/api"+path, deprecatedAlias("/v1"+path, h))
	}
	return mux
}

// deprecatedAlias serves h while flagging the route as superseded.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

type pointJSON struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

type taxiJSON struct {
	ID       int64     `json:"id"`
	Position pointJSON `json:"position"`
	Seats    int       `json:"occupied_seats"`
	Capacity int       `json:"capacity"`
	Empty    bool      `json:"empty"`
}

// Machine-readable error codes carried by the JSON error envelope.
const (
	codeInvalidRequest   = "invalid_request"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeShutdown         = "shutdown"
	codeWALFailed        = "wal_failed"
	codeQueueFull        = "queue_full"
	codeOverloaded       = "overloaded"
)

// errorJSON is the uniform error envelope of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorJSON{Error: msg, Code: code})
}

// methodNotAllowed answers 405 with the Allow header listing the
// methods the route accepts.
func methodNotAllowed(w http.ResponseWriter, r *http.Request, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
		fmt.Sprintf("method %s not allowed", r.Method))
}

// rejectIfStoppedLocked answers mutating requests arriving after Stop —
// or after a WAL failure stopped the service, in which case the error
// envelope names the durability failure rather than a plain shutdown.
// The caller must hold mu: the shutdown decision is only race-free when
// it shares the critical section with the mutation it guards.
func (s *Server) rejectIfStoppedLocked(w http.ResponseWriter) bool {
	if !s.stopped {
		return false
	}
	if s.walErr != nil {
		writeWALFailed(w, s.walErr)
		return true
	}
	writeError(w, http.StatusServiceUnavailable, codeShutdown, "server is shut down")
	return true
}

// writeWALFailed answers a mutating request that cannot be acknowledged
// because the write-ahead log is dead: any in-memory state change was
// never persisted and would not survive a restart.
func writeWALFailed(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, codeWALFailed,
		fmt.Sprintf("durability failure, state not persisted: %v", err))
}

// handleMetrics serves the instrument registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleTaxis(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := make([]taxiJSON, 0, len(s.taxis))
		for _, t := range s.taxis {
			p := t.Point()
			out = append(out, taxiJSON{
				ID: t.ID, Position: pointJSON{p.Lat, p.Lng},
				Seats: t.OccupiedSeats(), Capacity: t.Capacity, Empty: t.Empty(),
			})
		}
		s.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var body struct {
			Lat      float64 `json:"lat"`
			Lng      float64 `json:"lng"`
			Capacity int     `json:"capacity"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
			return
		}
		if body.Capacity <= 0 {
			body.Capacity = s.cfg.Capacity
		}
		s.mu.Lock()
		if s.rejectIfStoppedLocked(w) {
			s.mu.Unlock()
			return
		}
		id := s.addTaxiLocked(geo.Point{Lat: body.Lat, Lng: body.Lng}, body.Capacity)
		walErr := s.walErr
		s.mu.Unlock()
		if walErr != nil {
			writeWALFailed(w, walErr)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
	default:
		methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

type requestJSON struct {
	ID            int64   `json:"id"`
	Served        bool    `json:"served"`
	Queued        bool    `json:"queued,omitempty"`
	Expired       bool    `json:"expired,omitempty"`
	TaxiID        int64   `json:"taxi_id,omitempty"`
	PickedUp      bool    `json:"picked_up"`
	Delivered     bool    `json:"delivered"`
	PickupETASec  float64 `json:"pickup_eta_seconds,omitempty"`
	DropoffETASec float64 `json:"dropoff_eta_seconds,omitempty"`
	FareEstimate  float64 `json:"fare_estimate,omitempty"`
	Candidates    int     `json:"candidates"`
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, "missing or bad id")
			return
		}
		s.mu.Lock()
		st, ok := s.requests[fleet.RequestID(id)]
		s.mu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, codeNotFound, "unknown request")
			return
		}
		writeJSON(w, http.StatusOK, requestJSON{
			ID: id, Served: st.Served, TaxiID: st.TaxiID,
			Queued: st.Queued && !st.Served && !st.Expired, Expired: st.Expired,
			PickedUp: st.PickedUp, Delivered: st.Delivered, FareEstimate: st.Fare,
		})
	case http.MethodPost:
		var body struct {
			Pickup  pointJSON `json:"pickup"`
			Dropoff pointJSON `json:"dropoff"`
			Rho     float64   `json:"rho"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
			return
		}
		rho, ok := normalizeRho(body.Rho)
		if !ok {
			writeError(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("rho %g below minimum 1.05", body.Rho))
			return
		}
		s.dispatch(w, r, body.Pickup, body.Dropoff, rho)
	default:
		methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// normalizeRho applies the 1.3 default to an absent flexibility factor
// and rejects explicit values below the 1.05 floor.
func normalizeRho(rho float64) (float64, bool) {
	if rho == 0 {
		return 1.3, true
	}
	if rho < 1.05 {
		return 0, false
	}
	return rho, true
}

func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, pickup, dropoff pointJSON, rho float64) {
	s.mu.Lock()
	if s.rejectIfStoppedLocked(w) {
		s.mu.Unlock()
		return
	}
	out, ok := s.dispatchLocked(s.eventCtx(r), pickup, dropoff, rho)
	walErr := s.walErr
	// True backpressure — the queue is on but had no room — maps to 429
	// with a Retry-After hint; queued parks, expiries, and queue-less
	// no-taxi misses stay 200 (the body reports the outcome).
	queueFull := ok && s.queue != nil && !out.Served && !out.Queued && !out.Expired
	retryAfter := s.retryAfterSecondsLocked()
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "bad endpoints")
		return
	}
	if walErr != nil {
		writeWALFailed(w, walErr)
		return
	}
	if queueFull {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("pending queue is full; retry request %d after the next re-dispatch round", out.ID))
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// retryAfterSecondsLocked derives the Retry-After hint for a
// backpressured request: the wall-clock period of the queue's batch
// re-dispatch round (RetryEveryTicks movement ticks at tickInterval),
// rounded up to the 1-second floor of HTTP's delta-seconds form.
func (s *Server) retryAfterSecondsLocked() int {
	secs := int(math.Ceil(float64(s.retryEvery) * tickInterval.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// dispatchLocked creates and dispatches one online ride request; false
// means the endpoints did not snap to distinct vertices (no state was
// touched). The mutation — including terminal misses and queue parks —
// is recorded as a RequestEvent when durability is on.
func (s *Server) dispatchLocked(ctx context.Context, pickup, dropoff pointJSON, rho float64) (requestJSON, bool) {
	o, ok1 := s.spx.NearestVertex(geo.Point{Lat: pickup.Lat, Lng: pickup.Lng})
	d, ok2 := s.spx.NearestVertex(geo.Point{Lat: dropoff.Lat, Lng: dropoff.Lng})
	if !ok1 || !ok2 || o == d {
		return requestJSON{}, false
	}
	speed := s.engine.Config().SpeedMps
	direct := s.engine.Router().Cost(o, d)
	s.nextReq++
	req := &fleet.Request{
		ID:           fleet.RequestID(s.nextReq),
		ReleaseAt:    time.Duration(s.nowSeconds * float64(time.Second)),
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration((s.nowSeconds + direct/speed*rho) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		OriginPt:     s.g.Point(o),
		DestPt:       s.g.Point(d),
	}
	st := &reqStatus{Req: req}
	s.requests[req.ID] = st
	a, ok := s.engine.DispatchContext(ctx, req, s.nowSeconds, s.cfg.Probabilistic)
	out := requestJSON{ID: int64(req.ID), Candidates: a.Candidates}
	if !ok || s.engine.Commit(a, s.nowSeconds) != nil {
		s.parkUnservedLocked(st, &out)
	} else {
		st.Served = true
		st.TaxiID = a.Taxi.ID
		out.Served = true
		out.TaxiID = a.Taxi.ID
		for i, ev := range a.Events {
			if ev.Req.ID != req.ID {
				continue
			}
			eta := a.Eval.ArrivalSeconds[i] - s.nowSeconds
			if ev.Kind == fleet.Pickup {
				out.PickupETASec = eta
			} else {
				out.DropoffETASec = eta
			}
		}
		out.FareEstimate = s.pay.Tariff.Fare(direct)
	}
	if s.recordingLocked() {
		s.recordLocked(replay.Event{Request: &replay.RequestEvent{
			Pickup:      replay.Point{Lat: pickup.Lat, Lng: pickup.Lng},
			Dropoff:     replay.Point{Lat: dropoff.Lat, Lng: dropoff.Lng},
			Flexibility: rho,
			Out: replay.RequestOutcome{
				Err:             dispatchErrCode(&out, s.queue != nil),
				Request:         out.ID,
				Taxi:            out.TaxiID,
				Candidates:      out.Candidates,
				PickupETANanos:  int64(time.Duration(out.PickupETASec * float64(time.Second))),
				DropoffETANanos: int64(time.Duration(out.DropoffETASec * float64(time.Second))),
				FareEstimate:    out.FareEstimate,
			},
		}})
	}
	return out, true
}

// dispatchErrCode maps a dispatch response to the replay outcome code.
// With the queue enabled an unserved, unparked request is either a
// terminal expiry (its pickup deadline had already passed at push time)
// or true backpressure (queue_full) — the queue's refusal reason, carried
// on the response flags, keeps the two distinct.
func dispatchErrCode(out *requestJSON, queueEnabled bool) string {
	switch {
	case out.Served:
		return ""
	case out.Queued:
		return "queued"
	case out.Expired:
		return "expired"
	case queueEnabled:
		return "queue_full"
	default:
		return "no_taxi"
	}
}

// parkUnservedLocked pushes an unserved online request into the pending
// queue (when enabled) and flags the response accordingly. A refused
// push leaves the request terminally unserved, flagged Expired when the
// refusal was an already-passed pickup deadline rather than a full
// queue.
func (s *Server) parkUnservedLocked(st *reqStatus, out *requestJSON) {
	if s.queue == nil {
		return
	}
	switch s.queue.Push(st.Req, s.nowSeconds) {
	case match.PushAccepted:
		st.Queued = true
		out.Queued = true
	case match.PushRejectedExpired:
		st.Expired = true
		out.Expired = true
	}
}

// handleQueue reports the pending queue's live state. With the queue
// disabled it answers {"enabled": false} so clients can feature-detect.
func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.mu.Lock()
	enabled := s.queue != nil
	var qs match.QueueStats
	if enabled {
		qs = s.queue.Stats()
	}
	retry := s.retryEvery
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"enabled":           enabled,
		"depth":             qs.Depth,
		"capacity":          qs.Capacity,
		"retry_every_ticks": retry,
		"enqueued":          qs.Enqueued,
		"rejected":          qs.Rejected,
		"retries":           qs.Retries,
		"served":            qs.Served,
		"expired":           qs.Expired,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.mu.Lock()
	served, delivered := 0, 0
	for _, st := range s.requests {
		if st.Served {
			served++
		}
		if st.Delivered {
			delivered++
		}
	}
	es := s.engine.Stats()
	min, max := s.g.Bounds()
	stats := map[string]interface{}{
		"bounds": map[string]pointJSON{
			"min": {Lat: min.Lat, Lng: min.Lng},
			"max": {Lat: max.Lat, Lng: max.Lng},
		},
		"sim_seconds":         s.nowSeconds,
		"taxis":               len(s.taxis),
		"requests":            len(s.requests),
		"served":              served,
		"delivered":           delivered,
		"shards":              s.engine.ShardCount(),
		"index_memory_bytes":  s.engine.IndexMemoryBytes(),
		"graph_vertices":      s.g.NumVertices(),
		"dispatches":          es.Dispatches,
		"assignments":         es.Assignments,
		"offline_insertions":  es.OfflineInsertions,
		"cruise_plans":        es.CruisePlans,
		"probabilistic_plans": es.ProbabilisticPlans,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

// shardJSON is one dispatcher shard on the /v1/shards surface.
type shardJSON struct {
	Shard          int `json:"shard"`
	FirstPartition int `json:"first_partition"`
	LastPartition  int `json:"last_partition"`
	Taxis          int `json:"taxis"`
	// QueueDepth is the shard queue's parked-request count (always 0 when
	// the pending queue is disabled; the whole depth lands on shard 0
	// when the dispatcher is unsharded).
	QueueDepth            int   `json:"queue_depth"`
	Requests              int64 `json:"requests"`
	Assignments           int64 `json:"assignments"`
	CrossShardCandidates  int64 `json:"cross_shard_candidates"`
	CrossShardAssignments int64 `json:"cross_shard_assignments"`
	BorderConflicts       int64 `json:"border_conflicts"`
	Handoffs              int64 `json:"handoffs"`
}

// handleShards reports the per-shard dispatcher breakdown: territory,
// fleet slice, queue depth, and the cross-shard traffic counters. An
// unsharded dispatcher reports one shard owning every partition. The
// route is read-only, so it keeps answering after Stop.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.mu.Lock()
	raw := s.engine.ShardStats()
	var depths []int
	switch q := s.queue.(type) {
	case nil:
	case interface{ ShardDepths() []int }:
		depths = q.ShardDepths()
	default:
		depths = make([]int, len(raw))
		depths[0] = q.Len()
	}
	s.mu.Unlock()
	shards := make([]shardJSON, len(raw))
	for i, sh := range raw {
		shards[i] = shardJSON{
			Shard:                 sh.Shard,
			FirstPartition:        int(sh.FirstPartition),
			LastPartition:         int(sh.LastPartition),
			Taxis:                 sh.Taxis,
			Requests:              sh.Requests,
			Assignments:           sh.Engine.Assignments,
			CrossShardCandidates:  sh.CrossShardCandidates,
			CrossShardAssignments: sh.CrossShardAssignments,
			BorderConflicts:       sh.BorderConflicts,
			Handoffs:              sh.Handoffs,
		}
		if i < len(depths) {
			shards[i].QueueDepth = depths[i]
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":  len(shards),
		"shards": shards,
	})
}

// Now returns the current simulated time in seconds (tests use it).
func (s *Server) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nowSeconds
}

// String describes the server world.
func (s *Server) String() string {
	return fmt.Sprintf("mtshare server: %d vertices, %d taxis", s.g.NumVertices(), len(s.taxis))
}

// handleHails lets a driver report a roadside (offline) passenger hailing
// their taxi: the server validates an insertion into that taxi's schedule
// or dispatches another taxi (§IV-C2's interaction).
func (s *Server) handleHails(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, r, http.MethodPost)
		return
	}
	var body struct {
		TaxiID  int64     `json:"taxi_id"`
		Pickup  pointJSON `json:"pickup"`
		Dropoff pointJSON `json:"dropoff"`
		Rho     float64   `json:"rho"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	rho, okRho := normalizeRho(body.Rho)
	if !okRho {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("rho %g below minimum 1.05", body.Rho))
		return
	}
	s.mu.Lock()
	if s.rejectIfStoppedLocked(w) {
		s.mu.Unlock()
		return
	}
	out, code := s.hailLocked(s.eventCtx(r), body.TaxiID, body.Pickup, body.Dropoff, rho)
	walErr := s.walErr
	s.mu.Unlock()
	switch {
	case code == codeNotFound:
		writeError(w, http.StatusNotFound, codeNotFound, "unknown taxi")
	case code == codeInvalidRequest:
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "bad endpoints")
	case walErr != nil:
		writeWALFailed(w, walErr)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// hailLocked serves one roadside hail against the named taxi, falling
// back to a full dispatch when it cannot fit the party. A non-empty
// error code means nothing mutated; otherwise the event is recorded
// when durability is on.
func (s *Server) hailLocked(ctx context.Context, taxiID int64, pickup, dropoff pointJSON, rho float64) (requestJSON, string) {
	t, ok := s.taxis[taxiID]
	if !ok {
		return requestJSON{}, codeNotFound
	}
	o, ok1 := s.spx.NearestVertex(geo.Point{Lat: pickup.Lat, Lng: pickup.Lng})
	d, ok2 := s.spx.NearestVertex(geo.Point{Lat: dropoff.Lat, Lng: dropoff.Lng})
	if !ok1 || !ok2 || o == d {
		return requestJSON{}, codeInvalidRequest
	}
	speed := s.engine.Config().SpeedMps
	direct := s.engine.Router().Cost(o, d)
	s.nextReq++
	req := &fleet.Request{
		ID:           fleet.RequestID(s.nextReq),
		ReleaseAt:    time.Duration(s.nowSeconds * float64(time.Second)),
		Origin:       o,
		Dest:         d,
		Deadline:     time.Duration((s.nowSeconds + direct/speed*rho) * float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		Offline:      true,
		OriginPt:     s.g.Point(o),
		DestPt:       s.g.Point(d),
	}
	st := &reqStatus{Req: req}
	s.requests[req.ID] = st
	out := requestJSON{ID: int64(req.ID)}
	if s.engine.TryServeOffline(t, req, s.nowSeconds) {
		st.Served = true
		st.TaxiID = t.ID
		out.Served = true
		out.TaxiID = t.ID
	} else {
		// The hailing taxi could not fit them: dispatch another.
		if a, ok := s.engine.DispatchContext(ctx, req, s.nowSeconds, s.cfg.Probabilistic); ok && s.engine.Commit(a, s.nowSeconds) == nil {
			st.Served = true
			st.TaxiID = a.Taxi.ID
			out.Served = true
			out.TaxiID = a.Taxi.ID
		}
	}
	if s.recordingLocked() {
		hailErr := "no_taxi"
		if out.Served {
			hailErr = ""
		}
		s.recordLocked(replay.Event{Hail: &replay.HailEvent{
			Taxi:        taxiID,
			Pickup:      replay.Point{Lat: pickup.Lat, Lng: pickup.Lng},
			Dropoff:     replay.Point{Lat: dropoff.Lat, Lng: dropoff.Lng},
			Flexibility: rho,
			Out:         replay.HailOutcome{Err: hailErr, ServedBy: out.TaxiID},
		}})
	}
	return out, ""
}
