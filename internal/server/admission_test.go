package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// postRequests fires one POST /v1/requests and returns the recorder.
// Safe from any goroutine (no testing.T calls).
func postRequests(h http.Handler, body map[string]interface{}) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/requests", &buf))
	return rec
}

// TestAdmissionAcquireBounds pins the budget arithmetic deterministically,
// without HTTP: maxInFlight slots admit, maxWait more wait, the next is
// rejected, and the counters conserve offered == admitted + rejected.
func TestAdmissionAcquireBounds(t *testing.T) {
	a := newAdmission(obs.NewRegistry(), 1, 1)
	if !a.acquire() {
		t.Fatal("first acquire must claim the free slot")
	}

	// Second acquire parks in the wait queue; let it reach the blocking
	// send before probing the reject path.
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if !a.acquire() {
			t.Error("waiter was rejected despite queue room")
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// Slot busy, wait queue full: the third offer must shed.
	if a.acquire() {
		t.Fatal("acquire succeeded with slot and wait queue both full")
	}

	a.release() // waiter takes the slot
	<-waiterDone
	a.release()

	offered, admitted, rejected := a.offered.Value(), a.admitted.Value(), a.rejected.Value()
	if offered != 3 || admitted != 2 || rejected != 1 {
		t.Fatalf("counters offered=%d admitted=%d rejected=%d, want 3/2/1", offered, admitted, rejected)
	}
	if offered != admitted+rejected {
		t.Fatalf("conservation broken: %d != %d + %d", offered, admitted, rejected)
	}
	if in, wait := a.inFlight.Value(), a.waitingG.Value(); in != 0 || wait != 0 {
		t.Fatalf("gauges in_flight=%g waiting=%g after drain, want 0/0", in, wait)
	}
}

// TestAdmissionHammer slams a tiny admission budget with concurrent
// mutating requests under the race detector. Every response must be
// 200 or a 429 carrying Retry-After and the overloaded envelope — never
// a 5xx, a hang, or a bare 429 — the read-only surface must keep
// answering mid-hammer, and afterwards the admission counters conserve.
func TestAdmissionHammer(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 10, Capacity: 3,
		Speedup: 50, Seed: 1, MaxInFlight: 2, AdmissionQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.8,
	}

	const workers, perWorker = 16, 8
	type outcome struct {
		code       int
		retryAfter string
		envCode    string
		body       string
	}
	results := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := postRequests(h, body)
				var env errorJSON
				_ = json.Unmarshal(rec.Body.Bytes(), &env)
				results <- outcome{rec.Code, rec.Header().Get("Retry-After"), env.Code, rec.Body.String()}
			}
		}()
	}
	// The observability surface must stay live while the hammer runs.
	for _, path := range []string{"/v1/stats", "/v1/slo", "/v1/metrics"} {
		if rec, _ := do(t, h, http.MethodGet, path, nil); rec.Code != http.StatusOK {
			t.Fatalf("GET %s mid-hammer = %d", path, rec.Code)
		}
	}
	wg.Wait()
	close(results)

	ok2xx, shed := 0, 0
	for r := range results {
		switch r.code {
		case http.StatusOK:
			ok2xx++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Fatalf("429 without Retry-After: %s", r.body)
			}
			if r.envCode != codeOverloaded {
				t.Fatalf("429 with code %q, want %q: %s", r.envCode, codeOverloaded, r.body)
			}
		default:
			t.Fatalf("unexpected status %d under overload: %s", r.code, r.body)
		}
	}

	offered := s.adm.offered.Value()
	admitted := s.adm.admitted.Value()
	rejected := s.adm.rejected.Value()
	if offered != workers*perWorker {
		t.Fatalf("offered %d, want %d", offered, workers*perWorker)
	}
	if offered != admitted+rejected {
		t.Fatalf("conservation broken: offered %d != admitted %d + rejected %d", offered, admitted, rejected)
	}
	if int64(ok2xx) != admitted || int64(shed) != rejected {
		t.Fatalf("HTTP outcomes (%d ok, %d shed) disagree with counters (admitted %d, rejected %d)",
			ok2xx, shed, admitted, rejected)
	}
	if in, wait := s.adm.inFlight.Value(), s.adm.waitingG.Value(); in != 0 || wait != 0 {
		t.Fatalf("gauges in_flight=%g waiting=%g after drain, want 0/0", in, wait)
	}
	t.Logf("hammer: %d admitted, %d shed", ok2xx, shed)
}

// TestAdmissionShedsThroughHTTP forces a deterministic shed through the
// full HTTP stack: with the single slot held and the wait queue
// saturated, a POST must come back 429 + Retry-After + overloaded
// envelope, and releasing the slot restores 200s.
func TestAdmissionShedsThroughHTTP(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 10, Capacity: 3,
		Speedup: 50, Seed: 1, MaxInFlight: 1, AdmissionQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.8,
	}

	// Occupy the slot and fill the wait quota so the next offer must shed.
	s.adm.slots <- struct{}{}
	s.adm.waiting.Add(s.adm.maxWait)

	rec, out := do(t, h, http.MethodPost, "/v1/requests", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("POST under saturated admission = %d, want 429: %s", rec.Code, rec.Body)
	}
	if string(out["code"]) != `"overloaded"` || len(out["error"]) == 0 {
		t.Fatalf("shed envelope: %s", rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	// GETs bypass the gate even while saturated.
	if rec, _ := do(t, h, http.MethodGet, "/v1/requests?id=1", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET through saturated gate = %d, want 404 (not 429)", rec.Code)
	}

	s.adm.waiting.Add(-s.adm.maxWait)
	<-s.adm.slots
	if rec, _ := do(t, h, http.MethodPost, "/v1/requests", body); rec.Code != http.StatusOK {
		t.Fatalf("POST after release = %d, want 200: %s", rec.Code, rec.Body)
	}
}

// TestServerRejectEnvelopes sweeps every reject path the server owns and
// pins the uniform {"error","code"} envelope plus the per-path headers:
// admission 429 (Retry-After), queue-full 429 (Retry-After), WAL-failure
// 503, shutdown 503, 405 (Allow), 404, and 400.
func TestServerRejectEnvelopes(t *testing.T) {
	body := func(s *Server) map[string]interface{} {
		return map[string]interface{}{
			"pickup":  cityPoint(s, 0.3, 0.3),
			"dropoff": cityPoint(s, 0.7, 0.7),
			"rho":     1.8,
		}
	}
	cases := []struct {
		name        string
		build       func(t *testing.T) *Server
		prep        func(t *testing.T, s *Server, h http.Handler)
		method      string
		path        string
		reqBody     func(s *Server) map[string]interface{}
		wantStatus  int
		wantCode    string
		wantHeaders map[string]string
	}{
		{
			name: "admission overloaded",
			build: func(t *testing.T) *Server {
				s, err := New(Config{CityRows: 10, CityCols: 10, InitialTaxis: 4, Capacity: 3,
					Speedup: 50, Seed: 1, MaxInFlight: 1, AdmissionQueue: 1})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			prep: func(t *testing.T, s *Server, h http.Handler) {
				s.adm.slots <- struct{}{}
				s.adm.waiting.Add(s.adm.maxWait)
			},
			method: http.MethodPost, path: "/v1/requests", reqBody: body,
			wantStatus:  http.StatusTooManyRequests,
			wantCode:    codeOverloaded,
			wantHeaders: map[string]string{"Retry-After": "1"},
		},
		{
			name: "queue full",
			build: func(t *testing.T) *Server {
				s, err := New(Config{CityRows: 10, CityCols: 10, InitialTaxis: 0, Capacity: 3,
					Speedup: 50, Seed: 1, QueueDepth: 1, RetryEveryTicks: 10})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			prep: func(t *testing.T, s *Server, h http.Handler) {
				// No fleet: the first request parks and fills the queue.
				if rec := postRequests(h, body(s)); rec.Code != http.StatusOK {
					t.Fatalf("queue filler: %d %s", rec.Code, rec.Body)
				}
			},
			method: http.MethodPost, path: "/v1/requests", reqBody: body,
			wantStatus:  http.StatusTooManyRequests,
			wantCode:    codeQueueFull,
			wantHeaders: map[string]string{"Retry-After": "2"},
		},
		{
			name: "wal failed",
			build: func(t *testing.T) *Server {
				s, err := New(Config{CityRows: 10, CityCols: 10, InitialTaxis: 4, Capacity: 3,
					Speedup: 50, Seed: 1, ManualClock: true,
					Durability: wal.Options{Dir: t.TempDir(), SyncEvery: 1, SnapshotEveryTicks: 3}})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			prep: func(t *testing.T, s *Server, h http.Handler) {
				// Kill the WAL out from under the server; the next append
				// latches the sticky error and answers with it.
				s.mu.Lock()
				_ = s.wlog.Close()
				s.mu.Unlock()
			},
			method: http.MethodPost, path: "/v1/requests", reqBody: body,
			wantStatus: http.StatusServiceUnavailable,
			wantCode:   codeWALFailed,
		},
		{
			name:  "shutdown",
			build: newTestServer,
			prep: func(t *testing.T, s *Server, h http.Handler) {
				s.Stop()
			},
			method: http.MethodPost, path: "/v1/requests", reqBody: body,
			wantStatus: http.StatusServiceUnavailable,
			wantCode:   codeShutdown,
		},
		{
			name:   "method not allowed",
			build:  newTestServer,
			method: http.MethodDelete, path: "/v1/stats",
			wantStatus:  http.StatusMethodNotAllowed,
			wantCode:    codeMethodNotAllowed,
			wantHeaders: map[string]string{"Allow": "GET"},
		},
		{
			name:   "not found",
			build:  newTestServer,
			method: http.MethodGet, path: "/v1/requests?id=999999",
			wantStatus: http.StatusNotFound,
			wantCode:   codeNotFound,
		},
		{
			name:   "invalid request",
			build:  newTestServer,
			method: http.MethodPost, path: "/v1/requests",
			reqBody: func(s *Server) map[string]interface{} {
				return map[string]interface{}{"pickup": cityPoint(s, 0.3, 0.3),
					"dropoff": cityPoint(s, 0.7, 0.7), "rho": 0.5}
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   codeInvalidRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(t)
			h := s.Handler()
			if tc.prep != nil {
				tc.prep(t, s, h)
			}
			var reqBody interface{}
			if tc.reqBody != nil {
				reqBody = tc.reqBody(s)
			}
			rec, out := do(t, h, tc.method, tc.path, reqBody)
			if rec.Code != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d: %s", tc.method, tc.path, rec.Code, tc.wantStatus, rec.Body)
			}
			if got := string(out["code"]); got != `"`+tc.wantCode+`"` {
				t.Fatalf("envelope code %s, want %q: %s", got, tc.wantCode, rec.Body)
			}
			if len(out["error"]) <= 2 {
				t.Fatalf("envelope has no error message: %s", rec.Body)
			}
			for k, want := range tc.wantHeaders {
				if got := rec.Header().Get(k); got != want {
					t.Fatalf("header %s = %q, want %q", k, got, want)
				}
			}
		})
	}
}

// TestServerSLOEndpoint drives a few requests through the instrumented
// routes and checks GET /v1/slo reports per-route quantiles in
// non-decreasing order plus a conserving admission snapshot, and that
// /v1/stats now carries the city bounds the load generator samples from.
func TestServerSLOEndpoint(t *testing.T) {
	s, err := New(Config{CityRows: 14, CityCols: 14, InitialTaxis: 10, Capacity: 3,
		Speedup: 50, Seed: 1, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := map[string]interface{}{
		"pickup":  cityPoint(s, 0.3, 0.3),
		"dropoff": cityPoint(s, 0.7, 0.7),
		"rho":     1.8,
	}
	const n = 5
	for i := 0; i < n; i++ {
		if rec := postRequests(h, body); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	rec, _ := do(t, h, http.MethodGet, "/v1/slo", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/slo = %d: %s", rec.Code, rec.Body)
	}
	var slo struct {
		Routes    map[string]sloRouteJSON `json:"routes"`
		Admission sloAdmissionJSON        `json:"admission"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slo); err != nil {
		t.Fatal(err)
	}
	rt, ok := slo.Routes["requests"]
	if !ok {
		t.Fatalf("no latency summary for route \"requests\": %s", rec.Body)
	}
	if rt.Count != n {
		t.Fatalf("route count %d, want %d", rt.Count, n)
	}
	if !(rt.P50Seconds <= rt.P95Seconds && rt.P95Seconds <= rt.P99Seconds) {
		t.Fatalf("quantiles not monotone: p50 %g p95 %g p99 %g", rt.P50Seconds, rt.P95Seconds, rt.P99Seconds)
	}
	if rt.P99Seconds <= 0 {
		t.Fatalf("p99 %g, want positive", rt.P99Seconds)
	}
	if !slo.Admission.Enabled || slo.Admission.MaxInFlight != 4 {
		t.Fatalf("admission snapshot: %+v", slo.Admission)
	}
	if slo.Admission.Offered != slo.Admission.Admitted+slo.Admission.Rejected {
		t.Fatalf("admission counters do not conserve: %+v", slo.Admission)
	}

	// Bounds on /v1/stats (the load generator's sampling box).
	rec, out := do(t, h, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", rec.Code)
	}
	var bounds struct {
		Min pointJSON `json:"min"`
		Max pointJSON `json:"max"`
	}
	if err := json.Unmarshal(out["bounds"], &bounds); err != nil {
		t.Fatalf("stats bounds: %v (%s)", err, rec.Body)
	}
	if !(bounds.Min.Lat < bounds.Max.Lat && bounds.Min.Lng < bounds.Max.Lng) {
		t.Fatalf("degenerate bounds: %+v", bounds)
	}
}
