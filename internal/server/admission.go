// Admission control: a bounded in-flight budget with a bounded wait
// queue in front of the mutating routes, plus the per-route HTTP latency
// histograms and the GET /v1/slo snapshot that reports both.
//
// This layer is distinct from the pending-request queue's backpressure
// 429 (codeQueueFull): that one is a *dispatch* outcome — the engine ran
// and the parked-request queue had no room — while admission sheds load
// *before* the engine melts: when MaxInFlight requests already hold the
// dispatch lock's doorstep and AdmissionQueue more are waiting, the
// request is refused up front with 429 + Retry-After and the engine
// never sees it. Read-only routes (stats, metrics, queue, shards,
// durability, slo) are never gated, so the server stays observable
// under overload.
package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// admission is the bounded in-flight budget. Conservation invariant:
// offered == admitted + rejected once every in-flight request finished.
type admission struct {
	slots   chan struct{}
	maxWait int64
	waiting atomic.Int64

	offered  *obs.Counter
	admitted *obs.Counter
	rejected *obs.Counter
	inFlight *obs.Gauge
	waitingG *obs.Gauge
}

// newAdmission sizes the budget: maxInFlight concurrently admitted
// requests, maxWait more allowed to block for a slot before the 429.
func newAdmission(reg *obs.Registry, maxInFlight, maxWait int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxWait:  int64(maxWait),
		offered:  reg.Counter("mtshare_server_admission_offered_total"),
		admitted: reg.Counter("mtshare_server_admission_admitted_total"),
		rejected: reg.Counter("mtshare_server_admission_rejected_total"),
		inFlight: reg.Gauge("mtshare_server_admission_in_flight"),
		waitingG: reg.Gauge("mtshare_server_admission_waiting"),
	}
}

// acquire claims an in-flight slot, waiting in the bounded accept queue
// if the budget is full. false means the queue was full too — shed.
func (a *admission) acquire() bool {
	a.offered.Inc()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		a.inFlight.Add(1)
		return true
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		a.rejected.Inc()
		return false
	}
	a.waitingG.Add(1)
	a.slots <- struct{}{}
	a.waiting.Add(-1)
	a.waitingG.Add(-1)
	a.admitted.Inc()
	a.inFlight.Add(1)
	return true
}

func (a *admission) release() {
	<-a.slots
	a.inFlight.Add(-1)
}

// admissionRetryAfterSeconds is the shed hint: admission drains as fast
// as handlers finish (milliseconds), so HTTP delta-seconds' floor of one
// second is already generous.
const admissionRetryAfterSeconds = 1

// admit gates the mutating methods of h behind the admission budget.
// Reads pass through untouched — the server must stay observable while
// shedding. A nil admission (Config.MaxInFlight == 0) disables gating.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.adm == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			h(w, r)
			return
		}
		if !s.adm.acquire() {
			w.Header().Set("Retry-After", strconv.Itoa(admissionRetryAfterSeconds))
			writeError(w, http.StatusTooManyRequests, codeOverloaded,
				"admission budget exhausted; server is shedding load")
			return
		}
		defer s.adm.release()
		h(w, r)
	}
}

// instrument records the route's client-visible handling latency into
// mtshare_server_http_seconds{route="<name>"} — admission wait included
// when the instrumented handler wraps an admitted route, which is the
// latency a client actually observes.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Labeled("route="+strconv.Quote(name)).HistogramWith(
		"mtshare_server_http_seconds", obs.DefLatencyBuckets())
	s.httpHists[name] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.ObserveSince(t0)
	}
}

// sloRouteJSON is one route's latency summary on the /v1/slo surface.
type sloRouteJSON struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MeanSecs   float64 `json:"mean_seconds"`
}

// sloAdmissionJSON is the admission budget's live state.
type sloAdmissionJSON struct {
	Enabled           bool  `json:"enabled"`
	MaxInFlight       int   `json:"max_in_flight,omitempty"`
	QueueLimit        int   `json:"queue_limit,omitempty"`
	Offered           int64 `json:"offered"`
	Admitted          int64 `json:"admitted"`
	Rejected          int64 `json:"rejected"`
	InFlight          int64 `json:"in_flight"`
	Waiting           int64 `json:"waiting"`
	RetryAfterSeconds int   `json:"retry_after_seconds,omitempty"`
}

// handleSLO reports the server-side latency quantiles per route plus the
// admission counters — the server half of the load generator's SLO
// report. Lock-free: histograms and counters are atomic, and the route
// must answer under the very overload it is reporting on.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	routes := make(map[string]sloRouteJSON, len(s.httpHists))
	for name, h := range s.httpHists {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		routes[name] = sloRouteJSON{
			Count:      snap.Count,
			P50Seconds: snap.Quantile(0.50),
			P95Seconds: snap.Quantile(0.95),
			P99Seconds: snap.Quantile(0.99),
			MeanSecs:   snap.Mean(),
		}
	}
	adm := sloAdmissionJSON{}
	if s.adm != nil {
		adm = sloAdmissionJSON{
			Enabled:           true,
			MaxInFlight:       cap(s.adm.slots),
			QueueLimit:        int(s.adm.maxWait),
			Offered:           s.adm.offered.Value(),
			Admitted:          s.adm.admitted.Value(),
			Rejected:          s.adm.rejected.Value(),
			InFlight:          int64(s.adm.inFlight.Value()),
			Waiting:           int64(s.adm.waitingG.Value()),
			RetryAfterSeconds: admissionRetryAfterSeconds,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"routes":    routes,
		"admission": adm,
	})
}
