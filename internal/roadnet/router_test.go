package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestRouterCostMatchesDijkstra(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 64)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		u := VertexID(rng.Intn(g.NumVertices()))
		v := VertexID(rng.Intn(g.NumVertices()))
		want, _, ok := g.ShortestPath(u, v)
		got := r.Cost(u, v)
		if !ok {
			if !math.IsInf(got, 1) {
				t.Fatalf("Cost(%d,%d) = %v for unreachable pair", u, v, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Cost(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestRouterPathValid(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 16)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		u := VertexID(rng.Intn(g.NumVertices()))
		v := VertexID(rng.Intn(g.NumVertices()))
		p := r.Path(u, v)
		if p == nil {
			t.Fatalf("nil path %d->%d in connected city", u, v)
		}
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("path endpoints %v for %d->%d", p, u, v)
		}
		c, err := g.PathCost(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-r.Cost(u, v)) > 1e-9 {
			t.Fatalf("path cost %v != Cost %v", c, r.Cost(u, v))
		}
	}
}

func TestRouterSelfQueries(t *testing.T) {
	g := gridGraph(3)
	r := NewRouter(g, 4)
	if c := r.Cost(5, 5); c != 0 {
		t.Fatalf("self cost = %v", c)
	}
	if p := r.Path(5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("self path = %v", p)
	}
	st := r.Stats()
	if st.Misses != 0 {
		t.Fatalf("self queries should not compute trees; misses=%d", st.Misses)
	}
}

func TestRouterLRUEviction(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 2)
	r.Cost(0, 1)
	r.Cost(1, 2)
	r.Cost(2, 3) // evicts tree for source 0
	st := r.Stats()
	if st.CachedTrees != 2 {
		t.Fatalf("cached trees = %d, want 2", st.CachedTrees)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	r.Cost(0, 2) // miss again
	if st := r.Stats(); st.Misses != 4 {
		t.Fatalf("misses after re-query = %d, want 4", st.Misses)
	}
}

func TestRouterHitAccounting(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 8)
	for i := 0; i < 10; i++ {
		r.Cost(0, VertexID(i%g.NumVertices()))
	}
	st := r.Stats()
	// Source 0 tree computed once; self query (0,0) bypasses the cache.
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits < 8 {
		t.Fatalf("hits = %d, want >= 8", st.Hits)
	}
	if st.MemoryBytes <= 0 {
		t.Fatal("MemoryBytes not reported")
	}
}

func TestRouterWarm(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 8)
	r.Warm([]VertexID{0, 1, 2})
	st := r.Stats()
	if st.CachedTrees != 3 || st.Misses != 3 {
		t.Fatalf("after Warm: trees=%d misses=%d", st.CachedTrees, st.Misses)
	}
	r.Cost(0, 5)
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("warm tree not hit: hits=%d", st.Hits)
	}
}

func TestRouterConcurrentUse(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 8)
	n := g.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := VertexID(rng.Intn(n))
				v := VertexID(rng.Intn(n))
				c := r.Cost(u, v)
				if c < 0 {
					t.Errorf("negative cost %v", c)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestRouterReachable(t *testing.T) {
	g := lineGraph(3)
	r := NewRouter(g, 4)
	if !r.Reachable(0, 2) {
		t.Fatal("0->2 should be reachable")
	}
	if r.Reachable(2, 0) {
		t.Fatal("2->0 should not be reachable")
	}
}

func BenchmarkRouterCostHot(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	r := NewRouter(g, 128)
	n := g.NumVertices()
	// Realistic skew: a handful of hot sources (landmarks, hotspots).
	sources := []VertexID{0, VertexID(n / 3), VertexID(n / 2), VertexID(2 * n / 3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Cost(sources[i%len(sources)], VertexID((i*7919)%n))
	}
}
