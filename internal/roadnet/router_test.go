package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestRouterCostMatchesDijkstra(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 64)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		u := VertexID(rng.Intn(g.NumVertices()))
		v := VertexID(rng.Intn(g.NumVertices()))
		want, _, ok := g.ShortestPath(u, v)
		got := r.Cost(u, v)
		if !ok {
			if !math.IsInf(got, 1) {
				t.Fatalf("Cost(%d,%d) = %v for unreachable pair", u, v, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Cost(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestRouterPathValid(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 16)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		u := VertexID(rng.Intn(g.NumVertices()))
		v := VertexID(rng.Intn(g.NumVertices()))
		p := r.Path(u, v)
		if p == nil {
			t.Fatalf("nil path %d->%d in connected city", u, v)
		}
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("path endpoints %v for %d->%d", p, u, v)
		}
		c, err := g.PathCost(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-r.Cost(u, v)) > 1e-9 {
			t.Fatalf("path cost %v != Cost %v", c, r.Cost(u, v))
		}
	}
}

func TestRouterSelfQueries(t *testing.T) {
	g := gridGraph(3)
	r := NewRouter(g, 4)
	if c := r.Cost(5, 5); c != 0 {
		t.Fatalf("self cost = %v", c)
	}
	if p := r.Path(5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("self path = %v", p)
	}
	st := r.Stats()
	if st.Misses != 0 {
		t.Fatalf("self queries should not compute trees; misses=%d", st.Misses)
	}
}

func TestRouterLRUEviction(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 2)
	// Each source's first query is a cold point query; the second builds
	// and caches the tree.
	for _, src := range []VertexID{0, 1, 2} {
		r.Cost(src, 3)
		r.Cost(src, 5)
	}
	st := r.Stats()
	if st.CachedTrees != 2 { // tree for source 0 evicted
		t.Fatalf("cached trees = %d, want 2", st.CachedTrees)
	}
	if st.Cold != 3 {
		t.Fatalf("cold = %d, want 3", st.Cold)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	r.Cost(0, 2) // seen before: rebuilds the evicted tree, no cold query
	if st := r.Stats(); st.Misses != 4 || st.Cold != 3 {
		t.Fatalf("after re-query: misses=%d cold=%d, want 4/3", st.Misses, st.Cold)
	}
}

func TestRouterHitAccounting(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 8)
	for i := 0; i < 10; i++ {
		r.Cost(0, VertexID(i%g.NumVertices()))
	}
	st := r.Stats()
	// Source 0: one cold point query, then one tree build; the remaining
	// queries (minus the cache-bypassing self query) hit the cached tree.
	if st.Cold != 1 {
		t.Fatalf("cold = %d, want 1", st.Cold)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits < 7 {
		t.Fatalf("hits = %d, want >= 7", st.Hits)
	}
	if st.MemoryBytes <= 0 {
		t.Fatal("MemoryBytes not reported")
	}
	if st.BidirQueries != 1 || st.CHQueries != 0 {
		t.Fatalf("cold query backend: bidir=%d ch=%d, want 1/0 without a CH", st.BidirQueries, st.CHQueries)
	}
}

func TestRouterWarm(t *testing.T) {
	g := gridGraph(4)
	r := NewRouter(g, 8)
	r.Warm([]VertexID{0, 1, 2})
	st := r.Stats()
	if st.CachedTrees != 3 || st.Misses != 3 {
		t.Fatalf("after Warm: trees=%d misses=%d", st.CachedTrees, st.Misses)
	}
	r.Cost(0, 5)
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("warm tree not hit: hits=%d", st.Hits)
	}
}

func TestRouterConcurrentUse(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 8)
	n := g.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := VertexID(rng.Intn(n))
				v := VertexID(rng.Intn(n))
				c := r.Cost(u, v)
				if c < 0 {
					t.Errorf("negative cost %v", c)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestRouterReachable(t *testing.T) {
	g := lineGraph(3)
	r := NewRouter(g, 4)
	if !r.Reachable(0, 2) {
		t.Fatal("0->2 should be reachable")
	}
	if r.Reachable(2, 0) {
		t.Fatal("2->0 should not be reachable")
	}
}

// TestRouterColdPathBidirExact pins the CH-disabled cold path: a source's
// first query runs BidirectionalShortestPath, and the returned cost must
// be bit-identical to the Dijkstra tree answer (the bidirectional search's
// internal two-sided sum is discarded; the cost is re-folded from the
// path's original edge costs).
func TestRouterColdPathBidirExact(t *testing.T) {
	p := DefaultCityParams(14, 14)
	p.Seed = 21
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 64)
	rng := rand.New(rand.NewSource(21))
	n := g.NumVertices()
	for i := 0; i < 60; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		got := r.Cost(u, v) // may be cold (bidir) or cached, both must agree
		want, _, ok := g.ShortestPath(u, v)
		if !ok {
			if !math.IsInf(got, 1) {
				t.Fatalf("Cost(%d,%d) = %v for unreachable pair", u, v, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("cold Cost(%d,%d) = %v (bits %x), Dijkstra %v (bits %x)",
				u, v, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if st := r.Stats(); st.BidirQueries == 0 {
		t.Fatal("no bidirectional cold queries ran — the cold path is not exercised")
	}
}

// TestRouterColdPathCHExact is the CH-enabled twin: cold queries answered
// by the hierarchy must also be bit-identical to Dijkstra, and the cold
// paths must be valid edge walks.
func TestRouterColdPathCHExact(t *testing.T) {
	p := DefaultCityParams(14, 14)
	p.Seed = 22
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 64).AttachCH(BuildCH(g, 2))
	rng := rand.New(rand.NewSource(22))
	n := g.NumVertices()
	for i := 0; i < 60; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		path := r.Path(u, v)
		want, _, ok := g.ShortestPath(u, v)
		if !ok {
			if path != nil {
				t.Fatalf("Path(%d,%d) = %v for unreachable pair", u, v, path)
			}
			continue
		}
		pc, err := g.PathCost(path)
		if err != nil {
			t.Fatalf("Path(%d,%d) is not an edge walk: %v", u, v, err)
		}
		if pc != want {
			t.Fatalf("cold Path cost (%d,%d) = %v, Dijkstra %v", u, v, pc, want)
		}
	}
	st := r.Stats()
	if st.CHQueries == 0 {
		t.Fatal("no CH cold queries ran — the hierarchy backend is not exercised")
	}
	if st.BidirQueries != 0 {
		t.Fatalf("bidir ran %d times with a CH attached", st.BidirQueries)
	}
}

func BenchmarkRouterCostHot(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	r := NewRouter(g, 128)
	n := g.NumVertices()
	// Realistic skew: a handful of hot sources (landmarks, hotspots).
	sources := []VertexID{0, VertexID(n / 3), VertexID(n / 2), VertexID(2 * n / 3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Cost(sources[i%len(sources)], VertexID((i*7919)%n))
	}
}
