package roadnet

import (
	"container/list"
	"math"
	"sync"
)

// Router answers shortest-path cost and path queries over a fixed graph,
// caching full single-source Dijkstra trees in an LRU keyed by source
// vertex. The paper assumes O(1) shortest-path queries backed by a
// precomputed all-pairs table cached in memory (§V-A4); for our graphs an
// all-pairs table would be quadratic, so the Router amortises to the same
// effect: request origins, taxi positions, and landmarks repeat heavily, so
// the hit rate in the evaluation workloads exceeds 95%.
//
// Router is safe for concurrent use.
type Router struct {
	g   *Graph
	cap int

	mu    sync.Mutex
	lru   *list.List // of *SSSPResult, front = most recent
	bySrc map[VertexID]*list.Element

	hits   int64
	misses int64
}

// NewRouter creates a Router over g caching up to capacity source trees.
// Each tree costs ~12 bytes per graph vertex. capacity < 1 is treated as 1.
func NewRouter(g *Graph, capacity int) *Router {
	if capacity < 1 {
		capacity = 1
	}
	return &Router{
		g:     g,
		cap:   capacity,
		lru:   list.New(),
		bySrc: make(map[VertexID]*list.Element, capacity),
	}
}

// Graph returns the underlying graph.
func (r *Router) Graph() *Graph { return r.g }

// tree returns the (possibly cached) SSSP tree rooted at src.
func (r *Router) tree(src VertexID) *SSSPResult {
	r.mu.Lock()
	if el, ok := r.bySrc[src]; ok {
		r.lru.MoveToFront(el)
		res := el.Value.(*SSSPResult)
		r.hits++
		r.mu.Unlock()
		return res
	}
	r.misses++
	r.mu.Unlock()

	// Compute outside the lock: concurrent misses for the same source may
	// duplicate work but never corrupt state, and the duplicate insert is
	// handled below.
	res := r.g.SSSP(src)

	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.bySrc[src]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*SSSPResult)
	}
	el := r.lru.PushFront(res)
	r.bySrc[src] = el
	for r.lru.Len() > r.cap {
		back := r.lru.Back()
		r.lru.Remove(back)
		delete(r.bySrc, back.Value.(*SSSPResult).Source)
	}
	return res
}

// Cost returns the shortest-path cost in meters from u to v, or +Inf when v
// is unreachable from u.
func (r *Router) Cost(u, v VertexID) float64 {
	if u == v {
		return 0
	}
	return r.tree(u).Dist[v]
}

// Path returns the shortest path from u to v inclusive of both endpoints,
// or nil when unreachable.
func (r *Router) Path(u, v VertexID) []VertexID {
	if u == v {
		return []VertexID{u}
	}
	return r.tree(u).PathTo(v)
}

// Reachable reports whether v is reachable from u.
func (r *Router) Reachable(u, v VertexID) bool {
	return !math.IsInf(r.Cost(u, v), 1)
}

// RouterStats is a snapshot of cache behaviour.
type RouterStats struct {
	Hits        int64
	Misses      int64
	CachedTrees int
	MemoryBytes int64
}

// Stats returns a consistent snapshot of the router's cache statistics.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var mem int64
	for el := r.lru.Front(); el != nil; el = el.Next() {
		mem += int64(el.Value.(*SSSPResult).MemoryBytes())
	}
	return RouterStats{
		Hits:        r.hits,
		Misses:      r.misses,
		CachedTrees: r.lru.Len(),
		MemoryBytes: mem,
	}
}

// Warm precomputes and caches trees for the given sources (e.g. all
// landmarks), bounded by the router capacity.
func (r *Router) Warm(sources []VertexID) {
	for _, s := range sources {
		r.tree(s)
	}
}
