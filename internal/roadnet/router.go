package roadnet

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Router answers shortest-path cost and path queries over a fixed graph,
// caching full single-source Dijkstra trees in an LRU keyed by source
// vertex. The paper assumes O(1) shortest-path queries backed by a
// precomputed all-pairs table cached in memory (§V-A4); for our graphs an
// all-pairs table would be quadratic, so the Router amortises to the same
// effect: request origins, taxi positions, and landmarks repeat heavily, so
// the hit rate in the evaluation workloads exceeds 95%.
//
// The cache is hash-sharded so concurrent dispatch workers do not
// serialise on one mutex, and each shard runs per-source singleflight:
// concurrent misses for the same source wait for one Dijkstra computation
// instead of duplicating it.
//
// A source's first-ever query is served by a single exact point-to-point
// search (the attached CH when present, bidirectional Dijkstra otherwise)
// instead of a full SSSP tree: one-shot sources — cold taxi positions,
// never-repeated pickup points — cost one small search instead of an
// O(V log V) tree build. The second query for a source builds and caches
// the tree as before, so hot sources still amortise to O(1) lookups. All
// three backends return bit-identical costs (see CH's exactness contract),
// so the admission policy is invisible to dispatch outcomes.
//
// Router is safe for concurrent use.
type Router struct {
	g      *Graph
	ch     *CH // nil until AttachCH; set before concurrent use
	shards []routerShard
	met    *routerMetrics // nil until InstrumentWith

	chQueries    atomic.Int64
	bidirQueries atomic.Int64
}

// routerSeenCap bounds each shard's seen-source set for the cold-query
// admission policy; on overflow the set resets, which only means a
// returning source may get one extra cold point query.
const routerSeenCap = 4096

// routerMetrics mirrors the cache counters into an obs.Registry under the
// mtshare_roadnet_* namespace, so the cache shows up on the one metrics
// surface next to the dispatch-stage histograms. The per-shard atomics
// stay the source of truth for Stats().
type routerMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	deduped     *obs.Counter
	cold        *obs.Counter
	chQueries   *obs.Counter
	bidirQuery  *obs.Counter
	ssspSeconds *obs.Histogram
	chSettled   *obs.Histogram
	cachedTrees *obs.Gauge
	memoryBytes *obs.Gauge
	chBuildSecs *obs.Gauge
	chShortcuts *obs.Gauge
	chMemory    *obs.Gauge
}

// InstrumentWith registers the router's cache instruments in reg
// (mtshare_roadnet_cache_hits_total, ..._cache_misses_total,
// ..._singleflight_deduped_total, ..._cold_queries_total,
// ..._ch_queries_total, ..._bidir_queries_total, ..._sssp_seconds,
// ..._ch_settled_vertices, ..._cached_trees, ..._cache_memory_bytes, and
// the mtshare_roadnet_ch_{build_seconds,shortcuts,memory_bytes} gauges)
// and returns the router. Call it once, before the router is used
// concurrently.
func (r *Router) InstrumentWith(reg *obs.Registry) *Router {
	if reg == nil {
		return r
	}
	r.met = &routerMetrics{
		hits:        reg.Counter("mtshare_roadnet_cache_hits_total"),
		misses:      reg.Counter("mtshare_roadnet_cache_misses_total"),
		deduped:     reg.Counter("mtshare_roadnet_singleflight_deduped_total"),
		cold:        reg.Counter("mtshare_roadnet_cold_queries_total"),
		chQueries:   reg.Counter("mtshare_roadnet_ch_queries_total"),
		bidirQuery:  reg.Counter("mtshare_roadnet_bidir_queries_total"),
		ssspSeconds: reg.Histogram("mtshare_roadnet_sssp_seconds"),
		// Vertex counts, not latencies: the default bucket ladder tops
		// out at 10 and would funnel every observation into +Inf.
		chSettled: reg.HistogramWith("mtshare_roadnet_ch_settled_vertices",
			[]float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}),
		cachedTrees: reg.Gauge("mtshare_roadnet_cached_trees"),
		memoryBytes: reg.Gauge("mtshare_roadnet_cache_memory_bytes"),
		chBuildSecs: reg.Gauge("mtshare_roadnet_ch_build_seconds"),
		chShortcuts: reg.Gauge("mtshare_roadnet_ch_shortcuts"),
		chMemory:    reg.Gauge("mtshare_roadnet_ch_memory_bytes"),
	}
	r.publishCHGauges()
	return r
}

// AttachCH points the router's cold-query path at a prebuilt contraction
// hierarchy (which must be over the router's graph) and publishes the
// mtshare_roadnet_ch_* gauges. Call it once, before the router is used
// concurrently; a nil ch detaches.
func (r *Router) AttachCH(ch *CH) *Router {
	if ch != nil && ch.Graph() != r.g {
		panic("roadnet: AttachCH: hierarchy built over a different graph")
	}
	r.ch = ch
	r.publishCHGauges()
	return r
}

// CH returns the attached hierarchy, or nil.
func (r *Router) CH() *CH { return r.ch }

func (r *Router) publishCHGauges() {
	if r.met == nil {
		return
	}
	if r.ch == nil {
		r.met.chBuildSecs.Set(0)
		r.met.chShortcuts.Set(0)
		r.met.chMemory.Set(0)
		return
	}
	st := r.ch.Stats()
	r.met.chBuildSecs.Set(st.BuildSeconds)
	r.met.chShortcuts.Set(float64(st.Shortcuts))
	r.met.chMemory.Set(float64(st.MemoryBytes))
}

// routerShard is one hash shard of the tree cache: an LRU of SSSP trees
// plus the singleflight table for in-progress computations.
type routerShard struct {
	cap int

	mu          sync.Mutex
	lru         *list.List // of *SSSPResult, front = most recent
	bySrc       map[VertexID]*list.Element
	inflight    map[VertexID]*ssspCall
	seen        map[VertexID]struct{} // sources queried at least once
	memoryBytes int64                 // running total of cached tree footprints

	hits    atomic.Int64
	misses  atomic.Int64
	deduped atomic.Int64
	cold    atomic.Int64
}

// ssspCall is one in-progress SSSP computation other goroutines can wait
// on.
type ssspCall struct {
	done chan struct{}
	res  *SSSPResult
}

// routerShardCount picks the shard count for a capacity: small caches stay
// single-shard (exact legacy LRU semantics); large caches spread over up
// to 16 shards so each holds a useful number of trees.
func routerShardCount(capacity int) int {
	n := 1
	for n < 16 && capacity/(n*2) >= 8 {
		n *= 2
	}
	return n
}

// PathRouter is the query surface consumers of shortest paths depend
// on. *Router is the canonical implementation; wrappers (the replay
// harness's fault-injection layer) interpose on it to perturb answers
// deterministically without touching the cache underneath.
type PathRouter interface {
	// Cost returns the shortest-path cost in meters from u to v, or
	// +Inf when v is unreachable from u.
	Cost(u, v VertexID) float64
	// Path returns the shortest path from u to v inclusive of both
	// endpoints, or nil when unreachable.
	Path(u, v VertexID) []VertexID
	// Reachable reports whether v is reachable from u.
	Reachable(u, v VertexID) bool
}

var _ PathRouter = (*Router)(nil)

// NewRouter creates a Router over g caching up to capacity source trees.
// Each tree costs ~12 bytes per graph vertex. capacity < 1 is treated as 1.
func NewRouter(g *Graph, capacity int) *Router {
	if capacity < 1 {
		capacity = 1
	}
	n := routerShardCount(capacity)
	shards := make([]routerShard, n)
	for i := range shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		if c < 1 {
			c = 1
		}
		shards[i] = routerShard{
			cap:      c,
			lru:      list.New(),
			bySrc:    make(map[VertexID]*list.Element, c),
			inflight: make(map[VertexID]*ssspCall),
			seen:     make(map[VertexID]struct{}),
		}
	}
	return &Router{g: g, shards: shards}
}

// Graph returns the underlying graph.
func (r *Router) Graph() *Graph { return r.g }

// shardOf maps a source vertex to its shard (Fibonacci hashing; vertex IDs
// are dense small integers, so plain modulo would alias grid columns).
func (r *Router) shardOf(src VertexID) *routerShard {
	h := uint64(uint32(src)) * 0x9E3779B97F4A7C15
	return &r.shards[h>>32%uint64(len(r.shards))]
}

// markSeen records src in the shard's seen set (caller holds s.mu).
func (s *routerShard) markSeen(src VertexID) {
	if len(s.seen) >= routerSeenCap {
		clear(s.seen)
	}
	s.seen[src] = struct{}{}
}

// admit decides how a query for source src is served: a cached tree when
// one exists, nil with cold=true on the source's first sighting (the
// caller runs one exact point query), or a fresh tree build for a
// returning source.
func (r *Router) admit(src VertexID) (res *SSSPResult, cold bool) {
	s := r.shardOf(src)
	s.mu.Lock()
	if el, ok := s.bySrc[src]; ok {
		s.lru.MoveToFront(el)
		res := el.Value.(*SSSPResult)
		s.hits.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.hits.Inc()
		}
		return res, false
	}
	if _, ok := s.inflight[src]; ok {
		s.mu.Unlock()
		return r.tree(src), false // tree() joins the in-flight computation
	}
	if _, ok := s.seen[src]; !ok {
		s.markSeen(src)
		s.cold.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.cold.Inc()
		}
		return nil, true
	}
	s.mu.Unlock()
	return r.tree(src), false
}

// pointQuery runs one exact point-to-point search for a cold source: the
// attached CH when present, bidirectional Dijkstra otherwise. Both fold
// the found path's original edge costs left to right, so the cost is
// bit-identical to what the SSSP tree would report. Returns +Inf cost and
// a nil path when dst is unreachable.
func (r *Router) pointQuery(src, dst VertexID) (float64, []VertexID) {
	if ch := r.ch; ch != nil {
		r.chQueries.Add(1)
		cost, path, settled, ok := ch.ShortestPath(src, dst)
		if r.met != nil {
			r.met.chQueries.Inc()
			r.met.chSettled.Observe(float64(settled))
		}
		if !ok {
			return math.Inf(1), nil
		}
		return cost, path
	}
	r.bidirQueries.Add(1)
	if r.met != nil {
		r.met.bidirQuery.Inc()
	}
	_, path, ok := r.g.BidirectionalShortestPath(src, dst)
	if !ok {
		return math.Inf(1), nil
	}
	return pathFoldCost(r.g, path), path
}

// tree returns the (possibly cached) SSSP tree rooted at src.
func (r *Router) tree(src VertexID) *SSSPResult {
	s := r.shardOf(src)
	s.mu.Lock()
	if el, ok := s.bySrc[src]; ok {
		s.lru.MoveToFront(el)
		res := el.Value.(*SSSPResult)
		s.hits.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.hits.Inc()
		}
		return res
	}
	if c, ok := s.inflight[src]; ok {
		// Another goroutine is already computing this tree; wait for it
		// instead of duplicating the Dijkstra run.
		s.deduped.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.deduped.Inc()
		}
		<-c.done
		return c.res
	}
	c := &ssspCall{done: make(chan struct{})}
	s.inflight[src] = c
	s.markSeen(src) // Warm()-built sources count as known repeats
	s.misses.Add(1)
	s.mu.Unlock()

	t0 := time.Now()
	c.res = r.g.SSSP(src)
	if r.met != nil {
		r.met.misses.Inc()
		r.met.ssspSeconds.ObserveSince(t0)
	}

	s.mu.Lock()
	delete(s.inflight, src)
	el := s.lru.PushFront(c.res)
	s.bySrc[src] = el
	s.memoryBytes += int64(c.res.MemoryBytes())
	trees, evicted := 1, int64(0)
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		old := back.Value.(*SSSPResult)
		delete(s.bySrc, old.Source)
		s.memoryBytes -= int64(old.MemoryBytes())
		trees--
		evicted += int64(old.MemoryBytes())
	}
	s.mu.Unlock()
	if r.met != nil {
		r.met.cachedTrees.Add(float64(trees))
		r.met.memoryBytes.Add(float64(int64(c.res.MemoryBytes()) - evicted))
	}
	close(c.done)
	return c.res
}

// Cost returns the shortest-path cost in meters from u to v, or +Inf when v
// is unreachable from u.
func (r *Router) Cost(u, v VertexID) float64 {
	if u == v {
		return 0
	}
	res, coldQ := r.admit(u)
	if coldQ {
		cost, _ := r.pointQuery(u, v)
		return cost
	}
	return res.Dist[v]
}

// Path returns the shortest path from u to v inclusive of both endpoints,
// or nil when unreachable.
func (r *Router) Path(u, v VertexID) []VertexID {
	if u == v {
		return []VertexID{u}
	}
	res, coldQ := r.admit(u)
	if coldQ {
		_, path := r.pointQuery(u, v)
		return path
	}
	return res.PathTo(v)
}

// Reachable reports whether v is reachable from u.
func (r *Router) Reachable(u, v VertexID) bool {
	return !math.IsInf(r.Cost(u, v), 1)
}

// RouterShardStats is the per-shard breakdown of cache behaviour.
type RouterShardStats struct {
	Hits        int64
	Misses      int64
	Deduped     int64
	Cold        int64
	CachedTrees int
	MemoryBytes int64
}

// RouterStats is a snapshot of cache behaviour.
type RouterStats struct {
	Hits   int64
	Misses int64
	// SingleflightDeduped counts cache misses that waited on an in-flight
	// computation for the same source instead of running their own.
	SingleflightDeduped int64
	// Cold counts first-sighting sources served by one exact point query
	// instead of a tree build.
	Cold int64
	// CHQueries/BidirQueries split the cold point queries by backend.
	CHQueries    int64
	BidirQueries int64
	CachedTrees  int
	MemoryBytes  int64
	// CHMemoryBytes is the attached hierarchy's arc-array footprint (0
	// without a CH); it is reported separately from the tree-cache
	// MemoryBytes because the hierarchy is immutable and never evicted.
	CHMemoryBytes int64
	// Shards breaks the totals down per cache shard.
	Shards []RouterShardStats
}

// Stats returns a snapshot of the router's cache statistics, aggregated
// from the per-shard counters. Memory is a running counter maintained on
// insert/evict, so a snapshot is O(shards), not O(cached trees).
func (r *Router) Stats() RouterStats {
	st := RouterStats{Shards: make([]RouterShardStats, len(r.shards))}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		ss := RouterShardStats{
			Hits:        s.hits.Load(),
			Misses:      s.misses.Load(),
			Deduped:     s.deduped.Load(),
			Cold:        s.cold.Load(),
			CachedTrees: s.lru.Len(),
			MemoryBytes: s.memoryBytes,
		}
		s.mu.Unlock()
		st.Shards[i] = ss
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.SingleflightDeduped += ss.Deduped
		st.Cold += ss.Cold
		st.CachedTrees += ss.CachedTrees
		st.MemoryBytes += ss.MemoryBytes
	}
	st.CHQueries = r.chQueries.Load()
	st.BidirQueries = r.bidirQueries.Load()
	if r.ch != nil {
		st.CHMemoryBytes = r.ch.MemoryBytes()
	}
	return st
}

// NumShards returns the number of cache shards.
func (r *Router) NumShards() int { return len(r.shards) }

// Warm precomputes and caches trees for the given sources (e.g. all
// landmarks), bounded by the router capacity.
func (r *Router) Warm(sources []VertexID) {
	for _, s := range sources {
		r.tree(s)
	}
}
