package roadnet

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Router answers shortest-path cost and path queries over a fixed graph,
// caching full single-source Dijkstra trees in an LRU keyed by source
// vertex. The paper assumes O(1) shortest-path queries backed by a
// precomputed all-pairs table cached in memory (§V-A4); for our graphs an
// all-pairs table would be quadratic, so the Router amortises to the same
// effect: request origins, taxi positions, and landmarks repeat heavily, so
// the hit rate in the evaluation workloads exceeds 95%.
//
// The cache is hash-sharded so concurrent dispatch workers do not
// serialise on one mutex, and each shard runs per-source singleflight:
// concurrent misses for the same source wait for one Dijkstra computation
// instead of duplicating it.
//
// Router is safe for concurrent use.
type Router struct {
	g      *Graph
	shards []routerShard
	met    *routerMetrics // nil until InstrumentWith
}

// routerMetrics mirrors the cache counters into an obs.Registry under the
// mtshare_roadnet_* namespace, so the cache shows up on the one metrics
// surface next to the dispatch-stage histograms. The per-shard atomics
// stay the source of truth for Stats().
type routerMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	deduped     *obs.Counter
	ssspSeconds *obs.Histogram
	cachedTrees *obs.Gauge
	memoryBytes *obs.Gauge
}

// InstrumentWith registers the router's cache instruments in reg
// (mtshare_roadnet_cache_hits_total, ..._cache_misses_total,
// ..._singleflight_deduped_total, ..._sssp_seconds, ..._cached_trees,
// ..._cache_memory_bytes) and returns the router. Call it once, before
// the router is used concurrently.
func (r *Router) InstrumentWith(reg *obs.Registry) *Router {
	if reg == nil {
		return r
	}
	r.met = &routerMetrics{
		hits:        reg.Counter("mtshare_roadnet_cache_hits_total"),
		misses:      reg.Counter("mtshare_roadnet_cache_misses_total"),
		deduped:     reg.Counter("mtshare_roadnet_singleflight_deduped_total"),
		ssspSeconds: reg.Histogram("mtshare_roadnet_sssp_seconds"),
		cachedTrees: reg.Gauge("mtshare_roadnet_cached_trees"),
		memoryBytes: reg.Gauge("mtshare_roadnet_cache_memory_bytes"),
	}
	return r
}

// routerShard is one hash shard of the tree cache: an LRU of SSSP trees
// plus the singleflight table for in-progress computations.
type routerShard struct {
	cap int

	mu          sync.Mutex
	lru         *list.List // of *SSSPResult, front = most recent
	bySrc       map[VertexID]*list.Element
	inflight    map[VertexID]*ssspCall
	memoryBytes int64 // running total of cached tree footprints

	hits    atomic.Int64
	misses  atomic.Int64
	deduped atomic.Int64
}

// ssspCall is one in-progress SSSP computation other goroutines can wait
// on.
type ssspCall struct {
	done chan struct{}
	res  *SSSPResult
}

// routerShardCount picks the shard count for a capacity: small caches stay
// single-shard (exact legacy LRU semantics); large caches spread over up
// to 16 shards so each holds a useful number of trees.
func routerShardCount(capacity int) int {
	n := 1
	for n < 16 && capacity/(n*2) >= 8 {
		n *= 2
	}
	return n
}

// PathRouter is the query surface consumers of shortest paths depend
// on. *Router is the canonical implementation; wrappers (the replay
// harness's fault-injection layer) interpose on it to perturb answers
// deterministically without touching the cache underneath.
type PathRouter interface {
	// Cost returns the shortest-path cost in meters from u to v, or
	// +Inf when v is unreachable from u.
	Cost(u, v VertexID) float64
	// Path returns the shortest path from u to v inclusive of both
	// endpoints, or nil when unreachable.
	Path(u, v VertexID) []VertexID
	// Reachable reports whether v is reachable from u.
	Reachable(u, v VertexID) bool
}

var _ PathRouter = (*Router)(nil)

// NewRouter creates a Router over g caching up to capacity source trees.
// Each tree costs ~12 bytes per graph vertex. capacity < 1 is treated as 1.
func NewRouter(g *Graph, capacity int) *Router {
	if capacity < 1 {
		capacity = 1
	}
	n := routerShardCount(capacity)
	shards := make([]routerShard, n)
	for i := range shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		if c < 1 {
			c = 1
		}
		shards[i] = routerShard{
			cap:      c,
			lru:      list.New(),
			bySrc:    make(map[VertexID]*list.Element, c),
			inflight: make(map[VertexID]*ssspCall),
		}
	}
	return &Router{g: g, shards: shards}
}

// Graph returns the underlying graph.
func (r *Router) Graph() *Graph { return r.g }

// shardOf maps a source vertex to its shard (Fibonacci hashing; vertex IDs
// are dense small integers, so plain modulo would alias grid columns).
func (r *Router) shardOf(src VertexID) *routerShard {
	h := uint64(uint32(src)) * 0x9E3779B97F4A7C15
	return &r.shards[h>>32%uint64(len(r.shards))]
}

// tree returns the (possibly cached) SSSP tree rooted at src.
func (r *Router) tree(src VertexID) *SSSPResult {
	s := r.shardOf(src)
	s.mu.Lock()
	if el, ok := s.bySrc[src]; ok {
		s.lru.MoveToFront(el)
		res := el.Value.(*SSSPResult)
		s.hits.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.hits.Inc()
		}
		return res
	}
	if c, ok := s.inflight[src]; ok {
		// Another goroutine is already computing this tree; wait for it
		// instead of duplicating the Dijkstra run.
		s.deduped.Add(1)
		s.mu.Unlock()
		if r.met != nil {
			r.met.deduped.Inc()
		}
		<-c.done
		return c.res
	}
	c := &ssspCall{done: make(chan struct{})}
	s.inflight[src] = c
	s.misses.Add(1)
	s.mu.Unlock()

	t0 := time.Now()
	c.res = r.g.SSSP(src)
	if r.met != nil {
		r.met.misses.Inc()
		r.met.ssspSeconds.ObserveSince(t0)
	}

	s.mu.Lock()
	delete(s.inflight, src)
	el := s.lru.PushFront(c.res)
	s.bySrc[src] = el
	s.memoryBytes += int64(c.res.MemoryBytes())
	trees, evicted := 1, int64(0)
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		old := back.Value.(*SSSPResult)
		delete(s.bySrc, old.Source)
		s.memoryBytes -= int64(old.MemoryBytes())
		trees--
		evicted += int64(old.MemoryBytes())
	}
	s.mu.Unlock()
	if r.met != nil {
		r.met.cachedTrees.Add(float64(trees))
		r.met.memoryBytes.Add(float64(int64(c.res.MemoryBytes()) - evicted))
	}
	close(c.done)
	return c.res
}

// Cost returns the shortest-path cost in meters from u to v, or +Inf when v
// is unreachable from u.
func (r *Router) Cost(u, v VertexID) float64 {
	if u == v {
		return 0
	}
	return r.tree(u).Dist[v]
}

// Path returns the shortest path from u to v inclusive of both endpoints,
// or nil when unreachable.
func (r *Router) Path(u, v VertexID) []VertexID {
	if u == v {
		return []VertexID{u}
	}
	return r.tree(u).PathTo(v)
}

// Reachable reports whether v is reachable from u.
func (r *Router) Reachable(u, v VertexID) bool {
	return !math.IsInf(r.Cost(u, v), 1)
}

// RouterShardStats is the per-shard breakdown of cache behaviour.
type RouterShardStats struct {
	Hits        int64
	Misses      int64
	Deduped     int64
	CachedTrees int
	MemoryBytes int64
}

// RouterStats is a snapshot of cache behaviour.
type RouterStats struct {
	Hits   int64
	Misses int64
	// SingleflightDeduped counts cache misses that waited on an in-flight
	// computation for the same source instead of running their own.
	SingleflightDeduped int64
	CachedTrees         int
	MemoryBytes         int64
	// Shards breaks the totals down per cache shard.
	Shards []RouterShardStats
}

// Stats returns a snapshot of the router's cache statistics, aggregated
// from the per-shard counters. Memory is a running counter maintained on
// insert/evict, so a snapshot is O(shards), not O(cached trees).
func (r *Router) Stats() RouterStats {
	st := RouterStats{Shards: make([]RouterShardStats, len(r.shards))}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		ss := RouterShardStats{
			Hits:        s.hits.Load(),
			Misses:      s.misses.Load(),
			Deduped:     s.deduped.Load(),
			CachedTrees: s.lru.Len(),
			MemoryBytes: s.memoryBytes,
		}
		s.mu.Unlock()
		st.Shards[i] = ss
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.SingleflightDeduped += ss.Deduped
		st.CachedTrees += ss.CachedTrees
		st.MemoryBytes += ss.MemoryBytes
	}
	return st
}

// NumShards returns the number of cache shards.
func (r *Router) NumShards() int { return len(r.shards) }

// Warm precomputes and caches trees for the given sources (e.g. all
// landmarks), bounded by the router capacity.
func (r *Router) Warm(sources []VertexID) {
	for _, s := range sources {
		r.tree(s)
	}
}
