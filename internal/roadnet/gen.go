package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
)

// CityParams configures the synthetic city generator. The generator stands
// in for the paper's OpenStreetMap extract of Chengdu's 2nd Ring Road area
// (214,440 vertices / 466,330 edges over ~70 km²): it produces a perturbed
// street grid with one-way streets, removed blocks (density variation), and
// fast diagonal arterials, then keeps the largest strongly connected
// component so every trip is routable.
type CityParams struct {
	// Rows and Cols are the grid dimensions (intersections per side).
	Rows, Cols int
	// BlockMeters is the nominal block edge length.
	BlockMeters float64
	// CenterLat, CenterLng anchor the city. Defaults to central Chengdu.
	CenterLat, CenterLng float64
	// Jitter perturbs intersection positions by up to this fraction of a
	// block, making the grid less artificial. Range [0,0.5).
	Jitter float64
	// OneWayFrac is the fraction of streets converted to one-way with
	// alternating orientation (as real downtown grids do). Range [0,1].
	OneWayFrac float64
	// RemoveFrac is the fraction of interior edges randomly removed to
	// break the perfect lattice. Range [0,0.3].
	RemoveFrac float64
	// ArterialEvery inserts a diagonal fast arterial every k-th grid line
	// when > 0; arterial edges cost 0.7x their length, modelling higher
	// design speed.
	ArterialEvery int
	// CostNoise scales per-edge multiplicative cost noise in
	// [1, 1+CostNoise], modelling curvature and turn penalties.
	CostNoise float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultCityParams returns the parameters used by the evaluation harness:
// a city of roughly Rows*Cols intersections centred on Chengdu.
func DefaultCityParams(rows, cols int) CityParams {
	return CityParams{
		Rows:          rows,
		Cols:          cols,
		BlockMeters:   120,
		CenterLat:     30.6587,
		CenterLng:     104.0648,
		Jitter:        0.2,
		OneWayFrac:    0.3,
		RemoveFrac:    0.08,
		ArterialEvery: 8,
		CostNoise:     0.25,
		Seed:          1,
	}
}

// Validate reports whether the parameters are usable.
func (p CityParams) Validate() error {
	switch {
	case p.Rows < 2 || p.Cols < 2:
		return fmt.Errorf("roadnet: city needs at least a 2x2 grid, got %dx%d", p.Rows, p.Cols)
	case p.BlockMeters <= 0:
		return fmt.Errorf("roadnet: BlockMeters must be positive, got %v", p.BlockMeters)
	case p.Jitter < 0 || p.Jitter >= 0.5:
		return fmt.Errorf("roadnet: Jitter must be in [0, 0.5), got %v", p.Jitter)
	case p.OneWayFrac < 0 || p.OneWayFrac > 1:
		return fmt.Errorf("roadnet: OneWayFrac must be in [0,1], got %v", p.OneWayFrac)
	case p.RemoveFrac < 0 || p.RemoveFrac > 0.3:
		return fmt.Errorf("roadnet: RemoveFrac must be in [0,0.3], got %v", p.RemoveFrac)
	case p.CostNoise < 0:
		return fmt.Errorf("roadnet: CostNoise must be >= 0, got %v", p.CostNoise)
	}
	return nil
}

// GenerateCity builds a synthetic city road network per params. The result
// is strongly connected. It returns an error only for invalid parameters.
func GenerateCity(params CityParams) (*Graph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(params.Seed))
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(params.CenterLat*math.Pi/180)
	dLat := params.BlockMeters / mLat
	dLng := params.BlockMeters / mLng

	g := NewGraph(params.Rows * params.Cols)
	id := func(r, c int) VertexID { return VertexID(r*params.Cols + c) }
	for r := 0; r < params.Rows; r++ {
		for c := 0; c < params.Cols; c++ {
			jLat := (rng.Float64()*2 - 1) * params.Jitter * dLat
			jLng := (rng.Float64()*2 - 1) * params.Jitter * dLng
			g.AddVertex(geo.Point{
				Lat: params.CenterLat + (float64(r)-float64(params.Rows-1)/2)*dLat + jLat,
				Lng: params.CenterLng + (float64(c)-float64(params.Cols-1)/2)*dLng + jLng,
			})
		}
	}

	noise := func() float64 { return 1 + rng.Float64()*params.CostNoise }
	addStreet := func(u, v VertexID, oneWay bool, forward bool, costFactor float64) {
		du := geo.Equirect(g.Point(u), g.Point(v))
		if oneWay {
			if forward {
				g.AddEdge(u, v, du*costFactor*noise())
			} else {
				g.AddEdge(v, u, du*costFactor*noise())
			}
			return
		}
		g.AddEdge(u, v, du*costFactor*noise())
		g.AddEdge(v, u, du*costFactor*noise())
	}

	// Horizontal streets: whole rows may be one-way, alternating east/west.
	rowOneWay := make([]bool, params.Rows)
	for r := range rowOneWay {
		rowOneWay[r] = rng.Float64() < params.OneWayFrac
	}
	colOneWay := make([]bool, params.Cols)
	for c := range colOneWay {
		colOneWay[c] = rng.Float64() < params.OneWayFrac
	}
	for r := 0; r < params.Rows; r++ {
		for c := 0; c+1 < params.Cols; c++ {
			if params.RemoveFrac > 0 && rng.Float64() < params.RemoveFrac {
				continue
			}
			addStreet(id(r, c), id(r, c+1), rowOneWay[r], r%2 == 0, 1.0)
		}
	}
	for c := 0; c < params.Cols; c++ {
		for r := 0; r+1 < params.Rows; r++ {
			if params.RemoveFrac > 0 && rng.Float64() < params.RemoveFrac {
				continue
			}
			addStreet(id(r, c), id(r+1, c), colOneWay[c], c%2 == 0, 1.0)
		}
	}
	// Diagonal arterials: faster two-way links along every k-th diagonal.
	if params.ArterialEvery > 0 {
		for r := 0; r+1 < params.Rows; r++ {
			for c := 0; c+1 < params.Cols; c++ {
				if (r+c)%params.ArterialEvery != 0 {
					continue
				}
				addStreet(id(r, c), id(r+1, c+1), false, true, 0.7)
			}
		}
	}

	city, _ := g.LargestSCCSubgraph()
	if city.NumVertices() == 0 {
		// Degenerate parameter corner (e.g. RemoveFrac isolated everything);
		// regenerate without removals, which is always strongly connected
		// enough to have a giant SCC.
		params.RemoveFrac = 0
		params.OneWayFrac = 0
		return GenerateCity(params)
	}
	return city, nil
}
