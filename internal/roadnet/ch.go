package roadnet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CH is a contraction hierarchy over a Graph: a preprocessing structure
// that answers exact point-to-point shortest-path queries in microseconds
// by searching only "upward" arcs of a precomputed vertex ordering
// (Geisberger et al.; the many-to-many taxi-sharing engines in the related
// work build on the same structure). The paper assumes O(1) distance
// queries from a precomputed all-pairs table (§V-A4); a CH delivers the
// same effect at city scale in linear-ish memory.
//
// Determinism contract: construction is a pure function of the graph and
// is bit-identical at every parallelism level. Node order uses integer
// priorities (edge difference + contracted neighbors) with (priority,
// VertexID) tie-breaks, adjacency is kept in ID-sorted slices (never
// ranged-over maps), witness searches use ID tie-broken heaps, and
// parallel sections fan independent computations over a worker pool whose
// results are merged in index order.
//
// Exactness contract: ShortestPath unpacks the shortcut arcs to the full
// vertex path and recomputes the cost as a left-to-right fold of original
// edge costs — the same float association Dijkstra's relaxation produces —
// so returned costs are bit-identical to Graph.ShortestPath/SSSP, not
// merely equal within rounding. CH-internal sums (shortcut costs) are used
// only to order the search, never returned.
//
// CH is immutable after construction and safe for concurrent use.
type CH struct {
	g    *Graph
	rank []int32 // rank[v] = contraction order of v (0 = first contracted)
	// up[v] holds the arcs (v -> w) of the remaining graph at the moment v
	// was contracted: every w outranks v, so these are the upward arcs the
	// forward query search relaxes. down[v] holds the arcs (w -> v) at the
	// same moment (Arc.to = w), relaxed by the backward search climbing
	// from the destination. Both are sorted by target ID.
	up   [][]chArc
	down [][]chArc

	shortcuts    int
	buildSeconds float64
}

// chArc is one arc of the hierarchy: target vertex, travel cost, and the
// contracted middle vertex for shortcuts (Invalid for original edges).
type chArc struct {
	to   VertexID
	mid  VertexID
	cost float64
}

// chWitnessSettleCap bounds each witness search. Truncation is
// conservative: an unfound witness adds a (possibly redundant) shortcut,
// which costs memory, never correctness. The cap is generous because
// spurious shortcuts densify the remaining graph and feed back into every
// later simulation — a tight cap makes large builds *slower*, not faster.
const chWitnessSettleCap = 1024

// CHStats describes a built hierarchy.
type CHStats struct {
	Vertices int
	// UpArcs/DownArcs count the arcs of the upward/downward search graphs;
	// every arc of the contracted graph appears in exactly one of the two.
	UpArcs   int
	DownArcs int
	// Shortcuts counts hierarchy arcs that are contractions (mid set)
	// rather than original road edges.
	Shortcuts    int
	BuildSeconds float64
	MemoryBytes  int64
}

// Stats returns construction statistics.
func (ch *CH) Stats() CHStats {
	st := CHStats{
		Vertices:     len(ch.rank),
		Shortcuts:    ch.shortcuts,
		BuildSeconds: ch.buildSeconds,
		MemoryBytes:  ch.MemoryBytes(),
	}
	for v := range ch.up {
		st.UpArcs += len(ch.up[v])
		st.DownArcs += len(ch.down[v])
	}
	return st
}

// MemoryBytes reports the heap footprint of the hierarchy's arc arrays
// and rank table.
func (ch *CH) MemoryBytes() int64 {
	var arcs int64
	for v := range ch.up {
		arcs += int64(len(ch.up[v]) + len(ch.down[v]))
	}
	const arcBytes = 16 // to(4) + mid(4) + cost(8)
	const sliceHeader = 24
	return arcs*arcBytes + int64(len(ch.rank))*(4+2*sliceHeader)
}

// Graph returns the graph the hierarchy was built over.
func (ch *CH) Graph() *Graph { return ch.g }

// chHeap is a value-type binary min-heap keyed by (prio, v). The explicit
// vertex tie-break keeps pop order — and with it witness truncation and
// query meeting choices — deterministic even on graphs with exactly tied
// costs (unit-cost grids).
type chHeap []chHeapItem

type chHeapItem struct {
	prio float64
	v    VertexID
}

func (h chHeapItem) less(o chHeapItem) bool {
	if h.prio != o.prio {
		return h.prio < o.prio
	}
	return h.v < o.v
}

func (h *chHeap) push(it chHeapItem) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].less(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *chHeap) pop() chHeapItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q[l].less(q[m]) {
			m = l
		}
		if r < n && q[r].less(q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// chBuilder holds the mutable remaining graph during contraction. Arcs are
// kept in ID-sorted slices with at most one (minimum-cost) arc per ordered
// vertex pair, so every iteration order in the build is deterministic.
type chBuilder struct {
	g   *Graph
	n   int
	out [][]chArc // out[v] sorted by to; in[v].to is the arc's source
	in  [][]chArc

	rank    []int32
	next    int32
	delNbrs []int32 // contracted-neighbor count per vertex
	prio    []int64

	up        [][]chArc
	down      [][]chArc
	shortcuts int
}

// chShortcut is a pending shortcut discovered by simulating a contraction;
// the middle vertex is the vertex being contracted.
type chShortcut struct {
	from, to VertexID
	cost     float64
}

// chWS is one worker's witness-search workspace: a dense distance array
// reset via the touched list, so repeated small searches stay
// allocation-free.
type chWS struct {
	dist    []float64
	touched []VertexID
	heap    chHeap
}

func newChWS(n int) *chWS {
	ws := &chWS{dist: make([]float64, n)}
	for i := range ws.dist {
		ws.dist[i] = math.Inf(1)
	}
	return ws
}

func (ws *chWS) reset() {
	for _, v := range ws.touched {
		ws.dist[v] = math.Inf(1)
	}
	ws.touched = ws.touched[:0]
	ws.heap = ws.heap[:0]
}

// chParallelDo fans fn(worker, i) for i in [0, n) over min(par, n)
// workers pulling indexes from an atomic counter — the repo's standard
// deterministic fan-out: every index is computed exactly once into its own
// slot, so results are independent of scheduling.
func chParallelDo(n, par int, fn func(worker, i int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// BuildCH contracts g into a hierarchy. parallelism bounds the witness-
// search worker pool (<= 0 uses all CPUs); the result is bit-identical at
// every level. Build time is near-linear in graph size; the ~214k-vertex
// Chengdu-scale city contracts in about 2.5 minutes
// (BenchmarkChengduCHRouting reports the measured build-s), a one-time
// cost amortised over every query the world ever answers.
func BuildCH(g *Graph, parallelism int) *CH {
	t0 := time.Now()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	b := &chBuilder{
		g: g, n: n,
		out: make([][]chArc, n), in: make([][]chArc, n),
		rank: make([]int32, n), delNbrs: make([]int32, n),
		prio: make([]int64, n),
		up:   make([][]chArc, n), down: make([][]chArc, n),
	}
	for v := 0; v < n; v++ {
		b.out[v] = collapseArcs(g.Out(VertexID(v)), VertexID(v))
		b.in[v] = collapseArcs(g.In(VertexID(v)), VertexID(v))
	}

	// Workspaces are per worker; the contraction loop below is single-
	// threaded, so they are reused freely there.
	wss := make([]*chWS, parallelism)
	for i := range wss {
		wss[i] = newChWS(n)
	}

	// Initial priorities: one independent contraction simulation per
	// vertex, fanned over the pool and merged by index.
	chParallelDo(n, parallelism, func(w, i int) {
		v := VertexID(i)
		b.prio[v] = b.priority(v, len(b.simulate(v, wss[w])))
	})

	var q chPrioHeap
	q.items = make([]chPrioItem, 0, n)
	for v := 0; v < n; v++ {
		q.items = append(q.items, chPrioItem{prio: b.prio[v], v: VertexID(v)})
	}
	q.init()

	for len(q.items) > 0 {
		it := q.pop()
		v := it.v
		// Cheap reinsert: simulating never removes arcs, so the priority is
		// at least -degree + contracted-neighbors. When that bound already
		// loses the (priority, ID) order to the heap top, skip the witness
		// searches entirely — the pop order stays deterministic because the
		// bound is a pure function of the remaining graph.
		if lb := b.priority(v, 0); len(q.items) > 0 &&
			q.items[0].less(chPrioItem{prio: lb, v: v}) {
			q.push(chPrioItem{prio: lb, v: v})
			continue
		}
		// Lazy update: always re-simulate against the current remaining
		// graph. Witness searches exclude v, so a contraction anywhere can
		// invalidate an earlier simulation even when v's own adjacency is
		// untouched — the removed vertex may have carried the only
		// v-avoiding witness path. Stale queue priorities are harmless
		// (this recheck reinserts when v no longer wins the (priority, ID)
		// order), but stale shortcut lists would lose connectivity.
		scs := b.simulatePar(v, wss, parallelism)
		b.prio[v] = b.priority(v, len(scs))
		upd := chPrioItem{prio: b.prio[v], v: v}
		if len(q.items) > 0 && q.items[0].less(upd) {
			q.push(upd)
			continue
		}
		b.contract(v, scs)
	}

	ch := &CH{g: g, rank: b.rank, up: b.up, down: b.down, buildSeconds: time.Since(t0).Seconds()}
	for v := range ch.up {
		for _, a := range ch.up[v] {
			if a.mid != Invalid {
				ch.shortcuts++
			}
		}
		for _, a := range ch.down[v] {
			if a.mid != Invalid {
				ch.shortcuts++
			}
		}
	}
	return ch
}

// collapseArcs turns a raw adjacency list into the builder's canonical
// form: self-loops dropped, parallel arcs collapsed to the cheapest, sorted
// by target ID.
func collapseArcs(arcs []Arc, self VertexID) []chArc {
	if len(arcs) == 0 {
		return nil
	}
	out := make([]chArc, 0, len(arcs))
	for _, a := range arcs {
		if a.To == self {
			continue
		}
		out = append(out, chArc{to: a.To, mid: Invalid, cost: a.Cost})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].to != out[j].to {
			return out[i].to < out[j].to
		}
		return out[i].cost < out[j].cost
	})
	// Keep the first (cheapest) arc per target.
	w := 0
	for i := range out {
		if w > 0 && out[w-1].to == out[i].to {
			continue
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// priority is the node-ordering heuristic: edge difference (shortcuts the
// contraction would add minus arcs it removes) plus the count of already
// contracted neighbors, all integers so the order is exact.
func (b *chBuilder) priority(v VertexID, shortcuts int) int64 {
	return int64(shortcuts) - int64(len(b.in[v])+len(b.out[v])) + int64(b.delNbrs[v])
}

// simulate computes the shortcuts contracting v would require right now:
// for every in-neighbor u a witness search (a cost-bounded Dijkstra in the
// remaining graph that avoids v) decides, per out-neighbor w, whether the
// path u->v->w is dispensable. The searches are independent per
// in-neighbor; simulatePar fans them over the worker pool and both
// variants assemble the shortcut list in (in-neighbor, out-neighbor)
// sorted order, so the result is identical either way.
func (b *chBuilder) simulate(v VertexID, ws *chWS) []chShortcut {
	ins := b.in[v]
	perIn := make([][]chShortcut, len(ins))
	for i := range ins {
		perIn[i] = b.simulateIn(v, i, ws)
	}
	return mergeShortcuts(perIn)
}

// simulatePar is simulate with the per-in-neighbor witness searches fanned
// over min(par, in-degree) workers, each owning its workspace; results land
// in index-addressed slots and merge in order — bit-identical to the
// sequential variant at every parallelism level.
func (b *chBuilder) simulatePar(v VertexID, wss []*chWS, par int) []chShortcut {
	ins := b.in[v]
	if par > len(wss) {
		par = len(wss)
	}
	if par <= 1 || len(ins) < 4 {
		return b.simulate(v, wss[0])
	}
	perIn := make([][]chShortcut, len(ins))
	chParallelDo(len(ins), par, func(w, i int) {
		perIn[i] = b.simulateIn(v, i, wss[w])
	})
	return mergeShortcuts(perIn)
}

// simulateIn runs the witness search for the i-th in-neighbor of v and
// returns the shortcuts that neighbor needs, in out-neighbor order.
func (b *chBuilder) simulateIn(v VertexID, i int, ws *chWS) []chShortcut {
	u := b.in[v][i]
	outs := b.out[v]
	if len(outs) == 0 {
		return nil
	}
	maxOut := 0.0
	targets := 0
	for _, a := range outs {
		if a.to == u.to {
			continue
		}
		targets++
		if a.cost > maxOut {
			maxOut = a.cost
		}
	}
	if targets == 0 {
		return nil
	}
	b.witness(ws, u.to, v, u.cost, maxOut, outs, targets)
	var scs []chShortcut
	for _, w := range outs {
		if w.to == u.to {
			continue
		}
		sc := u.cost + w.cost
		if ws.dist[w.to] <= sc {
			continue // witness path at most as expensive: shortcut dispensable
		}
		scs = append(scs, chShortcut{from: u.to, to: w.to, cost: sc})
	}
	return scs
}

func mergeShortcuts(perIn [][]chShortcut) []chShortcut {
	var all []chShortcut
	for _, scs := range perIn {
		all = append(all, scs...)
	}
	return all
}

// witness runs the bounded Dijkstra from src (the in-neighbor, reached at
// uCost) in the remaining graph, skipping excluded, stopping once the
// frontier exceeds uCost+maxOut, the settle cap trips, or — the common
// case — every out-neighbor target is already dominated (dist[w] <=
// uCost+cost(v,w) means the u->v->w shortcut is dispensable, and labels
// only shrink). Tentative labels left in ws.dist are upper bounds on real
// remaining-graph paths, so comparing them against a shortcut cost is
// always safe.
func (b *chBuilder) witness(ws *chWS, src, excluded VertexID, uCost, maxOut float64, outs []chArc, targets int) {
	ws.reset()
	ws.dist[src] = 0
	ws.touched = append(ws.touched, src)
	ws.heap.push(chHeapItem{prio: 0, v: src})
	maxCost := uCost + maxOut
	pending := targets
	settled := 0
	for len(ws.heap) > 0 && pending > 0 {
		it := ws.heap.pop()
		if it.prio > ws.dist[it.v] {
			continue
		}
		settled++
		if settled > chWitnessSettleCap {
			break
		}
		// A settled target's distance is final — witnessed or not, its
		// shortcut decision cannot change, so count it off and stop once
		// every target is decided.
		if k := findChArc(outs, it.v); k >= 0 && it.v != src {
			pending--
		}
		for _, a := range b.out[it.v] {
			if a.to == excluded {
				continue
			}
			nd := it.prio + a.cost
			if nd < ws.dist[a.to] && nd <= maxCost {
				if math.IsInf(ws.dist[a.to], 1) {
					ws.touched = append(ws.touched, a.to)
				}
				ws.dist[a.to] = nd
				ws.heap.push(chHeapItem{prio: nd, v: a.to})
			}
		}
	}
}

// contract removes v from the remaining graph: snapshot its arcs as the
// upward/downward search arcs, splice it out of every neighbor's adjacency,
// and install the freshly simulated shortcuts.
func (b *chBuilder) contract(v VertexID, scs []chShortcut) {
	ins, outs := b.in[v], b.out[v]
	b.up[v] = append([]chArc(nil), outs...)
	b.down[v] = append([]chArc(nil), ins...)
	b.rank[v] = b.next
	b.next++

	// Neighbors = sorted union of in- and out-neighbor IDs; count each once.
	i, j := 0, 0
	for i < len(ins) || j < len(outs) {
		switch {
		case j >= len(outs) || (i < len(ins) && ins[i].to < outs[j].to):
			removeChArc(&b.out[ins[i].to], v)
			b.delNbrs[ins[i].to]++
			i++
		case i >= len(ins) || outs[j].to < ins[i].to:
			removeChArc(&b.in[outs[j].to], v)
			b.delNbrs[outs[j].to]++
			j++
		default: // both in- and out-neighbor
			removeChArc(&b.out[ins[i].to], v)
			removeChArc(&b.in[outs[j].to], v)
			b.delNbrs[ins[i].to]++
			i++
			j++
		}
	}
	for _, sc := range scs {
		b.upsertShortcut(sc, v)
	}
	b.out[v], b.in[v] = nil, nil
}

// upsertShortcut installs sc (middle vertex mid) into the remaining graph
// unless an arc at most as cheap already connects the pair. Out- and
// in-lists are updated together so they stay mirror images.
func (b *chBuilder) upsertShortcut(sc chShortcut, mid VertexID) {
	outList := &b.out[sc.from]
	k := findChArc(*outList, sc.to)
	if k >= 0 && (*outList)[k].cost <= sc.cost {
		return
	}
	arc := chArc{to: sc.to, mid: mid, cost: sc.cost}
	if k >= 0 {
		(*outList)[k] = arc
	} else {
		insertChArc(outList, arc)
	}
	inList := &b.in[sc.to]
	inArc := chArc{to: sc.from, mid: mid, cost: sc.cost}
	if k2 := findChArc(*inList, sc.from); k2 >= 0 {
		(*inList)[k2] = inArc
	} else {
		insertChArc(inList, inArc)
	}
}

// findChArc binary-searches an ID-sorted arc list, returning the index of
// the arc to `to` or -1.
func findChArc(list []chArc, to VertexID) int {
	lo, hi := 0, len(list)
	for lo < hi {
		m := (lo + hi) / 2
		if list[m].to < to {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(list) && list[lo].to == to {
		return lo
	}
	return -1
}

func insertChArc(list *[]chArc, a chArc) {
	l := *list
	lo, hi := 0, len(l)
	for lo < hi {
		m := (lo + hi) / 2
		if l[m].to < a.to {
			lo = m + 1
		} else {
			hi = m
		}
	}
	l = append(l, chArc{})
	copy(l[lo+1:], l[lo:])
	l[lo] = a
	*list = l
}

func removeChArc(list *[]chArc, to VertexID) {
	if k := findChArc(*list, to); k >= 0 {
		l := *list
		copy(l[k:], l[k+1:])
		*list = l[:len(l)-1]
	}
}

// chPrioHeap is the contraction queue: a binary min-heap over integer
// priorities with VertexID tie-breaks.
type chPrioHeap struct {
	items []chPrioItem
}

type chPrioItem struct {
	prio int64
	v    VertexID
}

func (a chPrioItem) less(b chPrioItem) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.v < b.v
}

func (q *chPrioHeap) init() {
	n := len(q.items)
	for i := n/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

func (q *chPrioHeap) push(it chPrioItem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.items[i].less(q.items[p]) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *chPrioHeap) pop() chPrioItem {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items = q.items[:n]
	q.down(0)
	return top
}

func (q *chPrioHeap) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.items[l].less(q.items[m]) {
			m = l
		}
		if r < n && q.items[r].less(q.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		q.items[i], q.items[m] = q.items[m], q.items[i]
		i = m
	}
}

// chParent records how a query search reached a vertex: the predecessor on
// the hierarchy arc and the arc's middle vertex for unpacking.
type chParent struct {
	v   VertexID
	mid VertexID
}

// ShortestPath answers an exact point-to-point query: a bidirectional
// Dijkstra over the upward arcs from src and the (reversed) downward arcs
// from dst, followed by shortcut unpacking. It returns the exact cost
// (bit-identical to Graph.ShortestPath, see the type comment), the full
// vertex path, the number of settled search vertices (the instrument the
// Router observes), and ok=false when dst is unreachable.
func (ch *CH) ShortestPath(src, dst VertexID) (cost float64, path []VertexID, settled int, ok bool) {
	if src == dst {
		return 0, []VertexID{src}, 0, true
	}
	fDist := map[VertexID]float64{src: 0}
	bDist := map[VertexID]float64{dst: 0}
	fPar := map[VertexID]chParent{}
	bPar := map[VertexID]chParent{}
	var fHeap, bHeap chHeap
	fHeap.push(chHeapItem{prio: 0, v: src})
	bHeap.push(chHeapItem{prio: 0, v: dst})

	best := math.Inf(1)
	meet := Invalid

	consider := func(v VertexID, total float64) {
		if total < best || (total == best && v < meet) {
			best = total
			meet = v
		}
	}

	// Each side runs until its own frontier can no longer improve best.
	for len(fHeap) > 0 || len(bHeap) > 0 {
		fOpen := len(fHeap) > 0 && fHeap[0].prio < best
		bOpen := len(bHeap) > 0 && bHeap[0].prio < best
		if !fOpen && !bOpen {
			break
		}
		// Alternate by smaller frontier key; forward wins exact ties so the
		// settle order is deterministic.
		forward := fOpen && (!bOpen || fHeap[0].prio <= bHeap[0].prio)
		if forward {
			it := fHeap.pop()
			if it.prio > fDist[it.v] {
				continue
			}
			settled++
			if bd, okB := bDist[it.v]; okB {
				consider(it.v, it.prio+bd)
			}
			for _, a := range ch.up[it.v] {
				nd := it.prio + a.cost
				if d, seen := fDist[a.to]; !seen || nd < d {
					fDist[a.to] = nd
					fPar[a.to] = chParent{v: it.v, mid: a.mid}
					fHeap.push(chHeapItem{prio: nd, v: a.to})
				}
			}
		} else {
			it := bHeap.pop()
			if it.prio > bDist[it.v] {
				continue
			}
			settled++
			if fd, okF := fDist[it.v]; okF {
				consider(it.v, fd+it.prio)
			}
			for _, a := range ch.down[it.v] {
				nd := it.prio + a.cost
				if d, seen := bDist[a.to]; !seen || nd < d {
					bDist[a.to] = nd
					bPar[a.to] = chParent{v: it.v, mid: a.mid}
					bHeap.push(chHeapItem{prio: nd, v: a.to})
				}
			}
		}
	}
	if meet == Invalid {
		return math.Inf(1), nil, settled, false
	}

	// Forward hierarchy hops src -> meet, in reverse.
	type hop struct {
		from, to, mid VertexID
	}
	var rev []hop
	for v := meet; v != src; {
		p := fPar[v]
		rev = append(rev, hop{from: p.v, to: v, mid: p.mid})
		v = p.v
	}
	path = append(path, src)
	for i := len(rev) - 1; i >= 0; i-- {
		path = ch.appendUnpack(rev[i].from, rev[i].to, rev[i].mid, path)
	}
	// Backward hops meet -> dst: bPar[x] = (y, mid) means real arc x -> y.
	for v := meet; v != dst; {
		p := bPar[v]
		path = ch.appendUnpack(v, p.v, p.mid, path)
		v = p.v
	}
	// Exact cost: left fold of original edge costs in path order — the
	// association Dijkstra's dist[v] = dist[u] + cost accumulates.
	return pathFoldCost(ch.g, path), path, settled, true
}

// pathFoldCost recomputes a path's cost as the left-to-right fold of
// original edge costs — the float association Dijkstra's relaxation
// produces, so exact backends (CH, bidirectional search) return costs
// bit-identical to Graph.ShortestPath. Panics on a broken path: callers
// pass paths they just computed over g.
func pathFoldCost(g *Graph, path []VertexID) float64 {
	cost := 0.0
	for i := 1; i < len(path); i++ {
		c, ok := g.EdgeCost(path[i-1], path[i])
		if !ok {
			panic(fmt.Sprintf("roadnet: exact path uses a missing edge (%d,%d)", path[i-1], path[i]))
		}
		cost += c
	}
	return cost
}

// Cost returns the exact shortest-path cost, or +Inf when unreachable.
func (ch *CH) Cost(src, dst VertexID) float64 {
	c, _, _, ok := ch.ShortestPath(src, dst)
	if !ok {
		return math.Inf(1)
	}
	return c
}

// appendUnpack appends the real vertices of the hierarchy arc from->to
// (excluding from, including to). A shortcut recurses into its two halves,
// which were arcs of the remaining graph when mid was contracted and are
// therefore recorded in down[mid] (from->mid) and up[mid] (mid->to).
func (ch *CH) appendUnpack(from, to, mid VertexID, out []VertexID) []VertexID {
	if mid == Invalid {
		return append(out, to)
	}
	k := findChArc(ch.down[mid], from)
	if k < 0 {
		panic(fmt.Sprintf("roadnet: CH shortcut (%d,%d) lost its left half at %d", from, to, mid))
	}
	out = ch.appendUnpack(from, mid, ch.down[mid][k].mid, out)
	k = findChArc(ch.up[mid], to)
	if k < 0 {
		panic(fmt.Sprintf("roadnet: CH shortcut (%d,%d) lost its right half at %d", from, to, mid))
	}
	return ch.appendUnpack(mid, to, ch.up[mid][k].mid, out)
}
