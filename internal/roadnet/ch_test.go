package roadnet

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestCHExactOnCity is the core correctness guarantee: CH queries return
// bit-identical costs to point-to-point Dijkstra on generated cities
// (continuous edge-cost noise makes the shortest path unique, so the
// unpacked-path left fold reproduces Dijkstra's float association exactly),
// and the returned paths are valid edge walks whose PathCost equals the
// returned cost.
func TestCHExactOnCity(t *testing.T) {
	for _, size := range []int{12, 20} {
		p := DefaultCityParams(size, size)
		p.Seed = int64(size)
		g, err := GenerateCity(p)
		if err != nil {
			t.Fatal(err)
		}
		ch := BuildCH(g, 0)
		rng := rand.New(rand.NewSource(int64(size) * 7))
		n := g.NumVertices()
		for i := 0; i < 200; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			want, wantPath, wantOK := g.ShortestPath(u, v)
			got, path, _, ok := ch.ShortestPath(u, v)
			if ok != wantOK {
				t.Fatalf("size %d: CH(%d,%d) ok=%v, Dijkstra ok=%v", size, u, v, ok, wantOK)
			}
			if !ok {
				continue
			}
			if got != want {
				t.Fatalf("size %d: CH cost(%d,%d) = %v (bits %x), Dijkstra = %v (bits %x)",
					size, u, v, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("size %d: path endpoints %d..%d for query (%d,%d)", size, path[0], path[len(path)-1], u, v)
			}
			pc, err := g.PathCost(path)
			if err != nil {
				t.Fatalf("size %d: unpacked path uses a missing edge: %v", size, err)
			}
			if pc != got {
				t.Fatalf("size %d: PathCost %v != returned cost %v", size, pc, got)
			}
			if len(path) != len(wantPath) {
				t.Fatalf("size %d: CH path length %d, Dijkstra %d for (%d,%d)", size, len(path), len(wantPath), u, v)
			}
		}
	}
}

// TestCHExactOnUnitGrid exercises the massive-tie regime: on a unit-cost
// grid every equal-length path ties exactly, so this checks the heap and
// witness tie-breaks keep the structure deterministic and the costs exact
// (integer sums are exact in float64 regardless of the path chosen).
func TestCHExactOnUnitGrid(t *testing.T) {
	g := gridGraph(8)
	ch := BuildCH(g, 0)
	n := g.NumVertices()
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 5 {
			want, _, wantOK := g.ShortestPath(VertexID(u), VertexID(v))
			got, _, _, ok := ch.ShortestPath(VertexID(u), VertexID(v))
			if ok != wantOK {
				t.Fatalf("(%d,%d): ok=%v want %v", u, v, ok, wantOK)
			}
			if ok && got != want {
				t.Fatalf("(%d,%d): CH %v, Dijkstra %v", u, v, got, want)
			}
		}
	}
}

// TestCHDeterministicAcrossParallelism pins the headline determinism
// contract: the upward/downward arc sets and the contraction order are
// bit-identical no matter how many witness-search workers built them.
func TestCHDeterministicAcrossParallelism(t *testing.T) {
	p := DefaultCityParams(16, 16)
	p.Seed = 5
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	base := BuildCH(g, 1)
	for _, par := range []int{2, 4, 8} {
		other := BuildCH(g, par)
		if !reflect.DeepEqual(base.rank, other.rank) {
			t.Fatalf("parallelism %d: contraction order differs from sequential build", par)
		}
		if !reflect.DeepEqual(base.up, other.up) {
			t.Fatalf("parallelism %d: upward arc sets differ from sequential build", par)
		}
		if !reflect.DeepEqual(base.down, other.down) {
			t.Fatalf("parallelism %d: downward arc sets differ from sequential build", par)
		}
		if base.shortcuts != other.shortcuts {
			t.Fatalf("parallelism %d: %d shortcuts vs %d sequential", par, other.shortcuts, base.shortcuts)
		}
	}
}

// TestCHDeterministicOnTiedGrid repeats the parallelism-invariance check on
// the unit-cost grid, where every cost comparison ties and only the ID
// tie-breaks keep the build deterministic.
func TestCHDeterministicOnTiedGrid(t *testing.T) {
	g := gridGraph(7)
	base := BuildCH(g, 1)
	for _, par := range []int{2, 4} {
		other := BuildCH(g, par)
		if !reflect.DeepEqual(base.up, other.up) || !reflect.DeepEqual(base.down, other.down) {
			t.Fatalf("parallelism %d: arc sets differ on the tied grid", par)
		}
		if !reflect.DeepEqual(base.rank, other.rank) {
			t.Fatalf("parallelism %d: contraction order differs on the tied grid", par)
		}
	}
}

// TestCHUnreachable checks directed unreachability: on a one-way line the
// reverse query must report ok=false with an infinite cost.
func TestCHUnreachable(t *testing.T) {
	g := lineGraph(4)
	ch := BuildCH(g, 1)
	if c, _, _, ok := ch.ShortestPath(0, 3); !ok || math.IsInf(c, 1) {
		t.Fatalf("forward line query failed: cost=%v ok=%v", c, ok)
	}
	c, path, _, ok := ch.ShortestPath(3, 0)
	if ok || path != nil {
		t.Fatalf("reverse line query should be unreachable, got cost=%v path=%v", c, path)
	}
	if !math.IsInf(ch.Cost(3, 0), 1) {
		t.Fatal("Cost on unreachable pair should be +Inf")
	}
}

// TestCHSelfQuery pins the trivial case.
func TestCHSelfQuery(t *testing.T) {
	g := gridGraph(3)
	ch := BuildCH(g, 1)
	c, path, settled, ok := ch.ShortestPath(4, 4)
	if !ok || c != 0 || len(path) != 1 || path[0] != 4 || settled != 0 {
		t.Fatalf("self query: cost=%v path=%v settled=%d ok=%v", c, path, settled, ok)
	}
}

// TestCHStats checks the stats surface: a contracted city must report its
// vertices, a positive arc count, shortcuts, build time, and a memory
// footprint consistent with the arc totals.
func TestCHStats(t *testing.T) {
	p := DefaultCityParams(12, 12)
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := BuildCH(g, 2)
	st := ch.Stats()
	if st.Vertices != g.NumVertices() {
		t.Fatalf("stats vertices %d != graph %d", st.Vertices, g.NumVertices())
	}
	if st.UpArcs == 0 || st.DownArcs == 0 {
		t.Fatalf("no search arcs recorded: %+v", st)
	}
	if st.Shortcuts <= 0 {
		t.Fatalf("a city-scale contraction should add shortcuts, got %d", st.Shortcuts)
	}
	if st.BuildSeconds <= 0 {
		t.Fatal("build time not recorded")
	}
	if want := ch.MemoryBytes(); st.MemoryBytes != want || want <= 0 {
		t.Fatalf("stats memory %d, MemoryBytes() %d", st.MemoryBytes, want)
	}
	// Every hierarchy arc is either an original edge or a counted shortcut.
	if st.Shortcuts > st.UpArcs+st.DownArcs {
		t.Fatalf("shortcuts %d exceed total arcs %d", st.Shortcuts, st.UpArcs+st.DownArcs)
	}
}

// TestCHSettledFarBelowDijkstra quantifies why the hierarchy exists: the
// query search space must be a small fraction of the graph, where plain
// Dijkstra settles a constant fraction of all vertices.
func TestCHSettledFarBelowDijkstra(t *testing.T) {
	p := DefaultCityParams(30, 30)
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := BuildCH(g, 0)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	total := 0
	const queries = 50
	for i := 0; i < queries; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		_, _, settled, _ := ch.ShortestPath(u, v)
		total += settled
	}
	if mean := float64(total) / queries; mean > float64(n)/4 {
		t.Fatalf("mean settled %v on %d vertices — hierarchy is not pruning the search", mean, n)
	}
}
