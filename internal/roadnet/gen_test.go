package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestGenerateCityBasicShape(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 300 {
		t.Fatalf("city too small after SCC trim: %d vertices", g.NumVertices())
	}
	if g.NumEdges() < g.NumVertices() {
		t.Fatalf("suspiciously sparse: %d edges for %d vertices", g.NumEdges(), g.NumVertices())
	}
}

func TestGenerateCityStronglyConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42} {
		p := DefaultCityParams(15, 15)
		p.Seed = seed
		g, err := GenerateCity(p)
		if err != nil {
			t.Fatal(err)
		}
		if sccs := g.StronglyConnectedComponents(); len(sccs) != 1 {
			t.Fatalf("seed %d: %d SCCs, want 1", seed, len(sccs))
		}
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	p := DefaultCityParams(12, 12)
	g1, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("nondeterministic generation: %d/%d vs %d/%d",
			g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	for v := 0; v < g1.NumVertices(); v++ {
		if g1.Point(VertexID(v)) != g2.Point(VertexID(v)) {
			t.Fatalf("vertex %d position differs", v)
		}
	}
}

func TestGenerateCityEdgeCostsAtLeastStraightLine(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Out(VertexID(v)) {
			straight := geo.Equirect(g.Point(VertexID(v)), g.Point(a.To))
			// Arterials have factor 0.7; cost may be slightly below the
			// straight line only for those, never below 0.7x.
			if a.Cost < straight*0.7-1e-6 {
				t.Fatalf("edge (%d,%d) cost %v below 0.7x straight %v", v, a.To, a.Cost, straight)
			}
		}
	}
}

func TestGenerateCityInvalidParams(t *testing.T) {
	bad := []CityParams{
		{Rows: 1, Cols: 10, BlockMeters: 100},
		{Rows: 10, Cols: 10, BlockMeters: 0},
		{Rows: 10, Cols: 10, BlockMeters: 100, Jitter: 0.6},
		{Rows: 10, Cols: 10, BlockMeters: 100, OneWayFrac: 1.5},
		{Rows: 10, Cols: 10, BlockMeters: 100, RemoveFrac: 0.5},
		{Rows: 10, Cols: 10, BlockMeters: 100, CostNoise: -1},
	}
	for i, p := range bad {
		if _, err := GenerateCity(p); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerateCityAllPairsRoutable(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		if c, _, ok := g.ShortestPath(src, dst); !ok || math.IsInf(c, 1) {
			t.Fatalf("no route %d -> %d in strongly connected city", src, dst)
		}
	}
}

func TestGenerateCityCoversRequestedArea(t *testing.T) {
	p := DefaultCityParams(20, 20)
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	min, max := g.Bounds()
	widthM := geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng})
	wantM := float64(p.Cols-1) * p.BlockMeters
	if widthM < wantM*0.7 || widthM > wantM*1.3 {
		t.Fatalf("city width %v m, want ~%v m", widthM, wantM)
	}
}
