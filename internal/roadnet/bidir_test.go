package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(15, 15))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		dc, _, dok := g.ShortestPath(src, dst)
		bc, bpath, bok := g.BidirectionalShortestPath(src, dst)
		if dok != bok {
			t.Fatalf("reachability disagreement src=%d dst=%d", src, dst)
		}
		if !dok {
			continue
		}
		if math.Abs(dc-bc) > 1e-6 {
			t.Fatalf("bidir cost %v != dijkstra %v (src=%d dst=%d)", bc, dc, src, dst)
		}
		if bpath[0] != src || bpath[len(bpath)-1] != dst {
			t.Fatalf("bidir path endpoints %v", bpath)
		}
		if c, err := g.PathCost(bpath); err != nil || math.Abs(c-bc) > 1e-6 {
			t.Fatalf("bidir path invalid: %v %v", c, err)
		}
	}
}

func TestBidirectionalSelfAndUnreachable(t *testing.T) {
	g := lineGraph(4)
	if c, p, ok := g.BidirectionalShortestPath(2, 2); !ok || c != 0 || len(p) != 1 {
		t.Fatal("self query wrong")
	}
	if _, _, ok := g.BidirectionalShortestPath(3, 0); ok {
		t.Fatal("found path against edge direction")
	}
}

func TestALTMatchesDijkstra(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(15, 15))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	landmarks := []VertexID{0, VertexID(n / 4), VertexID(n / 2), VertexID(3 * n / 4)}
	alt := NewALT(g, landmarks)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		src := VertexID(rng.Intn(n))
		dst := VertexID(rng.Intn(n))
		dc, _, dok := g.ShortestPath(src, dst)
		ac, apath, aok := alt.ShortestPath(src, dst)
		if dok != aok {
			t.Fatalf("reachability disagreement src=%d dst=%d", src, dst)
		}
		if !dok {
			continue
		}
		if math.Abs(dc-ac) > 1e-6 {
			t.Fatalf("ALT cost %v != dijkstra %v (src=%d dst=%d)", ac, dc, src, dst)
		}
		if c, err := g.PathCost(apath); err != nil || math.Abs(c-ac) > 1e-6 {
			t.Fatalf("ALT path invalid: %v %v", c, err)
		}
	}
	if alt.MemoryBytes() <= 0 {
		t.Fatal("ALT memory not reported")
	}
}

func TestALTHeuristicAdmissible(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	alt := NewALT(g, []VertexID{0, VertexID(n - 1)})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		v := VertexID(rng.Intn(n))
		tgt := VertexID(rng.Intn(n))
		d, _, ok := g.ShortestPath(v, tgt)
		if !ok {
			continue
		}
		if h := alt.heuristic(v, tgt); h > d+1e-6 {
			t.Fatalf("heuristic %v exceeds true distance %v (v=%d t=%d)", h, d, v, tgt)
		}
	}
}

func BenchmarkBidirectional(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = g.BidirectionalShortestPath(VertexID(i%n), VertexID((i*7919)%n))
	}
}

func BenchmarkALT(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	alt := NewALT(g, []VertexID{0, VertexID(n / 3), VertexID(n / 2), VertexID(2 * n / 3), VertexID(n - 1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = alt.ShortestPath(VertexID(i%n), VertexID((i*7919)%n))
	}
}

// BenchmarkAblationSPCache contrasts cold point-to-point Dijkstra against
// the Router's cached trees — the repository's stand-in for the paper's
// precomputed all-pairs shortest-path cache (§V-A4).
func BenchmarkAblationSPCache(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	hot := []VertexID{0, VertexID(n / 3), VertexID(n / 2), VertexID(2 * n / 3)}
	b.Run("cold-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, _ = g.ShortestPath(hot[i%len(hot)], VertexID((i*7919)%n))
		}
	})
	b.Run("router-cache", func(b *testing.B) {
		r := NewRouter(g, 64)
		r.Warm(hot)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = r.Cost(hot[i%len(hot)], VertexID((i*7919)%n))
		}
	})
}
