package roadnet

import (
	"testing"

	"repro/internal/geo"
)

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1 with unit-ish geo spacing.
func lineGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddVertex(geo.Point{Lat: 30, Lng: 104 + float64(i)*0.001})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1), 100)
	}
	return g
}

// ringGraph builds a directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func ringGraph(n int) *Graph {
	g := lineGraph(n)
	g.AddEdge(VertexID(n-1), 0, 100)
	return g
}

func TestAddVertexAndEdgeCounts(t *testing.T) {
	g := lineGraph(5)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestAddEdgePanicsOnBadInput(t *testing.T) {
	g := lineGraph(2)
	for name, fn := range map[string]func(){
		"out of range": func() { g.AddEdge(0, 99, 1) },
		"negative":     func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEdgeCostParallelEdges(t *testing.T) {
	g := NewGraph(2)
	a := g.AddVertex(geo.Point{Lat: 30, Lng: 104})
	b := g.AddVertex(geo.Point{Lat: 30, Lng: 104.001})
	g.AddEdge(a, b, 200)
	g.AddEdge(a, b, 150)
	c, ok := g.EdgeCost(a, b)
	if !ok || c != 150 {
		t.Fatalf("EdgeCost = %v, %v; want 150, true", c, ok)
	}
	if _, ok := g.EdgeCost(b, a); ok {
		t.Fatal("EdgeCost reported nonexistent reverse edge")
	}
}

func TestInOutAdjacencyConsistent(t *testing.T) {
	g := ringGraph(4)
	for v := 0; v < 4; v++ {
		if len(g.Out(VertexID(v))) != 1 || len(g.In(VertexID(v))) != 1 {
			t.Fatalf("vertex %d degree out=%d in=%d", v, len(g.Out(VertexID(v))), len(g.In(VertexID(v))))
		}
	}
	if g.In(1)[0].To != 0 {
		t.Fatalf("In(1) source = %d, want 0", g.In(1)[0].To)
	}
}

func TestBounds(t *testing.T) {
	g := NewGraph(2)
	g.AddVertex(geo.Point{Lat: 30, Lng: 105})
	g.AddVertex(geo.Point{Lat: 31, Lng: 104})
	min, max := g.Bounds()
	if min.Lat != 30 || min.Lng != 104 || max.Lat != 31 || max.Lng != 105 {
		t.Fatalf("Bounds = %v, %v", min, max)
	}
	e := NewGraph(0)
	if mn, mx := e.Bounds(); mn != (geo.Point{}) || mx != (geo.Point{}) {
		t.Fatal("empty graph bounds not zero")
	}
}

func TestPathCost(t *testing.T) {
	g := lineGraph(4)
	c, err := g.PathCost([]VertexID{0, 1, 2, 3})
	if err != nil || c != 300 {
		t.Fatalf("PathCost = %v, %v", c, err)
	}
	if _, err := g.PathCost([]VertexID{3, 2}); err == nil {
		t.Fatal("PathCost accepted missing edge")
	}
	if c, err := g.PathCost([]VertexID{2}); err != nil || c != 0 {
		t.Fatalf("single-vertex PathCost = %v, %v", c, err)
	}
}

func TestSCCRing(t *testing.T) {
	g := ringGraph(5)
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 1 || len(sccs[0]) != 5 {
		t.Fatalf("ring SCCs = %d components", len(sccs))
	}
}

func TestSCCLine(t *testing.T) {
	g := lineGraph(5)
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 5 {
		t.Fatalf("line SCCs = %d, want 5 singletons", len(sccs))
	}
}

func TestSCCTwoComponents(t *testing.T) {
	// Two 3-cycles joined by a single directed edge.
	g := NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddVertex(geo.Point{Lat: 30, Lng: 104 + float64(i)*0.001})
	}
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1], 1)
	}
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 2 {
		t.Fatalf("SCCs = %d, want 2", len(sccs))
	}
	for _, s := range sccs {
		if len(s) != 3 {
			t.Fatalf("SCC size = %d, want 3", len(s))
		}
	}
}

func TestLargestSCCSubgraph(t *testing.T) {
	// 4-cycle plus a dangling tail.
	g := ringGraph(4)
	tail := g.AddVertex(geo.Point{Lat: 30, Lng: 104.9})
	g.AddEdge(3, tail, 50)
	sub, remap := g.LargestSCCSubgraph()
	if sub.NumVertices() != 4 {
		t.Fatalf("largest SCC size = %d, want 4", sub.NumVertices())
	}
	if remap[tail] != Invalid {
		t.Fatal("tail vertex not dropped")
	}
	for v := 0; v < 4; v++ {
		if remap[v] == Invalid {
			t.Fatalf("cycle vertex %d dropped", v)
		}
	}
	// Subgraph must itself be strongly connected.
	if sccs := sub.StronglyConnectedComponents(); len(sccs) != 1 {
		t.Fatalf("subgraph SCCs = %d, want 1", len(sccs))
	}
}

func TestLargestSCCSubgraphEmpty(t *testing.T) {
	g := NewGraph(0)
	sub, remap := g.LargestSCCSubgraph()
	if sub.NumVertices() != 0 || len(remap) != 0 {
		t.Fatal("empty graph SCC subgraph not empty")
	}
}
