package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
)

// RadialCityParams configures the ring-and-spoke generator — the second
// synthetic city family, modelling European-style radial cities rather
// than the Chengdu-like grid of GenerateCity. The evaluation harness runs
// on the grid city; the radial family exists to check that partitioning,
// indexing, and matching carry over to a structurally different network.
type RadialCityParams struct {
	// Rings is the number of concentric ring roads; Spokes the number of
	// radial arterials.
	Rings, Spokes int
	// RingSpacingMeters is the distance between consecutive rings.
	RingSpacingMeters float64
	// CenterLat, CenterLng anchor the city.
	CenterLat, CenterLng float64
	// Jitter perturbs vertex positions by up to this fraction of the ring
	// spacing.
	Jitter float64
	// CostNoise scales per-edge multiplicative cost noise.
	CostNoise float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultRadialCityParams returns a usable radial city configuration.
func DefaultRadialCityParams(rings, spokes int) RadialCityParams {
	return RadialCityParams{
		Rings:             rings,
		Spokes:            spokes,
		RingSpacingMeters: 250,
		CenterLat:         30.6587,
		CenterLng:         104.0648,
		Jitter:            0.15,
		CostNoise:         0.2,
		Seed:              1,
	}
}

// Validate reports whether the parameters are usable.
func (p RadialCityParams) Validate() error {
	switch {
	case p.Rings < 1 || p.Spokes < 3:
		return fmt.Errorf("roadnet: radial city needs >=1 ring and >=3 spokes, got %d/%d", p.Rings, p.Spokes)
	case p.RingSpacingMeters <= 0:
		return fmt.Errorf("roadnet: RingSpacingMeters must be positive")
	case p.Jitter < 0 || p.Jitter >= 0.5:
		return fmt.Errorf("roadnet: Jitter must be in [0,0.5)")
	case p.CostNoise < 0:
		return fmt.Errorf("roadnet: CostNoise must be >= 0")
	}
	return nil
}

// GenerateRadialCity builds a ring-and-spoke road network: a centre
// vertex, Rings concentric rings each carrying Spokes vertices, two-way
// ring segments, and two-way spoke segments connecting consecutive rings.
// The result is strongly connected by construction.
func GenerateRadialCity(p RadialCityParams) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(p.CenterLat*math.Pi/180)

	g := NewGraph(1 + p.Rings*p.Spokes)
	center := g.AddVertex(geo.Point{Lat: p.CenterLat, Lng: p.CenterLng})
	id := func(ring, spoke int) VertexID {
		return VertexID(1 + ring*p.Spokes + (spoke%p.Spokes+p.Spokes)%p.Spokes)
	}
	for ring := 0; ring < p.Rings; ring++ {
		radius := float64(ring+1) * p.RingSpacingMeters
		for spoke := 0; spoke < p.Spokes; spoke++ {
			ang := 2 * math.Pi * float64(spoke) / float64(p.Spokes)
			jr := (rng.Float64()*2 - 1) * p.Jitter * p.RingSpacingMeters
			ja := (rng.Float64()*2 - 1) * p.Jitter * 2 * math.Pi / float64(p.Spokes) / 2
			r := radius + jr
			a := ang + ja
			g.AddVertex(geo.Point{
				Lat: p.CenterLat + r*math.Sin(a)/mLat,
				Lng: p.CenterLng + r*math.Cos(a)/mLng,
			})
		}
	}
	noise := func() float64 { return 1 + rng.Float64()*p.CostNoise }
	twoWay := func(u, v VertexID, factor float64) {
		d := geo.Equirect(g.Point(u), g.Point(v))
		g.AddEdge(u, v, d*factor*noise())
		g.AddEdge(v, u, d*factor*noise())
	}
	// Ring segments.
	for ring := 0; ring < p.Rings; ring++ {
		for spoke := 0; spoke < p.Spokes; spoke++ {
			twoWay(id(ring, spoke), id(ring, spoke+1), 1.0)
		}
	}
	// Spokes: centre to first ring, then ring to ring. Spokes are the
	// arterials (0.8x cost factor).
	for spoke := 0; spoke < p.Spokes; spoke++ {
		twoWay(center, id(0, spoke), 0.8)
		for ring := 0; ring+1 < p.Rings; ring++ {
			twoWay(id(ring, spoke), id(ring+1, spoke), 0.8)
		}
	}
	return g, nil
}
