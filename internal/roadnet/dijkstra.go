package roadnet

import (
	"container/heap"
	"math"

	"repro/internal/geo"
)

// pqItem is a priority-queue entry for Dijkstra/A*.
type pqItem struct {
	v    VertexID
	prio float64
}

// pq is a min-heap of pqItems. We use lazy deletion (stale entries are
// skipped on pop), which avoids decrease-key bookkeeping and is faster in
// practice on sparse road graphs.
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].prio < q[j].prio }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// SSSPResult holds a full single-source shortest-path tree: distances in
// meters and the parent of each vertex on its shortest path from the source
// (Invalid for the source itself and unreachable vertices).
type SSSPResult struct {
	Source VertexID
	Dist   []float64
	Parent []VertexID
}

// Reachable reports whether v is reachable from the source.
func (r *SSSPResult) Reachable(v VertexID) bool { return !math.IsInf(r.Dist[v], 1) }

// PathTo reconstructs the shortest path from the source to v, inclusive of
// both endpoints. It returns nil if v is unreachable.
func (r *SSSPResult) PathTo(v VertexID) []VertexID {
	if !r.Reachable(v) {
		return nil
	}
	var rev []VertexID
	for u := v; u != Invalid; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// MemoryBytes estimates the heap footprint of the result, used by the
// shortest-path cache for budgeting.
func (r *SSSPResult) MemoryBytes() int {
	return 8*len(r.Dist) + 4*len(r.Parent) + 32
}

// SSSP runs Dijkstra's algorithm from src over the whole graph and returns
// the full shortest-path tree.
func (g *Graph) SSSP(src VertexID) *SSSPResult {
	n := len(g.pts)
	dist := make([]float64, n)
	parent := make([]VertexID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = Invalid
	}
	dist[src] = 0
	q := pq{{v: src, prio: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.prio > dist[it.v] {
			continue // stale entry
		}
		for _, a := range g.out[it.v] {
			if nd := it.prio + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = it.v
				heap.Push(&q, pqItem{v: a.To, prio: nd})
			}
		}
	}
	return &SSSPResult{Source: src, Dist: dist, Parent: parent}
}

// ReverseSSSP runs Dijkstra's algorithm from src over the reversed graph:
// Dist[v] is the cost of the shortest path from v *to* src (whereas
// SSSP's Dist[v] is src-to-v). The landmark distance oracle uses it to
// precompute vertex-to-landmark offsets on directed road networks, where
// d(v, L) and d(L, v) differ. Parent links are on the reversed graph:
// Parent[v] is the successor of v on its shortest path toward src.
func (g *Graph) ReverseSSSP(src VertexID) *SSSPResult {
	n := len(g.pts)
	dist := make([]float64, n)
	parent := make([]VertexID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = Invalid
	}
	dist[src] = 0
	q := pq{{v: src, prio: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.prio > dist[it.v] {
			continue // stale entry
		}
		// g.in[v] holds the incoming arcs of v with Arc.To being the arc's
		// source vertex, so relaxing them walks shortest paths backwards.
		for _, a := range g.in[it.v] {
			if nd := it.prio + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = it.v
				heap.Push(&q, pqItem{v: a.To, prio: nd})
			}
		}
	}
	return &SSSPResult{Source: src, Dist: dist, Parent: parent}
}

// ShortestPath returns the min-cost path from src to dst and its cost using
// Dijkstra with early termination. ok is false when dst is unreachable.
func (g *Graph) ShortestPath(src, dst VertexID) (cost float64, path []VertexID, ok bool) {
	return g.shortestPath(src, dst, nil, nil)
}

// RestrictedShortestPath is ShortestPath confined to vertices for which
// allowed returns true. src and dst are always considered allowed, matching
// the paper's partition-filtered routing where the event endpoints' own
// partitions are always retained.
func (g *Graph) RestrictedShortestPath(src, dst VertexID, allowed func(VertexID) bool) (cost float64, path []VertexID, ok bool) {
	return g.shortestPath(src, dst, allowed, nil)
}

// WeightedShortestPath runs Dijkstra where relaxing an edge (u,v) costs
// edgeCost + vertexWeight(v). Probabilistic routing (Alg. 4, step 3) uses
// vertex weights 1/ψ_c to steer the path through partitions with high
// probability of meeting suitable offline requests. The returned cost is
// the combined cost; callers needing the pure travel cost should use
// Graph.PathCost on the returned path.
func (g *Graph) WeightedShortestPath(src, dst VertexID, allowed func(VertexID) bool, vertexWeight func(VertexID) float64) (cost float64, path []VertexID, ok bool) {
	return g.shortestPath(src, dst, allowed, vertexWeight)
}

// shortestPath is the common point-to-point Dijkstra with optional vertex
// filtering and additive vertex weights. It allocates per call; hot paths
// that repeatedly query the same source should use the Router cache.
func (g *Graph) shortestPath(src, dst VertexID, allowed func(VertexID) bool, vertexWeight func(VertexID) float64) (float64, []VertexID, bool) {
	if src == dst {
		return 0, []VertexID{src}, true
	}
	n := len(g.pts)
	dist := make(map[VertexID]float64, 256)
	parent := make(map[VertexID]VertexID, 256)
	_ = n
	dist[src] = 0
	q := pq{{v: src, prio: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if d, seen := dist[it.v]; seen && it.prio > d {
			continue
		}
		if it.v == dst {
			return it.prio, reconstruct(parent, src, dst), true
		}
		for _, a := range g.out[it.v] {
			if a.To != dst && a.To != src && allowed != nil && !allowed(a.To) {
				continue
			}
			nd := it.prio + a.Cost
			if vertexWeight != nil {
				nd += vertexWeight(a.To)
			}
			if d, seen := dist[a.To]; !seen || nd < d {
				dist[a.To] = nd
				parent[a.To] = it.v
				heap.Push(&q, pqItem{v: a.To, prio: nd})
			}
		}
	}
	return 0, nil, false
}

func reconstruct(parent map[VertexID]VertexID, src, dst VertexID) []VertexID {
	var rev []VertexID
	for u := dst; ; {
		rev = append(rev, u)
		if u == src {
			break
		}
		u = parent[u]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AStar returns the min-cost path from src to dst using A* with the
// straight-line distance as an admissible heuristic (edge costs are at
// least the straight-line distance in the synthetic generator, and real
// road distances always are).
func (g *Graph) AStar(src, dst VertexID) (cost float64, path []VertexID, ok bool) {
	if src == dst {
		return 0, []VertexID{src}, true
	}
	target := g.pts[dst]
	h := func(v VertexID) float64 { return geo.Equirect(g.pts[v], target) }
	dist := make(map[VertexID]float64, 256)
	parent := make(map[VertexID]VertexID, 256)
	dist[src] = 0
	q := pq{{v: src, prio: h(src)}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		d := dist[it.v]
		if it.prio > d+h(it.v)+1e-9 {
			continue
		}
		if it.v == dst {
			return d, reconstruct(parent, src, dst), true
		}
		for _, a := range g.out[it.v] {
			nd := d + a.Cost
			if old, seen := dist[a.To]; !seen || nd < old {
				dist[a.To] = nd
				parent[a.To] = it.v
				heap.Push(&q, pqItem{v: a.To, prio: nd + h(a.To)})
			}
		}
	}
	return 0, nil, false
}
