package roadnet

import (
	"testing"

	"repro/internal/obs"
)

// TestRouterCHMemoryGauge pins the memory-accounting satellite: attaching
// a hierarchy must move the mtshare_roadnet_ch_* gauges and surface the
// arc-array footprint in RouterStats, regardless of whether the CH is
// attached before or after instrumentation.
func TestRouterCHMemoryGauge(t *testing.T) {
	p := DefaultCityParams(10, 10)
	p.Seed = 33
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := NewRouter(g, 16).InstrumentWith(reg)
	if got := reg.Gauge("mtshare_roadnet_ch_memory_bytes").Value(); got != 0 {
		t.Fatalf("ch memory gauge = %v before any CH exists", got)
	}
	if st := r.Stats(); st.CHMemoryBytes != 0 {
		t.Fatalf("CHMemoryBytes = %d before any CH exists", st.CHMemoryBytes)
	}

	ch := BuildCH(g, 1)
	r.AttachCH(ch)
	want := float64(ch.MemoryBytes())
	if want <= 0 {
		t.Fatal("CH reports no memory")
	}
	if got := reg.Gauge("mtshare_roadnet_ch_memory_bytes").Value(); got != want {
		t.Fatalf("ch memory gauge = %v, want %v", got, want)
	}
	if got := reg.Gauge("mtshare_roadnet_ch_shortcuts").Value(); got != float64(ch.Stats().Shortcuts) {
		t.Fatalf("ch shortcuts gauge = %v, want %d", got, ch.Stats().Shortcuts)
	}
	if got := reg.Gauge("mtshare_roadnet_ch_build_seconds").Value(); got <= 0 {
		t.Fatalf("ch build seconds gauge = %v, want > 0", got)
	}
	if st := r.Stats(); st.CHMemoryBytes != ch.MemoryBytes() {
		t.Fatalf("CHMemoryBytes = %d, want %d", st.CHMemoryBytes, ch.MemoryBytes())
	}

	// The attach-then-instrument order must publish the same gauges.
	reg2 := obs.NewRegistry()
	NewRouter(g, 16).AttachCH(ch).InstrumentWith(reg2)
	if got := reg2.Gauge("mtshare_roadnet_ch_memory_bytes").Value(); got != want {
		t.Fatalf("attach-first gauge = %v, want %v", got, want)
	}

	// Cold queries through the instrumented router must feed the CH
	// query counter and settled-vertex histogram.
	n := g.NumVertices()
	for i := 0; i < 8; i++ {
		_ = r.Cost(VertexID(i*17%n), VertexID((i*29+3)%n))
	}
	if got := reg.Counter("mtshare_roadnet_ch_queries_total").Value(); got == 0 {
		t.Fatal("ch query counter did not move")
	}
	if got := reg.Histogram("mtshare_roadnet_ch_settled_vertices").Snapshot().Count; got == 0 {
		t.Fatal("ch settled histogram did not move")
	}
}
