package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestGenerateRadialCityBasics(t *testing.T) {
	g, err := GenerateRadialCity(DefaultRadialCityParams(6, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumVertices(), 1+6*12; got != want {
		t.Fatalf("vertices = %d, want %d", got, want)
	}
	if sccs := g.StronglyConnectedComponents(); len(sccs) != 1 {
		t.Fatalf("radial city has %d SCCs", len(sccs))
	}
}

func TestGenerateRadialCityDeterministic(t *testing.T) {
	p := DefaultRadialCityParams(4, 8)
	a, err := GenerateRadialCity(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRadialCity(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Point(VertexID(v)) != b.Point(VertexID(v)) {
			t.Fatalf("vertex %d differs", v)
		}
	}
}

func TestGenerateRadialCityInvalid(t *testing.T) {
	bad := []RadialCityParams{
		{Rings: 0, Spokes: 8, RingSpacingMeters: 100},
		{Rings: 3, Spokes: 2, RingSpacingMeters: 100},
		{Rings: 3, Spokes: 8, RingSpacingMeters: 0},
		{Rings: 3, Spokes: 8, RingSpacingMeters: 100, Jitter: 0.9},
		{Rings: 3, Spokes: 8, RingSpacingMeters: 100, CostNoise: -1},
	}
	for i, p := range bad {
		if _, err := GenerateRadialCity(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRadialCityAllPairsRoutable(t *testing.T) {
	g, err := GenerateRadialCity(DefaultRadialCityParams(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		if _, _, ok := g.ShortestPath(src, dst); !ok {
			t.Fatalf("no route %d -> %d", src, dst)
		}
	}
}

func TestRadialCitySpokesAreFaster(t *testing.T) {
	// Crossing the city through the centre (spokes) should beat going
	// around the outer ring.
	p := DefaultRadialCityParams(6, 16)
	p.Jitter = 0
	p.CostNoise = 0
	g, err := GenerateRadialCity(p)
	if err != nil {
		t.Fatal(err)
	}
	// Opposite points on the outer ring.
	outer := 5
	a := VertexID(1 + outer*p.Spokes + 0)
	b := VertexID(1 + outer*p.Spokes + p.Spokes/2)
	cost, path, ok := g.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path")
	}
	// The direct route through the centre is ~2 * 6 rings * 250 m * 0.8.
	through := 2 * 6 * p.RingSpacingMeters * 0.8
	if cost > through*1.3 {
		t.Fatalf("crossing cost %v, expected near %v (through centre)", cost, through)
	}
	// The path should pass near the centre.
	nearCentre := false
	c := geo.Point{Lat: p.CenterLat, Lng: p.CenterLng}
	for _, v := range path {
		if geo.Equirect(g.Point(v), c) < 2*p.RingSpacingMeters {
			nearCentre = true
			break
		}
	}
	if !nearCentre {
		t.Fatal("cross-city path avoided the centre spokes")
	}
}

func TestRadialCityWorksWithPartitioningStack(t *testing.T) {
	// The full indexing stack must run unchanged on the radial family.
	g, err := GenerateRadialCity(DefaultRadialCityParams(6, 12))
	if err != nil {
		t.Fatal(err)
	}
	idx := NewSpatialIndex(g, 200)
	if _, ok := idx.NearestVertex(g.Point(0)); !ok {
		t.Fatal("spatial index failed on radial city")
	}
	r := NewRouter(g, 16)
	if r.Cost(0, VertexID(g.NumVertices()-1)) <= 0 {
		t.Fatal("router failed on radial city")
	}
}
