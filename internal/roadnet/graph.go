// Package roadnet models the road network substrate of mT-Share: a directed
// weighted graph over geographic vertices (Definition 1 of the paper),
// shortest-path routing (plain, restricted-subgraph, and vertex-weighted
// Dijkstra plus A*), a uniform spatial grid for nearest-vertex and range
// queries, a synthetic city generator standing in for the OpenStreetMap
// extract of Chengdu used by the paper, and a per-source shortest-path cache
// standing in for the paper's precomputed all-pairs table.
//
// Edge costs are travel distances in meters. The paper treats travel time
// and travel distance interchangeably under a constant taxi speed
// (15 km/h in the evaluation); higher layers convert with their configured
// speed.
package roadnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/geo"
)

// VertexID identifies a vertex of a Graph. IDs are dense, starting at 0.
type VertexID int32

// Invalid is a sentinel VertexID denoting "no vertex".
const Invalid VertexID = -1

// Arc is a directed edge to a target vertex with a travel cost in meters.
type Arc struct {
	To   VertexID
	Cost float64
}

// Graph is a directed road network. The zero value is an empty graph ready
// for use; vertices must be added before edges referencing them.
//
// Graph is immutable after construction from the perspective of routing:
// all query methods are safe for concurrent use as long as no AddVertex or
// AddEdge call is in flight.
type Graph struct {
	pts []geo.Point
	out [][]Arc
	in  [][]Arc

	numEdges int
}

// NewGraph returns an empty graph with capacity hints for n vertices.
func NewGraph(n int) *Graph {
	return &Graph{
		pts: make([]geo.Point, 0, n),
		out: make([][]Arc, 0, n),
		in:  make([][]Arc, 0, n),
	}
}

// AddVertex appends a vertex at p and returns its ID.
func (g *Graph) AddVertex(p geo.Point) VertexID {
	id := VertexID(len(g.pts))
	g.pts = append(g.pts, p)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds a directed edge from u to v with the given cost in meters.
// It panics if either endpoint is out of range or the cost is negative,
// which would silently corrupt Dijkstra's invariants.
func (g *Graph) AddEdge(u, v VertexID, cost float64) {
	if !g.valid(u) || !g.valid(v) {
		panic(fmt.Sprintf("roadnet: AddEdge(%d, %d) out of range (n=%d)", u, v, len(g.pts)))
	}
	if cost < 0 || math.IsNaN(cost) {
		panic(fmt.Sprintf("roadnet: AddEdge cost %v invalid", cost))
	}
	g.out[u] = append(g.out[u], Arc{To: v, Cost: cost})
	g.in[v] = append(g.in[v], Arc{To: u, Cost: cost})
	g.numEdges++
}

func (g *Graph) valid(v VertexID) bool { return v >= 0 && int(v) < len(g.pts) }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Point returns the location of vertex v.
func (g *Graph) Point(v VertexID) geo.Point { return g.pts[v] }

// Out returns the outgoing arcs of v. The returned slice must not be
// modified.
func (g *Graph) Out(v VertexID) []Arc { return g.out[v] }

// In returns the incoming arcs of v (each Arc.To is the *source* vertex).
// The returned slice must not be modified.
func (g *Graph) In(v VertexID) []Arc { return g.in[v] }

// EdgeCost returns the cost of the directed edge (u,v) and whether it
// exists. Parallel edges report the cheapest.
func (g *Graph) EdgeCost(u, v VertexID) (float64, bool) {
	best, ok := math.Inf(1), false
	for _, a := range g.out[u] {
		if a.To == v && a.Cost < best {
			best, ok = a.Cost, true
		}
	}
	return best, ok
}

// Fingerprint returns a stable FNV-1a hash over the graph's vertices
// (bit-exact coordinates) and directed edges (order-sensitive, costs
// bit-exact). Two graphs built from the same generator parameters hash
// identically; a replay log carries the fingerprint so a log is never
// diffed against a different road network.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	w64(uint64(len(g.pts)))
	for _, p := range g.pts {
		w64(math.Float64bits(p.Lat))
		w64(math.Float64bits(p.Lng))
	}
	for u, arcs := range g.out {
		for _, a := range arcs {
			w64(uint64(uint32(u))<<32 | uint64(uint32(a.To)))
			w64(math.Float64bits(a.Cost))
		}
	}
	return h.Sum64()
}

// Bounds returns the bounding box of all vertices as (min, max) points.
// It returns zero points for an empty graph.
func (g *Graph) Bounds() (min, max geo.Point) {
	if len(g.pts) == 0 {
		return geo.Point{}, geo.Point{}
	}
	min = g.pts[0]
	max = g.pts[0]
	for _, p := range g.pts[1:] {
		min.Lat = math.Min(min.Lat, p.Lat)
		min.Lng = math.Min(min.Lng, p.Lng)
		max.Lat = math.Max(max.Lat, p.Lat)
		max.Lng = math.Max(max.Lng, p.Lng)
	}
	return min, max
}

// PathCost sums edge costs along a vertex path. It returns an error if the
// path uses a nonexistent edge.
func (g *Graph) PathCost(path []VertexID) (float64, error) {
	var total float64
	for i := 1; i < len(path); i++ {
		c, ok := g.EdgeCost(path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("roadnet: path uses missing edge (%d,%d)", path[i-1], path[i])
		}
		total += c
	}
	return total, nil
}

// StronglyConnectedComponents returns the SCCs of g, each a slice of vertex
// IDs, using an iterative Tarjan's algorithm (safe for large graphs).
func (g *Graph) StronglyConnectedComponents() [][]VertexID {
	n := len(g.pts)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]VertexID
		stack   []VertexID
		next    int32
		callVtx []VertexID // explicit DFS call stack: vertex
		callArc []int      // and the next out-arc index to explore
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callVtx = append(callVtx[:0], VertexID(root))
		callArc = append(callArc[:0], 0)
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, VertexID(root))
		onStack[root] = true
		for len(callVtx) > 0 {
			v := callVtx[len(callVtx)-1]
			ai := callArc[len(callVtx)-1]
			if ai < len(g.out[v]) {
				callArc[len(callVtx)-1]++
				w := g.out[v][ai].To
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callVtx = append(callVtx, w)
					callArc = append(callArc, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: pop and propagate lowlink.
			callVtx = callVtx[:len(callVtx)-1]
			callArc = callArc[:len(callArc)-1]
			if len(callVtx) > 0 {
				p := callVtx[len(callVtx)-1]
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []VertexID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// LargestSCCSubgraph returns a new graph induced on the largest strongly
// connected component of g, together with a mapping old→new vertex IDs
// (Invalid for dropped vertices). The synthetic generator uses it to
// guarantee that every origin can reach every destination.
func (g *Graph) LargestSCCSubgraph() (*Graph, []VertexID) {
	sccs := g.StronglyConnectedComponents()
	bestIdx := -1
	for i, s := range sccs {
		if bestIdx < 0 || len(s) > len(sccs[bestIdx]) {
			bestIdx = i
		}
	}
	remap := make([]VertexID, len(g.pts))
	for i := range remap {
		remap[i] = Invalid
	}
	sub := NewGraph(0)
	if bestIdx < 0 {
		return sub, remap
	}
	keep := sccs[bestIdx]
	// Preserve relative vertex order for determinism.
	inKeep := make([]bool, len(g.pts))
	for _, v := range keep {
		inKeep[v] = true
	}
	for v := 0; v < len(g.pts); v++ {
		if inKeep[v] {
			remap[v] = sub.AddVertex(g.pts[v])
		}
	}
	for v := 0; v < len(g.pts); v++ {
		if !inKeep[v] {
			continue
		}
		for _, a := range g.out[v] {
			if inKeep[a.To] {
				sub.AddEdge(remap[v], remap[a.To], a.Cost)
			}
		}
	}
	return sub, remap
}
