package roadnet

import (
	"sync"
	"testing"
)

// TestRouterSingleflightDedup asserts that K concurrent misses for the
// same source compute exactly one SSSP tree: per round one racer wins the
// cold point query, one builds the tree, and every other racer is
// accounted as a singleflight waiter or cache hit.
func TestRouterSingleflightDedup(t *testing.T) {
	// A big enough city that one SSSP takes long enough for concurrently
	// started goroutines to observe it in flight.
	g, err := GenerateCity(DefaultCityParams(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 256)
	n := g.NumVertices()
	const K = 16
	const maxRounds = 64
	rounds := 0
	for round := 0; round < maxRounds; round++ {
		rounds++
		src := VertexID((round * 131) % n)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < K; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				// Offset from src so dst never equals src (a src==dst
				// query short-circuits without touching the cache).
				dst := VertexID((int(src) + i*31 + 7) % n)
				if c := r.Cost(src, dst); c < 0 {
					t.Errorf("negative cost %v", c)
				}
			}(i)
		}
		close(start)
		wg.Wait()
		st := r.Stats()
		// The singleflight guarantee: K concurrent misses on one source
		// still compute exactly one tree per distinct source.
		if st.Misses != int64(round+1) {
			t.Fatalf("round %d: %d SSSP computations for %d distinct sources (want one each)",
				round, st.Misses, round+1)
		}
		if st.SingleflightDeduped > 0 && round >= 3 {
			break // concurrency observed; totals checked below
		}
	}
	st := r.Stats()
	if st.Misses != int64(rounds) {
		t.Fatalf("misses = %d, want %d", st.Misses, rounds)
	}
	if st.Cold != int64(rounds) {
		t.Fatalf("cold = %d, want %d (one first-sighting point query per source)", st.Cold, rounds)
	}
	// Per round: one racer wins the cold point query, one computes the
	// tree, and the other K-2 either hit the cache (arrived after the tree
	// landed) or waited on the in-flight call.
	if got := st.Hits + st.SingleflightDeduped; got != int64(rounds*(K-2)) {
		t.Fatalf("hits+deduped = %d, want %d", got, rounds*(K-2))
	}
	if st.SingleflightDeduped == 0 {
		t.Skipf("no concurrent overlap observed in %d rounds (single-CPU runner?); dedup accounting not exercised", rounds)
	}
}

// TestRouterShardStatsConsistent checks that the per-shard breakdown sums
// to the aggregate totals and that the running memory counter matches the
// cached trees.
func TestRouterShardStatsConsistent(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, 512)
	if r.NumShards() < 2 {
		t.Fatalf("capacity 512 should shard the cache, got %d shards", r.NumShards())
	}
	n := g.NumVertices()
	for i := 0; i < 200; i++ {
		// Query each source twice: the first sighting is a cold point
		// query, the second builds and caches the tree.
		_ = r.Cost(VertexID((i*13)%n), VertexID((i*7+1)%n))
		_ = r.Cost(VertexID((i*13)%n), VertexID((i*7+1)%n))
	}
	st := r.Stats()
	if len(st.Shards) != r.NumShards() {
		t.Fatalf("got %d shard stats for %d shards", len(st.Shards), r.NumShards())
	}
	var hits, misses, dedup, cold int64
	var trees int
	var mem int64
	for _, s := range st.Shards {
		hits += s.Hits
		misses += s.Misses
		dedup += s.Deduped
		cold += s.Cold
		trees += s.CachedTrees
		mem += s.MemoryBytes
	}
	if hits != st.Hits || misses != st.Misses || dedup != st.SingleflightDeduped || cold != st.Cold {
		t.Fatalf("shard sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			hits, misses, dedup, cold, st.Hits, st.Misses, st.SingleflightDeduped, st.Cold)
	}
	if trees != st.CachedTrees || mem != st.MemoryBytes {
		t.Fatalf("shard sums trees=%d mem=%d != totals trees=%d mem=%d",
			trees, mem, st.CachedTrees, st.MemoryBytes)
	}
	// The running memory counter must agree with a direct recount.
	perTree := (&SSSPResult{Dist: make([]float64, n), Parent: make([]VertexID, n)}).MemoryBytes()
	if want := int64(st.CachedTrees * perTree); st.MemoryBytes != want {
		t.Fatalf("MemoryBytes = %d, recount = %d", st.MemoryBytes, want)
	}
	// Evictions must keep the counter in step: shrink via a tiny router.
	small := NewRouter(g, 2)
	for i := 0; i < 10; i++ {
		_ = small.Cost(VertexID(i), VertexID(i+1))
		_ = small.Cost(VertexID(i), VertexID(i+1))
	}
	sst := small.Stats()
	if sst.CachedTrees > 2 {
		t.Fatalf("capacity 2 holds %d trees", sst.CachedTrees)
	}
	if want := int64(sst.CachedTrees * perTree); sst.MemoryBytes != want {
		t.Fatalf("after evictions MemoryBytes = %d, recount = %d", sst.MemoryBytes, want)
	}
}
