package roadnet

import (
	"math"

	"repro/internal/geo"
)

// SpatialIndex is a uniform grid over a graph's bounding box supporting
// nearest-vertex snapping (the paper pre-maps request endpoints to the
// closest road vertex) and radius queries (candidate-taxi search discs).
//
// The index is immutable after construction and safe for concurrent use.
type SpatialIndex struct {
	g         *Graph
	minLat    float64
	minLng    float64
	cellLat   float64 // cell height in degrees
	cellLng   float64 // cell width in degrees
	rows      int
	cols      int
	cells     [][]VertexID
	metersLat float64 // meters per degree latitude
	metersLng float64 // meters per degree longitude at mid latitude
}

// NewSpatialIndex builds a grid index over g with approximately the given
// cell size in meters. cellMeters must be positive; typical values are
// 200–500 m.
func NewSpatialIndex(g *Graph, cellMeters float64) *SpatialIndex {
	min, max := g.Bounds()
	midLat := (min.Lat + max.Lat) / 2
	mLat := geo.EarthRadiusMeters * math.Pi / 180
	mLng := mLat * math.Cos(midLat*math.Pi/180)
	if mLng < 1 {
		mLng = 1
	}
	cellLat := cellMeters / mLat
	cellLng := cellMeters / mLng
	rows := int((max.Lat-min.Lat)/cellLat) + 1
	cols := int((max.Lng-min.Lng)/cellLng) + 1
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	idx := &SpatialIndex{
		g:         g,
		minLat:    min.Lat,
		minLng:    min.Lng,
		cellLat:   cellLat,
		cellLng:   cellLng,
		rows:      rows,
		cols:      cols,
		cells:     make([][]VertexID, rows*cols),
		metersLat: mLat,
		metersLng: mLng,
	}
	for v := 0; v < g.NumVertices(); v++ {
		c := idx.cellOf(g.Point(VertexID(v)))
		idx.cells[c] = append(idx.cells[c], VertexID(v))
	}
	return idx
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (idx *SpatialIndex) cellOf(p geo.Point) int {
	r := int((p.Lat - idx.minLat) / idx.cellLat)
	c := int((p.Lng - idx.minLng) / idx.cellLng)
	if r < 0 {
		r = 0
	}
	if r >= idx.rows {
		r = idx.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= idx.cols {
		c = idx.cols - 1
	}
	return r*idx.cols + c
}

// Rows and Cols report the grid dimensions (useful for diagnostics).
func (idx *SpatialIndex) Rows() int { return idx.rows }

// Cols reports the number of grid columns.
func (idx *SpatialIndex) Cols() int { return idx.cols }

// NearestVertex returns the graph vertex closest to p. It expands the ring
// of grid cells around p until a candidate is found, then widens once more
// to guarantee correctness near cell borders. ok is false only for an
// empty graph.
func (idx *SpatialIndex) NearestVertex(p geo.Point) (VertexID, bool) {
	if idx.g.NumVertices() == 0 {
		return Invalid, false
	}
	pr := clampInt(int((p.Lat-idx.minLat)/idx.cellLat), 0, idx.rows-1)
	pc := clampInt(int((p.Lng-idx.minLng)/idx.cellLng), 0, idx.cols-1)
	best := Invalid
	bestD := math.Inf(1)
	maxRing := idx.rows
	if idx.cols > maxRing {
		maxRing = idx.cols
	}
	foundRing := -1
	for ring := 0; ring <= maxRing; ring++ {
		if foundRing >= 0 && ring > foundRing+1 {
			break // one extra ring covers border effects
		}
		hit := false
		for r := pr - ring; r <= pr+ring; r++ {
			if r < 0 || r >= idx.rows {
				continue
			}
			for c := pc - ring; c <= pc+ring; c++ {
				if c < 0 || c >= idx.cols {
					continue
				}
				// Only the ring boundary; interior was scanned before.
				if ring > 0 && r != pr-ring && r != pr+ring && c != pc-ring && c != pc+ring {
					continue
				}
				for _, v := range idx.cells[r*idx.cols+c] {
					d := geo.Equirect(p, idx.g.Point(v))
					hit = true
					if d < bestD {
						bestD = d
						best = v
					}
				}
			}
		}
		if hit && foundRing < 0 {
			foundRing = ring
		}
	}
	return best, best != Invalid
}

// VerticesWithin returns all vertices within radiusMeters of p. The result
// order is deterministic (grid scan order).
func (idx *SpatialIndex) VerticesWithin(p geo.Point, radiusMeters float64) []VertexID {
	if radiusMeters <= 0 {
		return nil
	}
	dr := int(radiusMeters/(idx.cellLat*idx.metersLat)) + 1
	dc := int(radiusMeters/(idx.cellLng*idx.metersLng)) + 1
	pr := int((p.Lat - idx.minLat) / idx.cellLat)
	pc := int((p.Lng - idx.minLng) / idx.cellLng)
	var out []VertexID
	for r := pr - dr; r <= pr+dr; r++ {
		if r < 0 || r >= idx.rows {
			continue
		}
		for c := pc - dc; c <= pc+dc; c++ {
			if c < 0 || c >= idx.cols {
				continue
			}
			for _, v := range idx.cells[r*idx.cols+c] {
				if geo.Equirect(p, idx.g.Point(v)) <= radiusMeters {
					out = append(out, v)
				}
			}
		}
	}
	return out
}
