package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// BenchmarkCHBuild measures contraction-hierarchy preprocessing on a
// mid-size city (~1.6k vertices) — small enough to rebuild every
// iteration, large enough that a regression in the node-ordering or
// witness-search logic shows up as a clear slowdown.
func BenchmarkCHBuild(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCH(g, 0)
	}
}

// chengduWorld is the Chengdu-scale routing substrate: a generated city
// matching the paper's road-network size (~214k vertices, ~720k edges).
// The graph and its hierarchy build once per process and are shared by
// every benchmark; with -count>1 the ~2.5-minute preprocessing cost is
// paid a single time.
var chengduWorld struct {
	once sync.Once
	g    *Graph
	ch   *CH
	err  error
}

func chengduScale(b *testing.B) (*Graph, *CH) {
	b.Helper()
	chengduWorld.once.Do(func() {
		cp := DefaultCityParams(463, 463)
		cp.Seed = 9
		g, err := GenerateCity(cp)
		if err != nil {
			chengduWorld.err = err
			return
		}
		chengduWorld.g = g
		chengduWorld.ch = BuildCH(g, 0)
	})
	if chengduWorld.err != nil {
		b.Fatal(chengduWorld.err)
	}
	return chengduWorld.g, chengduWorld.ch
}

// chengduPairs picks connected query pairs spread across the graph.
func chengduPairs(b *testing.B, g *Graph, ch *CH, n int) [][2]VertexID {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	nv := g.NumVertices()
	pairs := make([][2]VertexID, 0, n)
	for len(pairs) < n {
		s := VertexID(rng.Intn(nv))
		d := VertexID(rng.Intn(nv))
		if s == d || math.IsInf(ch.Cost(s, d), 1) {
			continue
		}
		pairs = append(pairs, [2]VertexID{s, d})
	}
	return pairs
}

// BenchmarkChengduCHRouting measures point-to-point routing on the
// Chengdu-scale graph across the three exact backends. The hierarchy
// settles a few hundred vertices where plain Dijkstra settles on the
// order of the whole graph, so backend=ch versus backend=dijkstra is the
// headline CH speedup at the paper's scale; backend=bidir is the
// DisableCH fallback. All three return bit-identical costs (pinned by
// TestCHExactOnCity), so the ratio is a pure performance comparison.
// The first run also reports the one-time preprocessing cost and
// shortcut count as informational metrics.
func BenchmarkChengduCHRouting(b *testing.B) {
	g, ch := chengduScale(b)
	pairs := chengduPairs(b, g, ch, 64)
	b.Run("backend=ch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, _, _, ok := ch.ShortestPath(p[0], p[1]); !ok {
				b.Fatal("unroutable pair")
			}
		}
		b.StopTimer()
		st := ch.Stats()
		b.ReportMetric(st.BuildSeconds, "build-s")
		b.ReportMetric(float64(st.Shortcuts), "shortcuts")
	})
	b.Run("backend=bidir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, _, ok := g.BidirectionalShortestPath(p[0], p[1]); !ok {
				b.Fatal("unroutable pair")
			}
		}
	})
	b.Run("backend=dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, _, ok := g.ShortestPath(p[0], p[1]); !ok {
				b.Fatal("unroutable pair")
			}
		}
	})
}
