package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// gridGraph builds an n x n bidirectional lattice with edge cost 100.
func gridGraph(n int) *Graph {
	g := NewGraph(n * n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			g.AddVertex(geo.Point{Lat: 30 + float64(r)*0.001, Lng: 104 + float64(c)*0.001})
		}
	}
	id := func(r, c int) VertexID { return VertexID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.AddEdge(id(r, c), id(r, c+1), 100)
				g.AddEdge(id(r, c+1), id(r, c), 100)
			}
			if r+1 < n {
				g.AddEdge(id(r, c), id(r+1, c), 100)
				g.AddEdge(id(r+1, c), id(r, c), 100)
			}
		}
	}
	return g
}

func TestSSSPLine(t *testing.T) {
	g := lineGraph(5)
	res := g.SSSP(0)
	for i := 0; i < 5; i++ {
		if res.Dist[i] != float64(i)*100 {
			t.Fatalf("Dist[%d] = %v", i, res.Dist[i])
		}
	}
	if res.Parent[0] != Invalid {
		t.Fatal("source parent not Invalid")
	}
	path := res.PathTo(4)
	want := []VertexID{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := lineGraph(3)
	res := g.SSSP(2) // no edges out of 2
	if res.Reachable(0) || res.Reachable(1) {
		t.Fatal("reported unreachable vertices as reachable")
	}
	if res.PathTo(0) != nil {
		t.Fatal("PathTo returned non-nil for unreachable vertex")
	}
}

func TestShortestPathGrid(t *testing.T) {
	g := gridGraph(5)
	cost, path, ok := g.ShortestPath(0, VertexID(24)) // corner to corner
	if !ok {
		t.Fatal("no path found")
	}
	if cost != 800 { // 4 right + 4 down, 100 each
		t.Fatalf("cost = %v, want 800", cost)
	}
	if len(path) != 9 {
		t.Fatalf("path len = %d, want 9", len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 24 {
		t.Fatalf("path endpoints = %v", path)
	}
	// Every hop must be an actual edge.
	if c, err := g.PathCost(path); err != nil || c != cost {
		t.Fatalf("PathCost(path) = %v, %v", c, err)
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	g := gridGraph(3)
	cost, path, ok := g.ShortestPath(4, 4)
	if !ok || cost != 0 || len(path) != 1 || path[0] != 4 {
		t.Fatalf("self path = %v %v %v", cost, path, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := lineGraph(3)
	if _, _, ok := g.ShortestPath(2, 0); ok {
		t.Fatal("found path against edge direction")
	}
}

func TestShortestPathMatchesSSSP(t *testing.T) {
	g := gridGraph(8)
	rng := rand.New(rand.NewSource(7))
	res := g.SSSP(0)
	for i := 0; i < 30; i++ {
		dst := VertexID(rng.Intn(g.NumVertices()))
		cost, _, ok := g.ShortestPath(0, dst)
		if !ok {
			t.Fatalf("unreachable %d in connected grid", dst)
		}
		if math.Abs(cost-res.Dist[dst]) > 1e-9 {
			t.Fatalf("ShortestPath=%v SSSP=%v for dst %d", cost, res.Dist[dst], dst)
		}
	}
}

func TestRestrictedShortestPath(t *testing.T) {
	g := gridGraph(3)
	// Block the centre vertex (4): 0 -> 8 must route around it.
	cost, path, ok := g.RestrictedShortestPath(0, 8, func(v VertexID) bool { return v != 4 })
	if !ok {
		t.Fatal("no restricted path")
	}
	if cost != 400 {
		t.Fatalf("restricted cost = %v, want 400", cost)
	}
	for _, v := range path {
		if v == 4 {
			t.Fatal("restricted path used blocked vertex")
		}
	}
}

func TestRestrictedShortestPathEndpointsAlwaysAllowed(t *testing.T) {
	g := gridGraph(3)
	// allowed rejects everything; src and dst must still be usable, and a
	// path exists only if they are adjacent.
	_, _, ok := g.RestrictedShortestPath(0, 1, func(VertexID) bool { return false })
	if !ok {
		t.Fatal("adjacent src->dst should be reachable when everything else is blocked")
	}
	if _, _, ok := g.RestrictedShortestPath(0, 8, func(VertexID) bool { return false }); ok {
		t.Fatal("found path through fully blocked interior")
	}
}

// TestRestrictedShortestPathExcludedDestination pins the endpoint
// override: an allowed set that excludes the destination (and only the
// destination) must not make it unreachable — src and dst are usable by
// definition, so the result matches the unrestricted query bit for bit.
func TestRestrictedShortestPathExcludedDestination(t *testing.T) {
	p := DefaultCityParams(8, 8)
	p.Seed = 17
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := VertexID(3), VertexID(g.NumVertices()-2)
	want, wantPath, wok := g.ShortestPath(src, dst)
	if !wok {
		t.Fatalf("%d->%d unreachable in connected city", src, dst)
	}
	got, path, ok := g.RestrictedShortestPath(src, dst, func(v VertexID) bool { return v != dst })
	if !ok {
		t.Fatal("excluding the destination from the allowed set made it unreachable")
	}
	if got != want {
		t.Fatalf("restricted cost %v != unrestricted %v", got, want)
	}
	if len(path) != len(wantPath) || path[len(path)-1] != dst {
		t.Fatalf("restricted path %v, want %v", path, wantPath)
	}
}

// TestWeightedShortestPathZeroWeights pins the degenerate weighting: an
// all-zero vertex weight function must reduce WeightedShortestPath to the
// plain shortest path, bit for bit, with and without an allowed set.
func TestWeightedShortestPathZeroWeights(t *testing.T) {
	p := DefaultCityParams(8, 8)
	p.Seed = 18
	g, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	zero := func(VertexID) float64 { return 0 }
	rng := rand.New(rand.NewSource(18))
	n := g.NumVertices()
	for i := 0; i < 25; i++ {
		src := VertexID(rng.Intn(n))
		dst := VertexID(rng.Intn(n))
		want, wantPath, wok := g.ShortestPath(src, dst)
		got, path, ok := g.WeightedShortestPath(src, dst, nil, zero)
		if ok != wok {
			t.Fatalf("(%d,%d): weighted ok=%v plain ok=%v", src, dst, ok, wok)
		}
		if !ok {
			continue
		}
		if got != want || len(path) != len(wantPath) {
			t.Fatalf("(%d,%d): zero-weight cost %v (len %d), plain %v (len %d)",
				src, dst, got, len(path), want, len(wantPath))
		}
		allowAll := func(VertexID) bool { return true }
		if got2, _, ok2 := g.WeightedShortestPath(src, dst, allowAll, zero); !ok2 || got2 != got {
			t.Fatalf("(%d,%d): allowed-set variant diverged: %v vs %v", src, dst, got2, got)
		}
	}
}

func TestWeightedShortestPathSteersAroundWeights(t *testing.T) {
	// Two parallel 2-hop routes 0->1->3 and 0->2->3 with equal edge costs;
	// a large vertex weight on 1 must push the path through 2.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(geo.Point{Lat: 30, Lng: 104 + float64(i)*0.001})
	}
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 3, 100)
	g.AddEdge(0, 2, 100)
	g.AddEdge(2, 3, 100)
	w := func(v VertexID) float64 {
		if v == 1 {
			return 1000
		}
		return 0
	}
	_, path, ok := g.WeightedShortestPath(0, 3, nil, w)
	if !ok {
		t.Fatal("no weighted path")
	}
	for _, v := range path {
		if v == 1 {
			t.Fatal("weighted path went through penalised vertex")
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(15, 15))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		dc, _, dok := g.ShortestPath(src, dst)
		ac, apath, aok := g.AStar(src, dst)
		if dok != aok {
			t.Fatalf("reachability disagreement src=%d dst=%d", src, dst)
		}
		if !dok {
			continue
		}
		if math.Abs(dc-ac) > 1e-6 {
			t.Fatalf("A* cost %v != Dijkstra cost %v (src=%d dst=%d)", ac, dc, src, dst)
		}
		if c, err := g.PathCost(apath); err != nil || math.Abs(c-ac) > 1e-6 {
			t.Fatalf("A* path inconsistent: %v %v", c, err)
		}
	}
}

func TestReverseSSSPLine(t *testing.T) {
	// The line graph is directed 0→1→2→3→4, so the reverse tree from the
	// sink holds distances *into* it and the source is unreachable from
	// everything.
	g := lineGraph(5)
	res := g.ReverseSSSP(4)
	for i := 0; i < 5; i++ {
		if want := float64(4-i) * 100; res.Dist[i] != want {
			t.Fatalf("ReverseSSSP Dist[%d] = %v, want %v", i, res.Dist[i], want)
		}
	}
	from0 := g.ReverseSSSP(0)
	if from0.Reachable(1) || from0.Reachable(4) {
		t.Fatal("ReverseSSSP(0) reports vertices that cannot reach 0 as reachable")
	}
}

func TestReverseSSSPMatchesForward(t *testing.T) {
	// d(v → src) from the reverse tree must equal SSSP(v).Dist[src] for
	// every vertex, including on a graph with asymmetric costs.
	g := gridGraph(5)
	rng := rand.New(rand.NewSource(17))
	// Perturb: add a few one-way shortcuts so forward and reverse
	// distances genuinely differ.
	n := g.NumVertices()
	for i := 0; i < 10; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, 50+rng.Float64()*200)
		}
	}
	for _, src := range []VertexID{0, VertexID(n / 2), VertexID(n - 1)} {
		rev := g.ReverseSSSP(src)
		for v := 0; v < n; v++ {
			want := g.SSSP(VertexID(v)).Dist[src]
			if rev.Dist[v] != want && !(math.IsInf(rev.Dist[v], 1) && math.IsInf(want, 1)) {
				t.Fatalf("ReverseSSSP(%d).Dist[%d] = %v, forward %v", src, v, rev.Dist[v], want)
			}
		}
	}
}

func TestSSSPTriangleInequalityProperty(t *testing.T) {
	// For any u, v, w: dist(u,w) <= dist(u,v) + dist(v,w).
	g := gridGraph(6)
	n := g.NumVertices()
	trees := make([]*SSSPResult, n)
	for v := 0; v < n; v++ {
		trees[v] = g.SSSP(VertexID(v))
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		u, v, w := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if trees[u].Dist[w] > trees[u].Dist[v]+trees[v].Dist[w]+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v + %v",
				u, w, trees[u].Dist[w], trees[u].Dist[v], trees[v].Dist[w])
		}
	}
}

func BenchmarkSSSPCity(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SSSP(VertexID(i % g.NumVertices()))
	}
}

func BenchmarkPointToPointDijkstra(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = g.ShortestPath(VertexID(i%n), VertexID((i*7919)%n))
	}
}

func BenchmarkAStar(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = g.AStar(VertexID(i%n), VertexID((i*7919)%n))
	}
}
