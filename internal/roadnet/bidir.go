package roadnet

import (
	"container/heap"
	"math"
)

// BidirectionalShortestPath runs Dijkstra simultaneously from src (over
// outgoing arcs) and dst (over incoming arcs), meeting in the middle. On
// city-scale graphs it explores roughly half the vertices of plain
// point-to-point Dijkstra, which matters for the cold paths the Router
// cache does not cover.
func (g *Graph) BidirectionalShortestPath(src, dst VertexID) (float64, []VertexID, bool) {
	if src == dst {
		return 0, []VertexID{src}, true
	}
	type side struct {
		dist   map[VertexID]float64
		parent map[VertexID]VertexID
		queue  pq
	}
	fwd := &side{dist: map[VertexID]float64{src: 0}, parent: map[VertexID]VertexID{}, queue: pq{{v: src}}}
	bwd := &side{dist: map[VertexID]float64{dst: 0}, parent: map[VertexID]VertexID{}, queue: pq{{v: dst}}}

	best := math.Inf(1)
	var meet VertexID = Invalid

	expand := func(s, other *side, arcs func(VertexID) []Arc) {
		if len(s.queue) == 0 {
			return
		}
		it := heap.Pop(&s.queue).(pqItem)
		if d, ok := s.dist[it.v]; ok && it.prio > d {
			return
		}
		for _, a := range arcs(it.v) {
			nd := it.prio + a.Cost
			if d, seen := s.dist[a.To]; !seen || nd < d {
				s.dist[a.To] = nd
				s.parent[a.To] = it.v
				heap.Push(&s.queue, pqItem{v: a.To, prio: nd})
			}
			if od, seen := other.dist[a.To]; seen {
				if total := nd + od; total < best {
					best = total
					meet = a.To
				}
			}
		}
	}

	for len(fwd.queue) > 0 || len(bwd.queue) > 0 {
		// Termination: when the smallest keys on both frontiers can no
		// longer improve the best meeting, stop.
		fMin, bMin := math.Inf(1), math.Inf(1)
		if len(fwd.queue) > 0 {
			fMin = fwd.queue[0].prio
		}
		if len(bwd.queue) > 0 {
			bMin = bwd.queue[0].prio
		}
		if fMin+bMin >= best {
			break
		}
		if fMin <= bMin {
			expand(fwd, bwd, g.Out)
		} else {
			expand(bwd, fwd, func(v VertexID) []Arc { return g.In(v) })
		}
	}
	if meet == Invalid {
		return 0, nil, false
	}
	// Stitch the two half-paths.
	var rev []VertexID
	for u := meet; ; {
		rev = append(rev, u)
		if u == src {
			break
		}
		p, ok := fwd.parent[u]
		if !ok {
			break
		}
		u = p
	}
	path := make([]VertexID, 0, len(rev)+8)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	for u := meet; u != dst; {
		p, ok := bwd.parent[u]
		if !ok {
			break
		}
		path = append(path, p)
		u = p
	}
	return best, path, true
}

// ALT is an A*-with-landmarks router: it precomputes forward and backward
// distance vectors from a handful of landmark vertices and uses the
// triangle inequality |d(L,t) − d(L,v)| ≤ d(v,t) as an admissible,
// usually much tighter heuristic than the straight-line distance. It is
// the classic middle ground between plain Dijkstra and a full all-pairs
// table — the paper's assumed O(1) query cache made concrete at bounded
// memory.
type ALT struct {
	g    *Graph
	from [][]float64 // from[i][v] = dist(landmark_i, v)
	to   [][]float64 // to[i][v]   = dist(v, landmark_i)
}

// NewALT builds an ALT router over the given landmark vertices. Costs are
// 16·len(landmarks) bytes per graph vertex.
func NewALT(g *Graph, landmarks []VertexID) *ALT {
	alt := &ALT{g: g}
	rev := reverseGraph(g)
	for _, l := range landmarks {
		alt.from = append(alt.from, g.SSSP(l).Dist)
		alt.to = append(alt.to, rev.SSSP(l).Dist)
	}
	return alt
}

// reverseGraph builds the graph with every arc flipped.
func reverseGraph(g *Graph) *Graph {
	r := NewGraph(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		r.AddVertex(g.Point(VertexID(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Out(VertexID(v)) {
			r.AddEdge(a.To, VertexID(v), a.Cost)
		}
	}
	return r
}

// heuristic returns a lower bound on dist(v, t).
func (alt *ALT) heuristic(v, t VertexID) float64 {
	var h float64
	for i := range alt.from {
		// d(L,t) − d(L,v) ≤ d(v,t)  and  d(v,L) − d(t,L) ≤ d(v,t)
		if b := alt.from[i][t] - alt.from[i][v]; b > h {
			h = b
		}
		if b := alt.to[i][v] - alt.to[i][t]; b > h {
			h = b
		}
	}
	return h
}

// ShortestPath answers a point-to-point query with landmark-guided A*.
func (alt *ALT) ShortestPath(src, dst VertexID) (float64, []VertexID, bool) {
	g := alt.g
	if src == dst {
		return 0, []VertexID{src}, true
	}
	dist := make(map[VertexID]float64, 256)
	parent := make(map[VertexID]VertexID, 256)
	dist[src] = 0
	q := pq{{v: src, prio: alt.heuristic(src, dst)}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		d := dist[it.v]
		if it.prio > d+alt.heuristic(it.v, dst)+1e-9 {
			continue
		}
		if it.v == dst {
			return d, reconstruct(parent, src, dst), true
		}
		for _, a := range g.Out(it.v) {
			nd := d + a.Cost
			if old, seen := dist[a.To]; !seen || nd < old {
				dist[a.To] = nd
				parent[a.To] = it.v
				heap.Push(&q, pqItem{v: a.To, prio: nd + alt.heuristic(a.To, dst)})
			}
		}
	}
	return 0, nil, false
}

// MemoryBytes reports the precomputed table size.
func (alt *ALT) MemoryBytes() int64 {
	var b int64
	for i := range alt.from {
		b += int64(len(alt.from[i])+len(alt.to[i])) * 8
	}
	return b
}
