package roadnet

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func TestNearestVertexExact(t *testing.T) {
	g := gridGraph(5)
	idx := NewSpatialIndex(g, 150)
	for v := 0; v < g.NumVertices(); v++ {
		got, ok := idx.NearestVertex(g.Point(VertexID(v)))
		if !ok || got != VertexID(v) {
			t.Fatalf("NearestVertex of vertex %d point = %d, %v", v, got, ok)
		}
	}
}

func TestNearestVertexBruteForceAgreement(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	idx := NewSpatialIndex(g, 200)
	rng := rand.New(rand.NewSource(5))
	min, max := g.Bounds()
	for i := 0; i < 100; i++ {
		p := geo.Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
		got, ok := idx.NearestVertex(p)
		if !ok {
			t.Fatal("no nearest vertex")
		}
		// Brute force.
		best := Invalid
		bestD := -1.0
		for v := 0; v < g.NumVertices(); v++ {
			d := geo.Equirect(p, g.Point(VertexID(v)))
			if best == Invalid || d < bestD {
				best, bestD = VertexID(v), d
			}
		}
		gotD := geo.Equirect(p, g.Point(got))
		if gotD > bestD+1e-9 {
			t.Fatalf("NearestVertex %d at %v m, brute force %d at %v m", got, gotD, best, bestD)
		}
	}
}

func TestNearestVertexOutsideBounds(t *testing.T) {
	g := gridGraph(4)
	idx := NewSpatialIndex(g, 100)
	// A point far outside the grid must still snap to something.
	if _, ok := idx.NearestVertex(geo.Point{Lat: 31, Lng: 105}); !ok {
		t.Fatal("NearestVertex failed outside bounds")
	}
}

func TestNearestVertexEmptyGraph(t *testing.T) {
	g := NewGraph(0)
	g.AddVertex(geo.Point{Lat: 30, Lng: 104}) // index needs >= 1 vertex for bounds
	idx := NewSpatialIndex(g, 100)
	if v, ok := idx.NearestVertex(geo.Point{Lat: 30, Lng: 104}); !ok || v != 0 {
		t.Fatalf("singleton NearestVertex = %d, %v", v, ok)
	}
}

func TestVerticesWithinMatchesBruteForce(t *testing.T) {
	g, err := GenerateCity(DefaultCityParams(12, 12))
	if err != nil {
		t.Fatal(err)
	}
	idx := NewSpatialIndex(g, 180)
	rng := rand.New(rand.NewSource(9))
	min, max := g.Bounds()
	for i := 0; i < 30; i++ {
		p := geo.Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
		radius := 100 + rng.Float64()*800
		got := idx.VerticesWithin(p, radius)
		var want []VertexID
		for v := 0; v < g.NumVertices(); v++ {
			if geo.Equirect(p, g.Point(VertexID(v))) <= radius {
				want = append(want, VertexID(v))
			}
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Fatalf("VerticesWithin size %d, brute force %d (radius %v)", len(got), len(want), radius)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("VerticesWithin mismatch at %d: %d vs %d", j, got[j], want[j])
			}
		}
	}
}

func TestVerticesWithinZeroRadius(t *testing.T) {
	g := gridGraph(3)
	idx := NewSpatialIndex(g, 100)
	if vs := idx.VerticesWithin(g.Point(0), 0); vs != nil {
		t.Fatalf("zero radius returned %v", vs)
	}
}

func TestSpatialIndexDimensions(t *testing.T) {
	g := gridGraph(10)
	idx := NewSpatialIndex(g, 100)
	if idx.Rows() < 1 || idx.Cols() < 1 {
		t.Fatalf("degenerate grid %dx%d", idx.Rows(), idx.Cols())
	}
}

func BenchmarkNearestVertex(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	idx := NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 1024)
	for i := range pts {
		pts[i] = geo.Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = idx.NearestVertex(pts[i%len(pts)])
	}
}

func BenchmarkVerticesWithin(b *testing.B) {
	g, err := GenerateCity(DefaultCityParams(40, 40))
	if err != nil {
		b.Fatal(err)
	}
	idx := NewSpatialIndex(g, 250)
	center := geo.Point{Lat: 30.6587, Lng: 104.0648}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.VerticesWithin(center, 2500)
	}
}
