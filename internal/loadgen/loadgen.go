// Package loadgen is the open-loop load harness for mtshare-server: a
// seeded Poisson arrival schedule at a target request rate, shaped by
// the same workload scenarios the simulation studies (uniform, concert
// surge, spatial hotspot, demand changeover), fired at the server
// without waiting for responses.
//
// Open-loop is the load-testing discipline here: arrival times come
// from the schedule alone, never from request completions, so a slow
// server faces the arrival rate it would face in production and its
// queueing delay is *observed* instead of silently throttled away (the
// coordinated-omission trap of closed-loop clients). The schedule is a
// pure function of the config — same seed, same byte stream — so runs
// are comparable and the schedule itself is unit-testable without a
// socket in sight.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Shape names the demand scenario a schedule follows.
type Shape string

const (
	// ShapeUniform is steady Poisson traffic with uniform endpoints.
	ShapeUniform Shape = "uniform"
	// ShapeSurge multiplies the arrival rate inside a window and pulls
	// the window's origins toward a venue point — the concert-exit spike.
	ShapeSurge Shape = "surge"
	// ShapeHotspot keeps the rate flat but concentrates a fraction of
	// origins in a small disc — localized demand pressure.
	ShapeHotspot Shape = "hotspot"
	// ShapeShift moves the demand's home region at mid-run — the
	// client-side analog of a shift changeover, stressing re-dispatch
	// as the fleet's plans go stale.
	ShapeShift Shape = "shift"
)

// Shapes lists the valid Shape values, for flag validation.
func Shapes() []Shape {
	return []Shape{ShapeUniform, ShapeSurge, ShapeHotspot, ShapeShift}
}

// Bounds is the server city's bounding box, as reported by /v1/stats.
type Bounds struct {
	MinLat, MinLng, MaxLat, MaxLng float64
}

// Valid reports whether the box is non-degenerate.
func (b Bounds) Valid() bool {
	return b.MinLat < b.MaxLat && b.MinLng < b.MaxLng
}

func (b Bounds) lerp(fLat, fLng float64) (lat, lng float64) {
	return b.MinLat + fLat*(b.MaxLat-b.MinLat), b.MinLng + fLng*(b.MaxLng-b.MinLng)
}

// Config parameterizes a schedule.
type Config struct {
	// RPS is the steady-state offered arrival rate.
	RPS float64
	// Duration is the schedule's span.
	Duration time.Duration
	Seed     int64
	Shape    Shape
	Bounds   Bounds
	// Rho is the flexibility factor each ride request carries (the
	// server's 1.3 default applies when 0; values below 1.05 are the
	// server's to reject).
	Rho float64

	// SurgeMultiplier scales the rate inside [SurgeStartFrac,
	// SurgeEndFrac]·Duration (defaults 3.0, 0.4, 0.6).
	SurgeMultiplier              float64
	SurgeStartFrac, SurgeEndFrac float64
	// HotspotFrac of origins land in a disc of HotspotRadiusFrac of the
	// box around (0.25, 0.25) (defaults 0.7, 0.1).
	HotspotFrac, HotspotRadiusFrac float64
}

func (c *Config) defaults() error {
	if c.RPS <= 0 {
		return fmt.Errorf("loadgen: RPS must be positive, got %g", c.RPS)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	}
	if !c.Bounds.Valid() {
		return fmt.Errorf("loadgen: degenerate bounds %+v", c.Bounds)
	}
	if c.Shape == "" {
		c.Shape = ShapeUniform
	}
	switch c.Shape {
	case ShapeUniform, ShapeSurge, ShapeHotspot, ShapeShift:
	default:
		return fmt.Errorf("loadgen: unknown shape %q", c.Shape)
	}
	if c.SurgeMultiplier <= 0 {
		c.SurgeMultiplier = 3
	}
	if c.SurgeEndFrac <= c.SurgeStartFrac {
		c.SurgeStartFrac, c.SurgeEndFrac = 0.4, 0.6
	}
	if c.HotspotFrac <= 0 || c.HotspotFrac > 1 {
		c.HotspotFrac = 0.7
	}
	if c.HotspotRadiusFrac <= 0 {
		c.HotspotRadiusFrac = 0.1
	}
	return nil
}

// Request is one scheduled arrival: fire Body at Method Path when the
// run's clock reaches At.
type Request struct {
	At     time.Duration   `json:"at_nanos"`
	Method string          `json:"method"`
	Path   string          `json:"path"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// rideBody is the POST /v1/requests payload. Field order is fixed by
// the struct so the encoded schedule is byte-stable.
type rideBody struct {
	Pickup  pointBody `json:"pickup"`
	Dropoff pointBody `json:"dropoff"`
	Rho     float64   `json:"rho,omitempty"`
}

type pointBody struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// rate is the instantaneous arrival rate at time t into the schedule.
func (c *Config) rate(t time.Duration) float64 {
	if c.Shape == ShapeSurge {
		f := float64(t) / float64(c.Duration)
		if f >= c.SurgeStartFrac && f < c.SurgeEndFrac {
			return c.RPS * c.SurgeMultiplier
		}
	}
	return c.RPS
}

// peakRate bounds rate(t) for thinning.
func (c *Config) peakRate() float64 {
	if c.Shape == ShapeSurge {
		return c.RPS * c.SurgeMultiplier
	}
	return c.RPS
}

// endpoints draws one request's pickup and dropoff for arrival time t.
// All randomness comes from rng, consumed in a fixed order per call so
// the schedule stays deterministic.
func (c *Config) endpoints(rng *rand.Rand, t time.Duration) (pickup, dropoff pointBody) {
	f := float64(t) / float64(c.Duration)
	oLatF, oLngF := rng.Float64(), rng.Float64()
	dLatF, dLngF := rng.Float64(), rng.Float64()
	aux1, aux2 := rng.Float64(), rng.Float64()
	switch c.Shape {
	case ShapeSurge:
		// Inside the window, origins cluster near the venue at (0.5, 0.5):
		// everyone leaves the same place at once.
		if f >= c.SurgeStartFrac && f < c.SurgeEndFrac {
			z1, z2 := gaussPair(aux1, aux2)
			oLatF = clamp01(0.5 + 0.08*z1)
			oLngF = clamp01(0.5 + 0.08*z2)
		}
	case ShapeHotspot:
		if aux1 < c.HotspotFrac {
			// Uniform in the disc around (0.25, 0.25).
			r := c.HotspotRadiusFrac * math.Sqrt(aux2)
			theta := 2 * math.Pi * oLatF
			oLatF = clamp01(0.25 + r*math.Sin(theta))
			oLngF = clamp01(0.25 + r*math.Cos(theta))
		}
	case ShapeShift:
		// Demand lives in the west half, then snaps to the east half at
		// mid-run; destinations stay city-wide.
		if f < 0.5 {
			oLngF *= 0.5
		} else {
			oLngF = 0.5 + oLngF*0.5
		}
	}
	oLat, oLng := c.Bounds.lerp(oLatF, oLngF)
	dLat, dLng := c.Bounds.lerp(dLatF, dLngF)
	return pointBody{oLat, oLng}, pointBody{dLat, dLng}
}

// gaussPair builds two independent standard normals from two uniforms
// (Box–Muller), keeping the rng draw count per request fixed regardless
// of shape.
func gaussPair(u1, u2 float64) (float64, float64) {
	if u1 <= 0 {
		u1 = 1e-12
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}

// Schedule generates the full arrival sequence: a thinned Poisson
// process at the shape's time-varying rate, each arrival carrying a
// ready-to-send ride request. Deterministic in Config alone.
func Schedule(cfg Config) ([]Request, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	peak := cfg.peakRate()
	var out []Request
	for t := time.Duration(0); ; {
		// Exponential inter-arrival at the peak rate, then thin to the
		// instantaneous rate — the standard non-homogeneous sampler.
		t += time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if t >= cfg.Duration {
			break
		}
		if rng.Float64() > cfg.rate(t)/peak {
			continue
		}
		pickup, dropoff := cfg.endpoints(rng, t)
		body, err := json.Marshal(rideBody{Pickup: pickup, Dropoff: dropoff, Rho: cfg.Rho})
		if err != nil {
			return nil, err
		}
		out = append(out, Request{At: t, Method: "POST", Path: "/v1/requests", Body: body})
	}
	return out, nil
}

// EncodeSchedule renders a schedule as JSONL, one request per line —
// the byte stream the determinism contract is stated over.
func EncodeSchedule(reqs []Request) ([]byte, error) {
	var buf []byte
	for _, r := range reqs {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf, nil
}
