package loadgen

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the schedule golden file")

func testBounds() Bounds {
	return Bounds{MinLat: 31.10, MinLng: 121.30, MaxLat: 31.20, MaxLng: 121.40}
}

func baseConfig(shape Shape) Config {
	return Config{RPS: 40, Duration: 30 * time.Second, Seed: 42, Shape: shape,
		Bounds: testBounds(), Rho: 1.8}
}

// TestScheduleDeterministicGolden is the determinism contract, stated
// over bytes: the same config must produce the identical JSONL stream,
// across calls and across checkouts (the golden file). Regenerate with
// go test ./internal/loadgen -update-golden after an intentional change.
func TestScheduleDeterministicGolden(t *testing.T) {
	reqs1, err := Schedule(baseConfig(ShapeSurge))
	if err != nil {
		t.Fatal(err)
	}
	reqs2, err := Schedule(baseConfig(ShapeSurge))
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := EncodeSchedule(reqs1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := EncodeSchedule(reqs2)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("two Schedule calls with the same config produced different bytes")
	}

	golden := filepath.Join("testdata", "schedule_surge_seed42.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, want) {
		t.Fatalf("schedule drifted from golden %s (%d vs %d bytes); rerun with -update-golden if intentional",
			golden, len(enc1), len(want))
	}
}

// TestScheduleSeedSensitivity: a different seed must actually produce a
// different stream, or the determinism test is vacuous.
func TestScheduleSeedSensitivity(t *testing.T) {
	cfg := baseConfig(ShapeUniform)
	a, _ := Schedule(cfg)
	cfg.Seed++
	b, _ := Schedule(cfg)
	ea, _ := EncodeSchedule(a)
	eb, _ := EncodeSchedule(b)
	if bytes.Equal(ea, eb) {
		t.Fatal("seed change did not change the schedule")
	}
}

// scheduleStats buckets arrivals for rate assertions.
func window(reqs []Request, from, to time.Duration) int {
	n := 0
	for _, r := range reqs {
		if r.At >= from && r.At < to {
			n++
		}
	}
	return n
}

func decodeBody(t *testing.T, r Request) rideBody {
	t.Helper()
	var b rideBody
	if err := json.Unmarshal(r.Body, &b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestScheduleInvariants pins the properties every shape shares:
// arrivals sorted and inside [0, Duration), bodies inside the bounds,
// total count near RPS·Duration, rho carried through.
func TestScheduleInvariants(t *testing.T) {
	for _, shape := range Shapes() {
		t.Run(string(shape), func(t *testing.T) {
			cfg := baseConfig(shape)
			reqs, err := Schedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			expected := cfg.RPS * cfg.Duration.Seconds()
			if shape == ShapeSurge {
				// The default window runs at 3× for 20% of the run.
				expected *= 1 + 0.2*(3-1)
			}
			if f := float64(len(reqs)) / expected; f < 0.7 || f > 1.3 {
				t.Fatalf("%d arrivals, want ~%.0f", len(reqs), expected)
			}
			b := cfg.Bounds
			for i, r := range reqs {
				if r.At < 0 || r.At >= cfg.Duration {
					t.Fatalf("arrival %d at %v outside [0,%v)", i, r.At, cfg.Duration)
				}
				if i > 0 && r.At < reqs[i-1].At {
					t.Fatalf("arrivals out of order at %d", i)
				}
				if r.Method != "POST" || r.Path != "/v1/requests" {
					t.Fatalf("arrival %d is %s %s", i, r.Method, r.Path)
				}
				body := decodeBody(t, r)
				for _, p := range []pointBody{body.Pickup, body.Dropoff} {
					if p.Lat < b.MinLat-1e-9 || p.Lat > b.MaxLat+1e-9 ||
						p.Lng < b.MinLng-1e-9 || p.Lng > b.MaxLng+1e-9 {
						t.Fatalf("arrival %d endpoint %+v outside bounds", i, p)
					}
				}
				if body.Rho != cfg.Rho {
					t.Fatalf("arrival %d rho %g, want %g", i, body.Rho, cfg.Rho)
				}
			}
		})
	}
}

// TestSurgeShape: the surge window must run well above the baseline
// rate and its origins must pull toward the venue.
func TestSurgeShape(t *testing.T) {
	cfg := baseConfig(ShapeSurge)
	cfg.Duration = 60 * time.Second
	reqs, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Duration
	inWindow := window(reqs, time.Duration(0.4*float64(d)), time.Duration(0.6*float64(d)))
	before := window(reqs, 0, time.Duration(0.4*float64(d)))
	rateIn := float64(inWindow) / (0.2 * d.Seconds())
	rateOut := float64(before) / (0.4 * d.Seconds())
	if rateIn < 2*rateOut {
		t.Fatalf("surge window rate %.1f/s vs baseline %.1f/s — no surge", rateIn, rateOut)
	}
	// Window origins concentrate near the venue (box center).
	cLat, cLng := cfg.Bounds.lerp(0.5, 0.5)
	near := 0
	total := 0
	for _, r := range reqs {
		f := float64(r.At) / float64(d)
		if f < 0.4 || f >= 0.6 {
			continue
		}
		total++
		body := decodeBody(t, r)
		if math.Abs(body.Pickup.Lat-cLat) < 0.25*(cfg.Bounds.MaxLat-cfg.Bounds.MinLat) &&
			math.Abs(body.Pickup.Lng-cLng) < 0.25*(cfg.Bounds.MaxLng-cfg.Bounds.MinLng) {
			near++
		}
	}
	if total == 0 || float64(near)/float64(total) < 0.8 {
		t.Fatalf("only %d/%d surge origins near the venue", near, total)
	}
}

// TestHotspotShape: a dominant fraction of origins in the configured disc.
func TestHotspotShape(t *testing.T) {
	cfg := baseConfig(ShapeHotspot)
	reqs, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hLat, hLng := cfg.Bounds.lerp(0.25, 0.25)
	rLat := 0.1 * (cfg.Bounds.MaxLat - cfg.Bounds.MinLat)
	rLng := 0.1 * (cfg.Bounds.MaxLng - cfg.Bounds.MinLng)
	in := 0
	for _, r := range reqs {
		body := decodeBody(t, r)
		dLat := (body.Pickup.Lat - hLat) / rLat
		dLng := (body.Pickup.Lng - hLng) / rLng
		if dLat*dLat+dLng*dLng <= 1+1e-9 {
			in++
		}
	}
	// 70% are drawn in-disc; uniform background adds a little more.
	if f := float64(in) / float64(len(reqs)); f < 0.6 {
		t.Fatalf("only %.0f%% of hotspot origins in the disc, want >= 60%%", f*100)
	}
}

// TestShiftShape: origins live west before mid-run and east after.
func TestShiftShape(t *testing.T) {
	cfg := baseConfig(ShapeShift)
	reqs, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := cfg.Bounds.MinLng + 0.5*(cfg.Bounds.MaxLng-cfg.Bounds.MinLng)
	for i, r := range reqs {
		body := decodeBody(t, r)
		early := float64(r.At) < 0.5*float64(cfg.Duration)
		if early && body.Pickup.Lng > mid+1e-9 {
			t.Fatalf("arrival %d before the changeover originates east of the midline", i)
		}
		if !early && body.Pickup.Lng < mid-1e-9 {
			t.Fatalf("arrival %d after the changeover originates west of the midline", i)
		}
	}
}

// TestConfigValidation gates the bad configs.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero rps":      {Duration: time.Second, Bounds: testBounds()},
		"zero duration": {RPS: 1, Bounds: testBounds()},
		"bad bounds":    {RPS: 1, Duration: time.Second},
		"bad shape":     {RPS: 1, Duration: time.Second, Bounds: testBounds(), Shape: "wavy"},
	} {
		if _, err := Schedule(cfg); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestCollectorQuantilesAndSLO pins the exact order statistics and the
// SLO verdicts, including the unconditional bare-429 violation.
func TestCollectorQuantilesAndSLO(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Observe("requests", time.Duration(i)*time.Millisecond, 200, false)
	}
	c.Observe("requests", 500*time.Millisecond, 429, true)
	c.Observe("requests", time.Millisecond, 429, false) // bare shed: protocol bug
	c.Observe("requests", time.Millisecond, 500, false)
	c.ObserveTransportError("requests")

	reps := c.Report()
	if len(reps) != 1 {
		t.Fatalf("%d routes, want 1", len(reps))
	}
	r := reps[0]
	if r.OK != 100 || r.Shed != 2 || r.Errors != 1 || r.TransportErrors != 1 || r.ShedNoRetryAfter != 1 {
		t.Fatalf("tallies: %+v", r)
	}
	// 103 samples sorted: 1,1,1,2..100,500ms. Nearest-rank p50 = index 51.
	if r.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", r.P50)
	}
	if r.Max != 500*time.Millisecond {
		t.Fatalf("max = %v", r.Max)
	}

	v := SLO{MaxP99: time.Second, MaxErrorFrac: 0.05, MaxShedFrac: 0.05}.Check(reps)
	if len(v) != 1 {
		t.Fatalf("want exactly the bare-429 violation, got %v", v)
	}
	v = SLO{MaxP99: time.Millisecond}.Check(reps)
	if len(v) < 2 {
		t.Fatalf("tight SLO must flag p99 and errors, got %v", v)
	}
}

// TestRunOpenLoop fires a small schedule at a stub server and checks
// the open-loop property: a stalled server cannot slow the arrival
// rate, so all requests overlap despite a per-request handler delay far
// longer than the inter-arrival gap.
func TestRunOpenLoop(t *testing.T) {
	const n = 20
	var inFlight, peak atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(300 * time.Millisecond) // far beyond the 10ms spacing
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	sched := make([]Request, n)
	for i := range sched {
		sched[i] = Request{At: time.Duration(i) * 10 * time.Millisecond,
			Method: "POST", Path: "/v1/requests", Body: json.RawMessage(`{}`)}
	}
	c := NewCollector()
	if err := Run(t.Context(), nil, srv.URL, sched, c); err != nil {
		t.Fatal(err)
	}
	reps := c.Report()
	if len(reps) != 1 || reps[0].Count != n || reps[0].OK != n {
		t.Fatalf("report: %+v", reps)
	}
	// A closed-loop client would cap concurrency at 1; open-loop must
	// overlap nearly everything.
	if p := peak.Load(); p < n/2 {
		t.Fatalf("peak concurrency %d — arrivals waited on completions (closed loop)", p)
	}
}
