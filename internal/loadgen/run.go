package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Run fires the schedule at baseURL open-loop: each request launches at
// t0+At on its own goroutine whether or not earlier ones came back, so
// server-side queueing shows up as client-observed latency instead of a
// reduced arrival rate. Blocks until every response (or transport
// error) is in. The context cancels the remaining sends, not the ones
// already in flight.
func Run(ctx context.Context, client *http.Client, baseURL string, schedule []Request, c *Collector) error {
	if client == nil {
		client = http.DefaultClient
	}
	baseURL = strings.TrimRight(baseURL, "/")
	t0 := time.Now()
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, req := range schedule {
		wait := req.At - time.Since(t0)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				wg.Wait()
				return ctx.Err()
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return ctx.Err()
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			fire(ctx, client, baseURL, req, c)
		}(req)
	}
	wg.Wait()
	return nil
}

// routeOf maps a request path to its SLO route name (the path's last
// versioned segment, matching the server's histogram labels).
func routeOf(path string) string {
	p := strings.TrimPrefix(path, "/v1/")
	if i := strings.IndexAny(p, "?/"); i >= 0 {
		p = p[:i]
	}
	return p
}

func fire(ctx context.Context, client *http.Client, baseURL string, req Request, c *Collector) {
	route := routeOf(req.Path)
	hr, err := http.NewRequestWithContext(ctx, req.Method, baseURL+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		c.ObserveTransportError(route)
		return
	}
	if len(req.Body) > 0 {
		hr.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(hr)
	if err != nil {
		c.ObserveTransportError(route)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	c.Observe(route, time.Since(start), resp.StatusCode, resp.Header.Get("Retry-After") != "")
}

// FetchBounds asks a running server for its city bounding box via
// GET /v1/stats — the sampling box every schedule draws endpoints from.
func FetchBounds(client *http.Client, baseURL string) (Bounds, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/v1/stats")
	if err != nil {
		return Bounds{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Bounds{}, fmt.Errorf("loadgen: GET /v1/stats: %s", resp.Status)
	}
	var body struct {
		Bounds struct {
			Min struct{ Lat, Lng float64 } `json:"min"`
			Max struct{ Lat, Lng float64 } `json:"max"`
		} `json:"bounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Bounds{}, err
	}
	b := Bounds{MinLat: body.Bounds.Min.Lat, MinLng: body.Bounds.Min.Lng,
		MaxLat: body.Bounds.Max.Lat, MaxLng: body.Bounds.Max.Lng}
	if !b.Valid() {
		return Bounds{}, fmt.Errorf("loadgen: server reported degenerate bounds %+v", b)
	}
	return b, nil
}

// FetchServerSLO retrieves the server-side GET /v1/slo snapshot raw, so
// the CLI can print the bucketed server view next to the client one.
func FetchServerSLO(client *http.Client, baseURL string) (json.RawMessage, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/v1/slo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /v1/slo: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}
