package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector accumulates per-route client-observed outcomes. It keeps
// the raw latency samples, so the quantiles it reports are exact order
// statistics, not histogram interpolations — the client side of the SLO
// report, to set against the server's bucketed /v1/slo view.
type Collector struct {
	mu     sync.Mutex
	routes map[string]*routeAgg
}

type routeAgg struct {
	durations []time.Duration
	status    map[int]int
	// shedNoRetryAfter counts 429s missing the Retry-After header — a
	// protocol bug on the server's shed path, always an SLO violation.
	shedNoRetryAfter int
	transportErrors  int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{routes: make(map[string]*routeAgg)}
}

func (c *Collector) agg(route string) *routeAgg {
	a := c.routes[route]
	if a == nil {
		a = &routeAgg{status: make(map[int]int)}
		c.routes[route] = a
	}
	return a
}

// Observe records one completed request. hasRetryAfter only matters for
// status 429.
func (c *Collector) Observe(route string, d time.Duration, status int, hasRetryAfter bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.agg(route)
	a.durations = append(a.durations, d)
	a.status[status]++
	if status == 429 && !hasRetryAfter {
		a.shedNoRetryAfter++
	}
}

// ObserveTransportError records a request that never produced an HTTP
// status (connection refused, timeout).
func (c *Collector) ObserveTransportError(route string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agg(route).transportErrors++
}

// RouteReport is one route's client-side summary.
type RouteReport struct {
	Route            string        `json:"route"`
	Count            int           `json:"count"`
	P50              time.Duration `json:"p50_nanos"`
	P95              time.Duration `json:"p95_nanos"`
	P99              time.Duration `json:"p99_nanos"`
	Max              time.Duration `json:"max_nanos"`
	OK               int           `json:"ok_2xx"`
	Shed             int           `json:"shed_429"`
	ShedNoRetryAfter int           `json:"shed_429_no_retry_after"`
	Errors           int           `json:"errors"`
	TransportErrors  int           `json:"transport_errors"`
}

// ErrorFrac is the fraction of outcomes that were neither 2xx nor a
// well-formed shed.
func (r RouteReport) ErrorFrac() float64 {
	total := r.Count + r.TransportErrors
	if total == 0 {
		return 0
	}
	return float64(r.Errors+r.TransportErrors) / float64(total)
}

// ShedFrac is the fraction of outcomes the server refused with 429.
func (r RouteReport) ShedFrac() float64 {
	total := r.Count + r.TransportErrors
	if total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(total)
}

// Report summarizes every route, sorted by route name.
func (c *Collector) Report() []RouteReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RouteReport, 0, len(c.routes))
	for route, a := range c.routes {
		r := RouteReport{Route: route, Count: len(a.durations),
			ShedNoRetryAfter: a.shedNoRetryAfter, TransportErrors: a.transportErrors}
		ds := append([]time.Duration(nil), a.durations...)
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		if len(ds) > 0 {
			r.P50, r.P95, r.P99 = quantile(ds, 0.50), quantile(ds, 0.95), quantile(ds, 0.99)
			r.Max = ds[len(ds)-1]
		}
		for status, n := range a.status {
			switch {
			case status >= 200 && status < 300:
				r.OK += n
			case status == 429:
				r.Shed += n
			default:
				r.Errors += n
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// quantile is the nearest-rank order statistic over sorted samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SLO is the pass/fail contract a run is judged against.
type SLO struct {
	// MaxP99 bounds every route's client-observed p99; 0 disables.
	MaxP99 time.Duration
	// MaxErrorFrac bounds each route's non-2xx/non-429 fraction
	// (transport errors included).
	MaxErrorFrac float64
	// MaxShedFrac bounds each route's 429 fraction; a shed response
	// missing Retry-After violates unconditionally.
	MaxShedFrac float64
}

// Check returns one human-readable violation per breached bound, empty
// when the run met the SLO.
func (s SLO) Check(reports []RouteReport) []string {
	var v []string
	for _, r := range reports {
		if s.MaxP99 > 0 && r.P99 > s.MaxP99 {
			v = append(v, fmt.Sprintf("route %s: p99 %v exceeds SLO %v", r.Route, r.P99, s.MaxP99))
		}
		if ef := r.ErrorFrac(); ef > s.MaxErrorFrac {
			v = append(v, fmt.Sprintf("route %s: error fraction %.4f exceeds SLO %.4f (%d errors, %d transport)",
				r.Route, ef, s.MaxErrorFrac, r.Errors, r.TransportErrors))
		}
		if s.MaxShedFrac > 0 {
			if sf := r.ShedFrac(); sf > s.MaxShedFrac {
				v = append(v, fmt.Sprintf("route %s: shed fraction %.4f exceeds SLO %.4f (%d of %d)",
					r.Route, sf, s.MaxShedFrac, r.Shed, r.Count))
			}
		}
		if r.ShedNoRetryAfter > 0 {
			v = append(v, fmt.Sprintf("route %s: %d shed responses missing Retry-After", r.Route, r.ShedNoRetryAfter))
		}
	}
	return v
}

// FormatReport renders the per-route table plus the verdict, for the
// CLI's stdout.
func FormatReport(reports []RouteReport, violations []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %8s %8s %8s\n",
		"route", "count", "p50", "p95", "p99", "2xx", "429", "err")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-12s %8d %10v %10v %10v %8d %8d %8d\n",
			r.Route, r.Count, r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.OK, r.Shed, r.Errors+r.TransportErrors)
	}
	if len(violations) == 0 {
		b.WriteString("SLO: PASS\n")
	} else {
		b.WriteString("SLO: FAIL\n")
		for _, v := range violations {
			b.WriteString("  " + v + "\n")
		}
	}
	return b.String()
}
