package replay

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func validHeader() Header {
	return Header{Version: Version, Kind: KindSystem, Seed: 7, Rows: 12, Cols: 12}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := validHeader()
	h.GraphFingerprint = "00deadbeef00cafe"
	h.Faults = &FaultPlan{Seed: 3, UnreachableEvery: 9, CancelEvery: 7}
	enc, err := NewEncoder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{I: 0, AddTaxi: &AddTaxiEvent{At: Point{Lat: 30.1, Lng: 104.2}, Capacity: 3, Taxi: 1}},
		{I: 1, Request: &RequestEvent{
			Pickup: Point{Lat: 30.5, Lng: 104.5}, Dropoff: Point{Lat: 30.6, Lng: 104.6},
			Flexibility: 1.3,
			Out: RequestOutcome{
				Request: 1, Taxi: 1, Candidates: 4,
				DetourMeters: 123.456789012345, PickupETANanos: 42e9, DropoffETANanos: 99e9,
				FareEstimate: 7.25,
			},
		}},
		{I: 2, Hail: &HailEvent{Taxi: 2, Out: HailOutcome{Err: "no_taxi"}}},
		{I: 3, Tick: &TickEvent{DNanos: 30e9, Rides: []Ride{
			{Request: 1, Taxi: 1, Pickup: true, AtNanos: 12e9},
			{Request: 1, Taxi: 1, AtNanos: 29e9},
		}}},
		{I: 4, Metrics: &MetricsRecord{Counters: map[string]int64{"mtshare_match_dispatches_total": 1}}},
	}
	for _, ev := range events {
		enc.Encode(ev)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	gotH, gotEvs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		if gotH.Faults == nil || *gotH.Faults != *h.Faults {
			t.Fatalf("header fault plan did not round-trip: %+v", gotH.Faults)
		}
		gotH.Faults, h.Faults = nil, nil
		if gotH != h {
			t.Fatalf("header round-trip mismatch:\n got %+v\nwant %+v", gotH, h)
		}
	}
	if len(gotEvs) != len(events) {
		t.Fatalf("got %d events, want %d", len(gotEvs), len(events))
	}
	for i := range events {
		if ds := DiffEvents(&events[i], &gotEvs[i]); len(ds) != 0 {
			t.Fatalf("event %d did not round-trip: %v", i, ds)
		}
	}
	// Float fields must round-trip bit-exactly.
	if got := gotEvs[1].Request.Out.DetourMeters; got != 123.456789012345 {
		t.Fatalf("detour float not bit-exact: %v", got)
	}
}

func TestEncoderStableBytes(t *testing.T) {
	ev := Event{I: 4, Metrics: &MetricsRecord{Counters: map[string]int64{
		"b_counter": 2, "a_counter": 1, "c_counter": 3,
	}}}
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		enc, err := NewEncoder(w, validHeader())
		if err != nil {
			t.Fatal(err)
		}
		enc.Encode(ev)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two encodings of the same log differ:\n%s\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"a_counter":1,"b_counter":2,"c_counter":3`) {
		t.Fatalf("counter keys not sorted: %s", a.String())
	}
}

func TestEncoderRejectsBadHeader(t *testing.T) {
	if _, err := NewEncoder(io.Discard, Header{Version: 99, Kind: KindSystem}); err == nil {
		t.Fatal("version 99 accepted")
	}
	if _, err := NewEncoder(io.Discard, Header{Version: Version, Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n--
	return len(p), nil
}

func TestEncoderStickyError(t *testing.T) {
	enc, err := NewEncoder(&failWriter{n: 1}, validHeader())
	if err != nil {
		t.Fatal(err)
	}
	enc.Encode(Event{I: 0, Tick: &TickEvent{DNanos: 1}})
	if enc.Err() == nil {
		t.Fatal("write failure not captured")
	}
	enc.Encode(Event{I: 1, Tick: &TickEvent{DNanos: 1}}) // must be a no-op
	if enc.Close() == nil {
		t.Fatal("Close lost the sticky error")
	}
}

func TestDecoderErrors(t *testing.T) {
	for name, log := range map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": `{"version":9,"kind":"system"}` + "\n",
		"bad kind":    `{"version":2,"kind":"wat"}` + "\n",
		"bad event":   `{"version":2,"kind":"system"}` + "\n" + "garbage\n",
		"no payload":  `{"version":2,"kind":"system"}` + "\n" + `{"i":0}` + "\n",
		"bad faults":  `{"version":2,"kind":"system","faults":{"seed":1,"cancel_every":-2}}` + "\n",
	} {
		_, _, err := ReadAll(strings.NewReader(log))
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are tolerated.
	h, evs, err := ReadAll(strings.NewReader(
		"\n" + `{"version":2,"kind":"system","seed":1}` + "\n\n" + `{"i":0,"tick":{"d_ns":5}}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 1 || len(evs) != 1 || evs[0].Tick == nil {
		t.Fatalf("blank-line log misparsed: %+v %+v", h, evs)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
	good := FaultPlan{Seed: 1, UnreachableEvery: 5, LatencySpikeEvery: 4, LatencySpikeMs: 2, CancelEvery: 3, ShutdownAtEvent: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Active() {
		t.Fatal("plan with faults not active")
	}
	for name, p := range map[string]FaultPlan{
		"neg unreachable":  {UnreachableEvery: -1},
		"neg spike every":  {LatencySpikeEvery: -1},
		"neg spike ms":     {LatencySpikeMs: -1},
		"spike without ms": {LatencySpikeEvery: 3},
		"neg cancel":       {CancelEvery: -1},
		"neg shutdown":     {ShutdownAtEvent: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if (&FaultPlan{Seed: 5}).Active() {
		t.Fatal("seed-only plan should be inactive")
	}
}

func TestFaultDecisionsArePure(t *testing.T) {
	p := FaultPlan{Seed: 11, CancelEvery: 5}
	cancelled := 0
	for i := int64(0); i < 1000; i++ {
		a, b := p.CancelsEvent(i), p.CancelsEvent(i)
		if a != b {
			t.Fatalf("CancelsEvent(%d) not deterministic", i)
		}
		if a {
			cancelled++
		}
	}
	// ~1 in 5 with hash noise; just require the lottery actually fires
	// and doesn't fire always.
	if cancelled < 100 || cancelled > 350 {
		t.Fatalf("cancel rate off: %d/1000 for every=5", cancelled)
	}
	if (&FaultPlan{Seed: 11}).CancelsEvent(3) {
		t.Fatal("zero CancelEvery fired")
	}
}

func TestFaultShutdownAt(t *testing.T) {
	p := &FaultPlan{Seed: 1, ShutdownAtEvent: 4}
	for i, want := range []bool{false, false, false, false, true, true} {
		if got := p.ShutsDownAt(int64(i)); got != want {
			t.Fatalf("ShutsDownAt(%d) = %v, want %v", i, got, want)
		}
	}
	var nilPlan *FaultPlan
	if nilPlan.ShutsDownAt(99) {
		t.Fatal("nil plan shut down")
	}
}

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1 with unit costs.
func lineGraph(n int) *roadnet.Graph {
	g := roadnet.NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddVertex(geo.Point{Lat: float64(i) * 1e-4, Lng: 0})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(roadnet.VertexID(i), roadnet.VertexID(i+1), 100)
	}
	return g
}

func TestFaultRouterConsistency(t *testing.T) {
	g := lineGraph(64)
	inner := roadnet.NewRouter(g, 8)
	fr := NewFaultRouter(FaultPlan{Seed: 9, UnreachableEvery: 3})
	r := fr.Wrap(inner)

	fr.SetEpoch(5)
	sawFault, sawOK := false, false
	for u := roadnet.VertexID(0); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			cost := r.Cost(u, v)
			path := r.Path(u, v)
			reach := r.Reachable(u, v)
			if math.IsInf(cost, 1) {
				sawFault = true
				if path != nil || reach {
					t.Fatalf("(%d,%d): Cost faulted but Path=%v Reachable=%v", u, v, path, reach)
				}
			} else {
				sawOK = true
				if path == nil || !reach {
					t.Fatalf("(%d,%d): Cost fine but Path=%v Reachable=%v", u, v, path, reach)
				}
			}
		}
	}
	if !sawFault || !sawOK {
		t.Fatalf("want a mix of faulted and clean pairs, got fault=%v ok=%v", sawFault, sawOK)
	}

	// Self queries never fault.
	if c := r.Cost(3, 3); c != 0 {
		t.Fatalf("self cost %v", c)
	}

	// A pair faulted in one epoch routes normally in some other epoch
	// (transient, not permanent).
	var faultedPair [2]roadnet.VertexID
	found := false
	for u := roadnet.VertexID(0); u < 20 && !found; u++ {
		for v := u + 1; v < 20 && !found; v++ {
			if math.IsInf(r.Cost(u, v), 1) {
				faultedPair = [2]roadnet.VertexID{u, v}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no faulted pair at epoch 5")
	}
	recovered := false
	for epoch := int64(0); epoch < 50; epoch++ {
		fr.SetEpoch(epoch)
		if !math.IsInf(r.Cost(faultedPair[0], faultedPair[1]), 1) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("pair %v unreachable in every epoch", faultedPair)
	}
}

func TestDiffEvents(t *testing.T) {
	a := Event{I: 3, Request: &RequestEvent{Out: RequestOutcome{Request: 1, Taxi: 2, DetourMeters: 10}}}
	b := Event{I: 3, Request: &RequestEvent{Out: RequestOutcome{Request: 1, Taxi: 5, DetourMeters: 11}}}
	ds := DiffEvents(&a, &b)
	if len(ds) != 2 {
		t.Fatalf("want 2 divergences, got %v", ds)
	}
	if ds[0].Field != "request.taxi" || ds[0].Recorded != "2" || ds[0].Replayed != "5" {
		t.Fatalf("bad divergence %+v", ds[0])
	}
	if ds[0].Event != 3 {
		t.Fatalf("divergence lost the event index: %+v", ds[0])
	}

	kindA := Event{I: 0, Tick: &TickEvent{DNanos: 1}}
	kindB := Event{I: 0, Hail: &HailEvent{Taxi: 1}}
	ds = DiffEvents(&kindA, &kindB)
	if len(ds) != 1 || ds[0].Field != "kind" {
		t.Fatalf("kind mismatch not structural: %v", ds)
	}

	same := Event{I: 1, Tick: &TickEvent{DNanos: 5, Rides: []Ride{{Request: 1, Taxi: 1, AtNanos: 3}}}}
	if ds := DiffEvents(&same, &same); len(ds) != 0 {
		t.Fatalf("self-diff nonzero: %v", ds)
	}
}

func TestDiffRidesAndCounters(t *testing.T) {
	a := Event{I: 7, Tick: &TickEvent{DNanos: 5, Rides: []Ride{{Request: 1, Taxi: 1, AtNanos: 3}, {Request: 2, Taxi: 1, AtNanos: 4}}}}
	b := Event{I: 7, Tick: &TickEvent{DNanos: 5, Rides: []Ride{{Request: 1, Taxi: 2, AtNanos: 3}}}}
	ds := DiffEvents(&a, &b)
	if len(ds) != 2 {
		t.Fatalf("want ride diff + length diff, got %v", ds)
	}
	if ds[0].Field != "tick.rides[0]" || ds[1].Field != "tick.rides.len" {
		t.Fatalf("bad ride divergences: %v", ds)
	}

	cs := DiffCounters(2,
		map[string]int64{"x": 1, "only_rec": 5},
		map[string]int64{"x": 2, "only_act": 7})
	if len(cs) != 3 {
		t.Fatalf("want 3 counter divergences, got %v", cs)
	}
	// Sorted by name: only_act, only_rec, x.
	if cs[0].Field != "metrics.only_act" || cs[2].Field != "metrics.x" {
		t.Fatalf("counter diffs unsorted: %v", cs)
	}
}

func TestCompareLogs(t *testing.T) {
	mk := func(taxi int64) []byte {
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, validHeader())
		if err != nil {
			t.Fatal(err)
		}
		enc.Encode(Event{I: 0, Request: &RequestEvent{Out: RequestOutcome{Request: 1, Taxi: taxi}}})
		enc.Encode(Event{I: 1, Tick: &TickEvent{DNanos: 5}})
		return buf.Bytes()
	}
	same, err := CompareLogs(bytes.NewReader(mk(1)), bytes.NewReader(mk(1)))
	if err != nil || len(same) != 0 {
		t.Fatalf("identical logs diverge: %v %v", same, err)
	}
	diff, err := CompareLogs(bytes.NewReader(mk(1)), bytes.NewReader(mk(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0].Field != "request.taxi" || diff[0].Event != 0 {
		t.Fatalf("want one request.taxi divergence at event 0, got %v", diff)
	}

	// Header mismatch.
	var other bytes.Buffer
	h := validHeader()
	h.Seed = 99
	enc, _ := NewEncoder(&other, h)
	enc.Encode(Event{I: 0, Request: &RequestEvent{Out: RequestOutcome{Request: 1, Taxi: 1}}})
	enc.Encode(Event{I: 1, Tick: &TickEvent{DNanos: 5}})
	hd, err := CompareLogs(bytes.NewReader(mk(1)), bytes.NewReader(other.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(hd) != 1 || hd[0].Field != "header" || hd[0].Event != -1 {
		t.Fatalf("want header divergence, got %v", hd)
	}

	// Length mismatch.
	short := mk(1)
	short = short[:bytes.LastIndexByte(short[:len(short)-1], '\n')+1]
	ld, err := CompareLogs(bytes.NewReader(mk(1)), bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if len(ld) != 1 || ld[0].Field != "events.len" {
		t.Fatalf("want events.len divergence, got %v", ld)
	}
}

func TestDeterministicCounters(t *testing.T) {
	in := map[string]int64{
		"mtshare_match_dispatches_total":   4,
		"mtshare_sim_ticks_total":          9,
		"mtshare_index_rebuilds_total":     1,
		"mtshare_roadnet_cache_hits_total": 123, // interleaving-dependent
		"unrelated_total":                  7,
	}
	out := DeterministicCounters(in)
	if len(out) != 3 {
		t.Fatalf("got %v", out)
	}
	for _, name := range []string{"mtshare_match_dispatches_total", "mtshare_sim_ticks_total", "mtshare_index_rebuilds_total"} {
		if out[name] != in[name] {
			t.Fatalf("missing %s in %v", name, out)
		}
	}
}
