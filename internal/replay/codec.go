package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxLineBytes bounds one log line. Real events are well under 4 KiB;
// the cap keeps the decoder from buffering unbounded garbage (and keeps
// the fuzz target memory-safe).
const maxLineBytes = 1 << 20

// Encoder writes a replay log: the header, then one Event per line.
// Errors are sticky — the first write failure is remembered and every
// later call is a no-op, so hot paths can record without checking each
// write; read the sticky error via Err or Close.
type Encoder struct {
	w   io.Writer
	err error
}

// NewEncoder writes the header line and returns the encoder.
func NewEncoder(w io.Writer, h Header) (*Encoder, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{w: w}
	e.writeLine(h)
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// ResumeEncoder returns an encoder that appends events to a log whose
// header line already exists — WAL recovery reopens the stream
// mid-history and must not write a second header.
func ResumeEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func (e *Encoder) writeLine(v any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		e.err = fmt.Errorf("replay: encode: %w", err)
		return
	}
	b = append(b, '\n')
	if _, err := e.w.Write(b); err != nil {
		e.err = fmt.Errorf("replay: write: %w", err)
	}
}

// Encode appends one event line.
func (e *Encoder) Encode(ev Event) { e.writeLine(ev) }

// Err returns the sticky error, if any write failed.
func (e *Encoder) Err() error { return e.err }

// Close reports the sticky error (the underlying writer is the caller's
// to close; gzip wrapping happens outside the encoder).
func (e *Encoder) Close() error { return e.err }

// Decoder reads a replay log.
type Decoder struct {
	sc     *bufio.Scanner
	header *Header
	line   int
}

// NewDecoder wraps r. The header is read lazily on the first Header or
// Next call.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &Decoder{sc: sc}
}

// Header returns the log header, reading it on first use.
func (d *Decoder) Header() (Header, error) {
	if d.header != nil {
		return *d.header, nil
	}
	raw, err := d.nextLine()
	if err != nil {
		if err == io.EOF {
			return Header{}, fmt.Errorf("replay: empty log")
		}
		return Header{}, err
	}
	var h Header
	if err := json.Unmarshal(raw, &h); err != nil {
		return Header{}, fmt.Errorf("replay: bad header line: %w", err)
	}
	if err := h.Validate(); err != nil {
		return Header{}, err
	}
	d.header = &h
	return h, nil
}

// Next returns the next event, or io.EOF at the end of the log.
func (d *Decoder) Next() (Event, error) {
	if d.header == nil {
		if _, err := d.Header(); err != nil {
			return Event{}, err
		}
	}
	raw, err := d.nextLine()
	if err != nil {
		return Event{}, err
	}
	var ev Event
	if err := json.Unmarshal(raw, &ev); err != nil {
		return Event{}, fmt.Errorf("replay: bad event at line %d: %w", d.line, err)
	}
	if ev.Kind() == "" {
		return Event{}, fmt.Errorf("replay: event at line %d has no payload", d.line)
	}
	return ev, nil
}

// nextLine returns the next non-blank line, or io.EOF.
func (d *Decoder) nextLine() ([]byte, error) {
	for d.sc.Scan() {
		d.line++
		b := bytes.TrimSpace(d.sc.Bytes())
		if len(b) > 0 {
			return b, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: read line %d: %w", d.line+1, err)
	}
	return nil, io.EOF
}

// ReadAll decodes a whole log into its header and event list.
func ReadAll(r io.Reader) (Header, []Event, error) {
	d := NewDecoder(r)
	h, err := d.Header()
	if err != nil {
		return Header{}, nil, err
	}
	var events []Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return h, events, nil
		}
		if err != nil {
			return h, events, err
		}
		events = append(events, ev)
	}
}
