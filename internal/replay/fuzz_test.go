package replay

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReplayDecode throws arbitrary bytes at the log decoder: it must
// never panic, and whatever it accepts must re-encode to a log it
// accepts again with identical events (decode/encode/decode fixpoint).
func FuzzReplayDecode(f *testing.F) {
	var seed bytes.Buffer
	enc, err := NewEncoder(&seed, Header{
		Version: Version, Kind: KindSystem, Seed: 7, Rows: 12, Cols: 12,
		GraphFingerprint: "00deadbeef00cafe",
		Faults:           &FaultPlan{Seed: 3, UnreachableEvery: 9},
	})
	if err != nil {
		f.Fatal(err)
	}
	enc.Encode(Event{I: 0, AddTaxi: &AddTaxiEvent{At: Point{Lat: 30, Lng: 104}, Capacity: 3, Taxi: 1}})
	enc.Encode(Event{I: 1, Request: &RequestEvent{
		Pickup: Point{Lat: 30.1, Lng: 104.1}, Dropoff: Point{Lat: 30.2, Lng: 104.2},
		Flexibility: 1.3,
		Out:         RequestOutcome{Request: 1, Taxi: 1, Candidates: 2, DetourMeters: 55.5},
	}})
	enc.Encode(Event{I: 2, Tick: &TickEvent{DNanos: 30e9, Rides: []Ride{{Request: 1, Taxi: 1, Pickup: true, AtNanos: 4e9}}}})
	enc.Encode(Event{I: 3, Metrics: &MetricsRecord{Counters: map[string]int64{"mtshare_match_dispatches_total": 1}}})
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":2,"kind":"sim","seed":1}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"version":2,"kind":"system"}` + "\n" + `{"i":0,"hail":{"taxi":2,"out":{"err":"no_taxi"}}}` + "\n"))
	f.Add([]byte(strings.Repeat("x", 4096)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		enc, err := NewEncoder(&out, h)
		if err != nil {
			t.Fatalf("decoded header rejected by encoder: %v", err)
		}
		for _, ev := range evs {
			enc.Encode(ev)
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		h2, evs2, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded log rejected: %v", err)
		}
		_ = h2
		if len(evs2) != len(evs) {
			t.Fatalf("re-decode lost events: %d != %d", len(evs2), len(evs))
		}
		for i := range evs {
			if ds := DiffEvents(&evs[i], &evs2[i]); len(ds) != 0 {
				t.Fatalf("event %d changed across encode/decode: %v", i, ds)
			}
		}
	})
}
