package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Divergence is one mismatch between a recorded event and its replayed
// counterpart. Event is the event index (-1 for header/stream-level
// mismatches); Field names the diverging quantity; Recorded and
// Replayed carry the two values rendered for the report.
type Divergence struct {
	Event    int64  `json:"event"`
	Field    string `json:"field"`
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("event #%d %s: recorded %s, replayed %s", d.Event, d.Field, d.Recorded, d.Replayed)
}

// fieldDiff appends a divergence when the rendered values differ.
func fieldDiff(divs []Divergence, i int64, field string, rec, act any) []Divergence {
	r, a := render(rec), render(act)
	if r != a {
		divs = append(divs, Divergence{Event: i, Field: field, Recorded: r, Replayed: a})
	}
	return divs
}

func render(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		// Shortest round-trip form, same as the log encoding.
		b, _ := json.Marshal(x)
		return string(b)
	default:
		return fmt.Sprint(v)
	}
}

// DiffEvents compares a recorded event against its replayed counterpart
// and returns every field-level divergence. Inputs (coordinates,
// flexibility, tick length) are assumed identical — the replayer feeds
// the recorded inputs back in — so only outcomes are compared; kind
// mismatches are reported as a single structural divergence.
func DiffEvents(rec, act *Event) []Divergence {
	if rec.Kind() != act.Kind() {
		return []Divergence{{Event: rec.I, Field: "kind", Recorded: rec.Kind(), Replayed: act.Kind()}}
	}
	var divs []Divergence
	i := rec.I
	switch {
	case rec.AddTaxi != nil:
		divs = fieldDiff(divs, i, "add_taxi.err", rec.AddTaxi.Err, act.AddTaxi.Err)
		divs = fieldDiff(divs, i, "add_taxi.taxi", rec.AddTaxi.Taxi, act.AddTaxi.Taxi)
	case rec.Request != nil:
		r, a := rec.Request.Out, act.Request.Out
		divs = fieldDiff(divs, i, "request.err", r.Err, a.Err)
		divs = fieldDiff(divs, i, "request.id", r.Request, a.Request)
		divs = fieldDiff(divs, i, "request.taxi", r.Taxi, a.Taxi)
		divs = fieldDiff(divs, i, "request.candidates", r.Candidates, a.Candidates)
		divs = fieldDiff(divs, i, "request.detour_m", r.DetourMeters, a.DetourMeters)
		divs = fieldDiff(divs, i, "request.pickup_eta_ns", r.PickupETANanos, a.PickupETANanos)
		divs = fieldDiff(divs, i, "request.dropoff_eta_ns", r.DropoffETANanos, a.DropoffETANanos)
		divs = fieldDiff(divs, i, "request.fare", r.FareEstimate, a.FareEstimate)
	case rec.Hail != nil:
		divs = fieldDiff(divs, i, "hail.err", rec.Hail.Out.Err, act.Hail.Out.Err)
		divs = fieldDiff(divs, i, "hail.served_by", rec.Hail.Out.ServedBy, act.Hail.Out.ServedBy)
	case rec.Tick != nil:
		divs = append(divs, diffRides(i, rec.Tick.Rides, act.Tick.Rides)...)
		divs = append(divs, diffQueueMatches(i, rec.Tick.QueueMatched, act.Tick.QueueMatched)...)
		divs = append(divs, diffSlice(i, "tick.queue_expired", rec.Tick.QueueExpired, act.Tick.QueueExpired)...)
	case rec.Metrics != nil:
		divs = append(divs, DiffCounters(i, rec.Metrics.Counters, act.Metrics.Counters)...)
	}
	return divs
}

func diffRides(i int64, rec, act []Ride) []Divergence {
	var divs []Divergence
	n := len(rec)
	if len(act) < n {
		n = len(act)
	}
	for k := 0; k < n; k++ {
		r, a := rec[k], act[k]
		if r != a {
			divs = append(divs, Divergence{
				Event:    i,
				Field:    fmt.Sprintf("tick.rides[%d]", k),
				Recorded: renderRide(r),
				Replayed: renderRide(a),
			})
		}
	}
	if len(rec) != len(act) {
		divs = append(divs, Divergence{
			Event:    i,
			Field:    "tick.rides.len",
			Recorded: fmt.Sprint(len(rec)),
			Replayed: fmt.Sprint(len(act)),
		})
	}
	return divs
}

func diffQueueMatches(i int64, rec, act []QueueMatch) []Divergence {
	var divs []Divergence
	n := len(rec)
	if len(act) < n {
		n = len(act)
	}
	for k := 0; k < n; k++ {
		if rec[k] != act[k] {
			divs = append(divs, Divergence{
				Event:    i,
				Field:    fmt.Sprintf("tick.queue_matched[%d]", k),
				Recorded: renderQueueMatch(rec[k]),
				Replayed: renderQueueMatch(act[k]),
			})
		}
	}
	if len(rec) != len(act) {
		divs = append(divs, Divergence{
			Event:    i,
			Field:    "tick.queue_matched.len",
			Recorded: fmt.Sprint(len(rec)),
			Replayed: fmt.Sprint(len(act)),
		})
	}
	return divs
}

func renderQueueMatch(m QueueMatch) string {
	s := fmt.Sprintf("req=%d taxi=%d wait=%dns", m.Request, m.Taxi, m.WaitNanos)
	if m.Conflict {
		s += " conflict"
	}
	return s
}

func diffSlice(i int64, field string, rec, act []int64) []Divergence {
	var divs []Divergence
	n := len(rec)
	if len(act) < n {
		n = len(act)
	}
	for k := 0; k < n; k++ {
		if rec[k] != act[k] {
			divs = append(divs, Divergence{
				Event:    i,
				Field:    fmt.Sprintf("%s[%d]", field, k),
				Recorded: fmt.Sprint(rec[k]),
				Replayed: fmt.Sprint(act[k]),
			})
		}
	}
	if len(rec) != len(act) {
		divs = append(divs, Divergence{
			Event:    i,
			Field:    field + ".len",
			Recorded: fmt.Sprint(len(rec)),
			Replayed: fmt.Sprint(len(act)),
		})
	}
	return divs
}

func renderRide(r Ride) string {
	kind := "dropoff"
	if r.Pickup {
		kind = "pickup"
	}
	return fmt.Sprintf("%s req=%d taxi=%d at=%dns", kind, r.Request, r.Taxi, r.AtNanos)
}

// DiffCounters compares two counter maps over the union of their keys.
func DiffCounters(i int64, rec, act map[string]int64) []Divergence {
	keys := make(map[string]bool, len(rec)+len(act))
	for k := range rec {
		keys[k] = true
	}
	for k := range act {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var divs []Divergence
	for _, name := range names {
		if rec[name] != act[name] {
			divs = append(divs, Divergence{
				Event:    i,
				Field:    "metrics." + name,
				Recorded: fmt.Sprint(rec[name]),
				Replayed: fmt.Sprint(act[name]),
			})
		}
	}
	return divs
}

// CompareLogs structurally compares two logs (e.g. two recordings of
// the same scripted run) and returns every divergence: header mismatch,
// event-by-event outcome differences, and a length mismatch. It is the
// offline analogue of a replay — no engine is executed.
func CompareLogs(a, b io.Reader) ([]Divergence, error) {
	ha, evsA, err := ReadAll(a)
	if err != nil {
		return nil, err
	}
	hb, evsB, err := ReadAll(b)
	if err != nil {
		return nil, err
	}
	var divs []Divergence
	ja, _ := json.Marshal(ha)
	jb, _ := json.Marshal(hb)
	if string(ja) != string(jb) {
		divs = append(divs, Divergence{Event: -1, Field: "header", Recorded: string(ja), Replayed: string(jb)})
	}
	n := len(evsA)
	if len(evsB) < n {
		n = len(evsB)
	}
	for k := 0; k < n; k++ {
		// CompareLogs diffs inputs too: two recordings of the same script
		// must agree on everything, so fall back to raw JSON equality
		// before the outcome-level diff.
		ra, _ := json.Marshal(evsA[k])
		rb, _ := json.Marshal(evsB[k])
		if string(ra) != string(rb) {
			ds := DiffEvents(&evsA[k], &evsB[k])
			if len(ds) == 0 {
				ds = []Divergence{{Event: evsA[k].I, Field: "inputs", Recorded: string(ra), Replayed: string(rb)}}
			}
			divs = append(divs, ds...)
		}
	}
	if len(evsA) != len(evsB) {
		divs = append(divs, Divergence{
			Event: -1, Field: "events.len",
			Recorded: fmt.Sprint(len(evsA)), Replayed: fmt.Sprint(len(evsB)),
		})
	}
	return divs, nil
}
