package replay

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/roadnet"
)

// FaultPlan configures the deterministic fault-injection layer. Every
// decision is a pure function of (Seed, event index, query endpoints),
// so two runs with the same plan — sequential or parallel, recorded or
// replayed — inject exactly the same faults and reach exactly the same
// dispatch outcomes. The plan travels in the log header, making a
// fault-injected run reproducible from the log alone.
type FaultPlan struct {
	// Seed derives every fault decision.
	Seed int64 `json:"seed"`
	// UnreachableEvery makes ~1-in-N shortest-path queries report the
	// pair unreachable (a transient router error), which exercises the
	// infeasible-schedule and ErrNoTaxiAvailable paths. 0 disables.
	UnreachableEvery int `json:"unreachable_every,omitempty"`
	// LatencySpikeEvery delays ~1-in-N shortest-path queries by
	// LatencySpikeMs of wall clock — a latency fault that perturbs
	// timing instrumentation without changing any decision. 0 disables.
	LatencySpikeEvery int `json:"latency_spike_every,omitempty"`
	LatencySpikeMs    int `json:"latency_spike_ms,omitempty"`
	// CancelEvery pre-cancels the context of ~1-in-N facade calls,
	// exercising DispatchContext's cancellation path deterministically.
	// 0 disables.
	CancelEvery int `json:"cancel_every,omitempty"`
	// ShutdownAtEvent closes the system before executing the event with
	// this index (and every later one), exercising the ErrShutdown path.
	// 0 disables.
	ShutdownAtEvent int64 `json:"shutdown_at_event,omitempty"`
}

// Validate reports whether the plan is coherent.
func (p *FaultPlan) Validate() error {
	switch {
	case p == nil:
		return nil
	case p.UnreachableEvery < 0:
		return fmt.Errorf("replay: UnreachableEvery %d negative", p.UnreachableEvery)
	case p.LatencySpikeEvery < 0:
		return fmt.Errorf("replay: LatencySpikeEvery %d negative", p.LatencySpikeEvery)
	case p.LatencySpikeMs < 0:
		return fmt.Errorf("replay: LatencySpikeMs %d negative", p.LatencySpikeMs)
	case p.LatencySpikeEvery > 0 && p.LatencySpikeMs == 0:
		return fmt.Errorf("replay: LatencySpikeEvery set but LatencySpikeMs zero")
	case p.CancelEvery < 0:
		return fmt.Errorf("replay: CancelEvery %d negative", p.CancelEvery)
	case p.ShutdownAtEvent < 0:
		return fmt.Errorf("replay: ShutdownAtEvent %d negative", p.ShutdownAtEvent)
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *FaultPlan) Active() bool {
	return p != nil && (p.UnreachableEvery > 0 || p.LatencySpikeEvery > 0 ||
		p.CancelEvery > 0 || p.ShutdownAtEvent > 0)
}

// splitmix64 is the SplitMix64 finalizer — a fast, well-mixed hash used
// to turn (seed, tag, operands) into fault decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// decide hashes the operands under the plan seed and reports whether the
// 1-in-every lottery fires. every <= 0 never fires.
func (p *FaultPlan) decide(tag uint64, every int, operands ...uint64) bool {
	if every <= 0 {
		return false
	}
	h := splitmix64(uint64(p.Seed) ^ tag)
	for _, op := range operands {
		h = splitmix64(h ^ op)
	}
	return h%uint64(every) == 0
}

// Fault decision tags (arbitrary distinct constants).
const (
	tagUnreachable = 0x5E1EC7ED0000001
	tagSpike       = 0x5E1EC7ED0000002
	tagCancel      = 0x5E1EC7ED0000003
)

// CancelsEvent reports whether the facade call with the given event
// index runs under a pre-cancelled context.
func (p *FaultPlan) CancelsEvent(i int64) bool {
	return p != nil && p.decide(tagCancel, p.CancelEvery, uint64(i))
}

// ShutsDownAt reports whether the system must be closed before
// executing event i.
func (p *FaultPlan) ShutsDownAt(i int64) bool {
	return p != nil && p.ShutdownAtEvent > 0 && i >= p.ShutdownAtEvent
}

// MaybeCancel returns ctx, pre-cancelled when the plan says event i's
// context fails.
func (p *FaultPlan) MaybeCancel(ctx context.Context, i int64) context.Context {
	if !p.CancelsEvent(i) {
		return ctx
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	return cctx
}

// CrashPoints derives n distinct, sorted event indices in (0, horizon)
// from a seed — the crash schedule for kill-9 recovery harnesses. Like
// every fault decision it is a pure function of its inputs, so a failing
// crash point can be replayed from the seed alone. horizon must exceed
// n, leaving at least one event after the last crash point.
func CrashPoints(seed int64, n int, horizon int64) []int64 {
	if n <= 0 || horizon <= 1 {
		return nil
	}
	const tagCrash = 0x5E1EC7ED0000004
	picked := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for round := uint64(0); len(out) < n && round < uint64(n)*64; round++ {
		h := splitmix64(uint64(seed) ^ tagCrash)
		h = splitmix64(h ^ round)
		i := int64(h%uint64(horizon-1)) + 1
		if !picked[i] {
			picked[i] = true
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FaultRouter wraps a shortest-path router with the plan's router
// faults. The epoch — set to the current event index by the facade
// before each call — scopes the per-query decisions, so a pair that is
// "unreachable" during one event routes normally during the next, like
// a real transient failure. Decisions are pure functions of
// (seed, epoch, u, v): concurrent dispatch workers always agree, and
// repeated queries inside one event are consistent with each other.
//
// FaultRouter is safe for concurrent use.
type FaultRouter struct {
	inner roadnet.PathRouter
	plan  FaultPlan
	epoch atomic.Int64
}

// NewFaultRouter creates a fault layer with the given plan; Wrap
// installs the router it delegates to.
func NewFaultRouter(plan FaultPlan) *FaultRouter {
	return &FaultRouter{plan: plan}
}

// Wrap installs inner as the delegate and returns the fault router
// (shaped to slot into match.Config.RouterWrap).
func (f *FaultRouter) Wrap(inner roadnet.PathRouter) roadnet.PathRouter {
	f.inner = inner
	return f
}

// SetEpoch scopes subsequent fault decisions to event i.
func (f *FaultRouter) SetEpoch(i int64) { f.epoch.Store(i) }

func (f *FaultRouter) unreachable(epoch int64, u, v roadnet.VertexID) bool {
	return f.plan.decide(tagUnreachable, f.plan.UnreachableEvery, uint64(epoch), uint64(u), uint64(v))
}

// spike sleeps when the (epoch, u, v) lottery fires. It only perturbs
// wall-clock timing; decisions and outcomes are unaffected.
func (f *FaultRouter) spike(epoch int64, u, v roadnet.VertexID) {
	if f.plan.decide(tagSpike, f.plan.LatencySpikeEvery, uint64(epoch), uint64(u), uint64(v)) {
		time.Sleep(time.Duration(f.plan.LatencySpikeMs) * time.Millisecond)
	}
}

// Cost implements roadnet.PathRouter.
func (f *FaultRouter) Cost(u, v roadnet.VertexID) float64 {
	epoch := f.epoch.Load()
	f.spike(epoch, u, v)
	if u != v && f.unreachable(epoch, u, v) {
		return math.Inf(1)
	}
	return f.inner.Cost(u, v)
}

// Path implements roadnet.PathRouter.
func (f *FaultRouter) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	epoch := f.epoch.Load()
	f.spike(epoch, u, v)
	if u != v && f.unreachable(epoch, u, v) {
		return nil
	}
	return f.inner.Path(u, v)
}

// Reachable implements roadnet.PathRouter.
func (f *FaultRouter) Reachable(u, v roadnet.VertexID) bool {
	if u != v && f.unreachable(f.epoch.Load(), u, v) {
		return false
	}
	return f.inner.Reachable(u, v)
}
