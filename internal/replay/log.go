// Package replay defines the deterministic record/replay substrate of
// the reproduction: a versioned JSONL log format capturing a full run —
// seed, world options, road-graph fingerprint, and the ordered stream of
// facade events (AddTaxi / SubmitRequest / ReportStreetHail / Advance)
// with their outcomes — plus the machinery to re-execute such a log
// against the current engine and report the first divergence, and a
// deterministic fault-injection layer (router faults, latency spikes,
// context cancellations, forced shutdown) configurable from the log
// header.
//
// The format is line-oriented JSON with stable field order (struct
// marshalling; map keys sort), so logs diff cleanly, compress well, and
// a golden log checked into testdata stays byte-stable across runs of
// the same engine. Line 1 is the Header; every following line is one
// Event. Outcome floats round-trip exactly (Go marshals float64 in
// shortest form that parses back to the same bits), so replay
// comparison is exact, not approximate.
package replay

import (
	"fmt"
)

// Version is the current log format version. Decoder rejects logs whose
// header declares a different major version.
//
// Version history:
//   - 1: initial format.
//   - 2: pending-request queue — Header gains queue_depth /
//     retry_every_ticks, RequestOutcome.Err gains the "queued" and
//     "queue_full" codes, TickEvent gains queue_matched / queue_expired.
//   - 3: sharded dispatcher — Header gains shards / border_policy and the
//     sealed counters include the mtshare_shard_* family. Sharding is
//     outcome-neutral (the sharded engine is bit-identical to the single
//     engine), so version-2 logs replay unchanged; the decoder accepts
//     both.
const Version = 3

// minVersion is the oldest header version the decoder still replays.
// Versions 2 and 3 share event semantics; the recorder re-emits a log's
// own header version so golden logs stay byte-stable.
const minVersion = 2

// Log kinds: a full facade run versus a scripted simulation's dispatch
// stream (internal/sim records the latter for run-to-run diffing).
const (
	KindSystem = "system"
	KindSim    = "sim"
)

// Header is the first line of a log: everything needed to rebuild the
// world the events ran against.
type Header struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// World generation parameters (the facade's Options snapshot).
	Seed                    int64   `json:"seed"`
	Rows                    int     `json:"rows,omitempty"`
	Cols                    int     `json:"cols,omitempty"`
	Partitions              int     `json:"partitions,omitempty"`
	SpeedKmh                float64 `json:"speed_kmh,omitempty"`
	SearchRangeMeters       float64 `json:"search_range_m,omitempty"`
	MaxDirectionDiffDegrees float64 `json:"max_direction_deg,omitempty"`
	Probabilistic           bool    `json:"probabilistic,omitempty"`
	// DisableLandmarkLB records whether the landmark lower-bound oracle
	// was off for the run. Screening is lossless, so this cannot change
	// outcomes — but the lb counters land in the sealed metrics snapshot,
	// and a replay must reproduce them bit for bit.
	DisableLandmarkLB bool `json:"disable_landmark_lb,omitempty"`
	// DisableCH records whether the contraction-hierarchy routing backend
	// was off for the run. The CH is exact (bit-identical costs), so this
	// cannot change outcomes either; omitempty keeps existing golden logs
	// (recorded before the knob existed, CH on by default) readable.
	DisableCH bool `json:"disable_ch,omitempty"`
	// Pending-request queue configuration (0 = queue disabled).
	QueueDepth      int `json:"queue_depth,omitempty"`
	RetryEveryTicks int `json:"retry_every_ticks,omitempty"`
	// BatchAssign records whether the queue's retry rounds ran the global
	// min-cost assignment instead of greedy deadline-order commits. The
	// knob changes which requests are served, so a replay must rebuild
	// the same round scheme; omitempty keeps pre-knob logs byte-stable.
	BatchAssign bool `json:"batch_assign,omitempty"`
	// Sharded-dispatcher configuration (0 / "" = single engine). Sharding
	// is outcome-neutral by construction, but the per-shard counters land
	// in the sealed metrics snapshot, so a replay must rebuild the same
	// topology; omitempty keeps pre-sharding logs byte-stable.
	Shards       int    `json:"shards,omitempty"`
	BorderPolicy string `json:"border_policy,omitempty"`
	// GraphFingerprint is the hex fingerprint of the road graph the run
	// used; replay refuses to diff against a different graph.
	GraphFingerprint string `json:"graph_fp,omitempty"`
	// Faults configures the deterministic fault-injection layer for the
	// run. A replay applies the same plan, so fault-injected runs are
	// reproducible bit for bit.
	Faults *FaultPlan `json:"faults,omitempty"`
}

// Validate reports whether the header can drive a replay.
func (h *Header) Validate() error {
	if h.Version < minVersion || h.Version > Version {
		return fmt.Errorf("replay: log version %d, this build reads %d through %d", h.Version, minVersion, Version)
	}
	switch h.Kind {
	case KindSystem, KindSim:
	default:
		return fmt.Errorf("replay: unknown log kind %q", h.Kind)
	}
	if h.Faults != nil {
		if err := h.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Point is a geographic location in the log.
type Point struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// Event is one line of the log: the event index plus exactly one of the
// typed payloads.
type Event struct {
	I       int64          `json:"i"`
	AddTaxi *AddTaxiEvent  `json:"add_taxi,omitempty"`
	Request *RequestEvent  `json:"request,omitempty"`
	Hail    *HailEvent     `json:"hail,omitempty"`
	Tick    *TickEvent     `json:"tick,omitempty"`
	Metrics *MetricsRecord `json:"metrics,omitempty"`
}

// Kind names the payload carried by the event ("" when none is set).
func (e *Event) Kind() string {
	switch {
	case e.AddTaxi != nil:
		return "add_taxi"
	case e.Request != nil:
		return "request"
	case e.Hail != nil:
		return "hail"
	case e.Tick != nil:
		return "tick"
	case e.Metrics != nil:
		return "metrics"
	}
	return ""
}

// AddTaxiEvent records a taxi registration and its outcome.
type AddTaxiEvent struct {
	At       Point `json:"at"`
	Capacity int   `json:"capacity"`
	// Outcome.
	Taxi int64  `json:"taxi,omitempty"`
	Err  string `json:"err,omitempty"`
}

// RequestEvent records one SubmitRequest call.
type RequestEvent struct {
	Pickup      Point          `json:"pickup"`
	Dropoff     Point          `json:"dropoff"`
	Flexibility float64        `json:"flex,omitempty"`
	Out         RequestOutcome `json:"out"`
}

// RequestOutcome is the recorded result of a dispatch: the error code
// (empty on success), the assignment identifiers, and the decision
// quantities the replayer diffs. With the pending queue enabled, an
// unmatched request parks instead of failing: Err is "queued" (the
// request ID is still assigned) or "queue_full" when backpressure
// rejected it.
type RequestOutcome struct {
	Err             string  `json:"err,omitempty"`
	Request         int64   `json:"request,omitempty"`
	Taxi            int64   `json:"taxi,omitempty"`
	Candidates      int     `json:"candidates,omitempty"`
	DetourMeters    float64 `json:"detour_m,omitempty"`
	PickupETANanos  int64   `json:"pickup_eta_ns,omitempty"`
	DropoffETANanos int64   `json:"dropoff_eta_ns,omitempty"`
	FareEstimate    float64 `json:"fare,omitempty"`
}

// HailEvent records one ReportStreetHail call.
type HailEvent struct {
	Taxi        int64       `json:"taxi"`
	Pickup      Point       `json:"pickup"`
	Dropoff     Point       `json:"dropoff"`
	Flexibility float64     `json:"flex,omitempty"`
	Out         HailOutcome `json:"out"`
}

// HailOutcome is the recorded result of a street hail.
type HailOutcome struct {
	Err      string `json:"err,omitempty"`
	ServedBy int64  `json:"served_by,omitempty"`
}

// TickEvent records one Advance call and the ride events it fired, plus
// — when the pending queue is enabled — the queued requests the tick's
// retry round matched and those it evicted as expired.
type TickEvent struct {
	DNanos       int64        `json:"d_ns"`
	Rides        []Ride       `json:"rides,omitempty"`
	QueueMatched []QueueMatch `json:"queue_matched,omitempty"`
	QueueExpired []int64      `json:"queue_expired,omitempty"`
}

// QueueMatch is one queued request matched by a tick's batch re-dispatch.
type QueueMatch struct {
	Request int64 `json:"request"`
	Taxi    int64 `json:"taxi"`
	// WaitNanos is the queued-to-matched delay in simulation time.
	WaitNanos int64 `json:"wait_ns,omitempty"`
	// Conflict marks a match that needed re-dispatch after an earlier
	// commit of the same batch took its first-choice taxi.
	Conflict bool `json:"conflict,omitempty"`
}

// Ride is one pickup or dropoff fired during a tick.
type Ride struct {
	Request int64 `json:"request"`
	Taxi    int64 `json:"taxi"`
	Pickup  bool  `json:"pickup,omitempty"`
	AtNanos int64 `json:"at_ns"`
}

// MetricsRecord closes a log with the run's deterministic counters
// (typically the mtshare_match_* / mtshare_sim_* families; timing
// histograms and scheduling-order-dependent cache counters are excluded
// by the recorder). JSON marshalling sorts map keys, so the record is
// byte-stable.
type MetricsRecord struct {
	Counters map[string]int64 `json:"counters"`
}

// DeterministicCounterPrefixes lists the instrument families whose
// values are a pure function of the event stream: dispatch pipeline
// counters and simulation lifecycle counters. Router cache counters
// (hit/miss/dedup split depends on worker interleaving) and every
// histogram (wall-clock) are intentionally absent.
var DeterministicCounterPrefixes = []string{
	"mtshare_match_",
	"mtshare_sim_",
	"mtshare_index_",
	"mtshare_shard_",
}

// DeterministicCounters filters a counters map down to the families in
// DeterministicCounterPrefixes.
func DeterministicCounters(counters map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range counters {
		for _, p := range DeterministicCounterPrefixes {
			if len(name) >= len(p) && name[:len(p)] == p {
				out[name] = v
				break
			}
		}
	}
	return out
}
