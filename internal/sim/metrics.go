package sim

import (
	"math"
	"sort"
)

// Metrics aggregates a simulation run into the quantities the paper
// reports. Per-request detail remains available through Records.
type Metrics struct {
	SchemeName string

	Requests        int
	OnlineRequests  int
	OfflineRequests int

	Served        int
	ServedOnline  int
	ServedOffline int
	Delivered     int

	// Pending-queue outcomes (all zero when the queue is disabled):
	// requests that parked after a failed dispatch, the subset a retry
	// round eventually served, the subset that expired parked, and the
	// mean queued-to-matched wait over the served subset.
	Queued           int
	ServedFromQueue  int
	ExpiredInQueue   int
	MeanQueueWaitMin float64

	// Response time over online dispatch attempts (wall clock), the
	// paper's Figs. 7/11 metric.
	MeanResponseMs float64
	P95ResponseMs  float64

	// Detour and waiting time over delivered requests (Figs. 8/9/12/13).
	MeanDetourMin  float64
	MeanWaitingMin float64

	// MeanCandidates is the average candidate-set size (Table III).
	MeanCandidates float64

	// Payment aggregates (Fig. 19).
	DriverIncome     float64
	TotalPaid        float64
	TotalRegularFare float64
	// FareSaving is 1 − paid/regular over settled rides.
	FareSaving float64

	IndexMemoryBytes int64
	ExecutionSecs    float64

	// Fleet efficiency over the whole run.
	TaxiMeters float64
	// PassengerMeters sums the distance passengers rode.
	PassengerMeters float64
	// OccupiedFraction is the share of fleet-time with >=1 passenger
	// aboard (the per-run analogue of Fig. 5a's utilisation).
	OccupiedFraction float64
	// MeanOccupancy is passenger-meters per taxi-meter; values above 1
	// indicate ridesharing gains.
	MeanOccupancy float64

	Records []*RequestRecord
}

func (e *Engine) collectMetrics() *Metrics {
	m := &Metrics{
		SchemeName:       e.scheme.Name(),
		DriverIncome:     e.driverIncome,
		TotalPaid:        e.totalPaid,
		TotalRegularFare: e.totalRegular,
		IndexMemoryBytes: e.scheme.IndexMemoryBytes(),
		ExecutionSecs:    e.ExecutionSecs,
		PassengerMeters:  e.passengerMeters,
	}
	for _, t := range e.taxis {
		m.TaxiMeters += t.Odometer()
	}
	if span := e.FinalSimSeconds - e.startSeconds; span > 0 && len(e.taxis) > 0 {
		m.OccupiedFraction = e.occupiedSecs / (span * float64(len(e.taxis)))
	}
	if m.TaxiMeters > 0 {
		m.MeanOccupancy = m.PassengerMeters / m.TaxiMeters
	}
	var (
		respNs       []float64
		candSum      float64
		candCount    int
		detourSum    float64
		waitSum      float64
		queueWaitSum float64
		delivered    int
		speTotal     = e.params.SpeedMps
	)
	for _, rec := range e.records {
		m.Records = append(m.Records, rec)
		m.Requests++
		if rec.Req.Offline {
			m.OfflineRequests++
		} else {
			m.OnlineRequests++
			respNs = append(respNs, float64(rec.ResponseNanos))
			candSum += float64(rec.Candidates)
			candCount++
		}
		if rec.Served {
			m.Served++
			if rec.ServedOffline {
				m.ServedOffline++
			} else {
				m.ServedOnline++
			}
		}
		if rec.Queued {
			m.Queued++
			if rec.ServedFromQueue {
				m.ServedFromQueue++
				queueWaitSum += rec.QueueWaitSeconds
			} else if rec.Expired {
				m.ExpiredInQueue++
			}
		}
		if rec.Delivered {
			delivered++
			detourSum += math.Max(0, rec.DetourSeconds(speTotal))
			waitSum += math.Max(0, rec.WaitingSeconds())
		}
	}
	m.Delivered = delivered
	sort.Slice(m.Records, func(i, j int) bool { return m.Records[i].Req.ID < m.Records[j].Req.ID })
	if len(respNs) > 0 {
		sort.Float64s(respNs)
		var sum float64
		for _, v := range respNs {
			sum += v
		}
		m.MeanResponseMs = sum / float64(len(respNs)) / 1e6
		m.P95ResponseMs = respNs[int(0.95*float64(len(respNs)-1))] / 1e6
	}
	if candCount > 0 {
		m.MeanCandidates = candSum / float64(candCount)
	}
	if delivered > 0 {
		m.MeanDetourMin = detourSum / float64(delivered) / 60
		m.MeanWaitingMin = waitSum / float64(delivered) / 60
	}
	if m.ServedFromQueue > 0 {
		m.MeanQueueWaitMin = queueWaitSum / float64(m.ServedFromQueue) / 60
	}
	if m.TotalRegularFare > 0 {
		m.FareSaving = 1 - m.TotalPaid/m.TotalRegularFare
	}
	return m
}

// ServedRate returns served/requests; 0 for an empty run.
func (m *Metrics) ServedRate() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.Requests)
}
