package sim

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/wal"
)

// recordRun executes one scripted peak-hour simulation with recording
// enabled and returns the log bytes. Requests are re-prepared per run:
// fleet.Request carries mutable dispatch state, so runs must not share
// them.
func recordRun(t *testing.T, w *world, parallelism int) []byte {
	t.Helper()
	reqs := w.peakRequests(t, 0.2)
	params := DefaultParams()
	params.Parallelism = parallelism
	var buf bytes.Buffer
	params.RecordTo = &buf
	params.RecordSeed = 3
	eng, err := NewEngine(w.g, w.mtShare(t, false), params)
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(30, 3, 1, start)
	eng.Run(reqs, start)
	if err := eng.RecordErr(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimRecordingDeterministic runs the same scripted simulation twice
// — once sequential, once with full parallelism — and requires the two
// recorded logs to be byte-identical: the sim's dispatch stream, ride
// events, and deterministic counters are a pure function of the
// workload at every parallelism level.
func TestSimRecordingDeterministic(t *testing.T) {
	w := newWorld(t)
	seqLog := recordRun(t, w, 1)
	parLog := recordRun(t, w, 0)
	if bytes.Equal(seqLog, parLog) {
		return
	}
	divs, err := replay.CompareLogs(bytes.NewReader(seqLog), bytes.NewReader(parLog))
	if err != nil {
		t.Fatal(err)
	}
	t.Fatalf("sequential and parallel sim logs differ (%d divergences); first: %v", len(divs), divs[0])
}

// TestSimRecordingShape sanity-checks the recorded log's structure:
// sim kind, request outcomes for every dispatched request, tick events,
// and a closing deterministic-counters record.
func TestSimRecordingShape(t *testing.T) {
	w := newWorld(t)
	log := recordRun(t, w, 1)
	h, evs, err := replay.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != replay.KindSim {
		t.Fatalf("log kind %q", h.Kind)
	}
	if h.GraphFingerprint == "" {
		t.Fatal("no graph fingerprint")
	}
	var requests, ticks, rides int
	var last replay.Event
	for _, ev := range evs {
		switch {
		case ev.Request != nil:
			requests++
		case ev.Tick != nil:
			ticks++
			rides += len(ev.Tick.Rides)
		}
		last = ev
	}
	if requests == 0 || ticks == 0 || rides == 0 {
		t.Fatalf("log shape: %d requests, %d ticks, %d rides", requests, ticks, rides)
	}
	if last.Metrics == nil {
		t.Fatal("log not sealed with a metrics record")
	}
	if last.Metrics.Counters["mtshare_sim_ticks_total"] != int64(ticks) {
		t.Fatalf("sealed tick counter %d, log has %d tick events",
			last.Metrics.Counters["mtshare_sim_ticks_total"], ticks)
	}
	for name := range last.Metrics.Counters {
		if !deterministicName(name) {
			t.Fatalf("non-deterministic counter %q leaked into the log", name)
		}
	}
	// Ride events must reference dispatched requests and placed taxis.
	placed := int64(30)
	for _, ev := range evs {
		if ev.Tick == nil {
			continue
		}
		for _, r := range ev.Tick.Rides {
			if r.Taxi < 1 || r.Taxi > placed {
				t.Fatalf("ride references unknown taxi %d", r.Taxi)
			}
			if r.Request < 1 || r.Request > int64(len(w.ds.Trips))+1 {
				t.Fatalf("ride references implausible request %d", r.Request)
			}
			if r.AtNanos <= int64(8*time.Hour) {
				t.Fatalf("ride before simulation start: %d", r.AtNanos)
			}
		}
	}
}

func deterministicName(name string) bool {
	for _, p := range replay.DeterministicCounterPrefixes {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// recordQueueRun is recordRun with the pending queue enabled and a
// deliberately small fleet, so dispatch failures park and the log
// exercises queued outcomes and batch re-dispatch.
func recordQueueRun(t *testing.T, w *world, parallelism int) []byte {
	t.Helper()
	reqs := w.peakRequests(t, 0)
	params := DefaultParams()
	params.Parallelism = parallelism
	params.QueueDepth = 24
	params.RetryEveryTicks = 2
	var buf bytes.Buffer
	params.RecordTo = &buf
	params.RecordSeed = 3
	eng, err := NewEngine(w.g, w.mtShare(t, false), params)
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(8, 3, 1, start)
	eng.Run(reqs, start)
	if err := eng.RecordErr(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimQueueRecordingDeterministic is the queue-enabled analogue of
// TestSimRecordingDeterministic: with the pending queue active (batch
// re-dispatch every other tick), sequential and fully parallel runs of
// the same workload must still produce byte-identical logs — and the
// workload must actually exercise the queue, or the test proves nothing.
func TestSimQueueRecordingDeterministic(t *testing.T) {
	w := newWorld(t)
	seqLog := recordQueueRun(t, w, 1)

	h, evs, err := replay.ReadAll(bytes.NewReader(seqLog))
	if err != nil {
		t.Fatal(err)
	}
	if h.QueueDepth != 24 || h.RetryEveryTicks != 2 {
		t.Fatalf("header queue config: depth %d, retry %d", h.QueueDepth, h.RetryEveryTicks)
	}
	var queued, matched, expired int
	for _, ev := range evs {
		switch {
		case ev.Request != nil && ev.Request.Out.Err == "queued":
			queued++
		case ev.Tick != nil:
			matched += len(ev.Tick.QueueMatched)
			expired += len(ev.Tick.QueueExpired)
		}
	}
	if queued == 0 || matched+expired == 0 {
		t.Fatalf("workload did not exercise the queue: %d queued, %d matched, %d expired", queued, matched, expired)
	}
	if last := evs[len(evs)-1]; last.Metrics == nil ||
		last.Metrics.Counters["mtshare_sim_queue_enqueued_total"] != int64(queued) ||
		last.Metrics.Counters["mtshare_sim_queue_served_total"] != int64(matched) ||
		last.Metrics.Counters["mtshare_sim_queue_expired_total"] != int64(expired) {
		t.Fatalf("sealed queue counters disagree with the event stream (queued %d, matched %d, expired %d): %v",
			queued, matched, expired, last.Metrics)
	}

	parLog := recordQueueRun(t, w, 0)
	if bytes.Equal(seqLog, parLog) {
		return
	}
	divs, err := replay.CompareLogs(bytes.NewReader(seqLog), bytes.NewReader(parLog))
	if err != nil {
		t.Fatal(err)
	}
	t.Fatalf("sequential and parallel queue-enabled logs differ (%d divergences); first: %v", len(divs), divs[0])
}

// TestSimDurabilityTeesRecordStream runs the scripted simulation with
// both RecordTo and a WAL attached and requires the WAL's logical
// payload stream to be byte-identical to the in-memory log — the WAL is
// the same replay evidence, just crash-safe. A second run with only the
// WAL must produce the same stream, and a half-synced log must still be
// readable up to its last committed frame.
func TestSimDurabilityTeesRecordStream(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0.2)
	params := DefaultParams()
	params.Parallelism = 1
	var buf bytes.Buffer
	params.RecordTo = &buf
	params.RecordSeed = 3
	params.Durability = wal.Options{Dir: t.TempDir(), SyncEvery: 8}
	eng, err := NewEngine(w.g, w.mtShare(t, false), params)
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(30, 3, 1, start)
	eng.Run(reqs, start)
	if err := eng.RecordErr(); err != nil {
		t.Fatal(err)
	}

	wlog, err := wal.Open(wal.Options{Dir: params.Durability.Dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	walBytes, err := io.ReadAll(wlog.NewReader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(walBytes, buf.Bytes()) {
		divs, derr := replay.CompareLogs(bytes.NewReader(buf.Bytes()), bytes.NewReader(walBytes))
		if derr != nil {
			t.Fatal(derr)
		}
		t.Fatalf("WAL stream differs from RecordTo stream (%d divergences); first: %v", len(divs), divs)
	}
	if _, evs, err := replay.ReadAll(bytes.NewReader(walBytes)); err != nil {
		t.Fatal(err)
	} else if len(evs) == 0 || evs[len(evs)-1].Metrics == nil {
		t.Fatalf("WAL stream must end with the counters seal (%d events)", len(evs))
	}
}

// TestSimDurabilityRejectsReuse proves the simulation refuses to append
// to a directory that already holds a log — batch runs never resume.
func TestSimDurabilityRejectsReuse(t *testing.T) {
	w := newWorld(t)
	params := DefaultParams()
	params.Parallelism = 1
	params.RecordSeed = 3
	params.Durability = wal.Options{Dir: t.TempDir(), SyncEvery: 1}
	eng, err := NewEngine(w.g, w.mtShare(t, false), params)
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(5, 3, 1, start)
	eng.Run(w.peakRequests(t, 0)[:4], start)
	if st, ok := eng.WALStats(); !ok || st.Records == 0 {
		t.Fatalf("expected WAL records, got %+v ok=%v", st, ok)
	}
	if _, err := NewEngine(w.g, w.mtShare(t, false), params); err == nil {
		t.Fatal("NewEngine over a used durability dir must fail")
	}
}
