package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/fleet"
)

// shiftSigs compresses a run's records into comparable outcome
// signatures (wall-clock fields excluded).
type shiftSig struct {
	ID                      fleet.RequestID
	Served, FromQueue, Exp  bool
	Taxi                    int64
	Assign, Pickup, Dropoff uint64
}

func shiftSigsOf(m *Metrics) []shiftSig {
	out := make([]shiftSig, len(m.Records))
	for i, rec := range m.Records {
		out[i] = shiftSig{
			ID: rec.Req.ID, Served: rec.Served, FromQueue: rec.ServedFromQueue, Exp: rec.Expired,
			Taxi:    rec.TaxiID,
			Assign:  math.Float64bits(rec.AssignSeconds),
			Pickup:  math.Float64bits(rec.PickupSeconds),
			Dropoff: math.Float64bits(rec.DropoffSeconds),
		}
	}
	return out
}

func runShift(t *testing.T, w *world, reqs []*fleet.Request, taxis, par int, sc ShiftChangeConfig) (*Engine, *Metrics) {
	t.Helper()
	params := DefaultParams()
	params.Parallelism = par
	params.ShiftChange = sc
	eng, err := NewEngine(w.g, w.mtShare(t, false), params)
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(taxis, 3, 1, start)
	return eng, eng.Run(reqs, start)
}

// The changeover's structural invariants: the cohort has the configured
// size, every cohort taxi ends empty and retired (capacity zero), the
// replacement cohort is exactly as large with fresh IDs and the original
// capacities, and the changeover actually cost something relative to the
// undisturbed fleet (vacuousness guard).
func TestShiftChangeoverInvariants(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	const taxis = 16
	sc := ShiftChangeConfig{AtSeconds: 8*3600 + 600, Fraction: 0.25, LagSeconds: 300, Seed: 9}
	wantCohort := int(math.Round(sc.Fraction * taxis))

	engBase, base := runShift(t, w, reqs, taxis, 1, ShiftChangeConfig{})
	if n := len(engBase.Taxis()); n != taxis {
		t.Fatalf("baseline fleet grew to %d taxis", n)
	}
	eng, m := runShift(t, w, reqs, taxis, 1, sc)

	if n := len(eng.Taxis()); n != taxis+wantCohort {
		t.Fatalf("fleet has %d taxis after changeover, want %d + %d replacements", n, taxis, wantCohort)
	}
	retired := 0
	for _, tx := range eng.Taxis() {
		if tx.Capacity == 0 {
			retired++
			if !tx.Empty() {
				t.Fatalf("taxi %d retired while still carrying passengers", tx.ID)
			}
		}
		if tx.ID > taxis && tx.Capacity != 3 {
			t.Fatalf("replacement taxi %d has capacity %d, want the retiree's 3", tx.ID, tx.Capacity)
		}
	}
	if retired != wantCohort {
		t.Fatalf("%d taxis retired, want the whole cohort of %d (the drain phase empties everyone)", retired, wantCohort)
	}
	// A supply dip must be visible somewhere: either fewer served or a
	// different assignment schedule than the undisturbed run.
	if m.Served == base.Served {
		a, b := shiftSigsOf(m), shiftSigsOf(base)
		same := len(a) == len(b)
		for i := 0; same && i < len(a); i++ {
			same = a[i] == b[i]
		}
		if same {
			t.Fatal("shift changeover produced a byte-identical run — the scenario is dead weight")
		}
	}
}

// Off-shift means off: once the sole taxi retires, a request released
// into the gap (before the lagged replacement exists) must go unserved,
// and a request released after the replacement arrives must be served by
// the replacement, never by the retiree.
func TestShiftRetireeTakesNoNewWork(t *testing.T) {
	w := newWorld(t)
	start := 8 * 3600.0
	mk := func(id int64, releaseOffset, rho float64) *fleet.Request {
		// A comfortably routable cross-town pair, re-snapped per request.
		o, _ := w.spx.NearestVertex(w.ds.Trips[10].Origin)
		d, _ := w.spx.NearestVertex(w.ds.Trips[10].Dest)
		direct, _, ok := w.g.AStar(o, d)
		if !ok || o == d {
			t.Fatal("test trip unroutable")
		}
		release := time.Duration((start + releaseOffset) * float64(time.Second))
		return &fleet.Request{
			ID: fleet.RequestID(id), ReleaseAt: release, Origin: o, Dest: d,
			Deadline:     release + time.Duration(direct/(15.0*1000/3600)*rho*float64(time.Second)),
			DirectMeters: direct, Passengers: 1,
			OriginPt: w.g.Point(o), DestPt: w.g.Point(d),
		}
	}
	// Gap request lands after the shift moment but long before the
	// replacement; late request lands after the replacement is on shift.
	// The gap request's window stays tight (it must die in the gap); the
	// late one is generous so the replacement can reach it from wherever
	// it spawned.
	sc := ShiftChangeConfig{AtSeconds: start + 60, Fraction: 1, LagSeconds: 3600, Seed: 3}
	reqs := []*fleet.Request{mk(1, 900, 1.3), mk(2, 5000, 8)}
	eng, m := runShift(t, w, reqs, 1, 1, sc)

	recGap := m.Records[0]
	if byID := func(id fleet.RequestID) *RequestRecord {
		for _, r := range m.Records {
			if r.Req.ID == id {
				return r
			}
		}
		t.Fatalf("no record for request %d", id)
		return nil
	}; true {
		recGap = byID(1)
		if recGap.Served {
			t.Fatalf("request in the supply gap was served by taxi %d — the retiree took new work", recGap.TaxiID)
		}
		recLate := byID(2)
		if !recLate.Served {
			t.Fatal("request after the replacement arrived went unserved")
		}
		if recLate.TaxiID != 2 {
			t.Fatalf("late request served by taxi %d, want replacement taxi 2", recLate.TaxiID)
		}
	}
	if n := len(eng.Taxis()); n != 2 {
		t.Fatalf("fleet size %d, want retiree + replacement", n)
	}
}

// A shift run must be bit-identical across fleet-advance parallelism —
// the changeover is tick-aligned and seeded, never wall-clock driven.
func TestShiftCrossParallelismDeterminism(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	sc := ShiftChangeConfig{AtSeconds: 8*3600 + 600, Fraction: 0.25, LagSeconds: 300, Seed: 9}
	_, m1 := runShift(t, w, reqs, 16, 1, sc)
	_, m2 := runShift(t, w, reqs, 16, 2, sc)
	_, m4 := runShift(t, w, reqs, 16, 4, sc)
	s1 := shiftSigsOf(m1)
	for name, other := range map[string][]shiftSig{"parallelism 2": shiftSigsOf(m2), "parallelism 4": shiftSigsOf(m4)} {
		if len(other) != len(s1) {
			t.Fatalf("%s produced %d records, want %d", name, len(other), len(s1))
		}
		for i := range s1 {
			if other[i] != s1[i] {
				t.Fatalf("%s diverged at record %d (request %d)", name, i, s1[i].ID)
			}
		}
	}
}

// Validation gates the bad configurations.
func TestShiftChangeValidation(t *testing.T) {
	for _, sc := range []ShiftChangeConfig{
		{AtSeconds: 10, Fraction: 0},
		{AtSeconds: 10, Fraction: 1.5},
		{AtSeconds: 10, Fraction: 0.5, LagSeconds: -1},
	} {
		p := DefaultParams()
		p.ShiftChange = sc
		if err := p.Validate(); err == nil {
			t.Fatalf("config %+v accepted", sc)
		}
	}
}
