package sim

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// PrepareOptions configures trip-to-request conversion.
type PrepareOptions struct {
	// SpeedMps converts direct distances into the deadline term.
	SpeedMps float64
	// Rho is the flexible factor ρ of Eq. 9: e = t + cost(o,d)·ρ.
	Rho float64
	// OfflineFrac marks this fraction of requests as offline street
	// hails, chosen pseudo-randomly with Seed (the non-peak scenario
	// hides ~1/3 of requests).
	OfflineFrac float64
	// PartySizes optionally draws each request's passenger count from
	// this distribution: PartySizes[i] is the relative weight of a party
	// of i+1. Nil means every request is a single passenger (the paper's
	// setting).
	PartySizes []float64
	Seed       int64

	// MeetingPointRadiusMeters, when positive, enables the meeting-points
	// variant (Laupichler & Sanders): instead of boarding at the vertex
	// nearest their door, riders walk up to this far to the candidate
	// pickup vertex with the cheapest direct drive to their destination.
	// The walk delays the request's release (the rider must get there)
	// while the deadline keeps Eq. 9's span, so a shorter drive converts
	// into insertion slack. Zero keeps the paper's nearest-vertex
	// snapping — and, deliberately, an identical random stream, so a
	// radius sweep shares the same party/offline draws per trip.
	MeetingPointRadiusMeters float64
	// WalkSpeedMps prices the walk (default 1.4 m/s).
	WalkSpeedMps float64
}

// maxMeetingCandidates bounds the exact-cost evaluations per trip; the
// nearest candidates by walk distance are kept (deterministic order).
const maxMeetingCandidates = 16

// drawParty samples a party size from the configured distribution.
func (o PrepareOptions) drawParty(r *rand.Rand) int {
	if len(o.PartySizes) == 0 {
		return 1
	}
	var total float64
	for _, w := range o.PartySizes {
		total += w
	}
	if total <= 0 {
		return 1
	}
	x := r.Float64() * total
	for i, w := range o.PartySizes {
		x -= w
		if x <= 0 {
			return i + 1
		}
	}
	return len(o.PartySizes)
}

// PrepareRequests converts trace trips to simulation requests: endpoints
// snapped to road vertices, direct costs computed on the graph, deadlines
// set per Eq. 9. Trips whose endpoints snap to the same vertex or that
// are unroutable are dropped, matching the paper's pre-mapping step.
func PrepareRequests(g *roadnet.Graph, spx *roadnet.SpatialIndex, trips []trace.Trip, opts PrepareOptions) []*fleet.Request {
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]*fleet.Request, 0, len(trips))
	for _, tr := range trips {
		o, ok1 := spx.NearestVertex(tr.Origin)
		d, ok2 := spx.NearestVertex(tr.Dest)
		if !ok1 || !ok2 || o == d {
			continue
		}
		direct, _, ok := g.AStar(o, d)
		if !ok {
			continue
		}
		release, span := tr.ReleaseAt, time.Duration(direct/opts.SpeedMps*opts.Rho*float64(time.Second))
		if opts.MeetingPointRadiusMeters > 0 {
			if mp, mpDirect, found := chooseMeetingPoint(g, spx, tr.Origin, o, d, direct, opts.MeetingPointRadiusMeters); found {
				walk := geo.Equirect(tr.Origin, g.Point(mp))
				speed := opts.WalkSpeedMps
				if speed <= 0 {
					speed = 1.4
				}
				o, direct = mp, mpDirect
				release = tr.ReleaseAt + time.Duration(walk/speed*float64(time.Second))
			}
		}
		req := &fleet.Request{
			ID:           fleet.RequestID(tr.ID),
			ReleaseAt:    release,
			Origin:       o,
			Dest:         d,
			Deadline:     release + span,
			DirectMeters: direct,
			Passengers:   opts.drawParty(rng),
			Offline:      rng.Float64() < opts.OfflineFrac,
			OriginPt:     g.Point(o),
			DestPt:       g.Point(d),
		}
		if req.Validate() != nil {
			continue
		}
		out = append(out, req)
	}
	return out
}

// chooseMeetingPoint picks the pickup vertex within walking radius of
// the rider's door that minimizes the direct drive to d, ties broken by
// (walk distance, vertex ID) so the choice is deterministic. It returns
// found=false when no in-radius candidate beats the nearest-vertex
// snap o (whose cost is nearestDirect), keeping the request identical
// to the radius-0 baseline.
func chooseMeetingPoint(g *roadnet.Graph, spx *roadnet.SpatialIndex, door geo.Point, o, d roadnet.VertexID, nearestDirect, radius float64) (roadnet.VertexID, float64, bool) {
	cands := spx.VerticesWithin(door, radius)
	if len(cands) == 0 {
		return o, 0, false
	}
	type cand struct {
		v    roadnet.VertexID
		walk float64
	}
	cs := make([]cand, 0, len(cands))
	for _, v := range cands {
		if v == d {
			continue
		}
		cs = append(cs, cand{v, geo.Equirect(door, g.Point(v))})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].walk != cs[j].walk {
			return cs[i].walk < cs[j].walk
		}
		return cs[i].v < cs[j].v
	})
	if len(cs) > maxMeetingCandidates {
		cs = cs[:maxMeetingCandidates]
	}
	best, bestDirect, found := o, nearestDirect, false
	for _, c := range cs {
		if c.v == o {
			continue
		}
		direct, _, ok := g.AStar(c.v, d)
		if !ok {
			continue
		}
		if direct < bestDirect {
			best, bestDirect, found = c.v, direct, true
		}
	}
	return best, bestDirect, found
}
