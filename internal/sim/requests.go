package sim

import (
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// PrepareOptions configures trip-to-request conversion.
type PrepareOptions struct {
	// SpeedMps converts direct distances into the deadline term.
	SpeedMps float64
	// Rho is the flexible factor ρ of Eq. 9: e = t + cost(o,d)·ρ.
	Rho float64
	// OfflineFrac marks this fraction of requests as offline street
	// hails, chosen pseudo-randomly with Seed (the non-peak scenario
	// hides ~1/3 of requests).
	OfflineFrac float64
	// PartySizes optionally draws each request's passenger count from
	// this distribution: PartySizes[i] is the relative weight of a party
	// of i+1. Nil means every request is a single passenger (the paper's
	// setting).
	PartySizes []float64
	Seed       int64
}

// drawParty samples a party size from the configured distribution.
func (o PrepareOptions) drawParty(r *rand.Rand) int {
	if len(o.PartySizes) == 0 {
		return 1
	}
	var total float64
	for _, w := range o.PartySizes {
		total += w
	}
	if total <= 0 {
		return 1
	}
	x := r.Float64() * total
	for i, w := range o.PartySizes {
		x -= w
		if x <= 0 {
			return i + 1
		}
	}
	return len(o.PartySizes)
}

// PrepareRequests converts trace trips to simulation requests: endpoints
// snapped to road vertices, direct costs computed on the graph, deadlines
// set per Eq. 9. Trips whose endpoints snap to the same vertex or that
// are unroutable are dropped, matching the paper's pre-mapping step.
func PrepareRequests(g *roadnet.Graph, spx *roadnet.SpatialIndex, trips []trace.Trip, opts PrepareOptions) []*fleet.Request {
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]*fleet.Request, 0, len(trips))
	for _, tr := range trips {
		o, ok1 := spx.NearestVertex(tr.Origin)
		d, ok2 := spx.NearestVertex(tr.Dest)
		if !ok1 || !ok2 || o == d {
			continue
		}
		direct, _, ok := g.AStar(o, d)
		if !ok {
			continue
		}
		directSec := direct / opts.SpeedMps
		req := &fleet.Request{
			ID:           fleet.RequestID(tr.ID),
			ReleaseAt:    tr.ReleaseAt,
			Origin:       o,
			Dest:         d,
			Deadline:     tr.ReleaseAt + time.Duration(directSec*opts.Rho*float64(time.Second)),
			DirectMeters: direct,
			Passengers:   opts.drawParty(rng),
			Offline:      rng.Float64() < opts.OfflineFrac,
			OriginPt:     g.Point(o),
			DestPt:       g.Point(d),
		}
		if req.Validate() != nil {
			continue
		}
		out = append(out, req)
	}
	return out
}
