package sim

import (
	"math"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/match"
)

// mtShareParallel builds the mT-Share scheme with an explicit dispatch
// parallelism.
func (w *world) mtShareParallel(t testing.TB, probabilistic bool, parallelism int) dispatch.Scheme {
	t.Helper()
	cfg := match.DefaultConfig()
	cfg.SearchRangeMeters = 2500
	cfg.Parallelism = parallelism
	e, err := match.NewEngine(w.pt, w.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return match.NewScheme(e, probabilistic)
}

// TestSimParallelMatchesSequential runs the same seeded peak hour with
// sequential and parallel tick movement plus sequential and parallel
// dispatch, and requires identical simulation outcomes: per-request served
// and delivery flags, pickup/dropoff times, and fleet odometer totals
// (ResponseNanos is wall-clock and excluded).
func TestSimParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-hour simulation")
	}
	w := newWorld(t)
	run := func(simPar, dispatchPar int) *Metrics {
		reqs := w.peakRequests(t, 0.2)
		params := DefaultParams()
		params.Parallelism = simPar
		eng, err := NewEngine(w.g, w.mtShareParallel(t, true, dispatchPar), params)
		if err != nil {
			t.Fatal(err)
		}
		start := 8 * 3600.0
		eng.PlaceTaxis(40, 3, 1, start)
		return eng.Run(reqs, start)
	}
	base := run(1, 1)
	if base.Served == 0 || base.Delivered == 0 {
		t.Fatal("baseline run served nothing; test is vacuous")
	}
	for _, c := range [][2]int{{4, 1}, {1, 8}, {4, 8}} {
		got := run(c[0], c[1])
		if got.Served != base.Served || got.Delivered != base.Delivered ||
			got.ServedOffline != base.ServedOffline {
			t.Fatalf("simPar=%d dispatchPar=%d: served/delivered (%d,%d) vs baseline (%d,%d)",
				c[0], c[1], got.Served, got.Delivered, base.Served, base.Delivered)
		}
		if math.Float64bits(got.TaxiMeters) != math.Float64bits(base.TaxiMeters) {
			t.Fatalf("simPar=%d dispatchPar=%d: TaxiMeters %v vs %v",
				c[0], c[1], got.TaxiMeters, base.TaxiMeters)
		}
		if math.Float64bits(got.PassengerMeters) != math.Float64bits(base.PassengerMeters) {
			t.Fatalf("simPar=%d dispatchPar=%d: PassengerMeters %v vs %v",
				c[0], c[1], got.PassengerMeters, base.PassengerMeters)
		}
		if len(got.Records) != len(base.Records) {
			t.Fatalf("simPar=%d dispatchPar=%d: %d records vs %d",
				c[0], c[1], len(got.Records), len(base.Records))
		}
		for i, br := range base.Records {
			gr := got.Records[i]
			if gr.Req.ID != br.Req.ID || gr.Served != br.Served || gr.Delivered != br.Delivered {
				t.Fatalf("simPar=%d dispatchPar=%d: record %d flags differ", c[0], c[1], i)
			}
			if math.Float64bits(gr.PickupSeconds) != math.Float64bits(br.PickupSeconds) ||
				math.Float64bits(gr.DropoffSeconds) != math.Float64bits(br.DropoffSeconds) ||
				math.Float64bits(gr.AssignSeconds) != math.Float64bits(br.AssignSeconds) {
				t.Fatalf("simPar=%d dispatchPar=%d: record %d (req %d) times differ",
					c[0], c[1], i, gr.Req.ID)
			}
		}
	}
}
