// Package sim is the discrete-event evaluation substrate of the
// reproduction: it replays a day's ride requests against a fleet of taxis
// driven by a pluggable dispatch scheme, moving taxis exactly along their
// planned routes at the constant evaluation speed, detecting roadside
// encounters with offline requests, settling fares with the payment
// model, and collecting the metrics reported in the paper's §V (served
// requests, response time, detour time, waiting time, candidate-set size,
// fares and driver income).
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/fleet"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/payment"
	"repro/internal/replay"
	"repro/internal/roadnet"
	"repro/internal/wal"
)

// Params configures a simulation run.
type Params struct {
	// SpeedMps is the constant taxi speed (paper: 15 km/h).
	SpeedMps float64
	// TickSeconds is the simulation step (default 5 s).
	TickSeconds float64
	// EncounterRadiusMeters is how close a taxi must pass to a hailing
	// offline passenger to notice them (default 80 m).
	EncounterRadiusMeters float64
	// MaxDrainSeconds bounds the post-workload drain phase that lets
	// assigned passengers finish their rides (default 2 h).
	MaxDrainSeconds float64
	// IdlePlanEverySeconds throttles idle-cruise planning per taxi
	// (default 60 s).
	IdlePlanEverySeconds float64
	// Payment is the settlement model; zero value disables settlement.
	Payment payment.Model
	// SettlePayments enables fare settlement.
	SettlePayments bool
	// Parallelism bounds the workers that advance the fleet each tick.
	// 0 uses runtime.GOMAXPROCS(0); 1 is strictly sequential. Taxi
	// movement is taxi-local, and the fired events are applied in taxi-ID
	// order afterwards, so every parallelism level produces an identical
	// simulation.
	Parallelism int

	// QueueDepth bounds the pending-request queue. When positive, an
	// online request that finds no feasible taxi parks for batched
	// re-dispatch on later ticks instead of failing terminally; when the
	// queue is full the request is rejected (backpressure). Zero (the
	// default) disables queueing.
	QueueDepth int
	// RetryEveryTicks runs the queue's batch re-dispatch every Nth tick
	// (default 1 — every tick). Expired requests are evicted on every
	// tick regardless.
	RetryEveryTicks int
	// BatchAssign records that the scheme's dispatcher runs the queue's
	// retry rounds as a global min-cost assignment (match.Config.
	// BatchAssign). Like Sharding, the simulation does not build the
	// dispatcher — the knob lives in the scheme's engine config — but it
	// changes which requests are served, so it lands in the recorded log
	// header for provenance and replay.
	BatchAssign bool

	// Sharding records the dispatch scheme's sharding topology for the
	// run. The simulation does not build the dispatcher — the scheme
	// carries it — but the topology lands in the recorded log header
	// (sharding is outcome-neutral, yet the per-shard counters seal into
	// the log), and a sharded scheme supplies the pending-request pool so
	// queued requests route to their home shard's queue.
	Sharding match.ShardingConfig

	// ShiftChange models a driver-shift changeover mid-run: at AtSeconds
	// a seeded Fraction of the then-current fleet goes off shift — each
	// cohort taxi finishes its committed schedule, then stops accepting
	// passengers (its capacity drops to zero) — and LagSeconds later the
	// same number of fresh taxis come on shift at seeded vertices. The
	// zero value disables the changeover.
	ShiftChange ShiftChangeConfig

	// Metrics receives the simulation's instruments under mtshare_sim_*
	// (ticks, tick latency, request lifecycle, roadside encounters). nil
	// gives the engine a private registry; pass the dispatcher's registry
	// to see simulation and matching on one surface.
	Metrics *obs.Registry

	// RecordTo, when set, records the run as a replay.KindSim JSONL log:
	// every dispatch outcome, roadside-encounter service, and tick's ride
	// events, sealed with the deterministic counters. Two runs of the
	// same scripted workload must produce byte-identical logs
	// (replay.CompareLogs diffs them); wall-clock quantities are never
	// written.
	RecordTo io.Writer
	// RecordSeed stamps the log header with the workload seed for
	// provenance; it does not affect the simulation.
	RecordSeed int64

	// Durability, when enabled, appends the run's event stream to a
	// crash-safe WAL in wal.Options.Dir — the same replay-v3 records
	// RecordTo would see, framed and fsynced per the group-commit
	// settings. The simulation is batch-oriented, so this is event
	// durability only: a crashed run's WAL is complete, replayable
	// evidence of everything committed before the crash, but there is no
	// snapshot/resume path (use the facade's Options.Durability for
	// stateful recovery). SnapshotEveryTicks must be 0.
	Durability wal.Options
}

// ShiftChangeConfig parameterizes the mid-run driver-shift changeover.
// Everything is seeded and applied at tick boundaries in taxi-ID order,
// so a shift run is as deterministic as a plain one at any parallelism.
type ShiftChangeConfig struct {
	// AtSeconds is the simulated time the off-going cohort stops taking
	// new work; 0 disables the changeover entirely.
	AtSeconds float64
	// Fraction of the fleet (at AtSeconds) that goes off shift, in (0,1].
	Fraction float64
	// LagSeconds after AtSeconds before the replacement cohort comes on
	// shift — the supply dip the dispatcher must ride out.
	LagSeconds float64
	// Seed picks the off-going cohort and the replacements' start
	// vertices.
	Seed int64
}

// Enabled reports whether the changeover fires.
func (c ShiftChangeConfig) Enabled() bool { return c.AtSeconds > 0 }

// Validate reports whether the configuration is usable.
func (c ShiftChangeConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.Fraction <= 0 || c.Fraction > 1:
		return fmt.Errorf("sim: ShiftChange.Fraction must be in (0,1], got %v", c.Fraction)
	case c.LagSeconds < 0:
		return fmt.Errorf("sim: ShiftChange.LagSeconds negative")
	}
	return nil
}

// DefaultParams returns the evaluation defaults.
func DefaultParams() Params {
	return Params{
		SpeedMps:              15.0 * 1000 / 3600,
		TickSeconds:           5,
		EncounterRadiusMeters: 80,
		MaxDrainSeconds:       7200,
		IdlePlanEverySeconds:  60,
		Payment:               payment.DefaultModel(),
		SettlePayments:        true,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.SpeedMps <= 0:
		return fmt.Errorf("sim: SpeedMps must be positive, got %v", p.SpeedMps)
	case p.TickSeconds <= 0:
		return fmt.Errorf("sim: TickSeconds must be positive, got %v", p.TickSeconds)
	case p.EncounterRadiusMeters < 0:
		return fmt.Errorf("sim: EncounterRadiusMeters negative")
	case p.MaxDrainSeconds < 0:
		return fmt.Errorf("sim: MaxDrainSeconds negative")
	case p.Parallelism < 0:
		return fmt.Errorf("sim: Parallelism negative")
	case p.QueueDepth < 0:
		return fmt.Errorf("sim: QueueDepth negative")
	case p.RetryEveryTicks < 0:
		return fmt.Errorf("sim: RetryEveryTicks negative")
	case p.RetryEveryTicks > 0 && p.QueueDepth == 0:
		return fmt.Errorf("sim: RetryEveryTicks requires QueueDepth > 0")
	case p.Durability.Enabled() && p.Durability.SnapshotEveryTicks != 0:
		return fmt.Errorf("sim: Durability.SnapshotEveryTicks is not supported (event durability only)")
	}
	if err := p.ShiftChange.Validate(); err != nil {
		return err
	}
	return p.Sharding.Validate()
}

// parallelism returns the effective per-tick worker count.
func (p Params) parallelism() int {
	if p.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Parallelism
}

// RequestRecord tracks one request through the simulation.
type RequestRecord struct {
	Req           *fleet.Request
	Served        bool
	ServedOffline bool
	Delivered     bool
	Expired       bool
	// TaxiID is the serving taxi (0 while unassigned).
	TaxiID int64
	// Queued marks a request that parked in the pending queue after its
	// initial dispatch failed; QueueRetries counts its batch re-dispatch
	// rounds and QueueWaitSeconds the queued-to-matched delay (0 until
	// matched). ServedFromQueue marks a queued request a retry served.
	Queued           bool
	ServedFromQueue  bool
	QueueRetries     int
	QueueWaitSeconds float64
	// Times are absolute simulation seconds.
	AssignSeconds  float64
	PickupSeconds  float64
	DropoffSeconds float64
	// ResponseNanos is the wall-clock processing time of the dispatch
	// call (the paper's response-time metric).
	ResponseNanos int64
	// Candidates is the candidate-set size examined at dispatch.
	Candidates int
	// Odometer snapshots support exact shared-distance accounting.
	pickupOdo  float64
	dropoffOdo float64
	// Fares (filled when settlement is enabled and the ride completed).
	RegularFare float64
	PaidFare    float64
}

// SharedMeters returns the distance the passenger rode on the shared
// route.
func (r *RequestRecord) SharedMeters() float64 { return r.dropoffOdo - r.pickupOdo }

// WaitingSeconds returns pickup − release for delivered requests.
func (r *RequestRecord) WaitingSeconds() float64 {
	return r.PickupSeconds - r.Req.ReleaseAt.Seconds()
}

// DetourSeconds returns the extra in-vehicle time over the direct trip.
func (r *RequestRecord) DetourSeconds(speedMps float64) float64 {
	inVehicle := r.DropoffSeconds - r.PickupSeconds
	return inVehicle - r.Req.DirectSeconds(speedMps)
}

// episode tracks one continuous shared ride of a taxi (first pickup from
// empty to the dropoff that empties it) for settlement.
type episode struct {
	startOdo float64
	rides    []payment.RideRecord
}

// Engine drives one simulation run. It is single-goroutine.
type Engine struct {
	params Params
	g      *roadnet.Graph
	scheme dispatch.Scheme

	taxis    []*fleet.Taxi
	episodes map[int64]*episode
	lastIdle map[int64]float64

	taxiGrid *index.LocationGrid

	records map[fleet.RequestID]*RequestRecord
	pending []*fleet.Request // offline, released, not yet served/expired

	// Pending-request queue (nil when Params.QueueDepth is 0): online
	// requests whose dispatch failed wait here for batched re-dispatch
	// every retryEvery ticks. tickCount counts completed ticks. A
	// sharded scheme supplies a per-shard queue group under one global
	// bound; otherwise it is a plain bounded queue.
	queue      match.Pool
	retryEvery int
	tickCount  int64

	// Aggregates.
	driverIncome    float64
	totalPaid       float64
	totalRegular    float64
	settledRides    int
	occupiedSecs    float64
	passengerMeters float64
	startSeconds    float64
	wallStart       time.Time
	ExecutionSecs   float64
	FinalSimSeconds float64

	// Shift-changeover state (zero when Params.ShiftChange is disabled):
	// the off-going cohort in taxi-ID order, their original capacities
	// (the replacements mirror them), and the two phase latches.
	shiftCohort   []*fleet.Taxi
	shiftCaps     []int
	shiftPicked   bool
	shiftReplaced bool
	shiftIns      *shiftInstruments

	reg *obs.Registry
	ins simInstruments

	rec      *replay.Encoder
	wal      *wal.Log
	eventIdx int64
}

// simInstruments are the simulation's registry-backed instruments.
type simInstruments struct {
	ticks            *obs.Counter
	requestsReleased *obs.Counter
	requestsServed   *obs.Counter
	encounters       *obs.Counter
	tickSeconds      *obs.Histogram
	dispatchSeconds  *obs.Histogram
	// Pending-queue lifecycle. All counters are a pure function of the
	// event stream, so they land in the recorded deterministic counters;
	// the depth gauge is excluded (gauges never record).
	queueDepth    *obs.Gauge
	queueEnqueued *obs.Counter
	queueRejected *obs.Counter
	queueRetries  *obs.Counter
	queueServed   *obs.Counter
	queueExpired  *obs.Counter
}

// shiftInstruments are registered only when the changeover is enabled:
// the counters live under the deterministic mtshare_sim_ prefix, and an
// unconditional registration would grow zero-valued entries in every
// sealed golden log.
type shiftInstruments struct {
	offShift     *obs.Counter
	retired      *obs.Counter
	replacements *obs.Counter
}

func newShiftInstruments(reg *obs.Registry) *shiftInstruments {
	return &shiftInstruments{
		offShift:     reg.Counter("mtshare_sim_shift_offshift_total"),
		retired:      reg.Counter("mtshare_sim_shift_retired_total"),
		replacements: reg.Counter("mtshare_sim_shift_replacements_total"),
	}
}

func newSimInstruments(reg *obs.Registry) simInstruments {
	return simInstruments{
		ticks:            reg.Counter("mtshare_sim_ticks_total"),
		requestsReleased: reg.Counter("mtshare_sim_requests_released_total"),
		requestsServed:   reg.Counter("mtshare_sim_requests_served_total"),
		encounters:       reg.Counter("mtshare_sim_encounters_total"),
		tickSeconds:      reg.Histogram("mtshare_sim_tick_seconds"),
		dispatchSeconds:  reg.Histogram("mtshare_sim_dispatch_seconds"),
		queueDepth:       reg.Gauge("mtshare_sim_queue_depth"),
		queueEnqueued:    reg.Counter("mtshare_sim_queue_enqueued_total"),
		queueRejected:    reg.Counter("mtshare_sim_queue_rejected_total"),
		queueRetries:     reg.Counter("mtshare_sim_queue_retries_total"),
		queueServed:      reg.Counter("mtshare_sim_queue_served_total"),
		queueExpired:     reg.Counter("mtshare_sim_queue_expired_total"),
	}
}

// NewEngine creates a simulation over the graph with the given scheme.
func NewEngine(g *roadnet.Graph, scheme dispatch.Scheme, params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	min, max := g.Bounds()
	reg := params.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		params:   params,
		g:        g,
		scheme:   scheme,
		episodes: make(map[int64]*episode),
		lastIdle: make(map[int64]float64),
		taxiGrid: index.NewLocationGrid(min, max, 300),
		records:  make(map[fleet.RequestID]*RequestRecord),
		reg:      reg,
		ins:      newSimInstruments(reg),
	}
	if params.ShiftChange.Enabled() {
		e.shiftIns = newShiftInstruments(reg)
	}
	if params.QueueDepth > 0 {
		if sp, ok := scheme.(shardedPooler); ok && sp.ShardCount() > 1 {
			e.queue = sp.NewPendingPool(params.QueueDepth)
		} else {
			e.queue = match.NewPendingQueue(params.QueueDepth, params.SpeedMps)
		}
		e.retryEvery = params.RetryEveryTicks
		if e.retryEvery == 0 {
			e.retryEvery = 1
		}
	}
	target := params.RecordTo
	if params.Durability.Enabled() {
		wlog, err := wal.Open(params.Durability, reg)
		if err != nil {
			return nil, err
		}
		if wlog.Records() > 0 {
			wlog.Close()
			return nil, fmt.Errorf("sim: durability dir %q already holds %d records; the simulation starts fresh logs only", params.Durability.Dir, wlog.Records())
		}
		e.wal = wlog
		if target != nil {
			target = io.MultiWriter(target, wlog.AppendWriter())
		} else {
			target = wlog.AppendWriter()
		}
	}
	if target != nil {
		rec, err := replay.NewEncoder(target, replay.Header{
			Version:          replay.Version,
			Kind:             replay.KindSim,
			Seed:             params.RecordSeed,
			SpeedKmh:         params.SpeedMps * 3.6,
			QueueDepth:       params.QueueDepth,
			RetryEveryTicks:  params.RetryEveryTicks,
			BatchAssign:      params.BatchAssign,
			Shards:           params.Sharding.Shards,
			BorderPolicy:     params.Sharding.BorderPolicy,
			GraphFingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
		})
		if err != nil {
			if e.wal != nil {
				e.wal.Close()
			}
			return nil, err
		}
		e.rec = rec
	}
	return e, nil
}

// record appends one event line when recording is active, consuming the
// next event index.
func (e *Engine) record(build func(i int64) replay.Event) {
	if e.rec == nil {
		return
	}
	ev := build(e.eventIdx)
	e.eventIdx++
	e.rec.Encode(ev)
}

// RecordErr returns the log encoder's sticky write error, if recording
// was enabled and a write failed; with durability on, the WAL's sticky
// append/fsync error surfaces here too.
func (e *Engine) RecordErr() error {
	if e.rec != nil {
		if err := e.rec.Err(); err != nil {
			return err
		}
	}
	if e.wal != nil {
		return e.wal.Err()
	}
	return nil
}

// WALStats returns the durability log's statistics, when enabled.
func (e *Engine) WALStats() (wal.Stats, bool) {
	if e.wal == nil {
		return wal.Stats{}, false
	}
	return e.wal.Stats(), true
}

// Metrics returns the registry holding the simulation's instruments.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// PlaceTaxis creates n taxis with the given capacity at deterministic
// pseudo-random vertices and registers them with the scheme.
func (e *Engine) PlaceTaxis(n, capacity int, seed int64, startSeconds float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		at := roadnet.VertexID(rng.Intn(e.g.NumVertices()))
		t := fleet.NewTaxi(e.g, int64(i+1), capacity, at)
		e.taxis = append(e.taxis, t)
		e.scheme.AddTaxi(t, startSeconds)
		e.taxiGrid.Update(t.ID, t.Point())
	}
}

// Taxis returns the simulated fleet.
func (e *Engine) Taxis() []*fleet.Taxi { return e.taxis }

// Run replays the given requests (online and offline mixed; they carry
// the Offline flag) from startSeconds until all released requests are
// resolved and all taxis are empty, bounded by MaxDrainSeconds past the
// last release.
func (e *Engine) Run(requests []*fleet.Request, startSeconds float64) *Metrics {
	reqs := make([]*fleet.Request, len(requests))
	copy(reqs, requests)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ReleaseAt < reqs[j].ReleaseAt })
	for _, r := range reqs {
		e.records[r.ID] = &RequestRecord{Req: r}
	}
	var lastRelease float64 = startSeconds
	if len(reqs) > 0 {
		lastRelease = reqs[len(reqs)-1].ReleaseAt.Seconds()
	}
	e.wallStart = time.Now()
	e.startSeconds = startSeconds
	now := startSeconds
	next := 0
	dt := e.params.TickSeconds
	for {
		tickStart := time.Now()
		// 0a. Shift changeover: retire emptied off-shift taxis, bring the
		// replacement cohort on before this tick's dispatches see them.
		e.serviceShift(now)
		// 0b. Pending-queue maintenance: evict requests whose pickup
		// deadline passed, then — when the retry interval is due —
		// re-dispatch the parked batch before this tick's releases.
		qMatched, qExpired := e.serviceQueue(now)
		// 1. Release requests due by now.
		for next < len(reqs) && reqs[next].ReleaseAt.Seconds() <= now {
			r := reqs[next]
			next++
			e.ins.requestsReleased.Inc()
			if r.Offline {
				e.pending = append(e.pending, r)
				continue
			}
			e.dispatchOnline(r, now, false)
		}
		// 2. Move taxis, firing events.
		e.advanceTaxis(now, dt, qMatched, qExpired)
		// 3. Roadside encounters with offline requests.
		e.handleEncounters(now + dt)
		// 4. Expire hopeless offline requests.
		e.expirePending(now + dt)
		// 5. Idle cruising (probabilistic variants).
		e.planIdle(now + dt)
		e.ins.ticks.Inc()
		e.ins.tickSeconds.ObserveSince(tickStart)

		now += dt
		if next >= len(reqs) && now > lastRelease {
			if (e.allTaxisIdle() && e.queueLen() == 0) || now > lastRelease+e.params.MaxDrainSeconds {
				break
			}
		}
	}
	e.ExecutionSecs = time.Since(e.wallStart).Seconds()
	e.FinalSimSeconds = now
	e.record(func(i int64) replay.Event {
		return replay.Event{I: i, Metrics: &replay.MetricsRecord{
			Counters: replay.DeterministicCounters(e.reg.Snapshot().Counters),
		}}
	})
	if e.wal != nil {
		e.wal.Close() // final flush+fsync; errors stay sticky for RecordErr
	}
	return e.collectMetrics()
}

// serviceShift runs the driver-shift changeover state machine at a tick
// boundary. Phase 1 (now >= AtSeconds): a seeded Fraction of the fleet
// is picked as the off-going cohort, in taxi-ID order; each cohort taxi
// finishes its committed schedule and is retired — capacity zeroed — the
// first tick it stands empty, making every later insertion infeasible
// while keeping the taxi's movement deterministic. Phase 2 (now >=
// AtSeconds + LagSeconds): one fresh replacement per cohort member, with
// the retiree's original capacity, comes on shift at a seeded vertex
// through the ordinary AddTaxi path. Everything is driven by simulated
// time and one seeded rng, so runs are bit-identical at any parallelism.
func (e *Engine) serviceShift(now float64) {
	sc := e.params.ShiftChange
	if !sc.Enabled() {
		return
	}
	if !e.shiftPicked && now >= sc.AtSeconds {
		rng := rand.New(rand.NewSource(sc.Seed))
		k := int(math.Round(sc.Fraction * float64(len(e.taxis))))
		if k < 1 {
			k = 1
		}
		picked := rng.Perm(len(e.taxis))[:k]
		sort.Ints(picked)
		for _, i := range picked {
			e.shiftCohort = append(e.shiftCohort, e.taxis[i])
			e.shiftCaps = append(e.shiftCaps, e.taxis[i].Capacity)
		}
		e.shiftPicked = true
		e.shiftIns.offShift.Add(int64(k))
	}
	if e.shiftPicked {
		for _, t := range e.shiftCohort {
			if t.Capacity > 0 && t.Empty() {
				t.Capacity = 0
				e.shiftIns.retired.Inc()
			}
		}
	}
	if e.shiftPicked && !e.shiftReplaced && now >= sc.AtSeconds+sc.LagSeconds {
		rng := rand.New(rand.NewSource(sc.Seed + 1))
		var nextID int64
		for _, t := range e.taxis {
			if t.ID > nextID {
				nextID = t.ID
			}
		}
		for _, capacity := range e.shiftCaps {
			nextID++
			at := roadnet.VertexID(rng.Intn(e.g.NumVertices()))
			t := fleet.NewTaxi(e.g, nextID, capacity, at)
			e.taxis = append(e.taxis, t)
			e.scheme.AddTaxi(t, now)
			e.taxiGrid.Update(t.ID, t.Point())
			e.shiftIns.replacements.Inc()
		}
		e.shiftReplaced = true
	}
}

// queueLen returns the pending queue's depth (0 when disabled).
func (e *Engine) queueLen() int {
	if e.queue == nil {
		return 0
	}
	return e.queue.Stats().Depth
}

// requestDropper lets a scheme clean per-request index state when a
// queued request expires without ever being committed (the match
// engine's mobility clusters hold the request from dispatch time).
type requestDropper interface{ OnRequestDone(req *fleet.Request) }

// shardedPooler is the optional scheme surface a sharded dispatcher
// exposes: when the topology has more than one shard, the scheme builds
// the pending pool so each queued request parks on its home shard's
// queue (one global capacity bound across shards).
type shardedPooler interface {
	NewPendingPool(capacity int) match.Pool
	ShardCount() int
}

// serviceQueue runs one tick of pending-queue maintenance: evict every
// parked request whose pickup deadline strictly passed, then — when the
// retry interval is due — re-dispatch the remaining batch through the
// scheme. Returns the tick's matches and evictions for the replay log.
func (e *Engine) serviceQueue(now float64) (matched []replay.QueueMatch, expired []int64) {
	if e.queue == nil {
		return nil, nil
	}
	e.tickCount++
	for _, it := range e.queue.ExpireBefore(now) {
		if rec := e.records[it.Req.ID]; rec != nil {
			rec.Expired = true
			rec.QueueRetries = it.Retries
		}
		if d, ok := e.scheme.(requestDropper); ok {
			d.OnRequestDone(it.Req)
		}
		e.ins.queueExpired.Inc()
		expired = append(expired, int64(it.Req.ID))
	}
	defer func() { e.ins.queueDepth.Set(float64(e.queueLen())) }()
	if e.tickCount%int64(e.retryEvery) != 0 {
		return matched, expired
	}
	batch := e.queue.NextBatch()
	if len(batch) == 0 {
		return matched, expired
	}
	e.ins.queueRetries.Add(int64(len(batch)))
	reqs := make([]*fleet.Request, len(batch))
	items := make(map[fleet.RequestID]*match.PendingItem, len(batch))
	for i, it := range batch {
		reqs[i] = it.Req
		items[it.Req.ID] = it
	}
	for _, r := range e.batchDispatch(reqs, now) {
		if !r.Out.Served || !e.queue.MarkServed(r.Req.ID, now) {
			continue
		}
		it := items[r.Req.ID]
		wait := now - it.EnqueuedAt
		if rec := e.records[r.Req.ID]; rec != nil {
			rec.Served = true
			rec.ServedFromQueue = true
			rec.TaxiID = r.Out.TaxiID
			rec.AssignSeconds = now
			rec.QueueRetries = it.Retries
			rec.QueueWaitSeconds = wait
			rec.Candidates = r.Out.Candidates
		}
		e.ins.requestsServed.Inc()
		e.ins.queueServed.Inc()
		matched = append(matched, replay.QueueMatch{
			Request:   int64(r.Req.ID),
			Taxi:      r.Out.TaxiID,
			WaitNanos: int64(wait * float64(time.Second)),
			Conflict:  r.Conflict,
		})
	}
	return matched, expired
}

// batchDispatch routes a retry batch through the scheme: natively when
// it implements dispatch.BatchDispatcher, otherwise per-request in the
// batch's deterministic (pickup deadline, request ID) order.
func (e *Engine) batchDispatch(reqs []*fleet.Request, now float64) []dispatch.BatchResult {
	if bd, ok := e.scheme.(dispatch.BatchDispatcher); ok {
		return bd.OnBatch(reqs, now)
	}
	res := make([]dispatch.BatchResult, len(reqs))
	for i, r := range reqs {
		res[i] = dispatch.BatchResult{Req: r, Out: e.scheme.OnRequest(r, now)}
	}
	return res
}

func (e *Engine) allTaxisIdle() bool {
	for _, t := range e.taxis {
		if !t.Empty() {
			return false
		}
	}
	return true
}

// dispatchOnline runs the scheme's dispatcher for a request and records
// the outcome. offline marks requests that reached the dispatcher through
// the roadside-encounter fallback.
func (e *Engine) dispatchOnline(r *fleet.Request, now float64, offline bool) bool {
	rec := e.records[r.ID]
	t0 := time.Now()
	out := e.scheme.OnRequest(r, now)
	rec.ResponseNanos = time.Since(t0).Nanoseconds()
	e.ins.dispatchSeconds.Observe(float64(rec.ResponseNanos) / 1e9)
	rec.Candidates = out.Candidates
	errCode := ""
	if !out.Served {
		errCode = "no_taxi"
		// Online requests park in the pending queue for batched
		// re-dispatch instead of failing terminally; a full queue is an
		// explicit backpressure rejection, and a request whose pickup
		// deadline already passed is a terminal expiry, not backpressure.
		if !r.Offline && e.queue != nil {
			switch e.queue.Push(r, now) {
			case match.PushAccepted:
				errCode = "queued"
				rec.Queued = true
				e.ins.queueEnqueued.Inc()
				e.ins.queueDepth.Set(float64(e.queueLen()))
			case match.PushRejectedExpired:
				errCode = "expired"
				rec.Expired = true
				e.ins.queueRejected.Inc()
			default:
				errCode = "queue_full"
				e.ins.queueRejected.Inc()
			}
		}
	}
	e.record(func(i int64) replay.Event {
		return replay.Event{I: i, Request: &replay.RequestEvent{
			Pickup:  replay.Point{Lat: r.OriginPt.Lat, Lng: r.OriginPt.Lng},
			Dropoff: replay.Point{Lat: r.DestPt.Lat, Lng: r.DestPt.Lng},
			Out: replay.RequestOutcome{
				Err:        errCode,
				Request:    int64(r.ID),
				Taxi:       out.TaxiID,
				Candidates: out.Candidates,
			},
		}}
	})
	if !out.Served {
		return false
	}
	e.ins.requestsServed.Inc()
	rec.Served = true
	rec.ServedOffline = offline
	rec.TaxiID = out.TaxiID
	rec.AssignSeconds = now
	return true
}

// tickOutcome is one taxi's movement result for a tick, collected during
// the parallel advance phase and applied sequentially.
type tickOutcome struct {
	startOdo   float64
	wasOnboard int
	visits     []fleet.EventVisit
}

// advanceTaxis moves every taxi by speed·dt, processing fired events in
// order and keeping odometers, episodes, and the taxi grid current. The
// movement itself (polyline walking plus event firing inside the taxi) is
// taxi-local, so it fans out across Params.Parallelism workers; the
// engine-level consequences — request records, settlement episodes, grid
// updates, scheme callbacks — are applied afterwards in fleet order, so
// the simulation is deterministic at every parallelism level.
func (e *Engine) advanceTaxis(now, dt float64, qMatched []replay.QueueMatch, qExpired []int64) {
	distance := e.params.SpeedMps * dt
	outs := make([]tickOutcome, len(e.taxis))
	advance := func(i int) {
		t := e.taxis[i]
		outs[i] = tickOutcome{startOdo: t.Odometer(), wasOnboard: t.OccupiedSeats()}
		outs[i].visits = t.Advance(distance)
	}
	workers := e.params.parallelism()
	if workers > len(e.taxis) {
		workers = len(e.taxis)
	}
	if workers <= 1 {
		for i := range e.taxis {
			advance(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.taxis) {
						return
					}
					advance(i)
				}
			}()
		}
		wg.Wait()
	}
	var rides []replay.Ride
	for i, t := range e.taxis {
		o := outs[i]
		wasOnboard := o.wasOnboard
		for _, v := range o.visits {
			eventOdo := o.startOdo + v.MetersIntoTick
			eventTime := now + v.MetersIntoTick/e.params.SpeedMps
			e.processEvent(t, v.Event, eventOdo, eventTime, &wasOnboard)
			if e.rec != nil {
				rides = append(rides, replay.Ride{
					Request: int64(v.Event.Req.ID),
					Taxi:    t.ID,
					Pickup:  v.Event.Kind == fleet.Pickup,
					AtNanos: int64(eventTime * float64(time.Second)),
				})
			}
		}
		if t.OccupiedSeats() > 0 {
			e.occupiedSecs += dt
		}
		if t.Odometer() != o.startOdo || len(o.visits) > 0 {
			e.taxiGrid.Update(t.ID, t.Point())
		}
		e.scheme.OnTaxiAdvanced(t, now+dt)
	}
	e.record(func(i int64) replay.Event {
		return replay.Event{I: i, Tick: &replay.TickEvent{
			DNanos:       int64(dt * float64(time.Second)),
			Rides:        rides,
			QueueMatched: qMatched,
			QueueExpired: qExpired,
		}}
	})
}

// processEvent updates per-request records and per-taxi episodes for one
// pickup or dropoff.
func (e *Engine) processEvent(t *fleet.Taxi, ev fleet.Event, odo, when float64, onboard *int) {
	rec := e.records[ev.Req.ID]
	switch ev.Kind {
	case fleet.Pickup:
		if rec != nil {
			rec.PickupSeconds = when
			rec.pickupOdo = odo
		}
		if *onboard == 0 {
			e.episodes[t.ID] = &episode{startOdo: odo}
		}
		*onboard += ev.Req.Passengers
	case fleet.Dropoff:
		*onboard -= ev.Req.Passengers
		if rec != nil {
			rec.DropoffSeconds = when
			rec.dropoffOdo = odo
			rec.Delivered = true
			e.passengerMeters += rec.SharedMeters()
		}
		e.scheme.OnRequestCompleted(ev.Req, when)
		ep := e.episodes[t.ID]
		if ep != nil && rec != nil {
			ep.rides = append(ep.rides, payment.RideRecord{
				ID:           ev.Req.ID,
				DirectMeters: ev.Req.DirectMeters,
				SharedMeters: rec.SharedMeters(),
				Completed:    true,
			})
		}
		if *onboard == 0 && ep != nil {
			e.settleEpisode(ep, odo)
			delete(e.episodes, t.ID)
		}
	}
}

// settleEpisode applies the payment model to a finished shared ride.
func (e *Engine) settleEpisode(ep *episode, endOdo float64) {
	if !e.params.SettlePayments || len(ep.rides) == 0 {
		return
	}
	s := e.params.Payment.Settle(endOdo-ep.startOdo, ep.rides)
	e.driverIncome += s.DriverIncome
	for _, ride := range ep.rides {
		rec := e.records[ride.ID]
		if rec == nil {
			continue
		}
		rec.RegularFare = e.params.Payment.Tariff.Fare(ride.DirectMeters)
		rec.PaidFare = s.Fares[ride.ID]
		e.totalPaid += rec.PaidFare
		e.totalRegular += rec.RegularFare
		e.settledRides++
	}
}

// handleEncounters lets taxis passing a hailing offline passenger pick
// them up (§IV-C2's roadside interaction, and the adjusted baseline
// behaviour of §V-A2).
func (e *Engine) handleEncounters(now float64) {
	if len(e.pending) == 0 {
		return
	}
	remaining := e.pending[:0]
	for _, r := range e.pending {
		rec := e.records[r.ID]
		served := false
		for _, id := range e.taxiGrid.Near(r.OriginPt, e.params.EncounterRadiusMeters) {
			t := e.taxiByID(id)
			if t == nil || t.IdleSeats() < r.Passengers {
				continue
			}
			t0 := time.Now()
			ok := e.scheme.TryServeOffline(t, r, now)
			if ok {
				rec.ResponseNanos = time.Since(t0).Nanoseconds()
				rec.Served = true
				rec.ServedOffline = true
				rec.TaxiID = t.ID
				rec.AssignSeconds = now
				served = true
				e.ins.encounters.Inc()
				e.ins.requestsServed.Inc()
				e.record(func(i int64) replay.Event {
					return replay.Event{I: i, Hail: &replay.HailEvent{
						Taxi:    t.ID,
						Pickup:  replay.Point{Lat: r.OriginPt.Lat, Lng: r.OriginPt.Lng},
						Dropoff: replay.Point{Lat: r.DestPt.Lat, Lng: r.DestPt.Lng},
						Out:     replay.HailOutcome{ServedBy: t.ID},
					}}
				})
				break
			}
			// The driver reported the hailing passenger but could not fit
			// them; mT-Share's server dispatches another taxi.
			if e.scheme.SupportsOfflineDispatch() {
				if e.dispatchOnline(r, now, true) {
					served = true
					break
				}
			}
		}
		if !served {
			remaining = append(remaining, r)
		}
	}
	e.pending = remaining
}

func (e *Engine) taxiByID(id int64) *fleet.Taxi {
	// The fleet is dense and small; linear scan is fine for the tick
	// loop's purposes but a map would also do. IDs start at 1.
	i := int(id) - 1
	if i >= 0 && i < len(e.taxis) && e.taxis[i].ID == id {
		return e.taxis[i]
	}
	for _, t := range e.taxis {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// expirePending drops offline requests whose pickup deadline passed.
func (e *Engine) expirePending(now float64) {
	remaining := e.pending[:0]
	for _, r := range e.pending {
		if r.PickupDeadline(e.params.SpeedMps).Seconds() < now {
			e.records[r.ID].Expired = true
			continue
		}
		remaining = append(remaining, r)
	}
	e.pending = remaining
}

// planIdle offers parked, empty taxis to the scheme's idle planner.
func (e *Engine) planIdle(now float64) {
	for _, t := range e.taxis {
		if !t.Empty() || len(t.Route()) > 1 {
			continue
		}
		if now-e.lastIdle[t.ID] < e.params.IdlePlanEverySeconds {
			continue
		}
		e.lastIdle[t.ID] = now
		e.scheme.PlanIdle(t, now)
	}
}
