package sim

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/trace"
)

func prepareMeeting(t *testing.T, w *world, trips []trace.Trip, radius float64) []*fleet.Request {
	t.Helper()
	return PrepareRequests(w.g, w.spx, trips, PrepareOptions{
		SpeedMps: 15.0 * 1000 / 3600, Rho: 1.3, Seed: 7,
		MeetingPointRadiusMeters: radius,
	})
}

// The meeting-point invariant: a rider walks at most r — unless even the
// nearest vertex is farther than r, in which case they stand exactly
// where the r=0 baseline put them.
func TestMeetingPointWalkBound(t *testing.T) {
	w := newWorld(t)
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	const radius = 300.0
	reqs := prepareMeeting(t, w, trips, radius)
	if len(reqs) == 0 {
		t.Fatal("no requests prepared")
	}
	tripByID := make(map[int64]trace.Trip, len(trips))
	for _, tr := range trips {
		tripByID[tr.ID] = tr
	}
	for _, r := range reqs {
		tr := tripByID[int64(r.ID)]
		walk := geo.Equirect(tr.Origin, r.OriginPt)
		nearest, _ := w.spx.NearestVertex(tr.Origin)
		snapDist := geo.Equirect(tr.Origin, w.g.Point(nearest))
		limit := radius
		if snapDist > limit {
			limit = snapDist
		}
		if walk > limit+1e-6 {
			t.Fatalf("request %d walks %.1f m, limit %.1f m (radius %v, nearest snap %.1f)", r.ID, walk, limit, radius, snapDist)
		}
	}
}

// Against the r=0 baseline: per surviving request the direct drive never
// gets longer, the release only shifts later (the walk), the Eq. 9 span
// is preserved, and the seeded party/offline stream is untouched. At
// least one request must actually move to a meeting point, or the
// variant is dead weight at this radius.
func TestMeetingPointVsBaseline(t *testing.T) {
	w := newWorld(t)
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	base := prepareMeeting(t, w, trips, 0)
	mp := prepareMeeting(t, w, trips, 300)

	baseByID := make(map[fleet.RequestID]*fleet.Request, len(base))
	for _, r := range base {
		baseByID[r.ID] = r
	}
	moved := 0
	for _, r := range mp {
		b, ok := baseByID[r.ID]
		if !ok {
			// Walking may rescue a trip the baseline dropped (e.g. origin
			// and dest snapped to the same vertex); that is a win, not an
			// error.
			continue
		}
		if r.DirectMeters > b.DirectMeters+1e-9 {
			t.Fatalf("request %d: meeting point lengthened the direct drive (%.1f -> %.1f m)", r.ID, b.DirectMeters, r.DirectMeters)
		}
		if r.ReleaseAt < b.ReleaseAt {
			t.Fatalf("request %d: release moved earlier with a walk", r.ID)
		}
		if got, want := r.Deadline-r.ReleaseAt, b.Deadline-b.ReleaseAt; got != want {
			t.Fatalf("request %d: Eq. 9 span changed (%v -> %v)", r.ID, want, got)
		}
		if r.Passengers != b.Passengers || r.Offline != b.Offline {
			t.Fatalf("request %d: the seeded party/offline stream shifted — radius 0 and 300 no longer share draws", r.ID)
		}
		if r.Origin != b.Origin {
			moved++
			if r.DirectMeters >= b.DirectMeters {
				t.Fatalf("request %d moved to a meeting point without shortening the drive", r.ID)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no request used a meeting point at radius 300 — the variant is dead weight on this world")
	}
	t.Logf("%d/%d requests walked to a meeting point", moved, len(mp))
}

// PrepareRequests with a radius must stay deterministic and wall-clock
// independent: two invocations agree byte for byte.
func TestMeetingPointDeterministic(t *testing.T) {
	w := newWorld(t)
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	a := prepareMeeting(t, w, trips, 300)
	b := prepareMeeting(t, w, trips, 300)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("request %d differs across identical invocations", a[i].ID)
		}
	}
}
